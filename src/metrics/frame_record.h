// Per-frame lifecycle record joining sender-side encoding info with
// receiver-side completion — the raw material of every latency/quality
// result in the evaluation.
#pragma once

#include <cstdint>
#include <optional>

#include "codec/rd_model.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::metrics {

/// Terminal state of a frame.
enum class FrameFate {
  kDelivered,       ///< all packets arrived; frame displayed
  kSkippedEncoder,  ///< rate control skipped it before encoding
  kDroppedSender,   ///< sender safety valve dropped it (pacer overflow)
  kLostNetwork,     ///< at least one packet dropped by the bottleneck
  kInFlight,        ///< session ended before completion
};

struct FrameRecord {
  int64_t frame_id = 0;
  Timestamp capture_time = Timestamp::Zero();
  FrameFate fate = FrameFate::kInFlight;

  // Encoder-side (valid unless skipped/dropped before encoding).
  codec::FrameType type = codec::FrameType::kDelta;
  double qp = 0.0;
  DataSize size = DataSize::Zero();
  double ssim = 0.0;
  double psnr = 0.0;
  int reencodes = 0;
  /// Temporal complexity of the source content at this frame; drives the
  /// freeze penalty when the frame is not displayed.
  double temporal_complexity = 0.0;

  // Receiver-side.
  std::optional<Timestamp> complete_time;
  /// When the jitter buffer put the frame on screen.
  std::optional<Timestamp> render_time;
  /// Frame missed its playout deadline (visible stutter).
  bool late_render = false;

  /// Capture-to-completion (network) latency; nullopt unless delivered.
  std::optional<TimeDelta> latency() const {
    if (!complete_time) return std::nullopt;
    return *complete_time - capture_time;
  }

  /// Capture-to-render latency (includes the playout buffer).
  std::optional<TimeDelta> render_latency() const {
    if (!render_time) return std::nullopt;
    return *render_time - capture_time;
  }
};

}  // namespace rave::metrics
