// Session-wide metrics collection: frame records, periodic timeseries
// samples, and the summary statistics every bench reports.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/frame_record.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::metrics {

/// One periodic sample of the control plane, for timeline figures.
struct TimeseriesPoint {
  Timestamp at = Timestamp::Zero();
  double capacity_kbps = 0.0;
  double bwe_target_kbps = 0.0;
  double encoder_target_kbps = 0.0;
  double acked_kbps = 0.0;
  double pacer_queue_ms = 0.0;
  double link_queue_ms = 0.0;
  double loss_rate = 0.0;
  double last_qp = 0.0;
  double last_latency_ms = 0.0;
};

/// Aggregated result of one session run.
struct SessionSummary {
  int64_t frames_captured = 0;
  int64_t frames_delivered = 0;
  int64_t frames_skipped = 0;       // encoder-level skips
  int64_t frames_dropped_sender = 0;
  int64_t frames_lost_network = 0;

  // Capture-to-completion (network) latency over delivered frames (ms).
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  // Capture-to-render latency (network + adaptive playout buffer) and the
  // fraction of delivered frames that missed their playout deadline.
  double render_latency_mean_ms = 0.0;
  double render_latency_p95_ms = 0.0;
  double late_render_ratio = 0.0;

  // Quality over delivered frames.
  double ssim_mean = 0.0;
  double psnr_mean_db = 0.0;
  double qp_mean = 0.0;

  /// Encoder-side quality: mean SSIM over all *encoded* frames, regardless
  /// of delivery — exactly the quality number an x264 run reports, and the
  /// one the paper's 0.8-3% improvement refers to.
  double encoded_ssim_mean = 0.0;

  /// System-level quality: mean *displayed* SSIM over all captured frames.
  /// An undelivered or undecodable frame displays the previous frame, whose
  /// SSIM against the current content decays with temporal complexity (a
  /// freeze on static content is benign, on motion it is not).
  double displayed_ssim_mean = 0.0;

  // Freeze: fraction of captured frames that never displayed.
  double undelivered_ratio = 0.0;

  double encoded_bitrate_kbps = 0.0;  // mean over the session
  int64_t total_reencodes = 0;
};

/// Collector owned by the session.
class SessionMetrics {
 public:
  /// Pre-allocates the frame and timeseries vectors. The session calls this
  /// with duration x fps (and duration / timeseries interval), so steady-state
  /// recording never reallocates.
  void Reserve(size_t expected_frames, size_t expected_timeseries);

  /// Registers a captured frame (all frames pass through here first).
  void OnFrameCaptured(int64_t frame_id, Timestamp capture_time);
  /// Marks a frame dropped by the sender safety valve (never encoded).
  void OnFrameDroppedAtSender(int64_t frame_id);
  /// Records the encoder output (including skips).
  void OnFrameEncoded(const FrameRecord& encoded);
  /// Marks delivery (from the receiver's frame assembler).
  void OnFrameCompleted(int64_t frame_id, Timestamp complete_time);
  /// Records the jitter buffer's playout schedule for a delivered frame.
  void OnFrameRendered(int64_t frame_id, Timestamp render_time, bool late);
  /// Marks a frame lost in the network.
  void OnFrameLost(int64_t frame_id);

  void AddTimeseriesPoint(const TimeseriesPoint& point);

  /// Finalizes and summarizes. `duration` is the session length.
  SessionSummary Summarize(TimeDelta duration) const;

  const std::vector<FrameRecord>& frames() const { return frames_; }
  const std::vector<TimeseriesPoint>& timeseries() const {
    return timeseries_;
  }

  /// Latency samples (ms) of delivered frames, for CDFs.
  std::vector<double> DeliveredLatenciesMs() const;

 private:
  FrameRecord* Find(int64_t frame_id);

  std::vector<FrameRecord> frames_;
  /// Frame ids arrive consecutively from the capture path, so the record for
  /// id x lives at frames_[x - base_frame_id_] — no hash map needed.
  int64_t base_frame_id_ = -1;
  std::vector<TimeseriesPoint> timeseries_;
};

}  // namespace rave::metrics
