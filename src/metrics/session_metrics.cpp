#include "metrics/session_metrics.h"

#include <algorithm>
#include <cassert>

namespace rave::metrics {

void SessionMetrics::Reserve(size_t expected_frames,
                             size_t expected_timeseries) {
  frames_.reserve(expected_frames);
  timeseries_.reserve(expected_timeseries);
}

FrameRecord* SessionMetrics::Find(int64_t frame_id) {
  const int64_t idx = frame_id - base_frame_id_;
  if (base_frame_id_ < 0 || idx < 0 ||
      static_cast<size_t>(idx) >= frames_.size()) {
    return nullptr;
  }
  FrameRecord* r = &frames_[static_cast<size_t>(idx)];
  assert(r->frame_id == frame_id);
  return r;
}

void SessionMetrics::OnFrameCaptured(int64_t frame_id,
                                     Timestamp capture_time) {
  if (base_frame_id_ < 0) base_frame_id_ = frame_id;
  // Capture ids must stay consecutive for base-offset lookup to hold.
  assert(frame_id ==
         base_frame_id_ + static_cast<int64_t>(frames_.size()));
  FrameRecord record;
  record.frame_id = frame_id;
  record.capture_time = capture_time;
  record.fate = FrameFate::kInFlight;
  frames_.push_back(record);
}

void SessionMetrics::OnFrameDroppedAtSender(int64_t frame_id) {
  if (FrameRecord* r = Find(frame_id)) r->fate = FrameFate::kDroppedSender;
}

void SessionMetrics::OnFrameEncoded(const FrameRecord& encoded) {
  FrameRecord* r = Find(encoded.frame_id);
  if (!r) return;
  r->type = encoded.type;
  r->qp = encoded.qp;
  r->size = encoded.size;
  r->ssim = encoded.ssim;
  r->psnr = encoded.psnr;
  r->reencodes = encoded.reencodes;
  r->temporal_complexity = encoded.temporal_complexity;
  if (encoded.fate == FrameFate::kSkippedEncoder) {
    r->fate = FrameFate::kSkippedEncoder;
  }
}

void SessionMetrics::OnFrameCompleted(int64_t frame_id,
                                      Timestamp complete_time) {
  if (FrameRecord* r = Find(frame_id)) {
    r->complete_time = complete_time;
    r->fate = FrameFate::kDelivered;
  }
}

void SessionMetrics::OnFrameRendered(int64_t frame_id, Timestamp render_time,
                                     bool late) {
  if (FrameRecord* r = Find(frame_id)) {
    r->render_time = render_time;
    r->late_render = late;
  }
}

void SessionMetrics::OnFrameLost(int64_t frame_id) {
  if (FrameRecord* r = Find(frame_id)) r->fate = FrameFate::kLostNetwork;
}

void SessionMetrics::AddTimeseriesPoint(const TimeseriesPoint& point) {
  timeseries_.push_back(point);
}

std::vector<double> SessionMetrics::DeliveredLatenciesMs() const {
  std::vector<double> out;
  out.reserve(frames_.size());
  for (const FrameRecord& r : frames_) {
    if (auto latency = r.latency()) out.push_back(latency->ms_float());
  }
  return out;
}

SessionSummary SessionMetrics::Summarize(TimeDelta duration) const {
  SessionSummary s;
  s.frames_captured = static_cast<int64_t>(frames_.size());

  SampleSet latencies;
  SampleSet render_latencies;
  int64_t late_renders = 0;
  RunningStats ssim;
  RunningStats psnr;
  RunningStats qp;
  RunningStats encoded_ssim;
  RunningStats displayed;
  int64_t total_bits = 0;

  // Per displayed-frame freeze decay at temporal complexity 1.0.
  constexpr double kFreezePenalty = 0.02;
  double last_displayed_ssim = 0.0;

  // H.264 reference-chain decodability: a delta frame that follows a lost
  // frame cannot be decoded until the next keyframe arrives, even if its own
  // packets were delivered. Encoder skips and sender drops do not break the
  // chain (no frame was emitted, so the prediction reference is unchanged).
  bool decodable = true;

  for (const FrameRecord& r : frames_) {
    switch (r.fate) {
      case FrameFate::kDelivered:
        ++s.frames_delivered;
        break;
      case FrameFate::kSkippedEncoder:
        ++s.frames_skipped;
        break;
      case FrameFate::kDroppedSender:
        ++s.frames_dropped_sender;
        break;
      case FrameFate::kLostNetwork:
        ++s.frames_lost_network;
        break;
      case FrameFate::kInFlight:
        break;
    }
    const bool encoded = r.fate != FrameFate::kSkippedEncoder &&
                         r.fate != FrameFate::kDroppedSender;
    if (encoded) encoded_ssim.Add(r.ssim);

    if (r.fate == FrameFate::kLostNetwork) decodable = false;
    if (r.fate == FrameFate::kDelivered && r.type == codec::FrameType::kKey) {
      decodable = true;
    }

    if (auto latency = r.latency()) latencies.Add(latency->ms_float());
    if (auto render = r.render_latency()) {
      render_latencies.Add(render->ms_float());
      if (r.late_render) ++late_renders;
    }
    if (r.fate == FrameFate::kDelivered && decodable) {
      ssim.Add(r.ssim);
      psnr.Add(r.psnr);
      qp.Add(r.qp);
      last_displayed_ssim = r.ssim;
    } else {
      // Freeze: the previous frame stays on screen; its similarity to the
      // current content decays with motion.
      last_displayed_ssim = std::max(
          0.0, last_displayed_ssim -
                   kFreezePenalty * std::max(r.temporal_complexity, 0.2));
    }
    displayed.Add(last_displayed_ssim);
    total_bits += r.size.bits();
    s.total_reencodes += r.reencodes;
  }

  s.latency_mean_ms = latencies.mean();
  s.latency_p50_ms = latencies.Quantile(0.50);
  s.latency_p95_ms = latencies.Quantile(0.95);
  s.latency_p99_ms = latencies.Quantile(0.99);
  s.latency_max_ms = latencies.max();

  s.render_latency_mean_ms = render_latencies.mean();
  s.render_latency_p95_ms = render_latencies.Quantile(0.95);
  s.late_render_ratio =
      render_latencies.empty()
          ? 0.0
          : static_cast<double>(late_renders) /
                static_cast<double>(render_latencies.count());

  s.ssim_mean = ssim.mean();
  s.psnr_mean_db = psnr.mean();
  s.qp_mean = qp.mean();
  s.encoded_ssim_mean = encoded_ssim.mean();
  s.displayed_ssim_mean = displayed.mean();

  s.undelivered_ratio =
      s.frames_captured > 0
          ? 1.0 - static_cast<double>(s.frames_delivered) /
                      static_cast<double>(s.frames_captured)
          : 0.0;

  if (duration > TimeDelta::Zero()) {
    s.encoded_bitrate_kbps =
        static_cast<double>(total_bits) / duration.seconds() / 1e3;
  }
  return s;
}

}  // namespace rave::metrics
