// Named wireless/mobility scenario registry (--wireless=NAME).
//
// A profile bundles everything a wireless link scenario needs — a capacity
// schedule from the net/wireless generators, a base loss model, and a fault
// plan carrying handover / renegotiation events — as a deterministic
// function of (name, session duration). Profiles live in the fault layer
// (which already depends on net); threading them into a SessionConfig is
// bench/common's job, since fault cannot depend on rtc.
#pragma once

#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "net/capacity_trace.h"
#include "net/loss_model.h"
#include "util/time.h"

namespace rave::fault {

struct WirelessProfile {
  std::string name;
  /// Forward-link capacity schedule over the session duration.
  net::CapacityTrace trace = net::CapacityTrace::Constant(
      DataRate::KilobitsPerSec(2500));
  /// Base (initial-cell) loss model.
  net::LossModel loss;
  /// Handover and renegotiation events; empty for pure fading profiles.
  FaultPlan faults;
};

/// All registered profile names, in matrix order:
///   wifi-fade     Gilbert-Elliott fading capacity + bursty Gilbert loss
///   lte-handover  two cell handovers (rate+RTT+loss swap atomically)
///   fpv-radio     FPV link renegotiating its datarate on a modulation ladder
///   duty-cycle    deterministic periodic interference (microwave-oven bursts)
///   train-commute fading + three handovers, the worst of both
const std::vector<std::string>& WirelessProfileNames();

/// Builds the named profile scaled to `duration` (handover times are
/// placed at fixed fractions of the session, so smoke runs exercise them
/// too). Throws std::invalid_argument for unknown names, listing the
/// registry.
WirelessProfile MakeWirelessProfile(const std::string& name,
                                    TimeDelta duration);

}  // namespace rave::fault
