#include "fault/wireless_profiles.h"

#include <stdexcept>

#include "net/wireless.h"

namespace rave::fault {

namespace {

Timestamp Fraction(TimeDelta duration, double f) {
  return Timestamp::Zero() + TimeDelta::SecondsF(duration.seconds() * f);
}

net::LossModel GilbertInterference(double bad_loss, uint64_t seed) {
  net::LossModel loss;
  loss.gilbert_enabled = true;
  loss.gilbert = {/*p_good_to_bad=*/0.02, /*p_bad_to_good=*/0.20};
  loss.gilbert_bad_loss = bad_loss;
  loss.gilbert_step = TimeDelta::Millis(5);
  loss.seed = seed;
  return loss;
}

WirelessProfile WifiFade(TimeDelta duration) {
  WirelessProfile profile;
  profile.name = "wifi-fade";
  net::GilbertFadingConfig fading;
  fading.good_rate = DataRate::KilobitsPerSec(2500);
  fading.bad_rate = DataRate::KilobitsPerSec(800);
  fading.chain = {/*p_good_to_bad=*/0.05, /*p_bad_to_good=*/0.25};
  fading.step = TimeDelta::Millis(100);
  fading.seed = 0xF1F1;
  profile.trace = net::GilbertFadingTrace(fading, duration);
  profile.loss = GilbertInterference(/*bad_loss=*/0.3, /*seed=*/41);
  return profile;
}

WirelessProfile LteHandover(TimeDelta duration) {
  WirelessProfile profile;
  profile.name = "lte-handover";
  profile.trace =
      net::CapacityTrace::Constant(DataRate::KilobitsPerSec(2500));
  // Two cell changes: a degraded edge cell, then back to a good one. The
  // radio-silence gaps (200/150 ms) stay below the circuit-breaker's 400 ms
  // starvation threshold — a clean handover must NOT trip the breaker.
  net::LossModel edge_cell;
  edge_cell.random_loss = 0.01;
  edge_cell.seed = 43;
  profile.faults.Handover(Fraction(duration, 0.40), TimeDelta::Millis(200),
                          DataRate::KilobitsPerSec(1500),
                          TimeDelta::Millis(55), edge_cell);
  net::LossModel good_cell;
  good_cell.random_loss = 0.001;
  good_cell.seed = 44;
  profile.faults.Handover(Fraction(duration, 0.70), TimeDelta::Millis(150),
                          DataRate::KilobitsPerSec(2400),
                          TimeDelta::Millis(25), good_cell);
  return profile;
}

WirelessProfile FpvRadio(TimeDelta duration) {
  WirelessProfile profile;
  profile.name = "fpv-radio";
  net::FpvRadioConfig radio;
  // Link capacity tracks the top modulation rung; the renegotiation events
  // below are what actually cap the serialization rate, so the encoder is
  // chasing the radio's decisions, not a congestion signal.
  profile.trace = net::CapacityTrace::Constant(radio.ladder.back());
  const std::vector<net::CapacityTrace::Step> schedule =
      net::FpvModulationSchedule(radio, duration);
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Timestamp start = schedule[i].start;
    const Timestamp end = i + 1 < schedule.size()
                              ? schedule[i + 1].start
                              : Timestamp::Zero() + duration +
                                    TimeDelta::Seconds(5);
    profile.faults.Renegotiate(start, end - start, schedule[i].rate);
  }
  return profile;
}

WirelessProfile DutyCycle(TimeDelta duration) {
  WirelessProfile profile;
  profile.name = "duty-cycle";
  profile.trace = net::DutyCycleTrace(
      DataRate::KilobitsPerSec(2500), DataRate::KilobitsPerSec(700),
      /*period=*/TimeDelta::Seconds(2), /*duty=*/0.25, duration);
  return profile;
}

WirelessProfile TrainCommute(TimeDelta duration) {
  WirelessProfile profile;
  profile.name = "train-commute";
  net::GilbertFadingConfig fading;
  fading.good_rate = DataRate::KilobitsPerSec(2200);
  fading.bad_rate = DataRate::KilobitsPerSec(900);
  fading.chain = {/*p_good_to_bad=*/0.03, /*p_bad_to_good=*/0.15};
  fading.step = TimeDelta::Millis(200);
  fading.seed = 0x7A41;
  profile.trace = net::GilbertFadingTrace(fading, duration);
  profile.loss.random_loss = 0.002;
  profile.loss.seed = 47;
  net::LossModel tunnel_cell = GilbertInterference(/*bad_loss=*/0.4,
                                                   /*seed=*/48);
  profile.faults.Handover(Fraction(duration, 0.30), TimeDelta::Millis(250),
                          DataRate::KilobitsPerSec(1200),
                          TimeDelta::Millis(70), tunnel_cell);
  net::LossModel open_cell;
  open_cell.random_loss = 0.001;
  open_cell.seed = 49;
  profile.faults.Handover(Fraction(duration, 0.60), TimeDelta::Millis(180),
                          DataRate::KilobitsPerSec(2600),
                          TimeDelta::Millis(22), open_cell);
  net::LossModel edge_cell;
  edge_cell.random_loss = 0.008;
  edge_cell.seed = 50;
  profile.faults.Handover(Fraction(duration, 0.85), TimeDelta::Millis(220),
                          DataRate::KilobitsPerSec(1100),
                          TimeDelta::Millis(60), edge_cell);
  return profile;
}

}  // namespace

const std::vector<std::string>& WirelessProfileNames() {
  static const std::vector<std::string> kNames = {
      "wifi-fade", "lte-handover", "fpv-radio", "duty-cycle",
      "train-commute"};
  return kNames;
}

WirelessProfile MakeWirelessProfile(const std::string& name,
                                    TimeDelta duration) {
  if (name == "wifi-fade") return WifiFade(duration);
  if (name == "lte-handover") return LteHandover(duration);
  if (name == "fpv-radio") return FpvRadio(duration);
  if (name == "duty-cycle") return DutyCycle(duration);
  if (name == "train-commute") return TrainCommute(duration);
  std::string known;
  for (const std::string& n : WirelessProfileNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown wireless profile '" + name +
                              "' (known: " + known + ")");
}

}  // namespace rave::fault
