#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace rave::fault {

namespace {

bool NeedsMagnitude(FaultKind kind) {
  return kind == FaultKind::kDuplication || kind == FaultKind::kReorder;
}

bool NeedsDelay(FaultKind kind) {
  return kind == FaultKind::kDelaySpike || kind == FaultKind::kReorder;
}

bool NeedsRate(FaultKind kind) {
  return kind == FaultKind::kHandover || kind == FaultKind::kRenegotiate;
}

void ValidateLossModel(const net::LossModel& loss) {
  if (!std::isfinite(loss.random_loss) || loss.random_loss < 0.0 ||
      loss.random_loss > 1.0) {
    throw std::invalid_argument(
        "FaultPlan: handover loss probability outside [0,1]");
  }
  if (!std::isfinite(loss.gilbert_bad_loss) || loss.gilbert_bad_loss < 0.0 ||
      loss.gilbert_bad_loss > 1.0) {
    throw std::invalid_argument(
        "FaultPlan: handover Gilbert bad-state loss outside [0,1]");
  }
  if (loss.gilbert_enabled && loss.gilbert_step <= TimeDelta::Zero()) {
    throw std::invalid_argument(
        "FaultPlan: handover Gilbert step must be positive");
  }
}

void ValidateEvent(const FaultEvent& event) {
  if (event.start < Timestamp::Zero()) {
    throw std::invalid_argument("FaultPlan: negative start time for " +
                                ToString(event.kind));
  }
  if (event.duration <= TimeDelta::Zero()) {
    throw std::invalid_argument("FaultPlan: non-positive duration for " +
                                ToString(event.kind));
  }
  if (NeedsMagnitude(event.kind) &&
      (!std::isfinite(event.magnitude) || event.magnitude < 0.0 ||
       event.magnitude > 1.0)) {
    throw std::invalid_argument("FaultPlan: probability outside [0,1] for " +
                                ToString(event.kind));
  }
  if (NeedsDelay(event.kind) && event.delay <= TimeDelta::Zero()) {
    throw std::invalid_argument("FaultPlan: non-positive delay for " +
                                ToString(event.kind));
  }
  if (NeedsRate(event.kind) && event.rate <= DataRate::Zero()) {
    throw std::invalid_argument("FaultPlan: non-positive rate for " +
                                ToString(event.kind));
  }
  if (event.kind == FaultKind::kHandover) {
    if (event.propagation < TimeDelta::Zero()) {
      throw std::invalid_argument(
          "FaultPlan: negative propagation for handover");
    }
    if (event.loss) ValidateLossModel(*event.loss);
  }
}

}  // namespace

std::string ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkOutage:
      return "outage";
    case FaultKind::kFeedbackBlackhole:
      return "blackhole";
    case FaultKind::kDelaySpike:
      return "spike";
    case FaultKind::kDuplication:
      return "dup";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kHandover:
      return "handover";
    case FaultKind::kRenegotiate:
      return "reneg";
  }
  return "unknown";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events) {
  for (FaultEvent& event : events) Append(std::move(event));
}

void FaultPlan::Append(FaultEvent event) {
  ValidateEvent(event);
  for (const FaultEvent& other : events_) {
    if (other.kind != event.kind) continue;
    const Timestamp a_end = other.start + other.duration;
    const Timestamp b_end = event.start + event.duration;
    if (event.start < a_end && other.start < b_end) {
      throw std::invalid_argument(
          "FaultPlan: overlapping " + fault::ToString(event.kind) +
          " windows (revert order would be ambiguous)");
    }
  }
  events_.push_back(event);
}

Timestamp FaultPlan::LastClearTime() const {
  Timestamp last = Timestamp::Zero();
  for (const FaultEvent& event : events_) {
    last = std::max(last, event.start + event.duration);
  }
  return last;
}

FaultPlan& FaultPlan::Outage(Timestamp start, TimeDelta duration) {
  Append({.kind = FaultKind::kLinkOutage, .start = start, .duration = duration});
  return *this;
}

FaultPlan& FaultPlan::FeedbackBlackhole(Timestamp start, TimeDelta duration) {
  Append({.kind = FaultKind::kFeedbackBlackhole,
          .start = start,
          .duration = duration});
  return *this;
}

FaultPlan& FaultPlan::DelaySpike(Timestamp start, TimeDelta duration,
                                 TimeDelta extra) {
  Append({.kind = FaultKind::kDelaySpike,
          .start = start,
          .duration = duration,
          .delay = extra});
  return *this;
}

FaultPlan& FaultPlan::DuplicationBurst(Timestamp start, TimeDelta duration,
                                       double probability) {
  Append({.kind = FaultKind::kDuplication,
          .start = start,
          .duration = duration,
          .magnitude = probability});
  return *this;
}

FaultPlan& FaultPlan::ReorderBurst(Timestamp start, TimeDelta duration,
                                   double probability, TimeDelta max_extra) {
  Append({.kind = FaultKind::kReorder,
          .start = start,
          .duration = duration,
          .magnitude = probability,
          .delay = max_extra});
  return *this;
}

FaultPlan& FaultPlan::Handover(Timestamp start, TimeDelta gap,
                               DataRate new_rate, TimeDelta new_propagation,
                               std::optional<net::LossModel> new_loss) {
  FaultEvent event{.kind = FaultKind::kHandover,
                   .start = start,
                   .duration = gap,
                   .rate = new_rate,
                   .propagation = new_propagation};
  event.loss = std::move(new_loss);
  Append(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::Renegotiate(Timestamp start, TimeDelta duration,
                                  DataRate rate) {
  Append({.kind = FaultKind::kRenegotiate,
          .start = start,
          .duration = duration,
          .rate = rate});
  return *this;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (i > 0) out << ", ";
    out << fault::ToString(e.kind) << '@' << e.start.seconds() << "s+"
        << e.duration.seconds() << 's';
    if (NeedsMagnitude(e.kind)) out << ':' << e.magnitude;
    if (NeedsDelay(e.kind)) out << ':' << e.delay.ms_float() << "ms";
    if (NeedsRate(e.kind)) out << ':' << e.rate.kbps() << "kbps";
    if (e.kind == FaultKind::kHandover) {
      out << ':' << e.propagation.ms_float() << "ms";
      if (e.loss) out << ":loss=" << e.loss->random_loss;
    }
  }
  return out.str();
}

namespace {

double ParseNumber(const std::string& text, const std::string& token) {
  try {
    size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size() || !std::isfinite(value)) {
      throw std::invalid_argument(text);
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault spec: bad number '" + text +
                                "' in token '" + token + "'");
  }
}

FaultEvent ParseToken(const std::string& token) {
  const auto at = token.find('@');
  if (at == std::string::npos) {
    throw std::invalid_argument(
        "fault spec: token '" + token +
        "' is not of the form kind@START+DUR[:P1[:P2]]");
  }
  const std::string kind_name = token.substr(0, at);

  // Split the remainder on ':' — the first piece is "START+DUR", the rest
  // are per-kind parameters.
  std::vector<std::string> pieces;
  const std::string tail = token.substr(at + 1);
  size_t pos = 0;
  while (true) {
    const auto colon = tail.find(':', pos);
    pieces.push_back(tail.substr(pos, colon - pos));
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  const std::string& rest = pieces.front();
  const std::vector<std::string> params(pieces.begin() + 1, pieces.end());
  const auto plus = rest.find('+');
  if (plus == std::string::npos) {
    throw std::invalid_argument("fault spec: token '" + token +
                                "' is missing '+DURATION'");
  }
  const double start_s = ParseNumber(rest.substr(0, plus), token);
  const double dur_s = ParseNumber(rest.substr(plus + 1), token);

  FaultEvent event;
  event.start = Timestamp::Micros(static_cast<int64_t>(start_s * 1e6));
  event.duration = TimeDelta::Micros(static_cast<int64_t>(dur_s * 1e6));

  auto param = [&](size_t i) -> double {
    if (i >= params.size()) {
      throw std::invalid_argument("fault spec: token '" + token +
                                  "' is missing a :parameter");
    }
    return ParseNumber(params[i], token);
  };

  if (kind_name == "outage") {
    event.kind = FaultKind::kLinkOutage;
  } else if (kind_name == "blackhole") {
    event.kind = FaultKind::kFeedbackBlackhole;
  } else if (kind_name == "spike") {
    event.kind = FaultKind::kDelaySpike;
    event.delay = TimeDelta::Micros(static_cast<int64_t>(param(0) * 1e3));
  } else if (kind_name == "dup") {
    event.kind = FaultKind::kDuplication;
    event.magnitude = param(0);
  } else if (kind_name == "reorder") {
    event.kind = FaultKind::kReorder;
    event.magnitude = param(0);
    event.delay = TimeDelta::Micros(static_cast<int64_t>(param(1) * 1e3));
  } else if (kind_name == "handover") {
    // handover@T+GAP:RATE_KBPS:OWD_MS[:LOSS]
    event.kind = FaultKind::kHandover;
    event.rate = DataRate::KilobitsPerSec(static_cast<int64_t>(param(0)));
    event.propagation =
        TimeDelta::Micros(static_cast<int64_t>(param(1) * 1e3));
    if (params.size() > 2) {
      net::LossModel loss;
      loss.random_loss = param(2);
      event.loss = loss;
    }
  } else if (kind_name == "reneg") {
    // reneg@T+DUR:RATE_KBPS
    event.kind = FaultKind::kRenegotiate;
    event.rate = DataRate::KilobitsPerSec(static_cast<int64_t>(param(0)));
  } else {
    throw std::invalid_argument("fault spec: unknown fault kind '" +
                                kind_name + "' in token '" + token + "'");
  }
  return event;
}

}  // namespace

FaultPlan ParseFaultSpec(const std::string& spec) {
  // Every rejection — bad token, bad number, failed validation, overlapping
  // windows — is rethrown echoing the full spec string, so a user with six
  // comma-separated tokens sees which input produced the error.
  try {
    std::vector<FaultEvent> events;
    size_t pos = 0;
    while (pos <= spec.size()) {
      const auto comma = spec.find(',', pos);
      const std::string token = spec.substr(pos, comma - pos);
      if (!token.empty()) events.push_back(ParseToken(token));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (events.empty()) {
      throw std::invalid_argument("fault spec: no fault tokens");
    }
    return FaultPlan(std::move(events));
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(std::string(error.what()) + " (in spec '" +
                                spec + "')");
  }
}

}  // namespace rave::fault
