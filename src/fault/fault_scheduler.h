// Applies a `FaultPlan` to a live forward link + reverse pipe pair.
//
// The scheduler registers one apply and one revert callback per fault window
// on the session's EventLoop at construction; everything after that is
// ordinary deterministic event execution (the link's own seeded fault RNG
// drives duplication/reordering decisions), so fault-injected sessions are
// byte-identical across `--jobs` counts and across reruns.
#pragma once

#include <cstdint>

#include "fault/fault_plan.h"
#include "net/link.h"
#include "sim/event_loop.h"

namespace rave::fault {

/// Counters for tests and the fig10 harness.
struct FaultStats {
  int64_t faults_applied = 0;
  int64_t faults_reverted = 0;
};

class FaultScheduler {
 public:
  /// `pipe` may be null when the scenario has no reverse path; feedback
  /// faults are then ignored. `link` must outlive the scheduler.
  FaultScheduler(EventLoop& loop, FaultPlan plan, net::Link* link,
                 net::DelayPipe* pipe);

  FaultScheduler(const FaultScheduler&) = delete;
  FaultScheduler& operator=(const FaultScheduler&) = delete;

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  /// True while any fault window is currently applied.
  bool any_active() const { return stats_.faults_applied > stats_.faults_reverted; }

 private:
  void Apply(const FaultEvent& event);
  void Revert(const FaultEvent& event);

  EventLoop& loop_;
  FaultPlan plan_;
  net::Link* link_;
  net::DelayPipe* pipe_;
  FaultStats stats_;
};

}  // namespace rave::fault
