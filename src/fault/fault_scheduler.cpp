#include "fault/fault_scheduler.h"

#include <cassert>
#include <utility>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace rave::fault {
namespace {

// Static labels for trace instants (ToString(FaultKind) returns an owning
// std::string, which the recorder must not keep a pointer into).
[[maybe_unused]] const char* ApplyLabel(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkOutage:
      return "apply:link_outage";
    case FaultKind::kFeedbackBlackhole:
      return "apply:feedback_blackhole";
    case FaultKind::kDelaySpike:
      return "apply:delay_spike";
    case FaultKind::kDuplication:
      return "apply:duplication";
    case FaultKind::kReorder:
      return "apply:reorder";
  }
  return "apply:unknown";
}

[[maybe_unused]] const char* RevertLabel(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkOutage:
      return "revert:link_outage";
    case FaultKind::kFeedbackBlackhole:
      return "revert:feedback_blackhole";
    case FaultKind::kDelaySpike:
      return "revert:delay_spike";
    case FaultKind::kDuplication:
      return "revert:duplication";
    case FaultKind::kReorder:
      return "revert:reorder";
  }
  return "revert:unknown";
}

}  // namespace

FaultScheduler::FaultScheduler(EventLoop& loop, FaultPlan plan,
                               net::Link* link, net::DelayPipe* pipe)
    : loop_(loop), plan_(std::move(plan)), link_(link), pipe_(pipe) {
  assert(link_ != nullptr);
  for (const FaultEvent& event : plan_.events()) {
    loop_.ScheduleAt(event.start, [this, event] { Apply(event); });
    loop_.ScheduleAt(event.start + event.duration,
                     [this, event] { Revert(event); });
  }
}

void FaultScheduler::Apply(const FaultEvent& event) {
  ++stats_.faults_applied;
  RAVE_TRACE_INSTANT(kFaultInjection, loop_.now(), ApplyLabel(event.kind));
  if (obs::MetricsRegistry* reg = obs::CurrentMetrics()) {
    reg->GetCounter("fault.applied")->Add();
  }
  switch (event.kind) {
    case FaultKind::kLinkOutage:
      link_->SetOutage(true);
      break;
    case FaultKind::kFeedbackBlackhole:
      if (pipe_) pipe_->SetBlackhole(true);
      break;
    case FaultKind::kDelaySpike:
      link_->SetExtraPropagation(event.delay);
      if (pipe_) pipe_->SetExtraDelay(event.delay);
      break;
    case FaultKind::kDuplication:
      link_->SetDuplication(event.magnitude);
      break;
    case FaultKind::kReorder:
      link_->SetReordering(event.magnitude, event.delay);
      break;
  }
}

void FaultScheduler::Revert(const FaultEvent& event) {
  ++stats_.faults_reverted;
  RAVE_TRACE_INSTANT(kFaultInjection, loop_.now(), RevertLabel(event.kind));
  switch (event.kind) {
    case FaultKind::kLinkOutage:
      link_->SetOutage(false);
      break;
    case FaultKind::kFeedbackBlackhole:
      if (pipe_) pipe_->SetBlackhole(false);
      break;
    case FaultKind::kDelaySpike:
      link_->SetExtraPropagation(TimeDelta::Zero());
      if (pipe_) pipe_->SetExtraDelay(TimeDelta::Zero());
      break;
    case FaultKind::kDuplication:
      link_->SetDuplication(0.0);
      break;
    case FaultKind::kReorder:
      link_->SetReordering(0.0, TimeDelta::Zero());
      break;
  }
}

}  // namespace rave::fault
