#include "fault/fault_scheduler.h"

#include <cassert>
#include <utility>

namespace rave::fault {

FaultScheduler::FaultScheduler(EventLoop& loop, FaultPlan plan,
                               net::Link* link, net::DelayPipe* pipe)
    : loop_(loop), plan_(std::move(plan)), link_(link), pipe_(pipe) {
  assert(link_ != nullptr);
  for (const FaultEvent& event : plan_.events()) {
    loop_.ScheduleAt(event.start, [this, event] { Apply(event); });
    loop_.ScheduleAt(event.start + event.duration,
                     [this, event] { Revert(event); });
  }
}

void FaultScheduler::Apply(const FaultEvent& event) {
  ++stats_.faults_applied;
  switch (event.kind) {
    case FaultKind::kLinkOutage:
      link_->SetOutage(true);
      break;
    case FaultKind::kFeedbackBlackhole:
      if (pipe_) pipe_->SetBlackhole(true);
      break;
    case FaultKind::kDelaySpike:
      link_->SetExtraPropagation(event.delay);
      if (pipe_) pipe_->SetExtraDelay(event.delay);
      break;
    case FaultKind::kDuplication:
      link_->SetDuplication(event.magnitude);
      break;
    case FaultKind::kReorder:
      link_->SetReordering(event.magnitude, event.delay);
      break;
  }
}

void FaultScheduler::Revert(const FaultEvent& event) {
  ++stats_.faults_reverted;
  switch (event.kind) {
    case FaultKind::kLinkOutage:
      link_->SetOutage(false);
      break;
    case FaultKind::kFeedbackBlackhole:
      if (pipe_) pipe_->SetBlackhole(false);
      break;
    case FaultKind::kDelaySpike:
      link_->SetExtraPropagation(TimeDelta::Zero());
      if (pipe_) pipe_->SetExtraDelay(TimeDelta::Zero());
      break;
    case FaultKind::kDuplication:
      link_->SetDuplication(0.0);
      break;
    case FaultKind::kReorder:
      link_->SetReordering(0.0, TimeDelta::Zero());
      break;
  }
}

}  // namespace rave::fault
