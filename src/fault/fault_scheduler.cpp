#include "fault/fault_scheduler.h"

#include <cassert>
#include <utility>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace rave::fault {
namespace {

// Static labels for trace instants (ToString(FaultKind) returns an owning
// std::string, which the recorder must not keep a pointer into).
[[maybe_unused]] const char* ApplyLabel(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkOutage:
      return "apply:link_outage";
    case FaultKind::kFeedbackBlackhole:
      return "apply:feedback_blackhole";
    case FaultKind::kDelaySpike:
      return "apply:delay_spike";
    case FaultKind::kDuplication:
      return "apply:duplication";
    case FaultKind::kReorder:
      return "apply:reorder";
    case FaultKind::kHandover:
      return "apply:handover";
    case FaultKind::kRenegotiate:
      return "apply:renegotiate";
  }
  return "apply:unknown";
}

[[maybe_unused]] const char* RevertLabel(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkOutage:
      return "revert:link_outage";
    case FaultKind::kFeedbackBlackhole:
      return "revert:feedback_blackhole";
    case FaultKind::kDelaySpike:
      return "revert:delay_spike";
    case FaultKind::kDuplication:
      return "revert:duplication";
    case FaultKind::kReorder:
      return "revert:reorder";
    case FaultKind::kHandover:
      return "revert:handover";
    case FaultKind::kRenegotiate:
      return "revert:renegotiate";
  }
  return "revert:unknown";
}

}  // namespace

FaultScheduler::FaultScheduler(EventLoop& loop, FaultPlan plan,
                               net::Link* link, net::DelayPipe* pipe)
    : loop_(loop), plan_(std::move(plan)), link_(link), pipe_(pipe) {
  assert(link_ != nullptr);
  // Capture the event INDEX, not the event: FaultEvent carries an optional
  // LossModel and would not fit the event loop's inline closure storage.
  for (size_t i = 0; i < plan_.events().size(); ++i) {
    const FaultEvent& event = plan_.events()[i];
    loop_.ScheduleAt(event.start, [this, i] { Apply(plan_.events()[i]); });
    loop_.ScheduleAt(event.start + event.duration,
                     [this, i] { Revert(plan_.events()[i]); });
  }
}

void FaultScheduler::Apply(const FaultEvent& event) {
  ++stats_.faults_applied;
  RAVE_TRACE_INSTANT(kFaultInjection, loop_.now(), ApplyLabel(event.kind));
  if (obs::MetricsRegistry* reg = obs::CurrentMetrics()) {
    reg->GetCounter("fault.applied")->Add();
  }
  switch (event.kind) {
    case FaultKind::kLinkOutage:
      link_->SetOutage(true);
      break;
    case FaultKind::kFeedbackBlackhole:
      if (pipe_) pipe_->SetBlackhole(true);
      break;
    case FaultKind::kDelaySpike:
      link_->SetExtraPropagation(event.delay);
      if (pipe_) pipe_->SetExtraDelay(event.delay);
      break;
    case FaultKind::kDuplication:
      link_->SetDuplication(event.magnitude);
      break;
    case FaultKind::kReorder:
      link_->SetReordering(event.magnitude, event.delay);
      break;
    case FaultKind::kHandover:
      // One event-loop action: the new cell's capacity, propagation, and
      // loss model land together, then the radio goes silent for the gap
      // (forward outage + feedback blackhole, reverse delay moves too).
      link_->Handover(event.rate, event.propagation, event.loss);
      link_->SetOutage(true);
      if (pipe_) {
        pipe_->SetBaseDelay(event.propagation);
        pipe_->SetBlackhole(true);
      }
      break;
    case FaultKind::kRenegotiate:
      link_->SetRateOverride(event.rate);
      break;
  }
}

void FaultScheduler::Revert(const FaultEvent& event) {
  ++stats_.faults_reverted;
  RAVE_TRACE_INSTANT(kFaultInjection, loop_.now(), RevertLabel(event.kind));
  switch (event.kind) {
    case FaultKind::kLinkOutage:
      link_->SetOutage(false);
      break;
    case FaultKind::kFeedbackBlackhole:
      if (pipe_) pipe_->SetBlackhole(false);
      break;
    case FaultKind::kDelaySpike:
      link_->SetExtraPropagation(TimeDelta::Zero());
      if (pipe_) pipe_->SetExtraDelay(TimeDelta::Zero());
      break;
    case FaultKind::kDuplication:
      link_->SetDuplication(0.0);
      break;
    case FaultKind::kReorder:
      link_->SetReordering(0.0, TimeDelta::Zero());
      break;
    case FaultKind::kHandover:
      // Only the radio-silence gap ends; the new cell's rate, propagation,
      // and loss model persist (they are properties of the cell, not the
      // window).
      link_->SetOutage(false);
      if (pipe_) pipe_->SetBlackhole(false);
      break;
    case FaultKind::kRenegotiate:
      link_->SetRateOverride(std::nullopt);
      break;
  }
}

}  // namespace rave::fault
