// Declarative fault scripts for the fault-injection subsystem.
//
// A `FaultPlan` is a validated list of timed fault windows — hard failures
// the capacity trace cannot express: full link blackouts (serialization
// pauses, queues build, droptail drops the excess), feedback-path blackholes
// (media flows, reports vanish), one-way delay spikes, and packet
// duplication / bounded-reordering bursts. Plans are pure data; the
// `FaultScheduler` applies them to a live `net::Link`/`net::DelayPipe` pair
// off the session's event loop, so fault-injected runs stay byte-identical
// at any `--jobs` count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/loss_model.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::fault {

enum class FaultKind {
  /// Full link blackout: nothing serializes for the window; the droptail
  /// queue absorbs (and then drops) everything the sender keeps pushing.
  kLinkOutage,
  /// Feedback-path blackhole: forward media flows, but every reverse-path
  /// message (feedback reports, NACKs, PLIs) is silently discarded.
  kFeedbackBlackhole,
  /// One-way delay spike: `delay` extra propagation added to each direction
  /// (RTT grows by 2x `delay`).
  kDelaySpike,
  /// Each delivered packet is duplicated with probability `magnitude`.
  kDuplication,
  /// Each delivered packet is held back by up to `delay` with probability
  /// `magnitude`, letting later packets overtake it (bounded reordering).
  kReorder,
  /// Mobility handover: at `start` the link atomically moves to a new cell —
  /// capacity (`rate`), propagation (`propagation`), and loss model (`loss`)
  /// change in ONE event-loop action — and the radio goes silent for
  /// `duration` (forward outage + feedback blackhole). The revert only ends
  /// the silence; the new cell's parameters persist.
  kHandover,
  /// Datarate renegotiation (FPV modulation step): the link serializes at
  /// `rate` for the window, then falls back to the underlying rate.
  kRenegotiate,
};

std::string ToString(FaultKind kind);

/// One timed fault window. `magnitude`/`delay` are interpreted per kind
/// (see FaultKind comments); unused parameters are ignored.
struct FaultEvent {
  FaultKind kind = FaultKind::kLinkOutage;
  Timestamp start = Timestamp::Zero();
  TimeDelta duration = TimeDelta::Zero();
  /// Probability in [0,1] for kDuplication/kReorder.
  double magnitude = 0.0;
  /// Extra delay for kDelaySpike (per direction) / kReorder (max holdback).
  TimeDelta delay = TimeDelta::Zero();
  /// New link capacity for kHandover (persists) / kRenegotiate (windowed).
  DataRate rate = DataRate::Zero();
  /// New one-way propagation delay for kHandover (persists).
  TimeDelta propagation = TimeDelta::Zero();
  /// Replacement loss model for kHandover; nullopt keeps the old cell's.
  std::optional<net::LossModel> loss;
};

/// Validated fault script. Construction throws std::invalid_argument on
/// non-positive durations, probabilities outside [0,1], negative delays, or
/// overlapping windows of the same kind (revert order would be ambiguous).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// End of the last fault window; Timestamp::Zero() for an empty plan.
  Timestamp LastClearTime() const;

  // --- convenience builders (append-and-validate) ---
  FaultPlan& Outage(Timestamp start, TimeDelta duration);
  FaultPlan& FeedbackBlackhole(Timestamp start, TimeDelta duration);
  FaultPlan& DelaySpike(Timestamp start, TimeDelta duration, TimeDelta extra);
  FaultPlan& DuplicationBurst(Timestamp start, TimeDelta duration,
                              double probability);
  FaultPlan& ReorderBurst(Timestamp start, TimeDelta duration,
                          double probability, TimeDelta max_extra);
  /// Handover at `start`: new cell parameters applied atomically, radio
  /// silent for `gap` (typical 50–300 ms; keep below the circuit-breaker
  /// threshold unless breaker behaviour is the thing under test).
  FaultPlan& Handover(Timestamp start, TimeDelta gap, DataRate new_rate,
                      TimeDelta new_propagation,
                      std::optional<net::LossModel> new_loss = std::nullopt);
  /// Datarate renegotiation window [start, start+duration) at `rate`.
  FaultPlan& Renegotiate(Timestamp start, TimeDelta duration, DataRate rate);

  /// Human-readable one-line rendering ("outage@10s+2s, spike@20s+1s:150ms").
  std::string ToString() const;

 private:
  void Append(FaultEvent event);

  std::vector<FaultEvent> events_;
};

/// Parses the CLI fault spec: comma-separated `kind@START+DUR[:P1[:P2]]`
/// tokens with times in seconds —
///   outage@10+2              link blackout, t = 10 s..12 s
///   blackhole@20+3           feedback blackhole, 3 s
///   spike@30+2:150           +150 ms per direction for 2 s
///   dup@12+5:0.2             20% duplication for 5 s
///   reorder@12+5:0.2:40      20% of packets held back up to 40 ms
///   handover@15+0.2:900:60   at 15 s move to a 900 kbps / 60 ms-OWD cell
///                            after a 200 ms radio-silence gap; an optional
///                            fourth field (:LOSS) sets the new cell's
///                            i.i.d. loss probability
///   reneg@20+4:1200          link renegotiates to 1200 kbps for 4 s
/// Throws std::invalid_argument naming the offending token and echoing the
/// full spec string.
FaultPlan ParseFaultSpec(const std::string& spec);

}  // namespace rave::fault
