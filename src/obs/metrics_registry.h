// Per-session metrics registry: counters, gauges, and fixed-bucket
// histograms that subsystems register into by name. A registry belongs to
// one session (install with MetricsScope, mirror of obs::TraceScope); at
// the end of a run it is snapshotted into the SessionResult, serialized
// through the result-cache blob, and merged across sessions by run_suite
// into BENCH_suite.json.
//
// Naming convention (enforced by review, not code): `<subsystem>.<metric>`
// lower_snake within segments — "encoder.frames", "cc.overuse_decreases",
// "frame.latency_ms". Metrics whose values depend on wall-clock time (and
// therefore differ run-to-run) must use the `wall.` prefix; determinism
// gates exclude that prefix by name.
//
// Distribution metrics are QuantileSketches (obs/sketch.h): fixed-layout
// log-bucket histograms with exact count/min/max and a fixed-point sum,
// whose merge is commutative/associative and bit-identical under any shard
// order — the property the suite-wide "sketches" aggregation and the
// cross-run regression sentinel rely on. The older fixed-bound Histogram
// (inclusive upper bounds + overflow bucket, linear-interpolated
// percentiles) is kept for callers that want hand-picked bucket layouts,
// but registry call sites have been upgraded to sketches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/sketch.h"

namespace rave {
class ByteReader;
class ByteWriter;
}  // namespace rave

namespace rave::obs {

/// A monotonically increasing integer.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// A last-write-wins double.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket bounds in
/// ascending order; values above the last bound land in an overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bucket_counts().size() == bounds().size() + 1 (last is overflow).
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// Value at quantile q in [0,1], linearly interpolated inside the bucket;
  /// clamped to [min(), max()]. 0 when empty.
  double Percentile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// `count` upper bounds spaced geometrically from `lo` to `hi` (both > 0).
std::vector<double> ExponentialBounds(double lo, double hi, size_t count);
/// `count` upper bounds spaced evenly from `lo + step` to `hi`.
std::vector<double> LinearBounds(double lo, double hi, size_t count);

enum class MetricKind : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
  kSketch = 3
};

/// Serializable copy of one metric at snapshot time.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;
  double gauge = 0.0;
  // Histogram payload (kind == kHistogram only).
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Sketch payload (kind == kSketch only); the generic count/sum/min/max
  // fields above stay at their defaults — read the sketch's accessors.
  QuantileSketch sketch;

  /// Percentile over the snapshotted distribution (histogram buckets or
  /// the sketch, by kind).
  double Percentile(double q) const;

  bool operator==(const MetricSnapshot&) const = default;
};

/// All metrics of one session, sorted by name (deterministic ordering).
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  const MetricSnapshot* Find(const std::string& name) const;
  /// Merges `other` in: counters/histogram buckets add, gauges become
  /// averaged via (sum,count) — used by suite aggregation where a gauge
  /// across sessions reads as the mean. Bucket layouts must match for
  /// histograms with the same name; mismatches are skipped.
  void Merge(const RegistrySnapshot& other);

  void Encode(ByteWriter& w) const;
  static RegistrySnapshot Decode(ByteReader& r);

  bool operator==(const RegistrySnapshot&) const = default;
};

/// Owns the live metrics of one session. Returned pointers are stable
/// (entries are held by unique_ptr, so later registrations never invalidate
/// earlier ones). Only the *first* Get for a name allocates; repeat lookups
/// are a transparent string_view hash-map find with zero allocations, so
/// per-frame call sites stay inside the hot-path allocation budgets.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `make_bounds` (e.g. `[] { return ExponentialBounds(1, 1e4, 10); }`) is
  /// invoked only when the histogram does not exist yet; later calls with
  /// the same name return the existing histogram and never build bounds.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> (*make_bounds)());
  /// Mergeable log-bucket quantile sketch (obs/sketch.h) — the default
  /// choice for distribution metrics; no bounds to pick, and suite-wide
  /// merges stay bit-identical under any shard order.
  QuantileSketch* GetSketch(std::string_view name);

  RegistrySnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<QuantileSketch> sketch;
  };
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  Entry* FindOrNull(std::string_view name, MetricKind kind);
  Entry* AddEntry(std::string_view name, MetricKind kind);

  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, Entry*, SvHash, std::equal_to<>> by_name_;
};

/// Process-wide roll-up of host-side session measurements (wall clock,
/// allocation counts). These are intentionally NOT part of SessionResult:
/// the result blob must be bit-identical across reruns of the same config,
/// and wall time never is. Thread-safe; sessions on any thread record here
/// and run_suite snapshots the totals into BENCH_suite.json's "runtime"
/// section (excluded from determinism comparisons).
class RuntimeStats {
 public:
  static RuntimeStats& Instance();

  /// Called once per Session::Run with host-side measurements of that run.
  /// `events` is the logical event count (mode-invariant, the one in
  /// SessionResult); `dispatched` is how many scheduler callbacks actually
  /// fired — event coalescing shrinks it, and events/dispatched is the
  /// train-amortization factor.
  void RecordSession(double wall_ms, uint64_t events, uint64_t dispatched,
                     uint64_t allocs, uint64_t frames);

  /// Raw totals since the last Reset (tab4's amortization reporting).
  uint64_t total_events() const;
  uint64_t total_events_dispatched() const;

  /// Snapshot under the same MetricSnapshot schema as session registries:
  /// `wall.session_ms` / `wall.event_dispatch_ns` sketches plus
  /// `alloc.per_event` / `alloc.per_frame` gauges and raw totals.
  RegistrySnapshot Snapshot() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  QuantileSketch session_wall_ms_;
  QuantileSketch dispatch_ns_;
  uint64_t sessions_ = 0;
  uint64_t events_ = 0;
  uint64_t events_dispatched_ = 0;
  uint64_t allocs_ = 0;
  uint64_t frames_ = 0;
};

/// The registry installed on this thread, or nullptr.
MetricsRegistry* CurrentMetrics();

/// Installs `registry` for the scope's lifetime; nests like TraceScope.
class MetricsScope {
 public:
  explicit MetricsScope(MetricsRegistry* registry);
  ~MetricsScope();

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace rave::obs
