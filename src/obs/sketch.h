// Deterministic, mergeable quantile sketch.
//
// The suite-path aggregation problem: percentile claims (p95/p99 frame
// latency) over a sweep used to require materializing every per-frame
// latency in one vector — O(sessions x frames) memory, and impossible to
// shard. A QuantileSketch is the streaming replacement: a fixed-layout
// log-bucket histogram (HdrHistogram/DDSketch family) with exact count,
// fixed-point sum, and exact min/max, sized so one sketch is a few KB
// regardless of how many samples it absorbed.
//
// Layout (compile-time constants, identical in every sketch — there is no
// per-instance configuration, which is what makes any two sketches
// mergeable):
//   * bucket 0                       — underflow: v < 2^-16 (incl. 0 and
//                                      negatives)
//   * buckets 1..kNumLogBuckets      — log-spaced: 32 sub-buckets per
//                                      power of two, covering [2^-16, 2^48)
//   * bucket kNumLogBuckets + 1      — overflow: v >= 2^48
// The log-bucket index of a positive double is a pure integer function of
// its IEEE-754 bits (biased exponent + top 5 mantissa bits), so bucketing
// never depends on floating-point rounding modes or evaluation order.
//
// Determinism contract: Merge() adds integer bucket counts, adds the
// 128-bit fixed-point sums, and takes min/max — all commutative and
// associative — so merging any permutation of shards, in any grouping,
// yields a bit-identical sketch. The sum is accumulated in fixed point
// (2^-20 units) precisely so that no floating-point addition order can
// leak into the merged state; the quantization error is <= 2^-20 per
// sample and sum() documents it.
//
// Accuracy: Quantile(q) returns a value inside the bucket holding the true
// order statistic (linear interpolation by rank inside the bucket, clamped
// to [min, max]), so for samples inside the log range the relative error is
// bounded by the bucket width: kRelativeError = 2^(1/32) - 1 ~= 2.2%.
// q = 0 and q = 1 return the exact min/max. Non-finite samples are ignored.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rave {
class ByteReader;
class ByteWriter;
}  // namespace rave

namespace rave::obs {

class QuantileSketch {
 public:
  /// Sub-bucket resolution: 2^5 = 32 log buckets per power of two.
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  /// Smallest / one-past-largest value resolved by the log range; outside
  /// values land in the underflow/overflow buckets (min/max stay exact).
  static constexpr double kMinValue = 0x1p-16;  // 2^-16
  static constexpr double kMaxValue = 0x1p48;   // 2^48
  static constexpr int kMinBiasedExp = 1023 - 16;
  static constexpr int kMaxBiasedExp = 1023 + 47;
  static constexpr int kNumLogBuckets =
      (kMaxBiasedExp - kMinBiasedExp + 1) * kSubBuckets;  // 2048
  /// Dense layout size: underflow + log buckets + overflow.
  static constexpr int kTotalBuckets = kNumLogBuckets + 2;
  /// Worst-case relative error of Quantile() for samples in
  /// [kMinValue, kMaxValue): one bucket width, 2^(1/32) - 1.
  static constexpr double kRelativeError = 0.0219;  // > 2^(1/32) - 1

  /// Adds one sample. Ignores NaN/inf (they would poison sum and min/max).
  void Record(double v);

  /// Adds `other` into this sketch. Commutative, associative, and
  /// bit-identical under any merge order or grouping.
  void Merge(const QuantileSketch& other);

  uint64_t count() const { return count_; }
  /// Sum of samples, quantized to 2^-20 per sample (see file comment).
  double sum() const;
  /// Exact extremes; 0 when empty.
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Value at quantile q in [0,1] (clamped). Same rank semantics as the
  /// registry histograms: q=0 -> min, q=1 -> max, linear interpolation by
  /// rank inside the winning bucket. 0 when empty.
  double Quantile(double q) const;

  /// Sparse serialization: only non-zero buckets are written, so encoded
  /// size is O(distinct magnitudes), typically well under 1 KB.
  void Encode(ByteWriter& w) const;
  /// Inverse of Encode. On truncated bytes or a structurally invalid
  /// payload (out-of-range/unsorted bucket indices, bucket counts that do
  /// not sum to the total) the reader is invalidated, so blob decoding
  /// fails closed and the cache recomputes.
  static QuantileSketch Decode(ByteReader& r);

  bool operator==(const QuantileSketch& other) const;

 private:
  /// Dense bucket index for a finite sample.
  static int BucketIndex(double v);
  /// Lower bound of dense bucket i (i in [1, kNumLogBuckets + 1]); the
  /// upper bound of bucket i is BucketLowerBound(i + 1).
  static double BucketLowerBound(int i);

  /// Lazily allocated on first Record/Merge; empty iff count_ == 0, so the
  /// defaulted comparison semantics stay value-based.
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  /// Fixed-point (2^-20 units) sum in 128 bits; addition is associative,
  /// so merge order cannot change a bit. Per-sample contributions are
  /// clamped to +/-2^100 units, far beyond any metric this codebase emits.
  __int128 sum_fp_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rave::obs
