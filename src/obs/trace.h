// Session tracing: a per-session recorder that captures control-plane
// timelines (encoder QP, VBV fill, BWE estimate, queue depths, breaker
// state, fault injections) and exports them as Chrome `trace_event` JSON,
// openable in Perfetto / chrome://tracing.
//
// Integration model: subsystems call the RAVE_TRACE_* macros with an
// explicit simulation timestamp. The macros consult a thread-local
// `TraceRecorder*` (installed with `TraceScope` around `Session::Run`), so
// tracing is
//   - zero-cost when compiled out (-DRAVE_TRACING_DISABLED: the macros
//     expand to nothing and evaluate no arguments),
//   - one thread-local load + predicted branch when compiled in but not
//     enabled (the default: no recorder installed, nothing allocates, the
//     hot-path allocation budgets hold unchanged),
//   - one bounds-checked append into a pre-reserved vector when recording.
//
// Tracks are a fixed enum, not strings, so the recording path never hashes
// or compares names; the name table lives in the JSON writer only.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/time.h"

namespace rave::obs {

/// Every trace track, grouped by subsystem. One counter track renders as
/// one timeline row in Perfetto; instant tracks mark discrete transitions.
enum class Track : uint8_t {
  // encoder
  kEncoderQp = 0,       ///< QP of each encoded frame
  kEncoderFrameKbits,   ///< size of each encoded frame
  kEncoderKeyframe,     ///< instant: keyframe emitted
  // codec rate control
  kVbvFill,             ///< VBV fullness in [0,1]
  kAbrRateRatio,        ///< ABR overflow-compensation ratio (x264 `overflow`)
  // congestion control
  kBweTargetKbps,       ///< estimator target
  kTrendlineState,      ///< 0 normal / 1 overusing / 2 underusing
  kLossRate,            ///< loss fraction reported by the estimator
  // transport / network
  kPacerQueueMs,        ///< pacer queue drain time
  kLinkQueueMs,         ///< bottleneck queue delay
  // control plane
  kBreakerState,        ///< 0 closed / 1 open / 2 paused / 3 recovering
  kFrameBudgetKbits,    ///< adaptive controller's per-frame bit budget
  kFaultInjection,      ///< instant: fault applied / reverted
  // session
  kCapacityKbps,        ///< ground-truth link capacity
  kCount,
};

inline constexpr size_t kTrackCount = static_cast<size_t>(Track::kCount);

/// Track name as it appears in the trace ("encoder/qp", "cc/bwe_kbps", ...).
const char* TrackName(Track track);
/// Subsystem group ("encoder", "cc", ...); one Perfetto thread row each.
const char* TrackSubsystem(Track track);

/// One recorded event. `label` (instants only) must point at a string with
/// static storage duration — the recorder stores the pointer, not a copy,
/// so the hot path never allocates.
struct TraceEvent {
  int64_t at_us = 0;
  double value = 0.0;
  const char* label = nullptr;
  Track track = Track::kCount;
  bool instant = false;
};

/// Collects events for one session. Not thread-safe: one recorder belongs
/// to exactly one session running on one thread (install with TraceScope).
class TraceRecorder {
 public:
  struct Options {
    /// Maximum counter samples per second *per track*; <= 0 records every
    /// sample. Instant events are never sampled away.
    double sample_hz = 0.0;
    /// Event capacity reserved up front.
    size_t reserve = 1 << 15;
  };

  TraceRecorder() : TraceRecorder(Options{}) {}
  explicit TraceRecorder(Options options);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Records a counter sample (subject to per-track sampling).
  void Counter(Track track, Timestamp at, double value);
  /// Records an instant event; `label` must have static storage duration.
  void Instant(Track track, Timestamp at, const char* label);

  const std::vector<TraceEvent>& events() const { return events_; }
  const Options& options() const { return options_; }

  /// Writes Chrome trace_event JSON: `{"traceEvents": [...]}` with one
  /// event object per line (so ReadTraceJson below can parse it back),
  /// counter events as "ph":"C" and instants as "ph":"i", plus process/
  /// thread metadata naming each subsystem row.
  void WriteJson(std::ostream& os) const;
  /// WriteJson to `path`; false (with the file removed) on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  Options options_;
  int64_t min_interval_us_ = 0;
  std::array<int64_t, kTrackCount> next_allowed_us_;
  std::vector<TraceEvent> events_;
};

/// Parses a `--trace-out=<path>[:sample_hz]` spec. Returns false (outputs
/// untouched) when the sample rate suffix is present but malformed.
bool ParseTraceSpec(const std::string& spec, std::string* path,
                    TraceRecorder::Options* options);

/// One event parsed back out of the JSON WriteJson emits.
struct ParsedTraceEvent {
  std::string name;
  std::string phase;  ///< "C", "i" or "M"
  std::string arg;    ///< thread/process name for "M" events
  int64_t ts_us = 0;
  double value = 0.0;
};

/// Minimal reader for WriteJson output (one event per line). Tolerates and
/// skips unrecognized lines; false when `is` contains no events at all.
bool ReadTraceJson(std::istream& is, std::vector<ParsedTraceEvent>* out);

/// The recorder installed on this thread, or nullptr (tracing disabled).
TraceRecorder* CurrentTrace();

/// Installs `recorder` as this thread's recorder for the scope's lifetime;
/// restores the previous one (scopes nest) on destruction.
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder* recorder);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* previous_;
};

}  // namespace rave::obs

// Instrumentation macros. `at` is an explicit simulation Timestamp; `track`
// is the bare Track enumerator name (kEncoderQp, ...). With
// RAVE_TRACING_DISABLED defined the macros expand to nothing and their
// arguments are not evaluated.
#ifndef RAVE_TRACING_DISABLED
#define RAVE_TRACE_COUNTER(track, at, value)                                  \
  do {                                                                        \
    if (::rave::obs::TraceRecorder* rave_trace_rec_ =                         \
            ::rave::obs::CurrentTrace()) {                                    \
      rave_trace_rec_->Counter(::rave::obs::Track::track, (at), (value));     \
    }                                                                         \
  } while (0)
#define RAVE_TRACE_INSTANT(track, at, label)                                  \
  do {                                                                        \
    if (::rave::obs::TraceRecorder* rave_trace_rec_ =                         \
            ::rave::obs::CurrentTrace()) {                                    \
      rave_trace_rec_->Instant(::rave::obs::Track::track, (at), (label));     \
    }                                                                         \
  } while (0)
#else
#define RAVE_TRACE_COUNTER(track, at, value) \
  do {                                       \
  } while (0)
#define RAVE_TRACE_INSTANT(track, at, label) \
  do {                                       \
  } while (0)
#endif
