#include "obs/stage_timer.h"

namespace rave::obs {

bool StageTimer::enabled_ = false;
std::atomic<int64_t> StageTimer::ns_[StageTimer::kStageCount] = {};

void StageTimer::Reset() {
  for (auto& counter : ns_) counter.store(0, std::memory_order_relaxed);
}

double StageTimer::Seconds(Stage stage) {
  return static_cast<double>(ns_[stage].load(std::memory_order_relaxed)) *
         1e-9;
}

}  // namespace rave::obs
