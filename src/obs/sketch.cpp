#include "obs/sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/byteio.h"

namespace rave::obs {

namespace {

/// Fixed-point scale for the deterministic sum: 2^20 units per 1.0.
constexpr double kSumScale = 0x1p20;
/// Per-sample clamp on the scaled contribution, so converting the double
/// product to __int128 is always in range (no UB on absurd inputs).
constexpr double kSumClampUnits = 0x1p100;

}  // namespace

int QuantileSketch::BucketIndex(double v) {
  if (!(v >= kMinValue)) return 0;                     // underflow, 0, negative
  if (v >= kMaxValue) return kNumLogBuckets + 1;       // overflow
  const uint64_t bits = std::bit_cast<uint64_t>(v);
  const int biased_exp = static_cast<int>(bits >> 52);
  const int sub = static_cast<int>((bits >> (52 - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  return 1 + (biased_exp - kMinBiasedExp) * kSubBuckets + sub;
}

double QuantileSketch::BucketLowerBound(int i) {
  const int idx = i - 1;
  const uint64_t biased_exp =
      static_cast<uint64_t>(kMinBiasedExp + idx / kSubBuckets);
  const uint64_t sub = static_cast<uint64_t>(idx % kSubBuckets);
  return std::bit_cast<double>((biased_exp << 52) |
                               (sub << (52 - kSubBucketBits)));
}

void QuantileSketch::Record(double v) {
  if (!std::isfinite(v)) return;
  if (count_ == 0) {
    buckets_.assign(kTotalBuckets, 0);
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  const double units =
      std::clamp(v * kSumScale, -kSumClampUnits, kSumClampUnits);
  sum_fp_ += static_cast<__int128>(units);
  ++buckets_[static_cast<size_t>(BucketIndex(v))];
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_fp_ += other.sum_fp_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSketch::sum() const {
  return static_cast<double>(sum_fp_) / kSumScale;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Rank of the target sample, 1-based (same semantics as the registry
  // histograms): q=0 -> first sample, q=1 -> last.
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  uint64_t cumulative = 0;
  for (int i = 0; i < kTotalBuckets; ++i) {
    const uint64_t in_bucket = buckets_[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    const double bucket_first = static_cast<double>(cumulative) + 1.0;
    cumulative += in_bucket;
    if (rank > static_cast<double>(cumulative)) continue;
    const double lower = i == 0 ? min_ : BucketLowerBound(i);
    const double upper =
        i == kTotalBuckets - 1 ? max_ : BucketLowerBound(i + 1);
    const double lo = std::clamp(lower, min_, max_);
    const double hi = std::clamp(upper, min_, max_);
    if (in_bucket == 1 || hi <= lo) return hi;
    const double frac =
        (rank - bucket_first) / static_cast<double>(in_bucket - 1);
    return lo + frac * (hi - lo);
  }
  return max_;
}

void QuantileSketch::Encode(ByteWriter& w) const {
  w.U64(count_);
  w.U64(static_cast<uint64_t>(static_cast<unsigned __int128>(sum_fp_) >> 64));
  w.U64(static_cast<uint64_t>(static_cast<unsigned __int128>(sum_fp_)));
  w.F64(min_);
  w.F64(max_);
  uint32_t nonzero = 0;
  for (uint64_t c : buckets_) nonzero += c != 0 ? 1 : 0;
  w.U32(nonzero);
  for (int i = 0; i < static_cast<int>(buckets_.size()); ++i) {
    if (buckets_[static_cast<size_t>(i)] == 0) continue;
    w.U32(static_cast<uint32_t>(i));
    w.U64(buckets_[static_cast<size_t>(i)]);
  }
}

QuantileSketch QuantileSketch::Decode(ByteReader& r) {
  QuantileSketch s;
  s.count_ = r.U64();
  const uint64_t sum_hi = r.U64();
  const uint64_t sum_lo = r.U64();
  s.sum_fp_ = static_cast<__int128>(
      (static_cast<unsigned __int128>(sum_hi) << 64) | sum_lo);
  s.min_ = r.F64();
  s.max_ = r.F64();
  const uint32_t nonzero = r.U32();
  if (!r.ok()) return QuantileSketch{};
  if (s.count_ > 0) s.buckets_.assign(kTotalBuckets, 0);
  uint64_t total = 0;
  int prev_index = -1;
  for (uint32_t i = 0; i < nonzero && r.ok(); ++i) {
    const uint32_t index = r.U32();
    const uint64_t bucket_count = r.U64();
    if (index >= kTotalBuckets || static_cast<int>(index) <= prev_index ||
        bucket_count == 0 || s.count_ == 0) {
      r.Invalidate();
      return QuantileSketch{};
    }
    prev_index = static_cast<int>(index);
    s.buckets_[index] = bucket_count;
    total += bucket_count;
  }
  if (!r.ok()) return QuantileSketch{};
  // Structural validation: bucket counts must account for every sample, an
  // empty sketch must carry no state, and min/max must be finite and
  // ordered. Anything else is corruption; fail the stream.
  const bool empty_ok =
      s.count_ != 0 || (s.sum_fp_ == 0 && s.min_ == 0.0 && s.max_ == 0.0);
  const bool extremes_ok =
      s.count_ == 0 ||
      (std::isfinite(s.min_) && std::isfinite(s.max_) && s.min_ <= s.max_);
  if (total != s.count_ || !empty_ok || !extremes_ok) {
    r.Invalidate();
    return QuantileSketch{};
  }
  return s;
}

bool QuantileSketch::operator==(const QuantileSketch& other) const {
  return count_ == other.count_ && sum_fp_ == other.sum_fp_ &&
         min_ == other.min_ && max_ == other.max_ &&
         buckets_ == other.buckets_;
}

}  // namespace rave::obs
