// Opt-in per-stage wall-clock attribution for the session hot path.
//
// Disabled (the default), a Scope costs one branch on a static bool — the
// hot path stays allocation-free and the alloc/throughput gates are
// unaffected. Enabled (tab4's stage-breakdown pass), Scopes accumulate
// steady-clock nanoseconds per stage into process-wide atomics, so a
// serial run can attribute session wall time to the control law, the R-D
// model, the delay-gradient estimator, and the transport, with the
// remainder being event-loop machinery. Enable/Reset are not hot-path
// operations; benches toggle them around a dedicated measurement pass
// (instrumented passes are never used for speedup numbers).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rave::obs {

class StageTimer {
 public:
  enum Stage {
    /// Rate-control plan + update (scalar or the hub's batched phases A/C).
    kControl = 0,
    /// R-D encode math: size/SSIM/PSNR (scalar or the hub's batched phase B).
    kRd,
    /// Congestion control: trendline/GCC feedback processing.
    kTrendline,
    // The former monolithic `transport` stage, split per hop so wins (and
    // regressions) are attributable. Scopes never nest — each tags a leaf
    // code path — so per-stage sums stay comparable against wall clock.
    /// Sender-side per-send bookkeeping: seq/history/RTX-cache/FEC close,
    /// plus the link enqueue it triggers.
    kPacer,
    /// Bottleneck serializer: completion drains (loss draw + delivery
    /// scheduling). Receiver-side handlers are attributed to their own
    /// stages, not here.
    kLink,
    /// Receiver feedback accounting + NACK gap scan, and the sender-side
    /// report join.
    kFeedbackNack,
    /// Frame reassembly + jitter-buffer playout decisions.
    kAssembler,
    kStageCount,
  };

  static void Enable(bool on) { enabled_ = on; }
  static bool enabled() { return enabled_; }
  static void Reset();
  /// Accumulated seconds for `stage` since the last Reset.
  static double Seconds(Stage stage);

  /// RAII accumulator; no-op unless the timer was enabled at construction.
  class Scope {
   public:
    explicit Scope(Stage stage) : stage_(stage), armed_(enabled_) {
      if (armed_) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (armed_) {
        const int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
        ns_[stage_].fetch_add(ns, std::memory_order_relaxed);
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Stage stage_;
    bool armed_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  static bool enabled_;
  static std::atomic<int64_t> ns_[kStageCount];
};

}  // namespace rave::obs
