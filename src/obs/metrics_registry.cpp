#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>

#include "util/byteio.h"

namespace rave::obs {
namespace {

thread_local MetricsRegistry* g_current_metrics = nullptr;

// Shared percentile math over bucketized data: inclusive upper bounds plus
// an overflow bucket, linear interpolation inside the winning bucket.
double BucketPercentile(const std::vector<double>& bounds,
                        const std::vector<uint64_t>& counts, uint64_t count,
                        double min, double max, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The extreme quantiles are tracked exactly; no bucket math needed.
  if (q == 0.0) return min;
  if (q == 1.0) return max;
  // Rank of the target sample, 1-based; q=0 -> first, q=1 -> last.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double bucket_first = static_cast<double>(cumulative) + 1.0;
    cumulative += in_bucket;
    if (rank > static_cast<double>(cumulative)) continue;
    const double lower =
        i == 0 ? min : (i < bounds.size() ? bounds[i - 1] : bounds.back());
    const double upper = i < bounds.size() ? bounds[i] : max;
    const double lo = std::max(lower, min);
    const double hi = std::min(upper, max);
    if (in_bucket == 1 || hi <= lo) return std::clamp(hi, min, max);
    const double frac =
        (rank - bucket_first) / static_cast<double>(in_bucket - 1);
    return std::clamp(lo + frac * (hi - lo), min, max);
  }
  return max;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<size_t>(it - bounds_.begin())]++;
}

double Histogram::Percentile(double q) const {
  return BucketPercentile(bounds_, counts_, count_, min_, max_, q);
}

std::vector<double> ExponentialBounds(double lo, double hi, size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  if (count == 0 || lo <= 0.0 || hi <= lo) return bounds;
  const double ratio =
      count == 1 ? 1.0 : std::pow(hi / lo, 1.0 / static_cast<double>(count - 1));
  double b = lo;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(i + 1 == count ? hi : b);
    b *= ratio;
  }
  return bounds;
}

std::vector<double> LinearBounds(double lo, double hi, size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  if (count == 0 || hi <= lo) return bounds;
  const double step = (hi - lo) / static_cast<double>(count);
  for (size_t i = 1; i <= count; ++i) {
    bounds.push_back(i == count ? hi : lo + step * static_cast<double>(i));
  }
  return bounds;
}

double MetricSnapshot::Percentile(double q) const {
  if (kind == MetricKind::kSketch) return sketch.Quantile(q);
  return BucketPercentile(bounds, bucket_counts, count, min, max, q);
}

const MetricSnapshot* RegistrySnapshot::Find(const std::string& name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void RegistrySnapshot::Merge(const RegistrySnapshot& other) {
  for (const MetricSnapshot& theirs : other.metrics) {
    MetricSnapshot* mine = nullptr;
    for (MetricSnapshot& m : metrics) {
      if (m.name == theirs.name && m.kind == theirs.kind) {
        mine = &m;
        break;
      }
    }
    if (mine == nullptr) {
      metrics.push_back(theirs);
      // Gauges carry (sum, count) through `gauge` + `count` so repeated
      // merges average correctly; normalize the first copy.
      MetricSnapshot& added = metrics.back();
      if (added.kind == MetricKind::kGauge && added.count == 0) {
        added.count = 1;
      }
      continue;
    }
    switch (theirs.kind) {
      case MetricKind::kCounter:
        mine->counter += theirs.counter;
        break;
      case MetricKind::kGauge: {
        const uint64_t their_n = theirs.count == 0 ? 1 : theirs.count;
        const uint64_t my_n = mine->count == 0 ? 1 : mine->count;
        mine->gauge = (mine->gauge * static_cast<double>(my_n) +
                       theirs.gauge * static_cast<double>(their_n)) /
                      static_cast<double>(my_n + their_n);
        mine->count = my_n + their_n;
        break;
      }
      case MetricKind::kHistogram: {
        if (mine->bounds != theirs.bounds) break;  // incompatible layout
        for (size_t i = 0; i < mine->bucket_counts.size() &&
                           i < theirs.bucket_counts.size();
             ++i) {
          mine->bucket_counts[i] += theirs.bucket_counts[i];
        }
        if (theirs.count > 0) {
          if (mine->count == 0) {
            mine->min = theirs.min;
            mine->max = theirs.max;
          } else {
            mine->min = std::min(mine->min, theirs.min);
            mine->max = std::max(mine->max, theirs.max);
          }
        }
        mine->count += theirs.count;
        mine->sum += theirs.sum;
        break;
      }
      case MetricKind::kSketch:
        mine->sketch.Merge(theirs.sketch);
        break;
    }
  }
  std::sort(metrics.begin(), metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
}

void RegistrySnapshot::Encode(ByteWriter& w) const {
  w.U64(metrics.size());
  for (const MetricSnapshot& m : metrics) {
    w.Str(m.name);
    w.U8(static_cast<uint8_t>(m.kind));
    w.U64(m.counter);
    w.F64(m.gauge);
    w.U64(m.bounds.size());
    for (double b : m.bounds) w.F64(b);
    w.U64(m.bucket_counts.size());
    for (uint64_t c : m.bucket_counts) w.U64(c);
    w.U64(m.count);
    w.F64(m.sum);
    w.F64(m.min);
    w.F64(m.max);
    if (m.kind == MetricKind::kSketch) m.sketch.Encode(w);
  }
}

RegistrySnapshot RegistrySnapshot::Decode(ByteReader& r) {
  RegistrySnapshot snap;
  const uint64_t n = r.U64();
  if (!r.ok()) return snap;
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    MetricSnapshot m;
    m.name = r.Str();
    const uint8_t kind_byte = r.U8();
    if (kind_byte > static_cast<uint8_t>(MetricKind::kSketch)) {
      // An unknown kind desynchronizes the stream (the sketch payload is
      // conditional on it); fail closed instead of misparsing.
      r.Invalidate();
      return snap;
    }
    m.kind = static_cast<MetricKind>(kind_byte);
    m.counter = r.U64();
    m.gauge = r.F64();
    const uint64_t nb = r.U64();
    for (uint64_t j = 0; j < nb && r.ok(); ++j) m.bounds.push_back(r.F64());
    const uint64_t nc = r.U64();
    for (uint64_t j = 0; j < nc && r.ok(); ++j) {
      m.bucket_counts.push_back(r.U64());
    }
    m.count = r.U64();
    m.sum = r.F64();
    m.min = r.F64();
    m.max = r.F64();
    if (m.kind == MetricKind::kSketch) m.sketch = QuantileSketch::Decode(r);
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(std::string_view name,
                                                    MetricKind kind) {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return it->second->kind == kind ? it->second : nullptr;
}

MetricsRegistry::Entry* MetricsRegistry::AddEntry(std::string_view name,
                                                  MetricKind kind) {
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = kind;
  Entry* out = entry.get();
  by_name_.emplace(out->name, out);
  entries_.push_back(std::move(entry));
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  if (Entry* e = FindOrNull(name, MetricKind::kCounter)) {
    return e->counter.get();
  }
  Entry* e = AddEntry(name, MetricKind::kCounter);
  e->counter = std::make_unique<Counter>();
  return e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  if (Entry* e = FindOrNull(name, MetricKind::kGauge)) return e->gauge.get();
  Entry* e = AddEntry(name, MetricKind::kGauge);
  e->gauge = std::make_unique<Gauge>();
  return e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> (*make_bounds)()) {
  if (Entry* e = FindOrNull(name, MetricKind::kHistogram)) {
    return e->histogram.get();
  }
  Entry* e = AddEntry(name, MetricKind::kHistogram);
  e->histogram = std::make_unique<Histogram>(make_bounds());
  return e->histogram.get();
}

QuantileSketch* MetricsRegistry::GetSketch(std::string_view name) {
  if (Entry* e = FindOrNull(name, MetricKind::kSketch)) return e->sketch.get();
  Entry* e = AddEntry(name, MetricKind::kSketch);
  e->sketch = std::make_unique<QuantileSketch>();
  return e->sketch.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  snap.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSnapshot m;
    m.name = entry->name;
    m.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        m.counter = entry->counter->value();
        break;
      case MetricKind::kGauge:
        m.gauge = entry->gauge->value();
        m.count = 1;  // gauge merge weight
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry->histogram;
        m.bounds = h.bounds();
        m.bucket_counts = h.bucket_counts();
        m.count = h.count();
        m.sum = h.sum();
        m.min = h.min();
        m.max = h.max();
        break;
      }
      case MetricKind::kSketch:
        m.sketch = *entry->sketch;
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

RuntimeStats& RuntimeStats::Instance() {
  static RuntimeStats stats;
  return stats;
}

void RuntimeStats::RecordSession(double wall_ms, uint64_t events,
                                 uint64_t dispatched, uint64_t allocs,
                                 uint64_t frames) {
  const std::lock_guard<std::mutex> lock(mu_);
  session_wall_ms_.Record(wall_ms);
  if (dispatched > 0) {
    dispatch_ns_.Record(wall_ms * 1e6 / static_cast<double>(dispatched));
  }
  ++sessions_;
  events_ += events;
  events_dispatched_ += dispatched;
  allocs_ += allocs;
  frames_ += frames;
}

uint64_t RuntimeStats::total_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t RuntimeStats::total_events_dispatched() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_dispatched_;
}

RegistrySnapshot RuntimeStats::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  auto sketch = [](const char* name, const QuantileSketch& s) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricKind::kSketch;
    m.sketch = s;
    return m;
  };
  auto counter = [](const char* name, uint64_t v) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricKind::kCounter;
    m.counter = v;
    return m;
  };
  auto gauge = [](const char* name, double v) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricKind::kGauge;
    m.gauge = v;
    m.count = 1;
    return m;
  };
  snap.metrics.push_back(counter("alloc.total", allocs_));
  if (events_ > 0) {
    snap.metrics.push_back(
        gauge("alloc.per_event",
              static_cast<double>(allocs_) / static_cast<double>(events_)));
  }
  if (frames_ > 0) {
    snap.metrics.push_back(
        gauge("alloc.per_frame",
              static_cast<double>(allocs_) / static_cast<double>(frames_)));
  }
  snap.metrics.push_back(counter("wall.sessions", sessions_));
  snap.metrics.push_back(counter("wall.events", events_));
  snap.metrics.push_back(counter("wall.events_dispatched", events_dispatched_));
  if (events_dispatched_ > 0) {
    snap.metrics.push_back(
        gauge("wall.train_amortization",
              static_cast<double>(events_) /
                  static_cast<double>(events_dispatched_)));
  }
  snap.metrics.push_back(sketch("wall.event_dispatch_ns", dispatch_ns_));
  snap.metrics.push_back(sketch("wall.session_ms", session_wall_ms_));
  return snap;
}

void RuntimeStats::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  session_wall_ms_ = QuantileSketch{};
  dispatch_ns_ = QuantileSketch{};
  sessions_ = 0;
  events_ = 0;
  events_dispatched_ = 0;
  allocs_ = 0;
  frames_ = 0;
}

MetricsRegistry* CurrentMetrics() { return g_current_metrics; }

MetricsScope::MetricsScope(MetricsRegistry* registry)
    : previous_(g_current_metrics) {
  g_current_metrics = registry;
}

MetricsScope::~MetricsScope() { g_current_metrics = previous_; }

}  // namespace rave::obs
