#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace rave::obs {
namespace {

struct TrackInfo {
  const char* name;
  const char* subsystem;
  int tid;
};

// Subsystem tids group tracks into Perfetto "thread" rows per subsystem.
constexpr TrackInfo kTracks[kTrackCount] = {
    {"encoder/qp", "encoder", 1},
    {"encoder/frame_kbits", "encoder", 1},
    {"encoder/keyframe", "encoder", 1},
    {"codec/vbv_fill", "codec", 2},
    {"codec/abr_rate_ratio", "codec", 2},
    {"cc/bwe_kbps", "cc", 3},
    {"cc/trendline_state", "cc", 3},
    {"cc/loss_rate", "cc", 3},
    {"transport/pacer_queue_ms", "transport", 4},
    {"net/link_queue_ms", "net", 5},
    {"core/breaker_state", "core", 6},
    {"core/frame_budget_kbits", "core", 6},
    {"fault/injection", "fault", 7},
    {"session/capacity_kbps", "session", 8},
};

thread_local TraceRecorder* g_current_trace = nullptr;

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out->append(buf);
}

}  // namespace

const char* TrackName(Track track) {
  return kTracks[static_cast<size_t>(track)].name;
}

const char* TrackSubsystem(Track track) {
  return kTracks[static_cast<size_t>(track)].subsystem;
}

TraceRecorder::TraceRecorder(Options options) : options_(options) {
  if (options_.sample_hz > 0.0) {
    min_interval_us_ = static_cast<int64_t>(1e6 / options_.sample_hz);
  }
  next_allowed_us_.fill(std::numeric_limits<int64_t>::min());
  events_.reserve(options_.reserve);
}

void TraceRecorder::Counter(Track track, Timestamp at, double value) {
  const int64_t at_us = at.us();
  if (min_interval_us_ > 0) {
    int64_t& next = next_allowed_us_[static_cast<size_t>(track)];
    if (at_us < next) return;
    next = at_us + min_interval_us_;
  }
  events_.push_back(TraceEvent{at_us, value, nullptr, track, false});
}

void TraceRecorder::Instant(Track track, Timestamp at, const char* label) {
  events_.push_back(TraceEvent{at.us(), 0.0, label, track, true});
}

void TraceRecorder::WriteJson(std::ostream& os) const {
  std::string line;
  line.reserve(256);
  os << "{\"traceEvents\": [\n";
  // Metadata first: one process plus one named "thread" per subsystem, so
  // Perfetto groups the tracks into labeled rows.
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
        "\"args\": {\"name\": \"rave session\"}},\n";
  bool seen_tid[16] = {};
  std::string meta;
  for (const TrackInfo& info : kTracks) {
    if (seen_tid[info.tid]) continue;
    seen_tid[info.tid] = true;
    meta.clear();
    meta += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
    meta += std::to_string(info.tid);
    meta += ", \"args\": {\"name\": \"";
    AppendJsonEscaped(&meta, info.subsystem);
    meta += "\"}},\n";
    os << meta;
  }
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    const TrackInfo& info = kTracks[static_cast<size_t>(ev.track)];
    line.clear();
    line += "{\"name\": \"";
    AppendJsonEscaped(&line, info.name);
    line += "\", \"ph\": \"";
    line += ev.instant ? 'i' : 'C';
    line += "\", \"pid\": 1, \"tid\": ";
    line += std::to_string(info.tid);
    line += ", \"ts\": ";
    line += std::to_string(ev.at_us);
    if (ev.instant) {
      line += ", \"s\": \"t\", \"args\": {\"label\": \"";
      AppendJsonEscaped(&line, ev.label != nullptr ? ev.label : "");
      line += "\"}}";
    } else {
      line += ", \"args\": {\"value\": ";
      AppendDouble(&line, ev.value);
      line += "}}";
    }
    if (i + 1 < events_.size()) line += ',';
    line += '\n';
    os << line;
  }
  os << "]}\n";
}

bool TraceRecorder::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  WriteJson(out);
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(path.c_str());
    return false;
  }
  return true;
}

bool ParseTraceSpec(const std::string& spec, std::string* path,
                    TraceRecorder::Options* options) {
  std::string p = spec;
  TraceRecorder::Options opts;
  const size_t colon = spec.find_last_of(':');
  // A ':' only splits off a sample rate when the suffix is numeric; this
  // keeps Windows-style "C:/..." paths and plain paths working.
  if (colon != std::string::npos && colon + 1 < spec.size()) {
    const std::string suffix = spec.substr(colon + 1);
    char* end = nullptr;
    const double hz = std::strtod(suffix.c_str(), &end);
    if (end != nullptr && *end == '\0' && end != suffix.c_str()) {
      if (hz <= 0.0) return false;
      opts.sample_hz = hz;
      p = spec.substr(0, colon);
    }
  }
  if (p.empty()) return false;
  *path = p;
  *options = opts;
  return true;
}

namespace {

// Pulls `"key": <...>` out of a single JSON-object line written by
// WriteJson. Returns the raw value text (string values without quotes).
bool ExtractField(const std::string& line, const std::string& key,
                  std::string* out) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    ++pos;
    std::string value;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
      value.push_back(line[pos]);
      ++pos;
    }
    *out = value;
    return true;
  }
  size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(pos, end - pos);
  return true;
}

}  // namespace

bool ReadTraceJson(std::istream& is, std::vector<ParsedTraceEvent>* out) {
  std::string line;
  size_t parsed = 0;
  while (std::getline(is, line)) {
    ParsedTraceEvent ev;
    if (!ExtractField(line, "name", &ev.name)) continue;
    if (!ExtractField(line, "ph", &ev.phase)) continue;
    std::string field;
    if (ExtractField(line, "ts", &field)) {
      ev.ts_us = std::strtoll(field.c_str(), nullptr, 10);
    }
    if (ExtractField(line, "value", &field)) {
      ev.value = std::strtod(field.c_str(), nullptr);
    }
    if (ev.phase == "M") {
      // Metadata arg is the process/thread name.
      ExtractField(line, "args", &field);  // ignored; name nested below
      std::string nested;
      const size_t args_pos = line.find("\"args\"");
      if (args_pos != std::string::npos &&
          ExtractField(line.substr(args_pos + 6), "name", &nested)) {
        ev.arg = nested;
      }
    } else if (ev.phase == "i") {
      const size_t args_pos = line.find("\"args\"");
      if (args_pos != std::string::npos) {
        std::string label;
        if (ExtractField(line.substr(args_pos + 6), "label", &label)) {
          ev.arg = label;
        }
      }
    }
    out->push_back(std::move(ev));
    ++parsed;
  }
  return parsed > 0;
}

TraceRecorder* CurrentTrace() { return g_current_trace; }

TraceScope::TraceScope(TraceRecorder* recorder) : previous_(g_current_trace) {
  g_current_trace = recorder;
}

TraceScope::~TraceScope() { g_current_trace = previous_; }

}  // namespace rave::obs
