// Synthetic video-content model.
//
// Substitutes for the real video sequences used in the paper's x264 tests:
// each content class drives AR(1) processes for spatial and temporal
// complexity plus a Poisson scene-change stream, reproducing the statistical
// structure the encoder's rate control actually reacts to (slowly varying
// complexity, motion bursts, abrupt scene cuts).
#pragma once

#include <string>

#include "sim/random_process.h"
#include "util/rng.h"
#include "util/time.h"
#include "video/frame.h"

namespace rave::video {

/// Broad content categories with distinct complexity statistics.
enum class ContentClass {
  kTalkingHead,  ///< low motion, stable complexity, rare cuts
  kScreenShare,  ///< near-static with abrupt full-screen changes
  kGaming,       ///< high motion, frequent cuts, volatile complexity
  kSports,       ///< sustained high temporal complexity, panning motion
};

/// Human-readable name ("talking-head", ...) for tables and CSV output.
std::string ToString(ContentClass c);

/// All content classes, for parameter sweeps.
inline constexpr ContentClass kAllContentClasses[] = {
    ContentClass::kTalkingHead, ContentClass::kScreenShare,
    ContentClass::kGaming, ContentClass::kSports};

/// Generates the per-frame complexity trajectory for one content class.
class ContentModel {
 public:
  ContentModel(ContentClass content, Rng rng);

  /// Complexity sample for one frame step.
  struct Sample {
    double spatial = 1.0;
    double temporal = 0.5;
    bool scene_change = false;
  };

  /// Advances the model by one frame interval and returns the sample.
  Sample NextFrame(TimeDelta frame_interval);

  ContentClass content() const { return content_; }

 private:
  ContentClass content_;
  Rng rng_;
  Ar1Process spatial_;
  Ar1Process temporal_;
  PoissonArrivals scene_changes_;
  TimeDelta until_next_scene_change_;
};

}  // namespace rave::video
