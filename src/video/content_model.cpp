#include "video/content_model.h"

#include <algorithm>

namespace rave::video {
namespace {

struct ClassParams {
  Ar1Process::Config spatial;
  Ar1Process::Config temporal;
  TimeDelta mean_scene_interval;
  // Post-scene-change temporal spike factor.
  double scene_spike = 3.0;
};

ClassParams ParamsFor(ContentClass c) {
  ClassParams p;
  switch (c) {
    case ContentClass::kTalkingHead:
      p.spatial = {.mean = 1.0, .phi = 0.99, .sigma = 0.01, .lo = 0.5, .hi = 2.0};
      p.temporal = {.mean = 0.35, .phi = 0.97, .sigma = 0.02, .lo = 0.1, .hi = 1.5};
      p.mean_scene_interval = TimeDelta::Seconds(45);
      p.scene_spike = 2.0;
      break;
    case ContentClass::kScreenShare:
      p.spatial = {.mean = 0.8, .phi = 0.995, .sigma = 0.005, .lo = 0.3, .hi = 2.0};
      p.temporal = {.mean = 0.08, .phi = 0.9, .sigma = 0.02, .lo = 0.01, .hi = 1.0};
      p.mean_scene_interval = TimeDelta::Seconds(8);
      p.scene_spike = 8.0;
      break;
    case ContentClass::kGaming:
      p.spatial = {.mean = 1.3, .phi = 0.97, .sigma = 0.04, .lo = 0.5, .hi = 3.0};
      p.temporal = {.mean = 0.9, .phi = 0.93, .sigma = 0.08, .lo = 0.2, .hi = 3.0};
      p.mean_scene_interval = TimeDelta::Seconds(12);
      p.scene_spike = 3.0;
      break;
    case ContentClass::kSports:
      p.spatial = {.mean = 1.2, .phi = 0.98, .sigma = 0.03, .lo = 0.6, .hi = 2.5};
      p.temporal = {.mean = 1.1, .phi = 0.96, .sigma = 0.05, .lo = 0.4, .hi = 3.0};
      p.mean_scene_interval = TimeDelta::Seconds(20);
      p.scene_spike = 2.5;
      break;
  }
  return p;
}

}  // namespace

std::string ToString(ContentClass c) {
  switch (c) {
    case ContentClass::kTalkingHead:
      return "talking-head";
    case ContentClass::kScreenShare:
      return "screen-share";
    case ContentClass::kGaming:
      return "gaming";
    case ContentClass::kSports:
      return "sports";
  }
  return "unknown";
}

ContentModel::ContentModel(ContentClass content, Rng rng)
    : content_(content),
      rng_(rng),
      spatial_(ParamsFor(content).spatial, rng_.Fork()),
      temporal_(ParamsFor(content).temporal, rng_.Fork()),
      scene_changes_(ParamsFor(content).mean_scene_interval, rng_.Fork()),
      until_next_scene_change_(scene_changes_.NextGap()) {}

ContentModel::Sample ContentModel::NextFrame(TimeDelta frame_interval) {
  Sample s;
  until_next_scene_change_ -= frame_interval;
  if (until_next_scene_change_ <= TimeDelta::Zero()) {
    s.scene_change = true;
    until_next_scene_change_ = scene_changes_.NextGap();
    const ClassParams p = ParamsFor(content_);
    // A cut makes the next frame nearly intra-cost even when inter coded.
    temporal_.SetValue(
        std::min(p.temporal.hi, temporal_.value() * p.scene_spike +
                                    p.spatial.mean * 0.5));
    // Spatial statistics can also jump to a new regime.
    spatial_.SetValue(rng_.Uniform(p.spatial.mean * 0.7, p.spatial.mean * 1.3));
  }
  s.spatial = spatial_.Step();
  s.temporal = temporal_.Step();
  return s;
}

}  // namespace rave::video
