// Frame capture source: produces `RawFrame`s at the configured frame rate
// with complexity drawn from a `ContentModel`. The sender pipeline drives the
// cadence via the event loop; `VideoSource` itself is clockless so it can
// also be used directly in unit tests and codec exploration tools.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/time.h"
#include "video/content_model.h"
#include "video/frame.h"

namespace rave::video {

/// Configuration for a capture source.
struct VideoSourceConfig {
  Resolution resolution{1280, 720};
  double fps = 30.0;
  ContentClass content = ContentClass::kTalkingHead;
  uint64_t seed = 1;
};

/// Produces the deterministic frame sequence for one session.
class VideoSource {
 public:
  explicit VideoSource(const VideoSourceConfig& config);

  /// The interval between consecutive frames.
  TimeDelta frame_interval() const { return frame_interval_; }
  const VideoSourceConfig& config() const { return config_; }

  /// Produces the next frame, stamped with `capture_time`.
  RawFrame CaptureFrame(Timestamp capture_time);

  /// Number of frames produced so far.
  int64_t frames_captured() const { return next_frame_id_; }

  /// Changes capture resolution from the next frame on (used by the
  /// degradation controller extension).
  void SetResolution(Resolution resolution) { current_resolution_ = resolution; }
  Resolution resolution() const { return current_resolution_; }

 private:
  VideoSourceConfig config_;
  Resolution current_resolution_;
  TimeDelta frame_interval_;
  ContentModel model_;
  int64_t next_frame_id_ = 0;
};

}  // namespace rave::video
