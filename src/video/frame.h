// Raw (uncompressed) frame description handed from the capture source to the
// encoder. There are no pixels in this model; the fields that drive encoding
// cost are the spatial/temporal complexity measures, which play the role of
// x264's SATD-based complexity estimates (`rce->blurred_complexity`).
#pragma once

#include <cstdint>

#include "util/time.h"

namespace rave::video {

/// Frame resolution in pixels.
struct Resolution {
  int width = 1280;
  int height = 720;

  constexpr int64_t pixels() const {
    return static_cast<int64_t>(width) * height;
  }
  constexpr bool operator==(const Resolution&) const = default;
};

/// A captured frame awaiting encoding.
struct RawFrame {
  int64_t frame_id = 0;
  Timestamp capture_time = Timestamp::Zero();
  Resolution resolution;
  double fps = 30.0;

  /// Cost of intra-coding this frame, normalized so that 1.0 is "typical
  /// 720p webcam content". Drives I-frame size in the R-D model.
  double spatial_complexity = 1.0;

  /// Cost of inter-coding against the previous frame (residual energy),
  /// normalized the same way. Drives P-frame size.
  double temporal_complexity = 0.5;

  /// True when the content model emitted a scene change; the encoder will
  /// typically respond with an I-frame.
  bool scene_change = false;
};

}  // namespace rave::video
