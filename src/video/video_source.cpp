#include "video/video_source.h"

#include <cassert>

namespace rave::video {

VideoSource::VideoSource(const VideoSourceConfig& config)
    : config_(config),
      current_resolution_(config.resolution),
      frame_interval_(TimeDelta::SecondsF(1.0 / config.fps)),
      model_(config.content, Rng(config.seed)) {
  assert(config.fps > 0);
}

RawFrame VideoSource::CaptureFrame(Timestamp capture_time) {
  const ContentModel::Sample s = model_.NextFrame(frame_interval_);
  RawFrame frame;
  frame.frame_id = next_frame_id_++;
  frame.capture_time = capture_time;
  frame.resolution = current_resolution_;
  frame.fps = config_.fps;
  frame.spatial_complexity = s.spatial;
  frame.temporal_complexity = s.temporal;
  frame.scene_change = s.scene_change;
  return frame;
}

}  // namespace rave::video
