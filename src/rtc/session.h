// End-to-end RTC session: capture -> encoder -> packetizer -> pacer ->
// bottleneck link -> reassembly, with transport-wide feedback flowing back
// over a delay pipe into the bandwidth estimator and (for the adaptive
// scheme) the encoder controller. One Session = one run of one scheme over
// one capacity trace; every experiment in the evaluation is a set of
// Sessions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cc/bwe.h"
#include "cc/gcc.h"
#include "codec/abr_rate_control.h"
#include "codec/cbr_rate_control.h"
#include "codec/encoder.h"
#include "codec/frame_staging.h"
#include "core/adaptive_rate_control.h"
#include "core/circuit_breaker.h"
#include "core/degradation.h"
#include "core/salsify_rate_control.h"
#include "fault/fault_plan.h"
#include "fault/fault_scheduler.h"
#include "metrics/session_metrics.h"
#include "net/cross_traffic.h"
#include "obs/metrics_registry.h"
#include "net/link.h"
#include "rtc/scheme.h"
#include "sim/event_loop.h"
#include "transport/fec.h"
#include "transport/feedback.h"
#include "transport/frame_assembler.h"
#include "transport/packetizer.h"
#include "transport/pacer.h"
#include "transport/jitter_buffer.h"
#include "transport/rtx.h"
#include "util/interned.h"
#include "util/ring_deque.h"
#include "video/video_source.h"

namespace rave::rtc {

struct SessionConfig {
  Scheme scheme = Scheme::kAdaptive;
  TimeDelta duration = TimeDelta::Seconds(60);
  uint64_t seed = 1;

  video::VideoSourceConfig source;
  codec::EncoderConfig encoder;
  net::Link::Config link;

  /// One-way delay of the feedback path (reverse direction).
  TimeDelta feedback_delay = TimeDelta::Millis(25);
  /// Transport-wide feedback report interval.
  TimeDelta feedback_interval = TimeDelta::Millis(50);
  double feedback_loss = 0.0;

  DataRate initial_rate = DataRate::KilobitsPerSec(1500);
  /// Pacer drain rate = estimator target * pacing_factor.
  double pacing_factor = 1.25;
  /// Sender safety valve: frames are dropped before encoding once the pacer
  /// queue exceeds this (libwebrtc media-optimization behaviour). Applies to
  /// every scheme so the baseline cannot build unbounded sender queues.
  TimeDelta max_pacer_queue = TimeDelta::Seconds(2);

  /// Adaptive-scheme knobs (ablation switches live here).
  core::AdaptiveConfig adaptive;
  /// Salsify comparator knobs.
  core::SalsifyConfig salsify;
  /// Baseline knobs.
  codec::AbrConfig abr;
  codec::CbrConfig cbr;

  /// Enables the resolution-degradation extension (adaptive scheme only).
  bool enable_degradation = false;

  /// Enables NACK/RTX loss recovery (on by default, as in WebRTC).
  bool enable_rtx = true;

  /// Enables adaptive FEC (FlexFEC-style; redundancy follows loss rate).
  bool enable_fec = false;
  transport::ProtectionController::Config protection;

  /// Optional on/off cross traffic sharing the bottleneck.
  std::optional<net::CrossTraffic::Config> cross_traffic;

  /// Timed hard faults injected into the link/feedback path (empty = none).
  /// Interned: sweeps that reuse one plan across cells share it rather than
  /// copying the event list per config.
  Interned<fault::FaultPlan> faults = fault::FaultPlan();

  /// Feedback-starvation circuit breaker (RFC 8083 media-timeout style).
  /// Applies to every scheme, like the pacer valve; `feedback_interval` is
  /// filled in from the session config. Enabled by default — it only
  /// engages after ~8 consecutive missed report intervals, which benign
  /// (fault-free) scenarios never produce.
  core::CircuitBreaker::Config breaker;

  /// Name of the wireless/mobility profile this config was built from
  /// (empty = wired). Informational for reports, but part of the session
  /// cache key: two cells that differ only in profile name must not share
  /// cached results.
  std::string wireless_profile;

  TimeDelta timeseries_interval = TimeDelta::Millis(100);
};

/// Everything a run produces.
struct SessionResult {
  std::string scheme_name;
  metrics::SessionSummary summary;
  std::vector<metrics::FrameRecord> frames;
  std::vector<metrics::TimeseriesPoint> timeseries;
  net::LinkStats link_stats;
  /// Circuit-breaker activity (opens/pauses/recoveries, starved time).
  core::CircuitBreaker::Stats breaker_stats;
  /// Simulation events executed by the session's loop (throughput metric).
  uint64_t events_executed = 0;
  /// Registry snapshot: counters/gauges/histograms registered by the
  /// subsystems plus session-level roll-ups (allocs/frame, wall timing).
  /// Metrics named `wall.*` are wall-clock-derived and excluded from
  /// determinism comparisons.
  obs::RegistrySnapshot metrics;
};

/// Builds and runs one session. Single use: construct, Run(), discard.
class Session {
 public:
  explicit Session(SessionConfig config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Runs the full session and returns its results. Equivalent to
  /// Start() + AdvanceUntil(end_time()) + Finish().
  SessionResult Run();

  /// Phase API for the lockstep batched runner: Start() arms the pipeline
  /// tasks, AdvanceUntil() executes events up to a boundary (clamped to the
  /// session's end), Finish() tears down and collects the results. Because
  /// the event loop runs events in (fire-time, seq) order and RunUntil is
  /// inclusive, any monotonic sequence of boundaries ending at end_time()
  /// executes exactly the event sequence one Run() call executes — batched
  /// interleaving cannot change results.
  void Start();
  void AdvanceUntil(Timestamp until);
  SessionResult Finish();
  /// Simulation time at which the session ends (valid after Start()).
  Timestamp end_time() const { return end_time_; }
  /// True once the loop has reached end_time().
  bool done() const { return loop_.now() >= end_time_; }

  /// Frame-boundary rendezvous (codec/frame_staging.h): with a hub
  /// installed, AdvanceUntil may return early with a frame's control math
  /// staged on the hub and the loop paused mid-tick. The runner flushes the
  /// hub, calls CompleteStagedFrame() on every staged session, and
  /// re-advances them — any such interleaving executes the identical event
  /// sequence. Call before Start(); pass nullptr to run inline.
  void SetStagingHub(codec::FrameStagingHub* hub);
  /// True when AdvanceUntil paused at a staged frame awaiting the hub flush.
  bool has_staged_frame() const { return frame_staged_; }
  /// Completes the staged frame from the flushed step's outputs (packetize,
  /// pace, metrics), then resumes the event loop toward `until` in the same
  /// scope — equivalent to completing and immediately re-calling
  /// AdvanceUntil(until), but with one scope install and one contiguous
  /// cache-warm pass per frame. May pause again at the next frame tick.
  void CompleteStagedFrame(Timestamp until);

  /// Access for tests that step the session manually.
  EventLoop& loop() { return loop_; }
  const metrics::SessionMetrics& metrics() const { return metrics_; }

 private:
  void OnFrameTick();
  /// Tail of the frame tick shared by the inline and staged paths: records
  /// the encoded frame, then packetizes and paces it.
  void FinishFrameTick(const codec::EncodedFrame& encoded);
  void OnPacerSend(net::Packet&& packet);
  void OnPacketArrival(const net::Packet& packet, Timestamp arrival);
  /// Mutable: the report's packet buffer is recycled into the feedback
  /// generator after the history join.
  void OnFeedbackAtSender(transport::FeedbackReport& report);
  void OnNackAtSender(const transport::NackBatch& batch);
  void OnFecRecovered(const net::Packet& packet, Timestamp arrival);
  void OnNackGiveUp(int64_t media_seq);
  void OnFrameComplete(const transport::CompleteFrame& frame);
  void OnFrameLost(int64_t frame_id);
  void OnTimeseriesTick();
  void OnWatchdogTick();
  core::NetworkObservation MakeObservation() const;
  /// Recent retransmission bitrate (charged against the media budget, like
  /// WebRTC's protection-bitrate accounting).
  DataRate RtxRate() const;
  /// Estimator target minus RTX overhead: what the encoder may spend.
  DataRate MediaTarget() const;

  SessionConfig config_;
  EventLoop loop_;
  /// Session-local metrics registry, installed as the thread's registry for
  /// the duration of Run() (see obs::MetricsScope).
  obs::MetricsRegistry registry_;
  video::VideoSource source_;
  metrics::SessionMetrics metrics_;
  transport::Packetizer packetizer_;
  transport::SentPacketHistory history_;

  std::unique_ptr<cc::BandwidthEstimator> bwe_;
  /// Non-owning view of bwe_ when it is a GccEstimator (for usage signals).
  cc::GccEstimator* gcc_ = nullptr;

  std::unique_ptr<codec::Encoder> encoder_;
  /// Non-owning view of the encoder's rate control when it consumes rich
  /// network observations (adaptive and salsify schemes).
  core::NetworkAwareRateControl* network_rc_ = nullptr;
  std::optional<core::DegradationController> degradation_;

  std::unique_ptr<transport::Pacer> pacer_;
  std::unique_ptr<net::Link> forward_link_;
  std::unique_ptr<net::DelayPipe> reverse_pipe_;
  std::unique_ptr<transport::FeedbackGenerator> feedback_gen_;
  std::unique_ptr<transport::FrameAssembler> assembler_;
  transport::JitterBuffer jitter_buffer_;
  transport::RtxCache rtx_cache_;
  std::unique_ptr<transport::FecEncoder> fec_encoder_;
  std::unique_ptr<transport::FecDecoder> fec_decoder_;
  transport::ProtectionController protection_;
  double fec_overhead_ = 0.0;
  std::unique_ptr<transport::NackGenerator> nack_gen_;
  std::unique_ptr<net::CrossTraffic> cross_traffic_;

  core::CircuitBreaker breaker_;
  std::unique_ptr<fault::FaultScheduler> fault_scheduler_;

  /// Transport-wide sequence space shared by first sends and RTX.
  int64_t next_transport_seq_ = 0;
  /// (send time, bits) of recent retransmissions for RtxRate().
  mutable RingDeque<std::pair<Timestamp, int64_t>> rtx_sent_;
  /// Sender-side media-seq -> frame-id map (simulation bookkeeping for the
  /// NACK give-up path). Media seqs are dense from 0, so this is a flat
  /// vector indexed by seq (-1 = unknown).
  std::vector<int64_t> media_to_frame_;
  /// Reused packetizer output; capacity persists across frames so the
  /// per-frame packetize -> enqueue path is allocation-free in steady state.
  std::vector<net::Packet> packet_scratch_;
  /// Reused history-join output for the per-report feedback path.
  std::vector<transport::PacketResult> feedback_results_;

  std::unique_ptr<RepeatingTask> frame_task_;
  std::unique_ptr<RepeatingTask> timeseries_task_;
  /// Feedback-starvation watchdog on the feedback cadence (circuit breaker).
  std::unique_ptr<RepeatingTask> watchdog_task_;

  // Phase-split state (see Start/AdvanceUntil/Finish).
  Timestamp end_time_ = Timestamp::PlusInfinity();
  int64_t wall_ns_ = 0;
  uint64_t run_allocs_ = 0;

  // Frame-boundary rendezvous state (see SetStagingHub).
  codec::FrameStagingHub* staging_hub_ = nullptr;
  /// True when this session's ABR controller joined the hub's batched-plan
  /// group (BatchCompatible law constants).
  bool abr_plan_deferred_ = false;
  codec::FrameControlStep staged_step_;
  bool frame_staged_ = false;

  // Latest values for observations/timeseries.
  bool overuse_decrease_seen_ = false;
  double last_qp_ = 0.0;
  double last_latency_ms_ = 0.0;
};

/// Convenience: build + run in one call.
SessionResult RunSession(const SessionConfig& config);

}  // namespace rave::rtc
