// The encoder-adaptation schemes the evaluation compares.
#pragma once

#include <string>

namespace rave::rtc {

enum class Scheme {
  /// GCC estimate -> encoder reconfig -> stock x264 ABR rate control.
  kX264Abr,
  /// GCC estimate -> encoder reconfig -> x264 strict CBR/VBV rate control.
  kX264Cbr,
  /// The paper: per-frame adaptive rate control driven by network state.
  kAdaptive,
  /// Adaptive controller fed ground-truth capacity (ablation upper bound).
  kAdaptiveOracle,
  /// Salsify-style memoryless per-frame matching (related-work comparator).
  kSalsify,
};

std::string ToString(Scheme scheme);

inline constexpr Scheme kAllSchemes[] = {
    Scheme::kX264Abr, Scheme::kX264Cbr, Scheme::kAdaptive,
    Scheme::kAdaptiveOracle, Scheme::kSalsify};

/// The two schemes of the headline comparison (baseline vs paper).
inline constexpr Scheme kHeadlineSchemes[] = {Scheme::kX264Abr,
                                              Scheme::kAdaptive};

}  // namespace rave::rtc
