#include "rtc/scheme.h"

namespace rave::rtc {

std::string ToString(Scheme scheme) {
  switch (scheme) {
    case Scheme::kX264Abr:
      return "x264-abr";
    case Scheme::kX264Cbr:
      return "x264-cbr";
    case Scheme::kAdaptive:
      return "rave-adaptive";
    case Scheme::kAdaptiveOracle:
      return "rave-oracle";
    case Scheme::kSalsify:
      return "salsify";
  }
  return "unknown";
}

}  // namespace rave::rtc
