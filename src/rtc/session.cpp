#include "rtc/session.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "cc/oracle.h"
#include "codec/abr_rate_control.h"
#include "codec/cbr_rate_control.h"
#include "obs/stage_timer.h"
#include "obs/trace.h"
#include "util/alloc_probe.h"
#include "util/logging.h"

namespace rave::rtc {

namespace {

// Fills scheme-independent defaults derived from other config fields.
SessionConfig Normalize(SessionConfig c) {
  c.abr.fps = c.source.fps;
  c.abr.initial_target = c.initial_rate;
  c.cbr.fps = c.source.fps;
  c.cbr.initial_target = c.initial_rate;
  c.adaptive.fps = c.source.fps;
  c.adaptive.initial_target = c.initial_rate;
  c.salsify.fps = c.source.fps;
  c.salsify.initial_target = c.initial_rate;
  c.encoder.fps = c.source.fps;
  c.source.seed = c.seed;
  c.encoder.seed = c.seed ^ 0x9E3779B97F4A7C15ULL;
  c.breaker.feedback_interval = c.feedback_interval;
  return c;
}

}  // namespace

Session::Session(SessionConfig config)
    : config_(Normalize(std::move(config))),
      source_(config_.source),
      packetizer_(),
      protection_(config_.protection),
      breaker_(config_.breaker) {
  // A saturated session keeps a few hundred events pending (per-packet link
  // arrivals + timers); reserving up front keeps the heap allocation-free in
  // steady state.
  loop_.Reserve(1024);
  // Size the metric sinks and per-packet bookkeeping for the whole session
  // so steady-state recording never reallocates either.
  const double duration_s = config_.duration.seconds();
  const size_t expected_frames =
      static_cast<size_t>(duration_s * config_.source.fps) + 4;
  const size_t expected_points =
      static_cast<size_t>(duration_s /
                          config_.timeseries_interval.seconds()) +
      4;
  metrics_.Reserve(expected_frames, expected_points);
  media_to_frame_.reserve(expected_frames * 4);  // a few packets per frame
  packet_scratch_.reserve(64);
  // --- bandwidth estimator ---
  if (config_.scheme == Scheme::kAdaptiveOracle) {
    bwe_ = std::make_unique<cc::OracleBwe>(loop_, config_.link.trace);
  } else {
    cc::GccEstimator::Config gcc_config;
    gcc_config.initial_rate = config_.initial_rate;
    auto gcc = std::make_unique<cc::GccEstimator>(gcc_config);
    gcc_ = gcc.get();
    bwe_ = std::move(gcc);
  }

  // --- encoder + rate control ---
  std::unique_ptr<codec::RateControl> rc;
  switch (config_.scheme) {
    case Scheme::kX264Abr:
      rc = std::make_unique<codec::AbrRateControl>(config_.abr);
      break;
    case Scheme::kX264Cbr:
      rc = std::make_unique<codec::CbrRateControl>(config_.cbr);
      break;
    case Scheme::kAdaptive:
    case Scheme::kAdaptiveOracle: {
      auto adaptive =
          std::make_unique<core::AdaptiveRateControl>(config_.adaptive);
      network_rc_ = adaptive.get();
      rc = std::move(adaptive);
      break;
    }
    case Scheme::kSalsify: {
      auto salsify =
          std::make_unique<core::SalsifyRateControl>(config_.salsify);
      network_rc_ = salsify.get();
      rc = std::move(salsify);
      break;
    }
  }
  encoder_ = std::make_unique<codec::Encoder>(config_.encoder, std::move(rc));

  if (config_.enable_degradation && network_rc_ != nullptr) {
    degradation_.emplace();
  }

  // --- transport & network ---
  pacer_ = std::make_unique<transport::Pacer>(
      loop_,
      transport::Pacer::Config{
          .initial_rate = config_.initial_rate * config_.pacing_factor},
      [this](net::Packet&& p) { OnPacerSend(std::move(p)); });

  forward_link_ = std::make_unique<net::Link>(
      loop_, config_.link, [this](const net::Packet& p, Timestamp arrival) {
        OnPacketArrival(p, arrival);
      });

  reverse_pipe_ = std::make_unique<net::DelayPipe>(
      loop_, config_.feedback_delay, config_.feedback_loss,
      TimeDelta::Zero(), config_.seed ^ 0xABCDEF);

  feedback_results_.reserve(64);
  feedback_gen_ = std::make_unique<transport::FeedbackGenerator>(
      loop_, config_.feedback_interval,
      [this](transport::FeedbackReport&& report) {
        reverse_pipe_->Send([this, report = std::move(report)]() mutable {
          OnFeedbackAtSender(report);
        });
      });

  assembler_ = std::make_unique<transport::FrameAssembler>(
      loop_, transport::FrameAssembler::Config{},
      [this](const transport::CompleteFrame& f) { OnFrameComplete(f); },
      [this](int64_t frame_id) { OnFrameLost(frame_id); });

  if (config_.enable_rtx) {
    nack_gen_ = std::make_unique<transport::NackGenerator>(
        loop_, transport::NackGenerator::Config{},
        [this](const transport::NackBatch& batch) {
          // The generator reuses its batch buffer, so the in-flight feedback
          // message needs its own copy.
          reverse_pipe_->Send([this, batch] { OnNackAtSender(batch); });
        },
        [this](int64_t media_seq) { OnNackGiveUp(media_seq); });
  }

  if (config_.enable_fec) {
    fec_encoder_ = std::make_unique<transport::FecEncoder>(
        transport::FecEncoder::Config{.group_size =
                                          config_.protection.group_size});
    fec_decoder_ = std::make_unique<transport::FecDecoder>(
        [this](const net::Packet& p, Timestamp arrival) {
          OnFecRecovered(p, arrival);
        });
  }

  if (config_.cross_traffic) {
    cross_traffic_ = std::make_unique<net::CrossTraffic>(
        loop_, *forward_link_, *config_.cross_traffic);
  }

  if (!config_.faults->empty()) {
    fault_scheduler_ = std::make_unique<fault::FaultScheduler>(
        loop_, *config_.faults, forward_link_.get(), reverse_pipe_.get());
  }

  // --- periodic drivers ---
  frame_task_ = std::make_unique<RepeatingTask>(loop_, source_.frame_interval(),
                                                [this] { OnFrameTick(); });
  timeseries_task_ = std::make_unique<RepeatingTask>(
      loop_, config_.timeseries_interval, [this] { OnTimeseriesTick(); });
  watchdog_task_ = std::make_unique<RepeatingTask>(
      loop_, config_.feedback_interval, [this] { OnWatchdogTick(); });
}

Session::~Session() = default;

DataRate Session::RtxRate() const {
  constexpr TimeDelta kWindow = TimeDelta::Millis(500);
  const Timestamp now = loop_.now();
  while (!rtx_sent_.empty() && now - rtx_sent_.front().first > kWindow) {
    rtx_sent_.pop_front();
  }
  int64_t bits = 0;
  for (size_t i = 0; i < rtx_sent_.size(); ++i) bits += rtx_sent_[i].second;
  return DataSize::Bits(bits) / kWindow;
}

DataRate Session::MediaTarget() const {
  DataRate target = std::min(bwe_->target(), breaker_.Cap());
  // FEC redundancy comes off the top (WebRTC's protection accounting)...
  if (fec_encoder_) {
    target = target * (1.0 - fec_overhead_);
  }
  // ...and so do retransmissions.
  const DataRate rtx = RtxRate();
  const DataRate floor = DataRate::KilobitsPerSec(50);
  return target > rtx + floor ? target - rtx : floor;
}

core::NetworkObservation Session::MakeObservation() const {
  core::NetworkObservation obs;
  obs.at = loop_.now();
  obs.target = MediaTarget();
  obs.acked_rate = bwe_->acked_rate();
  obs.rtt = bwe_->rtt();
  obs.loss_rate = bwe_->loss_rate();
  obs.usage = gcc_ ? gcc_->usage() : cc::BandwidthUsage::kNormal;
  obs.overuse_decrease = overuse_decrease_seen_;
  obs.pacer_queue = pacer_->queue_size();
  obs.in_flight = history_.in_flight();
  return obs;
}

void Session::OnFrameTick() {
  const Timestamp now = loop_.now();
  const video::RawFrame frame = source_.CaptureFrame(now);
  metrics_.OnFrameCaptured(frame.frame_id, now);

  // Circuit breaker escalated to a full pause: stop offering load until
  // feedback resumes (RFC 8083 media timeout).
  if (breaker_.encoder_paused()) {
    metrics_.OnFrameDroppedAtSender(frame.frame_id);
    assembler_->MarkNeverArriving(frame.frame_id);
    return;
  }

  // Sender safety valve (applies to every scheme).
  if (pacer_->ExpectedQueueTime() > config_.max_pacer_queue) {
    metrics_.OnFrameDroppedAtSender(frame.frame_id);
    assembler_->MarkNeverArriving(frame.frame_id);
    return;
  }

  if (network_rc_ != nullptr) {
    // Fresh pacer/in-flight reading right before the decision.
    network_rc_->OnNetworkUpdate(MakeObservation());
    overuse_decrease_seen_ = false;
  }

  if (staging_hub_ != nullptr && obs::CurrentTrace() == nullptr) {
    // Frame-boundary rendezvous: stage the control math on the hub and
    // pause; the runner flushes full lanes through the batched kernels and
    // calls CompleteStagedFrame(). Tracing falls back to inline execution —
    // the trace counters emitted inside the batched ABR plan/update would
    // otherwise be lost.
    encoder_->BeginFrame(frame, now, abr_plan_deferred_, &staged_step_);
    if (!staged_step_.plan_deferred && staged_step_.guidance.skip) {
      // A scalar plan skipped this frame: nothing to batch (skips run no
      // R-D math), finish inline without a rendezvous.
      FinishFrameTick(encoder_->FinishFrame(staged_step_));
      return;
    }
    staging_hub_->Stage(&staged_step_);
    frame_staged_ = true;
    loop_.RequestPause();
    return;
  }

  FinishFrameTick(encoder_->EncodeFrame(frame, now));
}

void Session::FinishFrameTick(const codec::EncodedFrame& encoded) {
  metrics::FrameRecord record;
  record.frame_id = encoded.frame_id;
  record.capture_time = encoded.capture_time;
  record.type = encoded.type;
  record.qp = encoded.qp;
  record.size = encoded.size;
  record.ssim = encoded.ssim;
  record.psnr = encoded.psnr;
  record.reencodes = encoded.reencodes;
  record.temporal_complexity = encoded.temporal_complexity;
  record.fate = encoded.skipped ? metrics::FrameFate::kSkippedEncoder
                                : metrics::FrameFate::kInFlight;
  metrics_.OnFrameEncoded(record);

  if (encoded.skipped) {
    // The frame id is consumed but no packet will ever carry it; telling
    // the assembler keeps its pending ring free of permanent holes.
    assembler_->MarkNeverArriving(encoded.frame_id);
    return;
  }
  last_qp_ = encoded.qp;

  if (degradation_ && degradation_->OnFrameQp(encoded.qp, loop_.now())) {
    source_.SetResolution(degradation_->resolution());
  }

  packetizer_.Packetize(encoded, packet_scratch_);
  for (const net::Packet& p : packet_scratch_) {
    if (static_cast<size_t>(p.media_seq) >= media_to_frame_.size()) {
      media_to_frame_.resize(static_cast<size_t>(p.media_seq) + 1, -1);
    }
    media_to_frame_[static_cast<size_t>(p.media_seq)] = p.frame_id;
  }
  pacer_->Enqueue(packet_scratch_);
}

void Session::OnPacerSend(net::Packet&& packet) {
  const obs::StageTimer::Scope timer(obs::StageTimer::kPacer);
  packet.seq = next_transport_seq_++;
  history_.OnPacketSent(packet);
  if (config_.enable_rtx && !packet.is_retransmission && !packet.is_fec) {
    rtx_cache_.Insert(packet, loop_.now());
  }
  if (packet.is_retransmission) {
    rtx_sent_.push_back({loop_.now(), packet.size.bits()});
  }

  // FEC: first transmissions of media close protection groups. The
  // resulting recovery packets are paced like any other packet (sending
  // them back-to-back would imprint a periodic delay gradient the trendline
  // estimator misreads as congestion); re-entering the pacer from its own
  // send callback is deferred by one event-loop turn.
  std::vector<net::Packet> recovery;
  if (fec_encoder_ && !packet.is_retransmission && !packet.is_fec &&
      packet.media_seq >= 0) {
    recovery = fec_encoder_->OnMediaPacket(packet);
  }
  forward_link_->Send(std::move(packet));
  if (!recovery.empty()) {
    loop_.Schedule(TimeDelta::Zero(),
                   [this, recovery = std::move(recovery)]() mutable {
                     pacer_->Enqueue(recovery);
                   });
  }
}

void Session::OnFecRecovered(const net::Packet& packet, Timestamp arrival) {
  if (nack_gen_) nack_gen_->OnPacketReceived(packet);
  assembler_->OnPacketReceived(packet, arrival);
}

void Session::OnPacketArrival(const net::Packet& packet, Timestamp arrival) {
  if (packet.is_fec) {
    const obs::StageTimer::Scope timer(obs::StageTimer::kFeedbackNack);
    // Recovery packet: acked for bandwidth estimation, then handed to the
    // FEC decoder with its group descriptors (sender-side bookkeeping; in a
    // real stack the descriptors ride in the FlexFEC header).
    feedback_gen_->OnPacketReceived(packet, arrival);
    if (fec_decoder_ && fec_encoder_) {
      if (const auto* group = fec_encoder_->GroupFor(packet.media_seq)) {
        fec_decoder_->OnRecoveryPacket(packet.media_seq, *group,
                                       fec_encoder_->recovery_packets(),
                                       arrival);
      }
    }
    return;
  }
  // Cross traffic terminates at a different receiver; it only matters for
  // the queueing it caused upstream.
  if (packet.media_seq < 0) return;
  {
    const obs::StageTimer::Scope timer(obs::StageTimer::kFeedbackNack);
    feedback_gen_->OnPacketReceived(packet, arrival);
    if (fec_decoder_) fec_decoder_->OnMediaPacket(packet, arrival);
    if (nack_gen_) nack_gen_->OnPacketReceived(packet);
  }
  const obs::StageTimer::Scope timer(obs::StageTimer::kAssembler);
  assembler_->OnPacketReceived(packet, arrival);
}

void Session::OnNackAtSender(const transport::NackBatch& batch) {
  // Retransmitting into an already-backlogged sender only deepens the
  // overload (the RTX would sit behind seconds of media and be useless on
  // arrival); WebRTC's pacer applies the same pressure valve.
  if (pacer_->ExpectedQueueTime() > TimeDelta::Millis(200)) return;
  for (int64_t media_seq : batch.media_seqs) {
    if (auto packet = rtx_cache_.Lookup(media_seq, loop_.now())) {
      pacer_->EnqueueFront(std::move(*packet));
    }
  }
}

void Session::OnNackGiveUp(int64_t media_seq) {
  if (media_seq < 0 ||
      static_cast<size_t>(media_seq) >= media_to_frame_.size()) {
    return;
  }
  const int64_t frame_id = media_to_frame_[static_cast<size_t>(media_seq)];
  if (frame_id < 0) return;
  assembler_->AbandonFrame(frame_id);
}

void Session::OnFeedbackAtSender(transport::FeedbackReport& report) {
  const Timestamp now = loop_.now();
  {
    const obs::StageTimer::Scope timer(obs::StageTimer::kFeedbackNack);
    history_.OnFeedback(report, now, feedback_results_);
  }
  // The report's packet buffer cycles back to the receiver-side generator,
  // so the periodic feedback path stops allocating once both buffers exist.
  feedback_gen_->Recycle(std::move(report.packets));
  {
    const obs::StageTimer::Scope timer(obs::StageTimer::kTrendline);
    bwe_->OnPacketResults(feedback_results_, now);
  }
  if (gcc_ && gcc_->decreased_on_last_update()) overuse_decrease_seen_ = true;

  breaker_.OnFeedback(now, bwe_->target());
  if (breaker_.TakeKeyframeRequest()) {
    // Feedback just resumed after starvation: the reference chain is
    // presumed broken, restart from an intra frame.
    encoder_->RequestKeyFrame();
  }

  if (fec_encoder_) {
    const int recovery =
        protection_.RecoveryPacketsFor(bwe_->loss_rate());
    fec_encoder_->SetRecoveryPackets(recovery);
    fec_overhead_ = protection_.OverheadFor(recovery);
  }

  const DataRate target = std::min(bwe_->target(), breaker_.Cap());
  pacer_->SetPacingRate(target * config_.pacing_factor);

  if (network_rc_ != nullptr) {
    network_rc_->OnNetworkUpdate(MakeObservation());
    overuse_decrease_seen_ = false;
  } else {
    // Baselines: the application reconfigures the encoder's target bitrate,
    // exactly like calling x264_encoder_reconfig with the GCC estimate
    // (minus retransmission overhead, as WebRTC's protection accounting
    // does).
    encoder_->SetTargetRate(MediaTarget());
  }
}

void Session::OnFrameComplete(const transport::CompleteFrame& frame) {
  metrics_.OnFrameCompleted(frame.frame_id, frame.complete_time);
  const transport::PlayoutDecision playout =
      jitter_buffer_.OnFrameComplete(frame.capture_time, frame.complete_time);
  metrics_.OnFrameRendered(frame.frame_id, playout.render_time, playout.late);
  last_latency_ms_ = (frame.complete_time - frame.capture_time).ms_float();
}

void Session::OnFrameLost(int64_t frame_id) {
  metrics_.OnFrameLost(frame_id);
  // PLI travels back over the feedback path.
  reverse_pipe_->Send([this] { encoder_->RequestKeyFrame(); });
}

void Session::OnWatchdogTick() {
  breaker_.OnTick(loop_.now());
  if (breaker_.state() == core::CircuitBreaker::State::kClosed) return;
  // Rate control normally reacts only to feedback; while the sender is
  // starved the watchdog re-applies the (backing-off) cap so the pipeline
  // actually slows down instead of transmitting at the stale target.
  const DataRate capped = std::min(bwe_->target(), breaker_.Cap());
  pacer_->SetPacingRate(capped * config_.pacing_factor);
  if (network_rc_ == nullptr) {
    // Baselines get their targets pushed; the network-aware schemes pick up
    // the capped MediaTarget() through their per-frame observation.
    encoder_->SetTargetRate(MediaTarget());
  }
}

void Session::OnTimeseriesTick() {
  metrics::TimeseriesPoint p;
  p.at = loop_.now();
  // The link's effective rate, not the raw trace: handovers and datarate
  // renegotiations change capacity without touching the trace. (Trace
  // rate-change events carry lower seq numbers than timeseries ticks, so at
  // equal timestamps the link has already applied the step — byte-identical
  // to the old cursor lookup for wired scenarios.)
  p.capacity_kbps = forward_link_->current_rate().kbps();
  RAVE_TRACE_COUNTER(kCapacityKbps, p.at, p.capacity_kbps);
  p.bwe_target_kbps = bwe_->target().kbps();
  p.encoder_target_kbps = encoder_->rate_control().current_target().kbps();
  p.acked_kbps = bwe_->acked_rate().kbps();
  p.pacer_queue_ms = pacer_->ExpectedQueueTime().ms_float();
  p.loss_rate = bwe_->loss_rate();
  p.link_queue_ms = forward_link_->QueueDelay().ms_float();
  p.last_qp = last_qp_;
  p.last_latency_ms = last_latency_ms_;
  metrics_.AddTimeseriesPoint(p);
}

namespace {
int64_t SessionLogClock(const void* ctx) {
  return static_cast<const EventLoop*>(ctx)->now().us();
}
}  // namespace

SessionResult Session::Run() {
  Start();
  AdvanceUntil(end_time_);
  return Finish();
}

void Session::Start() {
  // Route the subsystems' metric updates into this session's registry and
  // tag this thread's log lines with the session's sim-time while events
  // run. Both are thread-local, so parallel runners stay isolated; the
  // batched runner interleaves sessions on one worker, so each phase call
  // installs the scopes locally instead of holding them across phases.
  obs::MetricsScope metrics_scope(&registry_);
  LogClockScope log_clock(&SessionLogClock, &loop_);

  end_time_ = loop_.now() + config_.duration;

  if (cross_traffic_) cross_traffic_->Start();
  // First frame fires immediately; subsequent frames every interval.
  frame_task_->StartWithDelay(TimeDelta::Zero());
  timeseries_task_->StartWithDelay(config_.timeseries_interval);
  if (config_.breaker.enabled) {
    watchdog_task_->StartWithDelay(config_.feedback_interval);
  }
}

void Session::AdvanceUntil(Timestamp until) {
  obs::MetricsScope metrics_scope(&registry_);
  LogClockScope log_clock(&SessionLogClock, &loop_);

  const AllocScope alloc_scope;
  const auto wall_start = std::chrono::steady_clock::now();
  loop_.RunUntil(std::min(until, end_time_));
  wall_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  run_allocs_ += alloc_scope.allocs();
}

void Session::SetStagingHub(codec::FrameStagingHub* hub) {
  staging_hub_ = hub;
  abr_plan_deferred_ = false;
  if (hub == nullptr) return;
  if (codec::AbrRateControl* abr = encoder_->rate_control().AsAbr()) {
    abr_plan_deferred_ = hub->RegisterAbr(abr);
  }
}

void Session::CompleteStagedFrame(Timestamp until) {
  assert(frame_staged_ && staged_step_.math_done);
  obs::MetricsScope metrics_scope(&registry_);
  LogClockScope log_clock(&SessionLogClock, &loop_);

  const AllocScope alloc_scope;
  const auto wall_start = std::chrono::steady_clock::now();
  frame_staged_ = false;
  FinishFrameTick(encoder_->FinishFrame(staged_step_));
  // Resume toward the boundary immediately: same event order as a separate
  // AdvanceUntil call, without re-touching the session's cache footprint.
  loop_.RunUntil(std::min(until, end_time_));
  wall_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  run_allocs_ += alloc_scope.allocs();
}

SessionResult Session::Finish() {
  obs::MetricsScope metrics_scope(&registry_);
  LogClockScope log_clock(&SessionLogClock, &loop_);

  const int64_t wall_ns = wall_ns_;
  const uint64_t run_allocs = run_allocs_;

  frame_task_->Stop();
  timeseries_task_->Stop();
  if (config_.breaker.enabled) watchdog_task_->Stop();

  SessionResult result;
  result.scheme_name = ToString(config_.scheme);
  result.summary = metrics_.Summarize(config_.duration);
  result.frames = metrics_.frames();
  result.timeseries = metrics_.timeseries();
  result.link_stats = forward_link_->stats();
  result.breaker_stats = breaker_.stats();
  result.events_executed = loop_.events_executed();

  // Session-level roll-ups into the registry before snapshotting. Only
  // sim-deterministic values may enter the snapshot — it is serialized into
  // the result-cache blob, and reruns of the same config must stay
  // bit-identical. Host-side measurements (wall clock, alloc counts) go to
  // the process-wide RuntimeStats aggregate instead.
  registry_.GetCounter("session.events")->Add(result.events_executed);
  registry_.GetCounter("breaker.opens")
      ->Add(static_cast<uint64_t>(result.breaker_stats.opens));
  registry_.GetCounter("breaker.pauses")
      ->Add(static_cast<uint64_t>(result.breaker_stats.pauses));
  registry_.GetCounter("breaker.recoveries")
      ->Add(static_cast<uint64_t>(result.breaker_stats.recoveries));
  // The per-session latency sketch is what benches and run_suite merge for
  // every cross-session percentile — no per-frame vectors leave the session.
  obs::QuantileSketch* latency = registry_.GetSketch("frame.latency_ms");
  for (double ms : metrics_.DeliveredLatenciesMs()) latency->Record(ms);
  result.metrics = registry_.Snapshot();

  obs::RuntimeStats::Instance().RecordSession(
      static_cast<double>(wall_ns) * 1e-6, result.events_executed,
      loop_.events_dispatched(), AllocProbeEnabled() ? run_allocs : 0,
      static_cast<uint64_t>(result.summary.frames_captured));
  return result;
}

SessionResult RunSession(const SessionConfig& config) {
  Session session(config);
  return session.Run();
}

}  // namespace rave::rtc
