// Build/behaviour identity for tools and the history ledger.
//
// `--version` in rave_cli and run_suite prints this; the regression
// sentinel stores the same string in every history record so a baseline
// from a different simulator fingerprint, blob layout, or compiled option
// set is recognized as incompatible instead of mis-diffed. Debugging a
// "why is my cache cold" report starts here too: fingerprint and blob
// version are the two salts that invalidate cached results.
#pragma once

#include <string>

namespace rave::runner {

/// One-line option set: compiled SIMD backend + active dispatch level,
/// tracing, the allocation probe, and the runtime coalescing/staging knobs
/// (RAVE_NO_COALESCE / RAVE_NO_STAGING). Example:
///   "simd=avx2 dispatch=avx2 tracing=on alloc_probe=on coalesce=on
///    staging=on"
std::string BuildOptionsString();

/// Multi-line human-readable version report (fingerprint, blob version,
/// options) for `--version`.
std::string VersionString();

}  // namespace rave::runner
