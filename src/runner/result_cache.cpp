#include "runner/result_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>
#include <utility>

#include "util/byteio.h"

namespace rave::runner {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'R', 'A', 'V', 'C'};
// kBlobVersion lives in result_cache.h (tools print it via --version).
constexpr char kBlobSuffix[] = ".rrc";

void PutTime(ByteWriter& w, Timestamp t) { w.I64(t.us()); }
void PutDelta(ByteWriter& w, TimeDelta d) { w.I64(d.us()); }

Timestamp GetTime(ByteReader& r) { return Timestamp::Micros(r.I64()); }
TimeDelta GetDelta(ByteReader& r) { return TimeDelta::Micros(r.I64()); }

uint64_t NowSteadyUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ResultCache::ResultCache(Options options) : options_(std::move(options)) {
  if (!options_.dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    // An unusable directory degrades to the in-memory tier; loads and
    // stores below treat filesystem errors as misses.
  }
}

std::optional<std::string> ResultCache::DirFromEnv() {
  const char* dir = std::getenv("RAVE_CACHE_DIR");
  if (dir == nullptr || dir[0] == '\0') return std::nullopt;
  return std::string(dir);
}

uint64_t ResultCache::MaxDiskBytesFromEnv() {
  const char* mb = std::getenv("RAVE_CACHE_MAX_MB");
  if (mb != nullptr && mb[0] != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(mb, &end, 10);
    if (end != mb && *end == '\0' && parsed > 0) {
      return static_cast<uint64_t>(parsed) * 1024 * 1024;
    }
  }
  return Options{}.max_disk_bytes;
}

rtc::SessionResult ResultCache::GetOrCompute(
    const SessionKey& key,
    const std::function<rtc::SessionResult()>& compute) {
  std::shared_future<EntryPtr> future;
  std::promise<EntryPtr> promise;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      inflight_.emplace(key, future);
      owner = true;
    }
  }

  if (!owner) {
    const EntryPtr entry = future.get();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.memory_hits;
    stats_.saved_compute_us += entry->compute_us;
    return entry->result;
  }

  // This caller computes (or loads) the entry; everyone else waits on the
  // shared future. The promise must be fulfilled on every path, including
  // a throwing compute, or waiters would hang.
  try {
    if (EntryPtr from_disk = LoadBlob(key)) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.disk_hits;
        stats_.saved_compute_us += from_disk->compute_us;
      }
      promise.set_value(from_disk);
      return from_disk->result;
    }

    const uint64_t start_us = NowSteadyUs();
    auto entry = std::make_shared<Entry>();
    entry->result = compute();
    entry->compute_us = NowSteadyUs() - start_us;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.computes;
    }
    StoreBlob(key, *entry);
    promise.set_value(entry);
    return entry->result;
  } catch (...) {
    // Unpin the key so a later call can retry, then propagate to this
    // caller and every waiter.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

std::optional<rtc::SessionResult> ResultCache::Lookup(const SessionKey& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(key);
    if (it != inflight_.end() &&
        it->second.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
      const EntryPtr entry = it->second.get();
      ++stats_.memory_hits;
      stats_.saved_compute_us += entry->compute_us;
      return entry->result;
    }
    // A still-running GetOrCompute owner counts as a miss: Lookup never
    // blocks. The subsequent Put for the same key is a no-op.
  }
  if (EntryPtr from_disk = LoadBlob(key)) {
    std::promise<EntryPtr> promise;
    promise.set_value(from_disk);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_hits;
    stats_.saved_compute_us += from_disk->compute_us;
    // Publish into the memory tier; losing an emplace race keeps the
    // existing (equal) entry.
    inflight_.emplace(key, promise.get_future().share());
    return from_disk->result;
  }
  return std::nullopt;
}

void ResultCache::Put(const SessionKey& key, const rtc::SessionResult& result,
                      uint64_t compute_us) {
  auto entry = std::make_shared<Entry>();
  entry->result = result;
  entry->compute_us = compute_us;
  std::promise<EntryPtr> promise;
  promise.set_value(entry);
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.computes;
    inserted = inflight_.emplace(key, promise.get_future().share()).second;
  }
  // Losing the emplace race (another worker computed the same key) keeps
  // the first entry; results are deterministic per key, so both are equal.
  if (inserted) StoreBlob(key, *entry);
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string ResultCache::BlobPath(const SessionKey& key) const {
  return options_.dir + "/" + key.ToHex() + kBlobSuffix;
}

ResultCache::EntryPtr ResultCache::LoadBlob(const SessionKey& key) {
  if (options_.dir.empty()) return nullptr;
  std::ifstream in(BlobPath(key), std::ios::binary);
  if (!in) return nullptr;  // plain miss, not corruption

  std::vector<uint8_t> blob((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  in.close();

  const auto reject = [this]() -> EntryPtr {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt;
    return nullptr;
  };

  ByteReader r(blob);
  char magic[4] = {};
  for (char& c : magic) c = static_cast<char>(r.U8());
  if (!r.ok() || std::memcmp(magic, kMagic, 4) != 0) return reject();
  if (r.U32() != kBlobVersion) return reject();
  if (r.U64() != kSimFingerprint) return reject();
  // The key is already the filename; the echo catches renamed files.
  if (r.U64() != key.hi || r.U64() != key.lo) return reject();
  const uint64_t compute_us = r.U64();
  const uint64_t payload_size = r.U64();
  const uint64_t sum_hi = r.U64();
  const uint64_t sum_lo = r.U64();
  if (!r.ok() || payload_size != blob.size() - r.pos()) return reject();

  const uint8_t* payload = blob.data() + r.pos();
  const SessionKey sum =
      HashBytes(payload, static_cast<size_t>(payload_size), kBlobVersion);
  if (sum.hi != sum_hi || sum.lo != sum_lo) return reject();

  auto entry = std::make_shared<Entry>();
  entry->compute_us = compute_us;
  std::vector<uint8_t> payload_copy(payload, payload + payload_size);
  if (!DecodeResult(payload_copy, &entry->result)) return reject();
  return entry;
}

void ResultCache::StoreBlob(const SessionKey& key, const Entry& entry) {
  if (options_.dir.empty()) return;

  const std::vector<uint8_t> payload = EncodeResult(entry.result);
  const SessionKey sum =
      HashBytes(payload.data(), payload.size(), kBlobVersion);

  ByteWriter w;
  w.Reserve(64 + payload.size());
  for (char c : kMagic) w.U8(static_cast<uint8_t>(c));
  w.U32(kBlobVersion);
  w.U64(kSimFingerprint);
  w.U64(key.hi);
  w.U64(key.lo);
  w.U64(entry.compute_us);
  w.U64(payload.size());
  w.U64(sum.hi);
  w.U64(sum.lo);

  // Unique temp name per process+thread so concurrent writers of the same
  // key never collide; the rename is atomic, so readers see old or new,
  // never a partial file.
  const std::string final_path = BlobPath(key);
  const std::string tmp_path =
      final_path + ".tmp." +
      std::to_string(static_cast<uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()) ^
          reinterpret_cast<uintptr_t>(&entry)));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable cache dir: silently skip the store
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    if (!out) {
      out.close();
      std::error_code ec;
      fs::remove(tmp_path, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
  }
  EvictOverCap();
}

void ResultCache::EvictOverCap() {
  std::error_code ec;
  struct BlobFile {
    fs::path path;
    uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<BlobFile> files;
  uint64_t total = 0;
  for (const fs::directory_entry& e :
       fs::directory_iterator(options_.dir, ec)) {
    if (ec) return;
    if (e.path().extension() != kBlobSuffix) continue;
    std::error_code stat_ec;
    const uint64_t size = e.file_size(stat_ec);
    if (stat_ec) continue;
    const fs::file_time_type mtime = e.last_write_time(stat_ec);
    if (stat_ec) continue;
    files.push_back({e.path(), size, mtime});
    total += size;
  }
  if (total <= options_.max_disk_bytes) return;

  std::sort(files.begin(), files.end(),
            [](const BlobFile& a, const BlobFile& b) {
              return a.mtime < b.mtime;
            });
  for (const BlobFile& f : files) {
    if (total <= options_.max_disk_bytes) break;
    std::error_code rm_ec;
    // Another process may have evicted it first; only count our removals.
    if (fs::remove(f.path, rm_ec) && !rm_ec) {
      total -= f.size;
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.evictions;
    }
  }
}

// --- SessionResult blob codec -----------------------------------------------
//
// Field-by-field, fixed order, little-endian; doubles as IEEE-754 bit
// patterns (round-trips are bit-exact, so cached results are byte-identical
// to freshly computed ones when rendered to CSV/JSON).

std::vector<uint8_t> ResultCache::EncodeResult(
    const rtc::SessionResult& res) {
  ByteWriter w;
  w.Reserve(128 + res.frames.size() * 96 + res.timeseries.size() * 88);

  w.Str(res.scheme_name);

  const metrics::SessionSummary& s = res.summary;
  w.I64(s.frames_captured);
  w.I64(s.frames_delivered);
  w.I64(s.frames_skipped);
  w.I64(s.frames_dropped_sender);
  w.I64(s.frames_lost_network);
  w.F64(s.latency_mean_ms);
  w.F64(s.latency_p50_ms);
  w.F64(s.latency_p95_ms);
  w.F64(s.latency_p99_ms);
  w.F64(s.latency_max_ms);
  w.F64(s.render_latency_mean_ms);
  w.F64(s.render_latency_p95_ms);
  w.F64(s.late_render_ratio);
  w.F64(s.ssim_mean);
  w.F64(s.psnr_mean_db);
  w.F64(s.qp_mean);
  w.F64(s.encoded_ssim_mean);
  w.F64(s.displayed_ssim_mean);
  w.F64(s.undelivered_ratio);
  w.F64(s.encoded_bitrate_kbps);
  w.I64(s.total_reencodes);

  w.U64(res.frames.size());
  for (const metrics::FrameRecord& f : res.frames) {
    w.I64(f.frame_id);
    PutTime(w, f.capture_time);
    w.U8(static_cast<uint8_t>(f.fate));
    w.U8(static_cast<uint8_t>(f.type));
    w.F64(f.qp);
    w.I64(f.size.bits());
    w.F64(f.ssim);
    w.F64(f.psnr);
    w.U32(static_cast<uint32_t>(f.reencodes));
    w.F64(f.temporal_complexity);
    w.Bool(f.complete_time.has_value());
    if (f.complete_time) PutTime(w, *f.complete_time);
    w.Bool(f.render_time.has_value());
    if (f.render_time) PutTime(w, *f.render_time);
    w.Bool(f.late_render);
  }

  w.U64(res.timeseries.size());
  for (const metrics::TimeseriesPoint& p : res.timeseries) {
    PutTime(w, p.at);
    w.F64(p.capacity_kbps);
    w.F64(p.bwe_target_kbps);
    w.F64(p.encoder_target_kbps);
    w.F64(p.acked_kbps);
    w.F64(p.pacer_queue_ms);
    w.F64(p.link_queue_ms);
    w.F64(p.loss_rate);
    w.F64(p.last_qp);
    w.F64(p.last_latency_ms);
  }

  const net::LinkStats& l = res.link_stats;
  w.I64(l.packets_delivered);
  w.I64(l.packets_dropped);
  w.I64(l.packets_lost_random);
  w.I64(l.packets_duplicated);
  w.I64(l.packets_reordered);
  w.I64(l.outages);
  w.I64(l.bytes_delivered.bits());
  w.I64(l.bytes_dropped.bits());

  const core::CircuitBreaker::Stats& b = res.breaker_stats;
  w.I64(b.opens);
  w.I64(b.pauses);
  w.I64(b.recoveries);
  PutDelta(w, b.time_open);
  PutDelta(w, b.time_paused);

  w.U64(res.events_executed);
  res.metrics.Encode(w);
  return w.Take();
}

bool ResultCache::DecodeResult(const std::vector<uint8_t>& payload,
                               rtc::SessionResult* out) {
  ByteReader r(payload);
  rtc::SessionResult res;

  res.scheme_name = r.Str();

  metrics::SessionSummary& s = res.summary;
  s.frames_captured = r.I64();
  s.frames_delivered = r.I64();
  s.frames_skipped = r.I64();
  s.frames_dropped_sender = r.I64();
  s.frames_lost_network = r.I64();
  s.latency_mean_ms = r.F64();
  s.latency_p50_ms = r.F64();
  s.latency_p95_ms = r.F64();
  s.latency_p99_ms = r.F64();
  s.latency_max_ms = r.F64();
  s.render_latency_mean_ms = r.F64();
  s.render_latency_p95_ms = r.F64();
  s.late_render_ratio = r.F64();
  s.ssim_mean = r.F64();
  s.psnr_mean_db = r.F64();
  s.qp_mean = r.F64();
  s.encoded_ssim_mean = r.F64();
  s.displayed_ssim_mean = r.F64();
  s.undelivered_ratio = r.F64();
  s.encoded_bitrate_kbps = r.F64();
  s.total_reencodes = r.I64();

  const uint64_t n_frames = r.U64();
  if (!r.ok() || n_frames > payload.size()) return false;  // size sanity
  res.frames.reserve(static_cast<size_t>(n_frames));
  for (uint64_t i = 0; i < n_frames && r.ok(); ++i) {
    metrics::FrameRecord f;
    f.frame_id = r.I64();
    f.capture_time = GetTime(r);
    f.fate = static_cast<metrics::FrameFate>(r.U8());
    f.type = static_cast<codec::FrameType>(r.U8());
    f.qp = r.F64();
    f.size = DataSize::Bits(r.I64());
    f.ssim = r.F64();
    f.psnr = r.F64();
    f.reencodes = static_cast<int>(r.U32());
    f.temporal_complexity = r.F64();
    if (r.Bool()) f.complete_time = GetTime(r);
    if (r.Bool()) f.render_time = GetTime(r);
    f.late_render = r.Bool();
    res.frames.push_back(f);
  }

  const uint64_t n_points = r.U64();
  if (!r.ok() || n_points > payload.size()) return false;
  res.timeseries.reserve(static_cast<size_t>(n_points));
  for (uint64_t i = 0; i < n_points && r.ok(); ++i) {
    metrics::TimeseriesPoint p;
    p.at = GetTime(r);
    p.capacity_kbps = r.F64();
    p.bwe_target_kbps = r.F64();
    p.encoder_target_kbps = r.F64();
    p.acked_kbps = r.F64();
    p.pacer_queue_ms = r.F64();
    p.link_queue_ms = r.F64();
    p.loss_rate = r.F64();
    p.last_qp = r.F64();
    p.last_latency_ms = r.F64();
    res.timeseries.push_back(p);
  }

  net::LinkStats& l = res.link_stats;
  l.packets_delivered = r.I64();
  l.packets_dropped = r.I64();
  l.packets_lost_random = r.I64();
  l.packets_duplicated = r.I64();
  l.packets_reordered = r.I64();
  l.outages = r.I64();
  l.bytes_delivered = DataSize::Bits(r.I64());
  l.bytes_dropped = DataSize::Bits(r.I64());

  core::CircuitBreaker::Stats& b = res.breaker_stats;
  b.opens = r.I64();
  b.pauses = r.I64();
  b.recoveries = r.I64();
  b.time_open = GetDelta(r);
  b.time_paused = GetDelta(r);

  res.events_executed = r.U64();
  res.metrics = obs::RegistrySnapshot::Decode(r);

  if (!r.ok() || !r.AtEnd()) return false;
  *out = std::move(res);
  return true;
}

}  // namespace rave::runner
