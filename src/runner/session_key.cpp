#include "runner/session_key.h"

#include <cstring>

#include "util/byteio.h"

namespace rave::runner {

namespace {

// MurmurHash3 x64/128 (public-domain algorithm by Austin Appleby), written
// against ByteWriter's little-endian layout so the hash is host-independent.
inline uint64_t Rotl64(uint64_t x, int8_t r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t FMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

inline uint64_t LoadLE64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

SessionKey HashBytes(const uint8_t* data, size_t size, uint64_t seed) {
  const size_t nblocks = size / 16;
  uint64_t h1 = seed;
  uint64_t h2 = seed;
  constexpr uint64_t c1 = 0x87C37B91114253D5ULL;
  constexpr uint64_t c2 = 0x4CF5AD432745937FULL;

  for (size_t i = 0; i < nblocks; ++i) {
    uint64_t k1 = LoadLE64(data + i * 16);
    uint64_t k2 = LoadLE64(data + i * 16 + 8);

    k1 *= c1;
    k1 = Rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = Rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52DCE729;

    k2 *= c2;
    k2 = Rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = Rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495AB5;
  }

  const uint8_t* tail = data + nblocks * 16;
  uint64_t k1 = 0;
  uint64_t k2 = 0;
  switch (size & 15) {
    case 15: k2 ^= static_cast<uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<uint64_t>(tail[8]);
      k2 *= c2;
      k2 = Rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<uint64_t>(tail[0]);
      k1 *= c1;
      k1 = Rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    case 0:
      break;
  }

  h1 ^= static_cast<uint64_t>(size);
  h2 ^= static_cast<uint64_t>(size);
  h1 += h2;
  h2 += h1;
  h1 = FMix64(h1);
  h2 = FMix64(h2);
  h1 += h2;
  h2 += h1;
  return SessionKey{h1, h2};
}

std::string SessionKey::ToHex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const uint64_t word = i < 8 ? hi : lo;
    const int shift = 8 * (7 - (i & 7));
    const uint8_t byte = static_cast<uint8_t>(word >> shift);
    out[2 * i] = kDigits[byte >> 4];
    out[2 * i + 1] = kDigits[byte & 0xF];
  }
  return out;
}

namespace {

// Every Put* helper writes a fixed-width canonical encoding; infinities ride
// on the underlying sentinel integer values, which are part of the semantics.
void PutTime(ByteWriter& w, Timestamp t) { w.I64(t.us()); }
void PutDelta(ByteWriter& w, TimeDelta d) { w.I64(d.us()); }
void PutRate(ByteWriter& w, DataRate r) { w.I64(r.bps()); }
void PutSize(ByteWriter& w, DataSize s) { w.I64(s.bits()); }

void PutTrace(ByteWriter& w, const net::CapacityTrace& trace) {
  w.U64(trace.steps().size());
  for (const net::CapacityTrace::Step& step : trace.steps()) {
    PutTime(w, step.start);
    PutRate(w, step.rate);
  }
}

void PutLossModel(ByteWriter& w, const net::LossModel& loss) {
  w.F64(loss.random_loss);
  w.Bool(loss.gilbert_enabled);
  w.F64(loss.gilbert.p_good_to_bad);
  w.F64(loss.gilbert.p_bad_to_good);
  w.F64(loss.gilbert_bad_loss);
  PutDelta(w, loss.gilbert_step);
  w.U64(loss.seed);
}

void PutFaults(ByteWriter& w, const fault::FaultPlan& plan) {
  w.U64(plan.events().size());
  for (const fault::FaultEvent& e : plan.events()) {
    w.U8(static_cast<uint8_t>(e.kind));
    PutTime(w, e.start);
    PutDelta(w, e.duration);
    w.F64(e.magnitude);
    PutDelta(w, e.delay);
    PutRate(w, e.rate);
    PutDelta(w, e.propagation);
    w.Bool(e.loss.has_value());
    if (e.loss) PutLossModel(w, *e.loss);
  }
}

}  // namespace

SessionKey ComputeSessionKey(const rtc::SessionConfig& c) {
  ByteWriter w;
  w.Reserve(1024 + 16 * c.link.trace->steps().size());

  w.U64(kSimFingerprint);

  w.U8(static_cast<uint8_t>(c.scheme));
  PutDelta(w, c.duration);
  w.U64(c.seed);

  // video::VideoSourceConfig
  w.U32(static_cast<uint32_t>(c.source.resolution.width));
  w.U32(static_cast<uint32_t>(c.source.resolution.height));
  w.F64(c.source.fps);
  w.U8(static_cast<uint8_t>(c.source.content));
  w.U64(c.source.seed);

  // codec::EncoderConfig
  w.F64(c.encoder.fps);
  w.U32(static_cast<uint32_t>(c.encoder.keyframe_interval_frames));
  w.Bool(c.encoder.keyframe_on_scene_change);
  PutDelta(w, c.encoder.min_keyframe_interval);
  w.U32(static_cast<uint32_t>(c.encoder.max_reencodes));
  w.F64(c.encoder.cap_tolerance);
  w.F64(c.encoder.rd.coef_p);
  w.F64(c.encoder.rd.gamma_p);
  w.F64(c.encoder.rd.coef_i);
  w.F64(c.encoder.rd.gamma_i);
  w.F64(c.encoder.rd.noise_sigma);
  w.F64(c.encoder.rd.ssim_d0);
  w.F64(c.encoder.rd.ssim_beta);
  w.I64(c.encoder.rd.min_frame_bits);
  w.U64(c.encoder.seed);

  // net::Link::Config
  PutTrace(w, *c.link.trace);
  PutDelta(w, c.link.propagation);
  PutSize(w, c.link.queue_capacity);
  PutLossModel(w, c.link.loss);

  // Feedback path.
  PutDelta(w, c.feedback_delay);
  PutDelta(w, c.feedback_interval);
  w.F64(c.feedback_loss);

  PutRate(w, c.initial_rate);
  w.F64(c.pacing_factor);
  PutDelta(w, c.max_pacer_queue);

  // core::AdaptiveConfig
  w.F64(c.adaptive.fps);
  PutRate(w, c.adaptive.initial_target);
  w.F64(c.adaptive.budget.fps);
  PutDelta(w, c.adaptive.budget.allowed_queue_delay);
  w.U32(static_cast<uint32_t>(c.adaptive.budget.drain_horizon_frames));
  w.U32(static_cast<uint32_t>(c.adaptive.budget.steady_drain_horizon_frames));
  w.F64(c.adaptive.budget.drain_utilization);
  w.F64(c.adaptive.budget.steady_utilization);
  PutSize(w, c.adaptive.budget.min_frame);
  PutDelta(w, c.adaptive.budget.skip_queue_delay);
  w.U32(static_cast<uint32_t>(c.adaptive.budget.max_consecutive_skips));
  w.F64(c.adaptive.budget.key_boost_steady);
  w.F64(c.adaptive.budget.key_boost_drop);
  w.F64(c.adaptive.budget.cap_slack_steady);
  w.F64(c.adaptive.budget.cap_slack_drop);
  w.F64(c.adaptive.drop.drop_ratio);
  PutDelta(w, c.adaptive.drop.window);
  PutDelta(w, c.adaptive.drop.hold);
  PutDelta(w, c.adaptive.drop.queue_delay_trigger);
  PutDelta(w, c.adaptive.drop.queue_delay_clear);
  PutDelta(w, c.adaptive.drop.overuse_queue_gate);
  w.F64(c.adaptive.qp_down_step);
  w.F64(c.adaptive.qp_up_step_steady);
  w.F64(c.adaptive.steady_capacity_alpha);
  w.Bool(c.adaptive.enable_fast_qp);
  w.Bool(c.adaptive.enable_frame_cap);
  w.Bool(c.adaptive.enable_drain_mode);
  w.Bool(c.adaptive.enable_skip);

  // core::SalsifyConfig
  w.F64(c.salsify.fps);
  PutRate(w, c.salsify.initial_target);
  PutDelta(w, c.salsify.pause_threshold);
  w.U32(static_cast<uint32_t>(c.salsify.max_consecutive_skips));
  w.F64(c.salsify.key_boost);
  w.F64(c.salsify.cap_slack);
  PutSize(w, c.salsify.min_frame);

  // codec::AbrConfig
  w.F64(c.abr.fps);
  PutRate(w, c.abr.initial_target);
  w.F64(c.abr.qcomp);
  w.F64(c.abr.rate_tolerance);
  w.F64(c.abr.qp_step);
  w.F64(c.abr.ip_factor);
  PutDelta(w, c.abr.vbv_window);
  w.F64(c.abr.window_seconds);

  // codec::CbrConfig
  w.F64(c.cbr.fps);
  PutRate(w, c.cbr.initial_target);
  PutDelta(w, c.cbr.vbv_window);
  w.F64(c.cbr.qp_step);
  w.F64(c.cbr.ip_factor);
  w.F64(c.cbr.target_fullness);

  w.Bool(c.enable_degradation);
  w.Bool(c.enable_rtx);
  w.Bool(c.enable_fec);

  // transport::ProtectionController::Config
  w.U32(static_cast<uint32_t>(c.protection.group_size));
  w.U32(static_cast<uint32_t>(c.protection.max_recovery));
  w.F64(c.protection.activation_loss);
  w.F64(c.protection.headroom);

  // Optional cross traffic.
  w.Bool(c.cross_traffic.has_value());
  if (c.cross_traffic) {
    PutRate(w, c.cross_traffic->rate);
    PutDelta(w, c.cross_traffic->mean_on);
    PutDelta(w, c.cross_traffic->mean_off);
    PutSize(w, c.cross_traffic->packet_size);
    w.Bool(c.cross_traffic->start_on);
    w.U64(c.cross_traffic->seed);
  }

  PutFaults(w, *c.faults);

  // core::CircuitBreaker::Config
  w.Bool(c.breaker.enabled);
  PutDelta(w, c.breaker.feedback_interval);
  w.U32(static_cast<uint32_t>(c.breaker.open_after_missed));
  w.F64(c.breaker.backoff_factor);
  PutRate(w, c.breaker.floor);
  PutDelta(w, c.breaker.pause_after);
  w.F64(c.breaker.recovery_start_fraction);
  w.F64(c.breaker.ramp_up_factor);

  w.Str(c.wireless_profile);

  PutDelta(w, c.timeseries_interval);

  const std::vector<uint8_t>& bytes = w.bytes();
  return HashBytes(bytes.data(), bytes.size(), kSimFingerprint);
}

}  // namespace rave::runner
