// Content-addressed session-result cache.
//
// Two tiers:
//  - In-process: a map from SessionKey to the finished result, with
//    in-flight deduplication — when several workers ask for the same key
//    concurrently, exactly one computes and the rest block on its future.
//  - On-disk (optional): versioned binary blobs under `Options::dir`, one
//    file per key (`<hex>.rrc`), written via temp-file + atomic rename so
//    concurrent writers (threads or separate processes sharing a cache
//    directory) never expose partial files.
//
// The disk tier is fail-safe by construction: a truncated, corrupted,
// version-mismatched, or fingerprint-mismatched blob is treated as a miss —
// the session is recomputed and the blob overwritten. The cache can slow a
// run down (never) or lose entries (harmless); it cannot crash a run or
// serve stale results, because the key embeds kSimFingerprint and the blob
// carries a checksum over its payload.
//
// Lookups happen once per session, strictly off the per-event hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtc/session.h"
#include "runner/session_key.h"

namespace rave::runner {

/// On-disk blob layout version. BUMP whenever EncodeResult's payload layout
/// (or the header around it) changes, so older blobs are rejected as
/// corrupt and recomputed instead of misparsed.
/// 2: payload gained the obs::RegistrySnapshot tail after events_executed.
/// 3: registry distribution metrics became QuantileSketches — MetricSnapshot
///    carries a conditional sketch payload (kind == kSketch).
inline constexpr uint32_t kBlobVersion = 3;

class ResultCache {
 public:
  struct Options {
    /// On-disk store directory; empty = in-memory tier only.
    std::string dir;
    /// Disk-tier size cap; oldest blobs (by mtime) are evicted past it.
    uint64_t max_disk_bytes = 512ull * 1024 * 1024;
  };

  struct Stats {
    uint64_t memory_hits = 0;
    uint64_t disk_hits = 0;
    /// Sessions actually simulated (misses).
    uint64_t computes = 0;
    /// Blobs written to disk.
    uint64_t stores = 0;
    /// Disk entries rejected (bad magic/version/fingerprint/checksum/decode).
    uint64_t corrupt = 0;
    /// Blobs removed by the size-cap sweep.
    uint64_t evictions = 0;
    /// Simulation time skipped thanks to hits (from the blobs' recorded
    /// compute durations).
    uint64_t saved_compute_us = 0;
  };

  ResultCache() : ResultCache(Options()) {}
  explicit ResultCache(Options options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for `key`, or runs `compute` (exactly once
  /// per key, even under concurrent callers) and caches what it returns.
  rtc::SessionResult GetOrCompute(
      const SessionKey& key,
      const std::function<rtc::SessionResult()>& compute);

  /// Probe-only lookup (memory, then disk); nullopt on miss. For callers
  /// whose compute spans several keys at once (the batched runner steps a
  /// whole group of sessions in lockstep), so GetOrCompute's one-closure-
  /// per-key model does not fit. Does not pin the key, so unlike
  /// GetOrCompute two concurrent missers may both compute — the batched
  /// runner schedules each key on exactly one worker, so this cannot arise
  /// there; other callers get duplicate work at worst, never a wrong result.
  std::optional<rtc::SessionResult> Lookup(const SessionKey& key);

  /// Publishes a computed result into both tiers. `compute_us` is the wall
  /// time the computation cost (credited to saved_compute_us on later hits).
  void Put(const SessionKey& key, const rtc::SessionResult& result,
           uint64_t compute_us);

  Stats stats() const;

  const Options& options() const { return options_; }

  /// Reads RAVE_CACHE_DIR; nullopt when unset or empty.
  static std::optional<std::string> DirFromEnv();
  /// Reads RAVE_CACHE_MAX_MB; Options{} default when unset or malformed.
  static uint64_t MaxDiskBytesFromEnv();

  // --- blob codec, exposed for tests ---

  /// Payload encoding of a SessionResult (field-by-field, little-endian).
  static std::vector<uint8_t> EncodeResult(const rtc::SessionResult& result);
  /// Inverse of EncodeResult; false on any truncation/garbage.
  static bool DecodeResult(const std::vector<uint8_t>& payload,
                           rtc::SessionResult* out);

 private:
  struct Entry {
    rtc::SessionResult result;
    uint64_t compute_us = 0;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  /// Disk-tier blob path for a key.
  std::string BlobPath(const SessionKey& key) const;
  /// Loads and fully validates a blob; nullptr on miss or corruption.
  EntryPtr LoadBlob(const SessionKey& key);
  /// Writes a blob atomically (temp + rename), then runs the eviction sweep.
  void StoreBlob(const SessionKey& key, const Entry& entry);
  /// Deletes oldest blobs until the directory fits the size cap.
  void EvictOverCap();

  Options options_;

  mutable std::mutex mutex_;
  std::unordered_map<SessionKey, std::shared_future<EntryPtr>> inflight_;
  Stats stats_;
};

}  // namespace rave::runner
