#include "runner/version.h"

#include <cstdlib>
#include <sstream>

#include "runner/result_cache.h"
#include "runner/session_key.h"
#include "simd/dispatch.h"
#include "util/alloc_probe.h"

namespace rave::runner {

std::string BuildOptionsString() {
  std::ostringstream os;
  os << "simd=" << (simd::Avx2CompiledIn() ? "avx2" : "scalar")
     << " dispatch=" << simd::ToString(simd::ActiveLevel());
#ifdef RAVE_TRACING_DISABLED
  os << " tracing=off";
#else
  os << " tracing=on";
#endif
  os << " alloc_probe=" << (AllocProbeEnabled() ? "on" : "off");
  os << " coalesce=" << (std::getenv("RAVE_NO_COALESCE") ? "off" : "on");
  os << " staging=" << (std::getenv("RAVE_NO_STAGING") ? "off" : "on");
  return os.str();
}

std::string VersionString() {
  std::ostringstream os;
  os << "rave sim fingerprint: " << kSimFingerprint << '\n'
     << "result-cache blob version: " << kBlobVersion << '\n'
     << "options: " << BuildOptionsString() << '\n';
  return os.str();
}

}  // namespace rave::runner
