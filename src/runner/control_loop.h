// Per-frame control-loop stepper, scalar vs batched.
//
// One "lane" is the per-frame hot path of a session distilled to the parts
// that dominate its math: capture (content model), x264-ABR rate control,
// the ground-truth R-D encode, and the trendline over-use estimator fed by a
// synthetic one-packet-per-frame bottleneck. The stepper runs N lanes for a
// fixed duration in two interchangeable ways:
//
//   * batch == 1 — the per-session path: each lane runs to completion with
//     the real components (`AbrRateControl`, `RdModel`,
//     `TrendlineEstimator`), exactly as a `Session` steps them.
//   * batch == B — lanes advance frame-by-frame in lockstep over the SoA
//     state blocks (`AbrSoa`, `RdModelSoa`, `TrendlineSoa`), with the
//     transcendental math evaluated as batched simd kernels across lanes.
//
// Both produce bit-identical per-lane trajectories (the digest covers every
// per-frame QP, qscale, frame size, SSIM and estimator state), which
// `runner_control_loop_test` asserts and the tab4 batch-sweep section
// re-checks before reporting throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "cc/trendline.h"
#include "codec/abr_rate_control.h"
#include "codec/rd_model.h"
#include "net/capacity_trace.h"
#include "util/interned.h"
#include "util/time.h"
#include "video/content_model.h"

namespace rave::runner {

/// One lane of the control-loop matrix.
struct ControlLaneSpec {
  video::ContentClass content = video::ContentClass::kTalkingHead;
  uint64_t seed = 1;
  /// Link capacity over time; also the encoder target (modulated by the
  /// lane's own over-use signal).
  Interned<net::CapacityTrace> trace;
};

struct ControlLoopConfig {
  double fps = 30.0;
  TimeDelta duration = TimeDelta::Seconds(30);
  /// One-way base delay of the synthetic bottleneck.
  TimeDelta base_delay = TimeDelta::Millis(25);
  codec::AbrConfig abr;
  codec::RdModelConfig rd;
  cc::TrendlineEstimator::Config trendline;
  std::vector<ControlLaneSpec> lanes;
};

/// Per-lane trajectory summary. `digest` is an FNV-1a hash over every
/// per-frame (qp, qscale, bits, ssim, estimator state, threshold) tuple, so
/// equality means the full trajectory matched bit for bit.
struct ControlLaneResult {
  uint64_t digest = 0;
  int64_t frames = 0;
  int64_t total_bits = 0;
  double qp_sum = 0.0;
  double ssim_sum = 0.0;
  int64_t overuse_frames = 0;

  bool operator==(const ControlLaneResult&) const = default;
};

/// Runs every lane for the configured duration. `batch <= 1` selects the
/// per-session scalar path; otherwise lanes run in lockstep groups of
/// `batch` over the SoA blocks. Results are independent of `batch`.
std::vector<ControlLaneResult> RunControlLoop(const ControlLoopConfig& config,
                                              int batch);

}  // namespace rave::runner
