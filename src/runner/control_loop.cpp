#include "runner/control_loop.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "cc/trendline_soa.h"
#include "codec/soa.h"
#include "util/rng.h"
#include "util/units.h"
#include "video/video_source.h"

namespace rave::runner {
namespace {

/// Seed salt separating the R-D noise stream from the content stream.
constexpr uint64_t kRdSeedSalt = 0x9e3779b97f4a7c15ULL;

/// Over-use back-off applied to the encoder target while the lane's
/// estimator reports kOverusing (stand-in for the AIMD decrease).
constexpr double kOveruseBackoff = 0.85;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  // FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t FnvMix(uint64_t h, double v) {
  return FnvMix(h, std::bit_cast<uint64_t>(v));
}

/// One-packet-per-frame bottleneck: the frame is ready at send + base_delay
/// and serializes at link rate behind the previous frame.
struct LaneLink {
  Timestamp last_send = Timestamp::Zero();
  Timestamp last_depart = Timestamp::Zero();

  /// Records frame 0 without emitting a delta (no predecessor).
  void Prime(Timestamp send, int64_t bits, DataRate capacity,
             TimeDelta base_delay) {
    last_send = send;
    last_depart = send + base_delay + DataSize::Bits(bits) / capacity;
  }

  cc::InterArrivalDelta Step(Timestamp send, int64_t bits, DataRate capacity,
                             TimeDelta base_delay) {
    const Timestamp ready = send + base_delay;
    const Timestamp start = std::max(last_depart, ready);
    const Timestamp depart = start + DataSize::Bits(bits) / capacity;
    cc::InterArrivalDelta delta;
    delta.send_delta = send - last_send;
    delta.arrival_delta = depart - last_depart;
    delta.arrival = depart;
    last_send = send;
    last_depart = depart;
    return delta;
  }
};

struct PerFrameSample {
  double qp;
  double qscale;
  int64_t bits;
  double ssim;
  cc::BandwidthUsage state;
  double threshold;
};

void Accumulate(ControlLaneResult& r, const PerFrameSample& s) {
  r.digest = FnvMix(r.digest, s.qp);
  r.digest = FnvMix(r.digest, s.qscale);
  r.digest = FnvMix(r.digest, static_cast<uint64_t>(s.bits));
  r.digest = FnvMix(r.digest, s.ssim);
  r.digest = FnvMix(r.digest, static_cast<uint64_t>(s.state));
  r.digest = FnvMix(r.digest, s.threshold);
  ++r.frames;
  r.total_bits += s.bits;
  r.qp_sum += s.qp;
  r.ssim_sum += s.ssim;
  if (s.state == cc::BandwidthUsage::kOverusing) ++r.overuse_frames;
}

ControlLaneResult RunLaneScalar(const ControlLoopConfig& config,
                                const ControlLaneSpec& spec) {
  codec::AbrConfig abr_config = config.abr;
  abr_config.fps = config.fps;

  video::VideoSourceConfig source_config;
  source_config.fps = config.fps;
  source_config.content = spec.content;
  source_config.seed = spec.seed;
  video::VideoSource source(source_config);

  codec::AbrRateControl rc(abr_config);
  codec::RdModel rd(config.rd, Rng(spec.seed ^ kRdSeedSalt));
  cc::TrendlineEstimator trendline(config.trendline);
  net::CapacityTrace::Cursor cursor(*spec.trace);
  LaneLink link;
  cc::BandwidthUsage state = cc::BandwidthUsage::kNormal;

  const TimeDelta interval = source.frame_interval();
  const int64_t frames = config.duration.us() / interval.us();
  ControlLaneResult result;
  result.digest = 0xcbf29ce484222325ULL;

  for (int64_t f = 0; f < frames; ++f) {
    const Timestamp now = Timestamp::Micros(f * interval.us());
    const video::RawFrame frame = source.CaptureFrame(now);

    const DataRate capacity = cursor.RateAt(now);
    DataRate target = capacity;
    if (state == cc::BandwidthUsage::kOverusing) {
      target = target * kOveruseBackoff;
    }
    rc.SetTargetRate(target);

    const codec::FrameType type = (f == 0 || frame.scene_change)
                                      ? codec::FrameType::kKey
                                      : codec::FrameType::kDelta;
    const codec::FrameGuidance guidance = rc.PlanFrame(frame, type, now);
    // The encoder's qp -> qscale round-trip (Encoder::EncodeFrame).
    const double qp = std::clamp(guidance.qp, codec::kMinQp, codec::kMaxQp);
    const double qscale = codec::QpToQscale(qp);

    const int64_t bits = rd.ActualBits(type, frame, qscale).bits();
    const double ssim = rd.Ssim(frame, qscale);

    codec::FrameOutcome outcome;
    outcome.frame_id = f;
    outcome.type = type;
    outcome.qp = qp;
    outcome.qscale = qscale;
    outcome.size = DataSize::Bits(bits);
    const double pixels = static_cast<double>(frame.resolution.pixels());
    outcome.complexity_term = type == codec::FrameType::kKey
                                  ? pixels * frame.spatial_complexity
                                  : pixels * frame.temporal_complexity;
    outcome.capture_time = now;
    rc.OnFrameEncoded(outcome, now);

    if (f == 0) {
      link.Prime(now, bits, capacity, config.base_delay);
    } else {
      state = trendline.OnDelta(
          link.Step(now, bits, capacity, config.base_delay));
    }
    Accumulate(result, {qp, qscale, bits, ssim, state,
                        trendline.threshold()});
  }
  return result;
}

void RunGroupBatched(const ControlLoopConfig& config,
                     const ControlLaneSpec* specs, size_t n,
                     ControlLaneResult* results) {
  codec::AbrConfig abr_config = config.abr;
  abr_config.fps = config.fps;

  std::vector<video::VideoSource> sources;
  std::vector<net::CapacityTrace::Cursor> cursors;
  std::vector<Rng> rd_rngs;
  sources.reserve(n);
  cursors.reserve(n);
  rd_rngs.reserve(n);
  for (size_t l = 0; l < n; ++l) {
    video::VideoSourceConfig source_config;
    source_config.fps = config.fps;
    source_config.content = specs[l].content;
    source_config.seed = specs[l].seed;
    sources.emplace_back(source_config);
    cursors.emplace_back(*specs[l].trace);
    rd_rngs.emplace_back(Rng(specs[l].seed ^ kRdSeedSalt));
  }

  codec::AbrSoa abr(abr_config, n);
  codec::RdModelSoa rd(config.rd, rd_rngs);
  cc::TrendlineSoa trendline(config.trendline, n);
  std::vector<LaneLink> links(n);
  std::vector<cc::BandwidthUsage> states(n, cc::BandwidthUsage::kNormal);

  std::vector<video::RawFrame> frames(n);
  std::vector<codec::FrameType> types(n);
  std::vector<double> cplx(n), qp(n), qscale(n), ssim(n);
  std::vector<int64_t> bits(n);
  std::vector<DataRate> capacities(n);
  std::vector<cc::InterArrivalDelta> deltas(n);

  const TimeDelta interval = sources[0].frame_interval();
  const int64_t frame_count = config.duration.us() / interval.us();
  for (size_t l = 0; l < n; ++l) {
    results[l] = ControlLaneResult{};
    results[l].digest = 0xcbf29ce484222325ULL;
  }

  for (int64_t f = 0; f < frame_count; ++f) {
    const Timestamp now = Timestamp::Micros(f * interval.us());
    for (size_t l = 0; l < n; ++l) {
      frames[l] = sources[l].CaptureFrame(now);
      capacities[l] = cursors[l].RateAt(now);
      DataRate target = capacities[l];
      if (states[l] == cc::BandwidthUsage::kOverusing) {
        target = target * kOveruseBackoff;
      }
      abr.SetTargetRateLane(l, target);
      types[l] = (f == 0 || frames[l].scene_change)
                     ? codec::FrameType::kKey
                     : codec::FrameType::kDelta;
      const double pixels =
          static_cast<double>(frames[l].resolution.pixels());
      cplx[l] = types[l] == codec::FrameType::kKey
                    ? pixels * frames[l].spatial_complexity
                    : pixels * frames[l].temporal_complexity;
    }

    abr.PlanFrames(types.data(), cplx.data(), now, qp.data());
    for (size_t l = 0; l < n; ++l) {
      qp[l] = std::clamp(qp[l], codec::kMinQp, codec::kMaxQp);
    }
    codec::QpToQscaleLanes(qp.data(), qscale.data(), n);

    rd.ActualBitsLanes(types.data(), frames.data(), qscale.data(),
                       bits.data());
    rd.SsimLanes(frames.data(), qscale.data(), ssim.data());
    abr.OnFramesEncoded(types.data(), cplx.data(), qscale.data(), bits.data(),
                        now);

    if (f == 0) {
      for (size_t l = 0; l < n; ++l) {
        links[l].Prime(now, bits[l], capacities[l], config.base_delay);
      }
    } else {
      for (size_t l = 0; l < n; ++l) {
        deltas[l] =
            links[l].Step(now, bits[l], capacities[l], config.base_delay);
      }
      trendline.OnDeltas(deltas.data(), states.data());
    }
    for (size_t l = 0; l < n; ++l) {
      Accumulate(results[l], {qp[l], qscale[l], bits[l], ssim[l], states[l],
                              trendline.threshold(l)});
    }
  }
}

}  // namespace

std::vector<ControlLaneResult> RunControlLoop(const ControlLoopConfig& config,
                                              int batch) {
  assert(config.fps > 0);
  std::vector<ControlLaneResult> results(config.lanes.size());
  if (batch <= 1) {
    for (size_t l = 0; l < config.lanes.size(); ++l) {
      results[l] = RunLaneScalar(config, config.lanes[l]);
    }
    return results;
  }
  const size_t stride = static_cast<size_t>(batch);
  for (size_t begin = 0; begin < config.lanes.size(); begin += stride) {
    const size_t n = std::min(stride, config.lanes.size() - begin);
    RunGroupBatched(config, config.lanes.data() + begin, n,
                    results.data() + begin);
  }
  return results;
}

}  // namespace rave::runner
