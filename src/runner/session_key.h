// Content-addressed session identity.
//
// A SessionKey is a 128-bit hash of a canonical, endianness-stable
// serialization of every field of a SessionConfig — scheme, duration, seed,
// codec and congestion-control parameters, the full capacity-trace step
// list, cross-traffic, and the fault plan. Two configs that would produce
// byte-identical SessionResults hash to the same key; any semantic
// difference produces a different key. The result cache uses the key as the
// sole lookup handle, so correctness of the cache reduces to correctness of
// this serialization.
//
// The serialization is salted with `kSimFingerprint`. BUMP THE FINGERPRINT
// whenever simulation semantics change — a new default, a different event
// ordering, an RNG tweak, a bug fix that alters results — so stale cache
// entries (in memory or on disk) can never be served for the new behaviour.
// Adding a config field does not require a bump (the field changes the
// serialization by itself), but changing the meaning of an existing field
// does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "rtc/session.h"

namespace rave::runner {

/// Version salt for ComputeSessionKey. See file comment for the bump rule.
/// 2: SessionResult gained the obs metrics snapshot (blob layout change).
/// 3: Gilbert loss stepping moved from per-packet to sim-time cadence and
///    p=0/p=1 loss probabilities became exact (no RNG draw) — both change
///    results for existing Gilbert-loss configs without changing any field.
/// 4: Packet-train coalescing moved pacer sends, link completions, and
///    in-order arrivals into shared drain loops: sub-microsecond link
///    serializations now process inline and equal-microsecond ties resolve
///    in drain order instead of per-event seq order, shifting results for
///    some configs. (Both coalescing modes share the drains, so results do
///    not depend on the RAVE_NO_COALESCE knob.)
inline constexpr uint64_t kSimFingerprint = 4;

/// 128-bit content hash of a SessionConfig.
struct SessionKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const SessionKey&, const SessionKey&) = default;

  /// 32 lowercase hex chars; used as the on-disk blob filename.
  std::string ToHex() const;
};

/// 128-bit hash of an arbitrary byte span (MurmurHash3 x64/128 finalization
/// structure). Exposed for the result cache's payload checksums.
SessionKey HashBytes(const uint8_t* data, size_t size, uint64_t seed);

/// Canonical key for a config (includes kSimFingerprint).
SessionKey ComputeSessionKey(const rtc::SessionConfig& config);

}  // namespace rave::runner

template <>
struct std::hash<rave::runner::SessionKey> {
  size_t operator()(const rave::runner::SessionKey& k) const noexcept {
    // The key is already a high-quality hash; fold the halves.
    return static_cast<size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ULL));
  }
};
