#include "runner/parallel_runner.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "runner/result_cache.h"

namespace rave::runner {

int DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

double EstimatedSessionCost(const rtc::SessionConfig& config) {
  // Simulated event count scales with frames; the multipliers capture the
  // machinery that adds events per frame. Only relative order matters.
  double cost = config.duration.seconds() * config.source.fps;
  if (config.cross_traffic) cost *= 1.3;
  if (config.enable_fec) cost *= 1.2;
  if (!config.faults->empty()) cost *= 1.1;
  if (config.link.trace->steps().size() > 64) cost *= 1.1;
  return cost;
}

std::vector<size_t> ScheduleOrder(
    const std::vector<rtc::SessionConfig>& configs) {
  std::vector<double> costs(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    costs[i] = EstimatedSessionCost(configs[i]);
  }
  std::vector<size_t> order(configs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&costs](size_t a, size_t b) { return costs[a] > costs[b]; });
  return order;
}

ParallelRunner::ParallelRunner(int jobs)
    : jobs_(jobs > 0 ? jobs : DefaultJobs()) {
  if (jobs_ == 1) return;  // inline mode
  workers_.reserve(static_cast<size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelRunner::Post(std::function<void()> job) {
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ParallelRunner::WaitIdle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ParallelRunner::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ with a drained queue
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    job();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

std::vector<rtc::SessionResult> ParallelRunner::RunSessions(
    const std::vector<rtc::SessionConfig>& configs, ResultCache* cache) {
  std::vector<rtc::SessionResult> results(configs.size());
  // Longest-expected-job-first: sessions are self-contained, so posting
  // order affects only wall clock, never results — each job writes to its
  // submission-order slot.
  for (size_t i : ScheduleOrder(configs)) {
    Post([&configs, &results, cache, i] {
      if (cache != nullptr) {
        results[i] = cache->GetOrCompute(
            ComputeSessionKey(configs[i]),
            [&configs, i] { return rtc::RunSession(configs[i]); });
      } else {
        results[i] = rtc::RunSession(configs[i]);
      }
    });
  }
  WaitIdle();
  return results;
}

std::vector<rtc::SessionResult> RunSessions(
    const std::vector<rtc::SessionConfig>& configs, int jobs,
    ResultCache* cache) {
  ParallelRunner runner(jobs);
  return runner.RunSessions(configs, cache);
}

}  // namespace rave::runner
