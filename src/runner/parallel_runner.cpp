#include "runner/parallel_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <utility>

#include "codec/frame_staging.h"
#include "runner/result_cache.h"
#include "runner/session_key.h"

namespace rave::runner {

int DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

double EstimatedSessionCost(const rtc::SessionConfig& config) {
  // Simulated event count scales with frames; the multipliers capture the
  // machinery that adds events per frame. Only relative order matters.
  double cost = config.duration.seconds() * config.source.fps;
  if (config.cross_traffic) cost *= 1.3;
  if (config.enable_fec) cost *= 1.2;
  if (!config.faults->empty()) cost *= 1.1;
  if (config.link.trace->steps().size() > 64) cost *= 1.1;
  return cost;
}

std::vector<size_t> ScheduleOrder(
    const std::vector<rtc::SessionConfig>& configs) {
  std::vector<double> costs(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    costs[i] = EstimatedSessionCost(configs[i]);
  }
  std::vector<size_t> order(configs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&costs](size_t a, size_t b) { return costs[a] > costs[b]; });
  return order;
}

ParallelRunner::ParallelRunner(int jobs)
    : jobs_(jobs > 0 ? jobs : DefaultJobs()) {
  if (jobs_ == 1) return;  // inline mode
  workers_.reserve(static_cast<size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelRunner::Post(std::function<void()> job) {
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ParallelRunner::WaitIdle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ParallelRunner::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ with a drained queue
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    job();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

namespace {

/// Lockstep advancement quantum. Small enough that the batch's sessions
/// stay warm in cache together, large enough that the per-quantum loop
/// bookkeeping is negligible against the thousands of events per quantum.
constexpr TimeDelta kBatchQuantum = TimeDelta::Millis(250);

/// Runs one submission-order block [begin, end) of sessions in lockstep on
/// the calling worker: cache hits are filled first, then every miss is
/// constructed, Start()ed, and advanced over shared time quanta until all
/// reach their end, then Finish()ed in order. Each session owns its loop
/// and rngs, so the interleaving is invisible to results.
void RunBatchLockstep(const std::vector<rtc::SessionConfig>& configs,
                      size_t begin, size_t end, rtc::SessionResult* results,
                      ResultCache* cache) {
  std::vector<size_t> missing;
  for (size_t i = begin; i < end; ++i) {
    if (cache != nullptr) {
      if (auto hit = cache->Lookup(ComputeSessionKey(configs[i]))) {
        results[i] = std::move(*hit);
        continue;
      }
    }
    missing.push_back(i);
  }
  if (missing.empty()) return;

  const auto wall_start = std::chrono::steady_clock::now();
  // The hub outlives the sessions (they hold a raw pointer to it).
  codec::FrameStagingHub hub(missing.size());
  std::vector<std::unique_ptr<rtc::Session>> sessions;
  sessions.reserve(missing.size());
  for (size_t i : missing) {
    sessions.push_back(std::make_unique<rtc::Session>(configs[i]));
  }
  // Staging only pays when there is something to batch with; singleton
  // blocks run inline exactly like the per-session path.
  if (sessions.size() >= 2 && ::getenv("RAVE_NO_STAGING") == nullptr) {
    for (auto& session : sessions) session->SetStagingHub(&hub);
  }
  for (auto& session : sessions) session->Start();

  // Frame-boundary rendezvous: advance every live session toward the
  // quantum boundary; sessions whose frame tick staged control math pause
  // early, and once the whole wave has either staged or reached the
  // boundary, the hub flushes all staged lanes through the batched kernels
  // and the staged sessions complete their frames and resume.
  std::vector<rtc::Session*> staged;
  std::vector<rtc::Session*> next;
  staged.reserve(sessions.size());
  next.reserve(sessions.size());
  for (Timestamp boundary = Timestamp::Zero() + kBatchQuantum;; boundary =
                                                   boundary + kBatchQuantum) {
    staged.clear();
    bool any_alive = false;
    for (auto& session : sessions) {
      if (session->done()) continue;
      any_alive = true;
      session->AdvanceUntil(boundary);  // clamps to the session's end
      if (session->has_staged_frame()) staged.push_back(session.get());
    }
    if (!any_alive) break;
    // Flush/complete waves: completing a frame resumes the session toward
    // the boundary in the same call, which may stage its next frame. A
    // staged session is completed even if done() — its loop still holds the
    // events at exactly end_time that an uninterrupted RunUntil would have
    // executed after the frame tick.
    while (!staged.empty()) {
      hub.Flush();
      next.clear();
      for (rtc::Session* session : staged) {
        session->CompleteStagedFrame(boundary);
        if (session->has_staged_frame()) next.push_back(session);
      }
      staged.swap(next);
    }
  }

  for (size_t k = 0; k < missing.size(); ++k) {
    results[missing[k]] = sessions[k]->Finish();
  }
  if (cache != nullptr) {
    // Batch wall time split evenly across the misses: per-session timing is
    // meaningless under interleaving, and compute_us only feeds the cache's
    // saved-compute accounting.
    const uint64_t total_us =
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now() - wall_start)
                                  .count());
    const uint64_t per_session_us = total_us / missing.size();
    for (size_t i : missing) {
      cache->Put(ComputeSessionKey(configs[i]), results[i], per_session_us);
    }
  }
}

}  // namespace

std::vector<rtc::SessionResult> ParallelRunner::RunSessions(
    const std::vector<rtc::SessionConfig>& configs, ResultCache* cache,
    int batch) {
  std::vector<rtc::SessionResult> results(configs.size());
  if (batch > 1) {
    // Submission-order blocks of up to `batch` sessions; blocks are posted
    // longest-total-cost-first (same straggler logic as the per-session
    // path, lifted to blocks). Each block job writes only its own slots.
    struct Block {
      size_t begin;
      size_t end;
      double cost;
    };
    std::vector<Block> blocks;
    const size_t stride = static_cast<size_t>(batch);
    for (size_t b = 0; b < configs.size(); b += stride) {
      Block block{b, std::min(b + stride, configs.size()), 0.0};
      for (size_t i = block.begin; i < block.end; ++i) {
        block.cost += EstimatedSessionCost(configs[i]);
      }
      blocks.push_back(block);
    }
    std::stable_sort(blocks.begin(), blocks.end(),
                     [](const Block& a, const Block& b) { return a.cost > b.cost; });
    for (const Block& block : blocks) {
      Post([&configs, &results, cache, block] {
        RunBatchLockstep(configs, block.begin, block.end, results.data(),
                         cache);
      });
    }
    WaitIdle();
    return results;
  }
  // Longest-expected-job-first: sessions are self-contained, so posting
  // order affects only wall clock, never results — each job writes to its
  // submission-order slot.
  for (size_t i : ScheduleOrder(configs)) {
    Post([&configs, &results, cache, i] {
      if (cache != nullptr) {
        results[i] = cache->GetOrCompute(
            ComputeSessionKey(configs[i]),
            [&configs, i] { return rtc::RunSession(configs[i]); });
      } else {
        results[i] = rtc::RunSession(configs[i]);
      }
    });
  }
  WaitIdle();
  return results;
}

std::vector<rtc::SessionResult> RunSessions(
    const std::vector<rtc::SessionConfig>& configs, int jobs,
    ResultCache* cache, int batch) {
  ParallelRunner runner(jobs);
  return runner.RunSessions(configs, cache, batch);
}

}  // namespace rave::runner
