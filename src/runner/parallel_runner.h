// Parallel execution of independent Session runs.
//
// Every experiment in the evaluation is an embarrassingly-parallel matrix of
// Sessions (traces x content classes x schemes x seeds); each Session owns
// its EventLoop and every Rng it uses, so runs share no mutable state and
// their results are independent of scheduling. `ParallelRunner` exploits
// that: a fixed-size pool of worker threads drains a job queue, and
// `RunSessions` returns results in submission order — bit-identical to
// running the same configs serially, at any job count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "rtc/session.h"

namespace rave::runner {

class ResultCache;

/// Number of jobs used when a caller passes `jobs <= 0`: the hardware
/// concurrency, or 1 if the runtime cannot report it.
int DefaultJobs();

/// Deterministic cost heuristic for one session, in arbitrary units
/// (roughly "simulated frames, weighted by extra machinery"). Depends only
/// on the config, so the schedule — and therefore the run — is reproducible.
double EstimatedSessionCost(const rtc::SessionConfig& config);

/// Posting order for a config matrix: indices sorted longest-expected-first
/// (stable, so equal-cost jobs keep submission order). Running stragglers
/// first minimizes the tail where one long job runs alone at the end.
std::vector<size_t> ScheduleOrder(
    const std::vector<rtc::SessionConfig>& configs);

/// Fixed-size thread pool over a job queue. Workers start in the
/// constructor and join in the destructor; `Post` enqueues arbitrary work
/// and `WaitIdle` blocks until every posted job has finished.
///
/// With `jobs == 1` no threads are spawned and jobs run inline on the
/// calling thread at `Post` time — the serial path stays allocation- and
/// synchronization-free, and `--jobs=1` means exactly "the old behaviour".
class ParallelRunner {
 public:
  /// `jobs <= 0` selects DefaultJobs().
  explicit ParallelRunner(int jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  int jobs() const { return jobs_; }

  /// Enqueues a job. Jobs must not throw; a job that does terminates.
  void Post(std::function<void()> job);

  /// Blocks until the queue is empty and no worker is mid-job.
  void WaitIdle();

  /// Runs every config and returns the results in submission order
  /// (bit-identical at any job count; jobs are *posted* longest-first but
  /// each result lands in its submission-order slot). With a cache, each
  /// session is looked up by content key first and only computed on a miss.
  ///
  /// `batch > 1` groups consecutive (submission-order) configs into blocks
  /// of up to `batch` sessions; each block is one job whose worker steps
  /// all of its sessions in lockstep over shared time quanta (the Session
  /// Start/AdvanceUntil/Finish phases). Sessions are self-contained, so the
  /// interleaving cannot change results — every batch size produces the
  /// bit-identical output of `batch == 1`.
  std::vector<rtc::SessionResult> RunSessions(
      const std::vector<rtc::SessionConfig>& configs,
      ResultCache* cache = nullptr, int batch = 1);

 private:
  void WorkerLoop();

  const int jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Convenience: pool-per-call form of ParallelRunner::RunSessions.
std::vector<rtc::SessionResult> RunSessions(
    const std::vector<rtc::SessionConfig>& configs, int jobs = 0,
    ResultCache* cache = nullptr, int batch = 1);

}  // namespace rave::runner
