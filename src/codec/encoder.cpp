#include "codec/encoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics_registry.h"
#include "simd/vmath.h"
#include "obs/trace.h"

namespace rave::codec {

Encoder::Encoder(const EncoderConfig& config, std::unique_ptr<RateControl> rc)
    : config_(config), rd_(config.rd, Rng(config.seed)), rc_(std::move(rc)) {
  assert(rc_);
}

void Encoder::SetTargetRate(DataRate target) { rc_->SetTargetRate(target); }

FrameType Encoder::DecideType(const video::RawFrame& frame, Timestamp now) {
  if (keyframe_requested_) {
    // PLI responses are rate-limited to avoid keyframe storms under loss;
    // the request stays pending until the interval allows it.
    if (last_keyframe_time_.IsMinusInfinity() ||
        now - last_keyframe_time_ >= config_.min_keyframe_interval) {
      return FrameType::kKey;
    }
  }
  if (config_.keyframe_on_scene_change && frame.scene_change) {
    return FrameType::kKey;
  }
  if (config_.keyframe_interval_frames > 0 &&
      frames_since_key_ >= config_.keyframe_interval_frames) {
    return FrameType::kKey;
  }
  return FrameType::kDelta;
}

EncodedFrame Encoder::EncodeFrame(const video::RawFrame& frame,
                                  Timestamp now) {
  const FrameType type = DecideType(frame, now);
  const FrameGuidance guidance = rc_->PlanFrame(frame, type, now);

  EncodedFrame out;
  out.frame_id = frame.frame_id;
  out.capture_time = frame.capture_time;
  out.encode_time = now;
  out.type = type;
  out.resolution = frame.resolution;
  out.spatial_complexity = frame.spatial_complexity;
  out.temporal_complexity = frame.temporal_complexity;

  const double pixels = static_cast<double>(frame.resolution.pixels());
  const double cplx_term = type == FrameType::kKey
                               ? pixels * frame.spatial_complexity
                               : pixels * frame.temporal_complexity;

  if (guidance.skip) {
    out.skipped = true;
    if (obs::MetricsRegistry* reg = obs::CurrentMetrics()) {
      reg->GetCounter("encoder.frames_skipped")->Add();
    }
    FrameOutcome outcome;
    outcome.frame_id = frame.frame_id;
    outcome.type = type;
    outcome.skipped = true;
    outcome.capture_time = frame.capture_time;
    outcome.complexity_term = cplx_term;
    rc_->OnFrameEncoded(outcome, now);
    ++frames_encoded_;
    return out;
  }

  double qp = std::clamp(guidance.qp, kMinQp, kMaxQp);
  double qscale = QpToQscale(qp);
  DataSize size = rd_.ActualBits(type, frame, qscale);

  // Hard-cap enforcement: re-encode at a higher QP until the frame fits or
  // the retry budget is spent (x264's VBV loop with row-level re-quant).
  int reencodes = 0;
  if (guidance.max_size.IsFinite()) {
    const double cap = static_cast<double>(guidance.max_size.bits());
    while (static_cast<double>(size.bits()) >
               cap * (1.0 + config_.cap_tolerance) &&
           reencodes < config_.max_reencodes && qp < kMaxQp) {
      // Scale qscale by the observed overshoot, inverted through the
      // type-appropriate exponent, with a safety factor.
      const double gamma =
          type == FrameType::kKey ? config_.rd.gamma_i : config_.rd.gamma_p;
      const double overshoot = static_cast<double>(size.bits()) / cap;
      qscale *= simd::PowS(overshoot * 1.1, 1.0 / gamma);
      qscale = std::clamp(qscale, QpToQscale(kMinQp), QpToQscale(kMaxQp));
      qp = QscaleToQp(qscale);
      size = rd_.ActualBits(type, frame, qscale);
      ++reencodes;
    }
  }

  out.qp = qp;
  out.size = size;
  out.ssim = rd_.Ssim(frame, qscale);
  out.psnr = rd_.Psnr(frame, qp);
  out.reencodes = reencodes;

  if (type == FrameType::kKey) {
    frames_since_key_ = 0;
    keyframe_requested_ = false;
    last_keyframe_time_ = now;
  } else {
    ++frames_since_key_;
  }

  RAVE_TRACE_COUNTER(kEncoderQp, now, qp);
  RAVE_TRACE_COUNTER(kEncoderFrameKbits, now,
                     static_cast<double>(size.bits()) / 1000.0);
  if (type == FrameType::kKey) {
    RAVE_TRACE_INSTANT(kEncoderKeyframe, now, "keyframe");
  }
  if (obs::MetricsRegistry* reg = obs::CurrentMetrics()) {
    reg->GetCounter("encoder.frames_encoded")->Add();
    if (type == FrameType::kKey) reg->GetCounter("encoder.keyframes")->Add();
    if (reencodes > 0) {
      reg->GetCounter("encoder.reencodes")
          ->Add(static_cast<uint64_t>(reencodes));
    }
    reg->GetHistogram("encoder.qp",
                      [] { return obs::LinearBounds(0.0, 52.0, 26); })
        ->Record(qp);
  }

  FrameOutcome outcome;
  outcome.frame_id = frame.frame_id;
  outcome.type = type;
  outcome.skipped = false;
  outcome.qp = qp;
  outcome.qscale = qscale;
  outcome.size = size;
  outcome.complexity_term = cplx_term;
  outcome.capture_time = frame.capture_time;
  outcome.reencodes = reencodes;
  rc_->OnFrameEncoded(outcome, now);

  ++frames_encoded_;
  return out;
}

}  // namespace rave::codec
