#include "codec/encoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics_registry.h"
#include "obs/stage_timer.h"
#include "simd/vmath.h"
#include "obs/trace.h"

namespace rave::codec {

Encoder::Encoder(const EncoderConfig& config, std::unique_ptr<RateControl> rc)
    : config_(config), rd_(config.rd, Rng(config.seed)), rc_(std::move(rc)) {
  assert(rc_);
}

void Encoder::SetTargetRate(DataRate target) { rc_->SetTargetRate(target); }

FrameType Encoder::DecideType(const video::RawFrame& frame, Timestamp now) {
  if (keyframe_requested_) {
    // PLI responses are rate-limited to avoid keyframe storms under loss;
    // the request stays pending until the interval allows it.
    if (last_keyframe_time_.IsMinusInfinity() ||
        now - last_keyframe_time_ >= config_.min_keyframe_interval) {
      return FrameType::kKey;
    }
  }
  if (config_.keyframe_on_scene_change && frame.scene_change) {
    return FrameType::kKey;
  }
  if (config_.keyframe_interval_frames > 0 &&
      frames_since_key_ >= config_.keyframe_interval_frames) {
    return FrameType::kKey;
  }
  return FrameType::kDelta;
}

EncodedFrame Encoder::EncodeFrame(const video::RawFrame& frame,
                                  Timestamp now) {
  FrameControlStep step;
  BeginFrame(frame, now, /*defer_abr_plan=*/false, &step);
  if (!step.guidance.skip) ComputeStepScalar(step);
  return FinishFrame(step);
}

void Encoder::BeginFrame(const video::RawFrame& frame, Timestamp now,
                         bool defer_abr_plan, FrameControlStep* step) {
  // Full reset: the session reuses one step object across frames.
  *step = FrameControlStep{};
  step->frame = frame;
  step->now = now;
  step->type = DecideType(frame, now);
  const double pixels = static_cast<double>(frame.resolution.pixels());
  step->cplx_term = step->type == FrameType::kKey
                        ? pixels * frame.spatial_complexity
                        : pixels * frame.temporal_complexity;
  step->rd = &rd_;
  if (defer_abr_plan) {
    step->abr = rc_->AsAbr();
    step->plan_deferred = step->abr != nullptr;
  }
  if (!step->plan_deferred) {
    const obs::StageTimer::Scope timer(obs::StageTimer::kControl);
    step->guidance = rc_->PlanFrame(frame, step->type, now);
  }
}

void Encoder::ComputeStepScalar(FrameControlStep& step) {
  const obs::StageTimer::Scope timer(obs::StageTimer::kRd);
  step.qp = std::clamp(step.guidance.qp, kMinQp, kMaxQp);
  step.qscale = QpToQscale(step.qp);
  step.size_bits = rd_.ActualBits(step.type, step.frame, step.qscale).bits();
  step.ssim = rd_.Ssim(step.frame, step.qscale);
  step.psnr = rd_.Psnr(step.frame, step.qp);
  step.math_done = true;
}

EncodedFrame Encoder::FinishFrame(FrameControlStep& step) {
  const video::RawFrame& frame = step.frame;
  const Timestamp now = step.now;
  const FrameType type = step.type;

  EncodedFrame out;
  out.frame_id = frame.frame_id;
  out.capture_time = frame.capture_time;
  out.encode_time = now;
  out.type = type;
  out.resolution = frame.resolution;
  out.spatial_complexity = frame.spatial_complexity;
  out.temporal_complexity = frame.temporal_complexity;

  if (step.guidance.skip) {
    out.skipped = true;
    if (obs::MetricsRegistry* reg = obs::CurrentMetrics()) {
      reg->GetCounter("encoder.frames_skipped")->Add();
    }
    FrameOutcome outcome;
    outcome.frame_id = frame.frame_id;
    outcome.type = type;
    outcome.skipped = true;
    outcome.capture_time = frame.capture_time;
    outcome.complexity_term = step.cplx_term;
    const obs::StageTimer::Scope timer(obs::StageTimer::kControl);
    rc_->OnFrameEncoded(outcome, now);
    ++frames_encoded_;
    return out;
  }

  assert(step.math_done);
  double qp = step.qp;
  double qscale = step.qscale;
  DataSize size = DataSize::Bits(step.size_bits);

  // Hard-cap enforcement: re-encode at a higher QP until the frame fits or
  // the retry budget is spent (x264's VBV loop with row-level re-quant).
  // Deferred (batched-ABR) lanes never enter: their cap is +infinity.
  int reencodes = 0;
  if (step.guidance.max_size.IsFinite()) {
    const obs::StageTimer::Scope timer(obs::StageTimer::kRd);
    const double cap = static_cast<double>(step.guidance.max_size.bits());
    while (static_cast<double>(size.bits()) >
               cap * (1.0 + config_.cap_tolerance) &&
           reencodes < config_.max_reencodes && qp < kMaxQp) {
      // Scale qscale by the observed overshoot, inverted through the
      // type-appropriate exponent, with a safety factor.
      const double gamma =
          type == FrameType::kKey ? config_.rd.gamma_i : config_.rd.gamma_p;
      const double overshoot = static_cast<double>(size.bits()) / cap;
      qscale *= simd::PowS(overshoot * 1.1, 1.0 / gamma);
      qscale = std::clamp(qscale, QpToQscale(kMinQp), QpToQscale(kMaxQp));
      qp = QscaleToQp(qscale);
      size = rd_.ActualBits(type, frame, qscale);
      ++reencodes;
    }
  }

  out.qp = qp;
  out.size = size;
  if (reencodes == 0) {
    // First pass fit: the staged (or scalar pre-computed) quality values are
    // exactly Ssim/Psnr of the final qscale/qp.
    out.ssim = step.ssim;
    out.psnr = step.psnr;
  } else {
    out.ssim = rd_.Ssim(frame, qscale);
    out.psnr = rd_.Psnr(frame, qp);
  }
  out.reencodes = reencodes;
  // Re-publish the final values (the retry loop may have moved them); the
  // staging hub's deferred update reads them from the step.
  step.qp = qp;
  step.qscale = qscale;
  step.size_bits = size.bits();

  if (type == FrameType::kKey) {
    frames_since_key_ = 0;
    keyframe_requested_ = false;
    last_keyframe_time_ = now;
  } else {
    ++frames_since_key_;
  }

  RAVE_TRACE_COUNTER(kEncoderQp, now, qp);
  RAVE_TRACE_COUNTER(kEncoderFrameKbits, now,
                     static_cast<double>(size.bits()) / 1000.0);
  if (type == FrameType::kKey) {
    RAVE_TRACE_INSTANT(kEncoderKeyframe, now, "keyframe");
  }
  if (obs::MetricsRegistry* reg = obs::CurrentMetrics()) {
    reg->GetCounter("encoder.frames_encoded")->Add();
    if (type == FrameType::kKey) reg->GetCounter("encoder.keyframes")->Add();
    if (reencodes > 0) {
      reg->GetCounter("encoder.reencodes")
          ->Add(static_cast<uint64_t>(reencodes));
    }
    reg->GetSketch("encoder.qp")->Record(qp);
  }

  FrameOutcome outcome;
  outcome.frame_id = frame.frame_id;
  outcome.type = type;
  outcome.skipped = false;
  outcome.qp = qp;
  outcome.qscale = qscale;
  outcome.size = size;
  outcome.complexity_term = step.cplx_term;
  outcome.capture_time = frame.capture_time;
  outcome.reencodes = reencodes;
  if (!step.plan_deferred) {
    // Deferred lanes already ran their batched update in the hub's Flush.
    const obs::StageTimer::Scope timer(obs::StageTimer::kControl);
    rc_->OnFrameEncoded(outcome, now);
  }

  ++frames_encoded_;
  return out;
}

}  // namespace rave::codec
