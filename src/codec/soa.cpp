#include "codec/soa.h"

#include <algorithm>
#include <cassert>

#include "simd/vmath.h"

namespace rave::codec {

// Every expression in this file mirrors its scalar counterpart exactly (see
// the header contract). Comments name the mirrored member function; read the
// scalar class for the control-law rationale.

void QpToQscaleLanes(const double* qp, double* qscale, size_t n) {
  // QpToQscale: 0.85 * exp2((qp - 12) / 6).
  for (size_t i = 0; i < n; ++i) qscale[i] = (qp[i] - 12.0) / 6.0;
  simd::Exp2(qscale, qscale, n);
  for (size_t i = 0; i < n; ++i) qscale[i] = 0.85 * qscale[i];
}

void QscaleToQpLanes(const double* qscale, double* qp, size_t n) {
  // QscaleToQp: 12 + 6 * log2(qscale / 0.85).
  for (size_t i = 0; i < n; ++i) qp[i] = qscale[i] / 0.85;
  simd::Log2(qp, qp, n);
  for (size_t i = 0; i < n; ++i) qp[i] = 12.0 + 6.0 * qp[i];
}

BitPredictorSoa::BitPredictorSoa(double gamma, double initial_coef,
                                 size_t lanes)
    : gamma_(gamma),
      inv_gamma_(1.0 / gamma),
      coef_(lanes, initial_coef),
      weight_(lanes, 0.0) {
  assert(gamma_ > 0.0);
}

void BitPredictorSoa::LoadLane(size_t lane, const BitPredictor& pred) {
  assert(pred.gamma_ == gamma_);
  coef_[lane] = pred.coef_;
  weight_[lane] = pred.weight_;
}

void BitPredictorSoa::StoreLane(size_t lane, BitPredictor& pred) const {
  pred.coef_ = coef_[lane];
  pred.weight_ = weight_[lane];
}

DataSize BitPredictorSoa::PredictLane(size_t lane, double complexity_term,
                                      double qscale) const {
  assert(qscale > 0.0);
  const double bits =
      coef_[lane] * complexity_term / simd::PowS(qscale, gamma_);
  return DataSize::Bits(static_cast<int64_t>(std::max(bits, 1.0)));
}

double BitPredictorSoa::QscaleForBitsLane(size_t lane, double complexity_term,
                                          DataSize target) const {
  const double bits = std::max<double>(static_cast<double>(target.bits()), 1.0);
  const double qscale =
      simd::PowS(coef_[lane] * complexity_term / bits, inv_gamma_);
  return std::clamp(qscale, QpToQscale(kMinQp), QpToQscale(kMaxQp));
}

void BitPredictorSoa::UpdateLaneWithPow(size_t lane, double complexity_term,
                                        double qscale, int64_t bits,
                                        double qscale_pow_gamma) {
  if (complexity_term <= 0.0 || qscale <= 0.0 || bits <= 0) return;
  const double observed_coef =
      static_cast<double>(bits) * qscale_pow_gamma / complexity_term;
  constexpr double kDecay = 0.5;
  weight_[lane] = weight_[lane] * kDecay + 1.0;
  coef_[lane] += (observed_coef - coef_[lane]) / weight_[lane];
}

VbvSoa::VbvSoa(size_t lanes, DataRate max_rate, TimeDelta buffer_window)
    : buffer_window_s_(buffer_window.seconds()),
      max_rate_bps_(lanes, max_rate.bps()),
      capacity_bits_(lanes, (max_rate * buffer_window).bits()),
      fill_bits_(lanes, 0) {
  assert(max_rate.bps() > 0);
  assert(buffer_window > TimeDelta::Zero());
}

void VbvSoa::SetMaxRateLane(size_t lane, DataRate max_rate) {
  assert(max_rate.bps() > 0);
  max_rate_bps_[lane] = max_rate.bps();
  // capacity = max_rate * buffer_window (DataRate * TimeDelta rounding).
  capacity_bits_[lane] = static_cast<int64_t>(
      static_cast<double>(max_rate_bps_[lane]) * buffer_window_s_ + 0.5);
  fill_bits_[lane] = std::min(fill_bits_[lane], capacity_bits_[lane]);
}

void VbvSoa::LoadLane(size_t lane, const VbvBuffer& vbv) {
  max_rate_bps_[lane] = vbv.max_rate_.bps();
  capacity_bits_[lane] = vbv.capacity_.bits();
  fill_bits_[lane] = vbv.fill_.bits();
}

void VbvSoa::StoreLane(size_t lane, VbvBuffer& vbv) const {
  // Only the fill mutates between gather and scatter (max rate changes go
  // through the live buffer's SetMaxRate outside the staged window).
  vbv.fill_ = DataSize::Bits(fill_bits_[lane]);
}

void VbvSoa::DrainAll(TimeDelta dt) {
  if (dt <= TimeDelta::Zero()) return;
  const double dt_s = dt.seconds();
  const size_t n = fill_bits_.size();
  for (size_t l = 0; l < n; ++l) {
    const int64_t drained = static_cast<int64_t>(
        static_cast<double>(max_rate_bps_[l]) * dt_s + 0.5);
    fill_bits_[l] = drained >= fill_bits_[l] ? 0 : fill_bits_[l] - drained;
  }
}

void VbvSoa::DrainLane(size_t lane, TimeDelta dt) {
  if (dt <= TimeDelta::Zero()) return;
  const int64_t drained = static_cast<int64_t>(
      static_cast<double>(max_rate_bps_[lane]) * dt.seconds() + 0.5);
  fill_bits_[lane] = drained >= fill_bits_[lane] ? 0 : fill_bits_[lane] - drained;
}

void VbvSoa::AddFrameLane(size_t lane, int64_t size_bits) {
  fill_bits_[lane] =
      std::min(fill_bits_[lane] + size_bits, capacity_bits_[lane]);
}

int64_t VbvSoa::MaxFrameSizeLane(size_t lane, double headroom) const {
  // reserved = capacity * headroom (DataSize * double rounding).
  const int64_t reserved = static_cast<int64_t>(
      static_cast<double>(capacity_bits_[lane]) * headroom + 0.5);
  const int64_t space = capacity_bits_[lane] - fill_bits_[lane];
  return space - std::min(reserved, space);
}

AbrSoa::AbrSoa(const AbrConfig& config, size_t lanes)
    : config_(config),
      lanes_(lanes),
      qscale_min_(QpToQscale(kMinQp)),
      qscale_max_(QpToQscale(kMaxQp)),
      lstep_(simd::Exp2S(config.qp_step / 6.0)),
      window_decay_(1.0 - 1.0 / (config.window_seconds * config.fps)),
      target_bps_(lanes, config.initial_target.bps()),
      target_bits_per_frame_(
          lanes, static_cast<double>(config.initial_target.bps()) / config.fps),
      vbv_(lanes, config.initial_target, config.vbv_window),
      pred_key_(/*gamma=*/0.9, /*initial_coef=*/1.0, lanes),
      pred_delta_(/*gamma=*/1.2, /*initial_coef=*/1.0, lanes),
      cplxr_sum_(lanes, 0.0),
      wanted_bits_window_(lanes, 0.0),
      total_bits_(lanes, 0.0),
      wanted_bits_(lanes, 0.0),
      short_term_cplx_sum_(lanes, 0.0),
      short_term_cplx_count_(lanes, 0.0),
      last_qscale_(lanes, 0.0),
      planned_rceq_(lanes, 0.0),
      has_last_time_lane_(lanes, 0),
      last_time_lane_(lanes, Timestamp::MinusInfinity()),
      scratch_a_(lanes, 0.0),
      scratch_b_(lanes, 0.0),
      scratch_c_(lanes, 0.0),
      scratch_gamma_(lanes, 0.0) {
  assert(config.fps > 0);
  assert(lanes > 0);
}

void AbrSoa::SetTargetRateLane(size_t lane, DataRate target) {
  if (target.bps() <= 0) return;
  target_bps_[lane] = target.bps();
  target_bits_per_frame_[lane] =
      static_cast<double>(target.bps()) / config_.fps;
  vbv_.SetMaxRateLane(lane, target);
}

void AbrSoa::PlanFrames(const FrameType* types, const double* complexity_terms,
                        Timestamp now, double* qp_out) {
  if (has_last_time_) vbv_.DrainAll(now - last_time_);
  has_last_time_ = true;
  last_time_ = now;
  PlanLanesCore(lanes_, types, complexity_terms, qp_out);
}

void AbrSoa::PlanLanesCore(size_t n, const FrameType* types,
                           const double* complexity_terms, double* qp_out) {
  // Rceq of the blurred complexity, one batched power (uniform exponent).
  double* rceq = scratch_a_.data();
  for (size_t l = 0; l < n; ++l) {
    const double blurred =
        (short_term_cplx_sum_[l] * 0.5 + complexity_terms[l]) /
        (short_term_cplx_count_[l] * 0.5 + 1.0);
    rceq[l] = std::max(blurred, 1.0);
  }
  simd::PowScalarExp(rceq, 1.0 - config_.qcomp, rceq, n);

  double* qscale = scratch_b_.data();
  for (size_t l = 0; l < n; ++l) {
    planned_rceq_[l] = rceq[l];
    double q = 0.0;
    if (wanted_bits_window_[l] <= 0.0) {
      // First frame on this lane: divergent branch, scalar fallback.
      const bool key = types[l] == FrameType::kKey;
      const BitPredictorSoa& pred = key ? pred_key_ : pred_delta_;
      const double budget = target_bits_per_frame_[l] * (key ? 5.0 : 1.0);
      q = pred.QscaleForBitsLane(
          l, complexity_terms[l],
          DataSize::Bits(static_cast<int64_t>(budget)));
    } else {
      const double rate_factor = wanted_bits_window_[l] / cplxr_sum_[l];
      q = rceq[l] / rate_factor;
      const double abr_buffer = 2.0 * config_.rate_tolerance *
                                static_cast<double>(target_bps_[l]);
      const double overflow = std::clamp(
          1.0 + (total_bits_[l] - wanted_bits_[l]) / abr_buffer, 0.5, 2.0);
      q *= overflow;
    }
    if (types[l] == FrameType::kKey) q /= config_.ip_factor;
    if (last_qscale_[l] > 0.0 && types[l] == FrameType::kDelta) {
      q = std::clamp(q, last_qscale_[l] / lstep_, last_qscale_[l] * lstep_);
    }
    qscale[l] = q;
  }

  // VBV admission: predicted sizes for every lane in one batched power over
  // per-lane (type-dependent) exponents, scalar re-inversion only on the
  // lanes that actually violate their buffer space.
  double* powq = scratch_c_.data();
  double* gamma = scratch_gamma_.data();
  for (size_t l = 0; l < n; ++l) {
    gamma[l] = types[l] == FrameType::kKey ? pred_key_.gamma_
                                           : pred_delta_.gamma_;
  }
  simd::Pow(qscale, gamma, powq, n);
  for (size_t l = 0; l < n; ++l) {
    const bool key = types[l] == FrameType::kKey;
    const BitPredictorSoa& pred = key ? pred_key_ : pred_delta_;
    const int64_t space = vbv_.MaxFrameSizeLane(l, /*headroom=*/0.1);
    if (space > 0) {
      // BitPredictor::Predict via the shared batched power.
      const double bits = pred.coef_[l] * complexity_terms[l] / powq[l];
      const int64_t predicted = static_cast<int64_t>(std::max(bits, 1.0));
      if (predicted > space) {
        qscale[l] = std::max(
            qscale[l],
            pred.QscaleForBitsLane(l, complexity_terms[l],
                                   DataSize::Bits(space)));
      }
    }
    qscale[l] = std::clamp(qscale[l], qscale_min_, qscale_max_);
  }

  QscaleToQpLanes(qscale, qp_out, n);
}

void AbrSoa::OnFramesEncoded(const FrameType* types,
                             const double* complexity_terms,
                             const double* qscales, const int64_t* size_bits,
                             Timestamp now) {
  if (has_last_time_) vbv_.DrainAll(now - last_time_);
  has_last_time_ = true;
  last_time_ = now;
  UpdateLanesCore(lanes_, types, complexity_terms, qscales, size_bits);
}

void AbrSoa::UpdateLanesCore(size_t n, const FrameType* types,
                             const double* complexity_terms,
                             const double* qscales, const int64_t* size_bits) {
  double* powq = scratch_a_.data();
  double* gamma = scratch_gamma_.data();
  for (size_t l = 0; l < n; ++l) {
    gamma[l] = types[l] == FrameType::kKey ? pred_key_.gamma_
                                           : pred_delta_.gamma_;
  }
  simd::Pow(qscales, gamma, powq, n);

  for (size_t l = 0; l < n; ++l) {
    const double bits = static_cast<double>(size_bits[l]);

    short_term_cplx_sum_[l] =
        short_term_cplx_sum_[l] * 0.5 + complexity_terms[l];
    short_term_cplx_count_[l] = short_term_cplx_count_[l] * 0.5 + 1.0;

    const double rceq =
        planned_rceq_[l] > 0.0
            ? planned_rceq_[l]
            : simd::PowS(std::max(complexity_terms[l], 1.0),
                         1.0 - config_.qcomp);
    const double type_scale =
        types[l] == FrameType::kKey ? 1.0 / config_.ip_factor : 1.0;
    cplxr_sum_[l] = cplxr_sum_[l] * window_decay_ +
                    bits * qscales[l] * type_scale / rceq;
    wanted_bits_window_[l] =
        wanted_bits_window_[l] * window_decay_ + target_bits_per_frame_[l];

    total_bits_[l] += bits;
    wanted_bits_[l] += target_bits_per_frame_[l];

    BitPredictorSoa& pred =
        types[l] == FrameType::kKey ? pred_key_ : pred_delta_;
    pred.UpdateLaneWithPow(l, complexity_terms[l], qscales[l], size_bits[l],
                           powq[l]);

    vbv_.AddFrameLane(l, size_bits[l]);
    last_qscale_[l] = qscales[l];
  }
}

void AbrSoa::GatherLane(size_t lane, const AbrRateControl& rc) {
  // Law constants (qcomp, ip_factor, lstep, window decay, rate tolerance)
  // are per-block; BatchCompatible() gates membership so they match.
  target_bps_[lane] = rc.target_.bps();
  target_bits_per_frame_[lane] = rc.target_bits_per_frame_;
  vbv_.LoadLane(lane, rc.vbv_);
  pred_key_.LoadLane(lane, rc.pred_key_);
  pred_delta_.LoadLane(lane, rc.pred_delta_);
  cplxr_sum_[lane] = rc.cplxr_sum_;
  wanted_bits_window_[lane] = rc.wanted_bits_window_;
  total_bits_[lane] = rc.total_bits_;
  wanted_bits_[lane] = rc.wanted_bits_;
  short_term_cplx_sum_[lane] = rc.short_term_cplx_sum_;
  short_term_cplx_count_[lane] = rc.short_term_cplx_count_;
  last_qscale_[lane] = rc.last_qscale_;
  planned_rceq_[lane] = rc.planned_rceq_;
  has_last_time_lane_[lane] = rc.last_time_.has_value() ? 1 : 0;
  last_time_lane_[lane] =
      rc.last_time_ ? *rc.last_time_ : Timestamp::MinusInfinity();
}

void AbrSoa::ScatterLane(size_t lane, AbrRateControl& rc) const {
  // target_* are read-only during a staged frame (SetTargetRate only runs
  // between frames, on the live controller), so they are not written back.
  vbv_.StoreLane(lane, rc.vbv_);
  pred_key_.StoreLane(lane, rc.pred_key_);
  pred_delta_.StoreLane(lane, rc.pred_delta_);
  rc.cplxr_sum_ = cplxr_sum_[lane];
  rc.wanted_bits_window_ = wanted_bits_window_[lane];
  rc.total_bits_ = total_bits_[lane];
  rc.wanted_bits_ = wanted_bits_[lane];
  rc.short_term_cplx_sum_ = short_term_cplx_sum_[lane];
  rc.short_term_cplx_count_ = short_term_cplx_count_[lane];
  rc.last_qscale_ = last_qscale_[lane];
  rc.planned_rceq_ = planned_rceq_[lane];
  if (has_last_time_lane_[lane]) {
    rc.last_time_ = last_time_lane_[lane];
  } else {
    rc.last_time_.reset();
  }
}

void AbrSoa::PlanFramesStaged(size_t n, const FrameType* types,
                              const double* complexity_terms,
                              const Timestamp* nows, double* qp_out) {
  assert(n <= lanes_);
  for (size_t l = 0; l < n; ++l) {
    if (has_last_time_lane_[l]) {
      vbv_.DrainLane(l, nows[l] - last_time_lane_[l]);
    }
    has_last_time_lane_[l] = 1;
    last_time_lane_[l] = nows[l];
  }
  PlanLanesCore(n, types, complexity_terms, qp_out);
}

void AbrSoa::OnFramesEncodedStaged(size_t n, const FrameType* types,
                                   const double* complexity_terms,
                                   const double* qscales,
                                   const int64_t* size_bits,
                                   const Timestamp* nows) {
  assert(n <= lanes_);
  for (size_t l = 0; l < n; ++l) {
    // Within one staged frame this drain is dt == 0 (the plan set the lane
    // clock to the same tick), mirroring the scalar plan→update pair.
    if (has_last_time_lane_[l]) {
      vbv_.DrainLane(l, nows[l] - last_time_lane_[l]);
    }
    has_last_time_lane_[l] = 1;
    last_time_lane_[l] = nows[l];
  }
  UpdateLanesCore(n, types, complexity_terms, qscales, size_bits);
}

RdModelSoa::RdModelSoa(const RdModelConfig& config,
                       const std::vector<Rng>& lane_rngs)
    : config_(config),
      rngs_(lane_rngs),
      scratch_a_(lane_rngs.size(), 0.0),
      scratch_b_(lane_rngs.size(), 0.0),
      scratch_gamma_(lane_rngs.size(), 0.0) {}

void RdModelSoa::ActualBitsLanes(const FrameType* types,
                                 const video::RawFrame* frames,
                                 const double* qscales, int64_t* bits_out) {
  const size_t n = rngs_.size();
  double* powq = scratch_a_.data();
  double* noise = scratch_b_.data();
  double* gamma = scratch_gamma_.data();
  for (size_t l = 0; l < n; ++l) {
    gamma[l] = types[l] == FrameType::kKey ? config_.gamma_i : config_.gamma_p;
  }
  simd::Pow(qscales, gamma, powq, n);
  for (size_t l = 0; l < n; ++l) {
    noise[l] = rngs_[l].Gaussian(0.0, config_.noise_sigma);
  }
  simd::Exp(noise, noise, n);
  const double min_bits = static_cast<double>(config_.min_frame_bits);
  for (size_t l = 0; l < n; ++l) {
    // RdModel::RawExpected with the power hoisted into the batched call.
    const double pixels =
        static_cast<double>(frames[l].resolution.pixels());
    const double cplx_term =
        types[l] == FrameType::kKey ? pixels * frames[l].spatial_complexity
                                    : pixels * frames[l].temporal_complexity;
    const double coef =
        types[l] == FrameType::kKey ? config_.coef_i : config_.coef_p;
    const double expected = std::max(coef * cplx_term / powq[l], min_bits);
    const double bits = std::max(expected * noise[l], min_bits);
    bits_out[l] = static_cast<int64_t>(bits);
  }
}

void RdModelSoa::SsimLanes(const video::RawFrame* frames,
                           const double* qscales, double* ssim_out) {
  const size_t n = rngs_.size();
  double* powb = scratch_a_.data();
  simd::PowScalarExp(qscales, config_.ssim_beta, powb, n);
  for (size_t l = 0; l < n; ++l) {
    const double complexity =
        0.5 *
        (frames[l].spatial_complexity + frames[l].temporal_complexity);
    const double distortion =
        config_.ssim_d0 * powb[l] * (0.5 + 0.5 * complexity);
    ssim_out[l] = std::clamp(1.0 - distortion, 0.0, 1.0);
  }
}

}  // namespace rave::codec
