// Video Buffering Verifier (VBV) model, as used by x264's `--vbv-bufsize` /
// `--vbv-maxrate`. The VBV models the downstream buffer that drains at the
// configured max rate; the encoder must never overflow it. For low-latency
// RTC, applications configure a ~1 s buffer, which bounds *average* overshoot
// but reacts far too slowly to sudden capacity drops — precisely the failure
// mode the paper targets.
#pragma once

#include "util/time.h"
#include "util/units.h"

namespace rave::codec {

/// Leaky-bucket VBV state tracking.
class VbvBuffer {
 public:
  /// `max_rate` is the drain rate; `buffer_window` sizes the buffer as
  /// max_rate * buffer_window.
  VbvBuffer(DataRate max_rate, TimeDelta buffer_window);

  /// Reconfigures the drain rate (e.g. on encoder reconfig). Buffer size
  /// scales with the new rate; the current fill is preserved (clamped).
  void SetMaxRate(DataRate max_rate);

  /// Advances time: the buffer drains by max_rate * dt.
  void Drain(TimeDelta dt);

  /// Adds an encoded frame's bits to the buffer (clamped at capacity).
  void AddFrame(DataSize size);

  /// Space left before overflow.
  DataSize SpaceRemaining() const;
  /// Largest frame admissible right now while leaving `headroom` fraction of
  /// the buffer free.
  DataSize MaxFrameSize(double headroom = 0.0) const;

  DataSize fill() const { return fill_; }
  DataSize capacity() const { return capacity_; }
  DataRate max_rate() const { return max_rate_; }
  /// Fill as a fraction of capacity in [0,1].
  double fullness() const;

 private:
  /// VbvSoa gathers/scatters live buffers for the batched session stepper.
  friend class VbvSoa;

  DataRate max_rate_;
  TimeDelta buffer_window_;
  DataSize capacity_;
  DataSize fill_ = DataSize::Zero();
};

}  // namespace rave::codec
