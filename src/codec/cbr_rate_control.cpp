#include "codec/cbr_rate_control.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.h"
#include "simd/vmath.h"

namespace rave::codec {

CbrRateControl::CbrRateControl(const CbrConfig& config)
    : config_(config),
      target_(config.initial_target),
      vbv_(config.initial_target, config.vbv_window),
      pred_key_(/*gamma=*/0.9),
      pred_delta_(/*gamma=*/1.2),
      lstep_(simd::Exp2S(config.qp_step / 6.0)) {
  assert(config.fps > 0);
}

void CbrRateControl::SetTargetRate(DataRate target) {
  if (target.bps() <= 0) return;
  target_ = target;
  vbv_.SetMaxRate(target);
}

FrameGuidance CbrRateControl::PlanFrame(const video::RawFrame& frame,
                                        FrameType type, Timestamp now) {
  if (last_time_) vbv_.Drain(now - *last_time_);
  last_time_ = now;

  const double pixels = static_cast<double>(frame.resolution.pixels());
  const double cplx_term = type == FrameType::kKey
                               ? pixels * frame.spatial_complexity
                               : pixels * frame.temporal_complexity;

  const double bpf = static_cast<double>(target_.bps()) / config_.fps;
  // Steer the buffer toward target fullness over half a second.
  const double correction_frames = std::max(config_.fps * 0.5, 1.0);
  const double fill_error =
      static_cast<double>(vbv_.fill().bits()) -
      config_.target_fullness * static_cast<double>(vbv_.capacity().bits());
  double frame_budget = bpf - fill_error / correction_frames;
  frame_budget = std::clamp(frame_budget, 0.25 * bpf, 3.0 * bpf);
  if (type == FrameType::kKey) {
    frame_budget *= 4.0;  // keyframes borrow from the buffer
  }

  BitPredictor& pred = type == FrameType::kKey ? pred_key_ : pred_delta_;
  double qscale = pred.QscaleForBits(
      cplx_term, DataSize::Bits(static_cast<int64_t>(
                     std::max(frame_budget, 1.0))));
  if (type == FrameType::kKey) qscale /= config_.ip_factor;

  if (last_qscale_ > 0.0 && type == FrameType::kDelta) {
    qscale = std::clamp(qscale, last_qscale_ / lstep_, last_qscale_ * lstep_);
  }
  qscale = std::clamp(qscale, QpToQscale(kMinQp), QpToQscale(kMaxQp));

  FrameGuidance guidance;
  guidance.qp = QscaleToQp(qscale);
  // Strict VBV: the frame must fit in the remaining buffer space.
  const DataSize space = vbv_.MaxFrameSize(/*headroom=*/0.02);
  guidance.max_size = std::max(space, DataSize::Bits(2000));
  return guidance;
}

void CbrRateControl::OnFrameEncoded(const FrameOutcome& outcome,
                                    Timestamp now) {
  if (last_time_) vbv_.Drain(now - *last_time_);
  last_time_ = now;
  if (outcome.skipped) return;

  BitPredictor& pred =
      outcome.type == FrameType::kKey ? pred_key_ : pred_delta_;
  pred.Update(outcome.complexity_term, outcome.qscale, outcome.size);
  vbv_.AddFrame(outcome.size);
  RAVE_TRACE_COUNTER(kVbvFill, now, vbv_.fullness());
  last_qscale_ = outcome.qscale;
}

}  // namespace rave::codec
