#include "codec/rd_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "simd/vmath.h"

namespace rave::codec {

// All transcendentals below go through rave::simd's scalar kernels rather
// than libm: the batched SoA stepper evaluates the same model through the
// vector kernels, and the simd library guarantees those are bit-identical
// per lane — so per-session and batched execution produce the same frames.

double QpToQscale(double qp) {
  return 0.85 * simd::Exp2S((qp - 12.0) / 6.0);
}

double QscaleToQp(double qscale) {
  return 12.0 + 6.0 * simd::Log2S(qscale / 0.85);
}

RdModel::RdModel(const RdModelConfig& config, Rng rng)
    : config_(config),
      rng_(rng),
      inv_gamma_i_(1.0 / config.gamma_i),
      inv_gamma_p_(1.0 / config.gamma_p) {}

double RdModel::RawExpected(FrameType type, const video::RawFrame& frame,
                            double qscale) const {
  // pixels * complexity is the shared "complexity term" of the power law;
  // hoisting it keeps this path and the predictors on the same expression.
  const double pixels = static_cast<double>(frame.resolution.pixels());
  double bits = 0.0;
  if (type == FrameType::kKey) {
    const double cplx_term = pixels * frame.spatial_complexity;
    bits = config_.coef_i * cplx_term / simd::PowS(qscale, config_.gamma_i);
  } else {
    // Scene-change frames coded as delta still cost near intra; the content
    // model already spikes temporal complexity, so no special case here.
    const double cplx_term = pixels * frame.temporal_complexity;
    bits = config_.coef_p * cplx_term / simd::PowS(qscale, config_.gamma_p);
  }
  return std::max(bits, static_cast<double>(config_.min_frame_bits));
}

DataSize RdModel::ExpectedBits(FrameType type, const video::RawFrame& frame,
                               double qscale) const {
  return DataSize::Bits(static_cast<int64_t>(RawExpected(type, frame, qscale)));
}

DataSize RdModel::ActualBits(FrameType type, const video::RawFrame& frame,
                             double qscale) {
  const double expected = RawExpected(type, frame, qscale);
  const double noise = simd::ExpS(rng_.Gaussian(0.0, config_.noise_sigma));
  const double bits =
      std::max(expected * noise, static_cast<double>(config_.min_frame_bits));
  return DataSize::Bits(static_cast<int64_t>(bits));
}

double RdModel::QscaleForBits(FrameType type, const video::RawFrame& frame,
                              DataSize target) const {
  const double pixels = static_cast<double>(frame.resolution.pixels());
  const double bits =
      std::max<double>(static_cast<double>(target.bits()),
                       static_cast<double>(config_.min_frame_bits));
  double qscale = 0.0;
  if (type == FrameType::kKey) {
    const double cplx_term = pixels * frame.spatial_complexity;
    qscale = simd::PowS(config_.coef_i * cplx_term / bits, inv_gamma_i_);
  } else {
    const double cplx_term = pixels * frame.temporal_complexity;
    qscale = simd::PowS(config_.coef_p * cplx_term / bits, inv_gamma_p_);
  }
  return std::clamp(qscale, QpToQscale(kMinQp), QpToQscale(kMaxQp));
}

double RdModel::Ssim(const video::RawFrame& frame, double qscale) const {
  const double complexity =
      0.5 * (frame.spatial_complexity + frame.temporal_complexity);
  const double distortion = config_.ssim_d0 *
                            simd::PowS(qscale, config_.ssim_beta) *
                            (0.5 + 0.5 * complexity);
  return std::clamp(1.0 - distortion, 0.0, 1.0);
}

double RdModel::Psnr(const video::RawFrame& frame, double qp) const {
  const double complexity =
      0.5 * (frame.spatial_complexity + frame.temporal_complexity);
  return 52.0 - 0.6 * qp - 2.0 * simd::Log2S(1.0 + complexity);
}

BitPredictor::BitPredictor(double gamma, double initial_coef)
    : gamma_(gamma), inv_gamma_(1.0 / gamma), coef_(initial_coef) {
  assert(gamma_ > 0.0);
}

DataSize BitPredictor::Predict(double complexity_term, double qscale) const {
  assert(qscale > 0.0);
  const double bits = coef_ * complexity_term / simd::PowS(qscale, gamma_);
  return DataSize::Bits(static_cast<int64_t>(std::max(bits, 1.0)));
}

double BitPredictor::QscaleForBits(double complexity_term,
                                   DataSize target) const {
  const double bits = std::max<double>(static_cast<double>(target.bits()), 1.0);
  const double qscale =
      simd::PowS(coef_ * complexity_term / bits, inv_gamma_);
  return std::clamp(qscale, QpToQscale(kMinQp), QpToQscale(kMaxQp));
}

void BitPredictor::Update(double complexity_term, double qscale,
                          DataSize bits) {
  if (complexity_term <= 0.0 || qscale <= 0.0 || bits.bits() <= 0) return;
  // Damped least squares on the single coefficient, as in x264's
  // update_predictor: new observations get weight 1, history decays.
  const double observed_coef = static_cast<double>(bits.bits()) *
                               simd::PowS(qscale, gamma_) / complexity_term;
  constexpr double kDecay = 0.5;
  weight_ = weight_ * kDecay + 1.0;
  coef_ += (observed_coef - coef_) / weight_;
}

}  // namespace rave::codec
