#include "codec/frame_staging.h"

#include <algorithm>
#include <cassert>

#include "codec/soa.h"
#include "obs/stage_timer.h"
#include "simd/vmath.h"

namespace rave::codec {

FrameStagingHub::FrameStagingHub(size_t capacity)
    : capacity_(capacity),
      a_type_(capacity, FrameType::kDelta),
      a_cplx_(capacity, 0.0),
      a_now_(capacity, Timestamp::Zero()),
      a_qp_(capacity, 0.0),
      a_qscale_(capacity, 0.0),
      a_size_(capacity, 0),
      b_qp_(capacity, 0.0),
      b_qscale_(capacity, 0.0),
      b_exp_(capacity, 0.0),
      b_pow_(capacity, 0.0),
      b_noise_(capacity, 0.0),
      b_log_(capacity, 0.0) {
  assert(capacity > 0);
  staged_.reserve(capacity);
  deferred_.reserve(capacity);
}

FrameStagingHub::~FrameStagingHub() = default;

bool FrameStagingHub::RegisterAbr(const AbrRateControl* abr) {
  if (abr == nullptr) return false;
  if (!has_abr_group_) {
    has_abr_group_ = true;
    abr_config_ = abr->config();
    abr_soa_ = std::make_unique<AbrSoa>(abr_config_, capacity_);
    return true;
  }
  return BatchCompatible(abr_config_, abr->config());
}

void FrameStagingHub::Stage(FrameControlStep* step) {
  assert(step != nullptr && staged_.size() < capacity_);
  staged_.push_back(step);
  if (step->plan_deferred) deferred_.push_back(step);
}

void FrameStagingHub::Flush() {
  const size_t n = staged_.size();
  if (n == 0) return;
  const size_t m = deferred_.size();

  // Phase A: batched ABR plans on state gathered from the live controllers.
  if (m > 0) {
    const obs::StageTimer::Scope timer(obs::StageTimer::kControl);
    for (size_t l = 0; l < m; ++l) {
      FrameControlStep* s = deferred_[l];
      abr_soa_->GatherLane(l, *s->abr);
      a_type_[l] = s->type;
      a_cplx_[l] = s->cplx_term;
      a_now_[l] = s->now;
    }
    abr_soa_->PlanFramesStaged(m, a_type_.data(), a_cplx_.data(),
                               a_now_.data(), a_qp_.data());
    for (size_t l = 0; l < m; ++l) {
      // Mirrors AbrRateControl::PlanFrame's guidance: qp from the batched
      // plan, no skip, no hard cap (the key reason the baseline overshoots —
      // and the reason deferred lanes can never hit the re-encode loop).
      FrameGuidance g;
      g.qp = a_qp_[l];
      deferred_[l]->guidance = g;
    }
  }

  // Phase B: encode-side math for every staged lane — mirrors
  // Encoder::ComputeStepScalar (QP clamp, QpToQscale, RdModel::ActualBits /
  // Ssim / Psnr) with the transcendentals batched. R-D parameters become
  // per-lane arrays and each lane's noise draw comes from its own session
  // rng, so nothing requires the sessions to share configs or streams.
  {
    const obs::StageTimer::Scope timer(obs::StageTimer::kRd);
    for (size_t l = 0; l < n; ++l) {
      b_qp_[l] = std::clamp(staged_[l]->guidance.qp, kMinQp, kMaxQp);
    }
    QpToQscaleLanes(b_qp_.data(), b_qscale_.data(), n);
    for (size_t l = 0; l < n; ++l) {
      const RdModelConfig& rd = staged_[l]->rd->config();
      b_exp_[l] =
          staged_[l]->type == FrameType::kKey ? rd.gamma_i : rd.gamma_p;
    }
    simd::Pow(b_qscale_.data(), b_exp_.data(), b_pow_.data(), n);
    for (size_t l = 0; l < n; ++l) {
      b_noise_[l] = staged_[l]->rd->DrawNoiseGaussian();
    }
    simd::Exp(b_noise_.data(), b_noise_.data(), n);
    for (size_t l = 0; l < n; ++l) {
      FrameControlStep* s = staged_[l];
      const RdModelConfig& rd = s->rd->config();
      // RdModel::RawExpected + ActualBits with the powers hoisted.
      const double coef = s->type == FrameType::kKey ? rd.coef_i : rd.coef_p;
      const double min_bits = static_cast<double>(rd.min_frame_bits);
      const double expected =
          std::max(coef * s->cplx_term / b_pow_[l], min_bits);
      s->size_bits =
          static_cast<int64_t>(std::max(expected * b_noise_[l], min_bits));
      b_exp_[l] = rd.ssim_beta;
      b_log_[l] = 1.0 + 0.5 * (s->frame.spatial_complexity +
                               s->frame.temporal_complexity);
    }
    simd::Pow(b_qscale_.data(), b_exp_.data(), b_pow_.data(), n);
    simd::Log2(b_log_.data(), b_log_.data(), n);
    for (size_t l = 0; l < n; ++l) {
      FrameControlStep* s = staged_[l];
      const RdModelConfig& rd = s->rd->config();
      const double complexity = 0.5 * (s->frame.spatial_complexity +
                                       s->frame.temporal_complexity);
      const double distortion =
          rd.ssim_d0 * b_pow_[l] * (0.5 + 0.5 * complexity);
      s->qp = b_qp_[l];
      s->qscale = b_qscale_[l];
      s->ssim = std::clamp(1.0 - distortion, 0.0, 1.0);
      s->psnr = 52.0 - 0.6 * b_qp_[l] - 2.0 * b_log_[l];
      s->math_done = true;
    }
  }

  // Phase C: batched ABR updates against the still-gathered lane state
  // (deferred lanes have no hard cap, so Phase B's outputs are final), then
  // scatter the stepped state back into the live controllers before any
  // session resumes.
  if (m > 0) {
    const obs::StageTimer::Scope timer(obs::StageTimer::kControl);
    for (size_t l = 0; l < m; ++l) {
      a_qscale_[l] = deferred_[l]->qscale;
      a_size_[l] = deferred_[l]->size_bits;
    }
    abr_soa_->OnFramesEncodedStaged(m, a_type_.data(), a_cplx_.data(),
                                    a_qscale_.data(), a_size_.data(),
                                    a_now_.data());
    for (size_t l = 0; l < m; ++l) {
      abr_soa_->ScatterLane(l, *deferred_[l]->abr);
    }
  }

  staged_.clear();
  deferred_.clear();
}

}  // namespace rave::codec
