// x264-style strict CBR (VBV-constrained) rate control — the secondary
// baseline. Compared to ABR it steers each frame toward a buffer-corrected
// per-frame budget and enforces a hard VBV cap (triggering encoder
// re-encodes), so it tracks target changes within roughly one VBV window
// (~1 s) instead of several seconds — still far slower than the paper's
// per-frame adaptation.
#pragma once

#include <optional>

#include "codec/rate_control.h"
#include "codec/vbv.h"

namespace rave::codec {

struct CbrConfig {
  double fps = 30.0;
  DataRate initial_target = DataRate::KilobitsPerSec(1500);
  /// VBV buffer window (x264 vbv-bufsize / bitrate).
  TimeDelta vbv_window = TimeDelta::Millis(1000);
  /// Max QP change per frame.
  double qp_step = 4.0;
  /// I-frame quantizer advantage.
  double ip_factor = 1.4;
  /// Fraction of the buffer the controller tries to keep free.
  double target_fullness = 0.5;
};

/// Buffer-feedback CBR controller with hard per-frame caps.
class CbrRateControl : public RateControl {
 public:
  explicit CbrRateControl(const CbrConfig& config);

  void SetTargetRate(DataRate target) override;
  FrameGuidance PlanFrame(const video::RawFrame& frame, FrameType type,
                          Timestamp now) override;
  void OnFrameEncoded(const FrameOutcome& outcome, Timestamp now) override;
  std::string name() const override { return "x264-cbr"; }
  DataRate current_target() const override { return target_; }

  const VbvBuffer& vbv() const { return vbv_; }

 private:
  CbrConfig config_;
  DataRate target_;
  VbvBuffer vbv_;
  BitPredictor pred_key_;
  BitPredictor pred_delta_;
  /// exp2(qp_step/6), cached: the per-frame qscale step clamp.
  double lstep_;
  double last_qscale_ = 0.0;
  std::optional<Timestamp> last_time_;
};

}  // namespace rave::codec
