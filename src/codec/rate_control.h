// Rate-control interface shared by all schemes.
//
// A rate control plans each frame *before* encoding (QP, optional hard size
// cap, optional skip) and observes the result afterwards. The baseline
// implementations (`AbrRateControl`, `CbrRateControl`) live in this module;
// the paper's contribution (`core::AdaptiveRateControl`) implements the same
// interface from the `core` module.
#pragma once

#include <string>

#include "codec/rd_model.h"
#include "util/time.h"
#include "util/units.h"
#include "video/frame.h"

namespace rave::codec {

/// Per-frame plan issued before encoding.
struct FrameGuidance {
  /// Do not encode this frame at all (the receiver repeats the previous one).
  bool skip = false;
  /// Quantizer to encode at; clamped to [kMinQp, kMaxQp] by the encoder.
  double qp = 26.0;
  /// Hard size cap. If the encoded frame exceeds it, the encoder re-encodes
  /// at a higher QP (up to its retry limit). PlusInfinity = no cap.
  DataSize max_size = DataSize::PlusInfinity();
};

/// Everything a rate control learns about a finished frame.
struct FrameOutcome {
  int64_t frame_id = 0;
  FrameType type = FrameType::kDelta;
  bool skipped = false;
  double qp = 0.0;
  double qscale = 0.0;
  DataSize size = DataSize::Zero();
  /// pixels * complexity actually used by the R-D model for this frame;
  /// rate controls feed it to their BitPredictors.
  double complexity_term = 0.0;
  Timestamp capture_time = Timestamp::Zero();
  int reencodes = 0;
};

class AbrRateControl;

/// Abstract rate control. Implementations are single-stream and stateful.
class RateControl {
 public:
  virtual ~RateControl() = default;

  /// Non-null iff this controller is an `AbrRateControl`, whose per-frame
  /// plan/update math the batched frame-staging hub can execute in SoA lanes
  /// (`AbrSoa` gather/scatter). Other controllers plan scalar.
  virtual AbrRateControl* AsAbr() { return nullptr; }

  /// New target bitrate from the congestion controller. Implementations may
  /// smooth internally (the baseline does; that sluggishness is the paper's
  /// motivation).
  virtual void SetTargetRate(DataRate target) = 0;

  /// Plans the next frame. `type` was already decided by the encoder
  /// front-end (keyframe policy); `now` is the encode wall-clock.
  virtual FrameGuidance PlanFrame(const video::RawFrame& frame, FrameType type,
                                  Timestamp now) = 0;

  /// Observes the encoded (or skipped) frame.
  virtual void OnFrameEncoded(const FrameOutcome& outcome, Timestamp now) = 0;

  /// Scheme name for reports ("x264-abr", "rave-adaptive", ...).
  virtual std::string name() const = 0;

  /// Current (possibly smoothed) operating target, for diagnostics.
  virtual DataRate current_target() const = 0;
};

}  // namespace rave::codec
