#include "codec/abr_rate_control.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.h"
#include "simd/vmath.h"

namespace rave::codec {

AbrRateControl::AbrRateControl(const AbrConfig& config)
    : config_(config),
      target_(config.initial_target),
      target_bits_per_frame_(static_cast<double>(config.initial_target.bps()) /
                             config.fps),
      vbv_(config.initial_target, config.vbv_window),
      pred_key_(/*gamma=*/0.9, /*initial_coef=*/1.0),
      pred_delta_(/*gamma=*/1.2, /*initial_coef=*/1.0),
      window_decay_(1.0 - 1.0 / (config.window_seconds * config.fps)),
      lstep_(simd::Exp2S(config.qp_step / 6.0)) {
  assert(config.fps > 0);
}

void AbrRateControl::SetTargetRate(DataRate target) {
  if (target.bps() <= 0) return;
  target_ = target;
  target_bits_per_frame_ = static_cast<double>(target.bps()) / config_.fps;
  // Applications also move vbv-maxrate when reconfiguring the encoder.
  vbv_.SetMaxRate(target);
}

double AbrRateControl::ComplexityTerm(const video::RawFrame& frame,
                                      FrameType type) const {
  const double pixels = static_cast<double>(frame.resolution.pixels());
  return type == FrameType::kKey ? pixels * frame.spatial_complexity
                                 : pixels * frame.temporal_complexity;
}

double AbrRateControl::Rceq(double complexity_term) const {
  return simd::PowS(std::max(complexity_term, 1.0), 1.0 - config_.qcomp);
}

FrameGuidance AbrRateControl::PlanFrame(const video::RawFrame& frame,
                                        FrameType type, Timestamp now) {
  if (last_time_) vbv_.Drain(now - *last_time_);
  last_time_ = now;

  const double cplx_term = ComplexityTerm(frame, type);
  // Blur complexity over the recent past (x264 uses decay 0.5).
  const double blurred =
      (short_term_cplx_sum_ * 0.5 + cplx_term) /
      (short_term_cplx_count_ * 0.5 + 1.0);
  const double rceq = Rceq(blurred);
  planned_rceq_ = rceq;

  double qscale = 0.0;
  if (wanted_bits_window_ <= 0.0) {
    // First frame: no rate factor yet; invert the predictor for the
    // per-frame budget (keyframes get a generous multiple, as x264's
    // init does via rate_factor guessing).
    BitPredictor& pred = type == FrameType::kKey ? pred_key_ : pred_delta_;
    const double budget =
        target_bits_per_frame_ * (type == FrameType::kKey ? 5.0 : 1.0);
    qscale = pred.QscaleForBits(cplx_term,
                                DataSize::Bits(static_cast<int64_t>(budget)));
  } else {
    const double rate_factor = wanted_bits_window_ / cplxr_sum_;
    qscale = rceq / rate_factor;

    // Overflow compensation over the ABR buffer (~2 s of target rate).
    const double abr_buffer = 2.0 * config_.rate_tolerance *
                              static_cast<double>(target_.bps());
    const double overflow =
        std::clamp(1.0 + (total_bits_ - wanted_bits_) / abr_buffer, 0.5, 2.0);
    qscale *= overflow;
    RAVE_TRACE_COUNTER(kAbrRateRatio, now, overflow);
  }

  if (type == FrameType::kKey) qscale /= config_.ip_factor;

  // Per-frame step clamp (lstep, cached at construction).
  if (last_qscale_ > 0.0 && type == FrameType::kDelta) {
    qscale = std::clamp(qscale, last_qscale_ / lstep_, last_qscale_ * lstep_);
  }

  // VBV: if the predicted size does not fit in the remaining buffer space,
  // raise qscale until it does (soft constraint; x264 iterates similarly).
  BitPredictor& pred = type == FrameType::kKey ? pred_key_ : pred_delta_;
  const DataSize space = vbv_.MaxFrameSize(/*headroom=*/0.1);
  if (space.bits() > 0) {
    const DataSize predicted = pred.Predict(cplx_term, qscale);
    if (predicted > space) {
      qscale = std::max(qscale, pred.QscaleForBits(cplx_term, space));
    }
  }

  qscale = std::clamp(qscale, QpToQscale(kMinQp), QpToQscale(kMaxQp));

  FrameGuidance guidance;
  guidance.qp = QscaleToQp(qscale);
  // ABR has no hard cap: x264 without strict VBV emits whatever the frame
  // costs at the chosen QP. (This is a key reason the baseline overshoots.)
  guidance.max_size = DataSize::PlusInfinity();
  return guidance;
}

void AbrRateControl::OnFrameEncoded(const FrameOutcome& outcome,
                                    Timestamp now) {
  if (last_time_) vbv_.Drain(now - *last_time_);
  last_time_ = now;
  if (outcome.skipped) return;

  const double bits = static_cast<double>(outcome.size.bits());

  short_term_cplx_sum_ = short_term_cplx_sum_ * 0.5 + outcome.complexity_term;
  short_term_cplx_count_ = short_term_cplx_count_ * 0.5 + 1.0;

  const double rceq = planned_rceq_ > 0.0
                          ? planned_rceq_
                          : Rceq(std::max(outcome.complexity_term, 1.0));
  // I-frames contribute at their P-equivalent cost (x264 scales by the
  // ip_factor) so keyframes don't poison the rate factor.
  const double type_scale =
      outcome.type == FrameType::kKey ? 1.0 / config_.ip_factor : 1.0;
  cplxr_sum_ = cplxr_sum_ * window_decay_ +
               bits * outcome.qscale * type_scale / rceq;
  wanted_bits_window_ =
      wanted_bits_window_ * window_decay_ + target_bits_per_frame_;

  total_bits_ += bits;
  wanted_bits_ += target_bits_per_frame_;

  BitPredictor& pred =
      outcome.type == FrameType::kKey ? pred_key_ : pred_delta_;
  pred.Update(outcome.complexity_term, outcome.qscale, outcome.size);

  vbv_.AddFrame(outcome.size);
  RAVE_TRACE_COUNTER(kVbvFill, now, vbv_.fullness());
  last_qscale_ = outcome.qscale;
}

bool BatchCompatible(const AbrConfig& a, const AbrConfig& b) {
  return a.fps == b.fps && a.qcomp == b.qcomp &&
         a.rate_tolerance == b.rate_tolerance && a.qp_step == b.qp_step &&
         a.ip_factor == b.ip_factor && a.window_seconds == b.window_seconds;
}

}  // namespace rave::codec
