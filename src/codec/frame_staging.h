// Frame-boundary rendezvous for the lockstep batched runner.
//
// A batched worker owns one `FrameStagingHub` per block of sessions. Each
// session's frame tick, instead of running its per-frame control math inline,
// fills a `FrameControlStep` with the frame's inputs, stages it on the hub,
// and pauses its event loop (EventLoop::RequestPause). Once every live
// session in the block has either staged a frame or reached the lockstep
// boundary, the runner calls `Flush()`: the hub executes all staged per-frame
// math — ABR plan, QP→qscale, the R-D encode (size/SSIM/PSNR), ABR update —
// as batched `simd::` kernels over SoA lanes, then each session completes its
// frame from the step's outputs and resumes.
//
// Bit identity (the contract every batch/simd/jobs variant is gated on):
//   * the SoA blocks mirror the scalar classes expression for expression and
//     every transcendental goes through rave::simd, whose scalar and vector
//     kernels are bit-identical per lane (codec/soa.h);
//   * per-session rng streams are preserved — each lane's noise draw comes
//     from that session's own RdModel rng, in the same call order as inline
//     execution, and only the transcendental tail is batched;
//   * deferral is invisible to the event sequence — the paused session's
//     loop resumes the exact (fire-time, seq) order, and nothing between the
//     stage and the flush reads the state the flush writes.
//
// Divergence fallback: lanes that cannot batch fall back to scalar at the
// natural seam. Non-ABR controllers (adaptive, salsify, CBR) plan inline in
// BeginFrame (their guidance may skip, cap sizes, or read network state);
// ABR controllers whose config differs from the block's law constants
// (BatchCompatible) plan inline too. All staged lanes still batch the
// encode-side math (Phase B), which only needs per-lane R-D parameters.
// Frames the session drops before encoding (breaker pause, pacer valve) and
// frames a scalar plan skips never reach the hub at all.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/abr_rate_control.h"
#include "util/time.h"
#include "video/frame.h"

namespace rave::codec {

class AbrSoa;
class RdModel;

/// Inputs and outputs of one frame's control math, staged between a
/// session's frame tick and the hub flush. Owned by the session, reused
/// across frames.
struct FrameControlStep {
  // --- inputs (BeginFrame) ---
  video::RawFrame frame;
  Timestamp now = Timestamp::Zero();
  FrameType type = FrameType::kDelta;
  /// pixels * complexity for `type` (shared by the ABR plan and the R-D
  /// power law — both use the same expression).
  double cplx_term = 0.0;
  /// Non-null when this step's ABR plan *and* update run batched in the
  /// hub's AbrSoa block; FinishFrame then skips the inline rc update.
  AbrRateControl* abr = nullptr;
  bool plan_deferred = false;
  /// The session encoder's R-D model (per-lane config + noise rng).
  RdModel* rd = nullptr;
  /// Computed inline in BeginFrame unless plan_deferred (then written by the
  /// hub's batched plan).
  FrameGuidance guidance;

  // --- outputs (hub Flush or Encoder::ComputeStepScalar) ---
  double qp = 0.0;
  double qscale = 0.0;
  int64_t size_bits = 0;
  double ssim = 0.0;
  double psnr = 0.0;
  bool math_done = false;
};

/// Worker-owned staging area for one batch of sessions. All scratch is sized
/// for `capacity` lanes at construction; staging and flushing allocate
/// nothing.
class FrameStagingHub {
 public:
  explicit FrameStagingHub(size_t capacity);
  ~FrameStagingHub();

  FrameStagingHub(const FrameStagingHub&) = delete;
  FrameStagingHub& operator=(const FrameStagingHub&) = delete;

  /// Registers an ABR controller for batched planning. The first caller
  /// fixes the block's law constants; later callers join iff their config is
  /// BatchCompatible. Returns true when the controller's plans may defer to
  /// the hub (callers keep planning scalar on false).
  bool RegisterAbr(const AbrRateControl* abr);

  /// Stages one frame's step for the next Flush. The step must outlive the
  /// flush; at most `capacity` steps may be staged at once.
  void Stage(FrameControlStep* step);

  bool has_staged() const { return !staged_.empty(); }

  /// Executes every staged step's control math in batched lanes and clears
  /// the staging list. Deferred lanes get their ABR plan and update run
  /// against state gathered from (and scattered back to) the live
  /// controllers; every staged lane gets qp/qscale/size/ssim/psnr.
  void Flush();

 private:
  size_t capacity_;
  std::vector<FrameControlStep*> staged_;
  /// Subset of staged_ whose ABR plan/update run batched, in lane order.
  std::vector<FrameControlStep*> deferred_;

  bool has_abr_group_ = false;
  AbrConfig abr_config_;
  std::unique_ptr<AbrSoa> abr_soa_;

  // Phase A/C scratch (deferred lanes): ABR plan inputs and update feedback.
  std::vector<FrameType> a_type_;
  std::vector<double> a_cplx_;
  std::vector<Timestamp> a_now_;
  std::vector<double> a_qp_;
  std::vector<double> a_qscale_;
  std::vector<int64_t> a_size_;

  // Phase B scratch (all staged lanes): the encode-side math.
  std::vector<double> b_qp_;
  std::vector<double> b_qscale_;
  std::vector<double> b_exp_;
  std::vector<double> b_pow_;
  std::vector<double> b_noise_;
  std::vector<double> b_log_;
};

}  // namespace rave::codec
