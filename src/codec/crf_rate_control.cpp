#include "codec/crf_rate_control.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "simd/vmath.h"

namespace rave::codec {

CrfRateControl::CrfRateControl(const CrfConfig& config)
    : config_(config),
      pred_key_(/*gamma=*/0.9),
      pred_delta_(/*gamma=*/1.2),
      lstep_(simd::Exp2S(config.qp_step / 6.0)) {
  assert(config_.fps > 0);
  if (config_.cap_rate) {
    vbv_.emplace(*config_.cap_rate, config_.vbv_window);
  }
  // x264: rate_factor chosen so a frame of "typical" complexity encodes at
  // qscale(crf). We anchor to 720p at the model's reference complexity.
  const double reference_cplx = 1280.0 * 720.0 * 0.5;
  rate_factor_ = simd::PowS(reference_cplx, 1.0 - config_.qcomp) /
                 QpToQscale(config_.crf);
}

void CrfRateControl::SetTargetRate(DataRate target) {
  if (!config_.cap_rate || target.bps() <= 0) return;  // pure CRF: ignore
  config_.cap_rate = target;
  vbv_->SetMaxRate(target);
}

FrameGuidance CrfRateControl::PlanFrame(const video::RawFrame& frame,
                                        FrameType type, Timestamp now) {
  if (vbv_ && last_time_) vbv_->Drain(now - *last_time_);
  last_time_ = now;

  const double pixels = static_cast<double>(frame.resolution.pixels());
  const double cplx_term = type == FrameType::kKey
                               ? pixels * frame.spatial_complexity
                               : pixels * frame.temporal_complexity;
  const double blurred = (short_term_cplx_sum_ * 0.5 + cplx_term) /
                         (short_term_cplx_count_ * 0.5 + 1.0);

  double qscale =
      simd::PowS(std::max(blurred, 1.0), 1.0 - config_.qcomp) / rate_factor_;
  if (type == FrameType::kKey) qscale /= config_.ip_factor;

  if (last_qscale_ > 0.0 && type == FrameType::kDelta) {
    qscale = std::clamp(qscale, last_qscale_ / lstep_, last_qscale_ * lstep_);
  }

  // Capped CRF: raise qscale until the predicted frame fits the VBV.
  if (vbv_) {
    BitPredictor& pred = type == FrameType::kKey ? pred_key_ : pred_delta_;
    const DataSize space = vbv_->MaxFrameSize(/*headroom=*/0.1);
    if (space.bits() > 0 && pred.Predict(cplx_term, qscale) > space) {
      qscale = std::max(qscale, pred.QscaleForBits(cplx_term, space));
    }
  }
  qscale = std::clamp(qscale, QpToQscale(kMinQp), QpToQscale(kMaxQp));

  FrameGuidance guidance;
  guidance.qp = QscaleToQp(qscale);
  if (vbv_) {
    guidance.max_size = std::max(vbv_->MaxFrameSize(/*headroom=*/0.02),
                                 DataSize::Bits(2000));
  }
  return guidance;
}

void CrfRateControl::OnFrameEncoded(const FrameOutcome& outcome,
                                    Timestamp now) {
  if (vbv_ && last_time_) vbv_->Drain(now - *last_time_);
  last_time_ = now;
  if (outcome.skipped) return;
  short_term_cplx_sum_ = short_term_cplx_sum_ * 0.5 + outcome.complexity_term;
  short_term_cplx_count_ = short_term_cplx_count_ * 0.5 + 1.0;
  BitPredictor& pred =
      outcome.type == FrameType::kKey ? pred_key_ : pred_delta_;
  pred.Update(outcome.complexity_term, outcome.qscale, outcome.size);
  if (vbv_) vbv_->AddFrame(outcome.size);
  last_qscale_ = outcome.qscale;
}

}  // namespace rave::codec
