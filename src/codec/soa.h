// Structure-of-arrays mirrors of the per-frame rate-control state, for the
// batched session stepper: `BitPredictorSoa`, `VbvSoa`, `AbrSoa` and
// `RdModelSoa` hold N lanes of the state that `BitPredictor`, `VbvBuffer`,
// `AbrRateControl` and `RdModel` keep per session, and step every lane
// through one frame with one call.
//
// The contract is *bit identity*: stepping lane `l` through these classes
// produces exactly the doubles and integer sizes the scalar classes produce
// for the same inputs. That holds because
//   * every transcendental goes through rave::simd, whose vector and scalar
//     kernels are bit-identical per lane by construction, and per-lane
//     parameters (the per-frame-type gamma/coef of the predictors) become
//     per-lane exponent arrays to one batched call — which is elementwise
//     equivalent to per-lane scalar calls;
//   * all remaining arithmetic mirrors the scalar classes expression for
//     expression (plain mul/add/div; the build never fuses or reassociates);
//   * divergent lanes (first frame, VBV overflow) fall back to the scalar
//     kernels per lane, which again produce the same bits.
// `runner_control_loop_test` enforces the contract end to end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "codec/abr_rate_control.h"
#include "codec/rd_model.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/units.h"
#include "video/frame.h"

namespace rave::codec {

/// Batched QP <-> qscale conversion (mirrors QpToQscale / QscaleToQp).
void QpToQscaleLanes(const double* qp, double* qscale, size_t n);
void QscaleToQpLanes(const double* qscale, double* qp, size_t n);

/// N lanes of `BitPredictor` state for one frame type. The batched Predict /
/// Update passes live in `AbrSoa`, which gathers per-lane gamma/coef across
/// its two predictors; this class owns the state and the scalar-fallback
/// per-lane operations.
class BitPredictorSoa {
 public:
  BitPredictorSoa(double gamma, double initial_coef, size_t lanes);

  double gamma() const { return gamma_; }
  double inv_gamma() const { return inv_gamma_; }
  double coef(size_t lane) const { return coef_[lane]; }

  /// Copies a live predictor's state into a lane / back out. `pred.gamma_`
  /// must equal this block's gamma (asserted): gamma is a per-block
  /// constant, only coef/weight are per-lane state.
  void LoadLane(size_t lane, const BitPredictor& pred);
  void StoreLane(size_t lane, BitPredictor& pred) const;

  /// Mirrors BitPredictor::Predict for one lane (scalar kernel).
  DataSize PredictLane(size_t lane, double complexity_term,
                       double qscale) const;
  /// Mirrors BitPredictor::QscaleForBits for one lane (scalar kernel).
  double QscaleForBitsLane(size_t lane, double complexity_term,
                           DataSize target) const;
  /// Mirrors BitPredictor::Update for one lane given the already-computed
  /// qscale^gamma (shared with the batched path).
  void UpdateLaneWithPow(size_t lane, double complexity_term, double qscale,
                         int64_t bits, double qscale_pow_gamma);

 private:
  friend class AbrSoa;

  double gamma_;
  double inv_gamma_;
  std::vector<double> coef_;
  std::vector<double> weight_;
};

/// N lanes of `VbvBuffer` state. All arithmetic is int64/double exactly as
/// in VbvBuffer (including the +0.5 roundings of the unit types), so fills
/// and frame-size caps match the scalar buffer bit for bit.
class VbvSoa {
 public:
  VbvSoa(size_t lanes, DataRate max_rate, TimeDelta buffer_window);

  /// Mirrors VbvBuffer::SetMaxRate for one lane.
  void SetMaxRateLane(size_t lane, DataRate max_rate);
  /// Copies a live buffer's state into a lane / back out. Capacity is copied
  /// verbatim (not recomputed from the window), so a gather→scatter round
  /// trip is exact; only the fill mutates between them.
  void LoadLane(size_t lane, const VbvBuffer& vbv);
  void StoreLane(size_t lane, VbvBuffer& vbv) const;
  /// Mirrors VbvBuffer::Drain on every lane (the batch shares `dt`).
  void DrainAll(TimeDelta dt);
  /// Mirrors VbvBuffer::Drain for one lane (staged lanes carry their own
  /// clocks, so drains are per-lane).
  void DrainLane(size_t lane, TimeDelta dt);
  /// Mirrors VbvBuffer::AddFrame for one lane.
  void AddFrameLane(size_t lane, int64_t size_bits);
  /// Mirrors VbvBuffer::MaxFrameSize for one lane.
  int64_t MaxFrameSizeLane(size_t lane, double headroom) const;

  int64_t fill_bits(size_t lane) const { return fill_bits_[lane]; }

 private:
  double buffer_window_s_;
  std::vector<int64_t> max_rate_bps_;
  std::vector<int64_t> capacity_bits_;
  std::vector<int64_t> fill_bits_;
};

/// N lanes of `AbrRateControl`, stepped one frame at a time across every
/// lane. `PlanFrames` / `OnFramesEncoded` mirror PlanFrame / OnFrameEncoded
/// stage by stage, with the Rceq power, the VBV size prediction, the
/// predictor updates and the qscale->QP conversion evaluated as batched
/// kernels over per-lane exponent arrays.
class AbrSoa {
 public:
  AbrSoa(const AbrConfig& config, size_t lanes);

  size_t lanes() const { return lanes_; }

  /// Mirrors AbrRateControl::SetTargetRate for one lane.
  void SetTargetRateLane(size_t lane, DataRate target);

  /// Plans one frame on every lane; writes the guidance QP per lane.
  /// `complexity_terms[l]` must be pixels * complexity for the lane's type
  /// (AbrRateControl::ComplexityTerm).
  void PlanFrames(const FrameType* types, const double* complexity_terms,
                  Timestamp now, double* qp_out);

  /// Feeds every lane's encoded-frame outcome back.
  void OnFramesEncoded(const FrameType* types, const double* complexity_terms,
                       const double* qscales, const int64_t* size_bits,
                       Timestamp now);

  /// Staged full-session API: the frame-staging hub copies live
  /// `AbrRateControl` state into lanes, plans/updates a batch of frames, and
  /// copies the state back. Unlike the distilled-loop API above, each lane
  /// carries its own clock (sessions in a batch may tick at different
  /// times), so the VBV drains are per-lane; every other stage is the shared
  /// batched core the distilled loop uses.
  void GatherLane(size_t lane, const AbrRateControl& rc);
  void ScatterLane(size_t lane, AbrRateControl& rc) const;
  /// PlanFrames over lanes [0, n) with per-lane times.
  void PlanFramesStaged(size_t n, const FrameType* types,
                        const double* complexity_terms, const Timestamp* nows,
                        double* qp_out);
  /// OnFramesEncoded over lanes [0, n) with per-lane times.
  void OnFramesEncodedStaged(size_t n, const FrameType* types,
                             const double* complexity_terms,
                             const double* qscales, const int64_t* size_bits,
                             const Timestamp* nows);

  double last_qscale(size_t lane) const { return last_qscale_[lane]; }

 private:
  /// Shared batched bodies of PlanFrames / OnFramesEncoded over lanes
  /// [0, n): everything after the VBV drain, which is the only stage that
  /// differs between the distilled (shared clock) and staged (per-lane
  /// clocks) entry points.
  void PlanLanesCore(size_t n, const FrameType* types,
                     const double* complexity_terms, double* qp_out);
  void UpdateLanesCore(size_t n, const FrameType* types,
                       const double* complexity_terms, const double* qscales,
                       const int64_t* size_bits);
  AbrConfig config_;
  size_t lanes_;
  double qscale_min_;
  double qscale_max_;
  double lstep_;
  double window_decay_;

  std::vector<int64_t> target_bps_;
  std::vector<double> target_bits_per_frame_;
  VbvSoa vbv_;
  BitPredictorSoa pred_key_;
  BitPredictorSoa pred_delta_;

  std::vector<double> cplxr_sum_;
  std::vector<double> wanted_bits_window_;
  std::vector<double> total_bits_;
  std::vector<double> wanted_bits_;
  std::vector<double> short_term_cplx_sum_;
  std::vector<double> short_term_cplx_count_;
  std::vector<double> last_qscale_;
  std::vector<double> planned_rceq_;
  bool has_last_time_ = false;
  Timestamp last_time_ = Timestamp::MinusInfinity();
  // Per-lane clocks for the staged entry points (mirrors AbrRateControl's
  // std::optional<Timestamp> last_time_ per lane).
  std::vector<uint8_t> has_last_time_lane_;
  std::vector<Timestamp> last_time_lane_;

  // Per-frame scratch (preallocated: the batched step is allocation-free).
  std::vector<double> scratch_a_;
  std::vector<double> scratch_b_;
  std::vector<double> scratch_c_;
  std::vector<double> scratch_gamma_;
};

/// N lanes of `RdModel`: the ground-truth encode (noisy actual bits) and the
/// SSIM proxy, evaluated with batched kernels. Each lane owns its noise Rng,
/// exactly like per-session RdModel instances.
class RdModelSoa {
 public:
  RdModelSoa(const RdModelConfig& config, const std::vector<Rng>& lane_rngs);

  /// Mirrors RdModel::ActualBits on every lane.
  void ActualBitsLanes(const FrameType* types, const video::RawFrame* frames,
                       const double* qscales, int64_t* bits_out);
  /// Mirrors RdModel::Ssim on every lane.
  void SsimLanes(const video::RawFrame* frames, const double* qscales,
                 double* ssim_out);

 private:
  RdModelConfig config_;
  std::vector<Rng> rngs_;
  std::vector<double> scratch_a_;
  std::vector<double> scratch_b_;
  std::vector<double> scratch_gamma_;
};

}  // namespace rave::codec
