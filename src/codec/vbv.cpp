#include "codec/vbv.h"

#include <algorithm>
#include <cassert>

namespace rave::codec {

VbvBuffer::VbvBuffer(DataRate max_rate, TimeDelta buffer_window)
    : max_rate_(max_rate),
      buffer_window_(buffer_window),
      capacity_(max_rate * buffer_window) {
  assert(max_rate.bps() > 0);
  assert(buffer_window > TimeDelta::Zero());
}

void VbvBuffer::SetMaxRate(DataRate max_rate) {
  assert(max_rate.bps() > 0);
  max_rate_ = max_rate;
  capacity_ = max_rate_ * buffer_window_;
  fill_ = std::min(fill_, capacity_);
}

void VbvBuffer::Drain(TimeDelta dt) {
  if (dt <= TimeDelta::Zero()) return;
  const DataSize drained = max_rate_ * dt;
  fill_ = drained >= fill_ ? DataSize::Zero() : fill_ - drained;
}

void VbvBuffer::AddFrame(DataSize size) {
  fill_ = std::min(fill_ + size, capacity_);
}

DataSize VbvBuffer::SpaceRemaining() const { return capacity_ - fill_; }

DataSize VbvBuffer::MaxFrameSize(double headroom) const {
  const DataSize reserved = capacity_ * headroom;
  const DataSize usable =
      capacity_ - fill_ - std::min(reserved, capacity_ - fill_);
  return usable;
}

double VbvBuffer::fullness() const {
  if (capacity_.IsZero()) return 0.0;
  return fill_ / capacity_;
}

}  // namespace rave::codec
