// x264-style ABR rate control — the paper's baseline ("current video
// encoders adjust bitrates too slowly").
//
// This is a faithful reimplementation of the control structure in x264's
// `ratecontrol.c` for single-pass ABR:
//   * short-term blurred complexity (decay 0.5 per frame),
//   * qscale = complexity^(1-qcomp) / rate_factor, with rate_factor derived
//     from windowed sums (`cplxr_sum` / `wanted_bits_window`) that decay over
//     several seconds,
//   * overflow compensation against cumulative wanted bits, clamped to
//     [0.5, 2.0] over an `abr_buffer` of ~2 s at the target rate,
//   * per-frame qscale step clamping (`lstep`, default 4 QP),
//   * a VBV leaky bucket that soft-limits individual frame sizes.
//
// The consequence — deliberately preserved — is that after the application
// reconfigures the target bitrate downward, the encoder's *output* bitrate
// converges over seconds, overshooting a dropped link all the while.
#pragma once

#include "codec/rate_control.h"
#include "codec/vbv.h"

#include <optional>

namespace rave::codec {

/// Tunables mirroring x264's defaults.
struct AbrConfig {
  double fps = 30.0;
  DataRate initial_target = DataRate::KilobitsPerSec(1500);
  /// Complexity exponent compression (x264 --qcomp).
  double qcomp = 0.6;
  /// Allowed deviation window (x264 --ratetol); sizes the abr_buffer.
  double rate_tolerance = 1.0;
  /// Max QP change per frame (x264 qpstep).
  double qp_step = 4.0;
  /// I-frame quantizer advantage (x264 --ipratio).
  double ip_factor = 1.4;
  /// VBV buffer window; RTC deployments commonly use ~1 s.
  TimeDelta vbv_window = TimeDelta::Millis(1000);
  /// Window (seconds) of the rate_factor sums; larger = slower adaptation.
  double window_seconds = 4.0;
};

/// Single-pass ABR controller. See file comment for the control law.
class AbrRateControl : public RateControl {
 public:
  explicit AbrRateControl(const AbrConfig& config);

  void SetTargetRate(DataRate target) override;
  FrameGuidance PlanFrame(const video::RawFrame& frame, FrameType type,
                          Timestamp now) override;
  void OnFrameEncoded(const FrameOutcome& outcome, Timestamp now) override;
  std::string name() const override { return "x264-abr"; }
  DataRate current_target() const override { return target_; }
  AbrRateControl* AsAbr() override { return this; }

  const AbrConfig& config() const { return config_; }

  /// Diagnostics for tests.
  double last_qscale() const { return last_qscale_; }
  const VbvBuffer& vbv() const { return vbv_; }

 private:
  /// AbrSoa gathers/scatters this controller's mutable state to execute
  /// PlanFrame/OnFrameEncoded in batched lanes (bit-identical by the SoA
  /// contract in codec/soa.h).
  friend class AbrSoa;
  double ComplexityTerm(const video::RawFrame& frame, FrameType type) const;
  double Rceq(double complexity_term) const;

  AbrConfig config_;
  DataRate target_;
  double target_bits_per_frame_;
  VbvBuffer vbv_;
  BitPredictor pred_key_;
  BitPredictor pred_delta_;

  // Windowed rate-factor state (x264: cplxr_sum / wanted_bits_window).
  double cplxr_sum_ = 0.0;
  double wanted_bits_window_ = 0.0;
  double window_decay_;
  /// exp2(qp_step/6), cached: the per-frame qscale step clamp.
  double lstep_;

  // Cumulative totals for overflow compensation.
  double total_bits_ = 0.0;
  double wanted_bits_ = 0.0;

  // Short-term blurred complexity (x264 short_term_cplx*).
  double short_term_cplx_sum_ = 0.0;
  double short_term_cplx_count_ = 0.0;

  double last_qscale_ = 0.0;
  std::optional<Timestamp> last_time_;
  // Stashed between PlanFrame and OnFrameEncoded for the window update.
  double planned_rceq_ = 0.0;
};

/// True when two ABR configs share every control-law constant, so their
/// controllers can step through one `AbrSoa` block (per-lane state is
/// gathered, but the law constants — lstep, window decay, qcomp exponent,
/// ip_factor, abr-buffer tolerance — live once per block). `initial_target`
/// is excluded (targets are per-lane state), and so is `vbv_window`: the
/// staged path copies each lane's live VBV capacity instead of rebuilding it
/// from the window.
bool BatchCompatible(const AbrConfig& a, const AbrConfig& b);

}  // namespace rave::codec
