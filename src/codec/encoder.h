// Encoder front-end: turns RawFrames into EncodedFrames under the direction
// of a pluggable RateControl, emulating the x264 encode loop — frame-type
// decision (keyframe policy), quantizer from rate control, actual size from
// the R-D model, and bounded re-encode retries when a hard size cap is
// violated (x264's VBV retry loop).
#pragma once

#include <cstdint>
#include <memory>

#include "codec/frame_staging.h"
#include "codec/rate_control.h"
#include "codec/rd_model.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/units.h"
#include "video/frame.h"

namespace rave::codec {

/// The compressed output for one captured frame.
struct EncodedFrame {
  int64_t frame_id = 0;
  Timestamp capture_time = Timestamp::Zero();
  Timestamp encode_time = Timestamp::Zero();
  FrameType type = FrameType::kDelta;
  bool skipped = false;
  double qp = 0.0;
  DataSize size = DataSize::Zero();
  /// SSIM proxy in (0,1]; 0 when skipped.
  double ssim = 0.0;
  /// PSNR proxy in dB; 0 when skipped.
  double psnr = 0.0;
  video::Resolution resolution;
  /// Number of re-encode passes the cap forced (0 = first pass fit).
  int reencodes = 0;
  /// Content complexity of the source frame (copied through for metrics;
  /// freeze penalties scale with temporal complexity).
  double spatial_complexity = 0.0;
  double temporal_complexity = 0.0;
};

struct EncoderConfig {
  double fps = 30.0;
  /// 0 disables periodic keyframes (RTC default: keyframes only on scene
  /// change or explicit request).
  int keyframe_interval_frames = 0;
  /// Treat scene changes as keyframes.
  bool keyframe_on_scene_change = true;
  /// Minimum spacing between keyframes produced in response to
  /// RequestKeyFrame (PLI); prevents keyframe storms under loss
  /// (webrtc kMinKeyFrameSendInterval). Scene-change keyframes are exempt.
  TimeDelta min_keyframe_interval = TimeDelta::Millis(300);
  /// Maximum re-encode attempts when a hard cap is exceeded.
  int max_reencodes = 3;
  /// Accept sizes up to cap * (1 + tolerance) without re-encoding.
  double cap_tolerance = 0.05;
  RdModelConfig rd;
  uint64_t seed = 7;
};

/// Single-stream encoder. Owns its rate control.
class Encoder {
 public:
  Encoder(const EncoderConfig& config, std::unique_ptr<RateControl> rc);

  /// Forwards a new target bitrate to the rate control (the app-level
  /// `x264_encoder_reconfig` path).
  void SetTargetRate(DataRate target);

  /// Encodes (or skips) one frame at simulation time `now`. Equivalent to
  /// BeginFrame + ComputeStepScalar + FinishFrame.
  EncodedFrame EncodeFrame(const video::RawFrame& frame, Timestamp now);

  /// Staged-execution seam for the frame-boundary rendezvous
  /// (codec/frame_staging.h). BeginFrame decides the frame type and plans —
  /// unless `defer_abr_plan` and the rate control is an AbrRateControl, in
  /// which case the plan (and update) are left to the hub's batched lanes.
  /// The step's math (qp/qscale/size/ssim/psnr) then comes from either
  /// ComputeStepScalar or the hub's Flush; FinishFrame applies the re-encode
  /// retry loop (never taken on deferred lanes: ABR guidance carries no hard
  /// cap), bookkeeping, and the rate-control update, and emits the frame.
  /// BeginFrame → ComputeStepScalar → FinishFrame is bit-identical to
  /// EncodeFrame, including the rng draw order.
  void BeginFrame(const video::RawFrame& frame, Timestamp now,
                  bool defer_abr_plan, FrameControlStep* step);
  void ComputeStepScalar(FrameControlStep& step);
  EncodedFrame FinishFrame(FrameControlStep& step);

  /// Forces the next frame to be a keyframe (e.g. PLI from the receiver).
  void RequestKeyFrame() { keyframe_requested_ = true; }

  RateControl& rate_control() { return *rc_; }
  const RateControl& rate_control() const { return *rc_; }
  const RdModel& rd_model() const { return rd_; }
  const EncoderConfig& config() const { return config_; }

  int64_t frames_encoded() const { return frames_encoded_; }

 private:
  FrameType DecideType(const video::RawFrame& frame, Timestamp now);

  EncoderConfig config_;
  RdModel rd_;
  std::unique_ptr<RateControl> rc_;
  bool keyframe_requested_ = true;  // first frame is always a keyframe
  int64_t frames_since_key_ = 0;
  int64_t frames_encoded_ = 0;
  Timestamp last_keyframe_time_ = Timestamp::MinusInfinity();
};

}  // namespace rave::codec
