// x264 CRF (constant rate factor) mode with an optional VBV cap — the third
// member of x264's rate-control family. CRF targets constant *quality*
// rather than constant bitrate: qscale is proportional to blurred
// complexity^(1-qcomp) scaled by the rate factor, with no bitrate feedback
// at all. "Capped CRF" adds a VBV so the output cannot exceed a ceiling
// rate. Included for completeness of the codec substrate (and to test the
// quality-targeted operating mode); it ignores SetTargetRate by design,
// which is exactly why plain CRF is unusable for RTC — the evaluation's
// baselines use ABR/CBR instead.
#pragma once

#include <optional>

#include "codec/rate_control.h"
#include "codec/vbv.h"

namespace rave::codec {

struct CrfConfig {
  double fps = 30.0;
  /// The constant rate factor; lower = better quality (x264 default 23).
  double crf = 23.0;
  double qcomp = 0.6;
  /// Optional cap: VBV max rate (capped-CRF). Unset = pure CRF.
  std::optional<DataRate> cap_rate;
  TimeDelta vbv_window = TimeDelta::Millis(1000);
  double qp_step = 4.0;
  double ip_factor = 1.4;
};

class CrfRateControl : public RateControl {
 public:
  explicit CrfRateControl(const CrfConfig& config);

  /// CRF has no bitrate target; reconfigs only move the cap when present.
  void SetTargetRate(DataRate target) override;
  FrameGuidance PlanFrame(const video::RawFrame& frame, FrameType type,
                          Timestamp now) override;
  void OnFrameEncoded(const FrameOutcome& outcome, Timestamp now) override;
  std::string name() const override { return "x264-crf"; }
  DataRate current_target() const override {
    return config_.cap_rate.value_or(DataRate::PlusInfinity());
  }

 private:
  CrfConfig config_;
  std::optional<VbvBuffer> vbv_;
  BitPredictor pred_key_;
  BitPredictor pred_delta_;
  double short_term_cplx_sum_ = 0.0;
  double short_term_cplx_count_ = 0.0;
  double rate_factor_;
  /// exp2(qp_step/6), cached: the per-frame qscale step clamp.
  double lstep_;
  double last_qscale_ = 0.0;
  std::optional<Timestamp> last_time_;
};

}  // namespace rave::codec
