// Rate-distortion model of an x264-like encoder.
//
// x264's own rate control does not know real frame sizes in advance either:
// it predicts them with a power-law model of complexity and quantizer scale
// (`predict_size`: bits = coef * complexity / qscale) and corrects the
// coefficient online. We use the same family of models as *ground truth*
// (with multiplicative noise standing in for everything the model misses),
// and give the rate-control implementations only an online-calibrated
// predictor (`BitPredictor`). This keeps the control problem honest: no
// scheme gets oracle knowledge of frame sizes.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/units.h"
#include "video/frame.h"

namespace rave::codec {

/// Frame coding type. RTC streams are I/P only (no B frames: they add a
/// frame of latency by construction).
enum class FrameType { kKey, kDelta };

/// QP <-> quantizer-scale conversions, exactly as in x264
/// (`qp2qscale`: qscale = 0.85 * 2^((QP-12)/6)).
double QpToQscale(double qp);
double QscaleToQp(double qscale);

/// Valid H.264 QP range.
inline constexpr double kMinQp = 10.0;
inline constexpr double kMaxQp = 51.0;

/// Parameters of the ground-truth R-D surface.
struct RdModelConfig {
  /// Bits for a delta frame: coef_p * pixels * temporal_c / qscale^gamma_p.
  double coef_p = 1.0;
  double gamma_p = 1.2;
  /// Bits for a key frame: coef_i * pixels * spatial_c / qscale^gamma_i.
  double coef_i = 1.2;
  double gamma_i = 0.9;
  /// Lognormal noise stddev applied to the true size (encoder-side only).
  double noise_sigma = 0.08;
  /// SSIM proxy: ssim = 1 - d0 * qscale^beta * (0.5 + 0.5 * complexity).
  double ssim_d0 = 0.0154;
  double ssim_beta = 0.7;
  /// Floor on any frame's size (headers, syntax overhead).
  int64_t min_frame_bits = 1500;
};

/// Deterministic ground-truth R-D surface plus the encoder's noise source.
class RdModel {
 public:
  RdModel(const RdModelConfig& config, Rng rng);

  /// Noise-free expected size of a frame encoded at `qscale`.
  DataSize ExpectedBits(FrameType type, const video::RawFrame& frame,
                        double qscale) const;

  /// Actual size: expected size perturbed by this encoder's noise stream.
  /// Each call draws fresh noise (so a re-encode at a new QP re-rolls).
  DataSize ActualBits(FrameType type, const video::RawFrame& frame,
                      double qscale);

  /// Inverts the expected-size model: qscale needed for `target` bits.
  /// Returns a qscale clamped to the valid QP range.
  double QscaleForBits(FrameType type, const video::RawFrame& frame,
                       DataSize target) const;

  /// SSIM-like quality proxy in (0, 1], monotonically decreasing in qscale.
  double Ssim(const video::RawFrame& frame, double qscale) const;

  /// PSNR-like proxy in dB, monotonically decreasing in QP.
  double Psnr(const video::RawFrame& frame, double qp) const;

  /// Draws one sample from this encoder's noise stream, exactly as
  /// ActualBits does before exponentiating. The frame-staging hub uses it to
  /// keep per-session rng streams while batching the transcendental tail
  /// (exp of the draw, the qscale power) across lanes.
  double DrawNoiseGaussian() {
    return rng_.Gaussian(0.0, config_.noise_sigma);
  }

  const RdModelConfig& config() const { return config_; }

 private:
  double RawExpected(FrameType type, const video::RawFrame& frame,
                     double qscale) const;

  RdModelConfig config_;
  Rng rng_;
  /// Cached reciprocal exponents for the QscaleForBits inversions.
  double inv_gamma_i_;
  double inv_gamma_p_;
};

/// Online-calibrated size predictor available to rate controls.
///
/// Mirrors x264's `predictor_t`: predicted = coef * complexity_term /
/// qscale^gamma, with `coef` tracked as a damped ratio of observed sizes.
/// One instance per frame type.
class BitPredictor {
 public:
  /// `gamma` must match the qscale exponent used for this frame type.
  explicit BitPredictor(double gamma, double initial_coef = 1.0);

  /// Predicted bits for encoding `complexity_term` (= pixels * complexity)
  /// at `qscale`.
  DataSize Predict(double complexity_term, double qscale) const;

  /// Qscale at which the predictor expects `target` bits.
  double QscaleForBits(double complexity_term, DataSize target) const;

  /// Feeds an observation (the frame actually produced `bits`).
  void Update(double complexity_term, double qscale, DataSize bits);

  double coef() const { return coef_; }

 private:
  friend class BitPredictorSoa;

  double gamma_;
  /// Cached 1/gamma so QscaleForBits doesn't divide on every frame.
  double inv_gamma_;
  double coef_;
  double weight_ = 0.0;
};

}  // namespace rave::codec
