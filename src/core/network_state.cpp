#include "core/network_state.h"

#include <algorithm>

namespace rave::core {

NetworkState NetworkStateTracker::OnObservation(const NetworkObservation& obs) {
  if (!min_rtt_ || obs.rtt < *min_rtt_) min_rtt_ = obs.rtt;

  NetworkState s;
  s.at = obs.at;
  s.rtt = obs.rtt;
  s.loss_rate = obs.loss_rate;
  s.usage = obs.usage;

  // Capacity: the CC target, further bounded by measured throughput while
  // over-using (during a drop the acked rate reflects the new bottleneck
  // before the AIMD target has finished converging).
  s.capacity = obs.target;
  if (obs.usage == cc::BandwidthUsage::kOverusing &&
      obs.acked_rate.bps() > 0) {
    s.capacity = std::min(s.capacity, obs.acked_rate);
  }
  if (s.capacity.bps() <= 0) s.capacity = DataRate::KilobitsPerSec(50);

  // Standing queue inside the network: in-flight beyond one BDP.
  const DataSize bdp = s.capacity * min_rtt();
  const DataSize network_queue =
      obs.in_flight > bdp ? obs.in_flight - bdp : DataSize::Zero();
  s.backlog = obs.pacer_queue + network_queue;
  s.queue_delay = s.backlog / s.capacity;

  state_ = s;
  return s;
}

}  // namespace rave::core
