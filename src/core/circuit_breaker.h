// Sender-side feedback-starvation circuit breaker (RFC 8083 style).
//
// Transport-wide feedback is the sender's only view of the network; when it
// stops arriving entirely (feedback blackhole, full link outage) every
// estimator target is stale and continuing to transmit at it is exactly the
// behaviour RFC 8083 circuit breakers exist to prevent. The breaker watches
// the gap since the last feedback report:
//
//   kClosed ──(N missed report intervals)──▶ kOpen
//      ▲                                       │ exponential backoff of the
//      │                                       │ send cap toward a floor
//      │                                       ▼
//   kClosed ◀──(cap reaches the estimator  kPaused   (starved past the
//              target again)                  │       pause deadline: the
//      ▲                                      │       encoder stops entirely)
//      │                                      │
//   kRecovering ◀──(feedback resumes: keyframe request + ramp start)
//
// On resumption the sender must not resume at the stale pre-outage target —
// capacity may have changed while it was blind — so recovery starts at a
// fraction of the last healthy target and ramps the cap up exponentially,
// one step per feedback report, until it clears the estimator target.
//
// Pure control logic: no event loop, no I/O. The owner calls OnTick on a
// fixed cadence (the feedback interval) and OnFeedback whenever a report
// actually arrives, and applies Cap()/encoder_paused() to its pipeline.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.h"
#include "util/units.h"

namespace rave::core {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kPaused, kRecovering };

  struct Config {
    bool enabled = true;
    /// Expected feedback cadence; OnTick is called on this period.
    TimeDelta feedback_interval = TimeDelta::Millis(50);
    /// Reports missed before the breaker opens (RFC 8083 media timeout is
    /// measured in RTCP intervals; 8 x 50 ms = 400 ms of total silence).
    int open_after_missed = 8;
    /// Per-tick multiplicative backoff of the cap while open.
    double backoff_factor = 0.7;
    /// The cap never backs off below this floor.
    DataRate floor = DataRate::KilobitsPerSec(50);
    /// Starvation beyond this pauses the encoder entirely (last resort: stop
    /// offering load to a network that has been black for seconds).
    TimeDelta pause_after = TimeDelta::Seconds(3);
    /// Recovery ramp starts at this fraction of the last healthy target...
    double recovery_start_fraction = 0.25;
    /// ...and multiplies by this on every feedback report until it clears
    /// the estimator target (bounded ramp-up instead of resuming stale).
    double ramp_up_factor = 1.6;
  };

  struct Stats {
    int64_t opens = 0;
    int64_t pauses = 0;
    /// Completed recovery ramps (breaker closed again).
    int64_t recoveries = 0;
    /// Total time spent starved (open or paused).
    TimeDelta time_open = TimeDelta::Zero();
    TimeDelta time_paused = TimeDelta::Zero();
  };

  explicit CircuitBreaker(const Config& config);

  /// Watchdog tick on the feedback cadence: starvation detection, backoff
  /// while open, pause escalation.
  void OnTick(Timestamp now);

  /// A feedback report arrived; `estimator_target` is the estimator's
  /// post-update target. Drives recovery transitions and the ramp.
  void OnFeedback(Timestamp now, DataRate estimator_target);

  /// Cap the sender must apply to its media/pacing targets.
  /// PlusInfinity while closed (no constraint).
  DataRate Cap() const;

  /// True while the breaker has escalated to a full encoder pause.
  bool encoder_paused() const { return state_ == State::kPaused; }

  /// True exactly once after feedback resumes: the sender owes the receiver
  /// a keyframe (the reference chain is presumed broken after an outage).
  bool TakeKeyframeRequest();

  State state() const { return state_; }
  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  void Trip(Timestamp now);

  Config config_;
  State state_ = State::kClosed;
  Stats stats_;
  Timestamp last_feedback_ = Timestamp::Zero();
  /// Last estimator target seen while healthy; the recovery ramp is bounded
  /// relative to this.
  DataRate last_healthy_target_ = DataRate::Zero();
  DataRate cap_ = DataRate::PlusInfinity();
  bool keyframe_pending_ = false;
};

std::string ToString(CircuitBreaker::State state);

}  // namespace rave::core
