#include "core/frame_budget.h"

#include <algorithm>

namespace rave::core {

FrameBudgetAllocator::FrameBudgetAllocator(const BudgetConfig& config)
    : config_(config) {}

FrameBudget FrameBudgetAllocator::Allocate(const NetworkState& state,
                                           bool drop_active,
                                           codec::FrameType type,
                                           int consecutive_skips) const {
  FrameBudget budget;

  // Skip decision: when the backlog already represents more delay than we
  // are willing to add to, encoding anything only makes latency worse.
  // Keyframes are never skipped (they are the recovery path after loss) and
  // skips are bounded so motion never fully freezes.
  if (type != codec::FrameType::kKey &&
      state.queue_delay > config_.skip_queue_delay &&
      consecutive_skips < config_.max_consecutive_skips) {
    budget.skip = true;
    return budget;
  }

  const double utilization =
      drop_active ? config_.drain_utilization : config_.steady_utilization;
  double bits =
      static_cast<double>(state.capacity.bps()) * utilization / config_.fps;

  // Pay down backlog beyond the allowance: aggressively while a drop is
  // active, gently in steady state.
  const DataSize allowed = state.capacity * config_.allowed_queue_delay;
  if (state.backlog > allowed) {
    const double excess =
        static_cast<double>((state.backlog - allowed).bits());
    const int horizon = drop_active ? config_.drain_horizon_frames
                                    : config_.steady_drain_horizon_frames;
    bits -= excess / std::max(horizon, 1);
  }

  if (type == codec::FrameType::kKey) {
    bits *= drop_active ? config_.key_boost_drop : config_.key_boost_steady;
  }

  bits = std::max(bits, static_cast<double>(config_.min_frame.bits()));
  budget.target = DataSize::Bits(static_cast<int64_t>(bits));

  const double slack =
      drop_active ? config_.cap_slack_drop : config_.cap_slack_steady;
  budget.cap = budget.target * slack;
  return budget;
}

}  // namespace rave::core
