// Network state fed from the transport/congestion layer into the adaptive
// encoder controller, plus the tracker that derives the quantities the
// controller actually budgets against (sender backlog, queue delay,
// estimated network standing queue).
#pragma once

#include <optional>

#include "cc/trendline.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::core {

/// Raw observation snapshot, assembled by the sender pipeline after every
/// feedback report (and on every pacer state change of interest).
struct NetworkObservation {
  Timestamp at = Timestamp::Zero();
  /// Congestion controller's target rate.
  DataRate target = DataRate::Zero();
  /// Measured acknowledged throughput (Zero when unknown).
  DataRate acked_rate = DataRate::Zero();
  TimeDelta rtt = TimeDelta::Millis(100);
  double loss_rate = 0.0;
  cc::BandwidthUsage usage = cc::BandwidthUsage::kNormal;
  /// True when the AIMD controller performed a multiplicative decrease in
  /// the update that produced this observation.
  bool overuse_decrease = false;
  /// Bits sitting in the sender's pacer queue.
  DataSize pacer_queue = DataSize::Zero();
  /// Bits sent but not yet acknowledged.
  DataSize in_flight = DataSize::Zero();
};

/// Derived state the controller budgets with.
struct NetworkState {
  Timestamp at = Timestamp::Zero();
  /// Best available capacity estimate for budgeting.
  DataRate capacity = DataRate::KilobitsPerSec(1500);
  TimeDelta rtt = TimeDelta::Millis(100);
  double loss_rate = 0.0;
  cc::BandwidthUsage usage = cc::BandwidthUsage::kNormal;
  /// Sender-side + estimated in-network standing queue, in bits.
  DataSize backlog = DataSize::Zero();
  /// backlog / capacity.
  TimeDelta queue_delay = TimeDelta::Zero();
};

/// Maintains min-RTT and converts observations into NetworkStates.
///
/// The in-network standing queue is estimated as the portion of in-flight
/// data beyond one bandwidth-delay product (capacity * min_rtt): on a FIFO
/// bottleneck that excess is by definition waiting in the queue.
class NetworkStateTracker {
 public:
  NetworkStateTracker() = default;

  NetworkState OnObservation(const NetworkObservation& obs);

  /// Latest derived state (default-constructed before any observation).
  const NetworkState& state() const { return state_; }
  TimeDelta min_rtt() const { return min_rtt_.value_or(TimeDelta::Millis(50)); }

 private:
  std::optional<TimeDelta> min_rtt_;
  NetworkState state_;
};

}  // namespace rave::core
