// Rate controls that consume live network observations (beyond the plain
// target-bitrate knob of codec::RateControl). The session layer feeds
// OnNetworkUpdate on every feedback and immediately before each encode.
#pragma once

#include "codec/rate_control.h"
#include "core/network_state.h"

namespace rave::core {

class NetworkAwareRateControl : public codec::RateControl {
 public:
  /// Rich update path: full observation from the transport layer.
  virtual void OnNetworkUpdate(const NetworkObservation& obs) = 0;
};

}  // namespace rave::core
