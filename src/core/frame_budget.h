// Per-frame bit-budget allocation — the quantitative heart of the adaptive
// encoder. Given the current network state it answers: how many bits may the
// *next* frame cost so that (a) steady-state frames ride at the capacity
// estimate, and (b) after a drop, the accumulated backlog drains within a
// bounded number of frames instead of seconds.
#pragma once

#include "codec/rd_model.h"
#include "core/network_state.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::core {

struct BudgetConfig {
  double fps = 30.0;
  /// Queue delay the controller tolerates without corrective action.
  TimeDelta allowed_queue_delay = TimeDelta::Millis(50);
  /// Frames over which excess backlog is paid down while a drop is active.
  int drain_horizon_frames = 5;
  /// Gentle paydown horizon used in steady state (keeps the standing queue
  /// near the allowance without visible quality dips).
  int steady_drain_horizon_frames = 30;
  /// Capacity fraction budgeted while a drop is active (headroom to drain).
  double drain_utilization = 0.85;
  /// Capacity fraction budgeted in steady state.
  double steady_utilization = 1.0;
  /// Floor so a frame is always encodable at max QP.
  DataSize min_frame = DataSize::Bits(4000);
  /// Queue delay beyond which frames are skipped outright.
  TimeDelta skip_queue_delay = TimeDelta::Millis(350);
  int max_consecutive_skips = 2;
  /// Keyframe budget multiple (steady / during drop).
  double key_boost_steady = 3.0;
  double key_boost_drop = 1.5;
  /// Hard-cap slack relative to the target budget (steady / during drop).
  double cap_slack_steady = 1.5;
  double cap_slack_drop = 1.05;
};

/// One frame's allocation.
struct FrameBudget {
  bool skip = false;
  /// Bits the frame should aim for.
  DataSize target = DataSize::Zero();
  /// Hard cap the encoder must enforce via re-encoding.
  DataSize cap = DataSize::PlusInfinity();
};

/// Stateless allocator (all state arrives in the arguments), so properties
/// are easy to test exhaustively.
class FrameBudgetAllocator {
 public:
  explicit FrameBudgetAllocator(const BudgetConfig& config = {});

  FrameBudget Allocate(const NetworkState& state, bool drop_active,
                       codec::FrameType type, int consecutive_skips) const;

  const BudgetConfig& config() const { return config_; }

 private:
  BudgetConfig config_;
};

}  // namespace rave::core
