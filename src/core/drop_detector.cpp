#include "core/drop_detector.h"

#include <algorithm>

namespace rave::core {

DropDetector::DropDetector() : DropDetector(Config{}) {}

DropDetector::DropDetector(const Config& config) : config_(config) {}

bool DropDetector::OnState(const NetworkState& state, bool overuse_decrease) {
  const Timestamp now = state.at;
  const double capacity_bps = static_cast<double>(state.capacity.bps());
  // On ties, keeping the newer sample preserves the max (it expires later).
  while (!history_.empty() && history_.back().second <= capacity_bps) {
    history_.pop_back();
  }
  history_.emplace_back(now, capacity_bps);
  while (now - history_.front().first > config_.window) {
    history_.pop_front();
  }

  const double recent_max = history_.front().second;
  const double fall =
      recent_max > 0.0 ? 1.0 - capacity_bps / recent_max : 0.0;

  const bool rate_trigger = fall > config_.drop_ratio;
  const bool queue_trigger = state.queue_delay > config_.queue_delay_trigger;
  const bool overuse_trigger =
      overuse_decrease && state.queue_delay > config_.overuse_queue_gate;
  const bool trigger = rate_trigger || overuse_trigger || queue_trigger;

  if (trigger) {
    active_ = true;
    last_trigger_ = now;
    severity_ = std::clamp(std::max(fall, overuse_trigger ? 0.15 : 0.0),
                           0.0, 1.0);
  } else if (active_) {
    const bool held = now - last_trigger_ < config_.hold;
    const bool queue_clear = state.queue_delay < config_.queue_delay_clear;
    if (!held && queue_clear) {
      active_ = false;
      severity_ = 0.0;
    }
  }
  return active_;
}

}  // namespace rave::core
