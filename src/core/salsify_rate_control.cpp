#include "core/salsify_rate_control.h"

#include <algorithm>

namespace rave::core {

SalsifyRateControl::SalsifyRateControl(const SalsifyConfig& config)
    : config_(config), pred_key_(/*gamma=*/0.9), pred_delta_(/*gamma=*/1.2) {
  state_.capacity = config_.initial_target;
}

void SalsifyRateControl::OnNetworkUpdate(const NetworkObservation& obs) {
  state_ = tracker_.OnObservation(obs);
}

void SalsifyRateControl::SetTargetRate(DataRate target) {
  if (target.bps() <= 0) return;
  state_.capacity = target;
}

codec::FrameGuidance SalsifyRateControl::PlanFrame(
    const video::RawFrame& frame, codec::FrameType type, Timestamp /*now*/) {
  codec::FrameGuidance guidance;

  // Salsify's pause: while the network has not caught up, send nothing.
  if (type != codec::FrameType::kKey &&
      state_.queue_delay > config_.pause_threshold &&
      consecutive_skips_ < config_.max_consecutive_skips) {
    guidance.skip = true;
    return guidance;
  }

  // Memoryless per-frame budget: exactly what fits in one frame interval
  // after the current backlog drains. No smoothing, no headroom policy.
  const double interval_s = 1.0 / config_.fps;
  double bits = static_cast<double>(state_.capacity.bps()) * interval_s -
                static_cast<double>(state_.backlog.bits());
  if (type == codec::FrameType::kKey) {
    bits = std::max(bits, 0.0) * config_.key_boost +
           static_cast<double>(config_.min_frame.bits());
  }
  bits = std::max(bits, static_cast<double>(config_.min_frame.bits()));
  const DataSize budget = DataSize::Bits(static_cast<int64_t>(bits));

  const double pixels = static_cast<double>(frame.resolution.pixels());
  const double cplx_term = type == codec::FrameType::kKey
                               ? pixels * frame.spatial_complexity
                               : pixels * frame.temporal_complexity;
  codec::BitPredictor& pred =
      type == codec::FrameType::kKey ? pred_key_ : pred_delta_;

  guidance.qp = std::clamp(
      codec::QscaleToQp(pred.QscaleForBits(cplx_term, budget)),
      codec::kMinQp, codec::kMaxQp);
  // The two-version pick behaves like a tight cap with one retry.
  guidance.max_size = budget * config_.cap_slack;
  return guidance;
}

void SalsifyRateControl::OnFrameEncoded(const codec::FrameOutcome& outcome,
                                        Timestamp /*now*/) {
  if (outcome.skipped) {
    ++consecutive_skips_;
    return;
  }
  consecutive_skips_ = 0;
  codec::BitPredictor& pred = outcome.type == codec::FrameType::kKey
                                  ? pred_key_
                                  : pred_delta_;
  pred.Update(outcome.complexity_term, outcome.qscale, outcome.size);

  // Account for the bits just committed until the next observation.
  state_.backlog += outcome.size;
  state_.queue_delay = state_.backlog / state_.capacity;
}

}  // namespace rave::core
