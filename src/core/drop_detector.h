// Bandwidth-drop detector: decides when the encoder should leave its
// efficiency-preserving steady state and enter the fast "drain" regime.
//
// A drop is declared when any of three signals fires:
//   1. the capacity estimate falls more than `drop_ratio` below its recent
//      maximum (sudden step drops),
//   2. the congestion controller reports an over-use decrease (delay
//      gradient detected queue growth before the rate even moved),
//   3. the sender backlog exceeds the drain target by a wide margin.
// The detector then holds the drop state until the backlog has actually
// drained and the estimate has been stable for a hold period — hysteresis
// that prevents QP oscillation when capacity hovers.
#pragma once

#include <deque>

#include "core/network_state.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::core {

class DropDetector {
 public:
  struct Config {
    /// Relative fall from the windowed max that counts as a drop.
    double drop_ratio = 0.20;
    /// Window over which the reference maximum is tracked.
    TimeDelta window = TimeDelta::Seconds(3);
    /// Minimum time drop mode stays engaged after the last trigger.
    TimeDelta hold = TimeDelta::Millis(800);
    /// Queue delay above which drop mode engages regardless of the rate.
    TimeDelta queue_delay_trigger = TimeDelta::Millis(150);
    /// Queue delay below which drop mode may disengage.
    TimeDelta queue_delay_clear = TimeDelta::Millis(60);
    /// An AIMD over-use decrease only engages drop mode when the queue
    /// delay also exceeds this gate. This separates genuine bandwidth drops
    /// (queue grows fast) from the controller's routine steady-state
    /// sawtooth, which must not cost encoding efficiency.
    TimeDelta overuse_queue_gate = TimeDelta::Millis(90);
  };

  DropDetector();
  explicit DropDetector(const Config& config);

  /// Feeds a derived state + the raw over-use decrease flag; returns whether
  /// drop mode is active.
  bool OnState(const NetworkState& state, bool overuse_decrease);

  bool active() const { return active_; }
  /// Severity of the current drop: 1 - capacity/recent_max, in [0,1].
  /// 0 when inactive.
  double severity() const { return active_ ? severity_ : 0.0; }

 private:
  Config config_;
  /// Sliding-window maximum as a monotonic deque: entries are (time,
  /// capacity bps) with strictly decreasing bps, so the front is always the
  /// windowed max. Dominated samples (bps <= a newer sample) can never be
  /// the max while the newer one is in window, so dropping them on push
  /// keeps the answer exact at O(1) amortized per observation.
  std::deque<std::pair<Timestamp, double>> history_;
  bool active_ = false;
  double severity_ = 0.0;
  Timestamp last_trigger_ = Timestamp::MinusInfinity();
};

}  // namespace rave::core
