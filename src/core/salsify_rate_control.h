// Salsify-style rate control (Fouladi et al., NSDI 2018), implemented as a
// comparator for the paper's scheme.
//
// Salsify couples a functional codec to the transport: every frame is
// encoded to match the instantaneous network budget exactly (the real system
// encodes two versions and transmits the better-fitting one — here the
// encoder's cap/re-encode loop plays that role), and the sender simply
// *pauses* (skips frames) whenever the projected queue exceeds a threshold.
// It is memoryless: no drop detector, no drain mode, no QP smoothing or
// recovery hysteresis — which buys excellent latency but lets estimator
// noise print straight into the quality trajectory. The contrast against
// `AdaptiveRateControl` isolates the value of the paper's
// efficiency-preserving machinery.
#pragma once

#include "core/network_aware_rate_control.h"

namespace rave::core {

struct SalsifyConfig {
  double fps = 30.0;
  DataRate initial_target = DataRate::KilobitsPerSec(1500);
  /// Pause (skip) while the projected queue delay exceeds this.
  TimeDelta pause_threshold = TimeDelta::Millis(100);
  int max_consecutive_skips = 3;
  /// Keyframe budget multiple.
  double key_boost = 2.0;
  /// The "two versions" pick tolerates this much overshoot.
  double cap_slack = 1.05;
  DataSize min_frame = DataSize::Bits(4000);
};

class SalsifyRateControl : public NetworkAwareRateControl {
 public:
  explicit SalsifyRateControl(const SalsifyConfig& config);

  void OnNetworkUpdate(const NetworkObservation& obs) override;

  void SetTargetRate(DataRate target) override;
  codec::FrameGuidance PlanFrame(const video::RawFrame& frame,
                                 codec::FrameType type,
                                 Timestamp now) override;
  void OnFrameEncoded(const codec::FrameOutcome& outcome,
                      Timestamp now) override;
  std::string name() const override { return "salsify"; }
  DataRate current_target() const override { return state_.capacity; }

  int consecutive_skips() const { return consecutive_skips_; }

 private:
  SalsifyConfig config_;
  NetworkStateTracker tracker_;
  codec::BitPredictor pred_key_;
  codec::BitPredictor pred_delta_;
  NetworkState state_;
  int consecutive_skips_ = 0;
};

}  // namespace rave::core
