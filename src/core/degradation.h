// Resolution degradation controller (extension): when the adaptive
// controller is forced to sustain very high QPs, spending the bits on fewer
// pixels yields better perceived quality than quantizing 720p into mush —
// the "maintaining compression efficiency" lever beyond QP. Mirrors
// WebRTC's balanced degradation preference.
#pragma once

#include <vector>

#include "util/time.h"
#include "video/frame.h"

namespace rave::core {

class DegradationController {
 public:
  struct Config {
    /// Sustained QP above this steps resolution down.
    double qp_high = 45.0;
    /// Sustained QP below this steps resolution back up.
    double qp_low = 30.0;
    /// How long the QP must stay beyond a threshold before acting.
    TimeDelta dwell = TimeDelta::Millis(1500);
    /// Resolution ladder, highest first.
    std::vector<video::Resolution> ladder = {
        {1280, 720}, {960, 540}, {640, 360}, {480, 270}};
  };

  DegradationController();
  explicit DegradationController(const Config& config);

  /// Feeds the QP of an encoded frame; returns true when the resolution
  /// changed (query `resolution()` for the new value).
  bool OnFrameQp(double qp, Timestamp now);

  video::Resolution resolution() const { return config_.ladder[level_]; }
  size_t level() const { return level_; }

 private:
  Config config_;
  size_t level_ = 0;
  Timestamp high_since_ = Timestamp::MinusInfinity();
  Timestamp low_since_ = Timestamp::MinusInfinity();
};

}  // namespace rave::core
