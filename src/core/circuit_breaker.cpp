#include "core/circuit_breaker.h"

#include <algorithm>

#include "obs/trace.h"

namespace rave::core {
namespace {

// Transition markers carry a static label for the trace's instant row plus
// the numeric state for the counter row (0 closed / 1 open / 2 paused /
// 3 recovering, matching Track::kBreakerState docs).
[[maybe_unused]] const char* StateLabel(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kPaused:
      return "paused";
    case CircuitBreaker::State::kRecovering:
      return "recovering";
  }
  return "unknown";
}

void TraceTransition(CircuitBreaker::State state, Timestamp now) {
  RAVE_TRACE_COUNTER(kBreakerState, now, static_cast<double>(state));
  RAVE_TRACE_INSTANT(kBreakerState, now, StateLabel(state));
#ifdef RAVE_TRACING_DISABLED
  (void)state;
  (void)now;
#endif
}

}  // namespace

CircuitBreaker::CircuitBreaker(const Config& config) : config_(config) {}

void CircuitBreaker::OnTick(Timestamp now) {
  if (!config_.enabled) return;
  const TimeDelta starved = now - last_feedback_;

  switch (state_) {
    case State::kClosed:
    case State::kRecovering:
      if (starved >
          config_.feedback_interval * static_cast<double>(config_.open_after_missed)) {
        Trip(now);
      }
      break;
    case State::kOpen:
      stats_.time_open += config_.feedback_interval;
      cap_ = std::max(config_.floor, cap_ * config_.backoff_factor);
      if (starved > config_.pause_after) {
        state_ = State::kPaused;
        ++stats_.pauses;
        cap_ = config_.floor;
        TraceTransition(state_, now);
      }
      break;
    case State::kPaused:
      stats_.time_paused += config_.feedback_interval;
      break;
  }
}

void CircuitBreaker::Trip(Timestamp now) {
  state_ = State::kOpen;
  ++stats_.opens;
  TraceTransition(state_, now);
  // First backoff step happens immediately; subsequent steps per tick.
  const DataRate base =
      cap_.IsFinite() ? std::min(cap_, last_healthy_target_)
                      : last_healthy_target_;
  cap_ = std::max(config_.floor, base * config_.backoff_factor);
}

void CircuitBreaker::OnFeedback(Timestamp now, DataRate estimator_target) {
  if (!config_.enabled) return;
  last_feedback_ = now;

  switch (state_) {
    case State::kClosed:
      last_healthy_target_ = estimator_target;
      return;
    case State::kOpen:
    case State::kPaused: {
      // Feedback resumed: keyframe recovery + bounded ramp instead of
      // resuming at the stale target.
      state_ = State::kRecovering;
      TraceTransition(state_, now);
      keyframe_pending_ = true;
      const DataRate start = std::max(
          config_.floor,
          last_healthy_target_ * config_.recovery_start_fraction);
      cap_ = std::min(start, estimator_target);
      cap_ = std::max(cap_, config_.floor);
      return;
    }
    case State::kRecovering:
      cap_ = std::max(config_.floor, cap_ * config_.ramp_up_factor);
      if (cap_ >= estimator_target) {
        state_ = State::kClosed;
        cap_ = DataRate::PlusInfinity();
        last_healthy_target_ = estimator_target;
        ++stats_.recoveries;
        TraceTransition(state_, now);
      }
      return;
  }
}

DataRate CircuitBreaker::Cap() const {
  if (!config_.enabled || state_ == State::kClosed) {
    return DataRate::PlusInfinity();
  }
  return cap_;
}

bool CircuitBreaker::TakeKeyframeRequest() {
  const bool pending = keyframe_pending_;
  keyframe_pending_ = false;
  return pending;
}

std::string ToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kPaused:
      return "paused";
    case CircuitBreaker::State::kRecovering:
      return "recovering";
  }
  return "unknown";
}

}  // namespace rave::core
