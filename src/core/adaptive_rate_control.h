// The paper's contribution: a rate control that adapts codec parameters to
// the network per frame instead of per seconds.
//
// Mechanisms (each independently switchable for the ablation study):
//   * fast QP — every frame's quantizer is re-derived from the instantaneous
//     per-frame bit budget by inverting the online-calibrated size
//     predictor; no multi-second windowed smoothing in the loop.
//   * frame cap — a hard size cap (budget * small slack while draining) that
//     the encoder enforces with re-encode passes, so a single frame can
//     never flood a freshly-dropped link.
//   * drain mode — on a detected drop, budgets shrink below capacity until
//     the accumulated sender/network backlog is paid down.
//   * frame skip — under extreme backlog the encoder skips frames entirely
//     (bounded consecutive skips).
//   * recovery hysteresis — QP decreases are rate-limited and capacity
//     increases are followed conservatively, so steady-state compression
//     efficiency is preserved and quality does not oscillate after drops.
//
// In steady state the controller intentionally behaves like a gentle ABR:
// budgets equal capacity/fps and QP moves slowly. All the machinery above
// only bites when the drop detector or the backlog says it must.
#pragma once

#include <optional>

#include "codec/rate_control.h"
#include "core/drop_detector.h"
#include "core/frame_budget.h"
#include "core/network_aware_rate_control.h"
#include "core/network_state.h"
#include "util/stats.h"

namespace rave::core {

struct AdaptiveConfig {
  double fps = 30.0;
  DataRate initial_target = DataRate::KilobitsPerSec(1500);
  BudgetConfig budget;
  DropDetector::Config drop;

  /// Max QP decrease per frame (recovery is deliberately gradual).
  double qp_down_step = 1.0;
  /// Max QP increase per frame in steady state (fast path ignores this).
  double qp_up_step_steady = 4.0;
  /// EWMA weight for the steady-state capacity estimate. The controller
  /// follows the congestion controller's sawtooth through this filter while
  /// no drop is active — "maintaining compression efficiency" — and snaps to
  /// the instantaneous estimate the moment a drop is detected.
  double steady_capacity_alpha = 0.2;

  // --- ablation switches ---
  bool enable_fast_qp = true;
  bool enable_frame_cap = true;
  bool enable_drain_mode = true;
  bool enable_skip = true;
};

/// Adaptive encoder rate control (see file comment).
class AdaptiveRateControl : public NetworkAwareRateControl {
 public:
  explicit AdaptiveRateControl(const AdaptiveConfig& config);

  /// Rich update path: full observation from the transport layer. The
  /// sender pipeline calls this on every feedback and immediately before
  /// each encode (with a fresh pacer-queue reading).
  void OnNetworkUpdate(const NetworkObservation& obs) override;

  // codec::RateControl:
  void SetTargetRate(DataRate target) override;
  codec::FrameGuidance PlanFrame(const video::RawFrame& frame,
                                 codec::FrameType type,
                                 Timestamp now) override;
  void OnFrameEncoded(const codec::FrameOutcome& outcome,
                      Timestamp now) override;
  std::string name() const override { return "rave-adaptive"; }
  DataRate current_target() const override { return state_.capacity; }

  bool drop_active() const { return drop_active_; }
  const NetworkState& network_state() const { return state_; }
  int consecutive_skips() const { return consecutive_skips_; }

 private:
  AdaptiveConfig config_;
  FrameBudgetAllocator allocator_;
  NetworkStateTracker tracker_;
  DropDetector drop_detector_;
  codec::BitPredictor pred_key_;
  codec::BitPredictor pred_delta_;

  NetworkState state_;
  Ewma smoothed_capacity_kbps_;
  bool drop_active_ = false;
  int consecutive_skips_ = 0;
  double last_qp_ = 0.0;
};

}  // namespace rave::core
