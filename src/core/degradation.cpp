#include "core/degradation.h"

#include <cassert>

namespace rave::core {

DegradationController::DegradationController()
    : DegradationController(Config{}) {}

DegradationController::DegradationController(const Config& config)
    : config_(config) {
  assert(!config_.ladder.empty());
}

bool DegradationController::OnFrameQp(double qp, Timestamp now) {
  if (qp >= config_.qp_high) {
    low_since_ = Timestamp::MinusInfinity();
    if (high_since_.IsMinusInfinity()) high_since_ = now;
    if (now - high_since_ >= config_.dwell &&
        level_ + 1 < config_.ladder.size()) {
      ++level_;
      high_since_ = Timestamp::MinusInfinity();
      return true;
    }
  } else if (qp <= config_.qp_low) {
    high_since_ = Timestamp::MinusInfinity();
    if (low_since_.IsMinusInfinity()) low_since_ = now;
    if (now - low_since_ >= config_.dwell && level_ > 0) {
      --level_;
      low_since_ = Timestamp::MinusInfinity();
      return true;
    }
  } else {
    high_since_ = Timestamp::MinusInfinity();
    low_since_ = Timestamp::MinusInfinity();
  }
  return false;
}

}  // namespace rave::core
