#include "core/adaptive_rate_control.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace rave::core {

namespace {
AdaptiveConfig Normalize(AdaptiveConfig c) {
  c.budget.fps = c.fps;
  return c;
}
}  // namespace

AdaptiveRateControl::AdaptiveRateControl(const AdaptiveConfig& config)
    : config_(Normalize(config)),
      allocator_(config_.budget),
      drop_detector_(config_.drop),
      pred_key_(/*gamma=*/0.9),
      pred_delta_(/*gamma=*/1.2),
      smoothed_capacity_kbps_(config_.steady_capacity_alpha) {
  state_.capacity = config_.initial_target;
}

void AdaptiveRateControl::OnNetworkUpdate(const NetworkObservation& obs) {
  state_ = tracker_.OnObservation(obs);
  const bool detected = drop_detector_.OnState(state_, obs.overuse_decrease);
  drop_active_ = config_.enable_drain_mode ? detected : false;

  // Steady state rides a smoothed capacity so the congestion controller's
  // sawtooth does not translate into visible QP oscillation; a detected drop
  // snaps to the instantaneous estimate (and resets the filter so recovery
  // starts from the dropped level, not the stale pre-drop average). The
  // snap is the "fast QP" mechanism: without it, the controller follows the
  // filtered estimate like a conventional encoder.
  if (drop_active_ && config_.enable_fast_qp) {
    smoothed_capacity_kbps_.Reset();
    smoothed_capacity_kbps_.Add(state_.capacity.kbps());
  } else {
    smoothed_capacity_kbps_.Add(state_.capacity.kbps());
    const DataRate smoothed =
        DataRate::KilobitsPerSecF(smoothed_capacity_kbps_.value());
    // Never budget above ~10% over the instantaneous estimate.
    state_.capacity = std::min(smoothed, state_.capacity * 1.1);
    state_.queue_delay = state_.backlog / state_.capacity;
  }
}

void AdaptiveRateControl::SetTargetRate(DataRate target) {
  // Minimal path used when no rich observation is available (e.g. codec
  // exploration tools): treat the target as the capacity with no backlog.
  if (target.bps() <= 0) return;
  state_.capacity = target;
}

codec::FrameGuidance AdaptiveRateControl::PlanFrame(
    const video::RawFrame& frame, codec::FrameType type, Timestamp now) {
  FrameBudget budget =
      allocator_.Allocate(state_, drop_active_, type, consecutive_skips_);
  RAVE_TRACE_COUNTER(kFrameBudgetKbits, now,
                     static_cast<double>(budget.target.bits()) / 1000.0);

  codec::FrameGuidance guidance;
  if (budget.skip && config_.enable_skip) {
    guidance.skip = true;
    return guidance;
  }

  const double pixels = static_cast<double>(frame.resolution.pixels());
  const double cplx_term = type == codec::FrameType::kKey
                               ? pixels * frame.spatial_complexity
                               : pixels * frame.temporal_complexity;
  codec::BitPredictor& pred =
      type == codec::FrameType::kKey ? pred_key_ : pred_delta_;

  double qscale = pred.QscaleForBits(cplx_term, budget.target);
  double qp = codec::QscaleToQp(qscale);

  if (last_qp_ > 0.0) {
    // Recovery hysteresis: quality comes back gradually.
    qp = std::max(qp, last_qp_ - config_.qp_down_step);
    if (!config_.enable_fast_qp || (!drop_active_ && type != codec::FrameType::kKey)) {
      // Without the fast path (or in calm steady state) QP also rises
      // slowly, like a conventional encoder.
      qp = std::min(qp, last_qp_ + config_.qp_up_step_steady);
    }
  }
  qp = std::clamp(qp, codec::kMinQp, codec::kMaxQp);

  guidance.qp = qp;
  if (config_.enable_frame_cap) {
    guidance.max_size = budget.cap;
  }
  return guidance;
}

void AdaptiveRateControl::OnFrameEncoded(const codec::FrameOutcome& outcome,
                                         Timestamp /*now*/) {
  if (outcome.skipped) {
    ++consecutive_skips_;
    return;
  }
  consecutive_skips_ = 0;
  codec::BitPredictor& pred = outcome.type == codec::FrameType::kKey
                                  ? pred_key_
                                  : pred_delta_;
  pred.Update(outcome.complexity_term, outcome.qscale, outcome.size);
  last_qp_ = outcome.qp;

  // Locally account for the bits we just committed: they will sit in the
  // pacer until the next observation refreshes the true queue. This keeps
  // back-to-back frame decisions consistent even between feedbacks.
  state_.backlog += outcome.size;
  state_.queue_delay = state_.backlog / state_.capacity;
}

}  // namespace rave::core
