// Send-side Google-Congestion-Control-style estimator: acknowledged-bitrate
// measurement + trendline delay gradient + AIMD, combined with the classic
// loss-based controller (cut on >10% loss, grow on <2%). The final target is
// the minimum of the delay-based and loss-based rates.
#pragma once

#include <deque>

#include "cc/aimd.h"
#include "cc/bwe.h"
#include "cc/inter_arrival.h"
#include "cc/trendline.h"
#include "util/stats.h"

namespace rave::cc {

/// Sliding-window throughput measurement over acked packets.
class AckedBitrateEstimator {
 public:
  explicit AckedBitrateEstimator(TimeDelta window = TimeDelta::Millis(500));

  void OnAckedPacket(Timestamp arrival, DataSize size);
  /// Throughput over the window ending at the newest ack; Zero until the
  /// window has at least ~100 ms of data.
  DataRate rate() const;

 private:
  TimeDelta window_;
  std::deque<std::pair<Timestamp, DataSize>> acked_;
  DataSize total_ = DataSize::Zero();
};

/// Classic GCC loss-based controller.
class LossBasedControl {
 public:
  struct Config {
    DataRate initial_rate = DataRate::KilobitsPerSec(1500);
    DataRate min_rate = DataRate::KilobitsPerSec(50);
    DataRate max_rate = DataRate::MegabitsPerSecF(20.0);
    double high_loss = 0.10;
    double low_loss = 0.02;
    /// Evaluation period; losses are aggregated over it.
    TimeDelta update_interval = TimeDelta::Millis(1000);
  };

  LossBasedControl();
  explicit LossBasedControl(const Config& config);

  void OnPacketResults(const std::vector<transport::PacketResult>& results,
                       Timestamp now);

  DataRate target() const { return current_; }
  /// Loss fraction of the last completed window.
  double loss_rate() const { return last_window_loss_; }

 private:
  Config config_;
  DataRate current_;
  Timestamp window_start_ = Timestamp::MinusInfinity();
  int64_t window_sent_ = 0;
  int64_t window_lost_ = 0;
  double last_window_loss_ = 0.0;
};

/// Full send-side estimator.
class GccEstimator : public BandwidthEstimator {
 public:
  struct Config {
    DataRate initial_rate = DataRate::KilobitsPerSec(1500);
    AimdRateControl::Config aimd;
    LossBasedControl::Config loss;
    TrendlineEstimator::Config trendline;
  };

  GccEstimator();
  explicit GccEstimator(const Config& config);

  void OnPacketResults(const std::vector<transport::PacketResult>& results,
                       Timestamp now) override;

  DataRate target() const override;
  double loss_rate() const override { return loss_.loss_rate(); }
  TimeDelta rtt() const override { return rtt_.has_value() ? *rtt_ : TimeDelta::Millis(100); }
  DataRate acked_rate() const override { return acked_.rate(); }
  std::string name() const override { return "gcc"; }

  /// Last congestion signal (the adaptive controller reads this to detect
  /// drops faster than the rate alone reveals).
  BandwidthUsage usage() const { return trendline_.state(); }
  /// True if the most recent update performed a multiplicative decrease.
  bool decreased_on_last_update() const {
    return aimd_.last_update_decreased();
  }

 private:
  Config config_;
  InterArrival inter_arrival_;
  TrendlineEstimator trendline_;
  AimdRateControl aimd_;
  LossBasedControl loss_;
  AckedBitrateEstimator acked_;
  std::optional<TimeDelta> rtt_;
};

}  // namespace rave::cc
