#include "cc/trendline.h"

#include <algorithm>
#include <cmath>

namespace rave::cc {

TrendlineEstimator::TrendlineEstimator() : TrendlineEstimator(Config{}) {}

TrendlineEstimator::TrendlineEstimator(const Config& config)
    : config_(config), threshold_(config.initial_threshold_ms) {}

BandwidthUsage TrendlineEstimator::OnDelta(const InterArrivalDelta& delta) {
  const double delta_ms =
      delta.arrival_delta.ms_float() - delta.send_delta.ms_float();
  ++num_deltas_;
  if (first_arrival_.IsMinusInfinity()) first_arrival_ = delta.arrival;

  accumulated_delay_ms_ += delta_ms;
  smoothed_delay_ms_ = config_.smoothing * smoothed_delay_ms_ +
                       (1.0 - config_.smoothing) * accumulated_delay_ms_;

  history_.emplace_back((delta.arrival - first_arrival_).ms_float(),
                        smoothed_delay_ms_);
  if (history_.size() > config_.window_size) history_.pop_front();

  if (history_.size() == config_.window_size) {
    const double trend = LinearFitSlope();
    Detect(trend, delta.arrival_delta, delta.arrival);
  }
  return state_;
}

double TrendlineEstimator::LinearFitSlope() const {
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (const auto& [x, y] : history_) {
    sum_x += x;
    sum_y += y;
  }
  const double n = static_cast<double>(history_.size());
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;
  double numerator = 0.0;
  double denominator = 0.0;
  for (const auto& [x, y] : history_) {
    numerator += (x - mean_x) * (y - mean_y);
    denominator += (x - mean_x) * (x - mean_x);
  }
  if (denominator <= 0.0) return 0.0;
  return numerator / denominator;
}

void TrendlineEstimator::UpdateThreshold(double modified_trend,
                                         Timestamp now) {
  if (last_threshold_update_.IsMinusInfinity()) {
    last_threshold_update_ = now;
  }
  // Large spikes (route changes etc.) must not inflate the threshold.
  if (std::fabs(modified_trend) > threshold_ + 15.0) {
    last_threshold_update_ = now;
    return;
  }
  const double k =
      std::fabs(modified_trend) < threshold_ ? config_.k_down : config_.k_up;
  const double time_delta_ms =
      std::min((now - last_threshold_update_).ms_float(), 100.0);
  threshold_ += k * (std::fabs(modified_trend) - threshold_) * time_delta_ms;
  threshold_ = std::clamp(threshold_, 6.0, 600.0);
  last_threshold_update_ = now;
}

void TrendlineEstimator::Detect(double trend, TimeDelta ts_delta,
                                Timestamp now) {
  const double modified_trend =
      std::min(num_deltas_, 60) * trend * config_.threshold_gain;
  modified_trend_ = modified_trend;

  if (modified_trend > threshold_) {
    if (time_over_using_ < TimeDelta::Zero()) {
      time_over_using_ = ts_delta / 2;
    } else {
      time_over_using_ += ts_delta;
    }
    ++overuse_counter_;
    if (time_over_using_ > config_.overuse_time_threshold &&
        overuse_counter_ > 1 && trend >= prev_trend_) {
      time_over_using_ = TimeDelta::Zero();
      overuse_counter_ = 0;
      state_ = BandwidthUsage::kOverusing;
    }
  } else if (modified_trend < -threshold_) {
    time_over_using_ = TimeDelta::Millis(-1);
    overuse_counter_ = 0;
    state_ = BandwidthUsage::kUnderusing;
  } else {
    time_over_using_ = TimeDelta::Millis(-1);
    overuse_counter_ = 0;
    state_ = BandwidthUsage::kNormal;
  }
  prev_trend_ = trend;
  UpdateThreshold(modified_trend, now);
}

}  // namespace rave::cc
