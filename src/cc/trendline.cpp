#include "cc/trendline.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "simd/kernels.h"

namespace rave::cc {

TrendlineEstimator::TrendlineEstimator() : TrendlineEstimator(Config{}) {}

TrendlineEstimator::TrendlineEstimator(const Config& config)
    : config_(config), threshold_(config.initial_threshold_ms) {
  assert(config_.window_size > 0 && config_.window_size <= kMaxWindow);
}

BandwidthUsage TrendlineEstimator::OnDelta(const InterArrivalDelta& delta) {
  const double delta_ms =
      delta.arrival_delta.ms_float() - delta.send_delta.ms_float();
  ++num_deltas_;
  if (first_arrival_.IsMinusInfinity()) first_arrival_ = delta.arrival;

  accumulated_delay_ms_ += delta_ms;
  smoothed_delay_ms_ = config_.smoothing * smoothed_delay_ms_ +
                       (1.0 - config_.smoothing) * accumulated_delay_ms_;

  // Push (arrival since first, smoothed delay); a full ring overwrites the
  // oldest sample in place (the deque's emplace_back + pop_front).
  const size_t cap = config_.window_size;
  size_t slot;
  if (hist_size_ < cap) {
    slot = hist_head_ + hist_size_;
    if (slot >= cap) slot -= cap;
    ++hist_size_;
  } else {
    slot = hist_head_;
    ++hist_head_;
    if (hist_head_ == cap) hist_head_ = 0;
  }
  hist_x_[slot] = (delta.arrival - first_arrival_).ms_float();
  hist_y_[slot] = smoothed_delay_ms_;

  if (hist_size_ == cap) {
    const double trend = LinearFitSlope();
    Detect(trend, delta.arrival_delta, delta.arrival);
  }
  return state_;
}

double TrendlineEstimator::LinearFitSlope() const {
  // Linearize oldest -> newest and delegate to the shared regression kernel
  // (the batched stepper runs the same kernel across lanes, bit-identically).
  double xs[kMaxWindow];
  double ys[kMaxWindow];
  const size_t cap = config_.window_size;
  for (size_t i = 0; i < hist_size_; ++i) {
    size_t j = hist_head_ + i;
    if (j >= cap) j -= cap;
    xs[i] = hist_x_[j];
    ys[i] = hist_y_[j];
  }
  return simd::FitSlope(xs, ys, hist_size_);
}

void TrendlineEstimator::UpdateThreshold(double modified_trend,
                                         Timestamp now) {
  if (last_threshold_update_.IsMinusInfinity()) {
    last_threshold_update_ = now;
  }
  // Large spikes (route changes etc.) must not inflate the threshold.
  if (std::fabs(modified_trend) > threshold_ + 15.0) {
    last_threshold_update_ = now;
    return;
  }
  const double k =
      std::fabs(modified_trend) < threshold_ ? config_.k_down : config_.k_up;
  const double time_delta_ms =
      std::min((now - last_threshold_update_).ms_float(), 100.0);
  threshold_ += k * (std::fabs(modified_trend) - threshold_) * time_delta_ms;
  threshold_ = std::clamp(threshold_, 6.0, 600.0);
  last_threshold_update_ = now;
}

void TrendlineEstimator::Detect(double trend, TimeDelta ts_delta,
                                Timestamp now) {
  const double modified_trend =
      std::min(num_deltas_, 60) * trend * config_.threshold_gain;
  modified_trend_ = modified_trend;

  if (modified_trend > threshold_) {
    if (time_over_using_ < TimeDelta::Zero()) {
      time_over_using_ = ts_delta / 2;
    } else {
      time_over_using_ += ts_delta;
    }
    ++overuse_counter_;
    if (time_over_using_ > config_.overuse_time_threshold &&
        overuse_counter_ > 1 && trend >= prev_trend_) {
      time_over_using_ = TimeDelta::Zero();
      overuse_counter_ = 0;
      state_ = BandwidthUsage::kOverusing;
    }
  } else if (modified_trend < -threshold_) {
    time_over_using_ = TimeDelta::Millis(-1);
    overuse_counter_ = 0;
    state_ = BandwidthUsage::kUnderusing;
  } else {
    time_over_using_ = TimeDelta::Millis(-1);
    overuse_counter_ = 0;
    state_ = BandwidthUsage::kNormal;
  }
  prev_trend_ = trend;
  UpdateThreshold(modified_trend, now);
}

}  // namespace rave::cc
