#include "cc/trendline_soa.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "simd/kernels.h"

namespace rave::cc {

TrendlineSoa::TrendlineSoa(const TrendlineEstimator::Config& config,
                           size_t lanes)
    : config_(config),
      lanes_(lanes),
      accumulated_delay_ms_(lanes, 0.0),
      smoothed_delay_ms_(lanes, 0.0),
      first_arrival_(lanes, Timestamp::MinusInfinity()),
      num_deltas_(lanes, 0),
      hist_x_(config.window_size * lanes, 0.0),
      hist_y_(config.window_size * lanes, 0.0),
      fit_x_(config.window_size * lanes, 0.0),
      fit_y_(config.window_size * lanes, 0.0),
      trend_(lanes, 0.0),
      threshold_(lanes, config.initial_threshold_ms),
      prev_trend_(lanes, 0.0),
      modified_trend_(lanes, 0.0),
      time_over_using_(lanes, TimeDelta::Millis(-1)),
      overuse_counter_(lanes, 0),
      last_threshold_update_(lanes, Timestamp::MinusInfinity()),
      state_(lanes, BandwidthUsage::kNormal) {
  assert(lanes > 0);
  assert(config_.window_size > 0 &&
         config_.window_size <= TrendlineEstimator::kMaxWindow);
}

void TrendlineSoa::OnDeltas(const InterArrivalDelta* deltas,
                            BandwidthUsage* states_out) {
  const size_t n = lanes_;
  const size_t cap = config_.window_size;

  // Push one sample per lane (TrendlineEstimator::OnDelta's ring update;
  // head/size advance once for the whole batch).
  size_t slot;
  if (hist_size_ < cap) {
    slot = hist_head_ + hist_size_;
    if (slot >= cap) slot -= cap;
    ++hist_size_;
  } else {
    slot = hist_head_;
    ++hist_head_;
    if (hist_head_ == cap) hist_head_ = 0;
  }
  double* row_x = hist_x_.data() + slot * n;
  double* row_y = hist_y_.data() + slot * n;
  for (size_t l = 0; l < n; ++l) {
    const InterArrivalDelta& delta = deltas[l];
    const double delta_ms =
        delta.arrival_delta.ms_float() - delta.send_delta.ms_float();
    ++num_deltas_[l];
    if (first_arrival_[l].IsMinusInfinity()) first_arrival_[l] = delta.arrival;

    accumulated_delay_ms_[l] += delta_ms;
    smoothed_delay_ms_[l] = config_.smoothing * smoothed_delay_ms_[l] +
                            (1.0 - config_.smoothing) *
                                accumulated_delay_ms_[l];

    row_x[l] = (delta.arrival - first_arrival_[l]).ms_float();
    row_y[l] = smoothed_delay_ms_[l];
  }

  if (hist_size_ == cap) {
    // Linearize oldest -> newest (same order the scalar fit sums in), then
    // one batched regression across every lane.
    for (size_t i = 0; i < cap; ++i) {
      size_t j = hist_head_ + i;
      if (j >= cap) j -= cap;
      std::memcpy(fit_x_.data() + i * n, hist_x_.data() + j * n,
                  n * sizeof(double));
      std::memcpy(fit_y_.data() + i * n, hist_y_.data() + j * n,
                  n * sizeof(double));
    }
    simd::FitSlopeLanes(fit_x_.data(), fit_y_.data(), cap, /*stride=*/n, n,
                        trend_.data());
    for (size_t l = 0; l < n; ++l) {
      DetectLane(l, trend_[l], deltas[l].arrival_delta, deltas[l].arrival);
    }
  }
  for (size_t l = 0; l < n; ++l) states_out[l] = state_[l];
}

void TrendlineSoa::UpdateThresholdLane(size_t lane, double modified_trend,
                                       Timestamp now) {
  if (last_threshold_update_[lane].IsMinusInfinity()) {
    last_threshold_update_[lane] = now;
  }
  if (std::fabs(modified_trend) > threshold_[lane] + 15.0) {
    last_threshold_update_[lane] = now;
    return;
  }
  const double k = std::fabs(modified_trend) < threshold_[lane]
                       ? config_.k_down
                       : config_.k_up;
  const double time_delta_ms =
      std::min((now - last_threshold_update_[lane]).ms_float(), 100.0);
  threshold_[lane] +=
      k * (std::fabs(modified_trend) - threshold_[lane]) * time_delta_ms;
  threshold_[lane] = std::clamp(threshold_[lane], 6.0, 600.0);
  last_threshold_update_[lane] = now;
}

void TrendlineSoa::DetectLane(size_t lane, double trend, TimeDelta ts_delta,
                              Timestamp now) {
  const double modified_trend =
      std::min(num_deltas_[lane], 60) * trend * config_.threshold_gain;
  modified_trend_[lane] = modified_trend;

  if (modified_trend > threshold_[lane]) {
    if (time_over_using_[lane] < TimeDelta::Zero()) {
      time_over_using_[lane] = ts_delta / 2;
    } else {
      time_over_using_[lane] += ts_delta;
    }
    ++overuse_counter_[lane];
    if (time_over_using_[lane] > config_.overuse_time_threshold &&
        overuse_counter_[lane] > 1 && trend >= prev_trend_[lane]) {
      time_over_using_[lane] = TimeDelta::Zero();
      overuse_counter_[lane] = 0;
      state_[lane] = BandwidthUsage::kOverusing;
    }
  } else if (modified_trend < -threshold_[lane]) {
    time_over_using_[lane] = TimeDelta::Millis(-1);
    overuse_counter_[lane] = 0;
    state_[lane] = BandwidthUsage::kUnderusing;
  } else {
    time_over_using_[lane] = TimeDelta::Millis(-1);
    overuse_counter_[lane] = 0;
    state_[lane] = BandwidthUsage::kNormal;
  }
  prev_trend_[lane] = trend;
  UpdateThresholdLane(lane, modified_trend, now);
}

}  // namespace rave::cc
