// Trendline over-use estimator, following WebRTC's TrendlineEstimator: a
// linear regression over the smoothed accumulated one-way-delay measures the
// queue-growth slope; an adaptive threshold (Kup/Kdown) turns the slope into
// normal / over-using / under-using signals for the AIMD controller.
#pragma once

#include <array>
#include <cstddef>

#include "cc/inter_arrival.h"
#include "util/time.h"

namespace rave::cc {

/// Congestion signal handed to the rate controller.
enum class BandwidthUsage { kNormal, kOverusing, kUnderusing };

class TrendlineEstimator {
 public:
  struct Config {
    size_t window_size = 20;
    double smoothing = 0.9;
    double threshold_gain = 4.0;
    double k_up = 0.0087;
    double k_down = 0.039;
    double initial_threshold_ms = 12.5;
    TimeDelta overuse_time_threshold = TimeDelta::Millis(10);
  };

  /// Upper bound on Config::window_size (the history ring is inline).
  static constexpr size_t kMaxWindow = 64;

  TrendlineEstimator();
  explicit TrendlineEstimator(const Config& config);

  /// Feeds one inter-group delta; returns the updated signal.
  BandwidthUsage OnDelta(const InterArrivalDelta& delta);

  BandwidthUsage state() const { return state_; }
  /// Latest modified trend (slope * gain * count), for diagnostics.
  double modified_trend() const { return modified_trend_; }
  double threshold() const { return threshold_; }

 private:
  double LinearFitSlope() const;
  void UpdateThreshold(double modified_trend, Timestamp now);
  void Detect(double trend, TimeDelta ts_delta, Timestamp now);

  Config config_;

  double accumulated_delay_ms_ = 0.0;
  double smoothed_delay_ms_ = 0.0;
  Timestamp first_arrival_ = Timestamp::MinusInfinity();
  /// (arrival time since first, smoothed delay) samples in a fixed-capacity
  /// flat ring — this is a per-arrival hot container, so no deque chunks
  /// (allocation-free) and a layout the SoA batch stepper can mirror.
  /// Oldest sample at hist_head_, newest at (hist_head_ + hist_size_ - 1).
  std::array<double, kMaxWindow> hist_x_;
  std::array<double, kMaxWindow> hist_y_;
  size_t hist_head_ = 0;
  size_t hist_size_ = 0;
  int num_deltas_ = 0;

  double threshold_;
  double prev_trend_ = 0.0;
  double modified_trend_ = 0.0;
  TimeDelta time_over_using_ = TimeDelta::Millis(-1);
  int overuse_counter_ = 0;
  Timestamp last_threshold_update_ = Timestamp::MinusInfinity();
  BandwidthUsage state_ = BandwidthUsage::kNormal;
};

}  // namespace rave::cc
