#include "cc/gcc.h"

#include <algorithm>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace rave::cc {

AckedBitrateEstimator::AckedBitrateEstimator(TimeDelta window)
    : window_(window) {}

void AckedBitrateEstimator::OnAckedPacket(Timestamp arrival, DataSize size) {
  acked_.emplace_back(arrival, size);
  total_ += size;
  while (!acked_.empty() && arrival - acked_.front().first > window_) {
    total_ -= acked_.front().second;
    acked_.pop_front();
  }
}

DataRate AckedBitrateEstimator::rate() const {
  if (acked_.size() < 2) return DataRate::Zero();
  const TimeDelta span = acked_.back().first - acked_.front().first;
  if (span < TimeDelta::Millis(100)) return DataRate::Zero();
  return total_ / span;
}

LossBasedControl::LossBasedControl() : LossBasedControl(Config{}) {}

LossBasedControl::LossBasedControl(const Config& config)
    : config_(config), current_(config.initial_rate) {}

void LossBasedControl::OnPacketResults(
    const std::vector<transport::PacketResult>& results, Timestamp now) {
  for (const transport::PacketResult& r : results) {
    ++window_sent_;
    if (!r.arrival) ++window_lost_;
  }
  if (window_start_.IsMinusInfinity()) {
    window_start_ = now;
    return;
  }
  if (now - window_start_ < config_.update_interval) return;

  const double loss =
      window_sent_ > 0
          ? static_cast<double>(window_lost_) / static_cast<double>(window_sent_)
          : 0.0;
  last_window_loss_ = loss;
  if (loss > config_.high_loss) {
    current_ = current_ * (1.0 - 0.5 * loss);
  } else if (loss < config_.low_loss) {
    current_ = current_ * 1.05;
  }
  current_ = std::clamp(current_, config_.min_rate, config_.max_rate);
  window_start_ = now;
  window_sent_ = 0;
  window_lost_ = 0;
}

namespace {
// The top-level initial rate wins over the sub-controller defaults so a
// caller setting only `initial_rate` gets consistent behaviour.
GccEstimator::Config Normalize(GccEstimator::Config c) {
  c.aimd.initial_rate = c.initial_rate;
  c.loss.initial_rate = c.initial_rate;
  return c;
}
}  // namespace

GccEstimator::GccEstimator() : GccEstimator(Config{}) {}

GccEstimator::GccEstimator(const Config& config)
    : config_(Normalize(config)),
      trendline_(config_.trendline),
      aimd_(config_.aimd),
      loss_(config_.loss) {}

void GccEstimator::OnPacketResults(
    const std::vector<transport::PacketResult>& results, Timestamp now) {
  if (results.empty()) return;

  BandwidthUsage usage = trendline_.state();
  for (const transport::PacketResult& r : results) {
    if (!r.arrival) continue;
    acked_.OnAckedPacket(*r.arrival, r.size);
    rtt_ = now - r.send_time;  // includes queueing, as in webrtc
    if (auto delta = inter_arrival_.OnPacket(r.send_time, *r.arrival)) {
      usage = trendline_.OnDelta(*delta);
    }
  }

  loss_.OnPacketResults(results, now);
  aimd_.Update(usage, acked_.rate(), rtt(), now);

  RAVE_TRACE_COUNTER(kBweTargetKbps, now, target().kbps());
  RAVE_TRACE_COUNTER(kTrendlineState, now,
                     static_cast<double>(trendline_.state()));
  RAVE_TRACE_COUNTER(kLossRate, now, loss_rate());
  if (obs::MetricsRegistry* reg = obs::CurrentMetrics()) {
    reg->GetCounter("cc.feedback_updates")->Add();
    if (usage == BandwidthUsage::kOverusing) {
      reg->GetCounter("cc.overuse_signals")->Add();
    }
  }
}

DataRate GccEstimator::target() const {
  return std::min(aimd_.target(), loss_.target());
}

}  // namespace rave::cc
