#include "cc/oracle.h"

namespace rave::cc {

OracleBwe::OracleBwe(const EventLoop& loop, Interned<net::CapacityTrace> trace,
                     double utilization)
    : loop_(loop),
      trace_(std::move(trace)),
      trace_cursor_(*trace_),
      utilization_(utilization) {}

void OracleBwe::OnPacketResults(
    const std::vector<transport::PacketResult>& results, Timestamp now) {
  int64_t lost = 0;
  for (const transport::PacketResult& r : results) {
    if (!r.arrival) {
      ++lost;
      continue;
    }
    acked_.OnAckedPacket(*r.arrival, r.size);
    rtt_ = now - r.send_time;
  }
  loss_rate_ = results.empty()
                   ? 0.0
                   : static_cast<double>(lost) /
                         static_cast<double>(results.size());
}

DataRate OracleBwe::target() const {
  return trace_cursor_.RateAt(loop_.now()) * utilization_;
}

}  // namespace rave::cc
