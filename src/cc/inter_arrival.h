// Inter-arrival delta computation, following WebRTC's InterArrival: packets
// are grouped into bursts by send time (5 ms windows) and the estimator
// receives (send-time delta, arrival-time delta) pairs between consecutive
// groups. Grouping suppresses the pacing jitter inside a burst that would
// otherwise swamp the one-way-delay trend.
#pragma once

#include <cstdint>
#include <optional>

#include "util/time.h"
#include "util/units.h"

namespace rave::cc {

/// One delta sample between consecutive packet groups.
struct InterArrivalDelta {
  TimeDelta send_delta;
  TimeDelta arrival_delta;
  /// Arrival time of the later group (regression x-axis).
  Timestamp arrival;
};

/// Stateful grouper. Feed packets in send order.
class InterArrival {
 public:
  explicit InterArrival(TimeDelta burst_window = TimeDelta::Millis(5));

  /// Adds a packet; returns a delta when it closes a group.
  std::optional<InterArrivalDelta> OnPacket(Timestamp send_time,
                                            Timestamp arrival_time);

  /// Drops all state (used after long gaps / stream restarts).
  void Reset();

 private:
  struct Group {
    Timestamp first_send = Timestamp::MinusInfinity();
    Timestamp last_send = Timestamp::MinusInfinity();
    Timestamp last_arrival = Timestamp::MinusInfinity();
  };

  TimeDelta burst_window_;
  std::optional<Group> current_;
  std::optional<Group> previous_;
};

}  // namespace rave::cc
