// AIMD rate controller, following WebRTC's AimdRateControl: multiplicative
// increase while probing for capacity, additive increase near the estimated
// link capacity, multiplicative decrease (beta = 0.85 of the measured
// throughput) on over-use.
#pragma once

#include <optional>

#include "cc/trendline.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::cc {

/// EWMA estimate of the link capacity with variance, used to decide
/// additive-vs-multiplicative increase (webrtc LinkCapacityEstimator).
class LinkCapacityEstimator {
 public:
  void OnOveruseDetected(DataRate acked);
  void Reset();

  bool has_estimate() const { return estimate_.has_value(); }
  DataRate estimate() const;
  /// Bounds: estimate +- 3 sigma.
  DataRate UpperBound() const;
  DataRate LowerBound() const;

 private:
  void Update(double sample_kbps, double alpha);

  std::optional<double> estimate_;  // kbps
  double deviation_kbps_ = 0.4;
};

class AimdRateControl {
 public:
  struct Config {
    DataRate initial_rate = DataRate::KilobitsPerSec(1500);
    DataRate min_rate = DataRate::KilobitsPerSec(50);
    DataRate max_rate = DataRate::MegabitsPerSecF(20.0);
    double beta = 0.85;
    /// Multiplicative growth per second while probing.
    double increase_factor_per_second = 1.08;
  };

  AimdRateControl();
  explicit AimdRateControl(const Config& config);

  /// Feeds the current congestion signal + measured acked throughput.
  /// Returns the updated target.
  DataRate Update(BandwidthUsage usage, DataRate acked, TimeDelta rtt,
                  Timestamp now);

  DataRate target() const { return current_; }

  /// True right after an over-use decrease (the signal the paper's adaptive
  /// controller keys drain-mode on).
  bool last_update_decreased() const { return last_update_decreased_; }

 private:
  enum class State { kHold, kIncrease, kDecrease };

  void ChangeState(BandwidthUsage usage);
  DataRate AdditiveIncrease(TimeDelta rtt, TimeDelta since_last) const;

  Config config_;
  DataRate current_;
  State state_ = State::kIncrease;
  LinkCapacityEstimator link_capacity_;
  Timestamp last_change_ = Timestamp::MinusInfinity();
  Timestamp last_decrease_ = Timestamp::MinusInfinity();
  bool last_update_decreased_ = false;
};

}  // namespace rave::cc
