// Bandwidth estimator interface. The sender feeds every resolved feedback
// report (packet results with send/arrival times and losses) to one of these;
// the resulting target rate drives both the pacer and the encoder.
#pragma once

#include <string>
#include <vector>

#include "transport/feedback.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::cc {

/// Common interface for `GccEstimator` (the real thing) and `OracleBwe`
/// (ablation upper bound fed by ground truth).
class BandwidthEstimator {
 public:
  virtual ~BandwidthEstimator() = default;

  /// Consumes one feedback report's resolved packet results.
  virtual void OnPacketResults(
      const std::vector<transport::PacketResult>& results, Timestamp now) = 0;

  /// Current bitrate target for the encoder/pacer.
  virtual DataRate target() const = 0;

  /// Loss fraction observed over the recent window, in [0,1].
  virtual double loss_rate() const = 0;

  /// Smoothed round-trip time estimate (propagation + queueing).
  virtual TimeDelta rtt() const = 0;

  /// Throughput actually acknowledged over the recent window. Zero until
  /// enough data arrives.
  virtual DataRate acked_rate() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace rave::cc
