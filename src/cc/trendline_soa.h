// Structure-of-arrays mirror of `TrendlineEstimator` for the batched session
// stepper: N lanes advance through one inter-group delta per call, with the
// per-lane linear regressions evaluated as one batched `FitSlopeLanes`
// kernel over lane-interleaved history rings.
//
// Bit-identity contract: lane `l` produces exactly the state trajectory a
// scalar `TrendlineEstimator` fed the same deltas produces (the regression
// kernel is bit-identical across scalar/AVX2 backends, and every other
// update mirrors the scalar class expression for expression). The batch
// shares one ring head/size because every lane receives exactly one delta
// per step — the uniform cadence the batched stepper runs at.
#pragma once

#include <cstddef>
#include <vector>

#include "cc/trendline.h"

namespace rave::cc {

class TrendlineSoa {
 public:
  TrendlineSoa(const TrendlineEstimator::Config& config, size_t lanes);

  /// Feeds one delta per lane and writes the per-lane usage signal.
  void OnDeltas(const InterArrivalDelta* deltas, BandwidthUsage* states_out);

  BandwidthUsage state(size_t lane) const { return state_[lane]; }
  double threshold(size_t lane) const { return threshold_[lane]; }
  double modified_trend(size_t lane) const { return modified_trend_[lane]; }

 private:
  void DetectLane(size_t lane, double trend, TimeDelta ts_delta,
                  Timestamp now);
  void UpdateThresholdLane(size_t lane, double modified_trend, Timestamp now);

  TrendlineEstimator::Config config_;
  size_t lanes_;

  std::vector<double> accumulated_delay_ms_;
  std::vector<double> smoothed_delay_ms_;
  std::vector<Timestamp> first_arrival_;
  std::vector<int> num_deltas_;

  /// Lane-interleaved rings: sample slot `s` of lane `l` lives at
  /// `hist_*_[s * lanes_ + l]`. Head/size are shared across the batch
  /// (one delta per lane per step).
  std::vector<double> hist_x_;
  std::vector<double> hist_y_;
  size_t hist_head_ = 0;
  size_t hist_size_ = 0;

  /// Linearized (oldest -> newest) window scratch for the batched fit.
  std::vector<double> fit_x_;
  std::vector<double> fit_y_;
  std::vector<double> trend_;

  std::vector<double> threshold_;
  std::vector<double> prev_trend_;
  std::vector<double> modified_trend_;
  std::vector<TimeDelta> time_over_using_;
  std::vector<int> overuse_counter_;
  std::vector<Timestamp> last_threshold_update_;
  std::vector<BandwidthUsage> state_;
};

}  // namespace rave::cc
