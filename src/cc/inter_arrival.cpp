#include "cc/inter_arrival.h"

namespace rave::cc {

InterArrival::InterArrival(TimeDelta burst_window)
    : burst_window_(burst_window) {}

void InterArrival::Reset() {
  current_.reset();
  previous_.reset();
}

std::optional<InterArrivalDelta> InterArrival::OnPacket(
    Timestamp send_time, Timestamp arrival_time) {
  if (!current_) {
    current_ = Group{send_time, send_time, arrival_time};
    return std::nullopt;
  }

  const bool new_group = send_time > current_->first_send + burst_window_;
  if (!new_group) {
    current_->last_send = std::max(current_->last_send, send_time);
    current_->last_arrival = std::max(current_->last_arrival, arrival_time);
    return std::nullopt;
  }

  std::optional<InterArrivalDelta> delta;
  if (previous_) {
    delta = InterArrivalDelta{
        .send_delta = current_->last_send - previous_->last_send,
        .arrival_delta = current_->last_arrival - previous_->last_arrival,
        .arrival = current_->last_arrival,
    };
  }
  previous_ = current_;
  current_ = Group{send_time, send_time, arrival_time};
  return delta;
}

}  // namespace rave::cc
