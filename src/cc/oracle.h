// Oracle bandwidth estimator: reads the ground-truth capacity trace directly
// (scaled by a utilization factor). Used as an ablation upper bound — it
// isolates how much of the baseline's latency comes from estimation lag
// versus encoder rate-control lag.
#pragma once

#include "cc/bwe.h"
#include "cc/gcc.h"
#include "net/capacity_trace.h"
#include "sim/event_loop.h"
#include "util/interned.h"

namespace rave::cc {

class OracleBwe : public BandwidthEstimator {
 public:
  /// `utilization` scales the true capacity (RTC stacks target ~85-95% to
  /// leave queue headroom). The trace is shared, not copied.
  OracleBwe(const EventLoop& loop, Interned<net::CapacityTrace> trace,
            double utilization = 0.95);

  void OnPacketResults(const std::vector<transport::PacketResult>& results,
                       Timestamp now) override;

  DataRate target() const override;
  double loss_rate() const override { return loss_rate_; }
  TimeDelta rtt() const override { return rtt_; }
  DataRate acked_rate() const override { return acked_.rate(); }
  std::string name() const override { return "oracle"; }

 private:
  const EventLoop& loop_;
  Interned<net::CapacityTrace> trace_;
  /// target() reads the clock, which only moves forward.
  mutable net::CapacityTrace::Cursor trace_cursor_;
  double utilization_;
  AckedBitrateEstimator acked_;
  TimeDelta rtt_ = TimeDelta::Millis(100);
  double loss_rate_ = 0.0;
};

}  // namespace rave::cc
