#include "cc/aimd.h"

#include <algorithm>
#include <cmath>

#include "simd/vmath.h"

namespace rave::cc {

void LinkCapacityEstimator::Update(double sample_kbps, double alpha) {
  if (!estimate_) {
    estimate_ = sample_kbps;
  } else {
    *estimate_ = (1.0 - alpha) * *estimate_ + alpha * sample_kbps;
  }
  // Normalized variance tracking as in webrtc (scaled by estimate).
  const double error = *estimate_ - sample_kbps;
  const double norm = std::max(*estimate_, 1.0);
  deviation_kbps_ =
      (1.0 - alpha) * deviation_kbps_ + alpha * error * error / norm;
  deviation_kbps_ = std::clamp(deviation_kbps_, 0.4, 2.5);
}

void LinkCapacityEstimator::OnOveruseDetected(DataRate acked) {
  Update(acked.kbps(), 0.05);
}

void LinkCapacityEstimator::Reset() {
  estimate_.reset();
  deviation_kbps_ = 0.4;
}

DataRate LinkCapacityEstimator::estimate() const {
  return DataRate::KilobitsPerSecF(estimate_.value_or(0.0));
}

DataRate LinkCapacityEstimator::UpperBound() const {
  if (!estimate_) return DataRate::PlusInfinity();
  const double sigma = std::sqrt(deviation_kbps_ * *estimate_);
  return DataRate::KilobitsPerSecF(*estimate_ + 3.0 * sigma);
}

DataRate LinkCapacityEstimator::LowerBound() const {
  if (!estimate_) return DataRate::Zero();
  const double sigma = std::sqrt(deviation_kbps_ * *estimate_);
  return DataRate::KilobitsPerSecF(std::max(0.0, *estimate_ - 3.0 * sigma));
}

AimdRateControl::AimdRateControl() : AimdRateControl(Config{}) {}

AimdRateControl::AimdRateControl(const Config& config)
    : config_(config), current_(config.initial_rate) {}

void AimdRateControl::ChangeState(BandwidthUsage usage) {
  switch (usage) {
    case BandwidthUsage::kOverusing:
      state_ = State::kDecrease;
      break;
    case BandwidthUsage::kUnderusing:
      // The queue built during over-use is draining; hold until it empties.
      state_ = State::kHold;
      break;
    case BandwidthUsage::kNormal:
      if (state_ == State::kHold) state_ = State::kIncrease;
      break;
  }
}

DataRate AimdRateControl::AdditiveIncrease(TimeDelta rtt,
                                           TimeDelta since_last) const {
  // One average packet per response interval (rtt + 100 ms), as in webrtc.
  const TimeDelta response = rtt + TimeDelta::Millis(100);
  const double packets_per_frame =
      std::max(current_.bps() / 30.0 / (1200.0 * 8.0), 1.0);
  const double packet_bits = std::min(
      current_.bps() / 30.0 / packets_per_frame, 1200.0 * 8.0);
  const double increase_per_second =
      std::max(1000.0, packet_bits / response.seconds());
  return DataRate::BitsPerSec(
      static_cast<int64_t>(increase_per_second * since_last.seconds()));
}

DataRate AimdRateControl::Update(BandwidthUsage usage, DataRate acked,
                                 TimeDelta rtt, Timestamp now) {
  ChangeState(usage);
  last_update_decreased_ = false;

  const TimeDelta since_last = last_change_.IsMinusInfinity()
                                   ? TimeDelta::Millis(50)
                                   : std::min(now - last_change_,
                                              TimeDelta::Seconds(1));

  switch (state_) {
    case State::kHold:
      break;
    case State::kDecrease: {
      // Decrease toward beta * measured throughput, but never below it:
      // once the target is at/below what the network demonstrably delivers,
      // further over-use signals reflect the still-draining queue, not a
      // lower capacity (webrtc guards the same way).
      if (acked.bps() > 0) {
        const DataRate floor = acked * config_.beta;
        if (current_ > floor) {
          link_capacity_.OnOveruseDetected(acked);
          current_ = floor;
          last_update_decreased_ = true;
          last_decrease_ = now;
        }
      } else if (last_decrease_.IsMinusInfinity() ||
                 now - last_decrease_ > TimeDelta::Millis(300)) {
        // No throughput measurement (e.g. sender starved): back off
        // multiplicatively, but at most once per 300 ms.
        current_ = current_ * config_.beta;
        last_update_decreased_ = true;
        last_decrease_ = now;
      }
      state_ = State::kHold;
      break;
    }
    case State::kIncrease: {
      // Throughput above the remembered capacity band means the estimate is
      // stale (e.g. it was learned during a fault or outage): forget it and
      // probe multiplicatively again (webrtc resets the same way).
      if (link_capacity_.has_estimate() &&
          acked > link_capacity_.UpperBound()) {
        link_capacity_.Reset();
      }
      // Near the estimated link capacity: probe gently (additive). Beyond
      // it, grow multiplicatively; the acked ceiling below bounds overshoot,
      // so the stale estimate must not pin the rate (that deadlocks an
      // application-limited sender that never triggers over-use).
      const bool near_capacity =
          link_capacity_.has_estimate() &&
          current_ > link_capacity_.LowerBound() &&
          current_ < link_capacity_.UpperBound();
      if (near_capacity) {
        current_ = current_ + AdditiveIncrease(rtt, since_last);
      } else {
        const double factor = simd::PowS(config_.increase_factor_per_second,
                                         since_last.seconds());
        current_ = current_ * factor;
      }
      // Do not run far beyond what the network demonstrably delivers.
      if (acked.bps() > 0) {
        const DataRate ceiling = acked * 1.5 + DataRate::KilobitsPerSec(10);
        current_ = std::min(current_, ceiling);
      }
      break;
    }
  }

  current_ = std::clamp(current_, config_.min_rate, config_.max_rate);
  last_change_ = now;
  return current_;
}

}  // namespace rave::cc
