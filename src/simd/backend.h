// Internal entry points of the AVX2 backend (vmath_avx2.cpp, compiled with
// -mavx2). Only present when the build has RAVE_SIMD=ON; dispatchers guard
// every call with the same preprocessor condition.
#pragma once

#include <cstddef>

namespace rave::simd::internal {

#if RAVE_SIMD_AVX2
void Exp2Avx2(const double* x, double* out, size_t n);
void Log2Avx2(const double* x, double* out, size_t n);
void ExpAvx2(const double* x, double* out, size_t n);
void PowAvx2(const double* x, const double* y, double* out, size_t n);
void PowScalarExpAvx2(const double* x, double y, double* out, size_t n);
void FitSlopeLanesAvx2(const double* xs, const double* ys, size_t window,
                       size_t stride, size_t lanes, double* out);
#endif

}  // namespace rave::simd::internal
