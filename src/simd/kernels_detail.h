// Scalar reference for the domain kernels; same rules as vmath_detail.h
// (private to src/simd TUs, -ffp-contract=off, plain mul/add only).
#pragma once

#include <cstddef>

namespace rave::simd::detail {

/// OLS slope over n samples taken at x[i*stride], y[i*stride].
inline double FitSlopeStrided(const double* x, const double* y, size_t n,
                              size_t stride) {
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum_x += x[i * stride];
    sum_y += y[i * stride];
  }
  const double count = static_cast<double>(n);
  const double mean_x = sum_x / count;
  const double mean_y = sum_y / count;
  double numerator = 0.0;
  double denominator = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i * stride] - mean_x;
    const double dy = y[i * stride] - mean_y;
    numerator += dx * dy;
    denominator += dx * dx;
  }
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

}  // namespace rave::simd::detail
