// Runtime SIMD dispatch for the batched kernels in rave::simd.
//
// The level is resolved once on first use — CPUID probe, clamped by the
// RAVE_SIMD environment variable ("off"/"scalar" force the reference
// backend; "auto"/"avx2" accept the probe) — and cached. SetLevel() exists
// for tools and tests (--simd=scalar) that flip the backend per process.
//
// Whatever the level, every kernel produces bit-identical results (see
// vmath.h); dispatch is purely a speed choice, which is what makes it safe
// to decide per process without perturbing a single simulation output.
#pragma once

namespace rave::simd {

enum class Level { kScalar = 0, kAvx2 = 1 };

/// True when the AVX2 backend was compiled in (cmake -DRAVE_SIMD=ON).
bool Avx2CompiledIn();

/// Best level supported by this build AND this CPU. Ignores overrides.
Level DetectedLevel();

/// Level the kernels currently dispatch to.
Level ActiveLevel();

/// Overrides the active level, clamped to DetectedLevel() (asking for AVX2
/// on a scalar-only build/CPU installs scalar). Returns what was installed.
Level SetLevel(Level level);

/// Parses "off" / "scalar" (→ kScalar) or "auto" / "avx2" (→ kAvx2),
/// case-insensitive. Returns false on anything else.
bool ParseLevel(const char* text, Level* out);

const char* ToString(Level level);

}  // namespace rave::simd
