// Batched domain kernels for the SoA session stepper. Same bit-identity
// contract as vmath.h: every kernel is element-wise per lane and every
// backend runs the identical operation sequence, so results match the
// scalar reference bit-for-bit at any SIMD level.
#pragma once

#include <cstddef>

namespace rave::simd {

/// Ordinary-least-squares slope of y over x: two passes (sums, then
/// mean-centered products), plain mul/add, 0.0 when the denominator is
/// degenerate — the exact operation sequence of
/// TrendlineEstimator::LinearFitSlope, which delegates here.
double FitSlope(const double* x, const double* y, size_t n);

/// FitSlope across `lanes` independent series stored index-major: element
/// (i, lane) lives at [i * stride + lane]. out[lane] is bit-identical to
/// FitSlope over lane's series.
void FitSlopeLanes(const double* xs, const double* ys, size_t window,
                   size_t stride, size_t lanes, double* out);

}  // namespace rave::simd
