#include "simd/vmath.h"

#include "simd/backend.h"
#include "simd/dispatch.h"
#include "simd/vmath_detail.h"

namespace rave::simd {

void Exp2(const double* x, double* out, size_t n) {
#if RAVE_SIMD_AVX2
  if (ActiveLevel() == Level::kAvx2) {
    internal::Exp2Avx2(x, out, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = detail::Exp2Ref(x[i]);
}

void Log2(const double* x, double* out, size_t n) {
#if RAVE_SIMD_AVX2
  if (ActiveLevel() == Level::kAvx2) {
    internal::Log2Avx2(x, out, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = detail::Log2Ref(x[i]);
}

void Exp(const double* x, double* out, size_t n) {
#if RAVE_SIMD_AVX2
  if (ActiveLevel() == Level::kAvx2) {
    internal::ExpAvx2(x, out, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = detail::ExpRef(x[i]);
}

void Pow(const double* x, const double* y, double* out, size_t n) {
#if RAVE_SIMD_AVX2
  if (ActiveLevel() == Level::kAvx2) {
    internal::PowAvx2(x, y, out, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = detail::PowRef(x[i], y[i]);
}

void PowScalarExp(const double* x, double y, double* out, size_t n) {
#if RAVE_SIMD_AVX2
  if (ActiveLevel() == Level::kAvx2) {
    internal::PowScalarExpAvx2(x, y, out, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = detail::PowRef(x[i], y);
}

double Exp2S(double x) { return detail::Exp2Ref(x); }
double Log2S(double x) { return detail::Log2Ref(x); }
double ExpS(double x) { return detail::ExpRef(x); }
double PowS(double x, double y) { return detail::PowRef(x, y); }

}  // namespace rave::simd
