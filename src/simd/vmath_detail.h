// Scalar reference kernels for rave::simd — the definition of correctness
// for every vector backend: an AVX2 kernel must execute the exact same
// IEEE-754 operation sequence per lane so results are bit-identical at
// every SIMD level. Plain mul/add throughout (no std::fma): the fallback
// must stay fast and identical on CPUs without FMA, so the vector backends
// use separate mul/add too.
//
// Private to src/simd TUs, which are all compiled with -ffp-contract=off;
// do not include elsewhere (a contracting TU would compute different bits).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace rave::simd::detail {

// --- exp2 ---------------------------------------------------------------
// 2^x = 2^k * 2^r with k = nearbyint(x) and r in [-0.5, 0.5]: degree-12
// Taylor expansion of 2^r (coefficients ln2^i / i!, correctly rounded;
// truncation < 1e-16 relative over the reduced range).
inline constexpr double kExp2C[13] = {
    0x1.0000000000000p+0,  // 1
    0x1.62e42fefa39efp-1,  // ln2
    0x1.ebfbdff82c58fp-3,  0x1.c6b08d704a0c0p-5,  0x1.3b2ab6fba4e77p-7,
    0x1.5d87fe78a6731p-10, 0x1.430912f86c787p-13, 0x1.ffcbfc588b0c7p-17,
    0x1.62c0223a5c824p-20, 0x1.b5253d395e7c4p-24, 0x1.e4cf5158b8ecap-28,
    0x1.e8cac7351bb25p-32, 0x1.c3bd650fc2986p-36,
};

// 1.5 * 2^52. Adding then subtracting it rounds |x| <= 2^51 to the nearest
// integer (ties to even), and the low bits of the intermediate sum hold
// that integer in two's complement: bits(kRoundBias + k) = kRoundBiasBits
// + k. Both the scalar and vector backends extract k that way.
inline constexpr double kRoundBias = 0x1.8p52;
inline constexpr int64_t kRoundBiasBits = 0x4338000000000000;

inline double Exp2Poly(double r) {
  double p = kExp2C[12];
  for (int i = 11; i >= 0; --i) p = p * r + kExp2C[i];
  return p;
}

/// Full-range 2^x. The [[likely]] path (k in [-1021, 1023], result normal)
/// is the one the vector backend replicates; everything else — overflow,
/// subnormal results, NaN — is a "slow lane" both backends route here.
inline double Exp2Ref(double x) {
  if (!(x < 1024.0)) {  // +inf, NaN, or guaranteed overflow
    return std::isnan(x) ? x : std::numeric_limits<double>::infinity();
  }
  if (x < -1075.0) return 0.0;  // guaranteed underflow to zero
  const double biased = x + kRoundBias;
  const double kd = biased - kRoundBias;
  const double p = Exp2Poly(x - kd);
  const int64_t k = std::bit_cast<int64_t>(biased) - kRoundBiasBits;
  if (k >= -1021 && k <= 1023) [[likely]] {
    // Exact scale by 2^k built from exponent bits.
    return p * std::bit_cast<double>(static_cast<uint64_t>(k + 1023) << 52);
  }
  return std::ldexp(p, static_cast<int>(k));
}

// --- log2 ---------------------------------------------------------------
// x = 2^e * m with m in [sqrt2/2, sqrt2): log2(m) = s * poly(s^2) where
// s = (m-1)/(m+1) and poly coefficients are (2/ln2)/(2k+1), degree 10 in
// s^2 (|s| <= (sqrt2-1)/(sqrt2+1) ~ 0.1716 keeps truncation < 1e-18).
inline constexpr double kLog2C[11] = {
    0x1.71547652b82fep+1,  // 2/ln2
    0x1.ec709dc3a03fdp-1, 0x1.2776c50ef9bfep-1, 0x1.a61762a7aded9p-2,
    0x1.484b13d7c02a9p-2, 0x1.0c9a84994022dp-2, 0x1.c68f568d31760p-3,
    0x1.89f3b1694cffep-3, 0x1.5b9ac9b743f0dp-3, 0x1.3703c1f4d0ffep-3,
    0x1.1964ec6fc9491p-3,
};

inline constexpr double kSqrt2 = 0x1.6a09e667f3bcdp+0;
inline constexpr uint64_t kMantissaMask = 0x000FFFFFFFFFFFFFull;
inline constexpr uint64_t kOneBits = 0x3FF0000000000000ull;
// Bits of 2^52: OR-ing a small non-negative integer into them yields the
// double 2^52 + n, so (that value) - (2^52 + 1023) = n - 1023 exactly.
// The vector backend converts exponent fields to doubles this way.
inline constexpr int64_t kExpMagicBits = 0x4330000000000000;
inline constexpr double kExpMagicSub = 0x1p52 + 1023.0;

/// log2 of a normal positive x whose raw bits are `bits`, with `e` holding
/// its unbiased exponent as a double. Shared by the fast path and the
/// denormal slow path (which rescales first).
inline double Log2Normal(uint64_t bits, double e) {
  double m = std::bit_cast<double>((bits & kMantissaMask) | kOneBits);
  if (m >= kSqrt2) {
    m *= 0.5;
    e += 1.0;
  }
  const double s = (m - 1.0) / (m + 1.0);
  const double z = s * s;
  double p = kLog2C[10];
  for (int i = 9; i >= 0; --i) p = p * z + kLog2C[i];
  return s * p + e;
}

inline double Log2Slow(double x) {
  if (std::isnan(x)) return x;
  if (x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  if (std::isinf(x)) return x;
  // Positive denormal: rescale into the normal range and recurse once.
  const double xs = x * 0x1p54;
  const uint64_t bits = std::bit_cast<uint64_t>(xs);
  const double e =
      static_cast<double>(static_cast<int64_t>(bits >> 52)) - 1023.0 - 54.0;
  return Log2Normal(bits, e);
}

inline double Log2Ref(double x) {
  const uint64_t bits = std::bit_cast<uint64_t>(x);
  const uint64_t expf = (bits >> 52) & 0x7FF;
  if (x > 0.0 && expf != 0 && expf != 0x7FF) [[likely]] {
    const double e = static_cast<double>(static_cast<int64_t>(expf)) - 1023.0;
    return Log2Normal(bits, e);
  }
  return Log2Slow(x);
}

// --- exp / pow ----------------------------------------------------------

inline constexpr double kLog2E = 0x1.71547652b82fep+0;

inline double ExpRef(double x) { return Exp2Ref(x * kLog2E); }

/// x^y as 2^(y*log2 x). Negative bases return NaN by design (the simulator
/// has none); x==1 and y==0 return exactly 1.0 like std::pow.
inline double PowRef(double x, double y) {
  if (y == 0.0 || x == 1.0) return 1.0;
  if (x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  return Exp2Ref(Log2Ref(x) * y);
}

}  // namespace rave::simd::detail
