#include "simd/kernels.h"

#include "simd/backend.h"
#include "simd/dispatch.h"
#include "simd/kernels_detail.h"

namespace rave::simd {

double FitSlope(const double* x, const double* y, size_t n) {
  return detail::FitSlopeStrided(x, y, n, 1);
}

void FitSlopeLanes(const double* xs, const double* ys, size_t window,
                   size_t stride, size_t lanes, double* out) {
#if RAVE_SIMD_AVX2
  if (ActiveLevel() == Level::kAvx2) {
    internal::FitSlopeLanesAvx2(xs, ys, window, stride, lanes, out);
    return;
  }
#endif
  for (size_t lane = 0; lane < lanes; ++lane) {
    out[lane] = detail::FitSlopeStrided(xs + lane, ys + lane, window, stride);
  }
}

}  // namespace rave::simd
