// Batched transcendental kernels with a strict bit-identity contract.
//
// Every kernel is element-wise — out[i] depends only on the inputs at lane
// i — and every backend executes the same IEEE-754 operation sequence per
// lane, so scalar and AVX2 results are bit-identical (simd_vmath_test
// verifies this exhaustively, denormals and specials included). That
// contract is what lets the batched session stepper mix vector kernels with
// per-lane scalar fallbacks (divergent branches, tail lanes, batch=1)
// without perturbing a single session trajectory.
//
// Accuracy: within a few ulp of correctly rounded across the simulator's
// domain. These are NOT libm — results may differ from std::pow/exp/log2 in
// the last ulps, identically on every platform and at every SIMD level.
// Pow(x, y) returns NaN for x < 0 (the simulator has no negative bases).
//
// The kernels assume the default FP environment (round-to-nearest-even,
// no denormal flushing); nothing in the simulator changes it.
#pragma once

#include <cstddef>

namespace rave::simd {

/// out[i] = 2^x[i]
void Exp2(const double* x, double* out, size_t n);
/// out[i] = log2(x[i])
void Log2(const double* x, double* out, size_t n);
/// out[i] = e^x[i]
void Exp(const double* x, double* out, size_t n);
/// out[i] = x[i]^y[i] (NaN for negative bases)
void Pow(const double* x, const double* y, double* out, size_t n);
/// out[i] = x[i]^y — bitwise the same lanes as Pow with y broadcast.
void PowScalarExp(const double* x, double y, double* out, size_t n);

/// Single-value forms. Always the scalar reference kernel, out-of-line, so
/// every call site in every TU (whatever its optimization or contraction
/// flags) computes identical bits — and identical to the batched kernels.
double Exp2S(double x);
double Log2S(double x);
double ExpS(double x);
double PowS(double x, double y);

}  // namespace rave::simd
