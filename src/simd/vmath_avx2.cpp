// AVX2 backend. Every vector body mirrors its scalar reference in
// vmath_detail.h operation-for-operation (mul for mul, add for add, same
// rounding trick, same polynomial order), so fast-path lanes are bitwise
// equal to the scalar kernel; lanes that fail a fast-path predicate
// (specials, overflow, denormals) are recomputed with the scalar reference
// itself. No FMA anywhere — the scalar reference can't use it on baseline
// x86-64, and bit-identity beats the last bit of throughput here.
//
// This TU is compiled with -mavx2 -ffp-contract=off and must contain no
// code reachable before dispatch (see backend.h).
#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <limits>

#include "simd/backend.h"
#include "simd/kernels_detail.h"
#include "simd/vmath_detail.h"

namespace rave::simd::internal {
namespace {

/// 2^x for four lanes. `ok` lanes hold the exact Exp2Ref fast-path value;
/// other lanes are garbage the caller must replace with Exp2Ref.
inline __m256d Exp2Body(__m256d x, __m256d* ok) {
  const __m256d bias = _mm256_set1_pd(detail::kRoundBias);
  const __m256d biased = _mm256_add_pd(x, bias);
  const __m256d kd = _mm256_sub_pd(biased, bias);
  const __m256d r = _mm256_sub_pd(x, kd);
  __m256d p = _mm256_set1_pd(detail::kExp2C[12]);
  for (int i = 11; i >= 0; --i) {
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(detail::kExp2C[i]));
  }
  // Fast lanes: k in [-1021, 1023], i.e. 2^k is a normal double and the
  // round-bias bit trick below is valid. NaN/inf lanes fail both compares.
  *ok = _mm256_and_pd(
      _mm256_cmp_pd(kd, _mm256_set1_pd(-1021.0), _CMP_GE_OQ),
      _mm256_cmp_pd(kd, _mm256_set1_pd(1023.0), _CMP_LE_OQ));
  const __m256i k = _mm256_sub_epi64(_mm256_castpd_si256(biased),
                                     _mm256_set1_epi64x(detail::kRoundBiasBits));
  const __m256i ke = _mm256_add_epi64(k, _mm256_set1_epi64x(1023));
  const __m256d scale = _mm256_castsi256_pd(_mm256_slli_epi64(ke, 52));
  return _mm256_mul_pd(p, scale);
}

/// log2(x) for four lanes; `ok` lanes (positive, normal, finite x) hold the
/// exact Log2Ref fast-path value.
inline __m256d Log2Body(__m256d x, __m256d* ok) {
  const __m256i bits = _mm256_castpd_si256(x);
  const __m256i expf = _mm256_and_si256(_mm256_srli_epi64(bits, 52),
                                        _mm256_set1_epi64x(0x7FF));
  const __m256i special = _mm256_or_si256(
      _mm256_cmpeq_epi64(expf, _mm256_setzero_si256()),
      _mm256_cmpeq_epi64(expf, _mm256_set1_epi64x(0x7FF)));
  *ok = _mm256_andnot_pd(_mm256_castsi256_pd(special),
                         _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_GT_OQ));
  // e = expf - 1023 via the 2^52 magic bias (exact; matches the scalar
  // integer cast bit-for-bit).
  __m256d e = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(expf, _mm256_set1_epi64x(detail::kExpMagicBits))),
      _mm256_set1_pd(detail::kExpMagicSub));
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits,
                       _mm256_set1_epi64x(static_cast<int64_t>(
                           detail::kMantissaMask))),
      _mm256_set1_epi64x(static_cast<int64_t>(detail::kOneBits))));
  const __m256d big =
      _mm256_cmp_pd(m, _mm256_set1_pd(detail::kSqrt2), _CMP_GE_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), big);
  e = _mm256_add_pd(e, _mm256_and_pd(big, _mm256_set1_pd(1.0)));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d s =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d z = _mm256_mul_pd(s, s);
  __m256d p = _mm256_set1_pd(detail::kLog2C[10]);
  for (int i = 9; i >= 0; --i) {
    p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(detail::kLog2C[i]));
  }
  return _mm256_add_pd(_mm256_mul_pd(s, p), e);
}

inline unsigned SlowMask(__m256d ok) {
  return static_cast<unsigned>(_mm256_movemask_pd(ok)) ^ 0xFu;
}

/// Finite-y mask: |y| ordered-and-not-inf (NaN and ±inf lanes fail).
inline __m256d FiniteMask(__m256d y) {
  const __m256d absmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  return _mm256_cmp_pd(
      _mm256_and_pd(y, absmask),
      _mm256_set1_pd(std::numeric_limits<double>::infinity()), _CMP_NEQ_OQ);
}

/// Shared Pow loop body: fast lanes are exp2(log2(x)*y) exactly as PowRef
/// computes them; y==0 / x==1 / x<0 / special lanes all fail a predicate
/// (or produce the identical bits — see PowRef) and go scalar.
inline void PowStore(__m256d vx, __m256d vy, const double* x, const double* y,
                     double* out, size_t i, bool broadcast_y,
                     double y_scalar) {
  __m256d okl;
  __m256d oke;
  const __m256d l = Log2Body(vx, &okl);
  const __m256d t = _mm256_mul_pd(l, vy);
  const __m256d r = Exp2Body(t, &oke);
  const __m256d ok =
      _mm256_and_pd(_mm256_and_pd(okl, oke), FiniteMask(vy));
  _mm256_storeu_pd(out + i, r);
  const unsigned slow = SlowMask(ok);
  if (slow) [[unlikely]] {
    for (int lane = 0; lane < 4; ++lane) {
      if (slow & (1u << lane)) {
        out[i + lane] = detail::PowRef(
            x[i + lane], broadcast_y ? y_scalar : y[i + lane]);
      }
    }
  }
}

}  // namespace

void Exp2Avx2(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d ok;
    const __m256d r = Exp2Body(_mm256_loadu_pd(x + i), &ok);
    _mm256_storeu_pd(out + i, r);
    const unsigned slow = SlowMask(ok);
    if (slow) [[unlikely]] {
      for (int lane = 0; lane < 4; ++lane) {
        if (slow & (1u << lane)) out[i + lane] = detail::Exp2Ref(x[i + lane]);
      }
    }
  }
  for (; i < n; ++i) out[i] = detail::Exp2Ref(x[i]);
}

void Log2Avx2(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d ok;
    const __m256d r = Log2Body(_mm256_loadu_pd(x + i), &ok);
    _mm256_storeu_pd(out + i, r);
    const unsigned slow = SlowMask(ok);
    if (slow) [[unlikely]] {
      for (int lane = 0; lane < 4; ++lane) {
        if (slow & (1u << lane)) out[i + lane] = detail::Log2Ref(x[i + lane]);
      }
    }
  }
  for (; i < n; ++i) out[i] = detail::Log2Ref(x[i]);
}

void ExpAvx2(const double* x, double* out, size_t n) {
  const __m256d log2e = _mm256_set1_pd(detail::kLog2E);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d ok;
    const __m256d t = _mm256_mul_pd(_mm256_loadu_pd(x + i), log2e);
    const __m256d r = Exp2Body(t, &ok);
    _mm256_storeu_pd(out + i, r);
    const unsigned slow = SlowMask(ok);
    if (slow) [[unlikely]] {
      for (int lane = 0; lane < 4; ++lane) {
        if (slow & (1u << lane)) out[i + lane] = detail::ExpRef(x[i + lane]);
      }
    }
  }
  for (; i < n; ++i) out[i] = detail::ExpRef(x[i]);
}

void PowAvx2(const double* x, const double* y, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    PowStore(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), x, y, out, i,
             /*broadcast_y=*/false, 0.0);
  }
  for (; i < n; ++i) out[i] = detail::PowRef(x[i], y[i]);
}

void PowScalarExpAvx2(const double* x, double y, double* out, size_t n) {
  const __m256d vy = _mm256_set1_pd(y);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    PowStore(_mm256_loadu_pd(x + i), vy, x, nullptr, out, i,
             /*broadcast_y=*/true, y);
  }
  for (; i < n; ++i) out[i] = detail::PowRef(x[i], y);
}

void FitSlopeLanesAvx2(const double* xs, const double* ys, size_t window,
                       size_t stride, size_t lanes, double* out) {
  const __m256d count = _mm256_set1_pd(static_cast<double>(window));
  size_t lane = 0;
  for (; lane + 4 <= lanes; lane += 4) {
    __m256d sum_x = _mm256_setzero_pd();
    __m256d sum_y = _mm256_setzero_pd();
    for (size_t i = 0; i < window; ++i) {
      sum_x = _mm256_add_pd(sum_x, _mm256_loadu_pd(xs + i * stride + lane));
      sum_y = _mm256_add_pd(sum_y, _mm256_loadu_pd(ys + i * stride + lane));
    }
    const __m256d mean_x = _mm256_div_pd(sum_x, count);
    const __m256d mean_y = _mm256_div_pd(sum_y, count);
    __m256d num = _mm256_setzero_pd();
    __m256d den = _mm256_setzero_pd();
    for (size_t i = 0; i < window; ++i) {
      const __m256d dx =
          _mm256_sub_pd(_mm256_loadu_pd(xs + i * stride + lane), mean_x);
      const __m256d dy =
          _mm256_sub_pd(_mm256_loadu_pd(ys + i * stride + lane), mean_y);
      num = _mm256_add_pd(num, _mm256_mul_pd(dx, dy));
      den = _mm256_add_pd(den, _mm256_mul_pd(dx, dx));
    }
    // slope = den > 0 ? num/den : 0 — masking the quotient zeroes the
    // degenerate lanes exactly like the scalar branch.
    const __m256d pos = _mm256_cmp_pd(den, _mm256_setzero_pd(), _CMP_GT_OQ);
    _mm256_storeu_pd(out + lane,
                     _mm256_and_pd(_mm256_div_pd(num, den), pos));
  }
  for (; lane < lanes; ++lane) {
    out[lane] = detail::FitSlopeStrided(xs + lane, ys + lane, window, stride);
  }
}

}  // namespace rave::simd::internal
