#include "simd/dispatch.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace rave::simd {
namespace {

Level Detect() {
#if RAVE_SIMD_AVX2
  // The backend needs 256-bit float ops plus AVX2 integer ops (exponent
  // manipulation); AVX2 implies both. FMA is deliberately not used.
  if (__builtin_cpu_supports("avx2")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

Level InitialLevel() {
  const Level detected = Detect();
  if (const char* env = std::getenv("RAVE_SIMD")) {
    Level parsed;
    if (ParseLevel(env, &parsed) && parsed == Level::kScalar) {
      return Level::kScalar;
    }
  }
  return detected;
}

std::atomic<Level>& Slot() {
  static std::atomic<Level> level{InitialLevel()};
  return level;
}

}  // namespace

bool Avx2CompiledIn() {
#if RAVE_SIMD_AVX2
  return true;
#else
  return false;
#endif
}

Level DetectedLevel() { return Detect(); }

Level ActiveLevel() { return Slot().load(std::memory_order_relaxed); }

Level SetLevel(Level level) {
  if (level == Level::kAvx2 && DetectedLevel() != Level::kAvx2) {
    level = Level::kScalar;
  }
  Slot().store(level, std::memory_order_relaxed);
  return level;
}

bool ParseLevel(const char* text, Level* out) {
  if (text == nullptr) return false;
  char lower[16];
  size_t n = std::strlen(text);
  if (n == 0 || n >= sizeof(lower)) return false;
  for (size_t i = 0; i < n; ++i) {
    lower[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[i])));
  }
  lower[n] = '\0';
  if (std::strcmp(lower, "off") == 0 || std::strcmp(lower, "scalar") == 0) {
    *out = Level::kScalar;
    return true;
  }
  if (std::strcmp(lower, "auto") == 0 || std::strcmp(lower, "avx2") == 0) {
    *out = Level::kAvx2;
    return true;
  }
  return false;
}

const char* ToString(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

}  // namespace rave::simd
