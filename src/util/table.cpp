#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace rave {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::AddRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return Cell(std::string(buf));
}

Table& Table::Cell(int64_t value) {
  return Cell(std::to_string(value));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace rave
