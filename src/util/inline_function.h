// Move-only callable wrapper with fixed inline storage — the hot-path
// replacement for `std::function` in the event loop and transport callback
// chain. A `std::function` type-erases through the heap whenever the capture
// outgrows its (implementation-defined, ~16 byte) small buffer; an
// `InlineFunction<Sig, N>` stores the callable in N bytes inside the object
// itself and *refuses to compile* when the capture does not fit, so
// constructing, moving and destroying one never allocates.
//
// Semantics:
//   * move-only (captured state moves with the wrapper; no shared ownership),
//   * oversized or over-aligned callables are rejected at compile time
//     (deleted constructor, so `std::is_constructible_v` is testable),
//   * invoking an empty InlineFunction aborts (in every build type),
//   * trivially-copyable captures move by memcpy, others by move-construct.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rave {

template <typename Signature, size_t Capacity = 64>
class InlineFunction;

template <typename R, typename... Args, size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  static constexpr size_t kCapacity = Capacity;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  /// Wraps any callable whose decayed type fits the inline storage.
  template <typename F, typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                 std::is_invocable_r_v<R, D&, Args...> &&
                                 sizeof(D) <= Capacity &&
                                 alignof(D) <= alignof(std::max_align_t),
                             int> = 0>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    static_assert(sizeof(D) <= Capacity,
                  "InlineFunction capture exceeds the inline storage budget");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    invoke_ = &Invoke<D>;
    // Trivially-copyable, trivially-destructible captures (the common case:
    // `[this]`-style lambdas) need no manager at all — moves are a raw
    // memcpy and destruction is a no-op, saving an indirect call per move
    // and per reset on the event-loop hot path.
    if constexpr (!(std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>)) {
      manage_ = &Manage<D>;
    }
  }

  /// Oversized / over-aligned captures: compile-time rejection. Shrink the
  /// capture (capture pointers, not values) or widen the wrapper's Capacity.
  template <typename F, typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                 std::is_invocable_r_v<R, D&, Args...> &&
                                 !(sizeof(D) <= Capacity &&
                                   alignof(D) <= alignof(std::max_align_t)),
                             int> = 0>
  InlineFunction(F&&) = delete;

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return invoke_ != &AbortInvoke; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kMoveTo, kDestroy };
  using InvokeFn = R (*)(void*, Args&&...);
  using ManageFn = void (*)(void* self, void* dst, Op op);

  [[noreturn]] static R AbortInvoke(void*, Args&&...) { std::abort(); }

  template <typename D>
  static R Invoke(void* storage, Args&&... args) {
    return (*static_cast<D*>(storage))(std::forward<Args>(args)...);
  }

  template <typename D>
  static void Manage(void* self, void* dst, Op op) {
    D* f = static_cast<D*>(self);
    if (op == Op::kMoveTo) ::new (dst) D(std::move(*f));
    f->~D();
  }

  void MoveFrom(InlineFunction& other) noexcept {
    if (!other) return;
    if (other.manage_ != nullptr) {
      other.manage_(other.storage_, storage_, Op::kMoveTo);
    } else {
      // Trivial capture: the whole buffer copies branchlessly. Copying the
      // uninitialized tail of a smaller capture is well-defined for unsigned
      // char; GCC's -Wmaybe-uninitialized cannot see that and warns.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
      std::memcpy(storage_, other.storage_, Capacity);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = &AbortInvoke;
    other.manage_ = nullptr;
  }

  void Reset() {
    if (manage_ != nullptr) manage_(storage_, nullptr, Op::kDestroy);
    invoke_ = &AbortInvoke;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  InvokeFn invoke_ = &AbortInvoke;
  ManageFn manage_ = nullptr;
};

}  // namespace rave
