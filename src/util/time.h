// Strongly typed simulation time: Timestamp (a point in time) and TimeDelta
// (a duration). Both store microseconds in a signed 64-bit integer, mirroring
// the units used by real RTC stacks. All arithmetic is explicit; there are no
// implicit conversions from raw integers, which prevents the classic
// ms-vs-us unit bugs in networking code.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace rave {

/// A signed duration with microsecond resolution.
///
/// Construct via the named factories (`TimeDelta::Millis(20)`), never from a
/// bare integer. Supports the usual arithmetic and comparison operators as
/// well as scaling by dimensionless factors.
class TimeDelta {
 public:
  constexpr TimeDelta() : us_(0) {}

  static constexpr TimeDelta Micros(int64_t us) { return TimeDelta(us); }
  static constexpr TimeDelta Millis(int64_t ms) { return TimeDelta(ms * 1000); }
  static constexpr TimeDelta Seconds(int64_t s) {
    return TimeDelta(s * 1'000'000);
  }
  /// Builds a delta from a floating point second count (rounded to µs).
  static constexpr TimeDelta SecondsF(double s) {
    return TimeDelta(static_cast<int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr TimeDelta Zero() { return TimeDelta(0); }
  static constexpr TimeDelta PlusInfinity() {
    return TimeDelta(std::numeric_limits<int64_t>::max());
  }
  static constexpr TimeDelta MinusInfinity() {
    return TimeDelta(std::numeric_limits<int64_t>::min());
  }

  constexpr int64_t us() const { return us_; }
  constexpr int64_t ms() const { return us_ / 1000; }
  constexpr double seconds() const { return static_cast<double>(us_) * 1e-6; }
  constexpr double ms_float() const {
    return static_cast<double>(us_) * 1e-3;
  }

  constexpr bool IsZero() const { return us_ == 0; }
  constexpr bool IsFinite() const {
    return us_ != std::numeric_limits<int64_t>::max() &&
           us_ != std::numeric_limits<int64_t>::min();
  }
  constexpr bool IsPlusInfinity() const {
    return us_ == std::numeric_limits<int64_t>::max();
  }

  constexpr TimeDelta operator+(TimeDelta o) const {
    return TimeDelta(us_ + o.us_);
  }
  constexpr TimeDelta operator-(TimeDelta o) const {
    return TimeDelta(us_ - o.us_);
  }
  constexpr TimeDelta operator-() const { return TimeDelta(-us_); }
  constexpr TimeDelta& operator+=(TimeDelta o) {
    us_ += o.us_;
    return *this;
  }
  constexpr TimeDelta& operator-=(TimeDelta o) {
    us_ -= o.us_;
    return *this;
  }
  constexpr TimeDelta operator*(double f) const {
    return SecondsF(seconds() * f);
  }
  constexpr TimeDelta operator*(int64_t f) const { return TimeDelta(us_ * f); }
  constexpr TimeDelta operator/(int64_t d) const { return TimeDelta(us_ / d); }
  constexpr double operator/(TimeDelta o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }

  constexpr auto operator<=>(const TimeDelta&) const = default;

  /// Human readable rendering, e.g. "12.5ms" or "3.2s".
  std::string ToString() const;

 private:
  explicit constexpr TimeDelta(int64_t us) : us_(us) {}
  int64_t us_;
};

constexpr TimeDelta operator*(double f, TimeDelta d) { return d * f; }

/// A point on the simulation clock, measured from the start of the run.
///
/// Only differences of Timestamps produce TimeDeltas; adding two Timestamps
/// is (deliberately) not expressible.
class Timestamp {
 public:
  constexpr Timestamp() : us_(0) {}

  static constexpr Timestamp Micros(int64_t us) { return Timestamp(us); }
  static constexpr Timestamp Millis(int64_t ms) { return Timestamp(ms * 1000); }
  static constexpr Timestamp Seconds(int64_t s) {
    return Timestamp(s * 1'000'000);
  }
  static constexpr Timestamp Zero() { return Timestamp(0); }
  static constexpr Timestamp PlusInfinity() {
    return Timestamp(std::numeric_limits<int64_t>::max());
  }
  /// Sentinel for "never set". Compares less than every valid timestamp.
  static constexpr Timestamp MinusInfinity() {
    return Timestamp(std::numeric_limits<int64_t>::min());
  }

  constexpr int64_t us() const { return us_; }
  constexpr int64_t ms() const { return us_ / 1000; }
  constexpr double seconds() const { return static_cast<double>(us_) * 1e-6; }

  constexpr bool IsFinite() const {
    return us_ != std::numeric_limits<int64_t>::max() &&
           us_ != std::numeric_limits<int64_t>::min();
  }
  constexpr bool IsMinusInfinity() const {
    return us_ == std::numeric_limits<int64_t>::min();
  }

  constexpr Timestamp operator+(TimeDelta d) const {
    return Timestamp(us_ + d.us());
  }
  constexpr Timestamp operator-(TimeDelta d) const {
    return Timestamp(us_ - d.us());
  }
  constexpr TimeDelta operator-(Timestamp o) const {
    return TimeDelta::Micros(us_ - o.us_);
  }
  constexpr Timestamp& operator+=(TimeDelta d) {
    us_ += d.us();
    return *this;
  }

  constexpr auto operator<=>(const Timestamp&) const = default;

  /// Human readable rendering as seconds, e.g. "12.345s".
  std::string ToString() const;

 private:
  explicit constexpr Timestamp(int64_t us) : us_(us) {}
  int64_t us_;
};

}  // namespace rave
