#include "util/csv.h"

#include <stdexcept>

namespace rave {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  WriteRow(header);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

}  // namespace rave
