#include "util/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace rave {

namespace {
constexpr size_t kFileBufBytes = 64 * 1024;
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : file_buf_(kFileBufBytes) {
  // pubsetbuf only takes effect before the file is opened.
  out_.rdbuf()->pubsetbuf(file_buf_.data(),
                          static_cast<std::streamsize>(file_buf_.size()));
  out_.open(path);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  row_.reserve(256);
  WriteRow(header);
}

void CsvWriter::Flush() {
  out_.write(row_.data(), static_cast<std::streamsize>(row_.size()));
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  row_.clear();
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) row_ += ',';
    row_ += cells[i];
  }
  row_ += '\n';
  Flush();
}

void CsvWriter::WriteRow(const std::vector<double>& cells) {
  row_.clear();
  char cell[64];
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) row_ += ',';
    // %g with default precision matches operator<<(double) byte for byte.
    const int n = std::snprintf(cell, sizeof(cell), "%g", cells[i]);
    row_.append(cell, static_cast<size_t>(n));
  }
  row_ += '\n';
  Flush();
}

}  // namespace rave
