#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace rave {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<double> SampleSet::Sorted() const {
  EnsureSorted();
  return sorted_;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  double idx = (x - lo_) / width_;
  int64_t i = static_cast<int64_t>(std::floor(idx));
  i = std::clamp<int64_t>(i, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(i)];
  ++total_;
}

double Histogram::bin_center(size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

Ewma::Ewma(double alpha) : alpha_(alpha) { assert(alpha > 0.0 && alpha <= 1.0); }

void Ewma::Add(double x) {
  if (!initialized_) {
    value_ = x;
    variance_ = 0.0;
    initialized_ = true;
    return;
  }
  const double delta = x - value_;
  value_ += alpha_ * delta;
  variance_ = (1.0 - alpha_) * (variance_ + alpha_ * delta * delta);
}

void Ewma::Reset() {
  initialized_ = false;
  value_ = 0.0;
  variance_ = 0.0;
}

}  // namespace rave
