#include "util/time.h"

#include <cmath>
#include <cstdio>

namespace rave {

std::string TimeDelta::ToString() const {
  if (IsPlusInfinity()) return "+inf";
  if (us_ == std::numeric_limits<int64_t>::min()) return "-inf";
  char buf[64];
  const double abs_us = std::abs(static_cast<double>(us_));
  if (abs_us < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us_));
  } else if (abs_us < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(us_) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(us_) / 1e6);
  }
  return buf;
}

std::string Timestamp::ToString() const {
  if (!IsFinite()) return us_ > 0 ? "+inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fs", seconds());
  return buf;
}

}  // namespace rave
