#include "util/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace rave {
namespace {

LogLevel g_level = LogLevel::kWarning;
bool g_env_checked = false;

thread_local LogClockFn t_clock = nullptr;
thread_local const void* t_clock_ctx = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

bool ParseLevel(std::string_view name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

}  // namespace

void InitLogLevelFromEnv() {
  if (g_env_checked) return;
  g_env_checked = true;
  if (const char* env = std::getenv("RAVE_LOG_LEVEL")) {
    LogLevel level;
    if (ParseLevel(env, &level)) g_level = level;
  }
}

void SetLogLevel(LogLevel level) {
  InitLogLevelFromEnv();  // explicit settings override the env from here on
  g_level = level;
}

LogLevel GetLogLevel() {
  InitLogLevelFromEnv();
  return g_level;
}

bool SetLogLevelFromString(std::string_view name) {
  LogLevel level;
  if (!ParseLevel(name, &level)) return false;
  SetLogLevel(level);
  return true;
}

LogClockScope::LogClockScope(LogClockFn clock, const void* ctx)
    : previous_clock_(t_clock), previous_ctx_(t_clock_ctx) {
  t_clock = clock;
  t_clock_ctx = ctx;
}

LogClockScope::~LogClockScope() {
  t_clock = previous_clock_;
  t_clock_ctx = previous_ctx_;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* /*file*/, int /*line*/)
    : enabled_(level >= GetLogLevel()), level_(level) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  // Assemble the full line first so the single fwrite below keeps lines
  // from concurrent threads intact.
  char prefix[64];
  if (t_clock != nullptr) {
    const double sim_s =
        static_cast<double>(t_clock(t_clock_ctx)) * 1e-6;
    std::snprintf(prefix, sizeof(prefix), "[%s @%.3fs] ", LevelName(level_),
                  sim_s);
  } else {
    std::snprintf(prefix, sizeof(prefix), "[%s] ", LevelName(level_));
  }
  std::string line = prefix;
  line += stream_.str();
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace rave
