// Lightweight leveled logging. Disabled below the configured level at
// runtime; the default level is kWarning so simulations stay quiet unless a
// caller opts in (examples enable kInfo for narrative output).
#pragma once

#include <sstream>
#include <string>

namespace rave {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction when `enabled`.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rave

#define RAVE_LOG(level) \
  ::rave::internal::LogMessage(::rave::LogLevel::level, __FILE__, __LINE__)
