// Lightweight leveled structured logging. Disabled below the configured
// level at runtime; the default level is kWarning so simulations stay quiet
// unless a caller opts in (examples enable kInfo for narrative output).
//
// Configuration: SetLogLevel / SetLogLevelFromString, the RAVE_LOG_LEVEL
// environment variable (read once, before any explicit SetLogLevel), and
// the benches' / CLI's --log-level flag which forwards to
// SetLogLevelFromString.
//
// Each emitted line is assembled in full and written with a single
// fwrite(stderr), so lines from concurrent session threads never interleave
// mid-line. When the emitting thread has a simulation clock installed
// (LogClockScope, done by Session::Run), lines are tagged with the current
// sim-time: `[WARN @12.345s] message`.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace rave {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Accepts "debug", "info", "warning"/"warn", "error" (case-insensitive).
/// Returns false (level unchanged) on anything else.
bool SetLogLevelFromString(std::string_view name);

/// Reads RAVE_LOG_LEVEL from the environment and applies it if valid. Called
/// automatically before the first level check; harmless to call again.
void InitLogLevelFromEnv();

/// Clock hook: returns the current simulation time in microseconds for the
/// `ctx` it was installed with.
using LogClockFn = int64_t (*)(const void* ctx);

/// Tags this thread's log lines with sim-time from `clock(ctx)` for the
/// scope's lifetime; nests/restores like obs::TraceScope.
class LogClockScope {
 public:
  LogClockScope(LogClockFn clock, const void* ctx);
  ~LogClockScope();

  LogClockScope(const LogClockScope&) = delete;
  LogClockScope& operator=(const LogClockScope&) = delete;

 private:
  LogClockFn previous_clock_;
  const void* previous_ctx_;
};

namespace internal {

/// Stream-style log sink; emits on destruction when `enabled`.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rave

#define RAVE_LOG(level) \
  ::rave::internal::LogMessage(::rave::LogLevel::level, __FILE__, __LINE__)
