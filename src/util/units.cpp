#include "util/units.h"

#include <cstdio>

namespace rave {

std::string DataSize::ToString() const {
  if (!IsFinite()) return "+inf";
  char buf[64];
  if (bits_ < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldb", static_cast<long long>(bits_));
  } else if (bits_ < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fkb",
                  static_cast<double>(bits_) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fMb",
                  static_cast<double>(bits_) / 1e6);
  }
  return buf;
}

std::string DataRate::ToString() const {
  if (!IsFinite()) return "+inf";
  char buf[64];
  if (bps_ < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.0fkbps",
                  static_cast<double>(bps_) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fMbps",
                  static_cast<double>(bps_) / 1e6);
  }
  return buf;
}

}  // namespace rave
