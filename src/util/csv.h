// Minimal CSV writer for exporting per-frame records and timeseries from
// examples and benches so figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace rave {

/// Writes rows of cells to a CSV file. Throws `std::runtime_error` (naming
/// the path) if the file cannot be opened. Values are written verbatim (no
/// quoting); callers must not embed commas in string cells.
///
/// Each row is formatted into one reused string buffer and written with a
/// single `write()` call; the underlying file buffer is enlarged so big
/// exports (per-frame records: tens of thousands of rows) do not pay one
/// small kernel write per cell. Numeric cells use `%g` formatting — byte-
/// identical to the default `operator<<(double)` output this writer always
/// produced.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row. The number of cells should match the header.
  void WriteRow(const std::vector<std::string>& cells);
  /// Convenience overload for all-numeric rows.
  void WriteRow(const std::vector<double>& cells);

 private:
  void Flush();

  /// File-stream buffer (installed with pubsetbuf before open). Declared
  /// before `out_` so it outlives the stream's flush-on-destruction.
  std::vector<char> file_buf_;
  std::ofstream out_;
  /// Reused row-formatting buffer; capacity persists across rows.
  std::string row_;
};

}  // namespace rave
