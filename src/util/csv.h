// Minimal CSV writer for exporting per-frame records and timeseries from
// examples and benches so figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace rave {

/// Writes rows of cells to a CSV file. Throws `std::runtime_error` if the
/// file cannot be opened. Values are written verbatim (no quoting); callers
/// must not embed commas in string cells.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row. The number of cells should match the header.
  void WriteRow(const std::vector<std::string>& cells);
  /// Convenience overload for all-numeric rows.
  void WriteRow(const std::vector<double>& cells);

 private:
  std::ofstream out_;
};

}  // namespace rave
