// Strongly typed data quantities: DataSize (bits) and DataRate (bits per
// second). Like `Timestamp`/`TimeDelta`, these exist so that "kilobits",
// "bytes" and "megabits per second" can never be silently mixed up.
// Dimensional arithmetic is provided: size / time = rate, rate * time = size.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "util/time.h"

namespace rave {

/// An amount of data, stored in bits.
class DataSize {
 public:
  constexpr DataSize() : bits_(0) {}

  static constexpr DataSize Bits(int64_t bits) { return DataSize(bits); }
  static constexpr DataSize Bytes(int64_t bytes) { return DataSize(bytes * 8); }
  static constexpr DataSize KiloBytes(int64_t kb) {
    return DataSize(kb * 8000);
  }
  static constexpr DataSize Zero() { return DataSize(0); }
  static constexpr DataSize PlusInfinity() {
    return DataSize(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t bits() const { return bits_; }
  constexpr int64_t bytes() const { return bits_ / 8; }
  constexpr double kilobits() const { return static_cast<double>(bits_) / 1e3; }

  constexpr bool IsZero() const { return bits_ == 0; }
  constexpr bool IsFinite() const {
    return bits_ != std::numeric_limits<int64_t>::max();
  }

  constexpr DataSize operator+(DataSize o) const {
    return DataSize(bits_ + o.bits_);
  }
  constexpr DataSize operator-(DataSize o) const {
    return DataSize(bits_ - o.bits_);
  }
  constexpr DataSize& operator+=(DataSize o) {
    bits_ += o.bits_;
    return *this;
  }
  constexpr DataSize& operator-=(DataSize o) {
    bits_ -= o.bits_;
    return *this;
  }
  constexpr DataSize operator*(double f) const {
    return DataSize(static_cast<int64_t>(static_cast<double>(bits_) * f + 0.5));
  }
  constexpr double operator/(DataSize o) const {
    return static_cast<double>(bits_) / static_cast<double>(o.bits_);
  }

  constexpr auto operator<=>(const DataSize&) const = default;

  /// Human readable rendering, e.g. "12.3kb" (kilobits) or "1.5Mb".
  std::string ToString() const;

 private:
  explicit constexpr DataSize(int64_t bits) : bits_(bits) {}
  int64_t bits_;
};

/// A data rate, stored in bits per second.
class DataRate {
 public:
  constexpr DataRate() : bps_(0) {}

  static constexpr DataRate BitsPerSec(int64_t bps) { return DataRate(bps); }
  static constexpr DataRate KilobitsPerSec(int64_t kbps) {
    return DataRate(kbps * 1000);
  }
  static constexpr DataRate KilobitsPerSecF(double kbps) {
    return DataRate(static_cast<int64_t>(kbps * 1000.0 + 0.5));
  }
  static constexpr DataRate MegabitsPerSecF(double mbps) {
    return DataRate(static_cast<int64_t>(mbps * 1e6 + 0.5));
  }
  static constexpr DataRate Zero() { return DataRate(0); }
  static constexpr DataRate PlusInfinity() {
    return DataRate(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t bps() const { return bps_; }
  constexpr double kbps() const { return static_cast<double>(bps_) / 1e3; }
  constexpr double mbps() const { return static_cast<double>(bps_) / 1e6; }

  constexpr bool IsZero() const { return bps_ == 0; }
  constexpr bool IsFinite() const {
    return bps_ != std::numeric_limits<int64_t>::max();
  }

  constexpr DataRate operator+(DataRate o) const {
    return DataRate(bps_ + o.bps_);
  }
  constexpr DataRate operator-(DataRate o) const {
    return DataRate(bps_ - o.bps_);
  }
  constexpr DataRate operator*(double f) const {
    return DataRate(static_cast<int64_t>(static_cast<double>(bps_) * f + 0.5));
  }
  constexpr double operator/(DataRate o) const {
    return static_cast<double>(bps_) / static_cast<double>(o.bps_);
  }

  constexpr auto operator<=>(const DataRate&) const = default;

  /// Human readable rendering, e.g. "850kbps" or "2.50Mbps".
  std::string ToString() const;

 private:
  explicit constexpr DataRate(int64_t bps) : bps_(bps) {}
  int64_t bps_;
};

constexpr DataRate operator*(double f, DataRate r) { return r * f; }

/// rate = size / duration. Duration must be positive.
constexpr DataRate operator/(DataSize size, TimeDelta duration) {
  return DataRate::BitsPerSec(static_cast<int64_t>(
      static_cast<double>(size.bits()) / duration.seconds() + 0.5));
}

/// size = rate * duration.
constexpr DataSize operator*(DataRate rate, TimeDelta duration) {
  return DataSize::Bits(static_cast<int64_t>(
      static_cast<double>(rate.bps()) * duration.seconds() + 0.5));
}
constexpr DataSize operator*(TimeDelta duration, DataRate rate) {
  return rate * duration;
}

/// duration = size / rate: how long it takes to serialize `size` at `rate`.
constexpr TimeDelta operator/(DataSize size, DataRate rate) {
  return TimeDelta::SecondsF(static_cast<double>(size.bits()) /
                             static_cast<double>(rate.bps()));
}

}  // namespace rave
