// Interned<T>: a cheap-to-copy handle to an immutable, shared value.
//
// Session matrices repeat the same heavyweight inputs (capacity traces with
// hundreds of steps, fault plans) across hundreds of SessionConfigs; carrying
// them by value deep-copies the backing vectors once per cell. Interned<T>
// carries a shared_ptr<const T> instead: copying a config bumps a refcount,
// and every cell of a sweep points at the same immutable object. Implicit
// conversion from T keeps `config.link.trace = CapacityTrace::StepDrop(...)`
// call sites working unchanged (they pay a single allocation at build time).
#pragma once

#include <cassert>
#include <memory>
#include <utility>

namespace rave {

template <typename T>
class Interned {
 public:
  /// Wraps a value (implicit, so existing by-value assignments keep
  /// compiling). The value is moved into shared immutable storage.
  Interned(T value)  // NOLINT(google-explicit-constructor)
      : ptr_(std::make_shared<const T>(std::move(value))) {}

  /// Adopts an existing shared value without copying (the interning path).
  Interned(std::shared_ptr<const T> ptr)  // NOLINT(google-explicit-constructor)
      : ptr_(std::move(ptr)) {
    assert(ptr_ != nullptr);
  }

  const T& operator*() const { return *ptr_; }
  const T* operator->() const { return ptr_.get(); }
  const T& value() const { return *ptr_; }

  /// The underlying shared pointer, for re-interning into other configs.
  const std::shared_ptr<const T>& ptr() const { return ptr_; }

 private:
  std::shared_ptr<const T> ptr_;
};

/// Builds an interned value in place.
template <typename T, typename... Args>
Interned<T> MakeInterned(Args&&... args) {
  return Interned<T>(std::make_shared<const T>(std::forward<Args>(args)...));
}

}  // namespace rave
