// Endianness-stable binary encoding helpers.
//
// The session-result cache derives content-addressed keys from configs and
// persists results as binary blobs; both need a byte encoding that is
// identical on every host. ByteWriter appends fixed-width little-endian
// fields to a growable buffer; ByteReader decodes the same stream with
// bounds checking (a truncated or corrupted blob turns into `ok() == false`,
// never undefined behaviour). Doubles are encoded as their IEEE-754 bit
// pattern, so round-trips are bit-exact.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace rave {

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// Length-prefixed byte string.
  void Str(const std::string& s) {
    U64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void Reserve(size_t bytes) { buf_.reserve(bytes); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a byte span. After any failed read, `ok()` is
/// false and every subsequent read returns a zero value; callers check
/// `ok()` once at the end instead of after every field.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  bool Bool() { return U8() != 0; }
  std::string Str() {
    const uint64_t n = U64();
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == size_; }
  size_t pos() const { return pos_; }

  /// Marks the stream bad. Decoders call this when the bytes parse but the
  /// decoded structure is invalid (e.g. a sketch whose bucket counts do not
  /// sum to its total), so structural corruption fails like truncation.
  void Invalidate() { ok_ = false; }

 private:
  bool Need(uint64_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace rave
