// Fixed-width console table formatting for the benchmark harnesses: every
// bench binary prints paper-style rows through this, so all experiment output
// is uniformly aligned and machine-greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rave {

/// Accumulates rows of string cells and renders an aligned ASCII table with a
/// header rule. Numeric helpers format with fixed precision.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Cells are appended with `Cell()` until the next
  /// `AddRow()` call.
  Table& AddRow();
  Table& Cell(const std::string& value);
  Table& Cell(double value, int precision = 2);
  Table& Cell(int64_t value);

  /// Renders the table (header, rule, rows) to `os`.
  void Print(std::ostream& os) const;
  /// Renders to a string (used by tests).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rave
