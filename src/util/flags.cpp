#include "util/flags.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rave {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("Flags: bare '--' is not a flag");
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` form, unless the next token is another flag (then the
    // flag is boolean "true").
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::Has(const std::string& key) const { return values_.count(key); }

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    size_t used = 0;
    const int64_t value = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("Flags: --" + key + "=" + it->second +
                                " overflows a 64-bit integer");
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + key + "=" + it->second +
                                " is not an integer");
  }
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback, int64_t min,
                      int64_t max) const {
  const int64_t value = GetInt(key, fallback);
  if (value < min || value > max) {
    throw std::invalid_argument("Flags: --" + key + "=" +
                                std::to_string(value) + " is out of range [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "]");
  }
  return value;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    size_t used = 0;
    const double value = std::stod(it->second, &used);
    // stod accepts "nan"/"inf"; no flag in this codebase means either.
    if (used != it->second.size() || !std::isfinite(value)) {
      throw std::invalid_argument(it->second);
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + key + "=" + it->second +
                                " is not a finite number");
  }
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Flags: --" + key + "=" + v +
                              " is not a boolean");
}

std::vector<std::string> Flags::UnknownKeys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

}  // namespace rave
