// Streaming and batch statistics used throughout the metrics pipeline:
// Welford running moments, exact percentiles over retained samples, a
// fixed-bin histogram and an exponentially weighted moving average/variance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rave {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  void Reset();

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Mean of the samples added so far; 0 when empty.
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains every sample to answer exact quantile queries.
///
/// Intended for per-frame metrics at simulation scale (a 60 s session at
/// 30 fps is 1800 samples), where exactness matters more than memory.
class SampleSet {
 public:
  void Add(double x);
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact quantile by linear interpolation between order statistics.
  /// `q` in [0,1]; returns 0 when empty.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  /// All samples, sorted ascending. Useful for CDF output.
  std::vector<double> Sorted() const;
  const std::vector<double>& raw() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range values are clamped
/// into the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);

  size_t bins() const { return counts_.size(); }
  int64_t bin_count(size_t i) const { return counts_[i]; }
  /// Center value of bin `i`.
  double bin_center(size_t i) const;
  int64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Exponentially weighted moving average with optional variance tracking.
/// `alpha` is the weight of the newest sample.
class Ewma {
 public:
  explicit Ewma(double alpha);

  void Add(double x);
  void Reset();

  bool initialized() const { return initialized_; }
  /// Current smoothed value; `fallback` until the first sample arrives.
  double GetOr(double fallback) const {
    return initialized_ ? value_ : fallback;
  }
  double value() const { return value_; }
  double variance() const { return variance_; }

 private:
  double alpha_;
  bool initialized_ = false;
  double value_ = 0.0;
  double variance_ = 0.0;
};

}  // namespace rave
