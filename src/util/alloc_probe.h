// Allocation-counting probe: when the build defines RAVE_ALLOC_PROBE (CMake
// option, ON by default), the global `operator new`/`operator delete` are
// replaced with versions that bump thread-local counters before deferring to
// malloc/free. The counters are how the allocation-regression gate
// (`tests/hotpath_alloc_test.cpp`) proves the event-loop steady state is
// allocation-free, and how `tab4_microbench` reports allocations-per-event /
// allocations-per-frame in BENCH_hotpath.json.
//
// Cost when enabled: one predicted branch + two thread-local increments per
// allocation, no behavioural change. Counters are per-thread, so parallel
// session runners don't contend and a test observes only its own thread.
#pragma once

#include <cstdint>

namespace rave {

/// Snapshot of this thread's allocation activity since thread start.
struct AllocCounts {
  uint64_t allocs = 0;  ///< operator new calls
  uint64_t frees = 0;   ///< operator delete calls (non-null)
  uint64_t bytes = 0;   ///< total bytes requested through operator new
};

/// True when the counting operator new/delete are compiled in.
constexpr bool AllocProbeEnabled() {
#ifdef RAVE_ALLOC_PROBE
  return true;
#else
  return false;
#endif
}

/// Current counters for the calling thread (all-zero when the probe is
/// compiled out).
AllocCounts ThreadAllocCounts();

/// Convenience delta-meter: construct at the start of the measured region,
/// call `allocs()` / `bytes()` at the end.
class AllocScope {
 public:
  AllocScope() : start_(ThreadAllocCounts()) {}

  uint64_t allocs() const { return ThreadAllocCounts().allocs - start_.allocs; }
  uint64_t frees() const { return ThreadAllocCounts().frees - start_.frees; }
  uint64_t bytes() const { return ThreadAllocCounts().bytes - start_.bytes; }

 private:
  AllocCounts start_;
};

}  // namespace rave
