// Flat double-ended queue over a single contiguous power-of-two ring buffer.
// The hot-path replacement for `std::deque` (which allocates/frees a block
// every few dozen elements) and node-based `std::map` queues in the transport
// layer: after `reserve()` — or once the ring has grown to the steady-state
// population — push/pop at either end never allocates.
//
// Requirements on T: default-constructible and movable (popped slots keep a
// moved-from T; the element count is tracked separately). Indexing is
// logical: `dq[0]` is the front.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace rave {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  size_t capacity() const { return slots_.size(); }

  /// Pre-allocates capacity for at least `n` elements (rounded up to a power
  /// of two). Never shrinks.
  void reserve(size_t n) {
    if (n > slots_.size()) Grow(RoundUpPow2(n));
  }

  void clear() {
    // Release element-owned resources eagerly (moved-from slots stay).
    for (size_t i = 0; i < count_; ++i) Slot(i) = T{};
    head_ = 0;
    count_ = 0;
  }

  void push_back(T value) {
    if (count_ == slots_.size()) Grow(NextCapacity());
    Slot(count_) = std::move(value);
    ++count_;
  }

  void push_front(T value) {
    if (count_ == slots_.size()) Grow(NextCapacity());
    head_ = (head_ + slots_.size() - 1) & mask_;
    slots_[head_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    slots_[head_] = T{};  // release resources; slot stays constructed
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void pop_back() {
    assert(count_ > 0);
    Slot(count_ - 1) = T{};
    --count_;
  }

  T& front() {
    assert(count_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return slots_[head_];
  }
  T& back() {
    assert(count_ > 0);
    return Slot(count_ - 1);
  }
  const T& back() const {
    assert(count_ > 0);
    return Slot(count_ - 1);
  }

  T& operator[](size_t i) {
    assert(i < count_);
    return Slot(i);
  }
  const T& operator[](size_t i) const {
    assert(i < count_);
    return Slot(i);
  }

 private:
  static size_t RoundUpPow2(size_t n) {
    size_t cap = 1;
    while (cap < n) cap <<= 1;
    return cap;
  }

  size_t NextCapacity() const {
    return slots_.empty() ? kInitialCapacity : slots_.size() * 2;
  }

  T& Slot(size_t logical) { return slots_[(head_ + logical) & mask_]; }
  const T& Slot(size_t logical) const {
    return slots_[(head_ + logical) & mask_];
  }

  void Grow(size_t new_capacity) {
    std::vector<T> grown(new_capacity);
    for (size_t i = 0; i < count_; ++i) grown[i] = std::move(Slot(i));
    slots_ = std::move(grown);
    head_ = 0;
    mask_ = slots_.size() - 1;
  }

  static constexpr size_t kInitialCapacity = 16;

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t count_ = 0;
  size_t mask_ = 0;
};

}  // namespace rave
