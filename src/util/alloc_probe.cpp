#include "util/alloc_probe.h"

#ifdef RAVE_ALLOC_PROBE

#include <cstdlib>
#include <new>

namespace rave::detail {
namespace {
thread_local AllocCounts t_counts;
}  // namespace

void* CountedAlloc(std::size_t size) {
  ++t_counts.allocs;
  t_counts.bytes += size;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  ++t_counts.allocs;
  t_counts.bytes += size;
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t padded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, padded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void CountedFree(void* p) {
  if (p == nullptr) return;
  ++t_counts.frees;
  std::free(p);
}

}  // namespace rave::detail

namespace rave {
AllocCounts ThreadAllocCounts() { return detail::t_counts; }
}  // namespace rave

// Replaceable global allocation functions. Defined here (in rave_util) so
// every binary that references ThreadAllocCounts — the unit tests and
// tab4_microbench — links the counting versions program-wide.
void* operator new(std::size_t size) { return rave::detail::CountedAlloc(size); }
void* operator new[](std::size_t size) {
  return rave::detail::CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return rave::detail::CountedAlignedAlloc(size,
                                           static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return rave::detail::CountedAlignedAlloc(size,
                                           static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return rave::detail::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return rave::detail::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { rave::detail::CountedFree(p); }
void operator delete[](void* p) noexcept { rave::detail::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept {
  rave::detail::CountedFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  rave::detail::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  rave::detail::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  rave::detail::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  rave::detail::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  rave::detail::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  rave::detail::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  rave::detail::CountedFree(p);
}

#else  // !RAVE_ALLOC_PROBE

namespace rave {
AllocCounts ThreadAllocCounts() { return AllocCounts{}; }
}  // namespace rave

#endif  // RAVE_ALLOC_PROBE
