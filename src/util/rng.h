// Deterministic random number generation for reproducible simulations.
//
// All stochastic components in the library (content models, link traces,
// noise in the rate-distortion model) draw from an explicitly seeded `Rng`
// so that every experiment is bit-for-bit reproducible. The generator is
// xoshiro256++, which is fast, has a 256-bit state and passes BigCrush.
#pragma once

#include <cstdint>

namespace rave {

/// xoshiro256++ pseudo random generator with convenience distributions.
///
/// Not thread safe; each simulated component owns its own instance (or a
/// sub-stream produced by `Fork()`), which keeps component behaviour
/// independent of the order in which other components consume randomness.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller, scaled to N(mean, stddev^2).
  double Gaussian(double mean, double stddev);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Derives an independent child generator; deterministic in the parent
  /// state. Useful to hand sub-streams to components.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rave
