// Minimal typed command-line flag parser for the example/CLI binaries:
// `--key=value` and `--key value` forms, typed getters with defaults, and
// positional-argument access. No registration step — tools query what they
// need and can print the set of recognized keys themselves.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rave {

/// Parsed argv. Unknown flags are retained (queryable), so tools can reject
/// typos via `unknown_keys`.
class Flags {
 public:
  /// Parses argv (excluding argv[0]). Throws std::invalid_argument on a
  /// malformed token (e.g. `--` with no key).
  Flags(int argc, const char* const* argv);

  bool Has(const std::string& key) const;

  /// Typed getters; return `fallback` when the flag is absent. Throw
  /// std::invalid_argument when present but unparsable.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  /// Strict integer parse: trailing garbage ("5x", "5 ") and values that
  /// overflow int64 are rejected with the flag named in the error.
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  /// GetInt plus a closed range check — the spelling for flags where only
  /// some values make sense (`--jobs` can't be negative, `--batch` can't
  /// be zero). The error names the flag and the accepted range.
  int64_t GetInt(const std::string& key, int64_t fallback, int64_t min,
                 int64_t max) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys present on the command line but not in `known` — for typo checks.
  std::vector<std::string> UnknownKeys(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rave
