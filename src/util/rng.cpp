#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace rave {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::Gaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace rave
