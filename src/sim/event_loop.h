// Deterministic discrete-event simulation core.
//
// Every component in the RTC pipeline (pacer, link, feedback path, encoder
// cadence) schedules callbacks on a single `EventLoop`. Events with equal
// fire times execute in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes whole-session runs bit-for-bit
// reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/inline_function.h"
#include "util/time.h"

namespace rave {

/// Handle used to cancel a scheduled event. Default-constructed handles are
/// inert. The 64-bit id encodes (sequence number << 24 | slot index) into
/// the loop's slot table; the sequence number is globally unique, so it acts
/// as the slot's generation stamp — a stale handle (its event already ran or
/// was cancelled, and the slot was reused) can never cancel a newer event.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class EventLoop;
  explicit EventHandle(uint64_t id) : id_(id) {}
  uint64_t id_ = 0;
};

/// Single-threaded discrete-event loop with µs resolution.
///
/// Allocation-free in steady state: callbacks live in fixed inline storage
/// (`Callback`, an InlineFunction — oversized captures fail to compile) inside
/// a reusable slot table, and liveness is an id stamp on the slot — Schedule,
/// Cancel and the cancelled-event check on pop are two array reads with no
/// hashing and no heap traffic.
///
/// The pending set is a timing wheel: a 1024 µs window of per-µs FIFO
/// buckets (intrusive lists threaded through the slot table), with a 4-ary
/// min-heap of 16-byte plain structs as overflow for events beyond the
/// window. Short-horizon events — the per-packet hot path — schedule and
/// fire in O(1) with no comparisons; long-horizon events pay one small heap
/// push/pop and migrate into the wheel when the window advances. Two
/// invariants make the pop order exactly (fire time, scheduling order):
/// the window base only ever advances to the block containing the overflow
/// minimum (so overflow events are always strictly later than every wheel
/// event), and migration drains the heap in (at, seq) order before any
/// direct insert can target the new window (so bucket FIFO order is
/// scheduling order). Cancelled events destroy their callback immediately
/// and leave a tombstone in their bucket or the heap, reclaimed when it
/// surfaces.
///
/// Capacity limits (asserted in debug builds): at most 2^24 - 1 events
/// pending at once, at most 2^40 events scheduled over the loop's lifetime.
class EventLoop {
 public:
  /// Inline storage budget for event closures. Sized for the largest hot
  /// closure in the pipeline — `this` plus a 72-byte net::Packet captured by
  /// value in the link delivery path (80 bytes) — with one word of headroom.
  /// Anything bigger must capture by pointer/reference or shrink.
  static constexpr size_t kCallbackCapacity = 88;
  using Callback = InlineFunction<void(), kCallbackCapacity>;

  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulation time. Starts at Timestamp::Zero().
  Timestamp now() const { return now_; }

  /// Pre-allocates capacity for `events` concurrently pending events in
  /// every internal structure: the event heap AND the liveness slot table
  /// (slots + free list). After Reserve(n), a loop whose pending population
  /// never exceeds n performs no allocations — Schedule/Cancel/pop are
  /// guaranteed heap-traffic-free.
  void Reserve(size_t events);

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to zero
  /// (the event still runs strictly after the current callback returns).
  EventHandle Schedule(TimeDelta delay, Callback fn);

  /// Schedules `fn` at an absolute time; times in the past clamp to `now()`.
  EventHandle ScheduleAt(Timestamp at, Callback fn);

  /// Cancels a pending event. No-op if the event already ran or the handle is
  /// inert or stale.
  void Cancel(EventHandle handle);

  /// Runs until the queue drains or simulation time reaches `until`
  /// (inclusive: events at exactly `until` run).
  void RunUntil(Timestamp until);

  /// Requests that the enclosing RunUntil return right after the currently
  /// executing callback, leaving now() at that callback's fire time and
  /// every later event pending. Because events execute in strict
  /// (fire-time, seq) order and nothing is popped early, a later RunUntil
  /// resumes the identical event sequence an uninterrupted run would have
  /// executed — pausing is invisible to results. The flag is consumed at
  /// the next event boundary; callers invoke this from inside a callback
  /// (the frame-boundary rendezvous: a frame tick stages its control math,
  /// pauses, and the batched runner completes the frame before resuming).
  void RequestPause() { pause_requested_ = true; }

  /// Runs for `duration` from the current time.
  void RunFor(TimeDelta duration) { RunUntil(now_ + duration); }

  /// Runs until the queue is fully drained. Intended for tests; production
  /// sessions always bound the run time.
  void RunAll();

  /// Number of events executed so far (for tests/diagnostics).
  uint64_t events_executed() const { return events_executed_; }
  /// Number of events currently pending.
  size_t pending() const { return live_count_; }

 private:
  /// Overflow-heap entry: trivially copyable, 16 bytes — four children share
  /// one cache line, so the pop-path sift-down stays cheap even for deep
  /// heaps. The callback lives in the slot table, not the heap. `id` packs
  /// the monotone sequence number into the high 40 bits and the slot index
  /// into the low 24, so comparing ids compares scheduling order directly.
  struct Event {
    Timestamp at;
    uint64_t id;
  };
  /// Strict total order: earlier fire time first, scheduling order breaking
  /// ties. Because the order is total, the pop sequence is identical for any
  /// heap arity — the 4-ary layout below is purely a cache optimization.
  static bool Earlier(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.id < b.id;
  }
  /// Slot-table entry. `id` is the packed id of the current occupant, 0 when
  /// the slot is free or cancelled. Since the sequence half of the id is
  /// globally unique, an id mismatch identifies both stale handles and
  /// tombstones — no per-slot generation counter (or wrap concern) is
  /// needed. `next` threads the slot into its wheel bucket's FIFO list.
  struct Slot {
    Callback fn;
    uint64_t id = 0;
    uint32_t next = 0;
  };
  /// Wheel bucket: head/tail of the intrusive FIFO list of slots whose
  /// events fire in this µs.
  struct Bucket {
    uint32_t head = kNilSlot;
    uint32_t tail = kNilSlot;
  };

  static constexpr uint64_t kSlotMask = 0xFFFFFFull;
  static constexpr int kSlotBits = 24;
  static constexpr uint32_t kNilSlot = 0xFFFFFFFFu;
  /// Wheel window in µs (power of two; one bucket per µs).
  static constexpr int64_t kWheelSpanUs = 1024;
  static constexpr size_t kWheelWords = kWheelSpanUs / 64;

  bool PopAndRunNext(Timestamp until);
  /// Sift-up insertion into the 4-ary overflow heap.
  void HeapPush(const Event& e);
  /// Removes the overflow-heap top and returns it.
  Event PopTop();
  /// Appends `slot` to the bucket at `offset` within the window.
  void BucketAppend(int64_t offset, uint32_t slot);
  /// Unlinks the head of the bucket at `offset`, clearing its occupancy bit
  /// when the bucket empties.
  void BucketPopHead(int64_t offset);
  /// Offset of the earliest occupied bucket, or -1 if the window is empty.
  int FindFirstOccupied() const;
  /// Jumps the window base to the block containing `horizon` (the overflow
  /// minimum) and migrates every overflow event inside the new window into
  /// its bucket, in (at, seq) order. Only legal while the window is empty.
  void AdvanceWheel(Timestamp horizon);

  Timestamp now_ = Timestamp::Zero();
  bool pause_requested_ = false;
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
  size_t live_count_ = 0;
  /// Start of the wheel window; always aligned to kWheelSpanUs and <= now_
  /// whenever control is outside PopAndRunNext.
  int64_t wheel_base_us_ = 0;
  /// One FIFO bucket per µs of the window.
  std::array<Bucket, kWheelSpanUs> wheel_{};
  /// Occupancy bitmap over `wheel_` for O(1) earliest-bucket scans.
  std::array<uint64_t, kWheelWords> occupied_{};
  /// Implicit 4-ary min-heap on (at, seq) holding events beyond the window:
  /// root at 0, children of i at 4i+1..4i+4.
  std::vector<Event> heap_;
  /// Callback slots addressed by the low 24 handle bits, stamped with the
  /// occupant's id.
  std::vector<Slot> slots_;
  /// Released slot indices available for reuse (LIFO).
  std::vector<uint32_t> free_slots_;
};

/// Re-schedules a callback at a fixed period until stopped. The first firing
/// is one period after `Start()` (or at an explicit phase offset).
class RepeatingTask {
 public:
  /// Creates a task bound to `loop` firing every `period`, invoking `fn`.
  RepeatingTask(EventLoop& loop, TimeDelta period, EventLoop::Callback fn);
  ~RepeatingTask();

  RepeatingTask(const RepeatingTask&) = delete;
  RepeatingTask& operator=(const RepeatingTask&) = delete;

  /// Begins firing. `initial_delay` defaults to one period.
  void Start();
  void StartWithDelay(TimeDelta initial_delay);
  /// Stops future firings; safe to call from within the callback.
  void Stop();

  bool running() const { return running_; }

 private:
  void Fire();

  EventLoop& loop_;
  TimeDelta period_;
  EventLoop::Callback fn_;
  bool running_ = false;
  EventHandle pending_;
};

}  // namespace rave
