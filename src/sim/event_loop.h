// Deterministic discrete-event simulation core.
//
// Every component in the RTC pipeline (pacer, link, feedback path, encoder
// cadence) schedules callbacks on a single `EventLoop`. Events with equal
// fire times execute in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes whole-session runs bit-for-bit
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace rave {

/// Handle used to cancel a scheduled event. Default-constructed handles are
/// inert.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class EventLoop;
  explicit EventHandle(uint64_t id) : id_(id) {}
  uint64_t id_ = 0;
};

/// Single-threaded discrete-event loop with µs resolution.
///
/// The pending set is a binary heap over a plain vector (reservable, and
/// events move out of it when they fire) plus a hash set of live event ids:
/// Schedule, Cancel and the cancelled-event check on pop are all O(1)
/// (amortized / expected), so cancel-heavy workloads (retransmission timers,
/// repeating tasks) never degrade to linear scans.
class EventLoop {
 public:
  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulation time. Starts at Timestamp::Zero().
  Timestamp now() const { return now_; }

  /// Pre-allocates capacity for `events` pending events. Optional; callers
  /// with a known steady-state event population can avoid heap regrowth.
  void Reserve(size_t events);

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to zero
  /// (the event still runs strictly after the current callback returns).
  EventHandle Schedule(TimeDelta delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time; times in the past clamp to `now()`.
  EventHandle ScheduleAt(Timestamp at, std::function<void()> fn);

  /// Cancels a pending event. No-op if the event already ran or the handle is
  /// inert.
  void Cancel(EventHandle handle);

  /// Runs until the queue drains or simulation time reaches `until`
  /// (inclusive: events at exactly `until` run).
  void RunUntil(Timestamp until);

  /// Runs for `duration` from the current time.
  void RunFor(TimeDelta duration) { RunUntil(now_ + duration); }

  /// Runs until the queue is fully drained. Intended for tests; production
  /// sessions always bound the run time.
  void RunAll();

  /// Number of events executed so far (for tests/diagnostics).
  uint64_t events_executed() const { return events_executed_; }
  /// Number of events currently pending.
  size_t pending() const { return live_.size(); }

 private:
  struct Event {
    Timestamp at;
    uint64_t seq;
    uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool PopAndRunNext(Timestamp until);
  /// Removes the heap top and returns it. Cancelled tombstones stay in the
  /// heap until they reach the top; `live_` tells them apart.
  Event PopTop();

  Timestamp now_ = Timestamp::Zero();
  uint64_t next_seq_ = 1;
  uint64_t next_id_ = 1;
  uint64_t events_executed_ = 0;
  /// Min-heap on (at, seq) maintained with std::push_heap/std::pop_heap.
  std::vector<Event> heap_;
  /// Ids of scheduled-and-not-yet-run-or-cancelled events. An event found at
  /// the heap top whose id is absent here was cancelled and is discarded.
  std::unordered_set<uint64_t> live_;
};

/// Re-schedules a callback at a fixed period until stopped. The first firing
/// is one period after `Start()` (or at an explicit phase offset).
class RepeatingTask {
 public:
  /// Creates a task bound to `loop` firing every `period`, invoking `fn`.
  RepeatingTask(EventLoop& loop, TimeDelta period, std::function<void()> fn);
  ~RepeatingTask();

  RepeatingTask(const RepeatingTask&) = delete;
  RepeatingTask& operator=(const RepeatingTask&) = delete;

  /// Begins firing. `initial_delay` defaults to one period.
  void Start();
  void StartWithDelay(TimeDelta initial_delay);
  /// Stops future firings; safe to call from within the callback.
  void Stop();

  bool running() const { return running_; }

 private:
  void Fire();

  EventLoop& loop_;
  TimeDelta period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventHandle pending_;
};

}  // namespace rave
