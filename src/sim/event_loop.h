// Deterministic discrete-event simulation core.
//
// Every component in the RTC pipeline (pacer, link, feedback path, encoder
// cadence) schedules callbacks on a single `EventLoop`. Events with equal
// fire times execute in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes whole-session runs bit-for-bit
// reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/inline_function.h"
#include "util/time.h"

namespace rave {

/// Handle used to cancel a scheduled event. Default-constructed handles are
/// inert. The 64-bit id encodes (sequence number << 24 | slot index) into
/// the loop's slot table; the sequence number is globally unique, so it acts
/// as the slot's generation stamp — a stale handle (its event already ran or
/// was cancelled, and the slot was reused) can never cancel a newer event.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class EventLoop;
  explicit EventHandle(uint64_t id) : id_(id) {}
  uint64_t id_ = 0;
};

/// Single-threaded discrete-event loop with µs resolution.
///
/// Allocation-free in steady state: callbacks live in fixed inline storage
/// (`Callback`, an InlineFunction — oversized captures fail to compile) inside
/// a reusable slot table, and liveness is an id stamp on the slot — Schedule,
/// Cancel and the cancelled-event check on pop are two array reads with no
/// hashing and no heap traffic.
///
/// The pending set is a two-level timing wheel: a 4096 µs window of per-µs
/// FIFO buckets (L0), a 4096-bucket outer wheel of 4096 µs blocks covering
/// ~16.8 s (L1), and a 4-ary min-heap of 16-byte plain structs as overflow
/// beyond that. Both intrusive bucket lists thread through the slot table.
/// Every cadence in a session — pacer gaps, link serializations, frame
/// ticks, feedback intervals, RTX timers — lands inside the L1 horizon, so
/// the per-event cost is O(1) appends and bitmap scans with no comparisons;
/// only rare long timers (fault edges, session end) touch the heap. The
/// levels form a strict time hierarchy — every L0 event precedes every L1
/// event precedes every heap event — maintained by three invariants that
/// also make the pop order exactly (fire time, scheduling order):
///   * a window (L0 or L1) only advances when it is completely empty, so the
///     circular index mapping never mixes entries from different windows;
///   * L0 advances to the L1 block holding the next event and migrates that
///     one block, whose span equals the L0 window exactly;
///   * L1 advances to the heap-minimum's block and drains the heap in
///     (at, seq) order, so per-bucket FIFO order remains scheduling order
///     (later direct inserts carry later seqs and append behind).
/// Cancelled events destroy their callback immediately and leave a tombstone
/// in their bucket or the heap, reclaimed when it surfaces.
///
/// Capacity limits (asserted in debug builds): at most 2^24 - 1 events
/// pending at once, at most 2^40 events scheduled over the loop's lifetime.
class EventLoop {
 public:
  /// Inline storage budget for event closures. Sized for the largest hot
  /// closure in the pipeline — `this` plus a 72-byte net::Packet captured by
  /// value in the link delivery path (80 bytes) — with one word of headroom.
  /// Anything bigger must capture by pointer/reference or shrink.
  static constexpr size_t kCallbackCapacity = 88;
  using Callback = InlineFunction<void(), kCallbackCapacity>;

  EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulation time. Starts at Timestamp::Zero().
  Timestamp now() const { return now_; }

  /// Pre-allocates capacity for `events` concurrently pending events in
  /// every internal structure: the event heap AND the liveness slot table
  /// (slots + free list). After Reserve(n), a loop whose pending population
  /// never exceeds n performs no allocations — Schedule/Cancel/pop are
  /// guaranteed heap-traffic-free.
  void Reserve(size_t events);

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to zero
  /// (the event still runs strictly after the current callback returns).
  EventHandle Schedule(TimeDelta delay, Callback fn);

  /// Schedules `fn` at an absolute time; times in the past clamp to `now()`.
  EventHandle ScheduleAt(Timestamp at, Callback fn);

  /// Cancels a pending event. No-op if the event already ran or the handle is
  /// inert or stale.
  void Cancel(EventHandle handle);

  /// Runs until the queue drains or simulation time reaches `until`
  /// (inclusive: events at exactly `until` run).
  void RunUntil(Timestamp until);

  /// Requests that the enclosing RunUntil return right after the currently
  /// executing callback, leaving now() at that callback's fire time and
  /// every later event pending. Because events execute in strict
  /// (fire-time, seq) order and nothing is popped early, a later RunUntil
  /// resumes the identical event sequence an uninterrupted run would have
  /// executed — pausing is invisible to results. The flag is consumed at
  /// the next event boundary; callers invoke this from inside a callback
  /// (the frame-boundary rendezvous: a frame tick stages its control math,
  /// pauses, and the batched runner completes the frame before resuming).
  void RequestPause() { pause_requested_ = true; }

  /// Runs for `duration` from the current time.
  void RunFor(TimeDelta duration) { RunUntil(now_ + duration); }

  /// Runs until the queue is fully drained. Intended for tests; production
  /// sessions always bound the run time.
  void RunAll();

  /// Fire time of the earliest pending event, or PlusInfinity when the queue
  /// is empty. Pops any cancelled tombstones encountered at the front (slot
  /// reclamation order is unobservable, so peeking never changes results).
  Timestamp NextEventTime();

  /// Event-coalescing primitive: lets the currently executing callback step
  /// simulation time forward to `t` and keep processing work that a
  /// per-packet scheduler would have handled in its own event. The step is
  /// granted only when it is provably unobservable:
  ///   * coalescing is enabled (the RAVE_NO_COALESCE A/B knob),
  ///   * `t` does not pass the enclosing RunUntil bound (inclusive, matching
  ///     RunUntil's own event admission), and
  ///   * `t` is strictly earlier than every pending event — any discontinuity
  ///     that could observe or alter the train (capacity step, fault edge,
  ///     handover, periodic tick, feedback arrival) is itself a scheduled
  ///     event, so the train automatically splits there.
  /// On success now() advances to `t` and the step is counted in
  /// events_executed() (the caller is doing the work of the event it would
  /// otherwise have armed, keeping the logical event count — which feeds
  /// cached SessionResults — identical with coalescing on or off). On
  /// failure the caller must schedule a continuation at `t` and return.
  bool TryAdvanceTo(Timestamp t);

  /// A/B knob for TryAdvanceTo (default: on unless RAVE_NO_COALESCE is set
  /// in the environment at construction). Disabling never changes results —
  /// callers fall back to scheduling the continuation events a per-packet
  /// scheduler would have armed at the same program points.
  void set_coalescing(bool on) { coalescing_ = on; }
  bool coalescing() const { return coalescing_; }

  /// Number of logical events executed so far: dispatched callbacks plus
  /// granted TryAdvanceTo steps. Identical with coalescing on or off (it is
  /// part of SessionResult and must stay cache-key-stable across modes).
  uint64_t events_executed() const { return events_executed_; }
  /// Number of callbacks actually dispatched through the scheduler — the
  /// count coalescing shrinks. Host-side diagnostics only; never feeds
  /// deterministic results.
  uint64_t events_dispatched() const { return events_dispatched_; }
  /// Number of events currently pending.
  size_t pending() const { return live_count_; }

 private:
  /// Overflow-heap entry: trivially copyable, 16 bytes — four children share
  /// one cache line, so the pop-path sift-down stays cheap even for deep
  /// heaps. The callback lives in the slot table, not the heap. `id` packs
  /// the monotone sequence number into the high 40 bits and the slot index
  /// into the low 24, so comparing ids compares scheduling order directly.
  struct Event {
    Timestamp at;
    uint64_t id;
  };
  /// Strict total order: earlier fire time first, scheduling order breaking
  /// ties. Because the order is total, the pop sequence is identical for any
  /// heap arity — the 4-ary layout below is purely a cache optimization.
  static bool Earlier(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.id < b.id;
  }
  /// Slot-table entry. `id` is the packed id of the current occupant, 0 when
  /// the slot is free or cancelled. Since the sequence half of the id is
  /// globally unique, an id mismatch identifies both stale handles and
  /// tombstones — no per-slot generation counter (or wrap concern) is
  /// needed. `next` threads the slot into its wheel bucket's FIFO list;
  /// `at` preserves the exact fire time while the event sits in an L1 bucket
  /// (whose index only resolves time to kWheelSpanUs).
  struct Slot {
    Callback fn;
    Timestamp at = Timestamp::Zero();
    uint64_t id = 0;
    uint32_t next = 0;
  };
  /// Wheel bucket: head/tail of the intrusive FIFO list of slots whose
  /// events fire in this µs.
  struct Bucket {
    uint32_t head = kNilSlot;
    uint32_t tail = kNilSlot;
  };

  static constexpr uint64_t kSlotMask = 0xFFFFFFull;
  static constexpr int kSlotBits = 24;
  static constexpr uint32_t kNilSlot = 0xFFFFFFFFu;
  /// L0 window in µs (power of two; one bucket per µs). Sized so several
  /// packet-cadence events (~1 ms apart) share one window — a window advance
  /// (bucket migration) then amortizes over all of them instead of firing
  /// per event.
  static constexpr int kWheelShift = 12;
  static constexpr int64_t kWheelSpanUs = int64_t{1} << kWheelShift;
  static constexpr size_t kWheelWords = kWheelSpanUs / 64;
  /// L1 bucket count; each bucket spans one L0 window, so the L1 horizon is
  /// kWheelSpanUs * kL1Buckets = 2^24 µs ≈ 16.8 s.
  static constexpr int64_t kL1Buckets = 4096;
  static constexpr int64_t kL1SpanUs = kWheelSpanUs * kL1Buckets;
  static constexpr size_t kL1Words = kL1Buckets / 64;

  bool PopAndRunNext(Timestamp until);
  /// Conservative pending-event probe for TryAdvanceTo: true when some
  /// pending event MAY fire at or before `t`. Exact for L0 and the heap;
  /// for L1 it tests the first occupied bucket's start (refusing a grant a
  /// little early is always safe — the caller arms a continuation at the
  /// same program point either way, deterministically).
  bool HasEventAtOrBefore(Timestamp t);
  /// Sift-up insertion into the 4-ary overflow heap.
  void HeapPush(const Event& e);
  /// Removes the overflow-heap top and returns it.
  Event PopTop();
  /// Appends `slot` to the L0 bucket at `offset` within the window.
  void BucketAppend(int64_t offset, uint32_t slot);
  /// Unlinks the head of the L0 bucket at `offset`, clearing its occupancy
  /// bit when the bucket empties.
  void BucketPopHead(int64_t offset);
  /// Appends `slot` to L1 bucket `bucket`.
  void L1Append(int64_t bucket, uint32_t slot);
  /// Offset of the earliest occupied L0 bucket, or -1 if the window is empty.
  int FindFirstOccupied() const;
  /// Index of the earliest occupied L1 bucket, or -1 if L1 is empty.
  int FindFirstOccupiedL1() const;
  /// Jumps the L0 window onto L1 bucket `bucket` and distributes its FIFO
  /// list into per-µs L0 buckets (reclaiming tombstones). Only legal while
  /// L0 is empty; preserves per-µs scheduling order because the list is
  /// walked front to back.
  void MigrateL1Bucket(int64_t bucket);
  /// Jumps the L1 window to the block containing `horizon` (the overflow
  /// minimum) and drains every overflow event inside the new window into its
  /// L1 bucket, in (at, seq) order. Only legal while L0 and L1 are empty.
  void AdvanceL1(Timestamp horizon);

  Timestamp now_ = Timestamp::Zero();
  bool pause_requested_ = false;
  /// Default read from the environment once at construction (see
  /// set_coalescing); constructor lives in the .cpp to keep <cstdlib> out of
  /// this header.
  bool coalescing_;
  /// Bound of the innermost active RunUntil; TryAdvanceTo may not step past
  /// it. MinusInfinity outside any run, so stray steps are always refused.
  Timestamp run_bound_ = Timestamp::MinusInfinity();
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
  uint64_t events_dispatched_ = 0;
  size_t live_count_ = 0;
  /// Start of the L0 window; always aligned to kWheelSpanUs and <= now_
  /// whenever control is outside PopAndRunNext.
  int64_t wheel_base_us_ = 0;
  /// One FIFO bucket per µs of the L0 window.
  std::array<Bucket, kWheelSpanUs> wheel_{};
  /// Occupancy bitmap over `wheel_` for O(1) earliest-bucket scans.
  std::array<uint64_t, kWheelWords> occupied_{};
  /// Scan hint: every occupancy word below this index is zero. Lowered on
  /// append, raised by scans (mutable: advancing it is unobservable).
  mutable size_t scan_word_ = 0;
  /// Start of the L1 window; aligned to kL1SpanUs and <= now_ outside
  /// PopAndRunNext, so the circular bucket mapping
  /// (at >> kWheelShift) & (kL1Buckets - 1) is injective over the live
  /// window.
  int64_t l1_base_us_ = 0;
  /// One FIFO bucket per kWheelSpanUs block of the L1 window.
  std::array<Bucket, kL1Buckets> l1_wheel_{};
  /// Occupancy bitmap over `l1_wheel_`.
  std::array<uint64_t, kL1Words> l1_occupied_{};
  /// Scan hint for `l1_occupied_`, same contract as `scan_word_`.
  mutable size_t l1_scan_word_ = 0;
  /// Implicit 4-ary min-heap on (at, seq) holding events beyond the window:
  /// root at 0, children of i at 4i+1..4i+4.
  std::vector<Event> heap_;
  /// Callback slots addressed by the low 24 handle bits, stamped with the
  /// occupant's id.
  std::vector<Slot> slots_;
  /// Released slot indices available for reuse (LIFO).
  std::vector<uint32_t> free_slots_;
};

/// Re-schedules a callback at a fixed period until stopped. The first firing
/// is one period after `Start()` (or at an explicit phase offset).
class RepeatingTask {
 public:
  /// Creates a task bound to `loop` firing every `period`, invoking `fn`.
  RepeatingTask(EventLoop& loop, TimeDelta period, EventLoop::Callback fn);
  ~RepeatingTask();

  RepeatingTask(const RepeatingTask&) = delete;
  RepeatingTask& operator=(const RepeatingTask&) = delete;

  /// Begins firing. `initial_delay` defaults to one period.
  void Start();
  void StartWithDelay(TimeDelta initial_delay);
  /// Stops future firings; safe to call from within the callback.
  void Stop();

  bool running() const { return running_; }

 private:
  void Fire();

  EventLoop& loop_;
  TimeDelta period_;
  EventLoop::Callback fn_;
  bool running_ = false;
  EventHandle pending_;
};

}  // namespace rave
