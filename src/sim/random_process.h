// Stochastic building blocks shared by the content model and the capacity
// trace generators: a mean-reverting AR(1) process, a two-state Gilbert
// (Markov) process and a Poisson event stream.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/time.h"

namespace rave {

/// Mean-reverting first-order autoregressive process:
///   x' = mean + phi * (x - mean) + N(0, sigma^2),
/// clamped to [lo, hi]. Sampled at a caller-defined cadence.
class Ar1Process {
 public:
  struct Config {
    double mean = 1.0;
    double phi = 0.95;    ///< persistence in [0,1); higher = smoother
    double sigma = 0.05;  ///< innovation stddev
    double lo = 0.0;
    double hi = 1e18;
  };

  Ar1Process(const Config& config, Rng rng);

  /// Advances one step and returns the new value.
  double Step();
  double value() const { return value_; }
  /// Forces the current value (used to inject scene changes).
  void SetValue(double v);

 private:
  Config config_;
  Rng rng_;
  double value_;
};

/// Two-state Markov (Gilbert) process; useful for bursty impairments such as
/// Wi-Fi interference. State 0 = "good", state 1 = "bad".
class GilbertProcess {
 public:
  struct Config {
    double p_good_to_bad = 0.01;  ///< per-step transition probability
    double p_bad_to_good = 0.2;
  };

  GilbertProcess(const Config& config, Rng rng);

  /// Advances one step; returns true while in the bad state.
  bool Step();
  bool bad() const { return bad_; }

 private:
  Config config_;
  Rng rng_;
  bool bad_ = false;
};

/// Poisson arrival stream: exponentially distributed gaps with a given mean
/// interval. Used for scene-change arrivals in the content model.
class PoissonArrivals {
 public:
  PoissonArrivals(TimeDelta mean_interval, Rng rng);

  /// Time until the next arrival (freshly sampled each call).
  TimeDelta NextGap();

 private:
  double mean_seconds_;
  Rng rng_;
};

}  // namespace rave
