#include "sim/random_process.h"

#include <algorithm>
#include <cassert>

namespace rave {

Ar1Process::Ar1Process(const Config& config, Rng rng)
    : config_(config), rng_(rng), value_(config.mean) {
  assert(config_.phi >= 0.0 && config_.phi < 1.0);
  assert(config_.hi > config_.lo);
}

double Ar1Process::Step() {
  const double centered = value_ - config_.mean;
  double next =
      config_.mean + config_.phi * centered + rng_.Gaussian(0.0, config_.sigma);
  value_ = std::clamp(next, config_.lo, config_.hi);
  return value_;
}

void Ar1Process::SetValue(double v) {
  value_ = std::clamp(v, config_.lo, config_.hi);
}

GilbertProcess::GilbertProcess(const Config& config, Rng rng)
    : config_(config), rng_(rng) {}

bool GilbertProcess::Step() {
  const double p = bad_ ? config_.p_bad_to_good : config_.p_good_to_bad;
  // Degenerate probabilities are certainties, not coin flips: no RNG draw,
  // so a never-transitioning chain leaves the generator untouched.
  if (p <= 0.0) return bad_;
  if (p >= 1.0) {
    bad_ = !bad_;
    return bad_;
  }
  if (rng_.Bernoulli(p)) bad_ = !bad_;
  return bad_;
}

PoissonArrivals::PoissonArrivals(TimeDelta mean_interval, Rng rng)
    : mean_seconds_(mean_interval.seconds()), rng_(rng) {
  assert(mean_seconds_ > 0.0);
}

TimeDelta PoissonArrivals::NextGap() {
  return TimeDelta::SecondsF(rng_.Exponential(mean_seconds_));
}

}  // namespace rave
