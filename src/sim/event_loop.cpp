#include "sim/event_loop.h"

#include <bit>
#include <cassert>
#include <cstdlib>
#include <utility>

namespace rave {

EventLoop::EventLoop() : coalescing_(std::getenv("RAVE_NO_COALESCE") == nullptr) {}

void EventLoop::Reserve(size_t events) {
  heap_.reserve(events);
  slots_.reserve(events);
  free_slots_.reserve(events);
}

EventHandle EventLoop::Schedule(TimeDelta delay, Callback fn) {
  if (delay < TimeDelta::Zero()) delay = TimeDelta::Zero();
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle EventLoop::ScheduleAt(Timestamp at, Callback fn) {
  assert(fn);
  if (at < now_) at = now_;

  uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<uint32_t>(slots_.size());
    assert(slot < kSlotMask);
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  assert(next_seq_ < (1ull << 40));
  const uint64_t id = (next_seq_++ << kSlotBits) | slot;
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.id = id;

  s.at = at;

  // Inside the L0 window (at >= now_ >= wheel_base_us_) the event goes
  // straight to its µs bucket; inside the L1 horizon, to its kWheelSpanUs block;
  // beyond that, to the overflow heap.
  const int64_t at_us = at.us();
  if (at_us - wheel_base_us_ < kWheelSpanUs) {
    BucketAppend(at_us & (kWheelSpanUs - 1), slot);
  } else if (at_us - l1_base_us_ < kL1SpanUs) {
    L1Append((at_us >> kWheelShift) & (kL1Buckets - 1), slot);
  } else {
    HeapPush(Event{at, id});
  }
  ++live_count_;
  return EventHandle(id);
}

void EventLoop::Cancel(EventHandle handle) {
  if (!handle.valid()) return;
  const uint32_t slot = static_cast<uint32_t>(handle.id_ & kSlotMask);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  // Stale id => the event already ran or was cancelled (and the slot
  // possibly reused by a newer event, which must survive).
  if (s.id != handle.id_) return;
  // Destroy the captured state now; the bucket/heap entry becomes a
  // tombstone whose slot is reclaimed when it surfaces.
  s.fn = Callback();
  s.id = 0;
  --live_count_;
}

void EventLoop::HeapPush(const Event& e) {
  size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const size_t parent = (i - 1) >> 2;
    if (!Earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

EventLoop::Event EventLoop::PopTop() {
  const Event top = heap_.front();
  const Event last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n > 0) {
    // Sift `last` down from the root, early-exiting as soon as it is no
    // later than every child of the current hole.
    size_t i = 0;
    for (;;) {
      const size_t first = 4 * i + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t end = first + 4 < n ? first + 4 : n;
      for (size_t c = first + 1; c < end; ++c) {
        if (Earlier(heap_[c], heap_[best])) best = c;
      }
      if (!Earlier(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void EventLoop::BucketAppend(int64_t offset, uint32_t slot) {
  slots_[slot].next = kNilSlot;
  Bucket& b = wheel_[static_cast<size_t>(offset)];
  if (b.tail == kNilSlot) {
    b.head = slot;
    const size_t word = static_cast<size_t>(offset >> 6);
    occupied_[word] |= 1ull << (offset & 63);
    if (word < scan_word_) scan_word_ = word;
  } else {
    slots_[b.tail].next = slot;
  }
  b.tail = slot;
}

void EventLoop::BucketPopHead(int64_t offset) {
  Bucket& b = wheel_[static_cast<size_t>(offset)];
  b.head = slots_[b.head].next;
  if (b.head == kNilSlot) {
    b.tail = kNilSlot;
    occupied_[static_cast<size_t>(offset >> 6)] &= ~(1ull << (offset & 63));
  }
}

void EventLoop::L1Append(int64_t bucket, uint32_t slot) {
  slots_[slot].next = kNilSlot;
  Bucket& b = l1_wheel_[static_cast<size_t>(bucket)];
  if (b.tail == kNilSlot) {
    b.head = slot;
    const size_t word = static_cast<size_t>(bucket >> 6);
    l1_occupied_[word] |= 1ull << (bucket & 63);
    if (word < l1_scan_word_) l1_scan_word_ = word;
  } else {
    slots_[b.tail].next = slot;
  }
  b.tail = slot;
}

int EventLoop::FindFirstOccupied() const {
  for (size_t w = scan_word_; w < kWheelWords; ++w) {
    if (occupied_[w] != 0) {
      scan_word_ = w;
      return static_cast<int>(w * 64) + std::countr_zero(occupied_[w]);
    }
  }
  scan_word_ = kWheelWords;
  return -1;
}

int EventLoop::FindFirstOccupiedL1() const {
  for (size_t w = l1_scan_word_; w < kL1Words; ++w) {
    if (l1_occupied_[w] != 0) {
      l1_scan_word_ = w;
      return static_cast<int>(w * 64) + std::countr_zero(l1_occupied_[w]);
    }
  }
  l1_scan_word_ = kL1Words;
  return -1;
}

void EventLoop::MigrateL1Bucket(int64_t bucket) {
  Bucket& b = l1_wheel_[static_cast<size_t>(bucket)];
  uint32_t slot = b.head;
  b.head = kNilSlot;
  b.tail = kNilSlot;
  l1_occupied_[static_cast<size_t>(bucket >> 6)] &= ~(1ull << (bucket & 63));
  while (slot != kNilSlot) {
    const uint32_t next = slots_[slot].next;
    if (slots_[slot].id == 0) {
      free_slots_.push_back(slot);  // cancelled while parked in L1
    } else {
      BucketAppend(slots_[slot].at.us() & (kWheelSpanUs - 1), slot);
    }
    slot = next;
  }
}

void EventLoop::AdvanceL1(Timestamp horizon) {
  l1_base_us_ = horizon.us() & ~(kL1SpanUs - 1);
  while (!heap_.empty() && heap_.front().at.us() - l1_base_us_ < kL1SpanUs) {
    const Event e = PopTop();
    const uint32_t slot = static_cast<uint32_t>(e.id & kSlotMask);
    if (slots_[slot].id != e.id) {
      free_slots_.push_back(slot);  // cancelled while in overflow
      continue;
    }
    L1Append((e.at.us() >> kWheelShift) & (kL1Buckets - 1), slot);
  }
}

Timestamp EventLoop::NextEventTime() {
  for (;;) {
    const int offset = FindFirstOccupied();
    if (offset >= 0) {
      const uint32_t slot = wheel_[static_cast<size_t>(offset)].head;
      if (slots_[slot].id == 0) {
        BucketPopHead(offset);  // cancelled tombstone
        free_slots_.push_back(slot);
        continue;
      }
      return Timestamp::Micros(wheel_base_us_ + offset);
    }
    const int bucket = FindFirstOccupiedL1();
    if (bucket >= 0) {
      // An L1 bucket index only resolves time to kWheelSpanUs; walk the (short)
      // FIFO list for the exact minimum, reclaiming head tombstones.
      Bucket& b = l1_wheel_[static_cast<size_t>(bucket)];
      while (b.head != kNilSlot && slots_[b.head].id == 0) {
        const uint32_t dead = b.head;
        b.head = slots_[dead].next;
        free_slots_.push_back(dead);
      }
      if (b.head == kNilSlot) {
        b.tail = kNilSlot;
        l1_occupied_[static_cast<size_t>(bucket >> 6)] &=
            ~(1ull << (bucket & 63));
        continue;
      }
      Timestamp min = Timestamp::PlusInfinity();
      for (uint32_t s = b.head; s != kNilSlot; s = slots_[s].next) {
        if (slots_[s].id != 0 && slots_[s].at < min) min = slots_[s].at;
      }
      return min;
    }
    if (heap_.empty()) return Timestamp::PlusInfinity();
    const Event& top = heap_.front();
    const uint32_t tslot = static_cast<uint32_t>(top.id & kSlotMask);
    if (slots_[tslot].id != top.id) {
      PopTop();  // cancelled tombstone
      free_slots_.push_back(tslot);
      continue;
    }
    return top.at;
  }
}

bool EventLoop::HasEventAtOrBefore(Timestamp t) {
  for (;;) {
    const int offset = FindFirstOccupied();
    if (offset >= 0) {
      const uint32_t slot = wheel_[static_cast<size_t>(offset)].head;
      if (slots_[slot].id == 0) {
        BucketPopHead(offset);  // cancelled tombstone
        free_slots_.push_back(slot);
        continue;
      }
      return Timestamp::Micros(wheel_base_us_ + offset) <= t;
    }
    const int bucket = FindFirstOccupiedL1();
    if (bucket >= 0) {
      // Conservative: test the bucket's start, not its exact minimum, so the
      // hot path never walks a list. A refusal is always safe (the caller
      // falls back to scheduling a real event) and the answer depends only
      // on simulation state, so it is deterministic.
      return Timestamp::Micros(l1_base_us_ + bucket * kWheelSpanUs) <= t;
    }
    if (heap_.empty()) return false;
    const Event& top = heap_.front();
    const uint32_t tslot = static_cast<uint32_t>(top.id & kSlotMask);
    if (slots_[tslot].id != top.id) {
      PopTop();  // cancelled tombstone
      free_slots_.push_back(tslot);
      continue;
    }
    return top.at <= t;
  }
}

bool EventLoop::TryAdvanceTo(Timestamp t) {
  assert(t >= now_);
  if (!coalescing_ || t > run_bound_) return false;
  if (HasEventAtOrBefore(t)) return false;
  now_ = t;
  ++events_executed_;
  return true;
}

bool EventLoop::PopAndRunNext(Timestamp until) {
  for (;;) {
    const int offset = FindFirstOccupied();
    if (offset < 0) {
      // L0 window exhausted: refill it from the first occupied L1 bucket
      // (whose span exactly matches the L0 window), else advance the
      // L1 horizon to the earliest overflow-heap event and retry.
      const int bucket = FindFirstOccupiedL1();
      if (bucket >= 0) {
        const int64_t block_start = l1_base_us_ + bucket * kWheelSpanUs;
        if (Timestamp::Micros(block_start) > until) return false;
        wheel_base_us_ = block_start;
        MigrateL1Bucket(bucket);
        continue;
      }
      if (heap_.empty()) return false;
      const Event& top = heap_.front();
      const uint32_t tslot = static_cast<uint32_t>(top.id & kSlotMask);
      if (slots_[tslot].id != top.id) {
        PopTop();  // cancelled tombstone
        free_slots_.push_back(tslot);
        continue;
      }
      if (top.at > until) return false;
      AdvanceL1(top.at);
      continue;
    }
    const uint32_t slot = wheel_[static_cast<size_t>(offset)].head;
    Slot& s = slots_[slot];
    if (s.id == 0) {
      BucketPopHead(offset);  // cancelled tombstone
      free_slots_.push_back(slot);
      continue;
    }
    const Timestamp at = Timestamp::Micros(wheel_base_us_ + offset);
    if (at > until) return false;
    BucketPopHead(offset);
    // Move the callback out before releasing: it may re-schedule (growing
    // slots_) or cancel, and must be able to reuse this slot.
    Callback fn = std::move(s.fn);
    s.id = 0;
    free_slots_.push_back(slot);
    --live_count_;
    now_ = at;
    ++events_executed_;
    ++events_dispatched_;
    fn();
    return true;
  }
}

void EventLoop::RunUntil(Timestamp until) {
  const Timestamp prev_bound = run_bound_;
  run_bound_ = until;
  while (PopAndRunNext(until)) {
    if (pause_requested_) {
      // Return without the trailing now_ advance: time must stay at the
      // paused event so the resuming RunUntil continues the exact sequence.
      pause_requested_ = false;
      run_bound_ = prev_bound;
      return;
    }
  }
  run_bound_ = prev_bound;
  if (until > now_ && until.IsFinite()) now_ = until;
}

void EventLoop::RunAll() { RunUntil(Timestamp::PlusInfinity()); }

RepeatingTask::RepeatingTask(EventLoop& loop, TimeDelta period,
                             EventLoop::Callback fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {
  assert(period_ > TimeDelta::Zero());
  assert(fn_);
}

RepeatingTask::~RepeatingTask() { Stop(); }

void RepeatingTask::Start() { StartWithDelay(period_); }

void RepeatingTask::StartWithDelay(TimeDelta initial_delay) {
  Stop();
  running_ = true;
  pending_ = loop_.Schedule(initial_delay, [this] { Fire(); });
}

void RepeatingTask::Stop() {
  if (running_) {
    loop_.Cancel(pending_);
    running_ = false;
  }
}

void RepeatingTask::Fire() {
  if (!running_) return;
  pending_ = loop_.Schedule(period_, [this] { Fire(); });
  fn_();
}

}  // namespace rave
