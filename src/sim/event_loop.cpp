#include "sim/event_loop.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rave {

void EventLoop::Reserve(size_t events) {
  heap_.reserve(events);
  live_.reserve(events);
}

EventHandle EventLoop::Schedule(TimeDelta delay, std::function<void()> fn) {
  if (delay < TimeDelta::Zero()) delay = TimeDelta::Zero();
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle EventLoop::ScheduleAt(Timestamp at, std::function<void()> fn) {
  assert(fn);
  if (at < now_) at = now_;
  const uint64_t id = next_id_++;
  heap_.push_back(Event{at, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id);
  return EventHandle(id);
}

void EventLoop::Cancel(EventHandle handle) {
  if (!handle.valid()) return;
  // Dropping the id from the live set is the whole cancellation; the heap
  // entry becomes a tombstone discarded when it surfaces. Erase is a no-op
  // (and leak-free) for events that already ran.
  live_.erase(handle.id_);
}

EventLoop::Event EventLoop::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

bool EventLoop::PopAndRunNext(Timestamp until) {
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (live_.find(top.id) == live_.end()) {
      PopTop();  // cancelled tombstone
      continue;
    }
    if (top.at > until) return false;
    Event ev = PopTop();
    live_.erase(ev.id);
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void EventLoop::RunUntil(Timestamp until) {
  while (PopAndRunNext(until)) {
  }
  if (until > now_ && until.IsFinite()) now_ = until;
}

void EventLoop::RunAll() { RunUntil(Timestamp::PlusInfinity()); }

RepeatingTask::RepeatingTask(EventLoop& loop, TimeDelta period,
                             std::function<void()> fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {
  assert(period_ > TimeDelta::Zero());
  assert(fn_);
}

RepeatingTask::~RepeatingTask() { Stop(); }

void RepeatingTask::Start() { StartWithDelay(period_); }

void RepeatingTask::StartWithDelay(TimeDelta initial_delay) {
  Stop();
  running_ = true;
  pending_ = loop_.Schedule(initial_delay, [this] { Fire(); });
}

void RepeatingTask::Stop() {
  if (running_) {
    loop_.Cancel(pending_);
    running_ = false;
  }
}

void RepeatingTask::Fire() {
  if (!running_) return;
  pending_ = loop_.Schedule(period_, [this] { Fire(); });
  fn_();
}

}  // namespace rave
