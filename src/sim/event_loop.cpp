#include "sim/event_loop.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rave {

EventHandle EventLoop::Schedule(TimeDelta delay, std::function<void()> fn) {
  if (delay < TimeDelta::Zero()) delay = TimeDelta::Zero();
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle EventLoop::ScheduleAt(Timestamp at, std::function<void()> fn) {
  assert(fn);
  if (at < now_) at = now_;
  const uint64_t id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  return EventHandle(id);
}

void EventLoop::Cancel(EventHandle handle) {
  if (!handle.valid()) return;
  cancelled_.push_back(handle.id_);
  ++cancelled_pending_;
}

bool EventLoop::PopAndRunNext(Timestamp until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), top.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_pending_;
      queue_.pop();
      continue;
    }
    if (top.at > until) return false;
    // Move the callback out before popping so re-entrant scheduling is safe.
    Event ev{top.at, top.seq, top.id,
             std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void EventLoop::RunUntil(Timestamp until) {
  while (PopAndRunNext(until)) {
  }
  if (until > now_ && until.IsFinite()) now_ = until;
}

void EventLoop::RunAll() { RunUntil(Timestamp::PlusInfinity()); }

RepeatingTask::RepeatingTask(EventLoop& loop, TimeDelta period,
                             std::function<void()> fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {
  assert(period_ > TimeDelta::Zero());
  assert(fn_);
}

RepeatingTask::~RepeatingTask() { Stop(); }

void RepeatingTask::Start() { StartWithDelay(period_); }

void RepeatingTask::StartWithDelay(TimeDelta initial_delay) {
  Stop();
  running_ = true;
  pending_ = loop_.Schedule(initial_delay, [this] { Fire(); });
}

void RepeatingTask::Stop() {
  if (running_) {
    loop_.Cancel(pending_);
    running_ = false;
  }
}

void RepeatingTask::Fire() {
  if (!running_) return;
  pending_ = loop_.Schedule(period_, [this] { Fire(); });
  fn_();
}

}  // namespace rave
