#include "sim/event_loop.h"

#include <bit>
#include <cassert>
#include <utility>

namespace rave {

void EventLoop::Reserve(size_t events) {
  heap_.reserve(events);
  slots_.reserve(events);
  free_slots_.reserve(events);
}

EventHandle EventLoop::Schedule(TimeDelta delay, Callback fn) {
  if (delay < TimeDelta::Zero()) delay = TimeDelta::Zero();
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle EventLoop::ScheduleAt(Timestamp at, Callback fn) {
  assert(fn);
  if (at < now_) at = now_;

  uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<uint32_t>(slots_.size());
    assert(slot < kSlotMask);
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  assert(next_seq_ < (1ull << 40));
  const uint64_t id = (next_seq_++ << kSlotBits) | slot;
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.id = id;

  // Inside the window (at >= now_ >= wheel_base_us_) the event goes straight
  // to its µs bucket; beyond it, to the overflow heap.
  if (at.us() - wheel_base_us_ < kWheelSpanUs) {
    BucketAppend(at.us() & (kWheelSpanUs - 1), slot);
  } else {
    HeapPush(Event{at, id});
  }
  ++live_count_;
  return EventHandle(id);
}

void EventLoop::Cancel(EventHandle handle) {
  if (!handle.valid()) return;
  const uint32_t slot = static_cast<uint32_t>(handle.id_ & kSlotMask);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  // Stale id => the event already ran or was cancelled (and the slot
  // possibly reused by a newer event, which must survive).
  if (s.id != handle.id_) return;
  // Destroy the captured state now; the bucket/heap entry becomes a
  // tombstone whose slot is reclaimed when it surfaces.
  s.fn = Callback();
  s.id = 0;
  --live_count_;
}

void EventLoop::HeapPush(const Event& e) {
  size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const size_t parent = (i - 1) >> 2;
    if (!Earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

EventLoop::Event EventLoop::PopTop() {
  const Event top = heap_.front();
  const Event last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n > 0) {
    // Sift `last` down from the root, early-exiting as soon as it is no
    // later than every child of the current hole.
    size_t i = 0;
    for (;;) {
      const size_t first = 4 * i + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t end = first + 4 < n ? first + 4 : n;
      for (size_t c = first + 1; c < end; ++c) {
        if (Earlier(heap_[c], heap_[best])) best = c;
      }
      if (!Earlier(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void EventLoop::BucketAppend(int64_t offset, uint32_t slot) {
  slots_[slot].next = kNilSlot;
  Bucket& b = wheel_[static_cast<size_t>(offset)];
  if (b.tail == kNilSlot) {
    b.head = slot;
    occupied_[static_cast<size_t>(offset >> 6)] |= 1ull << (offset & 63);
  } else {
    slots_[b.tail].next = slot;
  }
  b.tail = slot;
}

void EventLoop::BucketPopHead(int64_t offset) {
  Bucket& b = wheel_[static_cast<size_t>(offset)];
  b.head = slots_[b.head].next;
  if (b.head == kNilSlot) {
    b.tail = kNilSlot;
    occupied_[static_cast<size_t>(offset >> 6)] &= ~(1ull << (offset & 63));
  }
}

int EventLoop::FindFirstOccupied() const {
  for (size_t w = 0; w < kWheelWords; ++w) {
    if (occupied_[w] != 0) {
      return static_cast<int>(w * 64) + std::countr_zero(occupied_[w]);
    }
  }
  return -1;
}

void EventLoop::AdvanceWheel(Timestamp horizon) {
  wheel_base_us_ = horizon.us() & ~(kWheelSpanUs - 1);
  while (!heap_.empty() && heap_.front().at.us() - wheel_base_us_ < kWheelSpanUs) {
    const Event e = PopTop();
    const uint32_t slot = static_cast<uint32_t>(e.id & kSlotMask);
    if (slots_[slot].id != e.id) {
      free_slots_.push_back(slot);  // cancelled while in overflow
      continue;
    }
    BucketAppend(e.at.us() & (kWheelSpanUs - 1), slot);
  }
}

bool EventLoop::PopAndRunNext(Timestamp until) {
  for (;;) {
    const int offset = FindFirstOccupied();
    if (offset < 0) {
      // Window exhausted: the next event (if any) lives in overflow.
      if (heap_.empty()) return false;
      const Event& top = heap_.front();
      const uint32_t tslot = static_cast<uint32_t>(top.id & kSlotMask);
      if (slots_[tslot].id != top.id) {
        PopTop();  // cancelled tombstone
        free_slots_.push_back(tslot);
        continue;
      }
      if (top.at > until) return false;
      AdvanceWheel(top.at);
      continue;
    }
    const uint32_t slot = wheel_[static_cast<size_t>(offset)].head;
    Slot& s = slots_[slot];
    if (s.id == 0) {
      BucketPopHead(offset);  // cancelled tombstone
      free_slots_.push_back(slot);
      continue;
    }
    const Timestamp at = Timestamp::Micros(wheel_base_us_ + offset);
    if (at > until) return false;
    BucketPopHead(offset);
    // Move the callback out before releasing: it may re-schedule (growing
    // slots_) or cancel, and must be able to reuse this slot.
    Callback fn = std::move(s.fn);
    s.id = 0;
    free_slots_.push_back(slot);
    --live_count_;
    now_ = at;
    ++events_executed_;
    fn();
    return true;
  }
}

void EventLoop::RunUntil(Timestamp until) {
  while (PopAndRunNext(until)) {
    if (pause_requested_) {
      // Return without the trailing now_ advance: time must stay at the
      // paused event so the resuming RunUntil continues the exact sequence.
      pause_requested_ = false;
      return;
    }
  }
  if (until > now_ && until.IsFinite()) now_ = until;
}

void EventLoop::RunAll() { RunUntil(Timestamp::PlusInfinity()); }

RepeatingTask::RepeatingTask(EventLoop& loop, TimeDelta period,
                             EventLoop::Callback fn)
    : loop_(loop), period_(period), fn_(std::move(fn)) {
  assert(period_ > TimeDelta::Zero());
  assert(fn_);
}

RepeatingTask::~RepeatingTask() { Stop(); }

void RepeatingTask::Start() { StartWithDelay(period_); }

void RepeatingTask::StartWithDelay(TimeDelta initial_delay) {
  Stop();
  running_ = true;
  pending_ = loop_.Schedule(initial_delay, [this] { Fire(); });
}

void RepeatingTask::Stop() {
  if (running_) {
    loop_.Cancel(pending_);
    running_ = false;
  }
}

void RepeatingTask::Fire() {
  if (!running_) return;
  pending_ = loop_.Schedule(period_, [this] { Fire(); });
  fn_();
}

}  // namespace rave
