#include "transport/fec.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rave::transport {

FecEncoder::FecEncoder(const Config& config) : config_(config) {
  assert(config_.group_size > 0);
}

void FecEncoder::SetRecoveryPackets(int count) {
  config_.recovery_packets = std::max(count, 0);
}

std::vector<net::Packet> FecEncoder::OnMediaPacket(const net::Packet& packet) {
  ProtectedPacket descriptor;
  descriptor.media_seq = packet.media_seq;
  descriptor.size = packet.size;
  descriptor.frame_id = packet.frame_id;
  descriptor.packet_index = packet.packet_index;
  descriptor.packets_in_frame = packet.packets_in_frame;
  descriptor.capture_time = packet.capture_time;
  descriptor.keyframe = packet.keyframe;
  current_group_.push_back(descriptor);
  largest_in_group_ = std::max(largest_in_group_, packet.size);

  std::vector<net::Packet> recovery;
  if (static_cast<int>(current_group_.size()) < config_.group_size) {
    return recovery;
  }

  for (int i = 0; i < config_.recovery_packets; ++i) {
    net::Packet fec;
    fec.media_seq = next_fec_seq_--;
    fec.is_fec = true;
    fec.frame_id = -1;  // not a media frame
    fec.size = largest_in_group_;
    recovery.push_back(fec);
    groups_[fec.media_seq] = current_group_;
  }
  // Bound the bookkeeping (a few hundred groups is several seconds).
  while (groups_.size() > 512) groups_.erase(std::prev(groups_.end()));

  current_group_.clear();
  largest_in_group_ = DataSize::Zero();
  return recovery;
}

const std::vector<ProtectedPacket>* FecEncoder::GroupFor(
    int64_t fec_seq) const {
  auto it = groups_.find(fec_seq);
  if (it == groups_.end()) return nullptr;
  return &it->second;
}

FecDecoder::FecDecoder(RecoverCallback on_recovered)
    : on_recovered_(std::move(on_recovered)) {
  assert(on_recovered_);
}

void FecDecoder::OnMediaPacket(const net::Packet& packet, Timestamp arrival) {
  auto group_it = media_to_group_.find(packet.media_seq);
  if (group_it == media_to_group_.end()) {
    // Group not announced yet (media usually outruns its recovery packet);
    // remember the arrival so the group can be credited later.
    orphan_media_[packet.media_seq] = arrival;
    while (orphan_media_.size() > 2048) {
      orphan_media_.erase(orphan_media_.begin());
    }
    return;
  }
  auto it = groups_.find(group_it->second);
  if (it == groups_.end()) return;
  GroupState& group = it->second;
  for (size_t i = 0; i < group.protected_packets.size(); ++i) {
    if (group.protected_packets[i].media_seq == packet.media_seq &&
        !group.media_arrived[i]) {
      group.media_arrived[i] = true;
      ++group.arrived_total;
      MaybeRecover(group, arrival);
      return;
    }
  }
}

void FecDecoder::OnRecoveryPacket(int64_t /*fec_seq*/,
                                  const std::vector<ProtectedPacket>& group,
                                  int recovery_in_group, Timestamp arrival) {
  if (group.empty()) return;
  const int64_t key = group.front().media_seq;
  auto [it, inserted] = groups_.try_emplace(key);
  GroupState& state = it->second;
  if (inserted) {
    state.protected_packets = group;
    state.media_arrived.assign(group.size(), false);
    state.expected_media = static_cast<int>(group.size());
    state.expected_recovery = recovery_in_group;
    for (size_t i = 0; i < group.size(); ++i) {
      media_to_group_[group[i].media_seq] = key;
      // Credit media packets that arrived before this announcement.
      auto orphan = orphan_media_.find(group[i].media_seq);
      if (orphan != orphan_media_.end()) {
        state.media_arrived[i] = true;
        ++state.arrived_total;
        orphan_media_.erase(orphan);
      }
    }
  }
  ++state.arrived_total;
  MaybeRecover(state, arrival);
  Prune();
}

void FecDecoder::MaybeRecover(GroupState& group, Timestamp arrival) {
  if (group.recovered) return;
  if (group.arrived_total < group.expected_media) return;
  // MDS property: N total arrivals reconstruct all N media packets.
  group.recovered = true;
  for (size_t i = 0; i < group.protected_packets.size(); ++i) {
    if (group.media_arrived[i]) continue;
    const ProtectedPacket& d = group.protected_packets[i];
    net::Packet packet;
    packet.media_seq = d.media_seq;
    packet.size = d.size;
    packet.frame_id = d.frame_id;
    packet.packet_index = d.packet_index;
    packet.packets_in_frame = d.packets_in_frame;
    packet.capture_time = d.capture_time;
    packet.keyframe = d.keyframe;
    ++packets_recovered_;
    on_recovered_(packet, arrival);
  }
}

void FecDecoder::Prune() {
  while (groups_.size() > 256) {
    for (const ProtectedPacket& p :
         groups_.begin()->second.protected_packets) {
      media_to_group_.erase(p.media_seq);
    }
    groups_.erase(groups_.begin());
  }
}

ProtectionController::ProtectionController(const Config& config)
    : config_(config) {
  assert(config_.group_size > 0);
}

ProtectionController::ProtectionController()
    : ProtectionController(Config{}) {}

int ProtectionController::RecoveryPacketsFor(double loss_rate) const {
  if (loss_rate < config_.activation_loss) return 0;
  // Expected losses per group, with headroom, rounded up.
  const double expected =
      loss_rate * config_.headroom * config_.group_size;
  const int packets = static_cast<int>(std::ceil(expected));
  return std::clamp(packets, 1, config_.max_recovery);
}

double ProtectionController::OverheadFor(int recovery_packets) const {
  return static_cast<double>(recovery_packets) /
         static_cast<double>(config_.group_size + recovery_packets);
}

}  // namespace rave::transport
