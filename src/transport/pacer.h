// Paced sender, modelled on WebRTC's PacedSender: media packets queue here
// and leave at the pacing rate (a small multiple of the target bitrate), so
// a large frame does not burst into the network. The queue depth is the
// sender-side component of end-to-end latency and the key signal the
// adaptive controller reads ("how much of what I already encoded has not
// even left the host yet").
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "util/inline_function.h"
#include "util/ring_deque.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::transport {

/// Token-style pacer draining a FIFO of packets at SetPacingRate().
class Pacer {
 public:
  struct Config {
    DataRate initial_rate = DataRate::KilobitsPerSec(1650);
    /// Burst window: after idle the pacer may send this much time's worth of
    /// data back-to-back (WebRTC default 40 ms).
    TimeDelta burst = TimeDelta::Millis(40);
  };

  using SendCallback = InlineFunction<void(net::Packet&&)>;

  Pacer(EventLoop& loop, const Config& config, SendCallback send);

  Pacer(const Pacer&) = delete;
  Pacer& operator=(const Pacer&) = delete;

  /// Queues packets for paced transmission, draining (but not deallocating)
  /// the caller's vector so its capacity is reused for the next frame.
  void Enqueue(std::vector<net::Packet>& packets);

  /// Queues a high-priority packet at the head of the queue (used for
  /// retransmissions, which must not wait behind fresh media).
  void EnqueueFront(net::Packet packet);

  /// Updates the drain rate (congestion controller output * pacing factor).
  void SetPacingRate(DataRate rate);
  DataRate pacing_rate() const { return rate_; }

  /// Bits currently queued.
  DataSize queue_size() const { return queued_; }
  size_t queue_packets() const { return queue_.size(); }
  /// Time to drain the current queue at the current pacing rate.
  TimeDelta ExpectedQueueTime() const;

  int64_t packets_sent() const { return packets_sent_; }

 private:
  /// Synchronous re-evaluation after an enqueue or rate change: sends
  /// whatever is already due at now() and (re-)arms the drain timer. Never
  /// steps time — the caller's event is still executing.
  void MaybeSend();
  /// Drain-timer callback: sends everything due, then either steps
  /// simulation time to the next send (EventLoop::TryAdvanceTo — the
  /// packet-train fast path) or re-arms for it. With coalescing refused the
  /// arm/fire sequence is exactly the per-packet scheduler's.
  void OnTimer();

  EventLoop& loop_;
  SendCallback send_;
  DataRate rate_;
  TimeDelta burst_;

  RingDeque<net::Packet> queue_;
  DataSize queued_ = DataSize::Zero();
  Timestamp next_send_time_ = Timestamp::Zero();
  EventHandle pending_;
  bool timer_armed_ = false;
  Timestamp armed_for_ = Timestamp::Zero();
  int64_t packets_sent_ = 0;
};

}  // namespace rave::transport
