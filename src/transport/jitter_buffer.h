// Adaptive playout buffer (NetEq/WebRTC-style). Decodable frames are not
// rendered the instant they complete: the receiver schedules playout at
// capture_time + playout_delay, where the delay adapts to observed network
// jitter — large enough that most frames arrive before their deadline, small
// enough not to waste latency. The *render* latency this produces is what
// the user actually experiences; schemes that keep network delay stable get
// rewarded with a small playout delay on top.
#pragma once

#include <cstdint>
#include <optional>

#include "util/stats.h"
#include "util/time.h"

namespace rave::transport {

/// Outcome of scheduling one completed frame for playout.
struct PlayoutDecision {
  /// When the frame appears on screen.
  Timestamp render_time = Timestamp::Zero();
  /// True when the frame missed its deadline (it renders immediately on
  /// arrival, after a visible stutter).
  bool late = false;
  /// The playout delay in force for this frame.
  TimeDelta playout_delay = TimeDelta::Zero();
};

class JitterBuffer {
 public:
  struct Config {
    TimeDelta min_delay = TimeDelta::Millis(10);
    TimeDelta max_delay = TimeDelta::Millis(500);
    /// Target = smoothed network delay + `headroom_stddevs` * stddev.
    double headroom_stddevs = 4.0;
    /// EWMA weight for delay mean/variance tracking.
    double alpha = 0.05;
    /// Multiplicative bump applied on a late frame.
    double late_boost = 1.2;
  };

  explicit JitterBuffer(const Config& config);
  JitterBuffer();

  /// Feeds one completed frame (network delay = complete - capture) and
  /// returns its playout schedule. Frames must be fed in completion order.
  PlayoutDecision OnFrameComplete(Timestamp capture_time,
                                  Timestamp complete_time);

  TimeDelta current_delay() const { return current_delay_; }
  int64_t frames() const { return frames_; }
  int64_t late_frames() const { return late_frames_; }

 private:
  void AdaptTo(TimeDelta network_delay);

  Config config_;
  Ewma delay_ms_;
  TimeDelta current_delay_;
  Timestamp last_render_ = Timestamp::MinusInfinity();
  int64_t frames_ = 0;
  int64_t late_frames_ = 0;
};

}  // namespace rave::transport
