#include "transport/jitter_buffer.h"

#include <algorithm>
#include <cmath>

namespace rave::transport {

JitterBuffer::JitterBuffer(const Config& config)
    : config_(config),
      delay_ms_(config.alpha),
      current_delay_(config.min_delay) {}

JitterBuffer::JitterBuffer() : JitterBuffer(Config{}) {}

void JitterBuffer::AdaptTo(TimeDelta network_delay) {
  delay_ms_.Add(network_delay.ms_float());
  const double target_ms =
      delay_ms_.value() +
      config_.headroom_stddevs * std::sqrt(std::max(delay_ms_.variance(), 0.0));
  current_delay_ =
      std::clamp(TimeDelta::SecondsF(target_ms / 1e3), config_.min_delay,
                 config_.max_delay);
}

PlayoutDecision JitterBuffer::OnFrameComplete(Timestamp capture_time,
                                              Timestamp complete_time) {
  ++frames_;
  const TimeDelta network_delay = complete_time - capture_time;

  PlayoutDecision decision;
  decision.playout_delay = current_delay_;
  Timestamp render = capture_time + current_delay_;
  if (render < complete_time) {
    // Deadline missed: stutter, render on arrival, grow the buffer.
    decision.late = true;
    ++late_frames_;
    render = complete_time;
    current_delay_ = std::min(
        config_.max_delay,
        std::max(current_delay_ * config_.late_boost, network_delay));
  }
  // Renders never go backwards (frames display in order).
  if (render <= last_render_) render = last_render_ + TimeDelta::Micros(1);
  last_render_ = render;
  decision.render_time = render;

  AdaptTo(network_delay);
  return decision;
}

}  // namespace rave::transport
