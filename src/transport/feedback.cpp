#include "transport/feedback.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rave::transport {

FeedbackGenerator::FeedbackGenerator(EventLoop& loop, TimeDelta interval,
                                     SendCallback send)
    : loop_(loop),
      send_(std::move(send)),
      task_(loop, interval, [this] { Flush(); }) {
  assert(send_);
  task_.Start();
}

void FeedbackGenerator::OnPacketReceived(const net::Packet& packet,
                                         Timestamp arrival) {
  pending_.push_back({packet.seq, arrival, packet.size});
  highest_seq_ = std::max(highest_seq_, packet.seq);
}

void FeedbackGenerator::Flush() {
  if (pending_.empty()) return;
  FeedbackReport report;
  report.created = loop_.now();
  report.highest_seq = highest_seq_;
  report.packets = std::move(pending_);
  // Hand the recycled buffer (empty, capacity retained) back into service.
  pending_ = std::move(spare_);
  pending_.clear();
  send_(std::move(report));
}

void FeedbackGenerator::Recycle(std::vector<ReceivedPacket>&& buffer) {
  if (buffer.capacity() > spare_.capacity()) {
    spare_ = std::move(buffer);
    spare_.clear();
  }
}

SentPacketHistory::SentPacketHistory(TimeDelta window) : window_(window) {}

void SentPacketHistory::OnPacketSent(const net::Packet& packet) {
  assert(sent_.empty() || packet.seq > sent_.back().seq);
  sent_.push_back({packet.seq, packet.size, packet.send_time});
  in_flight_ += packet.size;
}

void SentPacketHistory::OnFeedback(const FeedbackReport& report, Timestamp now,
                                   std::vector<PacketResult>& out) {
  out.clear();
  out.reserve(report.packets.size());

  // The report's packets are in arrival order; the history is in seq order.
  // Every history entry with seq <= highest_seq is resolved by this report:
  // acked if present, lost otherwise (droptail produces no reordering across
  // reports, so a gap below the highest received seq is a genuine loss).
  //
  // Arrival order almost always equals seq order (RTX and reordering are the
  // exceptions), so a merge cursor resolves the common case in O(1) per
  // record; only mismatches fall back to the linear scan.
  size_t cursor = 0;
  auto acked_of = [&report, &cursor](int64_t seq) -> const ReceivedPacket* {
    if (cursor < report.packets.size() &&
        report.packets[cursor].seq == seq) {
      return &report.packets[cursor++];
    }
    for (const ReceivedPacket& r : report.packets) {
      if (r.seq == seq) return &r;
    }
    return nullptr;
  };

  while (!sent_.empty() && sent_.front().seq <= report.highest_seq) {
    const SentRecord& rec = sent_.front();
    PacketResult result;
    result.seq = rec.seq;
    result.size = rec.size;
    result.send_time = rec.send_time;
    if (const ReceivedPacket* acked = acked_of(rec.seq)) {
      result.arrival = acked->arrival;
    }
    in_flight_ -= rec.size;
    out.push_back(result);
    sent_.pop_front();
  }

  // Prune anything older than the history window that was never covered by
  // a report (e.g. the tail of a session).
  while (!sent_.empty() && now - sent_.front().send_time > window_) {
    in_flight_ -= sent_.front().size;
    sent_.pop_front();
  }
}

std::vector<PacketResult> SentPacketHistory::OnFeedback(
    const FeedbackReport& report, Timestamp now) {
  std::vector<PacketResult> results;
  OnFeedback(report, now, results);
  return results;
}

}  // namespace rave::transport
