#include "transport/packetizer.h"

#include <algorithm>
#include <cassert>

namespace rave::transport {

Packetizer::Packetizer(const PacketizerConfig& config) : config_(config) {
  assert(config_.mtu_payload.bits() > 0);
}

void Packetizer::Packetize(const codec::EncodedFrame& frame,
                           std::vector<net::Packet>& out) {
  out.clear();
  if (frame.skipped || frame.size.IsZero()) return;

  const int64_t payload_bits = frame.size.bits();
  const int64_t mtu_bits = config_.mtu_payload.bits();
  const int count =
      static_cast<int>((payload_bits + mtu_bits - 1) / mtu_bits);
  out.reserve(static_cast<size_t>(count));

  int64_t remaining = payload_bits;
  for (int i = 0; i < count; ++i) {
    net::Packet p;
    p.media_seq = next_seq_++;
    const int64_t chunk = std::min(remaining, mtu_bits);
    remaining -= chunk;
    p.size = DataSize::Bits(chunk) + config_.overhead;
    p.frame_id = frame.frame_id;
    p.packet_index = i;
    p.packets_in_frame = count;
    p.capture_time = frame.capture_time;
    p.keyframe = frame.type == codec::FrameType::kKey;
    out.push_back(p);
  }
}

}  // namespace rave::transport
