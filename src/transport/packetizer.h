// Splits encoded frames into MTU-sized wire packets with transport-wide
// sequence numbers, accounting for RTP/UDP/IP/extension header overhead —
// the part of the stack an RTP packetizer (RFC 6184 FU-A style) performs.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/encoder.h"
#include "net/packet.h"
#include "util/units.h"

namespace rave::transport {

struct PacketizerConfig {
  /// Maximum media payload per packet.
  DataSize mtu_payload = DataSize::Bytes(1200);
  /// Per-packet header overhead (RTP + UDP + IP + transport-cc extension).
  DataSize overhead = DataSize::Bytes(68);
};

/// Stateful packetizer; media sequence numbers are monotone across frames.
/// Transport-wide sequence numbers are assigned later, when packets leave
/// the pacer.
class Packetizer {
 public:
  explicit Packetizer(const PacketizerConfig& config = {});

  /// Splits `frame` into packets, appending to the caller-owned `out` after
  /// clearing it. Skipped frames yield no packets. Taking the output vector
  /// by reference lets the session reuse one scratch vector across frames,
  /// so steady-state packetization never allocates.
  void Packetize(const codec::EncodedFrame& frame,
                 std::vector<net::Packet>& out);

  int64_t next_seq() const { return next_seq_; }
  const PacketizerConfig& config() const { return config_; }

 private:
  PacketizerConfig config_;
  int64_t next_seq_ = 0;
};

}  // namespace rave::transport
