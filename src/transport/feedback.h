// Transport-wide congestion-control feedback (RFC 8888 / transport-cc
// style): the receiver records every media packet's arrival time and flushes
// periodic reports back to the sender, which joins them with its sent-packet
// history to produce the (send time, arrival time, size) triples the
// bandwidth estimator consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "util/inline_function.h"
#include "util/ring_deque.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::transport {

/// Receiver-side record of one arrived packet.
struct ReceivedPacket {
  int64_t seq = 0;
  Timestamp arrival = Timestamp::Zero();
  DataSize size = DataSize::Zero();
};

/// One feedback message travelling back to the sender.
struct FeedbackReport {
  Timestamp created = Timestamp::Zero();
  /// Highest sequence number seen by the receiver so far (for loss
  /// accounting of gaps at the report boundary).
  int64_t highest_seq = -1;
  std::vector<ReceivedPacket> packets;
};

/// Receiver component: buffers arrivals, flushes a report every interval.
class FeedbackGenerator {
 public:
  using SendCallback = InlineFunction<void(FeedbackReport&&)>;

  FeedbackGenerator(EventLoop& loop, TimeDelta interval, SendCallback send);

  void OnPacketReceived(const net::Packet& packet, Timestamp arrival);

  /// Forces a flush now (used by tests).
  void Flush();

  /// Returns a consumed report's packet buffer for reuse: the sender calls
  /// this after the history join, and the next Flush() hands the buffer back
  /// out as the new report's storage. Two buffers rotate through the
  /// feedback loop, so steady-state reporting never allocates.
  void Recycle(std::vector<ReceivedPacket>&& buffer);

 private:
  EventLoop& loop_;
  SendCallback send_;
  RepeatingTask task_;
  std::vector<ReceivedPacket> pending_;
  /// Recycled report buffer awaiting the next Flush().
  std::vector<ReceivedPacket> spare_;
  int64_t highest_seq_ = -1;
};

/// Sender-side joined view of one packet's fate.
struct PacketResult {
  int64_t seq = 0;
  DataSize size = DataSize::Zero();
  Timestamp send_time = Timestamp::Zero();
  /// Unset when the packet was reported lost (a gap in acked sequences).
  std::optional<Timestamp> arrival;
};

/// Sender component: remembers sent packets and resolves feedback reports
/// into PacketResults, including inferred losses.
class SentPacketHistory {
 public:
  /// Retains at most `window` of history (older entries are pruned).
  explicit SentPacketHistory(TimeDelta window = TimeDelta::Seconds(10));

  void OnPacketSent(const net::Packet& packet);

  /// Joins a feedback report against history into `out` (cleared first).
  /// Packets with a sequence number <= report.highest_seq that were sent but
  /// never acked by any report so far are reported as lost exactly once.
  /// The caller owns `out` and reuses it across reports, keeping the
  /// per-report path allocation-free in steady state.
  void OnFeedback(const FeedbackReport& report, Timestamp now,
                  std::vector<PacketResult>& out);

  /// Allocating convenience wrapper (tests and one-shot callers).
  std::vector<PacketResult> OnFeedback(const FeedbackReport& report,
                                       Timestamp now);

  size_t in_flight_packets() const { return sent_.size(); }
  /// Bits sent but not yet acked or declared lost.
  DataSize in_flight() const { return in_flight_; }

 private:
  struct SentRecord {
    int64_t seq;
    DataSize size;
    Timestamp send_time;
  };

  TimeDelta window_;
  RingDeque<SentRecord> sent_;  // ordered by seq
  DataSize in_flight_ = DataSize::Zero();
};

}  // namespace rave::transport
