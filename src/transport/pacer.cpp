#include "transport/pacer.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.h"

namespace rave::transport {

Pacer::Pacer(EventLoop& loop, const Config& config, SendCallback send)
    : loop_(loop),
      send_(std::move(send)),
      rate_(config.initial_rate),
      burst_(config.burst) {
  assert(send_);
  assert(rate_.bps() > 0);
}

void Pacer::Enqueue(std::vector<net::Packet>& packets) {
  for (net::Packet& p : packets) {
    queued_ += p.size;
    queue_.push_back(std::move(p));
  }
  packets.clear();
  MaybeSend();
}

void Pacer::EnqueueFront(net::Packet packet) {
  queued_ += packet.size;
  queue_.push_front(std::move(packet));
  MaybeSend();
}

void Pacer::SetPacingRate(DataRate rate) {
  if (rate.bps() <= 0) return;
  // Outstanding send debt was accumulated in time units at the old rate;
  // rescale it so the bits owed stay constant across the change.
  const Timestamp now = loop_.now();
  if (next_send_time_ > now) {
    const DataSize owed = rate_ * (next_send_time_ - now);
    next_send_time_ = now + owed / rate;
  }
  rate_ = rate;
  // A rate change may let queued packets out earlier than the armed timer;
  // re-evaluate immediately.
  MaybeSend();
}

TimeDelta Pacer::ExpectedQueueTime() const {
  if (queued_.IsZero()) return TimeDelta::Zero();
  return queued_ / rate_;
}

void Pacer::MaybeSend() {
  const Timestamp now = loop_.now();
  // Cap accumulated credit at one burst window.
  if (next_send_time_ < now - burst_) next_send_time_ = now - burst_;

  while (!queue_.empty() && next_send_time_ <= now) {
    net::Packet p = std::move(queue_.front());
    queue_.pop_front();
    queued_ -= p.size;
    p.send_time = now;
    next_send_time_ += p.size / rate_;
    ++packets_sent_;
    send_(std::move(p));
  }

  RAVE_TRACE_COUNTER(kPacerQueueMs, now, ExpectedQueueTime().ms_float());

  if (!queue_.empty()) {
    // Re-arm if no timer is pending, or the pending one fires too late for
    // the (possibly rescaled) next send time.
    if (timer_armed_ && armed_for_ <= next_send_time_) return;
    if (timer_armed_) loop_.Cancel(pending_);
    timer_armed_ = true;
    armed_for_ = next_send_time_;
    pending_ = loop_.ScheduleAt(next_send_time_, [this] { OnTimer(); });
  }
}

void Pacer::OnTimer() {
  timer_armed_ = false;
  // With an active trace the per-wake queue-depth counter must keep its
  // per-packet cadence, so time stepping is disabled (like the staging
  // rendezvous's inline fallback) — results are unchanged either way.
  const bool may_step = obs::CurrentTrace() == nullptr;
  for (;;) {
    const Timestamp now = loop_.now();
    // The credit clamp is a no-op on a timer wake (the timer fires exactly
    // at next_send_time_), but stays for parity with MaybeSend.
    if (next_send_time_ < now - burst_) next_send_time_ = now - burst_;

    while (!queue_.empty() && next_send_time_ <= now) {
      net::Packet p = std::move(queue_.front());
      queue_.pop_front();
      queued_ -= p.size;
      p.send_time = now;
      next_send_time_ += p.size / rate_;
      ++packets_sent_;
      send_(std::move(p));
    }

    RAVE_TRACE_COUNTER(kPacerQueueMs, now, ExpectedQueueTime().ms_float());

    if (queue_.empty()) return;
    // Packet-train fast path: if nothing else in the simulation can run
    // before the next send, step straight to it instead of paying for a
    // fresh timer event. Refused (RAVE_NO_COALESCE, a pending event at or
    // before next_send_time_, tracing, or the run bound), this arms the
    // identical continuation a per-packet pacer would.
    if (!may_step || !loop_.TryAdvanceTo(next_send_time_)) {
      timer_armed_ = true;
      armed_for_ = next_send_time_;
      pending_ = loop_.ScheduleAt(next_send_time_, [this] { OnTimer(); });
      return;
    }
  }
}

}  // namespace rave::transport
