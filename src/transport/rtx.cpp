#include "transport/rtx.h"

#include <cassert>
#include <utility>

namespace rave::transport {

RtxCache::RtxCache(TimeDelta window) : window_(window) {}

void RtxCache::Insert(const net::Packet& packet, Timestamp now) {
  if (packet.media_seq < 0) return;
  by_seq_[packet.media_seq] = {packet, now};
  Prune(now);
}

std::optional<net::Packet> RtxCache::Lookup(int64_t media_seq, Timestamp now) {
  Prune(now);
  auto it = by_seq_.find(media_seq);
  if (it == by_seq_.end()) return std::nullopt;
  net::Packet packet = it->second.first;
  packet.is_retransmission = true;
  packet.seq = -1;  // fresh transport seq assigned on send
  packet.send_time = Timestamp::MinusInfinity();
  return packet;
}

void RtxCache::Prune(Timestamp now) {
  while (!by_seq_.empty() &&
         now - by_seq_.begin()->second.second > window_) {
    by_seq_.erase(by_seq_.begin());
  }
}

NackGenerator::NackGenerator(EventLoop& loop, const Config& config,
                             SendCallback send, GiveUpCallback give_up)
    : loop_(loop),
      config_(config),
      send_(std::move(send)),
      give_up_(std::move(give_up)),
      task_(loop, config.process_interval, [this] { Process(); }) {
  assert(send_);
  assert(give_up_);
  task_.Start();
}

void NackGenerator::OnPacketReceived(const net::Packet& packet) {
  const int64_t seq = packet.media_seq;
  if (seq < 0) return;
  missing_.erase(seq);  // an RTX (or late) arrival fills the gap
  if (seq > highest_seen_) {
    for (int64_t s = highest_seen_ + 1; s < seq; ++s) {
      missing_[s] = MissingEntry{.first_seen = loop_.now()};
    }
    highest_seen_ = seq;
  }
}

void NackGenerator::Process() {
  const Timestamp now = loop_.now();
  NackBatch batch;
  std::vector<int64_t> abandoned;

  for (auto& [seq, entry] : missing_) {
    if (now - entry.first_seen < config_.initial_delay) continue;
    if (entry.retries >= config_.max_retries) {
      abandoned.push_back(seq);
      continue;
    }
    if (entry.last_nack.IsMinusInfinity() ||
        now - entry.last_nack >= config_.retry_interval) {
      batch.media_seqs.push_back(seq);
      entry.last_nack = now;
      ++entry.retries;
    }
  }

  for (int64_t seq : abandoned) {
    missing_.erase(seq);
    give_up_(seq);
  }
  if (!batch.media_seqs.empty()) {
    nacks_sent_ += static_cast<int64_t>(batch.media_seqs.size());
    send_(std::move(batch));
  }
}

}  // namespace rave::transport
