#include "transport/rtx.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rave::transport {

RtxCache::RtxCache(TimeDelta window) : window_(window) {}

void RtxCache::Insert(const net::Packet& packet, Timestamp now) {
  if (packet.media_seq < 0) return;
  if (ring_.empty()) {
    base_seq_ = packet.media_seq;
    ring_.push_back(Entry{packet, now, true});
    ++valid_count_;
  } else {
    const int64_t idx = packet.media_seq - base_seq_;
    if (idx < 0) {
      // Older than anything cached (already pruned); monotone send order
      // makes this unreachable in practice, and re-caching it would only
      // produce an immediately-prunable entry.
      return;
    }
    if (static_cast<size_t>(idx) < ring_.size()) {
      Entry& e = ring_[static_cast<size_t>(idx)];
      e.packet = packet;
      e.sent = now;
      if (!e.valid) {
        e.valid = true;
        ++valid_count_;
      }
    } else {
      // Fill any seq gap with invalid placeholders so indexing stays direct.
      while (ring_.size() < static_cast<size_t>(idx)) ring_.push_back(Entry{});
      ring_.push_back(Entry{packet, now, true});
      ++valid_count_;
    }
  }
  Prune(now);
}

std::optional<net::Packet> RtxCache::Lookup(int64_t media_seq, Timestamp now) {
  Prune(now);
  const int64_t idx = media_seq - base_seq_;
  if (ring_.empty() || idx < 0 || static_cast<size_t>(idx) >= ring_.size()) {
    return std::nullopt;
  }
  const Entry& e = ring_[static_cast<size_t>(idx)];
  if (!e.valid) return std::nullopt;
  net::Packet packet = e.packet;
  packet.is_retransmission = true;
  packet.seq = -1;  // fresh transport seq assigned on send
  packet.send_time = Timestamp::MinusInfinity();
  return packet;
}

void RtxCache::Prune(Timestamp now) {
  // Entries are in seq order and (placeholders aside) age order, exactly like
  // the smallest-seq-first pruning of the old ordered map.
  while (!ring_.empty() &&
         (!ring_.front().valid || now - ring_.front().sent > window_)) {
    if (ring_.front().valid) --valid_count_;
    ring_.pop_front();
    ++base_seq_;
  }
}

NackGenerator::NackGenerator(EventLoop& loop, const Config& config,
                             SendCallback send, GiveUpCallback give_up)
    : loop_(loop),
      config_(config),
      send_(std::move(send)),
      give_up_(std::move(give_up)),
      task_(loop, config.process_interval, [this] { Process(); }) {
  assert(send_);
  assert(give_up_);
  missing_.reserve(64);
  batch_scratch_.media_seqs.reserve(64);
  abandoned_scratch_.reserve(64);
  task_.Start();
}

void NackGenerator::OnPacketReceived(const net::Packet& packet) {
  const int64_t seq = packet.media_seq;
  if (seq < 0) return;
  // An RTX (or late) arrival fills the gap.
  auto it = std::lower_bound(
      missing_.begin(), missing_.end(), seq,
      [](const MissingEntry& e, int64_t s) { return e.seq < s; });
  if (it != missing_.end() && it->seq == seq) missing_.erase(it);
  if (seq > highest_seen_) {
    // New gaps have seqs above every tracked entry, so appending keeps the
    // vector sorted.
    for (int64_t s = highest_seen_ + 1; s < seq; ++s) {
      missing_.push_back(MissingEntry{.seq = s, .first_seen = loop_.now()});
    }
    highest_seen_ = seq;
  }
}

void NackGenerator::Process() {
  const Timestamp now = loop_.now();
  batch_scratch_.media_seqs.clear();
  abandoned_scratch_.clear();

  for (MissingEntry& entry : missing_) {
    if (now - entry.first_seen < config_.initial_delay) continue;
    if (entry.retries >= config_.max_retries) {
      abandoned_scratch_.push_back(entry.seq);
      continue;
    }
    if (entry.last_nack.IsMinusInfinity() ||
        now - entry.last_nack >= config_.retry_interval) {
      batch_scratch_.media_seqs.push_back(entry.seq);
      entry.last_nack = now;
      ++entry.retries;
    }
  }

  if (!abandoned_scratch_.empty()) {
    missing_.erase(
        std::remove_if(missing_.begin(), missing_.end(),
                       [this](const MissingEntry& e) {
                         return std::binary_search(abandoned_scratch_.begin(),
                                                   abandoned_scratch_.end(),
                                                   e.seq);
                       }),
        missing_.end());
    for (int64_t seq : abandoned_scratch_) give_up_(seq);
  }
  if (!batch_scratch_.media_seqs.empty()) {
    nacks_sent_ += static_cast<int64_t>(batch_scratch_.media_seqs.size());
    send_(batch_scratch_);
  }
}

}  // namespace rave::transport
