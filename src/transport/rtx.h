// Retransmission machinery (WebRTC NACK/RTX style):
//   * `RtxCache` (sender) retains recently sent media packets so a NACKed
//     media sequence number can be retransmitted with a fresh transport
//     sequence number.
//   * `NackGenerator` (receiver) watches the media sequence space for gaps
//     and emits NACK batches, retrying with backoff and giving up after a
//     bounded number of attempts (at which point the frame is unrecoverable
//     and the loss surfaces to the assembler/PLI path).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "util/time.h"

namespace rave::transport {

/// Sender-side cache of recently sent media packets, keyed by media seq.
class RtxCache {
 public:
  /// Packets older than `window` are pruned.
  explicit RtxCache(TimeDelta window = TimeDelta::Seconds(2));

  /// Stores a packet as it is first sent.
  void Insert(const net::Packet& packet, Timestamp now);

  /// Fetches a packet for retransmission; nullopt if it aged out. The
  /// returned packet is flagged `is_retransmission` with `seq` reset.
  std::optional<net::Packet> Lookup(int64_t media_seq, Timestamp now);

  size_t size() const { return by_seq_.size(); }

 private:
  void Prune(Timestamp now);

  TimeDelta window_;
  std::map<int64_t, std::pair<net::Packet, Timestamp>> by_seq_;
};

/// One NACK message: media sequence numbers the receiver is missing.
struct NackBatch {
  std::vector<int64_t> media_seqs;
};

/// Receiver-side gap detector with retry/backoff.
class NackGenerator {
 public:
  struct Config {
    /// Delay before a fresh gap is NACKed (reordering grace; our links are
    /// FIFO so this is small).
    TimeDelta initial_delay = TimeDelta::Millis(5);
    /// Minimum spacing between NACKs of the same sequence.
    TimeDelta retry_interval = TimeDelta::Millis(120);
    int max_retries = 4;
    /// Batches are flushed at this cadence.
    TimeDelta process_interval = TimeDelta::Millis(20);
  };

  using SendCallback = std::function<void(NackBatch)>;
  /// Invoked when a media seq is abandoned (retries exhausted).
  using GiveUpCallback = std::function<void(int64_t media_seq)>;

  NackGenerator(EventLoop& loop, const Config& config, SendCallback send,
                GiveUpCallback give_up);

  /// Feeds every received media packet (first transmissions and RTX alike).
  void OnPacketReceived(const net::Packet& packet);

  size_t missing() const { return missing_.size(); }
  int64_t nacks_sent() const { return nacks_sent_; }

 private:
  void Process();

  struct MissingEntry {
    Timestamp first_seen;
    Timestamp last_nack = Timestamp::MinusInfinity();
    int retries = 0;
  };

  EventLoop& loop_;
  Config config_;
  SendCallback send_;
  GiveUpCallback give_up_;
  RepeatingTask task_;
  int64_t highest_seen_ = -1;
  std::map<int64_t, MissingEntry> missing_;
  int64_t nacks_sent_ = 0;
};

}  // namespace rave::transport
