// Retransmission machinery (WebRTC NACK/RTX style):
//   * `RtxCache` (sender) retains recently sent media packets so a NACKed
//     media sequence number can be retransmitted with a fresh transport
//     sequence number.
//   * `NackGenerator` (receiver) watches the media sequence space for gaps
//     and emits NACK batches, retrying with backoff and giving up after a
//     bounded number of attempts (at which point the frame is unrecoverable
//     and the loss surfaces to the assembler/PLI path).
//
// Both exploit the monotone media sequence space for flat storage: the cache
// is a ring indexed by (media_seq - front seq), the missing set a sorted
// flat vector — no node-based containers, no per-packet allocation once the
// rings reach steady-state capacity.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "util/inline_function.h"
#include "util/ring_deque.h"
#include "util/time.h"

namespace rave::transport {

/// Sender-side cache of recently sent media packets, keyed by media seq.
/// Media sequence numbers are assigned monotonically and first transmissions
/// leave the pacer in order, so the cache is a contiguous ring: insert
/// appends at the back, prune pops from the front, lookup is an array index.
class RtxCache {
 public:
  /// Packets older than `window` are pruned.
  explicit RtxCache(TimeDelta window = TimeDelta::Seconds(2));

  /// Stores a packet as it is first sent. Re-inserting a cached seq
  /// refreshes the entry (age included).
  void Insert(const net::Packet& packet, Timestamp now);

  /// Fetches a packet for retransmission; nullopt if it aged out. The
  /// returned packet is flagged `is_retransmission` with `seq` reset.
  std::optional<net::Packet> Lookup(int64_t media_seq, Timestamp now);

  size_t size() const { return valid_count_; }

 private:
  struct Entry {
    net::Packet packet;
    Timestamp sent = Timestamp::MinusInfinity();
    bool valid = false;
  };

  void Prune(Timestamp now);

  TimeDelta window_;
  /// Entry i holds media seq `base_seq_ + i`; gap seqs are invalid entries.
  RingDeque<Entry> ring_;
  int64_t base_seq_ = 0;
  size_t valid_count_ = 0;
};

/// One NACK message: media sequence numbers the receiver is missing.
struct NackBatch {
  std::vector<int64_t> media_seqs;
};

/// Receiver-side gap detector with retry/backoff.
class NackGenerator {
 public:
  struct Config {
    /// Delay before a fresh gap is NACKed (reordering grace; our links are
    /// FIFO so this is small).
    TimeDelta initial_delay = TimeDelta::Millis(5);
    /// Minimum spacing between NACKs of the same sequence.
    TimeDelta retry_interval = TimeDelta::Millis(120);
    int max_retries = 4;
    /// Batches are flushed at this cadence.
    TimeDelta process_interval = TimeDelta::Millis(20);
  };

  using SendCallback = InlineFunction<void(const NackBatch&)>;
  /// Invoked when a media seq is abandoned (retries exhausted).
  using GiveUpCallback = InlineFunction<void(int64_t media_seq)>;

  NackGenerator(EventLoop& loop, const Config& config, SendCallback send,
                GiveUpCallback give_up);

  /// Feeds every received media packet (first transmissions and RTX alike).
  void OnPacketReceived(const net::Packet& packet);

  size_t missing() const { return missing_.size(); }
  int64_t nacks_sent() const { return nacks_sent_; }

 private:
  void Process();

  struct MissingEntry {
    int64_t seq = -1;
    Timestamp first_seen;
    Timestamp last_nack = Timestamp::MinusInfinity();
    int retries = 0;
  };

  EventLoop& loop_;
  Config config_;
  SendCallback send_;
  GiveUpCallback give_up_;
  RepeatingTask task_;
  int64_t highest_seen_ = -1;
  /// Sorted by seq: new gaps append at the back (monotone), arrivals erase
  /// in place. Small in steady state (bounded by the retry/give-up horizon).
  std::vector<MissingEntry> missing_;
  /// Reused across Process() calls so flushing never allocates in steady
  /// state (the NackBatch handed to `send_` is const& and copied only if the
  /// receiver keeps it).
  NackBatch batch_scratch_;
  std::vector<int64_t> abandoned_scratch_;
  int64_t nacks_sent_ = 0;
};

}  // namespace rave::transport
