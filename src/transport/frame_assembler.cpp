#include "transport/frame_assembler.h"

#include <cassert>
#include <utility>

namespace rave::transport {

FrameAssembler::FrameAssembler(EventLoop& loop, const Config& config,
                               FrameCallback on_frame,
                               LossCallback on_frame_lost)
    : loop_(loop),
      config_(config),
      on_frame_(std::move(on_frame)),
      on_frame_lost_(std::move(on_frame_lost)),
      sweep_task_(loop, config.sweep_interval, [this] { Sweep(); }) {
  assert(on_frame_);
  assert(on_frame_lost_);
  sweep_task_.Start();
}

void FrameAssembler::OnPacketReceived(const net::Packet& packet,
                                      Timestamp arrival) {
  if (packet.frame_id < 0) return;
  if (completed_.count(packet.frame_id) || lost_.count(packet.frame_id)) {
    return;  // duplicate RTX for an already-resolved frame
  }

  PendingFrame& frame = pending_[packet.frame_id];
  if (frame.received.empty()) {
    frame.received.assign(static_cast<size_t>(packet.packets_in_frame), false);
    frame.capture_time = packet.capture_time;
    frame.first_arrival = arrival;
    frame.keyframe = packet.keyframe;
  }
  const auto index = static_cast<size_t>(packet.packet_index);
  if (index >= frame.received.size() || frame.received[index]) {
    return;  // duplicate
  }
  frame.received[index] = true;
  ++frame.received_count;
  frame.size += packet.size;

  if (frame.received_count < static_cast<int>(frame.received.size())) return;

  CompleteFrame complete;
  complete.frame_id = packet.frame_id;
  complete.capture_time = frame.capture_time;
  complete.complete_time = arrival;
  complete.size = frame.size;
  complete.keyframe = frame.keyframe;
  complete.packets = frame.received_count;
  pending_.erase(packet.frame_id);
  completed_.insert(packet.frame_id);

  ++frames_completed_;
  on_frame_(complete);
}

void FrameAssembler::AbandonFrame(int64_t frame_id) {
  if (completed_.count(frame_id) || lost_.count(frame_id)) return;
  DeclareLost(frame_id);
}

void FrameAssembler::DeclareLost(int64_t frame_id) {
  pending_.erase(frame_id);
  lost_.insert(frame_id);
  ++frames_lost_;
  on_frame_lost_(frame_id);
}

void FrameAssembler::Sweep() {
  const Timestamp now = loop_.now();
  std::vector<int64_t> expired;
  for (const auto& [id, frame] : pending_) {
    if (now - frame.first_arrival > config_.loss_timeout) {
      expired.push_back(id);
    }
  }
  for (int64_t id : expired) DeclareLost(id);
}

}  // namespace rave::transport
