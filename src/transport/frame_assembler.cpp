#include "transport/frame_assembler.h"

#include <cassert>
#include <utility>

namespace rave::transport {

FrameAssembler::FrameAssembler(EventLoop& loop, const Config& config,
                               FrameCallback on_frame,
                               LossCallback on_frame_lost)
    : loop_(loop),
      config_(config),
      on_frame_(std::move(on_frame)),
      on_frame_lost_(std::move(on_frame_lost)),
      sweep_task_(loop, config.sweep_interval, [this] { Sweep(); }) {
  assert(on_frame_);
  assert(on_frame_lost_);
  slots_.reserve(64);
  sweep_task_.Start();
}

bool FrameAssembler::Slot::TestAndSetReceived(size_t index) {
  if (packets_in_frame <= kInlineBitmapPackets) {
    uint64_t& word = received_bits[index / 64];
    const uint64_t bit = uint64_t{1} << (index % 64);
    if (word & bit) return false;
    word |= bit;
    return true;
  }
  if (overflow_bits[index]) return false;
  overflow_bits[index] = true;
  return true;
}

size_t FrameAssembler::EnsureSlot(int64_t frame_id) {
  assert(frame_id >= base_id_);
  const auto index = static_cast<size_t>(frame_id - base_id_);
  while (slots_.size() <= index) slots_.push_back(Slot{});
  return index;
}

void FrameAssembler::Trim() {
  while (!slots_.empty() && slots_.front().resolved()) {
    slots_.pop_front();
    ++base_id_;
  }
}

void FrameAssembler::OnPacketReceived(const net::Packet& packet,
                                      Timestamp arrival) {
  if (packet.frame_id < 0) return;
  if (packet.frame_id < base_id_) return;  // resolved (duplicate RTX)
  const size_t index = EnsureSlot(packet.frame_id);
  Slot& frame = slots_[index];
  if (frame.resolved()) return;  // duplicate RTX for an already-resolved frame

  if (frame.state == SlotState::kEmpty) {
    frame.state = SlotState::kPending;
    frame.packets_in_frame = packet.packets_in_frame;
    if (frame.packets_in_frame > kInlineBitmapPackets) {
      frame.overflow_bits.assign(
          static_cast<size_t>(frame.packets_in_frame), false);
    }
    frame.capture_time = packet.capture_time;
    frame.first_arrival = arrival;
    frame.keyframe = packet.keyframe;
    ++pending_count_;
  }
  const auto pkt_index = static_cast<size_t>(packet.packet_index);
  if (pkt_index >= static_cast<size_t>(frame.packets_in_frame) ||
      !frame.TestAndSetReceived(pkt_index)) {
    return;  // duplicate
  }
  ++frame.received_count;
  frame.size += packet.size;

  if (frame.received_count < frame.packets_in_frame) return;

  CompleteFrame complete;
  complete.frame_id = packet.frame_id;
  complete.capture_time = frame.capture_time;
  complete.complete_time = arrival;
  complete.size = frame.size;
  complete.keyframe = frame.keyframe;
  complete.packets = frame.received_count;
  frame.state = SlotState::kCompleted;
  frame.overflow_bits = {};
  --pending_count_;
  Trim();

  ++frames_completed_;
  on_frame_(complete);
}

void FrameAssembler::AbandonFrame(int64_t frame_id) {
  if (frame_id < base_id_) return;  // already resolved
  const size_t index = EnsureSlot(frame_id);
  if (slots_[index].resolved()) return;
  DeclareLost(index);
  Trim();
}

void FrameAssembler::MarkNeverArriving(int64_t frame_id) {
  if (frame_id < base_id_) return;
  const size_t index = EnsureSlot(frame_id);
  Slot& frame = slots_[index];
  if (frame.state != SlotState::kEmpty) return;
  frame.state = SlotState::kVacant;
  Trim();
}

void FrameAssembler::DeclareLost(size_t index) {
  Slot& frame = slots_[index];
  if (frame.state == SlotState::kPending) --pending_count_;
  frame.state = SlotState::kLost;
  frame.overflow_bits = {};
  ++frames_lost_;
  on_frame_lost_(base_id_ + static_cast<int64_t>(index));
}

void FrameAssembler::Sweep() {
  const Timestamp now = loop_.now();
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& frame = slots_[i];
    if (frame.state == SlotState::kPending &&
        now - frame.first_arrival > config_.loss_timeout) {
      DeclareLost(i);
    }
  }
  Trim();
}

}  // namespace rave::transport
