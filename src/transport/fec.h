// Forward error correction (FLEXFEC-style model) plus the adaptive
// protection controller that decides how much redundancy to spend.
//
// The sender groups consecutive media packets and appends recovery packets;
// any combination of up to K losses within a group of N media packets is
// recoverable once at least N of the N+K packets arrive (an idealized MDS
// code — real XOR-based FlexFEC is slightly weaker, parity in one masked
// subset). Recovery packets carry descriptors of the packets they protect,
// so the receiver can resynthesize a lost packet's metadata exactly.
//
// FEC trades bitrate for latency: it repairs losses in ~0 RTT where NACK/RTX
// needs one round trip, at the cost of redundancy that must come out of the
// media budget. The protection controller scales the overhead with the
// observed loss rate, as WebRTC's media optimization does.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.h"
#include "util/inline_function.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::transport {

/// Descriptor of a protected media packet (enough to resynthesize it).
struct ProtectedPacket {
  int64_t media_seq = -1;
  DataSize size = DataSize::Zero();
  int64_t frame_id = -1;
  int packet_index = 0;
  int packets_in_frame = 1;
  Timestamp capture_time = Timestamp::MinusInfinity();
  bool keyframe = false;
};

/// Groups media packets and emits recovery packets.
class FecEncoder {
 public:
  struct Config {
    /// Media packets per protection group.
    int group_size = 10;
    /// Current number of recovery packets per group (set by the protection
    /// controller; 0 disables FEC).
    int recovery_packets = 0;
  };

  explicit FecEncoder(const Config& config);

  /// Adjusts redundancy (takes effect from the next group).
  void SetRecoveryPackets(int count);
  int recovery_packets() const { return config_.recovery_packets; }

  /// Feeds one outgoing media packet; returns the recovery packets to send
  /// when this packet closes a group (empty otherwise). Recovery packets are
  /// sized like the largest packet in the group.
  std::vector<net::Packet> OnMediaPacket(const net::Packet& packet);

  /// Descriptors of the group a recovery packet protects, keyed by the
  /// recovery packet's media_seq (negative, distinct space).
  const std::vector<ProtectedPacket>* GroupFor(int64_t fec_seq) const;

 private:
  Config config_;
  std::vector<ProtectedPacket> current_group_;
  DataSize largest_in_group_ = DataSize::Zero();
  int64_t next_fec_seq_ = -1000;  // descending, never collides with media
  std::map<int64_t, std::vector<ProtectedPacket>> groups_;
};

/// Receiver side: counts arrivals per group and recovers missing packets.
class FecDecoder {
 public:
  /// Called with each packet recovered by FEC (resynthesized metadata).
  using RecoverCallback = InlineFunction<void(const net::Packet&, Timestamp)>;

  explicit FecDecoder(RecoverCallback on_recovered);

  /// Feeds every received packet (media and recovery). Recovery packets
  /// must carry their group descriptors (set by the session from the
  /// FecEncoder bookkeeping).
  void OnMediaPacket(const net::Packet& packet, Timestamp arrival);
  void OnRecoveryPacket(int64_t fec_seq,
                        const std::vector<ProtectedPacket>& group,
                        int recovery_in_group, Timestamp arrival);

  int64_t packets_recovered() const { return packets_recovered_; }

 private:
  struct GroupState {
    std::vector<ProtectedPacket> protected_packets;
    std::vector<bool> media_arrived;
    int arrived_total = 0;  // media + recovery
    int expected_media = 0;
    int expected_recovery = 0;
    bool recovered = false;
  };

  void MaybeRecover(GroupState& group, Timestamp arrival);
  void Prune();

  RecoverCallback on_recovered_;
  /// Keyed by the first protected media seq of the group.
  std::map<int64_t, GroupState> groups_;
  std::map<int64_t, int64_t> media_to_group_;
  /// Media arrivals whose group has not been announced yet.
  std::map<int64_t, Timestamp> orphan_media_;
  int64_t packets_recovered_ = 0;
};

/// Loss-adaptive redundancy: recovery packets per group grows with the
/// recent loss rate (0 below the activation threshold).
class ProtectionController {
 public:
  struct Config {
    int group_size = 10;
    int max_recovery = 4;
    /// Loss rate below which FEC stays off.
    double activation_loss = 0.005;
    /// Target: survive `headroom` x the observed loss rate.
    double headroom = 2.0;
  };

  explicit ProtectionController(const Config& config);
  ProtectionController();

  /// Returns the recovery-packet count for the given smoothed loss rate.
  int RecoveryPacketsFor(double loss_rate) const;

  /// Fraction of the send rate spent on redundancy for that choice.
  double OverheadFor(int recovery_packets) const;

 private:
  Config config_;
};

}  // namespace rave::transport
