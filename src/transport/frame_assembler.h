// Receiver-side frame reassembly: collects a frame's packets (first
// transmissions and retransmissions alike, deduplicated), reports the frame
// complete when the last one arrives — the moment it becomes decodable and
// the end of its end-to-end latency — and declares frames lost when they
// cannot complete (NACK retries exhausted, or an incompleteness timeout as
// backstop). Loss triggers a PLI-style keyframe request upstream.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "util/inline_function.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::transport {

/// A fully received frame.
struct CompleteFrame {
  int64_t frame_id = 0;
  Timestamp capture_time = Timestamp::Zero();
  /// Arrival of the frame's last packet.
  Timestamp complete_time = Timestamp::Zero();
  DataSize size = DataSize::Zero();
  bool keyframe = false;
  int packets = 0;
};

class FrameAssembler {
 public:
  struct Config {
    /// A frame incomplete this long after its first packet is lost.
    TimeDelta loss_timeout = TimeDelta::Millis(600);
    TimeDelta sweep_interval = TimeDelta::Millis(100);
  };

  using FrameCallback = InlineFunction<void(const CompleteFrame&)>;
  using LossCallback = InlineFunction<void(int64_t frame_id)>;

  FrameAssembler(EventLoop& loop, const Config& config,
                 FrameCallback on_frame, LossCallback on_frame_lost);

  void OnPacketReceived(const net::Packet& packet, Timestamp arrival);

  /// Declares a frame unrecoverable (e.g. NACK retries exhausted). Fires the
  /// loss callback exactly once per frame; no-op for completed frames.
  void AbandonFrame(int64_t frame_id);

  int64_t frames_completed() const { return frames_completed_; }
  int64_t frames_lost() const { return frames_lost_; }
  size_t frames_pending() const { return pending_.size(); }

 private:
  struct PendingFrame {
    std::vector<bool> received;
    int received_count = 0;
    DataSize size = DataSize::Zero();
    Timestamp capture_time = Timestamp::Zero();
    Timestamp first_arrival = Timestamp::Zero();
    bool keyframe = false;
  };

  void Sweep();
  void DeclareLost(int64_t frame_id);

  EventLoop& loop_;
  Config config_;
  FrameCallback on_frame_;
  LossCallback on_frame_lost_;
  RepeatingTask sweep_task_;
  std::map<int64_t, PendingFrame> pending_;
  std::set<int64_t> completed_;
  std::set<int64_t> lost_;
  int64_t frames_completed_ = 0;
  int64_t frames_lost_ = 0;
};

}  // namespace rave::transport
