// Receiver-side frame reassembly: collects a frame's packets (first
// transmissions and retransmissions alike, deduplicated), reports the frame
// complete when the last one arrives — the moment it becomes decodable and
// the end of its end-to-end latency — and declares frames lost when they
// cannot complete (NACK retries exhausted, or an incompleteness timeout as
// backstop). Loss triggers a PLI-style keyframe request upstream.
//
// Storage is a flat ring indexed by frame id (ids are dense from 0):
// `slots_[i]` holds frame `base_id_ + i`. Anything below `base_id_` is
// resolved. Resolving a frame marks its slot; the contiguous resolved prefix
// is then trimmed off the front. An untouched (kEmpty) slot blocks the trim:
// a frame whose packets are all in flight or awaiting RTX has no slot state
// yet but may still complete, so the ring must keep its id addressable.
// Received-packet presence is a fixed 256-bit inline bitmap (no per-frame
// heap allocation); pathological frames with more packets fall back to a
// heap bitmap.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "util/inline_function.h"
#include "util/ring_deque.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::transport {

/// A fully received frame.
struct CompleteFrame {
  int64_t frame_id = 0;
  Timestamp capture_time = Timestamp::Zero();
  /// Arrival of the frame's last packet.
  Timestamp complete_time = Timestamp::Zero();
  DataSize size = DataSize::Zero();
  bool keyframe = false;
  int packets = 0;
};

class FrameAssembler {
 public:
  struct Config {
    /// A frame incomplete this long after its first packet is lost.
    TimeDelta loss_timeout = TimeDelta::Millis(600);
    TimeDelta sweep_interval = TimeDelta::Millis(100);
  };

  using FrameCallback = InlineFunction<void(const CompleteFrame&)>;
  using LossCallback = InlineFunction<void(int64_t frame_id)>;

  FrameAssembler(EventLoop& loop, const Config& config,
                 FrameCallback on_frame, LossCallback on_frame_lost);

  void OnPacketReceived(const net::Packet& packet, Timestamp arrival);

  /// Declares a frame unrecoverable (e.g. NACK retries exhausted). Fires the
  /// loss callback exactly once per frame; no-op for completed frames.
  void AbandonFrame(int64_t frame_id);

  /// Resolves a frame id that will never produce packets (dropped at the
  /// sender before packetization, or skipped by the encoder). Fires no
  /// callback and counts nothing — those frames never reached the transport —
  /// but lets the ring trim past the id instead of holding it forever as a
  /// possibly-still-arriving hole.
  void MarkNeverArriving(int64_t frame_id);

  int64_t frames_completed() const { return frames_completed_; }
  int64_t frames_lost() const { return frames_lost_; }
  size_t frames_pending() const { return pending_count_; }

 private:
  /// Inline presence bitmap covers frames up to this many packets (a 4 Mbit
  /// frame at 1200-byte packets is ~440 packets only in pathological
  /// configs; typical frames are < 40).
  static constexpr int kInlineBitmapPackets = 256;

  enum class SlotState : uint8_t {
    kEmpty = 0,   // id addressable, no packet seen yet — NOT resolved
    kPending,     // some packets received, frame incomplete
    kCompleted,   // resolved: completion callback fired
    kLost,        // resolved: loss callback fired
    kVacant,      // resolved: sender-side drop/skip, nothing ever sent
  };

  struct Slot {
    SlotState state = SlotState::kEmpty;
    bool keyframe = false;
    int packets_in_frame = 0;
    int received_count = 0;
    DataSize size = DataSize::Zero();
    Timestamp capture_time = Timestamp::Zero();
    Timestamp first_arrival = Timestamp::Zero();
    std::array<uint64_t, kInlineBitmapPackets / 64> received_bits{};
    /// Fallback bitmap when packets_in_frame > kInlineBitmapPackets.
    std::vector<bool> overflow_bits;

    bool resolved() const {
      return state == SlotState::kCompleted || state == SlotState::kLost ||
             state == SlotState::kVacant;
    }
    bool TestAndSetReceived(size_t index);
  };

  void Sweep();
  /// Marks slot (frame `base_id_ + index`) lost and fires the callback.
  void DeclareLost(size_t index);
  /// Grows the ring with kEmpty slots so `frame_id` is addressable; returns
  /// its logical index. Pre: frame_id >= base_id_.
  size_t EnsureSlot(int64_t frame_id);
  /// Pops the contiguous resolved prefix, advancing base_id_.
  void Trim();

  EventLoop& loop_;
  Config config_;
  FrameCallback on_frame_;
  LossCallback on_frame_lost_;
  RepeatingTask sweep_task_;
  /// slots_[i] is frame base_id_ + i; ids below base_id_ are resolved.
  RingDeque<Slot> slots_;
  int64_t base_id_ = 0;
  size_t pending_count_ = 0;
  int64_t frames_completed_ = 0;
  int64_t frames_lost_ = 0;
};

}  // namespace rave::transport
