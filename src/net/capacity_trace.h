// Piecewise-constant link-capacity traces plus the generators used by the
// evaluation: single step drops (the paper's core scenario), drop+recover,
// multi-step staircases, oscillations, and an LTE-like bounded random walk.
// Traces can also be loaded from / saved to simple text files
// ("<time_s> <rate_kbps>" per line) for replaying external captures.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::net {

/// Immutable piecewise-constant capacity schedule. The rate at time t is the
/// rate of the last step whose start time is <= t; there is always a step at
/// t = 0.
class CapacityTrace {
 public:
  struct Step {
    Timestamp start;
    DataRate rate;
  };

  /// Steps must be sorted by start time, begin at t=0 and have positive
  /// rates. Throws std::invalid_argument otherwise.
  explicit CapacityTrace(std::vector<Step> steps);

  /// Capacity at time `t`.
  DataRate RateAt(Timestamp t) const;

  /// First change strictly after `t`; PlusInfinity when none remain.
  Timestamp NextChangeAfter(Timestamp t) const;

  /// Stateful view for callers whose query timestamps are non-decreasing
  /// (event-loop consumers: the link serializer, timeseries sampling, the
  /// oracle estimator). Each query advances a step index instead of binary
  /// searching, so a simulation pass over an N-step trace costs O(N) total
  /// rather than O(events * log N). Queries that go backwards in time are
  /// still answered correctly (the cursor rewinds), just not in O(1).
  class Cursor {
   public:
    /// `trace` must outlive the cursor.
    explicit Cursor(const CapacityTrace& trace) : trace_(&trace) {}

    /// Same value as trace.RateAt(t), amortized O(1) for monotonic `t`.
    DataRate RateAt(Timestamp t);
    /// Same value as trace.NextChangeAfter(t), amortized O(1) likewise.
    Timestamp NextChangeAfter(Timestamp t);

   private:
    /// Moves index_ to the last step with start <= t.
    void Seek(Timestamp t);

    const CapacityTrace* trace_;
    size_t index_ = 0;
  };

  const std::vector<Step>& steps() const { return steps_; }

  /// Mean rate over [0, horizon].
  DataRate AverageRate(TimeDelta horizon) const;

  // --- generators ---

  static CapacityTrace Constant(DataRate rate);

  /// Rate `before` until `drop_at`, then `after` forever.
  static CapacityTrace StepDrop(DataRate before, DataRate after,
                                Timestamp drop_at);

  /// Step drop followed by full recovery at `recover_at`.
  static CapacityTrace StepDropAndRecover(DataRate before, DataRate after,
                                          Timestamp drop_at,
                                          Timestamp recover_at);

  /// Arbitrary staircase from (time, rate) pairs.
  static CapacityTrace MultiStep(
      const std::vector<std::pair<Timestamp, DataRate>>& points);

  /// Square-wave oscillation between base-amplitude and base+amplitude.
  static CapacityTrace Oscillating(DataRate base, DataRate amplitude,
                                   TimeDelta period, TimeDelta duration);

  /// LTE-like bounded geometric random walk sampled every `interval`.
  static CapacityTrace RandomWalk(DataRate mean, double volatility,
                                  TimeDelta interval, TimeDelta duration,
                                  uint64_t seed, DataRate lo, DataRate hi);

  /// Parses "<time_s> <rate_kbps>" lines; '#' comments allowed. Throws
  /// std::runtime_error naming the file and line for malformed lines,
  /// trailing garbage, non-finite values, negative times or non-positive
  /// rates, and for traces with no steps at all.
  static CapacityTrace FromFile(const std::string& path);
  /// Writes the trace in the FromFile format.
  void Save(const std::string& path) const;

 private:
  std::vector<Step> steps_;
};

}  // namespace rave::net
