#include "net/capacity_trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rave::net {

CapacityTrace::CapacityTrace(std::vector<Step> steps)
    : steps_(std::move(steps)) {
  if (steps_.empty()) {
    throw std::invalid_argument("CapacityTrace: empty step list");
  }
  if (steps_.front().start != Timestamp::Zero()) {
    throw std::invalid_argument("CapacityTrace: first step must start at 0");
  }
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].rate.bps() <= 0) {
      throw std::invalid_argument("CapacityTrace: non-positive rate");
    }
    if (i > 0 && steps_[i].start <= steps_[i - 1].start) {
      throw std::invalid_argument("CapacityTrace: steps not strictly sorted");
    }
  }
}

DataRate CapacityTrace::RateAt(Timestamp t) const {
  // Last step with start <= t.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Timestamp value, const Step& s) { return value < s.start; });
  if (it == steps_.begin()) return steps_.front().rate;
  return std::prev(it)->rate;
}

Timestamp CapacityTrace::NextChangeAfter(Timestamp t) const {
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Timestamp value, const Step& s) { return value < s.start; });
  if (it == steps_.end()) return Timestamp::PlusInfinity();
  return it->start;
}

void CapacityTrace::Cursor::Seek(Timestamp t) {
  const std::vector<Step>& steps = trace_->steps_;
  if (t < steps[index_].start) {
    // Non-monotonic query: rewind (rare; correctness fallback).
    index_ = 0;
  }
  while (index_ + 1 < steps.size() && steps[index_ + 1].start <= t) {
    ++index_;
  }
}

DataRate CapacityTrace::Cursor::RateAt(Timestamp t) {
  Seek(t);
  return trace_->steps_[index_].rate;
}

Timestamp CapacityTrace::Cursor::NextChangeAfter(Timestamp t) {
  Seek(t);
  // After Seek, steps_[index_] is the last step with start <= t, so the next
  // step (if any) is the first change strictly after t.
  if (index_ + 1 < trace_->steps_.size()) {
    return trace_->steps_[index_ + 1].start;
  }
  return Timestamp::PlusInfinity();
}

DataRate CapacityTrace::AverageRate(TimeDelta horizon) const {
  const Timestamp end = Timestamp::Zero() + horizon;
  double bits = 0.0;
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Timestamp seg_start = steps_[i].start;
    if (seg_start >= end) break;
    const Timestamp seg_end =
        i + 1 < steps_.size() ? std::min(steps_[i + 1].start, end) : end;
    bits += static_cast<double>(steps_[i].rate.bps()) *
            (seg_end - seg_start).seconds();
  }
  return DataRate::BitsPerSec(
      static_cast<int64_t>(bits / horizon.seconds() + 0.5));
}

CapacityTrace CapacityTrace::Constant(DataRate rate) {
  return CapacityTrace({{Timestamp::Zero(), rate}});
}

CapacityTrace CapacityTrace::StepDrop(DataRate before, DataRate after,
                                      Timestamp drop_at) {
  return CapacityTrace({{Timestamp::Zero(), before}, {drop_at, after}});
}

CapacityTrace CapacityTrace::StepDropAndRecover(DataRate before,
                                                DataRate after,
                                                Timestamp drop_at,
                                                Timestamp recover_at) {
  return CapacityTrace(
      {{Timestamp::Zero(), before}, {drop_at, after}, {recover_at, before}});
}

CapacityTrace CapacityTrace::MultiStep(
    const std::vector<std::pair<Timestamp, DataRate>>& points) {
  std::vector<Step> steps;
  steps.reserve(points.size());
  for (const auto& [t, r] : points) steps.push_back({t, r});
  return CapacityTrace(std::move(steps));
}

CapacityTrace CapacityTrace::Oscillating(DataRate base, DataRate amplitude,
                                         TimeDelta period,
                                         TimeDelta duration) {
  std::vector<Step> steps;
  const TimeDelta half = period / 2;
  Timestamp t = Timestamp::Zero();
  bool high = true;
  while (t < Timestamp::Zero() + duration) {
    steps.push_back({t, high ? base + amplitude : base - amplitude});
    t += half;
    high = !high;
  }
  return CapacityTrace(std::move(steps));
}

CapacityTrace CapacityTrace::RandomWalk(DataRate mean, double volatility,
                                        TimeDelta interval, TimeDelta duration,
                                        uint64_t seed, DataRate lo,
                                        DataRate hi) {
  Rng rng(seed);
  std::vector<Step> steps;
  double rate = static_cast<double>(mean.bps());
  const double mean_bps = static_cast<double>(mean.bps());
  Timestamp t = Timestamp::Zero();
  while (t < Timestamp::Zero() + duration) {
    steps.push_back({t, DataRate::BitsPerSec(static_cast<int64_t>(rate))});
    // Geometric step with mild mean reversion.
    const double shock = std::exp(rng.Gaussian(0.0, volatility));
    rate = 0.9 * rate * shock + 0.1 * mean_bps;
    rate = std::clamp(rate, static_cast<double>(lo.bps()),
                      static_cast<double>(hi.bps()));
    t += interval;
  }
  return CapacityTrace(std::move(steps));
}

CapacityTrace CapacityTrace::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CapacityTrace: cannot open " + path);
  std::vector<Step> steps;
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& why) {
    throw std::runtime_error("CapacityTrace: " + path + ":" +
                             std::to_string(line_no) + ": " + why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream iss(line);
    double t_s = 0.0;
    double kbps = 0.0;
    std::string word;
    if (!(iss >> t_s)) {
      iss.clear();
      if (iss >> word) {
        fail("malformed line (expected \"<time_s> <rate_kbps>\"): " + word);
      }
      continue;  // blank or comment-only line
    }
    if (!(iss >> kbps)) fail("missing or malformed rate");
    if (iss >> word) fail("trailing garbage after \"<time_s> <rate_kbps>\"");
    if (!std::isfinite(t_s) || !std::isfinite(kbps)) fail("non-finite value");
    if (t_s < 0.0) fail("negative time");
    if (kbps <= 0.0) fail("non-positive rate");
    steps.push_back({Timestamp::Micros(static_cast<int64_t>(t_s * 1e6)),
                     DataRate::KilobitsPerSecF(kbps)});
  }
  if (steps.empty()) {
    throw std::runtime_error("CapacityTrace: no capacity steps in " + path);
  }
  try {
    return CapacityTrace(std::move(steps));
  } catch (const std::invalid_argument& e) {
    // The constructor's structural checks, with the file named.
    throw std::runtime_error(std::string(e.what()) + " (from " + path + ")");
  }
}

void CapacityTrace::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CapacityTrace: cannot write " + path);
  out << "# time_s rate_kbps\n";
  for (const Step& s : steps_) {
    out << s.start.seconds() << ' ' << s.rate.kbps() << '\n';
  }
}

}  // namespace rave::net
