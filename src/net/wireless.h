// Wireless-tier capacity generators layered on the piecewise-constant
// CapacityTrace: Gilbert-Elliott fading (two-state Markov channel),
// duty-cycle interference bursts, and an FPV-style radio whose modulation
// ladder the link renegotiates in discrete steps.
//
// All generators are deterministic functions of their config (seeds
// included), so traces can be interned and shared across matrix cells and
// every bench stays byte-identical at any --jobs/--batch variant.
#pragma once

#include <cstdint>
#include <vector>

#include "net/capacity_trace.h"
#include "sim/random_process.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::net {

/// Gilbert-Elliott fading channel: capacity flips between a good-state and
/// a faded (bad-state) rate as a two-state Markov chain stepped every
/// `step` of sim time. Mean fade dwell is `step / p_bad_to_good`.
struct GilbertFadingConfig {
  DataRate good_rate = DataRate::KilobitsPerSec(2500);
  DataRate bad_rate = DataRate::KilobitsPerSec(600);
  GilbertProcess::Config chain{/*p_good_to_bad=*/0.04, /*p_bad_to_good=*/0.25};
  /// Sim-time interval between chain transitions.
  TimeDelta step = TimeDelta::Millis(100);
  uint64_t seed = 1;
};

/// Builds the fading capacity schedule over [0, duration]; consecutive
/// same-state steps are coalesced.
CapacityTrace GilbertFadingTrace(const GilbertFadingConfig& config,
                                 TimeDelta duration);

/// Periodic interference (microwave oven / co-channel duty cycle): the link
/// runs at `nominal` and collapses to `degraded` for the first
/// `duty * period` of every period. Fully deterministic.
CapacityTrace DutyCycleTrace(DataRate nominal, DataRate degraded,
                             TimeDelta period, double duty,
                             TimeDelta duration);

/// FPV-style radio: the link re-evaluates a noisy SNR estimate every
/// `decision_interval` and renegotiates its datarate onto the nearest rung
/// of a discrete modulation ladder. The encoder must chase these steps —
/// they are link renegotiations, not congestion.
struct FpvRadioConfig {
  /// Modulation ladder, ascending (e.g. MCS rates). Must be non-empty.
  std::vector<DataRate> ladder = {
      DataRate::KilobitsPerSec(900), DataRate::KilobitsPerSec(1800),
      DataRate::KilobitsPerSec(2700), DataRate::KilobitsPerSec(3600)};
  /// How often the radio re-evaluates the link.
  TimeDelta decision_interval = TimeDelta::Seconds(2);
  /// Mean-reverting SNR proxy in ladder-index units: the walk's value is
  /// clamped and floored onto [0, ladder.size()-1].
  Ar1Process::Config snr{/*mean=*/2.4, /*phi=*/0.80, /*sigma=*/0.9,
                         /*lo=*/0.0, /*hi=*/1e18};
  uint64_t seed = 7;
};

/// The renegotiation schedule: one entry per decision point whose ladder
/// rung differs from the previous one (plus the initial rung at t=0).
std::vector<CapacityTrace::Step> FpvModulationSchedule(
    const FpvRadioConfig& config, TimeDelta duration);

/// The same schedule as a capacity trace (for callers that want the radio
/// as a plain trace rather than renegotiation fault events).
CapacityTrace FpvRadioTrace(const FpvRadioConfig& config, TimeDelta duration);

}  // namespace rave::net
