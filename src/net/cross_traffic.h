// Cross-traffic generator: an on/off CBR source sharing the bottleneck with
// the video flow. During "on" periods it injects filler packets at the
// configured rate, shrinking the capacity effectively available to the video
// flow — the other canonical cause of bandwidth drops besides link-rate
// changes.
#pragma once

#include <cstdint>

#include "net/link.h"
#include "sim/event_loop.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::net {

/// On/off CBR cross traffic into a shared Link. Cross packets carry
/// frame_id = -1 so receivers can tell them from media.
class CrossTraffic {
 public:
  struct Config {
    DataRate rate = DataRate::KilobitsPerSec(800);
    /// Mean of the exponential on/off period lengths.
    TimeDelta mean_on = TimeDelta::Seconds(5);
    TimeDelta mean_off = TimeDelta::Seconds(5);
    DataSize packet_size = DataSize::Bytes(1200);
    /// Start in the "on" state.
    bool start_on = false;
    uint64_t seed = 31;
  };

  CrossTraffic(EventLoop& loop, Link& link, const Config& config);

  CrossTraffic(const CrossTraffic&) = delete;
  CrossTraffic& operator=(const CrossTraffic&) = delete;

  /// Begins the on/off schedule.
  void Start();

  bool on() const { return on_; }
  int64_t packets_sent() const { return packets_sent_; }

 private:
  void Toggle();
  void SendNext();

  EventLoop& loop_;
  Link& link_;
  Config config_;
  Rng rng_;
  bool on_;
  bool started_ = false;
  int64_t packets_sent_ = 0;
  EventHandle send_handle_;
  EventHandle toggle_handle_;
};

}  // namespace rave::net
