// Bottleneck link model: FIFO droptail byte queue + exact serialization at a
// piecewise-constant capacity + fixed propagation delay.
//
// This substitutes for the tc/mahimahi bottleneck a testbed would use. The
// serializer integrates the capacity trace exactly: when the rate changes
// mid-packet, the remaining bits are re-scheduled at the new rate, so queueing
// delays match the fluid model to microsecond precision.
#pragma once

#include <cstdint>
#include <optional>

#include "net/capacity_trace.h"
#include "net/loss_model.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/random_process.h"
#include "util/inline_function.h"
#include "util/interned.h"
#include "util/ring_deque.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/units.h"

namespace rave::net {

/// Counters exposed for metrics and tests.
struct LinkStats {
  int64_t packets_delivered = 0;
  /// Droptail (queue full) drops.
  int64_t packets_dropped = 0;
  /// Wireless-style corruption drops (random/Gilbert loss model).
  int64_t packets_lost_random = 0;
  /// Fault-injection counters (see fault::FaultScheduler).
  int64_t packets_duplicated = 0;
  int64_t packets_reordered = 0;
  int64_t outages = 0;
  /// Wireless-tier counters: atomic handovers and datarate renegotiations.
  int64_t handovers = 0;
  int64_t renegotiations = 0;
  DataSize bytes_delivered = DataSize::Zero();
  DataSize bytes_dropped = DataSize::Zero();
};

/// One-directional bottleneck. Delivery callback fires at the receiver-side
/// arrival time (serialization complete + propagation).
class Link {
 public:
  struct Config {
    /// Shared immutable capacity schedule: copying a Config (or a
    /// SessionConfig containing one) shares the step vector instead of
    /// deep-copying it, so sweep matrices intern one trace across cells.
    Interned<CapacityTrace> trace =
        CapacityTrace::Constant(DataRate::KilobitsPerSec(2500));
    TimeDelta propagation = TimeDelta::Millis(25);
    /// Droptail queue capacity. Default ~256 ms at 2.5 Mbps (a moderate
    /// last-mile buffer); experiments sweep this.
    DataSize queue_capacity = DataSize::Bytes(80'000);
    /// Non-congestive loss applied after serialization.
    LossModel loss;
  };

  using DeliveryCallback = InlineFunction<void(const Packet&, Timestamp)>;

  Link(EventLoop& loop, Config config, DeliveryCallback on_delivery);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Enqueues a packet (stamping `send_time` if unset); drops it if the
  /// queue is full.
  void Send(Packet packet);

  // --- fault-injection hooks (driven by fault::FaultScheduler) ---

  /// Link blackout. While on, serialization pauses mid-packet (remaining
  /// bits are frozen), the queue keeps filling and droptail keeps dropping;
  /// on revert the in-flight packet resumes exactly where it stopped.
  void SetOutage(bool on);
  bool outage() const { return outage_; }

  /// Extra propagation delay added to every subsequent delivery (delay
  /// spike). Deliveries stay in order even when the extra later shrinks.
  void SetExtraPropagation(TimeDelta extra);

  /// Each delivered packet is duplicated with probability `probability`
  /// (the copy arrives 0.5–5 ms later). 0 disables.
  void SetDuplication(double probability);

  /// Each delivered packet is held back by up to `max_extra` with
  /// probability `probability`, so later packets overtake it. 0 disables.
  void SetReordering(double probability, TimeDelta max_extra);

  // --- wireless-tier hooks (handover / datarate renegotiation) ---

  /// Atomic handover: in one event-loop action the link moves to a new
  /// cell/AP — capacity, propagation delay, and loss model all change
  /// together. The new rate persists (it is a property of the new cell,
  /// not a temporary window); an in-flight packet is retimed at the new
  /// rate exactly like a trace rate-change. `loss`, when set, replaces
  /// the loss model and reseeds its RNGs deterministically from the new
  /// model's seed.
  void Handover(DataRate rate, TimeDelta propagation,
                const std::optional<LossModel>& loss);

  /// Temporary datarate renegotiation (FPV-style modulation step). While
  /// set, the link serializes at `rate` regardless of trace or handover
  /// rate; `std::nullopt` reverts to the underlying rate. In-flight
  /// packets are retimed on every change.
  void SetRateOverride(std::optional<DataRate> rate);

  /// Replaces the base (pre-fault) propagation delay for subsequent
  /// deliveries. In-order delivery is preserved when it shrinks.
  void SetPropagation(TimeDelta propagation);

  /// Bits waiting in the queue plus the untransmitted remainder of the
  /// in-flight packet.
  DataSize backlog() const;
  /// Estimated time to drain the current backlog at the current rate.
  TimeDelta QueueDelay() const;
  /// Instantaneous capacity.
  DataRate current_rate() const { return current_rate_; }

  const LinkStats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  void StartNext();
  /// Serializer-completion drain. Completes the in-flight packet, then keeps
  /// serializing queued packets inline as long as the event loop grants
  /// TryAdvanceTo — one event per packet train instead of one per packet.
  /// Whenever the step is refused (RAVE_NO_COALESCE, an intervening event
  /// such as a rate change / fault edge / tick, tracing, or the run bound)
  /// it arms a completion event exactly where the per-packet scheduler did,
  /// so the outage/handover hooks always find an armed `completion_`.
  void OnTransmitComplete();
  /// In-order arrival drain: delivers queued receiver-side arrivals,
  /// stepping time between them when granted. Reordered and duplicated
  /// deliveries bypass the queue (their arrival order is the fault being
  /// injected) and keep per-packet events.
  void OnArrivalTimer();
  void OnRateChange();
  /// Recomputes the effective serialization rate (override > handover >
  /// trace) and retimes any in-flight packet; shared by trace
  /// rate-changes, handovers, and renegotiations.
  void ApplyEffectiveRate();
  /// Advances the Gilbert chain to sim-time `now` (one transition per
  /// `gilbert_step`), so bad-state dwell is time-based, not per-packet.
  void AdvanceGilbert(Timestamp now);
  /// Schedules receiver-side delivery (propagation + fault effects).
  void Deliver(const Packet& packet);

  EventLoop& loop_;
  Config config_;
  DeliveryCallback on_delivery_;
  /// Monotonic view of the capacity trace (rate-change callbacks fire in
  /// time order, so every lookup is an amortized O(1) index advance).
  CapacityTrace::Cursor trace_cursor_;

  RingDeque<Packet> queue_;
  DataSize queued_ = DataSize::Zero();

  /// Receiver-side in-order deliveries waiting for their arrival time.
  /// Arrival times are strictly increasing (the in-order clamp), so the
  /// drain timer is always armed for the front entry.
  struct PendingArrival {
    Packet packet;
    Timestamp at;
  };
  RingDeque<PendingArrival> arrivals_;
  bool arrival_armed_ = false;

  std::optional<Packet> in_flight_;
  double remaining_bits_ = 0.0;
  Timestamp segment_start_ = Timestamp::Zero();
  EventHandle completion_;

  DataRate current_rate_;
  LinkStats stats_;
  Rng loss_rng_;
  GilbertProcess gilbert_;
  /// Next sim time at which the Gilbert chain takes a transition.
  Timestamp gilbert_next_step_ = Timestamp::Zero();

  // Wireless-tier state. Effective rate = reneg override, else handover
  // rate, else trace rate; base propagation may be replaced by a handover.
  std::optional<DataRate> handover_rate_;
  std::optional<DataRate> reneg_rate_;
  TimeDelta base_propagation_;

  // Fault-injection state. The fault RNG is consumed only while a
  // duplication/reorder window is active, so fault-free runs are untouched.
  bool outage_ = false;
  TimeDelta extra_propagation_ = TimeDelta::Zero();
  double dup_probability_ = 0.0;
  double reorder_probability_ = 0.0;
  TimeDelta reorder_max_extra_ = TimeDelta::Zero();
  /// Latest scheduled arrival among in-order deliveries; keeps the channel
  /// FIFO when the extra propagation shrinks mid-run.
  Timestamp last_inorder_arrival_ = Timestamp::MinusInfinity();
  Rng fault_rng_;
};

/// Fixed-delay control channel for feedback messages (small packets whose
/// serialization time is negligible). Optional i.i.d. loss and bounded
/// jitter; deliveries never reorder.
class DelayPipe {
 public:
  DelayPipe(EventLoop& loop, TimeDelta delay, double loss_rate = 0.0,
            TimeDelta jitter = TimeDelta::Zero(), uint64_t seed = 99);

  /// Schedules `deliver` after the pipe delay (unless lost). The callback
  /// type is the event loop's inline-storage closure, so feedback deliveries
  /// never heap-allocate.
  void Send(EventLoop::Callback deliver);

  /// Feedback blackhole: while on, every Send is silently discarded
  /// (counted in `blackholed()`). Data already in flight still arrives.
  void SetBlackhole(bool on) { blackhole_ = on; }
  bool blackhole() const { return blackhole_; }

  /// Extra delay added to every subsequent delivery (reverse-path RTT
  /// spike). The in-order guarantee is preserved when it later shrinks.
  void SetExtraDelay(TimeDelta extra) { extra_delay_ = extra; }

  /// Replaces the base pipe delay (handover moved the reverse path to a
  /// new cell). In-order delivery is preserved when it shrinks.
  void SetBaseDelay(TimeDelta delay) { delay_ = delay; }
  TimeDelta base_delay() const { return delay_; }

  int64_t delivered() const { return delivered_; }
  int64_t lost() const { return lost_; }
  int64_t blackholed() const { return blackholed_; }

 private:
  EventLoop& loop_;
  TimeDelta delay_;
  double loss_rate_;
  TimeDelta jitter_;
  Rng rng_;
  Timestamp last_delivery_ = Timestamp::MinusInfinity();
  bool blackhole_ = false;
  TimeDelta extra_delay_ = TimeDelta::Zero();
  int64_t delivered_ = 0;
  int64_t lost_ = 0;
  int64_t blackholed_ = 0;
};

}  // namespace rave::net
