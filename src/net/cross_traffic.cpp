#include "net/cross_traffic.h"

#include <cassert>

namespace rave::net {

CrossTraffic::CrossTraffic(EventLoop& loop, Link& link, const Config& config)
    : loop_(loop),
      link_(link),
      config_(config),
      rng_(config.seed),
      on_(config.start_on) {
  assert(config_.rate.bps() > 0);
  assert(config_.packet_size.bits() > 0);
}

void CrossTraffic::Start() {
  if (started_) return;
  started_ = true;
  if (on_) SendNext();
  Toggle();
}

void CrossTraffic::Toggle() {
  const TimeDelta period = TimeDelta::SecondsF(rng_.Exponential(
      on_ ? config_.mean_on.seconds() : config_.mean_off.seconds()));
  toggle_handle_ = loop_.Schedule(period, [this] {
    on_ = !on_;
    if (on_) SendNext();
    Toggle();
  });
}

void CrossTraffic::SendNext() {
  if (!on_) return;
  Packet p;
  p.frame_id = -1;   // not media
  p.media_seq = -1;  // invisible to NACK machinery
  p.size = config_.packet_size;
  link_.Send(p);
  ++packets_sent_;
  const TimeDelta gap = config_.packet_size / config_.rate;
  send_handle_ = loop_.Schedule(gap, [this] { SendNext(); });
}

}  // namespace rave::net
