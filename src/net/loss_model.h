// Non-congestive (wireless-style) loss model, split out of link.h so the
// fault subsystem can carry replacement loss models inside handover events
// without pulling in the whole link/event-loop machinery.
#pragma once

#include <cstdint>

#include "sim/random_process.h"
#include "util/time.h"

namespace rave::net {

/// Non-congestive loss: i.i.d. corruption loss plus an optional Gilbert
/// burst process whose bad state loses packets at a much higher rate — the
/// Wi-Fi interference pattern.
///
/// Exactness contract: probabilities of exactly 0 and exactly 1 are honoured
/// without consuming a random draw (a p=0 model is byte-identical to a
/// disabled one; p=1 is a certainty, not a 1-ulp-away coin flip).
///
/// The Gilbert chain is stepped on the wall of simulated time — once per
/// `gilbert_step` — NOT once per delivered packet, so the bad-state dwell
/// time is a property of the channel (mean `gilbert_step / p_bad_to_good`)
/// and independent of how often the link happens to be queried.
struct LossModel {
  double random_loss = 0.0;
  bool gilbert_enabled = false;
  GilbertProcess::Config gilbert;
  /// Loss probability while the Gilbert process is in the bad state.
  double gilbert_bad_loss = 0.5;
  /// Sim-time interval between Gilbert chain transitions.
  TimeDelta gilbert_step = TimeDelta::Millis(10);
  uint64_t seed = 17;
};

}  // namespace rave::net
