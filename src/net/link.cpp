#include "net/link.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rave::net {

Link::Link(EventLoop& loop, Config config, DeliveryCallback on_delivery)
    : loop_(loop),
      config_(std::move(config)),
      on_delivery_(std::move(on_delivery)),
      current_rate_(config_.trace.RateAt(Timestamp::Zero())),
      loss_rng_(config_.loss.seed),
      gilbert_(config_.loss.gilbert, Rng(config_.loss.seed ^ 0x5A5A)) {
  assert(on_delivery_);
  // Register a callback at every capacity change point so the in-flight
  // packet's completion can be re-computed exactly.
  for (const CapacityTrace::Step& step : config_.trace.steps()) {
    if (step.start > Timestamp::Zero()) {
      loop_.ScheduleAt(step.start, [this] { OnRateChange(); });
    }
  }
}

void Link::Send(Packet packet) {
  if (packet.send_time.IsMinusInfinity()) packet.send_time = loop_.now();
  if (queued_ + packet.size > config_.queue_capacity) {
    ++stats_.packets_dropped;
    stats_.bytes_dropped += packet.size;
    return;
  }
  queued_ += packet.size;
  queue_.push_back(packet);
  if (!in_flight_) StartNext();
}

void Link::StartNext() {
  assert(!in_flight_);
  if (queue_.empty()) return;
  in_flight_ = queue_.front();
  queue_.pop_front();
  queued_ -= in_flight_->size;
  remaining_bits_ = static_cast<double>(in_flight_->size.bits());
  segment_start_ = loop_.now();
  const TimeDelta tx_time = TimeDelta::SecondsF(
      remaining_bits_ / static_cast<double>(current_rate_.bps()));
  completion_ = loop_.Schedule(tx_time, [this] { OnTransmitComplete(); });
}

void Link::OnTransmitComplete() {
  assert(in_flight_);
  const Packet packet = *in_flight_;
  in_flight_.reset();
  remaining_bits_ = 0.0;

  // Non-congestive loss (corruption): the packet consumed link capacity but
  // never reaches the receiver.
  double loss_p = config_.loss.random_loss;
  if (config_.loss.gilbert_enabled && gilbert_.Step()) {
    loss_p = std::max(loss_p, config_.loss.gilbert_bad_loss);
  }
  if (loss_p > 0.0 && loss_rng_.Bernoulli(loss_p)) {
    ++stats_.packets_lost_random;
    StartNext();
    return;
  }

  ++stats_.packets_delivered;
  stats_.bytes_delivered += packet.size;

  loop_.Schedule(config_.propagation, [this, packet] {
    on_delivery_(packet, loop_.now());
  });

  StartNext();
}

void Link::OnRateChange() {
  const DataRate new_rate = config_.trace.RateAt(loop_.now());
  if (in_flight_) {
    // Account for bits sent at the old rate since the segment began.
    const double sent = static_cast<double>(current_rate_.bps()) *
                        (loop_.now() - segment_start_).seconds();
    remaining_bits_ = std::max(0.0, remaining_bits_ - sent);
    loop_.Cancel(completion_);
    segment_start_ = loop_.now();
    const TimeDelta tx_time = TimeDelta::SecondsF(
        remaining_bits_ / static_cast<double>(new_rate.bps()));
    completion_ = loop_.Schedule(tx_time, [this] { OnTransmitComplete(); });
  }
  current_rate_ = new_rate;
}

DataSize Link::backlog() const {
  double in_flight_bits = 0.0;
  if (in_flight_) {
    const double sent = static_cast<double>(current_rate_.bps()) *
                        (loop_.now() - segment_start_).seconds();
    in_flight_bits = std::max(0.0, remaining_bits_ - sent);
  }
  return queued_ + DataSize::Bits(static_cast<int64_t>(in_flight_bits));
}

TimeDelta Link::QueueDelay() const {
  return TimeDelta::SecondsF(static_cast<double>(backlog().bits()) /
                             static_cast<double>(current_rate_.bps()));
}

DelayPipe::DelayPipe(EventLoop& loop, TimeDelta delay, double loss_rate,
                     TimeDelta jitter, uint64_t seed)
    : loop_(loop),
      delay_(delay),
      loss_rate_(loss_rate),
      jitter_(jitter),
      rng_(seed) {}

void DelayPipe::Send(std::function<void()> deliver) {
  if (rng_.Bernoulli(loss_rate_)) {
    ++lost_;
    return;
  }
  TimeDelta extra = TimeDelta::Zero();
  if (jitter_ > TimeDelta::Zero()) {
    extra = TimeDelta::SecondsF(rng_.Uniform(0.0, jitter_.seconds()));
  }
  Timestamp at = loop_.now() + delay_ + extra;
  // Keep the channel in-order.
  if (at <= last_delivery_) at = last_delivery_ + TimeDelta::Micros(1);
  last_delivery_ = at;
  ++delivered_;
  loop_.ScheduleAt(at, std::move(deliver));
}

}  // namespace rave::net
