#include "net/link.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/metrics_registry.h"
#include "obs/stage_timer.h"
#include "obs/trace.h"

namespace rave::net {

Link::Link(EventLoop& loop, Config config, DeliveryCallback on_delivery)
    : loop_(loop),
      config_(std::move(config)),
      on_delivery_(std::move(on_delivery)),
      trace_cursor_(*config_.trace),
      current_rate_(trace_cursor_.RateAt(Timestamp::Zero())),
      loss_rng_(config_.loss.seed),
      gilbert_(config_.loss.gilbert, Rng(config_.loss.seed ^ 0x5A5A)),
      base_propagation_(config_.propagation),
      fault_rng_(config_.loss.seed ^ 0xFA17'FA17ULL) {
  assert(on_delivery_);
  arrivals_.reserve(64);
  gilbert_next_step_ = Timestamp::Zero() + config_.loss.gilbert_step;
  // Register a callback at every capacity change point so the in-flight
  // packet's completion can be re-computed exactly.
  for (const CapacityTrace::Step& step : config_.trace->steps()) {
    if (step.start > Timestamp::Zero()) {
      loop_.ScheduleAt(step.start, [this] { OnRateChange(); });
    }
  }
}

void Link::Send(Packet packet) {
  if (packet.send_time.IsMinusInfinity()) packet.send_time = loop_.now();
  if (queued_ + packet.size > config_.queue_capacity) {
    ++stats_.packets_dropped;
    stats_.bytes_dropped += packet.size;
    if (obs::MetricsRegistry* reg = obs::CurrentMetrics()) {
      reg->GetCounter("net.tail_drops")->Add();
    }
    return;
  }
  queued_ += packet.size;
  queue_.push_back(std::move(packet));
  RAVE_TRACE_COUNTER(kLinkQueueMs, loop_.now(), QueueDelay().ms_float());
  if (!in_flight_) StartNext();
}

void Link::StartNext() {
  assert(!in_flight_);
  if (outage_ || queue_.empty()) return;
  in_flight_ = std::move(queue_.front());
  queue_.pop_front();
  queued_ -= in_flight_->size;
  remaining_bits_ = static_cast<double>(in_flight_->size.bits());
  segment_start_ = loop_.now();
  const TimeDelta tx_time = TimeDelta::SecondsF(
      remaining_bits_ / static_cast<double>(current_rate_.bps()));
  completion_ = loop_.Schedule(tx_time, [this] { OnTransmitComplete(); });
}

void Link::OnTransmitComplete() {
  const obs::StageTimer::Scope timer(obs::StageTimer::kLink);
  // Tracing disables time stepping (staging-rendezvous precedent): counter
  // emission stays on its per-event cadence, results are identical anyway.
  const bool may_step = obs::CurrentTrace() == nullptr;
  for (;;) {
    assert(in_flight_);
    const Packet packet = *in_flight_;
    in_flight_.reset();
    remaining_bits_ = 0.0;

    // Non-congestive loss (corruption): the packet consumed link capacity
    // but never reaches the receiver.
    double loss_p = config_.loss.random_loss;
    if (config_.loss.gilbert_enabled) {
      // Exact under stepped time: the chain advances as a pure function of
      // sim-time, so a train never needs to split at a Gilbert transition.
      AdvanceGilbert(loop_.now());
      if (gilbert_.bad()) {
        loss_p = std::max(loss_p, config_.loss.gilbert_bad_loss);
      }
    }
    // p=0 and p=1 are certainties: no RNG draw, so they are byte-identical
    // to a disabled model / an outage respectively.
    const bool lost =
        loss_p >= 1.0 || (loss_p > 0.0 && loss_rng_.Bernoulli(loss_p));
    if (lost) {
      ++stats_.packets_lost_random;
    } else {
      ++stats_.packets_delivered;
      stats_.bytes_delivered += packet.size;
      Deliver(packet);
    }

    // Inline StartNext with the packet-train fast path: serialize the next
    // queued packet without leaving the callback when the event loop grants
    // the step. Any refusal re-arms `completion_` exactly where StartNext
    // did, preserving the invariant the outage/handover hooks rely on.
    if (outage_ || queue_.empty()) return;
    in_flight_ = std::move(queue_.front());
    queue_.pop_front();
    queued_ -= in_flight_->size;
    remaining_bits_ = static_cast<double>(in_flight_->size.bits());
    segment_start_ = loop_.now();
    const TimeDelta tx_time = TimeDelta::SecondsF(
        remaining_bits_ / static_cast<double>(current_rate_.bps()));
    const Timestamp done = loop_.now() + tx_time;
    if (done > loop_.now() && (!may_step || !loop_.TryAdvanceTo(done))) {
      completion_ = loop_.ScheduleAt(done, [this] { OnTransmitComplete(); });
      return;
    }
    // Sub-µs serialization or granted step: complete inline.
  }
}

void Link::AdvanceGilbert(Timestamp now) {
  const TimeDelta step = config_.loss.gilbert_step;
  if (step <= TimeDelta::Zero()) return;
  // One transition per elapsed `gilbert_step`, so bad-state dwell depends
  // only on sim time — not on how many packets happened to be delivered.
  while (gilbert_next_step_ <= now) {
    gilbert_.Step();
    gilbert_next_step_ += step;
  }
}

void Link::Deliver(const Packet& packet) {
  TimeDelta propagation = base_propagation_ + extra_propagation_;
  bool reordered = false;
  if (reorder_probability_ > 0.0 &&
      fault_rng_.Bernoulli(reorder_probability_)) {
    // Held back: later packets overtake it. Bypasses the in-order clamp by
    // design — that is the fault being injected.
    propagation += TimeDelta::SecondsF(
        fault_rng_.Uniform(0.0, reorder_max_extra_.seconds()));
    reordered = true;
    ++stats_.packets_reordered;
  }

  Timestamp arrival = loop_.now() + propagation;
  if (!reordered) {
    // A delay spike that later clears must not let newer packets arrive
    // before older ones already in flight.
    if (arrival <= last_inorder_arrival_) {
      arrival = last_inorder_arrival_ + TimeDelta::Micros(1);
    }
    last_inorder_arrival_ = arrival;
    // In-order deliveries share one drain event: arrival times are strictly
    // increasing, so the armed timer always covers the front entry and new
    // entries queue behind it.
    arrivals_.push_back({packet, arrival});
    if (!arrival_armed_) {
      arrival_armed_ = true;
      loop_.ScheduleAt(arrival, [this] { OnArrivalTimer(); });
    }
  } else {
    // Reordered: its own event, outside the in-order queue by design.
    loop_.ScheduleAt(arrival,
                     [this, packet] { on_delivery_(packet, loop_.now()); });
  }

  if (dup_probability_ > 0.0 && fault_rng_.Bernoulli(dup_probability_)) {
    ++stats_.packets_duplicated;
    const TimeDelta dup_extra =
        TimeDelta::SecondsF(fault_rng_.Uniform(0.0005, 0.005));
    loop_.ScheduleAt(arrival + dup_extra,
                     [this, packet] { on_delivery_(packet, loop_.now()); });
  }
}

void Link::OnArrivalTimer() {
  arrival_armed_ = false;
  const bool may_step = obs::CurrentTrace() == nullptr;
  for (;;) {
    while (!arrivals_.empty() && arrivals_.front().at <= loop_.now()) {
      // Pop before delivering: the callback may feed packets back into the
      // session pipeline and must see a consistent queue.
      PendingArrival a = std::move(arrivals_.front());
      arrivals_.pop_front();
      on_delivery_(a.packet, a.at);
    }
    if (arrivals_.empty()) return;
    const Timestamp next = arrivals_.front().at;
    if (!may_step || !loop_.TryAdvanceTo(next)) {
      arrival_armed_ = true;
      loop_.ScheduleAt(next, [this] { OnArrivalTimer(); });
      return;
    }
  }
}

void Link::SetOutage(bool on) {
  if (on == outage_) return;
  outage_ = on;
  if (on) {
    ++stats_.outages;
    if (in_flight_) {
      // Freeze the in-flight packet: account bits already serialized, then
      // park the remainder until the outage clears.
      const double sent = static_cast<double>(current_rate_.bps()) *
                          (loop_.now() - segment_start_).seconds();
      remaining_bits_ = std::max(0.0, remaining_bits_ - sent);
      loop_.Cancel(completion_);
    }
    return;
  }
  if (in_flight_) {
    segment_start_ = loop_.now();
    const TimeDelta tx_time = TimeDelta::SecondsF(
        remaining_bits_ / static_cast<double>(current_rate_.bps()));
    completion_ = loop_.Schedule(tx_time, [this] { OnTransmitComplete(); });
  } else {
    StartNext();
  }
}

void Link::SetExtraPropagation(TimeDelta extra) { extra_propagation_ = extra; }

void Link::SetDuplication(double probability) {
  dup_probability_ = probability;
}

void Link::SetReordering(double probability, TimeDelta max_extra) {
  reorder_probability_ = probability;
  reorder_max_extra_ = max_extra;
}

void Link::OnRateChange() { ApplyEffectiveRate(); }

void Link::ApplyEffectiveRate() {
  const DataRate new_rate =
      reneg_rate_ ? *reneg_rate_
                  : (handover_rate_ ? *handover_rate_
                                    : trace_cursor_.RateAt(loop_.now()));
  // During an outage nothing is serializing: remaining_bits_ is frozen and
  // there is no completion event to re-schedule.
  if (in_flight_ && !outage_) {
    // Account for bits sent at the old rate since the segment began.
    const double sent = static_cast<double>(current_rate_.bps()) *
                        (loop_.now() - segment_start_).seconds();
    remaining_bits_ = std::max(0.0, remaining_bits_ - sent);
    loop_.Cancel(completion_);
    segment_start_ = loop_.now();
    const TimeDelta tx_time = TimeDelta::SecondsF(
        remaining_bits_ / static_cast<double>(new_rate.bps()));
    completion_ = loop_.Schedule(tx_time, [this] { OnTransmitComplete(); });
  }
  current_rate_ = new_rate;
}

void Link::Handover(DataRate rate, TimeDelta propagation,
                    const std::optional<LossModel>& loss) {
  ++stats_.handovers;
  handover_rate_ = rate;
  base_propagation_ = propagation;
  if (loss) {
    // The new cell has its own radio environment: swap the loss model and
    // reseed its RNGs deterministically from the model's seed. The fault
    // RNG (dup/reorder) is untouched — those faults belong to the plan,
    // not the cell.
    config_.loss = *loss;
    loss_rng_ = Rng(loss->seed);
    gilbert_ = GilbertProcess(loss->gilbert, Rng(loss->seed ^ 0x5A5A));
    gilbert_next_step_ = loop_.now() + loss->gilbert_step;
  }
  ApplyEffectiveRate();
}

void Link::SetRateOverride(std::optional<DataRate> rate) {
  if (rate) ++stats_.renegotiations;
  reneg_rate_ = rate;
  ApplyEffectiveRate();
}

void Link::SetPropagation(TimeDelta propagation) {
  base_propagation_ = propagation;
}

DataSize Link::backlog() const {
  double in_flight_bits = 0.0;
  if (in_flight_) {
    if (outage_) {
      in_flight_bits = remaining_bits_;  // frozen while blacked out
    } else {
      const double sent = static_cast<double>(current_rate_.bps()) *
                          (loop_.now() - segment_start_).seconds();
      in_flight_bits = std::max(0.0, remaining_bits_ - sent);
    }
  }
  return queued_ + DataSize::Bits(static_cast<int64_t>(in_flight_bits));
}

TimeDelta Link::QueueDelay() const {
  return TimeDelta::SecondsF(static_cast<double>(backlog().bits()) /
                             static_cast<double>(current_rate_.bps()));
}

DelayPipe::DelayPipe(EventLoop& loop, TimeDelta delay, double loss_rate,
                     TimeDelta jitter, uint64_t seed)
    : loop_(loop),
      delay_(delay),
      loss_rate_(loss_rate),
      jitter_(jitter),
      rng_(seed) {}

void DelayPipe::Send(EventLoop::Callback deliver) {
  if (blackhole_) {
    ++blackholed_;
    return;
  }
  if (rng_.Bernoulli(loss_rate_)) {
    ++lost_;
    return;
  }
  TimeDelta extra = extra_delay_;
  if (jitter_ > TimeDelta::Zero()) {
    extra += TimeDelta::SecondsF(rng_.Uniform(0.0, jitter_.seconds()));
  }
  Timestamp at = loop_.now() + delay_ + extra;
  // Keep the channel in-order.
  if (at <= last_delivery_) at = last_delivery_ + TimeDelta::Micros(1);
  last_delivery_ = at;
  ++delivered_;
  loop_.ScheduleAt(at, std::move(deliver));
}

}  // namespace rave::net
