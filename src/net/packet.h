// Wire unit carried by the simulated network: an RTP-like media packet with
// transport-wide sequencing and enough frame metadata for reassembly.
#pragma once

#include <cstdint>

#include "util/time.h"
#include "util/units.h"

namespace rave::net {

/// One media packet. Sizes include payload plus the ~68 bytes of
/// RTP/UDP/IP/transport-cc overhead a real stack would add (the packetizer
/// accounts for it).
struct Packet {
  /// Transport-wide sequence number, assigned when the packet leaves the
  /// pacer (monotone per session; retransmissions get a fresh one).
  int64_t seq = -1;
  /// Media (RTP) sequence number, assigned by the packetizer and preserved
  /// across retransmissions; NACKs reference this.
  int64_t media_seq = -1;
  bool is_retransmission = false;
  /// FEC recovery packet (media_seq lives in a separate negative space).
  bool is_fec = false;
  DataSize size = DataSize::Zero();

  /// When the pacer handed the packet to the link.
  Timestamp send_time = Timestamp::MinusInfinity();

  // --- frame metadata for reassembly ---
  int64_t frame_id = -1;
  int packet_index = 0;
  int packets_in_frame = 1;
  /// Capture time of the parent frame (for end-to-end latency accounting).
  Timestamp capture_time = Timestamp::MinusInfinity();
  bool keyframe = false;
};

}  // namespace rave::net
