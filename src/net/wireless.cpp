#include "net/wireless.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace rave::net {

namespace {

/// Appends a step only when the rate actually changes, keeping traces
/// minimal so interning and fingerprinting stay cheap.
void PushStep(std::vector<CapacityTrace::Step>& steps, Timestamp start,
              DataRate rate) {
  if (!steps.empty() && steps.back().rate == rate) return;
  steps.push_back({start, rate});
}

}  // namespace

CapacityTrace GilbertFadingTrace(const GilbertFadingConfig& config,
                                 TimeDelta duration) {
  if (config.step <= TimeDelta::Zero()) {
    throw std::invalid_argument("GilbertFadingTrace: step must be positive");
  }
  GilbertProcess chain(config.chain, Rng(config.seed));
  std::vector<CapacityTrace::Step> steps;
  PushStep(steps, Timestamp::Zero(), config.good_rate);
  for (Timestamp t = Timestamp::Zero() + config.step;
       t <= Timestamp::Zero() + duration; t += config.step) {
    const bool bad = chain.Step();
    PushStep(steps, t, bad ? config.bad_rate : config.good_rate);
  }
  return CapacityTrace(std::move(steps));
}

CapacityTrace DutyCycleTrace(DataRate nominal, DataRate degraded,
                             TimeDelta period, double duty,
                             TimeDelta duration) {
  if (period <= TimeDelta::Zero()) {
    throw std::invalid_argument("DutyCycleTrace: period must be positive");
  }
  if (!(duty >= 0.0 && duty <= 1.0)) {
    throw std::invalid_argument("DutyCycleTrace: duty must be in [0,1]");
  }
  const TimeDelta on = TimeDelta::SecondsF(period.seconds() * duty);
  std::vector<CapacityTrace::Step> steps;
  if (on <= TimeDelta::Zero()) {
    PushStep(steps, Timestamp::Zero(), nominal);
    return CapacityTrace(std::move(steps));
  }
  for (Timestamp t = Timestamp::Zero(); t <= Timestamp::Zero() + duration;
       t += period) {
    PushStep(steps, t, degraded);
    if (on < period) PushStep(steps, t + on, nominal);
  }
  return CapacityTrace(std::move(steps));
}

std::vector<CapacityTrace::Step> FpvModulationSchedule(
    const FpvRadioConfig& config, TimeDelta duration) {
  if (config.ladder.empty()) {
    throw std::invalid_argument("FpvModulationSchedule: empty ladder");
  }
  if (config.decision_interval <= TimeDelta::Zero()) {
    throw std::invalid_argument(
        "FpvModulationSchedule: decision_interval must be positive");
  }
  Ar1Process snr(config.snr, Rng(config.seed));
  const auto rung = [&](double value) {
    const auto max_index = static_cast<double>(config.ladder.size() - 1);
    const double clamped = std::clamp(std::floor(value), 0.0, max_index);
    return config.ladder[static_cast<size_t>(clamped)];
  };
  std::vector<CapacityTrace::Step> steps;
  PushStep(steps, Timestamp::Zero(), rung(snr.value()));
  for (Timestamp t = Timestamp::Zero() + config.decision_interval;
       t <= Timestamp::Zero() + duration; t += config.decision_interval) {
    PushStep(steps, t, rung(snr.Step()));
  }
  return steps;
}

CapacityTrace FpvRadioTrace(const FpvRadioConfig& config, TimeDelta duration) {
  return CapacityTrace(FpvModulationSchedule(config, duration));
}

}  // namespace rave::net
