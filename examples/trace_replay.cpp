// Replays a capacity trace file through any scheme and writes per-frame
// records plus the control-plane timeseries to CSV for external plotting.
//
//   ./examples/trace_replay <trace-file> [scheme] [content] [seconds] [out-prefix]
//
// Trace file format: "<time_s> <rate_kbps>" per line ('#' comments). If no
// file is given, a built-in LTE-like random walk is used.
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/capacity_trace.h"
#include "rtc/session.h"
#include "util/csv.h"

using namespace rave;

namespace {

rtc::Scheme ParseScheme(const std::string& name) {
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    if (ToString(scheme) == name) return scheme;
  }
  throw std::runtime_error("unknown scheme: " + name +
                           " (try x264-abr, x264-cbr, rave-adaptive, "
                           "rave-oracle)");
}

video::ContentClass ParseContent(const std::string& name) {
  for (video::ContentClass c : video::kAllContentClasses) {
    if (ToString(c) == name) return c;
  }
  throw std::runtime_error("unknown content class: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    rtc::SessionConfig config;
    config.duration = TimeDelta::Seconds(60);
    std::string prefix = "trace_replay";

    if (argc > 1 && std::string(argv[1]) != "-") {
      config.link.trace = net::CapacityTrace::FromFile(argv[1]);
    } else {
      config.link.trace = net::CapacityTrace::RandomWalk(
          DataRate::KilobitsPerSec(1800), 0.18, TimeDelta::Millis(500),
          TimeDelta::Seconds(120), /*seed=*/5,
          DataRate::KilobitsPerSec(400), DataRate::KilobitsPerSec(4000));
      std::cout << "(no trace file given; using built-in LTE-like random "
                   "walk)\n";
    }
    if (argc > 2) config.scheme = ParseScheme(argv[2]);
    if (argc > 3) config.source.content = ParseContent(argv[3]);
    if (argc > 4) config.duration = TimeDelta::Seconds(std::atol(argv[4]));
    if (argc > 5) prefix = argv[5];

    const rtc::SessionResult result = rtc::RunSession(config);

    const std::string frames_csv = prefix + "_frames.csv";
    CsvWriter frames(frames_csv,
                     {"frame_id", "capture_s", "fate", "type", "qp",
                      "size_bits", "ssim", "latency_ms"});
    for (const metrics::FrameRecord& f : result.frames) {
      frames.WriteRow(std::vector<std::string>{
          std::to_string(f.frame_id),
          std::to_string(f.capture_time.seconds()),
          std::to_string(static_cast<int>(f.fate)),
          f.type == codec::FrameType::kKey ? "K" : "P",
          std::to_string(f.qp), std::to_string(f.size.bits()),
          std::to_string(f.ssim),
          f.latency() ? std::to_string(f.latency()->ms_float()) : "",
      });
    }

    const std::string ts_csv = prefix + "_timeseries.csv";
    CsvWriter ts(ts_csv, {"t_s", "capacity_kbps", "bwe_kbps", "acked_kbps",
                          "pacer_queue_ms", "link_queue_ms", "loss", "qp",
                          "latency_ms"});
    for (const metrics::TimeseriesPoint& p : result.timeseries) {
      ts.WriteRow(std::vector<double>{
          p.at.seconds(), p.capacity_kbps, p.bwe_target_kbps, p.acked_kbps,
          p.pacer_queue_ms, p.link_queue_ms, p.loss_rate, p.last_qp,
          p.last_latency_ms});
    }

    const metrics::SessionSummary& s = result.summary;
    std::cout << "scheme: " << result.scheme_name << "\n"
              << "frames: " << s.frames_captured << " captured, "
              << s.frames_delivered << " delivered, " << s.frames_skipped
              << " skipped, " << s.frames_lost_network << " lost\n"
              << "latency: mean " << s.latency_mean_ms << " ms, p95 "
              << s.latency_p95_ms << " ms, p99 " << s.latency_p99_ms
              << " ms\n"
              << "quality: encoded ssim " << s.encoded_ssim_mean
              << ", displayed ssim " << s.displayed_ssim_mean << ", psnr "
              << s.psnr_mean_db << " dB\n"
              << "bitrate: " << s.encoded_bitrate_kbps << " kbps\n"
              << "wrote " << frames_csv << " and " << ts_csv << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
