// Replays a capacity trace file through one scheme — or all of them in
// parallel — and writes per-frame records plus the control-plane timeseries
// to CSV for external plotting.
//
//   ./examples/trace_replay <trace-file> [scheme|all] [content] [seconds]
//                           [out-prefix] [--jobs=N]
//
// Trace file format: "<time_s> <rate_kbps>" per line ('#' comments). Pass
// "-" (or nothing) for a built-in LTE-like random walk. With scheme "all"
// every scheme runs as one parallel matrix (--jobs workers, default
// hardware concurrency) and each writes <prefix>_<scheme>_*.csv; results
// are bit-identical to running the schemes one at a time.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "net/capacity_trace.h"
#include "runner/parallel_runner.h"
#include "rtc/session.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace rave;

namespace {

rtc::Scheme ParseScheme(const std::string& name) {
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    if (ToString(scheme) == name) return scheme;
  }
  throw std::runtime_error("unknown scheme: " + name +
                           " (try x264-abr, x264-cbr, rave-adaptive, "
                           "rave-oracle, salsify, or all)");
}

video::ContentClass ParseContent(const std::string& name) {
  for (video::ContentClass c : video::kAllContentClasses) {
    if (ToString(c) == name) return c;
  }
  throw std::runtime_error("unknown content class: " + name);
}

void WriteCsvs(const rtc::SessionResult& result, const std::string& prefix) {
  const std::string frames_csv = prefix + "_frames.csv";
  CsvWriter frames(frames_csv,
                   {"frame_id", "capture_s", "fate", "type", "qp",
                    "size_bits", "ssim", "latency_ms"});
  for (const metrics::FrameRecord& f : result.frames) {
    frames.WriteRow(std::vector<std::string>{
        std::to_string(f.frame_id),
        std::to_string(f.capture_time.seconds()),
        std::to_string(static_cast<int>(f.fate)),
        f.type == codec::FrameType::kKey ? "K" : "P",
        std::to_string(f.qp), std::to_string(f.size.bits()),
        std::to_string(f.ssim),
        f.latency() ? std::to_string(f.latency()->ms_float()) : "",
    });
  }

  const std::string ts_csv = prefix + "_timeseries.csv";
  CsvWriter ts(ts_csv, {"t_s", "capacity_kbps", "bwe_kbps", "acked_kbps",
                        "pacer_queue_ms", "link_queue_ms", "loss", "qp",
                        "latency_ms"});
  for (const metrics::TimeseriesPoint& p : result.timeseries) {
    ts.WriteRow(std::vector<double>{
        p.at.seconds(), p.capacity_kbps, p.bwe_target_kbps, p.acked_kbps,
        p.pacer_queue_ms, p.link_queue_ms, p.loss_rate, p.last_qp,
        p.last_latency_ms});
  }

  const metrics::SessionSummary& s = result.summary;
  std::cout << "scheme: " << result.scheme_name << "\n"
            << "frames: " << s.frames_captured << " captured, "
            << s.frames_delivered << " delivered, " << s.frames_skipped
            << " skipped, " << s.frames_lost_network << " lost\n"
            << "latency: mean " << s.latency_mean_ms << " ms, p95 "
            << s.latency_p95_ms << " ms, p99 " << s.latency_p99_ms
            << " ms\n"
            << "quality: encoded ssim " << s.encoded_ssim_mean
            << ", displayed ssim " << s.displayed_ssim_mean << ", psnr "
            << s.psnr_mean_db << " dB\n"
            << "bitrate: " << s.encoded_bitrate_kbps << " kbps\n"
            << "wrote " << frames_csv << " and " << ts_csv << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc - 1, argv + 1);
    for (const std::string& key : flags.UnknownKeys({"jobs"})) {
      std::cerr << "error: unknown flag --" << key
                << "\nusage: trace_replay <trace-file|-> [scheme|all] "
                   "[content] [seconds] [prefix] [--jobs=N]\n";
      return 2;
    }
    const auto& args = flags.positional();

    rtc::SessionConfig base;
    base.duration = TimeDelta::Seconds(60);
    std::string prefix = "trace_replay";

    if (!args.empty() && args[0] != "-") {
      base.link.trace = net::CapacityTrace::FromFile(args[0]);
    } else {
      base.link.trace = net::CapacityTrace::RandomWalk(
          DataRate::KilobitsPerSec(1800), 0.18, TimeDelta::Millis(500),
          TimeDelta::Seconds(120), /*seed=*/5,
          DataRate::KilobitsPerSec(400), DataRate::KilobitsPerSec(4000));
      std::cout << "(no trace file given; using built-in LTE-like random "
                   "walk)\n";
    }
    const std::string scheme_arg = args.size() > 1 ? args[1] : "";
    if (args.size() > 2) base.source.content = ParseContent(args[2]);
    if (args.size() > 3) {
      base.duration = TimeDelta::Seconds(std::atol(args[3].c_str()));
    }
    if (args.size() > 4) prefix = args[4];

    // Build the config matrix up front: one config per requested scheme.
    std::vector<rtc::SessionConfig> configs;
    if (scheme_arg == "all") {
      for (rtc::Scheme scheme : rtc::kAllSchemes) {
        rtc::SessionConfig config = base;
        config.scheme = scheme;
        configs.push_back(std::move(config));
      }
    } else {
      if (!scheme_arg.empty()) base.scheme = ParseScheme(scheme_arg);
      configs.push_back(base);
    }

    const int jobs = static_cast<int>(flags.GetInt("jobs", 0));
    const auto results = runner::RunSessions(configs, jobs);

    for (size_t i = 0; i < results.size(); ++i) {
      if (i > 0) std::cout << '\n';
      const std::string out_prefix =
          configs.size() > 1 ? prefix + "_" + results[i].scheme_name : prefix;
      WriteCsvs(results[i], out_prefix);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
