// Explores the codec substrate directly — no network involved. Useful to
// understand the R-D model the whole system is built on:
//   1. a QP sweep (size and quality per frame type),
//   2. rate-control convergence after a target reconfig (the baseline's
//      sluggishness, measured in isolation),
//   3. VBV buffer dynamics at a keyframe.
//
//   ./examples/codec_explorer
#include <iostream>
#include <memory>

#include "codec/abr_rate_control.h"
#include "codec/encoder.h"
#include "util/table.h"
#include "video/video_source.h"

using namespace rave;

int main() {
  // --- 1. QP sweep on the raw R-D surface ---
  codec::RdModel rd({}, Rng(1));
  video::RawFrame frame;
  frame.spatial_complexity = 1.0;
  frame.temporal_complexity = 0.5;

  std::cout << "R-D surface at 720p (spatial complexity 1.0, temporal 0.5)\n\n";
  Table sweep({"qp", "qscale", "I-bits", "P-bits", "ssim", "psnr(dB)"});
  for (double qp = 16; qp <= 48; qp += 4) {
    const double qscale = codec::QpToQscale(qp);
    sweep.AddRow()
        .Cell(qp, 0)
        .Cell(qscale, 2)
        .Cell(rd.ExpectedBits(codec::FrameType::kKey, frame, qscale).bits())
        .Cell(rd.ExpectedBits(codec::FrameType::kDelta, frame, qscale).bits())
        .Cell(rd.Ssim(frame, qscale), 4)
        .Cell(rd.Psnr(frame, qp), 1);
  }
  sweep.Print(std::cout);

  // --- 2. ABR convergence after a target drop, isolated from the network ---
  std::cout << "\nx264-abr output bitrate after a 2000 -> 800 kbps reconfig "
               "at t=5s\n(the sluggishness the paper attacks)\n\n";
  codec::AbrConfig abr_config;
  abr_config.fps = 30.0;
  abr_config.initial_target = DataRate::KilobitsPerSec(2000);
  codec::EncoderConfig enc_config;
  enc_config.fps = 30.0;
  codec::Encoder encoder(
      enc_config, std::make_unique<codec::AbrRateControl>(abr_config));
  video::VideoSource source({.content = video::ContentClass::kTalkingHead});

  Table convergence({"t(s)", "target(kbps)", "output(kbps)", "mean-qp"});
  int64_t window_bits = 0;
  double window_qp = 0;
  int window_n = 0;
  for (int i = 0; i < 300; ++i) {
    const Timestamp now = Timestamp::Millis(i * 33);
    if (i == 150) encoder.SetTargetRate(DataRate::KilobitsPerSec(800));
    const codec::EncodedFrame f =
        encoder.EncodeFrame(source.CaptureFrame(now), now);
    window_bits += f.size.bits();
    window_qp += f.qp;
    ++window_n;
    if (window_n == 15) {  // 0.5 s windows
      convergence.AddRow()
          .Cell(now.seconds(), 1)
          .Cell(encoder.rate_control().current_target().kbps(), 0)
          .Cell(static_cast<double>(window_bits) / 0.5 / 1e3, 0)
          .Cell(window_qp / window_n, 1);
      window_bits = 0;
      window_qp = 0;
      window_n = 0;
    }
  }
  convergence.Print(std::cout);

  // --- 3. VBV dynamics around a keyframe ---
  std::cout << "\nVBV buffer (1 Mbps, 1 s window) absorbing a keyframe\n\n";
  codec::VbvBuffer vbv(DataRate::KilobitsPerSec(1000), TimeDelta::Seconds(1));
  Table vbv_table({"event", "fill(kb)", "fullness(%)", "max-frame(kb)"});
  auto report = [&](const std::string& event) {
    vbv_table.AddRow()
        .Cell(event)
        .Cell(static_cast<double>(vbv.fill().bits()) / 1e3, 1)
        .Cell(vbv.fullness() * 100.0, 1)
        .Cell(static_cast<double>(vbv.MaxFrameSize(0.1).bits()) / 1e3, 1);
  };
  report("start");
  vbv.AddFrame(DataSize::Bits(250'000));
  report("keyframe (250 kb)");
  for (int i = 1; i <= 5; ++i) {
    vbv.Drain(TimeDelta::Millis(33));
    vbv.AddFrame(DataSize::Bits(20'000));
  }
  report("5 P-frames later");
  vbv.Drain(TimeDelta::Millis(500));
  report("after 500 ms drain");
  vbv_table.Print(std::cout);
  return 0;
}
