// Unified command-line front end for the library: run any scheme over any
// scenario without writing code.
//
//   rave_cli run      --scheme=rave-adaptive --severity=0.6 --seconds=40
//   rave_cli run      --trace=traces/lte_walk.txt --content=gaming --fec
//   rave_cli compare  --severity=0.5 --content=sports [--seeds=5]
//   rave_cli sweep    --scheme=rave-adaptive               (severity sweep)
//
// Common flags: --content, --seconds, --seed, --rtt-ms, --queue-kb,
// --loss, --cross-kbps, --initial-kbps, --fec, --no-rtx, --degradation,
// --csv=<prefix>, --fault=<spec>, --wireless=<profile>,
// --log-level=<level>, --trace-out=<path>[:sample_hz].
//
// --version prints the build identity (simulator fingerprint, result-cache
// blob version, compiled option set) and exits.
//
// --wireless runs the session over a named wireless/mobility profile
// (wifi-fade, lte-handover, fpv-radio, duty-cycle, train-commute): the
// profile supplies the capacity trace, the loss model, and any handover /
// renegotiation events, overriding --trace/--severity/--loss. Extra
// --fault events are layered on top.
//
// --trace-out captures the session's control-plane timeline (encoder QP,
// VBV fill, BWE, queue depths, breaker state, fault injections) as Chrome
// trace_event JSON — open it in Perfetto (ui.perfetto.dev) or
// chrome://tracing. The optional :sample_hz suffix rate-limits counter
// tracks, e.g. --trace-out=run.json:200. `run` traces the one session;
// `compare`/`sweep` trace every session into one file in run order.
//
// --fault injects timed network faults, e.g.
//   --fault=outage@10+2                    2 s link blackout at t=10 s
//   --fault=blackhole@10+3                 feedback blackhole
//   --fault=spike@10+2:150                 +150 ms per direction RTT spike
//   --fault=dup@10+5:0.2,reorder@10+5:0.2:40   duplication + reordering
//   --fault=handover@15+0.2:900:60:0.01    move to a 900 kbps / 60 ms cell
//   --fault=reneg@20+4:1200                renegotiate to 1200 kbps for 4 s
#include <cstdio>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "fault/fault_plan.h"
#include "fault/wireless_profiles.h"
#include "net/capacity_trace.h"
#include "obs/trace.h"
#include "rtc/session.h"
#include "runner/version.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table.h"

using namespace rave;

namespace {

const std::vector<std::string> kKnownFlags = {
    "scheme",  "severity", "trace",        "content", "seconds",
    "seed",    "rtt-ms",   "queue-kb",     "loss",    "cross-kbps",
    "fec",     "no-rtx",   "degradation",  "csv",     "initial-kbps",
    "seeds",   "fault",    "trace-out",    "log-level", "wireless",
    "version"};

/// Builds the recorder requested by --trace-out (nullptr when absent).
/// Sessions run inside a TraceScope pointing at it; WriteTrace() flushes
/// the capture to disk once all sessions finished.
std::unique_ptr<obs::TraceRecorder> MakeTraceRecorder(const Flags& flags,
                                                      std::string* path) {
  if (!flags.Has("trace-out")) return nullptr;
  obs::TraceRecorder::Options options;
  if (!obs::ParseTraceSpec(flags.GetString("trace-out", ""), path, &options)) {
    throw std::invalid_argument("bad --trace-out spec (want PATH[:HZ]): " +
                                flags.GetString("trace-out", ""));
  }
  return std::make_unique<obs::TraceRecorder>(options);
}

int WriteTrace(const obs::TraceRecorder& recorder, const std::string& path) {
  if (!recorder.WriteJsonFile(path)) {
    std::cerr << "error: cannot write trace file " << path << '\n';
    return 1;
  }
  std::printf("wrote %s (%zu events; open in ui.perfetto.dev)\n", path.c_str(),
              recorder.events().size());
  return 0;
}

rtc::Scheme ParseScheme(const std::string& name) {
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    if (ToString(scheme) == name) return scheme;
  }
  throw std::invalid_argument("unknown --scheme=" + name);
}

video::ContentClass ParseContent(const std::string& name) {
  for (video::ContentClass c : video::kAllContentClasses) {
    if (ToString(c) == name) return c;
  }
  throw std::invalid_argument("unknown --content=" + name);
}

rtc::SessionConfig ConfigFrom(const Flags& flags) {
  rtc::SessionConfig config;
  config.scheme = ParseScheme(flags.GetString("scheme", "rave-adaptive"));
  config.source.content =
      ParseContent(flags.GetString("content", "talking-head"));
  config.duration = TimeDelta::Seconds(flags.GetInt("seconds", 40));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.initial_rate =
      DataRate::KilobitsPerSec(flags.GetInt("initial-kbps", 2100));

  if (flags.Has("trace")) {
    config.link.trace =
        net::CapacityTrace::FromFile(flags.GetString("trace", ""));
  } else {
    const double severity = flags.GetDouble("severity", 0.5);
    config.link.trace = net::CapacityTrace::StepDrop(
        DataRate::KilobitsPerSec(2500),
        DataRate::KilobitsPerSecF(2500.0 * (1.0 - severity)),
        Timestamp::Seconds(10));
  }

  const int64_t rtt_ms = flags.GetInt("rtt-ms", 50);
  config.link.propagation = TimeDelta::Millis(rtt_ms / 2);
  config.feedback_delay = TimeDelta::Millis(rtt_ms / 2);
  config.link.queue_capacity =
      DataSize::Bytes(flags.GetInt("queue-kb", 80) * 1000);
  config.link.loss.random_loss = flags.GetDouble("loss", 0.0);
  config.enable_fec = flags.GetBool("fec", false);
  config.enable_rtx = !flags.GetBool("no-rtx", false);
  config.enable_degradation = flags.GetBool("degradation", false);

  if (flags.Has("cross-kbps")) {
    net::CrossTraffic::Config cross;
    cross.rate = DataRate::KilobitsPerSec(flags.GetInt("cross-kbps", 800));
    config.cross_traffic = cross;
  }
  if (flags.Has("fault")) {
    config.faults = fault::ParseFaultSpec(flags.GetString("fault", ""));
  }
  if (flags.Has("wireless")) {
    const fault::WirelessProfile profile = fault::MakeWirelessProfile(
        flags.GetString("wireless", ""), config.duration);
    config.link.trace = profile.trace;
    config.link.loss = profile.loss;
    config.wireless_profile = profile.name;
    // Profile events first, then any extra --fault events on top; the
    // rebuilt plan re-validates the union (overlaps still rejected).
    std::vector<fault::FaultEvent> events = profile.faults.events();
    for (const fault::FaultEvent& e : config.faults->events()) {
      events.push_back(e);
    }
    config.faults = fault::FaultPlan(std::move(events));
  }
  return config;
}

void PrintSummary(const rtc::SessionResult& result) {
  const metrics::SessionSummary& s = result.summary;
  std::printf("scheme          %s\n", result.scheme_name.c_str());
  std::printf("frames          %lld captured / %lld delivered / %lld skipped "
              "/ %lld lost\n",
              static_cast<long long>(s.frames_captured),
              static_cast<long long>(s.frames_delivered),
              static_cast<long long>(s.frames_skipped),
              static_cast<long long>(s.frames_lost_network));
  std::printf("net latency     mean %.1f ms | p50 %.1f | p95 %.1f | p99 %.1f\n",
              s.latency_mean_ms, s.latency_p50_ms, s.latency_p95_ms,
              s.latency_p99_ms);
  std::printf("render latency  mean %.1f ms | p95 %.1f | late %.2f%%\n",
              s.render_latency_mean_ms, s.render_latency_p95_ms,
              s.late_render_ratio * 100.0);
  std::printf("quality         encoded ssim %.4f | displayed %.4f | "
              "psnr %.2f dB | mean qp %.1f\n",
              s.encoded_ssim_mean, s.displayed_ssim_mean, s.psnr_mean_db,
              s.qp_mean);
  std::printf("bitrate         %.0f kbps (reencodes: %lld)\n",
              s.encoded_bitrate_kbps,
              static_cast<long long>(s.total_reencodes));
}

void MaybeWriteCsv(const Flags& flags, const rtc::SessionResult& result) {
  if (!flags.Has("csv")) return;
  const std::string prefix = flags.GetString("csv", "rave");
  CsvWriter ts(prefix + "_timeseries.csv",
               {"t_s", "capacity_kbps", "bwe_kbps", "pacer_queue_ms",
                "link_queue_ms", "qp", "latency_ms"});
  for (const auto& p : result.timeseries) {
    ts.WriteRow(std::vector<double>{p.at.seconds(), p.capacity_kbps,
                                    p.bwe_target_kbps, p.pacer_queue_ms,
                                    p.link_queue_ms, p.last_qp,
                                    p.last_latency_ms});
  }
  std::printf("wrote %s_timeseries.csv\n", prefix.c_str());
}

int Run(const Flags& flags) {
  const rtc::SessionResult result = rtc::RunSession(ConfigFrom(flags));
  PrintSummary(result);
  MaybeWriteCsv(flags, result);
  return 0;
}

int Compare(const Flags& flags) {
  Table table({"scheme", "lat-mean(ms)", "lat-p95(ms)", "render-mean(ms)",
               "enc-ssim", "disp-ssim", "lost"});
  const int seeds = static_cast<int>(flags.GetInt("seeds", 3));
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    double mean = 0, p95 = 0, render = 0, enc = 0, disp = 0, lost = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      rtc::SessionConfig config = ConfigFrom(flags);
      config.scheme = scheme;
      config.seed = static_cast<uint64_t>(seed);
      const rtc::SessionResult result = rtc::RunSession(config);
      mean += result.summary.latency_mean_ms / seeds;
      p95 += result.summary.latency_p95_ms / seeds;
      render += result.summary.render_latency_mean_ms / seeds;
      enc += result.summary.encoded_ssim_mean / seeds;
      disp += result.summary.displayed_ssim_mean / seeds;
      lost += static_cast<double>(result.summary.frames_lost_network) / seeds;
    }
    table.AddRow()
        .Cell(ToString(scheme))
        .Cell(mean, 1)
        .Cell(p95, 1)
        .Cell(render, 1)
        .Cell(enc, 4)
        .Cell(disp, 4)
        .Cell(lost, 1);
  }
  table.Print(std::cout);
  return 0;
}

int Sweep(const Flags& flags) {
  Table table({"severity", "lat-mean(ms)", "lat-p95(ms)", "enc-ssim",
               "skipped", "lost"});
  for (double severity : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    rtc::SessionConfig config = ConfigFrom(flags);
    config.link.trace = net::CapacityTrace::StepDrop(
        DataRate::KilobitsPerSec(2500),
        DataRate::KilobitsPerSecF(2500.0 * (1.0 - severity)),
        Timestamp::Seconds(10));
    const rtc::SessionResult result = rtc::RunSession(config);
    table.AddRow()
        .Cell(severity, 1)
        .Cell(result.summary.latency_mean_ms, 1)
        .Cell(result.summary.latency_p95_ms, 1)
        .Cell(result.summary.encoded_ssim_mean, 4)
        .Cell(result.summary.frames_skipped)
        .Cell(result.summary.frames_lost_network);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc - 1, argv + 1);
    for (const std::string& key : flags.UnknownKeys(kKnownFlags)) {
      std::cerr << "error: unknown flag --" << key << '\n';
      return 2;
    }
    if (flags.GetBool("version", false)) {
      std::cout << runner::VersionString();
      return 0;
    }
    const std::string log_level = flags.GetString("log-level", "");
    if (!log_level.empty() && !SetLogLevelFromString(log_level)) {
      std::cerr << "error: bad --log-level '" << log_level
                << "' (want debug|info|warning|error)\n";
      return 2;
    }
    std::string trace_path;
    const std::unique_ptr<obs::TraceRecorder> recorder =
        MakeTraceRecorder(flags, &trace_path);
    const obs::TraceScope trace_scope(recorder.get());

    const std::string command =
        flags.positional().empty() ? "run" : flags.positional()[0];
    int exit_code;
    if (command == "run") {
      exit_code = Run(flags);
    } else if (command == "compare") {
      exit_code = Compare(flags);
    } else if (command == "sweep") {
      exit_code = Sweep(flags);
    } else {
      std::cerr << "usage: rave_cli [run|compare|sweep] [--flags]\n"
                   "see the header of examples/rave_cli.cpp for the flag "
                   "list\n";
      return 2;
    }
    if (exit_code == 0 && recorder != nullptr) {
      exit_code = WriteTrace(*recorder, trace_path);
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
