// Quickstart: run the baseline (x264 ABR) and the adaptive encoder over the
// same bandwidth drop and compare latency and quality.
//
//   ./examples/quickstart
//
// This is the 30-second tour of the library: configure a session, run it,
// read the summary.
#include <iostream>

#include "net/capacity_trace.h"
#include "rtc/session.h"
#include "util/table.h"

using namespace rave;

int main() {
  // A 2.5 Mbps link that drops to 1.0 Mbps at t=10s — the paper's core
  // scenario: the encoder must follow the drop or latency explodes.
  const auto trace = net::CapacityTrace::StepDrop(
      DataRate::KilobitsPerSec(2500), DataRate::KilobitsPerSec(1000),
      Timestamp::Seconds(10));

  Table table({"scheme", "lat-mean(ms)", "lat-p95(ms)", "lat-p99(ms)",
               "ssim", "bitrate(kbps)", "delivered", "skipped"});

  for (rtc::Scheme scheme : rtc::kHeadlineSchemes) {
    rtc::SessionConfig config;
    config.scheme = scheme;
    config.duration = TimeDelta::Seconds(40);
    config.link.trace = trace;
    config.source.content = video::ContentClass::kTalkingHead;

    const rtc::SessionResult result = rtc::RunSession(config);
    const metrics::SessionSummary& s = result.summary;
    table.AddRow()
        .Cell(result.scheme_name)
        .Cell(s.latency_mean_ms, 1)
        .Cell(s.latency_p95_ms, 1)
        .Cell(s.latency_p99_ms, 1)
        .Cell(s.ssim_mean, 4)
        .Cell(s.encoded_bitrate_kbps, 0)
        .Cell(s.frames_delivered)
        .Cell(s.frames_skipped);
  }

  std::cout << "Bandwidth drop 2.5 -> 1.0 Mbps at t=10s, 40s session, "
               "talking-head 720p30\n\n";
  table.Print(std::cout);
  std::cout << "\nThe adaptive encoder follows the drop within frames "
               "instead of seconds,\nkeeping capture-to-display latency low "
               "without sacrificing quality.\n";
  return 0;
}
