// Side-by-side demo of all four schemes across one bandwidth drop, with an
// ASCII latency timeline. Run it to *see* the paper's effect: the baselines
// balloon for seconds after the drop, the adaptive encoder barely blips.
//
//   ./examples/bandwidth_drop_demo [severity]   (default 0.6)
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "net/capacity_trace.h"
#include "rtc/session.h"
#include "util/table.h"

using namespace rave;

namespace {

// One char per 500 ms: latency rendered on a log-ish scale.
char LatencyGlyph(double ms) {
  if (ms <= 0) return '.';
  if (ms < 80) return '_';
  if (ms < 160) return '-';
  if (ms < 320) return '=';
  if (ms < 640) return '*';
  if (ms < 1280) return '#';
  return '!';
}

}  // namespace

int main(int argc, char** argv) {
  const double severity = argc > 1 ? std::atof(argv[1]) : 0.6;
  const auto base = DataRate::KilobitsPerSec(2500);
  const auto low = DataRate::KilobitsPerSecF(2500.0 * (1.0 - severity));
  const auto trace =
      net::CapacityTrace::StepDrop(base, low, Timestamp::Seconds(10));

  std::cout << "Bandwidth drop demo: " << base.ToString() << " -> "
            << low.ToString() << " at t=10s (severity " << severity
            << ")\n\nlatency per 500 ms:  _ <80ms  - <160ms  = <320ms  "
               "* <640ms  # <1.28s  ! >=1.28s\n\n";

  Table summary({"scheme", "lat-mean(ms)", "lat-p95(ms)", "enc-ssim",
                 "disp-ssim", "lost", "skipped"});

  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    rtc::SessionConfig config;
    config.scheme = scheme;
    config.duration = TimeDelta::Seconds(30);
    config.initial_rate = DataRate::KilobitsPerSec(2100);
    config.link.trace = trace;
    const rtc::SessionResult result = rtc::RunSession(config);

    std::string line;
    for (const metrics::TimeseriesPoint& p : result.timeseries) {
      if (p.at.us() % 500'000 != 0) continue;
      line += LatencyGlyph(p.last_latency_ms);
    }
    std::cout << line << "  " << result.scheme_name << '\n';

    const metrics::SessionSummary& s = result.summary;
    summary.AddRow()
        .Cell(result.scheme_name)
        .Cell(s.latency_mean_ms, 1)
        .Cell(s.latency_p95_ms, 1)
        .Cell(s.encoded_ssim_mean, 4)
        .Cell(s.displayed_ssim_mean, 4)
        .Cell(s.frames_lost_network)
        .Cell(s.frames_skipped);
  }

  std::cout << "^ t=0" << std::string(15, ' ') << "^ t=10s (drop)"
            << std::string(21, ' ') << "t=30s ^\n\n";
  summary.Print(std::cout);
  return 0;
}
