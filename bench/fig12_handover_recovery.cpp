// Figure 12: handover / renegotiation recovery across the wireless tier.
//
// Every scheme runs every named wireless profile. For each handover or
// renegotiation event the harness measures how long the encoder target
// takes to MATCH the renegotiated link — land inside [0.8, 1.2] x the
// event's rate — with the next event (or session end) as the deadline.
// Matching is the two-sided test: after a downshift the encoder must shed
// its overshoot, after an upshift it must ramp into the new headroom; a
// scheme that ignores the radio fails both. Also reported: delivered
// quality after the first event, the overall p95 frame latency, and
// circuit-breaker engagement (a clean handover gap is shorter than the
// breaker's starvation threshold, so `opens` should stay 0 unless a
// profile genuinely starves the session).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "registry.h"
#include "fault/fault_plan.h"
#include "fault/wireless_profiles.h"
#include "obs/sketch.h"
#include "util/table.h"

using namespace rave;

namespace {

bool IsLinkChange(const fault::FaultEvent& e) {
  return e.kind == fault::FaultKind::kHandover ||
         e.kind == fault::FaultKind::kRenegotiate;
}

}  // namespace

int bench::Fig12HandoverRecoveryMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const auto wireless = bench::WirelessSuite(duration, options.wireless);

  std::vector<rtc::SessionConfig> configs;
  configs.reserve(std::size(rtc::kAllSchemes) * wireless.size());
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    for (const fault::WirelessProfile& profile : wireless) {
      rtc::SessionConfig config = bench::DefaultConfig(
          scheme, net::CapacityTrace::Constant(
                      DataRate::KilobitsPerSec(bench::kBaseRateKbps)),
          video::ContentClass::kTalkingHead, duration, 23);
      bench::ApplyWirelessProfile(config, profile);
      configs.push_back(std::move(config));
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  std::cout << "Fig 12: handover/renegotiation recovery across the wireless "
               "tier (session "
            << duration.seconds() << "s)\n\n";
  Table table({"scheme", "profile", "events", "matched", "match-mean(s)",
               "post-ssim", "p95(ms)", "opens", "pauses"});
  size_t index = 0;
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    (void)scheme;
    for (const fault::WirelessProfile& profile : wireless) {
      const rtc::SessionResult& result = results[index++];

      // Link-change events inside the session, in start order (plans are
      // built in order; handover/reneg kinds never interleave in the
      // registered profiles).
      std::vector<const fault::FaultEvent*> changes;
      for (const fault::FaultEvent& e : profile.faults.events()) {
        if (IsLinkChange(e) && e.start < Timestamp::Zero() + duration) {
          changes.push_back(&e);
        }
      }

      int measured = 0;
      int recovered = 0;
      double recover_sum_s = 0.0;
      for (size_t k = 0; k < changes.size(); ++k) {
        const fault::FaultEvent& e = *changes[k];
        // Handover: measure from the end of the radio-silence gap.
        // Renegotiation: the new rate applies at the window start.
        const Timestamp from = e.kind == fault::FaultKind::kHandover
                                   ? e.start + e.duration
                                   : e.start;
        const Timestamp deadline =
            std::min(k + 1 < changes.size() ? changes[k + 1]->start
                                            : Timestamp::PlusInfinity(),
                     Timestamp::Zero() + duration);
        if (from >= deadline) continue;

        const double lo = 0.8 * static_cast<double>(e.rate.kbps());
        const double hi = 1.2 * static_cast<double>(e.rate.kbps());
        ++measured;
        for (const auto& p : result.timeseries) {
          if (p.at < from) continue;
          if (p.at >= deadline) break;
          if (p.encoder_target_kbps >= lo && p.encoder_target_kbps <= hi) {
            ++recovered;
            recover_sum_s += (p.at - from).seconds();
            break;
          }
        }
      }

      // Delivered quality after the first link change (whole session for
      // pure fading profiles).
      const Timestamp quality_from =
          changes.empty() ? Timestamp::Zero() : changes.front()->start;
      double post_ssim = 0.0;
      int post_n = 0;
      for (const auto& f : result.frames) {
        if (f.capture_time < quality_from) continue;
        if (f.fate == metrics::FrameFate::kDelivered) {
          post_ssim += f.ssim;
          ++post_n;
        }
      }

      const obs::QuantileSketch* latency = bench::LatencySketch(result);
      const double p95 = latency != nullptr ? latency->Quantile(0.95) : 0.0;

      Table& row = table.AddRow();
      row.Cell(result.scheme_name)
          .Cell(profile.name)
          .Cell(static_cast<int64_t>(measured));
      if (measured > 0) {
        row.Cell(std::to_string(recovered) + "/" + std::to_string(measured));
      } else {
        row.Cell("n/a");
      }
      if (recovered > 0) {
        row.Cell(recover_sum_s / recovered, 2);
      } else {
        row.Cell(measured > 0 ? "never" : "n/a");
      }
      if (post_n > 0) {
        row.Cell(post_ssim / post_n, 4);
      } else {
        row.Cell("n/a");
      }
      row.Cell(p95, 1)
          .Cell(static_cast<int64_t>(result.breaker_stats.opens))
          .Cell(static_cast<int64_t>(result.breaker_stats.pauses));
    }
  }
  table.Print(std::cout);
  std::cout << "\nmatch-mean(s): mean time from a handover gap ending (or a "
               "renegotiation applying) until the encoder target lands in "
               "[0.8, 1.2] x the renegotiated rate, with the next event as "
               "deadline.\n";
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig12HandoverRecoveryMain(argc, argv);
}
#endif
