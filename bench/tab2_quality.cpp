// Table 2 (headline): video quality of the baseline vs the adaptive encoder
// over the same sweep as Table 1. The paper reports a slight quality
// *improvement* of 0.8%-3% alongside the latency win; this harness reports
// both the encoder-side SSIM (what an x264 run logs — the paper-comparable
// number) and the display-side SSIM (freeze/outage aware).
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Tab2QualityMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const uint64_t seeds[] = {1, 2, 3};

  std::vector<rtc::SessionConfig> configs;
  configs.reserve(4 * std::size(video::kAllContentClasses) * 3 * 2);
  for (double severity : {0.2, 0.3, 0.5, 0.7}) {
    const Interned<net::CapacityTrace> drop_trace = bench::DropTrace(severity);
    for (video::ContentClass content : video::kAllContentClasses) {
      for (uint64_t seed : seeds) {
        for (rtc::Scheme scheme :
             {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
          configs.push_back(bench::DefaultConfig(scheme, drop_trace, content,
                                                 duration, seed));
        }
      }
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  Table table({"severity", "content", "abr-ssim", "adp-ssim", "enc-gain(%)",
               "abr-disp", "adp-disp", "disp-gain(%)", "abr-psnr(dB)",
               "adp-psnr(dB)"});

  size_t next = 0;
  double min_gain = 1e9;
  double max_gain = -1e9;
  for (double severity : {0.2, 0.3, 0.5, 0.7}) {
    for (video::ContentClass content : video::kAllContentClasses) {
      double enc[2] = {0, 0};
      double disp[2] = {0, 0};
      double psnr[2] = {0, 0};
      for ([[maybe_unused]] uint64_t seed : seeds) {
        for (int i = 0; i < 2; ++i) {
          const rtc::SessionResult& result = results[next++];
          enc[i] += result.summary.encoded_ssim_mean / std::size(seeds);
          disp[i] += result.summary.displayed_ssim_mean / std::size(seeds);
          psnr[i] += result.summary.psnr_mean_db / std::size(seeds);
        }
      }
      const double gain = (enc[1] / enc[0] - 1.0) * 100.0;
      min_gain = std::min(min_gain, gain);
      max_gain = std::max(max_gain, gain);
      table.AddRow()
          .Cell(severity, 2)
          .Cell(ToString(content))
          .Cell(enc[0], 4)
          .Cell(enc[1], 4)
          .Cell(gain, 2)
          .Cell(disp[0], 4)
          .Cell(disp[1], 4)
          .Cell((disp[1] / disp[0] - 1.0) * 100.0, 2)
          .Cell(psnr[0], 2)
          .Cell(psnr[1], 2);
    }
  }

  std::cout << "Tab 2: quality, x264-abr baseline vs rave-adaptive "
               "(same sweep as Tab 1)\n\n";
  table.Print(std::cout);
  std::cout << "\nmeasured encoder-side SSIM gain band: [" << min_gain
            << "%, " << max_gain << "%]  (paper: +0.8% to +3%)\n";
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Tab2QualityMain(argc, argv);
}
#endif
