// Figure 1 (motivation): per-frame end-to-end latency and control-plane
// timeline across a single bandwidth drop, baseline vs adaptive.
//
// Prints one row per 250 ms: link capacity, GCC target, encoder operating
// target, pacer + link queue delays and the latest frame latency, for each
// scheme. The baseline's latency balloons for seconds after the drop while
// its encoder converges; the adaptive encoder tracks within frames.
#include <iostream>
#include <map>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Fig1TimelineMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const Interned<net::CapacityTrace> trace = bench::DropTrace(0.6);  // 2.5 -> 1.0 Mbps at t=10s
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(25));

  std::vector<rtc::SessionConfig> configs;
  configs.reserve(2);
  for (rtc::Scheme scheme :
       {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
    configs.push_back(bench::DefaultConfig(scheme, trace,
                                           video::ContentClass::kTalkingHead,
                                           duration, /*seed=*/42));
  }
  const auto run = bench::RunMatrix(configs, options.jobs);

  std::map<std::string, rtc::SessionResult> results;
  for (const rtc::SessionResult& result : run) {
    results.emplace(result.scheme_name, result);
  }

  std::cout << "Fig 1: timeline across a 2.5->1.0 Mbps drop at t=10s "
               "(talking-head 720p30)\n\n";
  for (const auto& [name, result] : results) {
    std::cout << "--- scheme: " << name << " ---\n";
    Table table({"t(s)", "capacity(kbps)", "bwe(kbps)", "enc-target(kbps)",
                 "pacerQ(ms)", "linkQ(ms)", "loss", "qp", "frame-lat(ms)"});
    for (const metrics::TimeseriesPoint& p : result.timeseries) {
      if (p.at.us() % 250'000 != 0) continue;  // decimate to 2 Hz
      table.AddRow()
          .Cell(p.at.seconds(), 2)
          .Cell(p.capacity_kbps, 0)
          .Cell(p.bwe_target_kbps, 0)
          .Cell(p.encoder_target_kbps, 0)
          .Cell(p.pacer_queue_ms, 1)
          .Cell(p.link_queue_ms, 1)
          .Cell(p.loss_rate, 3)
          .Cell(p.last_qp, 1)
          .Cell(p.last_latency_ms, 1);
    }
    table.Print(std::cout);
    const auto& s = result.summary;
    std::cout << "summary: mean=" << s.latency_mean_ms
              << "ms p95=" << s.latency_p95_ms << "ms ssim=" << s.ssim_mean
              << " bitrate=" << s.encoded_bitrate_kbps << "kbps\n\n";
  }
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig1TimelineMain(argc, argv);
}
#endif
