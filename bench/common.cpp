#include "common.h"

#include <cstdlib>
#include <iostream>
#include <memory>

#include "runner/parallel_runner.h"
#include "runner/result_cache.h"
#include "simd/dispatch.h"
#include "util/flags.h"
#include "util/logging.h"

namespace rave::bench {

namespace {

/// Process-wide cache pointer (see SuiteCache). Owned either by run_suite
/// (which calls SetSuiteCache with its own cache) or by `owned_cache` below
/// when a standalone bench enables caching via flag/environment.
runner::ResultCache* g_suite_cache = nullptr;
std::unique_ptr<runner::ResultCache> owned_cache;

/// Suite-wide metric aggregate (see SuiteMetrics). RunMatrix merges on the
/// calling thread only, so no locking is needed.
obs::RegistrySnapshot g_suite_metrics;

/// Per-bench aggregate (see BenchMetrics): run_suite resets it before each
/// entry point so history records carry per-bench quality metrics.
obs::RegistrySnapshot g_bench_metrics;

/// Process-wide lockstep batch size (see MatrixBatch).
int g_matrix_batch = 1;

}  // namespace

runner::ResultCache* SuiteCache() { return g_suite_cache; }

void SetSuiteCache(runner::ResultCache* cache) { g_suite_cache = cache; }

int MatrixBatch() { return g_matrix_batch; }

void SetMatrixBatch(int batch) { g_matrix_batch = batch > 1 ? batch : 1; }

TimeDelta BenchOptions::DurationOr(TimeDelta fallback) const {
  return duration_s > 0.0 ? TimeDelta::SecondsF(duration_s) : fallback;
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  try {
    const Flags flags(argc - 1, argv + 1);
    for (const std::string& key : flags.UnknownKeys(
             {"jobs", "duration", "cache-dir", "log-level", "batch", "simd",
              "wireless"})) {
      std::cerr << "error: unknown flag --" << key
                << "\nusage: " << argv[0]
                << " [--jobs=N] [--duration=SECONDS] [--cache-dir=DIR]"
                   " [--log-level=debug|info|warning|error]"
                   " [--batch=B] [--simd=scalar|avx2|auto]"
                   " [--wireless=PROFILE]\n";
      std::exit(2);
    }
    BenchOptions options;
    options.jobs = static_cast<int>(flags.GetInt("jobs", 0, 0, 1 << 16));
    options.duration_s = flags.GetDouble("duration", 0.0);
    options.cache_dir = flags.GetString("cache-dir", "");
    const std::string log_level = flags.GetString("log-level", "");
    if (!log_level.empty() && !SetLogLevelFromString(log_level)) {
      std::cerr << "error: bad --log-level '" << log_level
                << "' (want debug|info|warning|error)\n";
      std::exit(2);
    }
    options.batch = static_cast<int>(flags.GetInt("batch", 1, 1, 1 << 16));
    SetMatrixBatch(options.batch);
    options.wireless = flags.GetString("wireless", "");
    const std::string simd_level = flags.GetString("simd", "");
    if (!simd_level.empty()) {
      simd::Level level;
      if (!simd::ParseLevel(simd_level.c_str(), &level)) {
        std::cerr << "error: bad --simd '" << simd_level
                  << "' (want scalar|avx2|auto|off)\n";
        std::exit(2);
      }
      simd::SetLevel(level);
    }
    if (options.cache_dir.empty()) {
      if (auto env = runner::ResultCache::DirFromEnv()) {
        options.cache_dir = *env;
      }
    }
    // A suite-installed cache wins; otherwise a standalone bench that asked
    // for caching gets its own process-wide instance. No directory, no
    // cache — the default path is exactly the uncached behaviour.
    if (!options.cache_dir.empty() && SuiteCache() == nullptr) {
      runner::ResultCache::Options cache_options;
      cache_options.dir = options.cache_dir;
      cache_options.max_disk_bytes = runner::ResultCache::MaxDiskBytesFromEnv();
      owned_cache = std::make_unique<runner::ResultCache>(cache_options);
      SetSuiteCache(owned_cache.get());
    }
    return options;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    std::exit(2);
  }
}

std::vector<rtc::SessionResult> RunMatrix(
    const std::vector<rtc::SessionConfig>& configs, int jobs) {
  std::vector<rtc::SessionResult> results =
      runner::RunSessions(configs, jobs, SuiteCache(), MatrixBatch());
  // Results arrive in submission order whatever the job count, so the
  // suite-wide merge is deterministic too.
  for (const rtc::SessionResult& result : results) {
    g_suite_metrics.Merge(result.metrics);
    g_bench_metrics.Merge(result.metrics);
  }
  return results;
}

const obs::RegistrySnapshot& SuiteMetrics() { return g_suite_metrics; }

void ResetSuiteMetrics() { g_suite_metrics = obs::RegistrySnapshot{}; }

const obs::RegistrySnapshot& BenchMetrics() { return g_bench_metrics; }

void ResetBenchMetrics() { g_bench_metrics = obs::RegistrySnapshot{}; }

const obs::QuantileSketch* LatencySketch(const rtc::SessionResult& result) {
  const obs::MetricSnapshot* m = result.metrics.Find("frame.latency_ms");
  if (m == nullptr || m->kind != obs::MetricKind::kSketch) return nullptr;
  return &m->sketch;
}

std::vector<double> FrameLatenciesMs(const rtc::SessionResult& result) {
  std::vector<double> ms;
  ms.reserve(result.frames.size());
  for (const auto& f : result.frames) {
    if (auto l = f.latency()) ms.push_back(l->ms_float());
  }
  return ms;
}

rtc::SessionConfig DefaultConfig(rtc::Scheme scheme,
                                 Interned<net::CapacityTrace> trace,
                                 video::ContentClass content,
                                 TimeDelta duration, uint64_t seed) {
  rtc::SessionConfig config;
  config.scheme = scheme;
  config.duration = duration;
  config.seed = seed;
  config.source.content = content;
  config.link.trace = std::move(trace);
  // The paper's scenario is a saturated steady-state call hit by a drop, so
  // sessions start with the estimator warmed up near the link rate instead
  // of spending the pre-drop phase in GCC's slow ramp.
  config.initial_rate = DataRate::KilobitsPerSec(2100);
  return config;
}

net::CapacityTrace DropTrace(double severity) {
  const auto base = DataRate::KilobitsPerSec(kBaseRateKbps);
  const auto low = DataRate::KilobitsPerSecF(kBaseRateKbps * (1.0 - severity));
  return net::CapacityTrace::StepDrop(base, low, Timestamp::Seconds(10));
}

std::vector<std::pair<std::string, Interned<net::CapacityTrace>>> TraceSuite(
    TimeDelta duration) {
  const auto base = DataRate::KilobitsPerSec(kBaseRateKbps);
  std::vector<std::pair<std::string, Interned<net::CapacityTrace>>> suite;
  suite.reserve(12);

  for (double severity : {0.3, 0.5, 0.7}) {
    suite.emplace_back("drop" + std::to_string(static_cast<int>(severity * 100)),
                       DropTrace(severity));
    const auto low =
        DataRate::KilobitsPerSecF(kBaseRateKbps * (1.0 - severity));
    suite.emplace_back(
        "recover" + std::to_string(static_cast<int>(severity * 100)),
        net::CapacityTrace::StepDropAndRecover(base, low,
                                               Timestamp::Seconds(10),
                                               Timestamp::Seconds(25)));
  }

  // Staircase down: repeated partial drops.
  suite.emplace_back(
      "staircase",
      net::CapacityTrace::MultiStep({{Timestamp::Zero(), base},
                                     {Timestamp::Seconds(10),
                                      DataRate::KilobitsPerSec(1800)},
                                     {Timestamp::Seconds(20),
                                      DataRate::KilobitsPerSec(1200)},
                                     {Timestamp::Seconds(30),
                                      DataRate::KilobitsPerSec(700)}}));

  // LTE-like random walks.
  for (uint64_t seed : {11ULL, 23ULL}) {
    suite.emplace_back(
        "randomwalk" + std::to_string(seed),
        net::CapacityTrace::RandomWalk(
            DataRate::KilobitsPerSec(1800), 0.18, TimeDelta::Millis(500),
            duration, seed, DataRate::KilobitsPerSec(400),
            DataRate::KilobitsPerSec(4000)));
  }
  return suite;
}

std::vector<fault::WirelessProfile> WirelessSuite(TimeDelta duration,
                                                  const std::string& filter) {
  std::vector<fault::WirelessProfile> suite;
  if (!filter.empty()) {
    suite.push_back(fault::MakeWirelessProfile(filter, duration));
    return suite;
  }
  for (const std::string& name : fault::WirelessProfileNames()) {
    suite.push_back(fault::MakeWirelessProfile(name, duration));
  }
  return suite;
}

void ApplyWirelessProfile(rtc::SessionConfig& config,
                          const fault::WirelessProfile& profile) {
  config.link.trace = Interned<net::CapacityTrace>(profile.trace);
  config.link.loss = profile.loss;
  if (!profile.faults.empty()) {
    // Merge profile events with any the config already carries (chaos
    // combos stack a blackhole/outage on top of a wireless scenario);
    // FaultPlan re-validates the union.
    std::vector<fault::FaultEvent> events = config.faults->events();
    const std::vector<fault::FaultEvent>& extra = profile.faults.events();
    events.insert(events.end(), extra.begin(), extra.end());
    config.faults = fault::FaultPlan(std::move(events));
  }
  config.wireless_profile = profile.name;
}

double ReductionPercent(double baseline, double treatment) {
  if (baseline <= 0.0) return 0.0;
  return (1.0 - treatment / baseline) * 100.0;
}

}  // namespace rave::bench
