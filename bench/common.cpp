#include "common.h"

#include <cstdlib>
#include <iostream>

#include "runner/parallel_runner.h"
#include "util/flags.h"

namespace rave::bench {

TimeDelta BenchOptions::DurationOr(TimeDelta fallback) const {
  return duration_s > 0.0 ? TimeDelta::SecondsF(duration_s) : fallback;
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  try {
    const Flags flags(argc - 1, argv + 1);
    for (const std::string& key : flags.UnknownKeys({"jobs", "duration"})) {
      std::cerr << "error: unknown flag --" << key
                << "\nusage: " << argv[0]
                << " [--jobs=N] [--duration=SECONDS]\n";
      std::exit(2);
    }
    BenchOptions options;
    options.jobs = static_cast<int>(flags.GetInt("jobs", 0));
    options.duration_s = flags.GetDouble("duration", 0.0);
    return options;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    std::exit(2);
  }
}

std::vector<rtc::SessionResult> RunMatrix(
    const std::vector<rtc::SessionConfig>& configs, int jobs) {
  return runner::RunSessions(configs, jobs);
}

std::vector<double> FrameLatenciesMs(const rtc::SessionResult& result) {
  std::vector<double> ms;
  ms.reserve(result.frames.size());
  for (const auto& f : result.frames) {
    if (auto l = f.latency()) ms.push_back(l->ms_float());
  }
  return ms;
}

rtc::SessionConfig DefaultConfig(rtc::Scheme scheme, net::CapacityTrace trace,
                                 video::ContentClass content,
                                 TimeDelta duration, uint64_t seed) {
  rtc::SessionConfig config;
  config.scheme = scheme;
  config.duration = duration;
  config.seed = seed;
  config.source.content = content;
  config.link.trace = std::move(trace);
  // The paper's scenario is a saturated steady-state call hit by a drop, so
  // sessions start with the estimator warmed up near the link rate instead
  // of spending the pre-drop phase in GCC's slow ramp.
  config.initial_rate = DataRate::KilobitsPerSec(2100);
  return config;
}

net::CapacityTrace DropTrace(double severity) {
  const auto base = DataRate::KilobitsPerSec(kBaseRateKbps);
  const auto low = DataRate::KilobitsPerSecF(kBaseRateKbps * (1.0 - severity));
  return net::CapacityTrace::StepDrop(base, low, Timestamp::Seconds(10));
}

std::vector<std::pair<std::string, net::CapacityTrace>> TraceSuite(
    TimeDelta duration) {
  const auto base = DataRate::KilobitsPerSec(kBaseRateKbps);
  std::vector<std::pair<std::string, net::CapacityTrace>> suite;

  for (double severity : {0.3, 0.5, 0.7}) {
    suite.emplace_back("drop" + std::to_string(static_cast<int>(severity * 100)),
                       DropTrace(severity));
    const auto low =
        DataRate::KilobitsPerSecF(kBaseRateKbps * (1.0 - severity));
    suite.emplace_back(
        "recover" + std::to_string(static_cast<int>(severity * 100)),
        net::CapacityTrace::StepDropAndRecover(base, low,
                                               Timestamp::Seconds(10),
                                               Timestamp::Seconds(25)));
  }

  // Staircase down: repeated partial drops.
  suite.emplace_back(
      "staircase",
      net::CapacityTrace::MultiStep({{Timestamp::Zero(), base},
                                     {Timestamp::Seconds(10),
                                      DataRate::KilobitsPerSec(1800)},
                                     {Timestamp::Seconds(20),
                                      DataRate::KilobitsPerSec(1200)},
                                     {Timestamp::Seconds(30),
                                      DataRate::KilobitsPerSec(700)}}));

  // LTE-like random walks.
  for (uint64_t seed : {11ULL, 23ULL}) {
    suite.emplace_back(
        "randomwalk" + std::to_string(seed),
        net::CapacityTrace::RandomWalk(
            DataRate::KilobitsPerSec(1800), 0.18, TimeDelta::Millis(500),
            duration, seed, DataRate::KilobitsPerSec(400),
            DataRate::KilobitsPerSec(4000)));
  }
  return suite;
}

double ReductionPercent(double baseline, double treatment) {
  if (baseline <= 0.0) return 0.0;
  return (1.0 - treatment / baseline) * 100.0;
}

}  // namespace rave::bench
