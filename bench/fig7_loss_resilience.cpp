// Figure 7 (extension): resilience to non-congestive loss. Wireless links
// lose packets without congestion; the loss-recovery stack (NACK/RTX + PLI)
// and the loss-based GCC controller react. Sweeps i.i.d. loss and a
// Gilbert bursty pattern at a 50% capacity drop.
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Fig7LossResilienceMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const uint64_t seeds[] = {1, 2, 3};

  std::cout << "Fig 7: non-congestive loss sweep (50% drop at t=10s, "
               "talking-head, 3 seeds)\n\n";
  Table table({"loss-model", "abr-mean(ms)", "adp-mean(ms)", "mean-red(%)",
               "abr-disp-ssim", "adp-disp-ssim", "abr-lost", "adp-lost"});

  struct Row {
    std::string name;
    net::LossModel loss;
  };
  std::vector<Row> rows;
  for (double p : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    Row row;
    row.name = "iid-" + std::to_string(p).substr(0, 5);
    row.loss.random_loss = p;
    rows.push_back(row);
  }
  {
    Row burst;
    burst.name = "gilbert-burst";
    burst.loss.gilbert_enabled = true;
    burst.loss.gilbert = {.p_good_to_bad = 0.002, .p_bad_to_good = 0.08};
    burst.loss.gilbert_bad_loss = 0.5;
    rows.push_back(burst);
  }

  const Interned<net::CapacityTrace> drop_trace = bench::DropTrace(0.5);
  std::vector<rtc::SessionConfig> configs;
  configs.reserve(rows.size() * 3 * 2);
  for (const Row& row : rows) {
    for (uint64_t seed : seeds) {
      for (rtc::Scheme scheme :
           {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
        auto config = bench::DefaultConfig(scheme, drop_trace,
                                           video::ContentClass::kTalkingHead,
                                           duration, seed);
        config.link.loss = row.loss;
        config.link.loss.seed = seed ^ 0xBEEF;
        configs.push_back(std::move(config));
      }
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  size_t next = 0;
  for (const Row& row : rows) {
    double mean[2] = {0, 0};
    double disp[2] = {0, 0};
    double lost[2] = {0, 0};
    for ([[maybe_unused]] uint64_t seed : seeds) {
      for (int i = 0; i < 2; ++i) {
        const rtc::SessionResult& result = results[next++];
        mean[i] += result.summary.latency_mean_ms / std::size(seeds);
        disp[i] += result.summary.displayed_ssim_mean / std::size(seeds);
        lost[i] += static_cast<double>(result.summary.frames_lost_network) /
                   std::size(seeds);
      }
    }
    table.AddRow()
        .Cell(row.name)
        .Cell(mean[0], 1)
        .Cell(mean[1], 1)
        .Cell(bench::ReductionPercent(mean[0], mean[1]), 1)
        .Cell(disp[0], 4)
        .Cell(disp[1], 4)
        .Cell(lost[0], 1)
        .Cell(lost[1], 1);
  }
  table.Print(std::cout);
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig7LossResilienceMain(argc, argv);
}
#endif
