// Table 6 (extension): loss-recovery strategy comparison on a lossy link —
// RTX only, FEC only, RTX+FEC, neither — for the adaptive scheme. FEC
// repairs in ~0 RTT at a bitrate cost; RTX costs a round trip but only
// spends bits on actual losses.
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Tab6FecMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const uint64_t seeds[] = {1, 2, 3};

  struct Variant {
    std::string name;
    bool rtx;
    bool fec;
  };
  const std::vector<Variant> variants = {
      {"none", false, false}, {"rtx", true, false},
      {"fec", false, true},   {"rtx+fec", true, true}};

  const Interned<net::CapacityTrace> drop_trace = bench::DropTrace(0.5);
  std::vector<rtc::SessionConfig> configs;
  configs.reserve(variants.size() * 3);
  for (const Variant& v : variants) {
    for (uint64_t seed : seeds) {
      auto config = bench::DefaultConfig(
          rtc::Scheme::kAdaptive, drop_trace,
          video::ContentClass::kTalkingHead, duration, seed);
      config.link.loss.random_loss = 0.02;
      config.link.loss.seed = seed ^ 0xFEC;
      config.enable_rtx = v.rtx;
      config.enable_fec = v.fec;
      configs.push_back(std::move(config));
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  std::cout << "Tab 6: loss recovery on a 2% i.i.d.-loss link "
               "(50% drop at t=10s, talking-head, 3 seeds)\n\n";
  Table table({"recovery", "lat-mean(ms)", "lat-p95(ms)", "disp-ssim",
               "lost-frames", "bitrate(kbps)"});

  size_t next = 0;
  for (const Variant& v : variants) {
    double mean = 0, p95 = 0, disp = 0, lost = 0, rate = 0;
    for ([[maybe_unused]] uint64_t seed : seeds) {
      const rtc::SessionResult& result = results[next++];
      mean += result.summary.latency_mean_ms / std::size(seeds);
      p95 += result.summary.latency_p95_ms / std::size(seeds);
      disp += result.summary.displayed_ssim_mean / std::size(seeds);
      lost += static_cast<double>(result.summary.frames_lost_network) /
              std::size(seeds);
      rate += result.summary.encoded_bitrate_kbps / std::size(seeds);
    }
    table.AddRow()
        .Cell(v.name)
        .Cell(mean, 1)
        .Cell(p95, 1)
        .Cell(disp, 4)
        .Cell(lost, 1)
        .Cell(rate, 0);
  }
  table.Print(std::cout);
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Tab6FecMain(argc, argv);
}
#endif
