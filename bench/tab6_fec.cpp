// Table 6 (extension): loss-recovery strategy comparison on a lossy link —
// RTX only, FEC only, RTX+FEC, neither — for the adaptive scheme. FEC
// repairs in ~0 RTT at a bitrate cost; RTX costs a round trip but only
// spends bits on actual losses.
#include <iostream>

#include "common.h"
#include "util/table.h"

using namespace rave;

int main() {
  const TimeDelta duration = TimeDelta::Seconds(40);

  std::cout << "Tab 6: loss recovery on a 2% i.i.d.-loss link "
               "(50% drop at t=10s, talking-head, 3 seeds)\n\n";
  Table table({"recovery", "lat-mean(ms)", "lat-p95(ms)", "disp-ssim",
               "lost-frames", "bitrate(kbps)"});

  struct Variant {
    std::string name;
    bool rtx;
    bool fec;
  };
  for (const Variant& v :
       {Variant{"none", false, false}, Variant{"rtx", true, false},
        Variant{"fec", false, true}, Variant{"rtx+fec", true, true}}) {
    double mean = 0, p95 = 0, disp = 0, lost = 0, rate = 0;
    const uint64_t seeds[] = {1, 2, 3};
    for (uint64_t seed : seeds) {
      auto config = bench::DefaultConfig(
          rtc::Scheme::kAdaptive, bench::DropTrace(0.5),
          video::ContentClass::kTalkingHead, duration, seed);
      config.link.loss.random_loss = 0.02;
      config.link.loss.seed = seed ^ 0xFEC;
      config.enable_rtx = v.rtx;
      config.enable_fec = v.fec;
      const rtc::SessionResult result = rtc::RunSession(config);
      mean += result.summary.latency_mean_ms / std::size(seeds);
      p95 += result.summary.latency_p95_ms / std::size(seeds);
      disp += result.summary.displayed_ssim_mean / std::size(seeds);
      lost += static_cast<double>(result.summary.frames_lost_network) /
              std::size(seeds);
      rate += result.summary.encoded_bitrate_kbps / std::size(seeds);
    }
    table.AddRow()
        .Cell(v.name)
        .Cell(mean, 1)
        .Cell(p95, 1)
        .Cell(disp, 4)
        .Cell(lost, 1)
        .Cell(rate, 0);
  }
  table.Print(std::cout);
  return 0;
}
