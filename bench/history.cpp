#include "history.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/metrics_registry.h"
#include "util/table.h"

namespace rave::bench {

namespace {

namespace fs = std::filesystem;

/// max_digits10 formatting: equal strings <=> equal double bits (modulo
/// -0.0/NaN, which the deterministic metrics never produce).
std::string FormatExact(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- minimal JSON reader -------------------------------------------------
// Parses exactly the subset the ledger writer emits (objects, arrays,
// strings, numbers, booleans, null). Hand-rolled because the repo has no
// JSON dependency and the records are single-line and small.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double Num(const std::string& key, double fallback) const {
    const JsonValue* v = Get(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
  }
  std::string Text(const std::string& key) const {
    const JsonValue* v = Get(key);
    return v != nullptr && v->type == Type::kString ? v->str : std::string();
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default: return ParseNumber(out);
    }
  }
  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          const unsigned long cp =
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                           nullptr, 16);
          pos_ += 4;
          // The writer only escapes control characters; anything else
          // degrades to '?' rather than full UTF-16 handling.
          out->push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default: return false;
      }
    }
    return false;
  }
  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out->type = JsonValue::Type::kNumber;
    return true;
  }
  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      SkipSpace();
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipSpace();
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool RecordFromJson(const JsonValue& v, HistoryRecord* out) {
  if (v.type != JsonValue::Type::kObject) return false;
  out->schema = static_cast<int>(v.Num("schema", 0));
  if (out->schema != 1) return false;
  out->git_rev = v.Text("git");
  out->fingerprint = static_cast<uint64_t>(v.Num("fingerprint", 0));
  out->blob_version = static_cast<uint32_t>(v.Num("blob", 0));
  out->options = v.Text("options");
  out->jobs = static_cast<int>(v.Num("jobs", 0));
  out->duration_s = v.Num("duration_s", 0.0);
  out->only = v.Text("only");
  out->wall_ms = v.Num("wall_ms", 0.0);
  out->sessions_per_s = v.Num("sessions_per_s", 0.0);
  out->cache_hit_rate = v.Num("cache_hit_rate", 0.0);
  const JsonValue* benches = v.Get("benches");
  if (benches == nullptr || benches->type != JsonValue::Type::kArray) {
    return false;
  }
  for (const JsonValue& b : benches->array) {
    if (b.type != JsonValue::Type::kObject) return false;
    HistoryBench hb;
    hb.name = b.Text("name");
    if (hb.name.empty()) return false;
    hb.exit_code = static_cast<int>(b.Num("exit", 0));
    hb.wall_ms = b.Num("wall_ms", 0.0);
    if (const JsonValue* q = b.Get("q");
        q != nullptr && q->type == JsonValue::Type::kObject) {
      for (const auto& [key, val] : q->object) {
        if (val.type != JsonValue::Type::kString) return false;
        hb.quality.emplace_back(key, val.str);
      }
    }
    out->benches.push_back(std::move(hb));
  }
  return true;
}

const std::string* FindQuality(const HistoryBench& bench,
                               const std::string& key) {
  for (const auto& [k, v] : bench.quality) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> QualityPairs(
    const obs::RegistrySnapshot& snapshot) {
  using obs::MetricKind;
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const obs::MetricSnapshot& m : snapshot.metrics) {
    if (m.name.rfind("wall.", 0) == 0 || m.name.rfind("alloc.", 0) == 0) {
      continue;  // host-side; quarantined out of the quality set
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        pairs.emplace_back(m.name, std::to_string(m.counter));
        break;
      case MetricKind::kGauge:
        pairs.emplace_back(m.name, FormatExact(m.gauge));
        break;
      case MetricKind::kHistogram:
      case MetricKind::kSketch: {
        const bool sketch = m.kind == MetricKind::kSketch;
        const uint64_t count = sketch ? m.sketch.count() : m.count;
        pairs.emplace_back(m.name + ".count", std::to_string(count));
        pairs.emplace_back(m.name + ".sum",
                           FormatExact(sketch ? m.sketch.sum() : m.sum));
        pairs.emplace_back(m.name + ".min",
                           FormatExact(sketch ? m.sketch.min() : m.min));
        pairs.emplace_back(m.name + ".max",
                           FormatExact(sketch ? m.sketch.max() : m.max));
        pairs.emplace_back(m.name + ".p50", FormatExact(m.Percentile(0.50)));
        pairs.emplace_back(m.name + ".p95", FormatExact(m.Percentile(0.95)));
        pairs.emplace_back(m.name + ".p99", FormatExact(m.Percentile(0.99)));
        break;
      }
    }
  }
  return pairs;
}

std::string GitRevOrUnknown(const std::string& start_dir) {
  if (const char* env = std::getenv("RAVE_GIT_REV");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  auto read_first_line = [](const fs::path& p) -> std::string {
    std::ifstream in(p);
    std::string line;
    if (!in || !std::getline(in, line)) return {};
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
      line.pop_back();
    }
    return line;
  };
  std::error_code ec;
  fs::path dir = fs::absolute(start_dir.empty() ? "." : start_dir, ec);
  for (; !dir.empty(); dir = dir.parent_path()) {
    const fs::path head = dir / ".git" / "HEAD";
    if (!fs::exists(head, ec)) {
      if (dir == dir.parent_path()) break;
      continue;
    }
    std::string line = read_first_line(head);
    if (line.rfind("ref: ", 0) == 0) {
      const std::string resolved =
          read_first_line(dir / ".git" / line.substr(5));
      return resolved.empty() ? "unknown" : resolved;
    }
    return line.empty() ? "unknown" : line;
  }
  return "unknown";
}

bool AppendHistory(const std::string& path, const HistoryRecord& r) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return false;
  out << "{\"schema\": " << r.schema << ", \"git\": \"" << JsonEscape(r.git_rev)
      << "\", \"fingerprint\": " << r.fingerprint
      << ", \"blob\": " << r.blob_version << ", \"options\": \""
      << JsonEscape(r.options) << "\", \"jobs\": " << r.jobs
      << ", \"duration_s\": " << FormatExact(r.duration_s) << ", \"only\": \""
      << JsonEscape(r.only) << "\", \"benches\": [";
  for (size_t i = 0; i < r.benches.size(); ++i) {
    const HistoryBench& b = r.benches[i];
    out << (i > 0 ? ", " : "") << "{\"name\": \"" << JsonEscape(b.name)
        << "\", \"exit\": " << b.exit_code << ", \"wall_ms\": "
        << FormatExact(b.wall_ms) << ", \"q\": {";
    for (size_t j = 0; j < b.quality.size(); ++j) {
      out << (j > 0 ? ", " : "") << '"' << JsonEscape(b.quality[j].first)
          << "\": \"" << JsonEscape(b.quality[j].second) << '"';
    }
    out << "}}";
  }
  out << "], \"wall_ms\": " << FormatExact(r.wall_ms)
      << ", \"sessions_per_s\": " << FormatExact(r.sessions_per_s)
      << ", \"cache_hit_rate\": " << FormatExact(r.cache_hit_rate) << "}\n";
  return static_cast<bool>(out);
}

std::vector<HistoryRecord> LoadHistory(const std::string& path) {
  std::vector<HistoryRecord> records;
  std::ifstream in(path, std::ios::binary);
  if (!in) return records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue v;
    if (!JsonParser(line).Parse(&v)) continue;
    HistoryRecord record;
    if (RecordFromJson(v, &record)) records.push_back(std::move(record));
  }
  return records;
}

std::string CompatKey(const HistoryRecord& r) {
  std::ostringstream os;
  os << r.schema << '|' << r.fingerprint << '|' << r.blob_version << '|'
     << r.options << '|' << FormatExact(r.duration_s) << '|' << r.only;
  return os.str();
}

bool CompareRecords(const HistoryRecord& baseline, const HistoryRecord& current,
                    double wall_band, std::ostream& out) {
  bool regressed = false;
  Table table({"bench", "quality", "wall", "note"});
  if (wall_band < 1.0) wall_band = 1.0;

  auto wall_cell = [&](double base_ms, double cur_ms, std::string* note) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(0) << base_ms << "->" << cur_ms
       << " ms";
    if (base_ms > 0.0) {
      const double ratio = cur_ms / base_ms;
      os << " (x" << std::setprecision(2) << ratio << ")";
      if (ratio > wall_band && note->empty()) {
        *note = "slow (wall is noise-banded, not gating)";
      }
    }
    return os.str();
  };

  for (const HistoryBench& base : baseline.benches) {
    const HistoryBench* cur = nullptr;
    for (const HistoryBench& c : current.benches) {
      if (c.name == base.name) {
        cur = &c;
        break;
      }
    }
    std::string quality = "ok";
    std::string wall;
    std::string note;
    if (cur == nullptr) {
      quality = "REGRESSED";
      note = "bench missing from current run";
      regressed = true;
    } else {
      if (cur->exit_code != 0 && base.exit_code == 0) {
        quality = "REGRESSED";
        note = "exit 0 -> " + std::to_string(cur->exit_code);
        regressed = true;
      }
      size_t drifts = 0;
      for (const auto& [key, base_value] : base.quality) {
        const std::string* cur_value = FindQuality(*cur, key);
        if (cur_value != nullptr && *cur_value == base_value) continue;
        ++drifts;
        if (quality == "ok") {
          quality = "REGRESSED";
          note = cur_value == nullptr
                     ? key + " missing"
                     : key + " " + base_value + " -> " + *cur_value;
          regressed = true;
        }
      }
      if (drifts > 1) {
        note += " (+" + std::to_string(drifts - 1) + " more)";
      }
      wall = wall_cell(base.wall_ms, cur->wall_ms, &note);
    }
    table.AddRow().Cell(base.name).Cell(quality).Cell(wall).Cell(note);
  }
  for (const HistoryBench& cur : current.benches) {
    bool in_baseline = false;
    for (const HistoryBench& base : baseline.benches) {
      if (base.name == cur.name) {
        in_baseline = true;
        break;
      }
    }
    if (!in_baseline) {
      table.AddRow().Cell(cur.name).Cell("new").Cell("").Cell(
          "not in baseline (not gating)");
    }
  }

  out << "regression sentinel: current run vs baseline (git "
      << (baseline.git_rev.empty() ? "unknown" : baseline.git_rev) << ")\n";
  table.Print(out);
  std::string total_note;
  out << "total wall: " << wall_cell(baseline.wall_ms, current.wall_ms,
                                     &total_note)
      << (total_note.empty() ? "" : " [" + total_note + "]") << '\n'
      << "verdict: "
      << (regressed ? "QUALITY REGRESSION (deterministic fields drifted)"
                    : "clean (quality byte-identical; wall fields informational)")
      << '\n';
  return regressed;
}

}  // namespace rave::bench
