// Shared helpers for the experiment harnesses: canonical session
// configurations (so every bench runs the same well-documented setup), the
// drop-trace suite, parallel matrix execution, command-line handling and
// small formatting utilities.
#pragma once

#include <string>
#include <vector>

#include "net/capacity_trace.h"
#include "rtc/session.h"
#include "util/time.h"
#include "util/units.h"
#include "video/content_model.h"

namespace rave::bench {

/// Canonical link rate before any drop.
inline constexpr int64_t kBaseRateKbps = 2500;

/// Command-line options shared by every bench binary.
struct BenchOptions {
  /// Worker threads for the session matrix; 0 means hardware concurrency.
  int jobs = 0;
  /// Session duration override in seconds, <= 0 means "use the bench's
  /// default". Smoke runs pass a short value (the canonical drop is at
  /// t = 10 s, so overrides below ~12 s lose the post-drop phase).
  double duration_s = 0.0;

  /// The bench's default duration unless overridden on the command line.
  TimeDelta DurationOr(TimeDelta fallback) const;
};

/// Parses `--jobs=N` / `--duration=S`. Exits (status 2) on unknown flags so
/// typos fail loudly. Every bench binary calls this first.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// Runs every config (in parallel when jobs != 1) and returns results in
/// submission order — byte-identical output to a serial run regardless of
/// the job count.
std::vector<rtc::SessionResult> RunMatrix(
    const std::vector<rtc::SessionConfig>& configs, int jobs);

/// Builds the default session configuration used across experiments:
/// 720p30, 2.5 Mbps initial estimate, 50 ms RTT (25 ms each way), 50 ms
/// feedback interval, deep (~3 s at 1 Mbps) bottleneck buffer.
rtc::SessionConfig DefaultConfig(rtc::Scheme scheme,
                                 net::CapacityTrace trace,
                                 video::ContentClass content,
                                 TimeDelta duration, uint64_t seed);

/// A single-step drop to (1 - severity) * base at t = 10 s.
net::CapacityTrace DropTrace(double severity);

/// The drop-trace suite used by CDF experiments: three severities x
/// {single-drop, drop+recover, staircase-down} = 9 traces + 3 random walks.
std::vector<std::pair<std::string, net::CapacityTrace>> TraceSuite(
    TimeDelta duration);

/// Per-frame end-to-end latencies (ms) of the delivered frames, in capture
/// order — the samples every latency CDF/percentile is computed from.
std::vector<double> FrameLatenciesMs(const rtc::SessionResult& result);

/// Mean latency reduction of `treatment` vs `baseline` in percent.
double ReductionPercent(double baseline, double treatment);

}  // namespace rave::bench
