// Shared helpers for the experiment harnesses: canonical session
// configurations (so every bench runs the same well-documented setup), the
// drop-trace suite, parallel matrix execution, command-line handling and
// small formatting utilities.
#pragma once

#include <string>
#include <vector>

#include "fault/wireless_profiles.h"
#include "net/capacity_trace.h"
#include "obs/metrics_registry.h"
#include "rtc/session.h"
#include "util/interned.h"
#include "util/time.h"
#include "util/units.h"
#include "video/content_model.h"

namespace rave::runner {
class ResultCache;
}  // namespace rave::runner

namespace rave::bench {

/// Canonical link rate before any drop.
inline constexpr int64_t kBaseRateKbps = 2500;

/// Command-line options shared by every bench binary.
struct BenchOptions {
  /// Worker threads for the session matrix; 0 means hardware concurrency.
  int jobs = 0;
  /// Session duration override in seconds, <= 0 means "use the bench's
  /// default". Smoke runs pass a short value (the canonical drop is at
  /// t = 10 s, so overrides below ~12 s lose the post-drop phase).
  double duration_s = 0.0;
  /// Session-result cache directory (--cache-dir / RAVE_CACHE_DIR); empty
  /// means no cache — today's exact behaviour.
  std::string cache_dir;
  /// Lockstep batch size for the session matrix (--batch). 1 = the
  /// per-session path; > 1 groups sessions per worker. Never changes
  /// results, only throughput.
  int batch = 1;
  /// Wireless-profile filter (--wireless=NAME): benches with a wireless
  /// tier restrict their matrix to this profile. Empty = all profiles.
  std::string wireless;

  /// The bench's default duration unless overridden on the command line.
  TimeDelta DurationOr(TimeDelta fallback) const;
};

/// Parses `--jobs=N` / `--duration=S` / `--cache-dir=DIR` /
/// `--log-level=LEVEL` / `--batch=B` / `--simd=scalar|avx2|auto`. Exits
/// (status 2) on unknown flags so typos fail loudly. Every bench binary
/// calls this first. When a cache directory is configured (flag, or the
/// RAVE_CACHE_DIR environment variable) and no suite cache is already
/// installed, this creates a process-wide ResultCache that RunMatrix then
/// consults. `--batch` installs the process-wide MatrixBatch(); `--simd`
/// forces the simd dispatch level (like the RAVE_SIMD environment
/// variable).
BenchOptions ParseBenchOptions(int argc, char** argv);

/// The process-wide lockstep batch size RunMatrix passes to the runner
/// (default 1). Set by ParseBenchOptions from --batch, like SuiteCache.
int MatrixBatch();
void SetMatrixBatch(int batch);

/// The process-wide session-result cache (nullptr = caching disabled).
/// `run_suite` installs one shared cache before invoking each bench entry
/// point; standalone binaries get one from ParseBenchOptions when asked.
runner::ResultCache* SuiteCache();
/// Installs `cache` as the process-wide cache (nullptr to uninstall). The
/// caller keeps ownership.
void SetSuiteCache(runner::ResultCache* cache);

/// Runs every config (in parallel when jobs != 1) and returns results in
/// submission order — byte-identical output to a serial run regardless of
/// the job count or cache state. Consults SuiteCache() when installed, and
/// merges each result's metrics snapshot into SuiteMetrics().
std::vector<rtc::SessionResult> RunMatrix(
    const std::vector<rtc::SessionConfig>& configs, int jobs);

/// Process-wide merge of the per-session metric registries of every session
/// RunMatrix has executed (or served from cache) so far. Deterministic:
/// only sim-derived values reach SessionResult::metrics, and RunMatrix
/// merges in submission order, so a cold and a warm suite run aggregate to
/// the same snapshot. run_suite writes this as BENCH_suite.json "metrics".
const obs::RegistrySnapshot& SuiteMetrics();
void ResetSuiteMetrics();

/// Like SuiteMetrics but scoped to one bench: run_suite resets this before
/// invoking each entry point and harvests it after, so the history ledger
/// records per-bench quality metrics. Standalone binaries can ignore it.
const obs::RegistrySnapshot& BenchMetrics();
void ResetBenchMetrics();

/// The session's merged per-frame latency sketch (`frame.latency_ms` in
/// result.metrics) — the O(sketch)-memory source for every cross-session
/// latency percentile. nullptr only for results predating the sketch.
const obs::QuantileSketch* LatencySketch(const rtc::SessionResult& result);

/// Builds the default session configuration used across experiments:
/// 720p30, 2.5 Mbps initial estimate, 50 ms RTT (25 ms each way), 50 ms
/// feedback interval, deep (~3 s at 1 Mbps) bottleneck buffer. The trace
/// handle is shared into the config (no per-config deep copy); plain
/// CapacityTrace arguments still convert implicitly.
rtc::SessionConfig DefaultConfig(rtc::Scheme scheme,
                                 Interned<net::CapacityTrace> trace,
                                 video::ContentClass content,
                                 TimeDelta duration, uint64_t seed);

/// A single-step drop to (1 - severity) * base at t = 10 s.
net::CapacityTrace DropTrace(double severity);

/// The drop-trace suite used by CDF experiments: three severities x
/// {single-drop, drop+recover, staircase-down} = 9 traces + 3 random walks.
/// Traces come pre-interned: every config built from one entry shares the
/// same step vector.
std::vector<std::pair<std::string, Interned<net::CapacityTrace>>> TraceSuite(
    TimeDelta duration);

/// The wireless tier for matrix builders: every registered profile built at
/// `duration` (or just the one named by `filter` when non-empty — unknown
/// names throw, listing the registry).
std::vector<fault::WirelessProfile> WirelessSuite(TimeDelta duration,
                                                  const std::string& filter =
                                                      "");

/// Installs a wireless profile into a session config: capacity trace
/// (interned), base loss model, fault plan (profile events merged with any
/// the config already carries), and the profile name for the session key.
void ApplyWirelessProfile(rtc::SessionConfig& config,
                          const fault::WirelessProfile& profile);

/// Per-frame end-to-end latencies (ms) of the delivered frames, in capture
/// order. The exact-vector reference path: benches use LatencySketch for
/// percentiles; this remains for per-frame analyses and for tests/tab4 to
/// validate sketch accuracy against exact order statistics.
std::vector<double> FrameLatenciesMs(const rtc::SessionResult& result);

/// Mean latency reduction of `treatment` vs `baseline` in percent.
double ReductionPercent(double baseline, double treatment);

}  // namespace rave::bench
