// Shared helpers for the experiment harnesses: canonical session
// configurations (so every bench runs the same well-documented setup), the
// drop-trace suite, and small formatting utilities.
#pragma once

#include <string>
#include <vector>

#include "net/capacity_trace.h"
#include "rtc/session.h"
#include "util/time.h"
#include "util/units.h"
#include "video/content_model.h"

namespace rave::bench {

/// Canonical link rate before any drop.
inline constexpr int64_t kBaseRateKbps = 2500;

/// Builds the default session configuration used across experiments:
/// 720p30, 2.5 Mbps initial estimate, 50 ms RTT (25 ms each way), 50 ms
/// feedback interval, deep (~3 s at 1 Mbps) bottleneck buffer.
rtc::SessionConfig DefaultConfig(rtc::Scheme scheme,
                                 net::CapacityTrace trace,
                                 video::ContentClass content,
                                 TimeDelta duration, uint64_t seed);

/// A single-step drop to (1 - severity) * base at t = 10 s.
net::CapacityTrace DropTrace(double severity);

/// The drop-trace suite used by CDF experiments: three severities x
/// {single-drop, drop+recover, staircase-down} = 9 traces + 3 random walks.
std::vector<std::pair<std::string, net::CapacityTrace>> TraceSuite(
    TimeDelta duration);

/// Mean latency reduction of `treatment` vs `baseline` in percent.
double ReductionPercent(double baseline, double treatment);

}  // namespace rave::bench
