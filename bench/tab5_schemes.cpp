// Table 5 (extension): full scheme comparison — both x264 baselines, the
// paper's adaptive controller, its oracle bound, and a Salsify-style
// memoryless comparator — across the whole trace suite. Positions the
// paper's contribution against the related work named in its abstract.
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/stats.h"
#include "util/table.h"

using namespace rave;

int bench::Tab5SchemesMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const auto suite = bench::TraceSuite(duration);

  std::vector<rtc::SessionConfig> configs;
  configs.reserve(std::size(rtc::kAllSchemes) * suite.size() *
                  std::size(video::kAllContentClasses));
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    for (const auto& [name, trace] : suite) {
      for (video::ContentClass content : video::kAllContentClasses) {
        configs.push_back(
            bench::DefaultConfig(scheme, trace, content, duration, 7));
      }
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  std::cout << "Tab 5: scheme comparison over the full trace suite ("
            << suite.size() << " traces x 4 content classes)\n\n";
  Table table({"scheme", "lat-mean(ms)", "lat-p50(ms)", "lat-p95(ms)",
               "enc-ssim", "disp-ssim", "bitrate(kbps)", "skipped/run",
               "lost/run"});

  size_t next = 0;
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    RunningStats mean, p50, p95, enc, disp, rate, skipped, lost;
    for ([[maybe_unused]] const auto& [name, trace] : suite) {
      for ([[maybe_unused]] video::ContentClass content :
           video::kAllContentClasses) {
        const rtc::SessionResult& result = results[next++];
        mean.Add(result.summary.latency_mean_ms);
        p50.Add(result.summary.latency_p50_ms);
        p95.Add(result.summary.latency_p95_ms);
        enc.Add(result.summary.encoded_ssim_mean);
        disp.Add(result.summary.displayed_ssim_mean);
        rate.Add(result.summary.encoded_bitrate_kbps);
        skipped.Add(static_cast<double>(result.summary.frames_skipped));
        lost.Add(static_cast<double>(result.summary.frames_lost_network));
      }
    }
    table.AddRow()
        .Cell(ToString(scheme))
        .Cell(mean.mean(), 1)
        .Cell(p50.mean(), 1)
        .Cell(p95.mean(), 1)
        .Cell(enc.mean(), 4)
        .Cell(disp.mean(), 4)
        .Cell(rate.mean(), 0)
        .Cell(skipped.mean(), 1)
        .Cell(lost.mean(), 1);
  }
  table.Print(std::cout);
  std::cout << "\nsalsify matches the adaptive scheme's latency class but "
               "pays for its\nmemorylessness in quality (QP tracks estimator "
               "noise 1:1) and skips.\n";
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Tab5SchemesMain(argc, argv);
}
#endif
