// Figure 5: sensitivity to the bottleneck buffer depth. Deep buffers turn
// the baseline's overshoot into seconds of queueing delay; shallow buffers
// turn it into loss (and PLI recovery). The adaptive encoder is nearly
// invariant to the buffer because it avoids building the queue at all.
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Fig5QueueDepthMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const uint64_t seeds[] = {1, 2, 3};

  const Interned<net::CapacityTrace> drop_trace = bench::DropTrace(0.6);
  std::vector<rtc::SessionConfig> configs;
  configs.reserve(5 * 3 * 2);
  for (int64_t kb : {30, 60, 120, 250, 500}) {
    for (uint64_t seed : seeds) {
      for (rtc::Scheme scheme :
           {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
        auto config = bench::DefaultConfig(scheme, drop_trace,
                                           video::ContentClass::kTalkingHead,
                                           duration, seed);
        config.link.queue_capacity = DataSize::Bytes(kb * 1000);
        configs.push_back(std::move(config));
      }
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  std::cout << "Fig 5: latency/loss vs bottleneck queue depth "
               "(60% drop at t=10s, talking-head)\n"
               "queue depth shown as drain time at the post-drop rate "
               "(1 Mbps)\n\n";
  Table table({"queue(KB)", "queue(ms@1Mbps)", "abr-p95(ms)", "adp-p95(ms)",
               "p95-red(%)", "abr-lost", "adp-lost"});

  size_t next = 0;
  for (int64_t kb : {30, 60, 120, 250, 500}) {
    double p95[2] = {0, 0};
    double lost[2] = {0, 0};
    for ([[maybe_unused]] uint64_t seed : seeds) {
      for (int i = 0; i < 2; ++i) {
        const rtc::SessionResult& result = results[next++];
        p95[i] += result.summary.latency_p95_ms / std::size(seeds);
        lost[i] += static_cast<double>(result.summary.frames_lost_network) /
                   std::size(seeds);
      }
    }
    table.AddRow()
        .Cell(kb)
        .Cell(static_cast<double>(kb * 8000) / 1e3, 0)
        .Cell(p95[0], 1)
        .Cell(p95[1], 1)
        .Cell(bench::ReductionPercent(p95[0], p95[1]), 1)
        .Cell(lost[0], 1)
        .Cell(lost[1], 1);
  }
  table.Print(std::cout);
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig5QueueDepthMain(argc, argv);
}
#endif
