// Figure 3: encoder output bitrate vs link capacity over time for every
// scheme across a drop-and-recover trace. Shows *why* the latency gap
// exists: the baseline's output converges to a new target over seconds
// while the adaptive encoder follows within frames.
#include <iostream>
#include <map>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

namespace {

// Encoded bits per 500 ms window, as kbps.
std::vector<double> WindowedBitrate(const rtc::SessionResult& result,
                                    TimeDelta duration) {
  const int windows = static_cast<int>(duration.seconds() * 2.0);
  std::vector<double> kbps(static_cast<size_t>(windows), 0.0);
  for (const auto& f : result.frames) {
    const int w = static_cast<int>(f.capture_time.seconds() * 2.0);
    if (w >= 0 && w < windows) {
      kbps[static_cast<size_t>(w)] += static_cast<double>(f.size.bits()) / 500.0;
    }
  }
  return kbps;
}

}  // namespace

int bench::Fig3BitrateTrackingMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(35));
  const Interned<net::CapacityTrace> trace = net::CapacityTrace::StepDropAndRecover(
      DataRate::KilobitsPerSec(2500), DataRate::KilobitsPerSec(1000),
      Timestamp::Seconds(10), Timestamp::Seconds(22));

  std::vector<rtc::SessionConfig> configs;
  configs.reserve(std::size(rtc::kAllSchemes));
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    configs.push_back(
        bench::DefaultConfig(scheme, trace, video::ContentClass::kTalkingHead,
                             duration, /*seed=*/11));
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  std::map<rtc::Scheme, std::vector<double>> series;
  size_t next = 0;
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    series[scheme] = WindowedBitrate(results[next++], duration);
  }

  std::cout << "Fig 3: encoder output bitrate (kbps per 500 ms window) vs "
               "capacity\n2.5 Mbps -> 1.0 Mbps at t=10s, recovery at t=22s\n\n";
  Table table({"t(s)", "capacity", "x264-abr", "x264-cbr", "rave-adaptive",
               "rave-oracle"});
  for (size_t w = 0; w < series[rtc::Scheme::kX264Abr].size(); ++w) {
    const Timestamp t = Timestamp::Millis(static_cast<int64_t>(w) * 500);
    table.AddRow()
        .Cell(t.seconds(), 1)
        .Cell(trace->RateAt(t).kbps(), 0)
        .Cell(series[rtc::Scheme::kX264Abr][w], 0)
        .Cell(series[rtc::Scheme::kX264Cbr][w], 0)
        .Cell(series[rtc::Scheme::kAdaptive][w], 0)
        .Cell(series[rtc::Scheme::kAdaptiveOracle][w], 0);
  }
  table.Print(std::cout);

  // Overshoot summary: bits sent above capacity during the 3 s after the
  // drop (the queue the schemes build).
  std::cout << "\novershoot in (10s, 13s]: encoded bits above capacity\n";
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    double over_kbits = 0.0;
    for (size_t w = 20; w < 26 && w < series[scheme].size(); ++w) {
      over_kbits += std::max(0.0, series[scheme][w] - 1000.0) * 0.5;
    }
    std::cout << "  " << ToString(scheme) << ": " << over_kbits << " kbits\n";
  }
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig3BitrateTrackingMain(argc, argv);
}
#endif
