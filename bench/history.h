// Suite run history and the cross-run regression sentinel.
//
// `run_suite --history=FILE` appends one JSON line per run to a ledger:
// build identity (git rev, sim fingerprint, blob version, compiled option
// set), the run shape (jobs, duration, bench selection), per-bench quality
// metrics distilled from the merged metric registries, and quarantined
// runtime stats (wall clock, sessions/sec, cache hit rate).
//
// `run_suite --baseline=FILE` (and the standalone `bench_compare` tool)
// diff a current run against a prior record. The comparison policy mirrors
// the repo's determinism contract:
//   * quality fields (counters, gauges, sketch count/sum/min/max and
//     percentiles) are sim-deterministic, so they are compared BYTE-EXACT —
//     any drift is a regression (or an unbumped fingerprint);
//   * wall-clock fields are noise-banded: a slowdown beyond the band is
//     reported in the verdict table but NEVER trips the non-zero exit on
//     its own.
// Records whose compatibility key (fingerprint, blob version, options,
// duration, bench selection) differs from the current run are skipped when
// picking a baseline — quality bytes are only comparable between runs of
// the same simulator semantics and run shape.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace rave::obs {
struct RegistrySnapshot;
}  // namespace rave::obs

namespace rave::bench {

/// One bench inside a history record.
struct HistoryBench {
  std::string name;
  int exit_code = 0;
  /// Wall clock of the bench entry point (noise-banded in comparisons).
  double wall_ms = 0.0;
  /// Deterministic quality metrics as ordered (key, value-string) pairs;
  /// values are strings so "byte-exact" is literal.
  std::vector<std::pair<std::string, std::string>> quality;
};

/// One suite run in the ledger (one JSONL line).
struct HistoryRecord {
  int schema = 1;
  std::string git_rev;   // RAVE_GIT_REV env, .git/HEAD, or "unknown"
  uint64_t fingerprint = 0;
  uint32_t blob_version = 0;
  std::string options;   // runner::BuildOptionsString()
  int jobs = 0;
  double duration_s = 0.0;
  std::string only;      // --only selection ("" = full suite)
  std::vector<HistoryBench> benches;
  // Quarantined runtime stats — recorded, noise-banded, never gating alone.
  double wall_ms = 0.0;
  double sessions_per_s = 0.0;
  double cache_hit_rate = 0.0;
};

/// Distills a merged registry snapshot into quality pairs: `wall.*` and
/// `alloc.*` metrics are excluded (host-side), counters/gauges keep their
/// value, sketches and histograms expand to .count/.sum/.min/.max and
/// .p50/.p95/.p99. Doubles are formatted with max_digits10 so equal strings
/// mean equal bits.
std::vector<std::pair<std::string, std::string>> QualityPairs(
    const obs::RegistrySnapshot& snapshot);

/// Best-effort git revision: RAVE_GIT_REV, else .git/HEAD resolved from
/// `start_dir` upward, else "unknown".
std::string GitRevOrUnknown(const std::string& start_dir);

/// Appends `record` to the JSONL ledger at `path`. False on I/O failure.
bool AppendHistory(const std::string& path, const HistoryRecord& record);

/// Loads every parseable record in the ledger (malformed lines are
/// skipped). Empty result when the file is missing or holds no records.
std::vector<HistoryRecord> LoadHistory(const std::string& path);

/// The compatibility key two records must share for a byte-exact quality
/// comparison to be meaningful.
std::string CompatKey(const HistoryRecord& record);

/// Diffs `current` against `baseline`, printing a per-bench verdict table
/// to `out`. `wall_band` is the tolerated slowdown factor for wall-clock
/// fields (e.g. 1.5 = +50%). Returns true when a QUALITY regression was
/// found (missing bench, worsened exit code, or any byte-level quality
/// drift); wall-clock slowdowns alone return false.
bool CompareRecords(const HistoryRecord& baseline, const HistoryRecord& current,
                    double wall_band, std::ostream& out);

}  // namespace rave::bench
