// Figure 4: sensitivity of the latency reduction to the feedback RTT.
// Encoder-side adaptation can only act on information that has reached the
// sender; this sweep shows the win persists (and how it shrinks) as the
// control loop slows from 20 ms to 200 ms RTT.
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Fig4RttSensitivityMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const uint64_t seeds[] = {1, 2, 3};

  const Interned<net::CapacityTrace> drop_trace = bench::DropTrace(0.5);
  std::vector<rtc::SessionConfig> configs;
  configs.reserve(4 * 3 * 2);
  for (int64_t rtt_ms : {20, 50, 100, 200}) {
    for (uint64_t seed : seeds) {
      for (rtc::Scheme scheme :
           {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
        auto config = bench::DefaultConfig(scheme, drop_trace,
                                           video::ContentClass::kTalkingHead,
                                           duration, seed);
        config.link.propagation = TimeDelta::Millis(rtt_ms / 2);
        config.feedback_delay = TimeDelta::Millis(rtt_ms / 2);
        configs.push_back(std::move(config));
      }
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  std::cout << "Fig 4: latency vs feedback RTT (50% drop at t=10s, "
               "talking-head)\n\n";
  Table table({"rtt(ms)", "abr-mean(ms)", "adp-mean(ms)", "mean-red(%)",
               "abr-p95(ms)", "adp-p95(ms)", "p95-red(%)"});

  size_t next = 0;
  for (int64_t rtt_ms : {20, 50, 100, 200}) {
    double mean[2] = {0, 0};
    double p95[2] = {0, 0};
    for ([[maybe_unused]] uint64_t seed : seeds) {
      for (int i = 0; i < 2; ++i) {
        const rtc::SessionResult& result = results[next++];
        mean[i] += result.summary.latency_mean_ms / std::size(seeds);
        p95[i] += result.summary.latency_p95_ms / std::size(seeds);
      }
    }
    table.AddRow()
        .Cell(rtt_ms)
        .Cell(mean[0], 1)
        .Cell(mean[1], 1)
        .Cell(bench::ReductionPercent(mean[0], mean[1]), 1)
        .Cell(p95[0], 1)
        .Cell(p95[1], 1)
        .Cell(bench::ReductionPercent(p95[0], p95[1]), 1);
  }
  table.Print(std::cout);
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig4RttSensitivityMain(argc, argv);
}
#endif
