// Figure 9 (extension): capture-to-RENDER latency — what the user actually
// experiences once the receiver's adaptive playout buffer sits on top of the
// network. Stable network delay earns a small buffer; the baseline's swings
// force a large one, so the paper's effect is amplified end to end.
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

namespace {
constexpr rave::rtc::Scheme kSchemes[] = {
    rave::rtc::Scheme::kX264Abr, rave::rtc::Scheme::kX264Cbr,
    rave::rtc::Scheme::kAdaptive, rave::rtc::Scheme::kSalsify};
}  // namespace

int bench::Fig9RenderLatencyMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const uint64_t seeds[] = {1, 2, 3};

  std::vector<rtc::SessionConfig> configs;
  configs.reserve(3 * std::size(kSchemes) * 3);
  for (double severity : {0.3, 0.5, 0.7}) {
    const Interned<net::CapacityTrace> drop_trace = bench::DropTrace(severity);
    for (rtc::Scheme scheme : kSchemes) {
      for (uint64_t seed : seeds) {
        configs.push_back(bench::DefaultConfig(
            scheme, drop_trace, video::ContentClass::kTalkingHead, duration,
            seed));
      }
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  std::cout << "Fig 9: render latency (network + adaptive playout) across "
               "drop severities (talking-head, 3 seeds)\n\n";
  Table table({"severity", "scheme", "net-mean(ms)", "render-mean(ms)",
               "render-p95(ms)", "late(%)"});

  size_t next = 0;
  for (double severity : {0.3, 0.5, 0.7}) {
    for (rtc::Scheme scheme : kSchemes) {
      double net = 0, render = 0, render_p95 = 0, late = 0;
      for ([[maybe_unused]] uint64_t seed : seeds) {
        const rtc::SessionResult& result = results[next++];
        net += result.summary.latency_mean_ms / std::size(seeds);
        render += result.summary.render_latency_mean_ms / std::size(seeds);
        render_p95 += result.summary.render_latency_p95_ms / std::size(seeds);
        late += result.summary.late_render_ratio * 100.0 / std::size(seeds);
      }
      table.AddRow()
          .Cell(severity, 1)
          .Cell(ToString(scheme))
          .Cell(net, 1)
          .Cell(render, 1)
          .Cell(render_p95, 1)
          .Cell(late, 2);
    }
  }
  table.Print(std::cout);
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig9RenderLatencyMain(argc, argv);
}
#endif
