// Table 3: ablation of the adaptive controller's mechanisms. Each row turns
// one mechanism off (or swaps the estimator for the ground-truth oracle) and
// reruns the 70%-drop suite; the deltas attribute the end-to-end win to its
// parts.
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

namespace {

struct Variant {
  std::string name;
  rtc::Scheme scheme = rtc::Scheme::kAdaptive;
  bool fast_qp = true;
  bool frame_cap = true;
  bool drain_mode = true;
  bool skip = true;
};

}  // namespace

void RunSweep(double severity, TimeDelta duration, int jobs);

int bench::Tab3AblationMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  RunSweep(0.7, duration, options.jobs);
  std::cout << '\n';
  RunSweep(0.85, duration, options.jobs);
  std::cout << "\nThe per-frame budget inversion (not switchable; it is the"
               "\nscheme's identity) provides most of the win over the"
               "\nbaseline; drain-mode and skip matter most under severe"
               "\ndrops, where they bound the backlog the moment it forms.\n";
  return 0;
}

void RunSweep(double severity, TimeDelta duration, int jobs) {
  const std::vector<Variant> variants = {
      {.name = "full"},
      {.name = "w/o fast-qp", .fast_qp = false},
      {.name = "w/o frame-cap", .frame_cap = false},
      {.name = "w/o drain-mode", .drain_mode = false},
      {.name = "w/o skip", .skip = false},
      {.name = "all-off (budget only)",
       .fast_qp = false,
       .frame_cap = false,
       .drain_mode = false,
       .skip = false},
      {.name = "oracle-bwe", .scheme = rtc::Scheme::kAdaptiveOracle},
      {.name = "baseline-abr", .scheme = rtc::Scheme::kX264Abr},
  };

  const Interned<net::CapacityTrace> drop_trace = bench::DropTrace(severity);
  std::vector<rtc::SessionConfig> configs;
  configs.reserve(variants.size() * std::size(video::kAllContentClasses) * 3);
  for (const Variant& v : variants) {
    for (video::ContentClass content : video::kAllContentClasses) {
      for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        auto config = bench::DefaultConfig(v.scheme, drop_trace, content,
                                           duration, seed);
        config.adaptive.enable_fast_qp = v.fast_qp;
        config.adaptive.enable_frame_cap = v.frame_cap;
        config.adaptive.enable_drain_mode = v.drain_mode;
        config.adaptive.enable_skip = v.skip;
        configs.push_back(std::move(config));
      }
    }
  }
  const auto results = bench::RunMatrix(configs, jobs);

  std::cout << "Tab 3: ablation (" << static_cast<int>(severity * 100)
            << "% drop at t=10s, all content classes, 3 seeds)\n\n";
  Table table({"variant", "lat-mean(ms)", "lat-p95(ms)", "enc-ssim",
               "disp-ssim", "skipped", "lost"});

  size_t next = 0;
  for (const Variant& v : variants) {
    double mean = 0, p95 = 0, enc = 0, disp = 0, skipped = 0, lost = 0;
    int runs = 0;
    for ([[maybe_unused]] video::ContentClass content :
         video::kAllContentClasses) {
      for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        (void)seed;
        const rtc::SessionResult& result = results[next++];
        mean += result.summary.latency_mean_ms;
        p95 += result.summary.latency_p95_ms;
        enc += result.summary.encoded_ssim_mean;
        disp += result.summary.displayed_ssim_mean;
        skipped += static_cast<double>(result.summary.frames_skipped);
        lost += static_cast<double>(result.summary.frames_lost_network);
        ++runs;
      }
    }
    table.AddRow()
        .Cell(v.name)
        .Cell(mean / runs, 1)
        .Cell(p95 / runs, 1)
        .Cell(enc / runs, 4)
        .Cell(disp / runs, 4)
        .Cell(skipped / runs, 1)
        .Cell(lost / runs, 1);
  }
  table.Print(std::cout);
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Tab3AblationMain(argc, argv);
}
#endif
