#include "registry.h"

namespace rave::bench {

const std::vector<BenchEntry>& AllBenches() {
  static const std::vector<BenchEntry> kBenches = {
      {"fig1_timeline", Fig1TimelineMain},
      {"fig2_latency_cdf", Fig2LatencyCdfMain},
      {"fig3_bitrate_tracking", Fig3BitrateTrackingMain},
      {"fig4_rtt_sensitivity", Fig4RttSensitivityMain},
      {"fig5_queue_depth", Fig5QueueDepthMain},
      {"fig6_recovery", Fig6RecoveryMain},
      {"fig7_loss_resilience", Fig7LossResilienceMain},
      {"fig8_cross_traffic", Fig8CrossTrafficMain},
      {"fig9_render_latency", Fig9RenderLatencyMain},
      {"fig10_outage_recovery", Fig10OutageRecoveryMain},
      {"tab1_latency_reduction", Tab1LatencyReductionMain},
      {"tab2_quality", Tab2QualityMain},
      {"tab3_ablation", Tab3AblationMain},
      {"tab5_schemes", Tab5SchemesMain},
      {"tab6_fec", Tab6FecMain},
  };
  return kBenches;
}

}  // namespace rave::bench
