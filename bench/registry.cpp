#include "registry.h"

namespace rave::bench {

const std::vector<BenchEntry>& AllBenches() {
  static const std::vector<BenchEntry> kBenches = {
      {"fig1_timeline", Fig1TimelineMain,
       "per-frame latency + control-plane timeline across one drop", "-"},
      {"fig2_latency_cdf", Fig2LatencyCdfMain,
       "end-to-end frame latency CDF, baseline vs adaptive", "-"},
      {"fig3_bitrate_tracking", Fig3BitrateTrackingMain,
       "encoder output bitrate vs link capacity over time", "-"},
      {"fig4_rtt_sensitivity", Fig4RttSensitivityMain,
       "latency reduction as a function of path RTT", "-"},
      {"fig5_queue_depth", Fig5QueueDepthMain,
       "pacer and bottleneck queue depth across a drop", "-"},
      {"fig6_recovery", Fig6RecoveryMain,
       "convergence time after capacity recovers", "-"},
      {"fig7_loss_resilience", Fig7LossResilienceMain,
       "quality/latency under random packet loss sweeps", "-"},
      {"fig8_cross_traffic", Fig8CrossTrafficMain,
       "behaviour when competing with on/off cross traffic", "-"},
      {"fig9_render_latency", Fig9RenderLatencyMain,
       "render-path latency distribution per scheme", "-"},
      {"fig10_outage_recovery", Fig10OutageRecoveryMain,
       "full outage (circuit breaker) injection and recovery", "-"},
      {"fig11_trace_timeline", Fig11TraceTimelineMain,
       "motivation timeline rendered from a Chrome trace capture",
       "fig11_trace_x264-abr.json fig11_trace_rave-adaptive.json"},
      {"fig12_handover_recovery", Fig12HandoverRecoveryMain,
       "handover/renegotiation recovery across the wireless tier", "-"},
      {"tab1_latency_reduction", Tab1LatencyReductionMain,
       "headline p95 latency reduction across drop severities", "-"},
      {"tab2_quality", Tab2QualityMain,
       "SSIM / bitrate quality comparison per scheme", "-"},
      {"tab3_ablation", Tab3AblationMain,
       "ablation of adaptive-encoder components", "-"},
      {"tab5_schemes", Tab5SchemesMain,
       "cross-scheme summary table over the trace suite", "-"},
      {"tab6_fec", Tab6FecMain,
       "FEC overhead/benefit sweep", "-"},
  };
  return kBenches;
}

}  // namespace rave::bench
