// Figure 11 (observability): the motivation timeline of Fig 1, rendered
// from a Chrome trace capture instead of the session's timeseries.
//
// Runs baseline and adaptive across the canonical 2.5 -> 1.0 Mbps drop with
// a TraceRecorder installed, writes each capture to
// `fig11_trace_<scheme>.json` (openable in Perfetto / chrome://tracing),
// then re-reads the JSON and prints one row per 500 ms from the parsed
// events — so the table is exercising the full export/import round trip,
// not a private in-memory shortcut.
//
// Traced sessions bypass RunMatrix and the result cache on purpose: a
// cached result replays no events, so it cannot produce a trace, and the
// warm-suite invariant (`sessions_computed: 0`) must keep holding.
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "obs/trace.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

namespace {

/// Last value per 500 ms bucket for one named counter track.
struct TrackSeries {
  std::map<int64_t, double> last_in_bucket;  // bucket index -> value
};

constexpr int64_t kBucketUs = 500'000;

}  // namespace

int bench::Fig11TraceTimelineMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const Interned<net::CapacityTrace> trace = bench::DropTrace(0.6);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(25));

  std::cout << "Fig 11: control-plane timeline re-read from Chrome trace "
               "captures (2.5->1.0 Mbps drop at t=10s)\n\n";

  for (rtc::Scheme scheme : {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
    const rtc::SessionConfig config =
        bench::DefaultConfig(scheme, trace, video::ContentClass::kTalkingHead,
                             duration, /*seed=*/42);

    obs::TraceRecorder::Options trace_options;
    trace_options.sample_hz = 0.0;  // record every sample
    obs::TraceRecorder recorder(trace_options);
    rtc::SessionResult result;
    {
      const obs::TraceScope scope(&recorder);
      result = rtc::RunSession(config);
    }

    const std::string path = "fig11_trace_" + result.scheme_name + ".json";
    if (!recorder.WriteJsonFile(path)) {
      std::cerr << "error: cannot write " << path << '\n';
      return 1;
    }

    std::ifstream in(path);
    std::vector<obs::ParsedTraceEvent> events;
    if (!obs::ReadTraceJson(in, &events)) {
      std::cerr << "error: no events parsed back from " << path << '\n';
      return 1;
    }

    std::map<std::string, TrackSeries> series;
    std::map<int64_t, int> instants;  // bucket -> instant-event count
    int64_t max_bucket = 0;
    for (const obs::ParsedTraceEvent& e : events) {
      const int64_t bucket = e.ts_us / kBucketUs;
      if (e.phase == "C") {
        series[e.name].last_in_bucket[bucket] = e.value;
        if (bucket > max_bucket) max_bucket = bucket;
      } else if (e.phase == "i") {
        ++instants[bucket];
        if (bucket > max_bucket) max_bucket = bucket;
      }
    }

    std::cout << "--- scheme: " << result.scheme_name << " (" << path
              << ", " << events.size() << " parsed events) ---\n";
    Table table({"t(s)", "capacity(kbps)", "bwe(kbps)", "qp", "vbv-fill",
                 "linkQ(ms)", "pacerQ(ms)", "instants"});
    // Carry the last seen value forward so rows between samples stay
    // meaningful (counters are step functions).
    std::map<std::string, double> carried;
    for (int64_t bucket = 0; bucket <= max_bucket; ++bucket) {
      for (auto& [name, s] : series) {
        auto it = s.last_in_bucket.find(bucket);
        if (it != s.last_in_bucket.end()) carried[name] = it->second;
      }
      auto value = [&](const char* name) {
        auto it = carried.find(name);
        return it == carried.end() ? 0.0 : it->second;
      };
      auto inst = instants.find(bucket);
      table.AddRow()
          .Cell(static_cast<double>(bucket) * kBucketUs * 1e-6, 1)
          .Cell(value("session/capacity_kbps"), 0)
          .Cell(value("cc/bwe_kbps"), 0)
          .Cell(value("encoder/qp"), 1)
          .Cell(value("codec/vbv_fill"), 3)
          .Cell(value("net/link_queue_ms"), 1)
          .Cell(value("transport/pacer_queue_ms"), 1)
          .Cell(inst == instants.end() ? 0.0 : inst->second, 0);
    }
    table.Print(std::cout);
    const auto& s = result.summary;
    std::cout << "summary: mean=" << s.latency_mean_ms
              << "ms p95=" << s.latency_p95_ms << "ms\n\n";
  }
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig11TraceTimelineMain(argc, argv);
}
#endif
