// Figure 10: recovery from hard faults (full outage, feedback blackhole,
// RTT spike, duplication+reordering burst) on an otherwise steady link.
// For every scheme x fault: time from fault-clear until the encoder target
// is back to 90% of its pre-fault level (clamped to the link rate), the
// post-fault delivered quality, and the circuit-breaker engagement counts.
#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common.h"
#include "registry.h"
#include "fault/fault_plan.h"
#include "fault/wireless_profiles.h"
#include "util/table.h"

using namespace rave;

namespace {

struct Scenario {
  std::string name;
  fault::FaultPlan plan;
  /// When set, the scenario is a wireless profile: its trace/loss/faults
  /// replace the steady link (plan mirrors the profile's fault events).
  std::optional<fault::WirelessProfile> wireless;
};

std::vector<Scenario> Scenarios(TimeDelta duration,
                                const std::string& wireless_filter) {
  std::vector<Scenario> scenarios(4);
  scenarios[0].name = "outage 2s";
  scenarios[0].plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(2));
  scenarios[1].name = "feedback blackhole 3s";
  scenarios[1].plan.FeedbackBlackhole(Timestamp::Seconds(10),
                                      TimeDelta::Seconds(3));
  scenarios[2].name = "rtt spike +150ms 2s";
  scenarios[2].plan.DelaySpike(Timestamp::Seconds(10), TimeDelta::Seconds(2),
                               TimeDelta::Millis(150));
  scenarios[3].name = "dup+reorder 5s";
  scenarios[3]
      .plan.DuplicationBurst(Timestamp::Seconds(10), TimeDelta::Seconds(5),
                             0.2)
      .ReorderBurst(Timestamp::Seconds(10), TimeDelta::Seconds(5), 0.2,
                    TimeDelta::Millis(40));
  for (fault::WirelessProfile& profile :
       bench::WirelessSuite(duration, wireless_filter)) {
    Scenario scenario;
    scenario.name = "wl:" + profile.name;
    scenario.plan = profile.faults;
    scenario.wireless = std::move(profile);
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

}  // namespace

int bench::Fig10OutageRecoveryMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  // Post-starvation estimator rebuild is additive (no probing), so the
  // slowest scheme needs ~45 s after the fault clears; see the chaos tests.
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(60));
  const auto scenarios = Scenarios(duration, options.wireless);

  const Interned<net::CapacityTrace> steady_trace = net::CapacityTrace::Constant(
      DataRate::KilobitsPerSec(bench::kBaseRateKbps));
  std::vector<rtc::SessionConfig> configs;
  configs.reserve(std::size(rtc::kAllSchemes) * scenarios.size());
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    for (const Scenario& scenario : scenarios) {
      rtc::SessionConfig config = bench::DefaultConfig(
          scheme, steady_trace, video::ContentClass::kTalkingHead, duration,
          17);
      if (scenario.wireless) {
        bench::ApplyWirelessProfile(config, *scenario.wireless);
      } else {
        config.faults = scenario.plan;
      }
      configs.push_back(std::move(config));
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  std::cout << "Fig 10: fault recovery on a steady " << bench::kBaseRateKbps
            << " kbps link (faults start at t=10s; wl:* rows run the named "
               "wireless profile instead)\n\n";
  Table table({"scheme", "fault", "pre(kbps)", "recover(s)", "post-ssim",
               "opens", "pauses", "recoveries"});
  size_t i = 0;
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    (void)scheme;
    for (const Scenario& scenario : scenarios) {
      const rtc::SessionResult& result = results[i++];
      const Timestamp clear = scenario.plan.LastClearTime();

      // Pre-fault reference: mean encoder target over the 2 s before the
      // fault, clamped to the link rate (an estimator may overshoot it).
      double pre_sum = 0.0;
      int pre_n = 0;
      for (const auto& p : result.timeseries) {
        if (p.at >= Timestamp::Seconds(8) && p.at < Timestamp::Seconds(10)) {
          pre_sum += p.encoder_target_kbps;
          ++pre_n;
        }
      }
      // Wireless scenarios replace the steady link, so the clamp follows
      // their trace's mean rate (identical to kBaseRateKbps otherwise).
      const double link_mean_kbps =
          scenario.wireless
              ? scenario.wireless->trace.AverageRate(duration).kbps()
              : static_cast<double>(bench::kBaseRateKbps);
      const double pre_target =
          std::min(pre_n > 0 ? pre_sum / pre_n : 0.0, link_mean_kbps);

      // First timeseries point after fault-clear back at >= 90% of that.
      Timestamp recovered_at = Timestamp::PlusInfinity();
      if (pre_target > 0.0) {
        for (const auto& p : result.timeseries) {
          if (p.at < clear) continue;
          if (p.encoder_target_kbps >= 0.9 * pre_target) {
            recovered_at = p.at;
            break;
          }
        }
      }

      // Delivered quality after the fault cleared.
      double post_ssim = 0.0;
      int post_n = 0;
      for (const auto& f : result.frames) {
        if (f.capture_time < clear) continue;
        if (f.fate == metrics::FrameFate::kDelivered) {
          post_ssim += f.ssim;
          ++post_n;
        }
      }

      Table& row = table.AddRow();
      row.Cell(result.scheme_name).Cell(scenario.name).Cell(pre_target, 0);
      // Pure fading/interference profiles have no fault windows — there is
      // no clear time to recover from. Short smoke runs end before the
      // fault clears: report n/a rather than pretending the session never
      // recovered.
      if (scenario.plan.empty()) {
        row.Cell("n/a");
      } else if (clear >= Timestamp::Zero() + duration) {
        row.Cell("n/a");
      } else if (recovered_at.IsFinite()) {
        row.Cell((recovered_at - clear).seconds(), 1);
      } else {
        row.Cell("never");
      }
      if (post_n > 0) {
        row.Cell(post_ssim / post_n, 4);
      } else {
        row.Cell("n/a");
      }
      row.Cell(static_cast<int64_t>(result.breaker_stats.opens))
          .Cell(static_cast<int64_t>(result.breaker_stats.pauses))
          .Cell(static_cast<int64_t>(result.breaker_stats.recoveries));
    }
  }
  table.Print(std::cout);
  std::cout << "\nrecover(s): time from fault-clear until the encoder "
               "target is back to 90% of its pre-fault level.\n";
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig10OutageRecoveryMain(argc, argv);
}
#endif
