// Figure 8 (extension): bandwidth drops caused by COMPETING TRAFFIC rather
// than link-rate changes. An on/off CBR flow shares the bottleneck; every
// "on" transition is effectively a sudden capacity drop for the video flow.
// Sweeps the cross-traffic intensity.
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Fig8CrossTrafficMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(60));
  const uint64_t seeds[] = {1, 2, 3};

  const Interned<net::CapacityTrace> steady_trace =
      net::CapacityTrace::Constant(DataRate::KilobitsPerSec(2500));
  std::vector<rtc::SessionConfig> configs;
  configs.reserve(4 * 3 * 2);
  for (int64_t cross_kbps : {0, 500, 1000, 1500}) {
    for (uint64_t seed : seeds) {
      for (rtc::Scheme scheme :
           {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
        auto config = bench::DefaultConfig(
            scheme, steady_trace, video::ContentClass::kTalkingHead, duration,
            seed);
        if (cross_kbps > 0) {
          net::CrossTraffic::Config ct;
          ct.rate = DataRate::KilobitsPerSec(cross_kbps);
          ct.mean_on = TimeDelta::Seconds(8);
          ct.mean_off = TimeDelta::Seconds(8);
          ct.seed = seed ^ 0xC0FFEE;
          config.cross_traffic = ct;
        }
        configs.push_back(std::move(config));
      }
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  std::cout << "Fig 8: on/off cross traffic sharing a 2.5 Mbps bottleneck "
               "(8 s mean on/off periods, 60 s, 3 seeds)\n\n";
  Table table({"cross(kbps)", "abr-mean(ms)", "adp-mean(ms)", "mean-red(%)",
               "abr-p95(ms)", "adp-p95(ms)", "abr-ssim", "adp-ssim"});

  size_t next = 0;
  for (int64_t cross_kbps : {0, 500, 1000, 1500}) {
    double mean[2] = {0, 0};
    double p95[2] = {0, 0};
    double ssim[2] = {0, 0};
    for ([[maybe_unused]] uint64_t seed : seeds) {
      for (int i = 0; i < 2; ++i) {
        const rtc::SessionResult& result = results[next++];
        mean[i] += result.summary.latency_mean_ms / std::size(seeds);
        p95[i] += result.summary.latency_p95_ms / std::size(seeds);
        ssim[i] += result.summary.displayed_ssim_mean / std::size(seeds);
      }
    }
    table.AddRow()
        .Cell(cross_kbps)
        .Cell(mean[0], 1)
        .Cell(mean[1], 1)
        .Cell(bench::ReductionPercent(mean[0], mean[1]), 1)
        .Cell(p95[0], 1)
        .Cell(p95[1], 1)
        .Cell(ssim[0], 4)
        .Cell(ssim[1], 4);
  }
  table.Print(std::cout);
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig8CrossTrafficMain(argc, argv);
}
#endif
