// Figure 6: behaviour after the link RECOVERS. Fast adaptation must not
// oscillate when capacity returns: the adaptive controller ramps quality
// back with hysteresis instead of overshooting. Prints QP and latency
// timelines around the recovery point plus ramp statistics.
#include <iostream>
#include <map>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Fig6RecoveryMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const Interned<net::CapacityTrace> trace = net::CapacityTrace::StepDropAndRecover(
      DataRate::KilobitsPerSec(2500), DataRate::KilobitsPerSec(800),
      Timestamp::Seconds(10), Timestamp::Seconds(20));

  std::vector<rtc::SessionConfig> configs;
  configs.reserve(2);
  for (rtc::Scheme scheme :
       {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
    configs.push_back(bench::DefaultConfig(
        scheme, trace, video::ContentClass::kTalkingHead, duration, 13));
  }
  const auto run = bench::RunMatrix(configs, options.jobs);

  std::map<std::string, rtc::SessionResult> results;
  for (const rtc::SessionResult& result : run) {
    results.emplace(result.scheme_name, result);
  }

  std::cout << "Fig 6: recovery behaviour (2.5 -> 0.8 Mbps at 10s, back to "
               "2.5 Mbps at 20s)\n\n";
  Table table({"t(s)", "capacity(kbps)", "abr-qp", "abr-lat(ms)", "adp-qp",
               "adp-lat(ms)"});
  const auto& abr = results.at("x264-abr").timeseries;
  const auto& adp = results.at("rave-adaptive").timeseries;
  for (size_t i = 0; i < std::min(abr.size(), adp.size()); ++i) {
    if (abr[i].at.us() % 500'000 != 0) continue;
    table.AddRow()
        .Cell(abr[i].at.seconds(), 1)
        .Cell(abr[i].capacity_kbps, 0)
        .Cell(abr[i].last_qp, 1)
        .Cell(abr[i].last_latency_ms, 1)
        .Cell(adp[i].last_qp, 1)
        .Cell(adp[i].last_latency_ms, 1);
  }
  table.Print(std::cout);

  // Ramp statistics: time from recovery until SSIM is back within 1% of the
  // pre-drop level, and worst latency in the ramp window.
  std::cout << "\nrecovery ramp (20s..30s):\n";
  for (const auto& [name, result] : results) {
    double pre_ssim = 0.0;
    int pre_n = 0;
    double worst_lat = 0.0;
    Timestamp back_at = Timestamp::PlusInfinity();
    for (const auto& f : result.frames) {
      if (f.capture_time < Timestamp::Seconds(10)) {
        if (f.fate == metrics::FrameFate::kDelivered) {
          pre_ssim += f.ssim;
          ++pre_n;
        }
      }
    }
    pre_ssim /= std::max(pre_n, 1);
    for (const auto& f : result.frames) {
      if (f.capture_time < Timestamp::Seconds(20)) continue;
      if (auto l = f.latency()) worst_lat = std::max(worst_lat, l->ms_float());
      if (back_at.IsFinite()) continue;
      if (f.fate == metrics::FrameFate::kDelivered &&
          f.ssim >= 0.99 * pre_ssim) {
        back_at = f.capture_time;
      }
    }
    std::cout << "  " << name << ": quality back to pre-drop level "
              << (back_at.IsFinite()
                      ? std::to_string(back_at.seconds() - 20.0) + " s after recovery"
                      : std::string("never"))
              << ", worst post-recovery latency " << worst_lat << " ms\n";
  }
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig6RecoveryMain(argc, argv);
}
#endif
