// Single-process suite orchestrator: runs every figure/table harness
// in-process against one shared session-result cache.
//
// Each bench's stdout is captured and tee'd to `BENCH_<name>.out` (so runs
// can be diffed byte-for-byte against standalone binaries and against
// cold/warm cache passes), and `BENCH_suite.json` records per-bench wall
// clock, sessions simulated vs served from cache, and the aggregate
// speedup. Because all benches share one process, a session that several
// harnesses request (same trace/content/seed/scheme) is simulated exactly
// once per suite run even without a disk cache — and with `--cache-dir`
// (or RAVE_CACHE_DIR) a warm rerun skips simulation entirely.
//
// BENCH_suite.json carries three metric sections:
//   "metrics"  — the deterministic merge of every session's metric registry
//                (counters, gauges, sketch/histogram percentiles); identical
//                between cold and warm passes and across job counts.
//   "sketches" — one line per merged quantile sketch: exact count/sum/
//                min/max, the standard percentile ladder, and the encoded
//                sketch blob as hex. Byte-identical across --jobs, --batch,
//                cache temperature, and merge order (the sketch's core
//                contract); determinism gates compare this section directly.
//   "runtime"  — host-side wall-clock / allocation roll-ups from
//                obs::RuntimeStats plus cache hit rates; excluded from
//                determinism comparisons by construction.
//
// The regression sentinel rides on top: `--history=FILE` appends one JSONL
// record per run (git rev, fingerprint, per-bench quality metrics,
// quarantined runtime stats); `--baseline=FILE` diffs the current run
// against the last compatible record and exits non-zero on a quality
// regression (wall-clock drift alone never gates). `--progress` emits a
// stderr-only heartbeat while the suite runs.
//
// Usage:
//   run_suite [--jobs=N] [--batch=B] [--duration=SECONDS] [--cache-dir=DIR]
//             [--out-dir=DIR] [--only=fig1_timeline,tab5_schemes,...]
//             [--history=FILE] [--baseline=FILE] [--wall-band=FACTOR]
//             [--progress] [--log-level=LEVEL] [--list] [--version]
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "history.h"
#include "obs/metrics_registry.h"
#include "obs/sketch.h"
#include "registry.h"
#include "runner/result_cache.h"
#include "runner/session_key.h"
#include "runner/version.h"
#include "util/byteio.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct BenchReport {
  std::string name;
  int exit_code = 0;
  double wall_ms = 0.0;
  uint64_t sessions_computed = 0;
  uint64_t cache_hits = 0;
  double saved_ms = 0.0;
};

/// JSON number formatting: fixed with enough precision, no locale traps.
std::string Num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// max_digits10 formatting for the determinism-gated "sketches" section:
/// equal strings mean equal double bits.
std::string NumExact(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

/// One JSON line per metric, mirroring the MetricSnapshot schema.
/// Distributions come with interpolated p50/p95/p99, so the suite report is
/// directly plottable without re-deriving percentiles from buckets.
void WriteMetricsJson(std::ostream& json, const char* indent,
                      const rave::obs::RegistrySnapshot& snapshot) {
  using rave::obs::MetricKind;
  for (size_t i = 0; i < snapshot.metrics.size(); ++i) {
    const rave::obs::MetricSnapshot& m = snapshot.metrics[i];
    json << indent << "{\"name\": \"" << m.name << "\", ";
    switch (m.kind) {
      case MetricKind::kCounter:
        json << "\"kind\": \"counter\", \"value\": " << m.counter;
        break;
      case MetricKind::kGauge:
        json << "\"kind\": \"gauge\", \"value\": " << Num(m.gauge);
        break;
      case MetricKind::kHistogram:
        json << "\"kind\": \"histogram\", \"count\": " << m.count
             << ", \"sum\": " << Num(m.sum) << ", \"min\": " << Num(m.min)
             << ", \"max\": " << Num(m.max)
             << ", \"p50\": " << Num(m.Percentile(0.50))
             << ", \"p95\": " << Num(m.Percentile(0.95))
             << ", \"p99\": " << Num(m.Percentile(0.99));
        break;
      case MetricKind::kSketch:
        json << "\"kind\": \"sketch\", \"count\": " << m.sketch.count()
             << ", \"sum\": " << Num(m.sketch.sum())
             << ", \"min\": " << Num(m.sketch.min())
             << ", \"max\": " << Num(m.sketch.max())
             << ", \"p50\": " << Num(m.Percentile(0.50))
             << ", \"p95\": " << Num(m.Percentile(0.95))
             << ", \"p99\": " << Num(m.Percentile(0.99));
        break;
    }
    json << "}" << (i + 1 < snapshot.metrics.size() ? "," : "") << '\n';
  }
}

/// The determinism-gated "sketches" section: one single-line JSON object per
/// merged quantile sketch, values formatted bit-exactly, plus the encoded
/// sketch as hex. Gates byte-compare these lines across --jobs/--batch/
/// cache-temperature variants — the hex blob makes any internal divergence
/// (not just percentile drift) visible.
void WriteSketchesJson(std::ostream& json, const char* indent,
                       const rave::obs::RegistrySnapshot& snapshot) {
  using rave::obs::MetricKind;
  std::vector<const rave::obs::MetricSnapshot*> sketches;
  for (const rave::obs::MetricSnapshot& m : snapshot.metrics) {
    if (m.kind == MetricKind::kSketch) sketches.push_back(&m);
  }
  for (size_t i = 0; i < sketches.size(); ++i) {
    const rave::obs::MetricSnapshot& m = *sketches[i];
    rave::ByteWriter w;
    m.sketch.Encode(w);
    const std::vector<uint8_t>& bytes = w.bytes();
    json << indent << "{\"name\": \"" << m.name
         << "\", \"count\": " << m.sketch.count()
         << ", \"sum\": " << NumExact(m.sketch.sum())
         << ", \"min\": " << NumExact(m.sketch.min())
         << ", \"max\": " << NumExact(m.sketch.max())
         << ", \"p50\": " << NumExact(m.sketch.Quantile(0.50))
         << ", \"p90\": " << NumExact(m.sketch.Quantile(0.90))
         << ", \"p95\": " << NumExact(m.sketch.Quantile(0.95))
         << ", \"p99\": " << NumExact(m.sketch.Quantile(0.99))
         << ", \"p999\": " << NumExact(m.sketch.Quantile(0.999))
         << ", \"bytes\": " << bytes.size() << ", \"blob\": \"";
    static const char kHex[] = "0123456789abcdef";
    for (uint8_t b : bytes) json << kHex[b >> 4] << kHex[b & 0xf];
    json << "\"}" << (i + 1 < sketches.size() ? "," : "") << '\n';
  }
}

/// `run_suite --list`: the bench registry with descriptions and outputs.
void PrintBenchList(std::ostream& os) {
  os << "available benches (run a subset with --only=name,name,...):\n";
  for (const rave::bench::BenchEntry& e : rave::bench::AllBenches()) {
    os << "  " << e.name << "\n      " << e.description
       << "\n      outputs: BENCH_" << e.name << ".out";
    if (e.outputs != nullptr && std::string(e.outputs) != "-") {
      os << ' ' << e.outputs;
    }
    os << '\n';
  }
}

/// Stderr-only heartbeat for long suite runs (--progress): which bench is
/// in flight, sessions simulated/cached so far, hit rate, sessions/sec.
/// Never touches stdout, so tee'd bench captures stay byte-identical.
class ProgressReporter {
 public:
  ProgressReporter(bool enabled, const rave::runner::ResultCache& cache,
                   size_t total_benches)
      : enabled_(enabled), cache_(cache), total_benches_(total_benches) {
    if (!enabled_) return;
    start_ = Clock::now();
    thread_ = std::thread([this] { Loop(); });
  }

  ~ProgressReporter() {
    if (!enabled_) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void BeginBench(const std::string& name, size_t index) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = name;
    index_ = index;
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, std::chrono::seconds(2),
                         [this] { return done_; })) {
      const std::string current = current_;
      const size_t index = index_;
      lock.unlock();
      const rave::runner::ResultCache::Stats s = cache_.stats();
      const uint64_t hits = s.memory_hits + s.disk_hits;
      const uint64_t lookups = s.computes + hits;
      const double elapsed_s =
          std::chrono::duration<double>(Clock::now() - start_).count();
      std::ostringstream os;
      os << "[progress] bench " << index << "/" << total_benches_;
      if (!current.empty()) os << " " << current;
      os << ": " << s.computes << " simulated, " << hits << " cached";
      if (lookups > 0) {
        os << " (hit " << std::fixed << std::setprecision(0)
           << 100.0 * static_cast<double>(hits) /
                  static_cast<double>(lookups)
           << "%)";
      }
      if (elapsed_s > 0.0) {
        os << ", " << std::fixed << std::setprecision(1)
           << static_cast<double>(s.computes) / elapsed_s << " sessions/s";
      }
      os << '\n';
      std::cerr << os.str();
      lock.lock();
    }
  }

  const bool enabled_;
  const rave::runner::ResultCache& cache_;
  const size_t total_benches_;
  Clock::time_point start_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::string current_;
  size_t index_ = 0;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  using rave::Flags;
  namespace bench = rave::bench;
  namespace runner = rave::runner;

  int jobs = 0;
  int batch = 1;
  double duration_s = 0.0;
  double wall_band = 1.5;
  bool progress = false;
  std::string cache_dir;
  std::string out_dir = ".";
  std::string benches_csv;
  std::string history_path;
  std::string baseline_path;
  try {
    const Flags flags(argc - 1, argv + 1);
    for (const std::string& key : flags.UnknownKeys(
             {"jobs", "batch", "duration", "cache-dir", "out-dir", "benches",
              "only", "log-level", "list", "version", "history", "baseline",
              "wall-band", "progress"})) {
      std::cerr << "error: unknown flag --" << key << "\nusage: " << argv[0]
                << " [--jobs=N] [--batch=B] [--duration=SECONDS]"
                   " [--cache-dir=DIR] [--out-dir=DIR] [--only=name,name,...]"
                   " [--history=FILE] [--baseline=FILE] [--wall-band=FACTOR]"
                   " [--progress] [--log-level=LEVEL] [--list] [--version]\n";
      return 2;
    }
    if (flags.GetBool("version", false)) {
      std::cout << runner::VersionString();
      return 0;
    }
    if (flags.GetBool("list", false)) {
      PrintBenchList(std::cout);
      return 0;
    }
    jobs = static_cast<int>(flags.GetInt("jobs", 0, 0, 1 << 16));
    batch = static_cast<int>(flags.GetInt("batch", 1, 1, 1 << 16));
    duration_s = flags.GetDouble("duration", 0.0);
    wall_band = flags.GetDouble("wall-band", 1.5);
    progress = flags.GetBool("progress", false);
    cache_dir = flags.GetString("cache-dir", "");
    out_dir = flags.GetString("out-dir", ".");
    history_path = flags.GetString("history", "");
    baseline_path = flags.GetString("baseline", "");
    // --only is the documented spelling; --benches kept as an alias.
    benches_csv = flags.GetString("only", flags.GetString("benches", ""));
    const std::string log_level = flags.GetString("log-level", "");
    if (!log_level.empty() && !rave::SetLogLevelFromString(log_level)) {
      std::cerr << "error: bad --log-level '" << log_level
                << "' (want debug|info|warning|error)\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  if (cache_dir.empty()) {
    if (auto env = runner::ResultCache::DirFromEnv()) cache_dir = *env;
  }

  // Select benches (all, or the --benches subset in the given order).
  std::vector<bench::BenchEntry> selected;
  if (benches_csv.empty()) {
    selected = bench::AllBenches();
  } else {
    std::istringstream iss(benches_csv);
    std::string name;
    while (std::getline(iss, name, ',')) {
      bool found = false;
      for (const bench::BenchEntry& e : bench::AllBenches()) {
        if (name == e.name) {
          selected.push_back(e);
          found = true;
          break;
        }
      }
      if (!found) {
        std::cerr << "error: unknown bench \"" << name << "\"\n";
        PrintBenchList(std::cerr);
        return 2;
      }
    }
  }

  // The git revision must resolve from the launch directory — after the
  // chdir below, .git/HEAD may no longer be reachable upward from cwd.
  const std::string git_rev = bench::GitRevOrUnknown(".");

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  // Benches write their own artifacts (CSVs, fig11 trace captures) relative
  // to the working directory; move into --out-dir so everything lands next
  // to the BENCH_*.out captures and concurrent suites with distinct out-dirs
  // never collide on a filename. The cache dir (and the history/baseline
  // ledger paths) must be resolved first or they would silently re-anchor
  // under out_dir.
  if (!cache_dir.empty()) {
    cache_dir = std::filesystem::absolute(cache_dir, ec).string();
  }
  if (!history_path.empty()) {
    history_path = std::filesystem::absolute(history_path, ec).string();
  }
  if (!baseline_path.empty()) {
    baseline_path = std::filesystem::absolute(baseline_path, ec).string();
  }
  std::filesystem::current_path(out_dir, ec);
  if (ec) {
    std::cerr << "error: cannot enter --out-dir " << out_dir << ": "
              << ec.message() << '\n';
    return 2;
  }
  out_dir = ".";

  // One cache for the whole suite. Even without a disk dir the in-memory
  // tier dedups sessions shared between benches within this run.
  runner::ResultCache::Options cache_options;
  cache_options.dir = cache_dir;
  cache_options.max_disk_bytes = runner::ResultCache::MaxDiskBytesFromEnv();
  runner::ResultCache cache(cache_options);
  bench::SetSuiteCache(&cache);
  bench::ResetSuiteMetrics();
  rave::obs::RuntimeStats::Instance().Reset();

  // Argv handed to every bench entry point: only flags ParseBenchOptions
  // knows, so no bench can bail out with exit(2).
  std::vector<std::string> bench_args;
  bench_args.push_back("run_suite");
  bench_args.push_back("--jobs=" + std::to_string(jobs));
  bench_args.push_back("--batch=" + std::to_string(batch));
  if (duration_s > 0.0) {
    std::ostringstream d;
    d << "--duration=" << duration_s;
    bench_args.push_back(d.str());
  }

  // The sentinel's history record, filled in as benches run.
  bench::HistoryRecord record;
  record.git_rev = git_rev;
  record.fingerprint = runner::kSimFingerprint;
  record.blob_version = runner::kBlobVersion;
  record.options = runner::BuildOptionsString();
  record.jobs = jobs;
  record.duration_s = duration_s;
  record.only = benches_csv;

  std::vector<BenchReport> reports;
  reports.reserve(selected.size());
  const Clock::time_point suite_start = Clock::now();
  int suite_exit = 0;

  ProgressReporter progress_reporter(progress, cache, selected.size());

  for (size_t bench_index = 0; bench_index < selected.size(); ++bench_index) {
    const bench::BenchEntry& entry = selected[bench_index];
    BenchReport report;
    report.name = entry.name;
    progress_reporter.BeginBench(entry.name, bench_index + 1);

    std::vector<std::string> args = bench_args;
    args[0] = std::string("run_suite/") + entry.name;
    std::vector<char*> argv_ptrs;
    argv_ptrs.reserve(args.size());
    for (std::string& a : args) argv_ptrs.push_back(a.data());

    const runner::ResultCache::Stats before = cache.stats();
    bench::ResetBenchMetrics();

    // Capture the bench's stdout; benches print their figures/tables there.
    std::ostringstream captured;
    std::streambuf* real_cout = std::cout.rdbuf(captured.rdbuf());
    const Clock::time_point start = Clock::now();
    try {
      report.exit_code =
          entry.entry(static_cast<int>(argv_ptrs.size()), argv_ptrs.data());
    } catch (const std::exception& e) {
      std::cout.rdbuf(real_cout);
      std::cerr << "error: bench " << entry.name << " threw: " << e.what()
                << '\n';
      report.exit_code = 1;
    }
    report.wall_ms = MsSince(start);
    std::cout.rdbuf(real_cout);

    const runner::ResultCache::Stats after = cache.stats();
    report.sessions_computed = after.computes - before.computes;
    report.cache_hits = (after.memory_hits + after.disk_hits) -
                        (before.memory_hits + before.disk_hits);
    report.saved_ms =
        static_cast<double>(after.saved_compute_us - before.saved_compute_us) /
        1000.0;
    if (report.exit_code != 0) suite_exit = 1;

    // Per-bench sentinel entry: deterministic quality metrics only (wall.*
    // and alloc.* are filtered inside QualityPairs); wall clock rides along
    // as a quarantined, noise-banded field.
    bench::HistoryBench hb;
    hb.name = entry.name;
    hb.exit_code = report.exit_code;
    hb.wall_ms = report.wall_ms;
    hb.quality = bench::QualityPairs(bench::BenchMetrics());
    record.benches.push_back(std::move(hb));

    // Tee: the bench's normal output still reaches the console, and a
    // byte-identical copy lands next to the suite report for diffing.
    const std::string text = captured.str();
    std::cout << text;
    std::ofstream out(out_dir + "/BENCH_" + entry.name + ".out",
                      std::ios::binary | std::ios::trunc);
    if (out) out.write(text.data(), static_cast<std::streamsize>(text.size()));

    std::cerr << "[suite] " << entry.name << ": " << Num(report.wall_ms)
              << " ms, " << report.sessions_computed << " simulated, "
              << report.cache_hits << " cached";
    if (report.saved_ms > 0.0) {
      std::cerr << " (saved ~" << Num(report.saved_ms) << " ms)";
    }
    std::cerr << (report.exit_code == 0 ? "" : " [FAILED]") << '\n';
    reports.push_back(report);
  }

  const double suite_wall_ms = MsSince(suite_start);
  const runner::ResultCache::Stats total = cache.stats();
  const double total_saved_ms =
      static_cast<double>(total.saved_compute_us) / 1000.0;
  // Wall clock this suite would have needed with every hit simulated
  // instead, over the wall clock it actually took.
  const double est_speedup =
      suite_wall_ms > 0.0 ? (suite_wall_ms + total_saved_ms) / suite_wall_ms
                          : 1.0;

  std::ofstream json(out_dir + "/BENCH_suite.json",
                     std::ios::binary | std::ios::trunc);
  json << "{\n  \"jobs\": " << jobs << ",\n  \"duration_s\": " << Num(duration_s)
       << ",\n  \"cache_dir\": \"" << cache_dir << "\",\n  \"benches\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const BenchReport& r = reports[i];
    json << "    {\"name\": \"" << r.name << "\", \"exit_code\": " << r.exit_code
         << ", \"wall_ms\": " << Num(r.wall_ms)
         << ", \"sessions_computed\": " << r.sessions_computed
         << ", \"cache_hits\": " << r.cache_hits
         << ", \"saved_ms\": " << Num(r.saved_ms) << "}"
         << (i + 1 < reports.size() ? "," : "") << '\n';
  }
  json << "  ],\n  \"total\": {\"wall_ms\": " << Num(suite_wall_ms)
       << ", \"sessions_computed\": " << total.computes
       << ", \"memory_hits\": " << total.memory_hits
       << ", \"disk_hits\": " << total.disk_hits
       << ", \"stores\": " << total.stores
       << ", \"corrupt\": " << total.corrupt
       << ", \"evictions\": " << total.evictions
       << ", \"saved_ms\": " << Num(total_saved_ms)
       << ", \"estimated_speedup\": " << Num(est_speedup) << "},\n";

  // Deterministic merge of every session's metric registry: identical for
  // cold vs warm cache passes and any --jobs value (sessions served from
  // cache carry the same snapshot the original run produced).
  json << "  \"metrics\": [\n";
  WriteMetricsJson(json, "    ", bench::SuiteMetrics());
  json << "  ],\n";

  // The merged quantile sketches, bit-exact values plus the encoded blob as
  // hex. Determinism gates byte-compare these lines across jobs/batch/cache
  // variants; any divergence in the merge shows up here first.
  json << "  \"sketches\": [\n";
  WriteSketchesJson(json, "    ", bench::SuiteMetrics());
  json << "  ],\n";

  // Host-side roll-up (wall clock, allocations, cache hit rate). These
  // values change run to run; determinism gates filter this section out.
  const uint64_t lookups = total.computes + total.memory_hits + total.disk_hits;
  const double hit_rate =
      lookups > 0
          ? static_cast<double>(total.memory_hits + total.disk_hits) /
                static_cast<double>(lookups)
          : 0.0;
  json << "  \"runtime\": {\n    \"cache_hit_rate\": " << Num(hit_rate)
       << ",\n    \"stats\": [\n";
  WriteMetricsJson(json, "      ",
                   rave::obs::RuntimeStats::Instance().Snapshot());
  json << "    ]\n  }\n}\n";

  std::cerr << "[suite] total: " << Num(suite_wall_ms) << " ms, "
            << total.computes << " simulated, "
            << total.memory_hits + total.disk_hits << " cache hits, est. "
            << Num(est_speedup) << "x vs uncached\n";

  // Quarantined runtime stats on the sentinel record.
  record.wall_ms = suite_wall_ms;
  record.sessions_per_s =
      suite_wall_ms > 0.0
          ? static_cast<double>(total.computes) / (suite_wall_ms / 1000.0)
          : 0.0;
  record.cache_hit_rate = hit_rate;

  // --baseline: diff this run against the last compatible ledger record.
  // Quality drift gates (non-zero exit); wall-clock drift only warns.
  if (!baseline_path.empty()) {
    const std::vector<bench::HistoryRecord> ledger =
        bench::LoadHistory(baseline_path);
    const bench::HistoryRecord* baseline = nullptr;
    const std::string key = bench::CompatKey(record);
    for (const bench::HistoryRecord& r : ledger) {
      if (bench::CompatKey(r) == key) baseline = &r;
    }
    if (baseline == nullptr) {
      std::cerr << "[sentinel] no compatible baseline in " << baseline_path
                << " (need fingerprint/blob/options/duration/selection match;"
                   " " << ledger.size() << " records scanned) — not gating\n";
    } else {
      std::cout << '\n';
      if (bench::CompareRecords(*baseline, record, wall_band, std::cout)) {
        suite_exit = 1;
      }
    }
  }

  // --history: append this run to the ledger (after the baseline diff, so a
  // run never compares against itself).
  if (!history_path.empty()) {
    if (!bench::AppendHistory(history_path, record)) {
      std::cerr << "error: cannot append history record to " << history_path
                << '\n';
      if (suite_exit == 0) suite_exit = 1;
    } else {
      std::cerr << "[sentinel] history record appended to " << history_path
                << '\n';
    }
  }

  bench::SetSuiteCache(nullptr);
  return suite_exit;
}
