// bench_compare: the cross-run regression sentinel as a standalone tool.
//
// Diffs two records of a `run_suite --history=FILE` ledger (by default the
// last two) with the same policy `run_suite --baseline` applies in-process:
// deterministic quality fields are compared byte-exact and gate the exit
// code; wall-clock fields are noise-banded and only ever warn.
//
// Usage:
//   bench_compare --history=FILE [--from=I] [--to=J] [--wall-band=FACTOR]
//
// `--from`/`--to` index the ledger; negative values count from the end
// (--from=-2 --to=-1, the default, compares the previous run against the
// latest). Exit codes: 0 clean, 1 quality regression, 2 usage error.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "history.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using rave::Flags;
  namespace bench = rave::bench;

  std::string history_path;
  int64_t from = -2;
  int64_t to = -1;
  double wall_band = 1.5;
  try {
    const Flags flags(argc - 1, argv + 1);
    for (const std::string& key :
         flags.UnknownKeys({"history", "from", "to", "wall-band"})) {
      std::cerr << "error: unknown flag --" << key << "\nusage: " << argv[0]
                << " --history=FILE [--from=I] [--to=J]"
                   " [--wall-band=FACTOR]\n";
      return 2;
    }
    history_path = flags.GetString("history", "");
    from = flags.GetInt("from", -2);
    to = flags.GetInt("to", -1);
    wall_band = flags.GetDouble("wall-band", 1.5);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  if (history_path.empty()) {
    std::cerr << "error: --history=FILE is required\n";
    return 2;
  }

  const std::vector<bench::HistoryRecord> ledger =
      bench::LoadHistory(history_path);
  if (ledger.size() < 2) {
    std::cerr << "error: " << history_path << " holds " << ledger.size()
              << " parseable record(s); need at least 2 to compare\n";
    return 2;
  }
  auto resolve = [&](int64_t index, const char* flag) -> const
      bench::HistoryRecord* {
    const int64_t n = static_cast<int64_t>(ledger.size());
    const int64_t i = index < 0 ? n + index : index;
    if (i < 0 || i >= n) {
      std::cerr << "error: --" << flag << "=" << index
                << " is outside the ledger (" << n << " records)\n";
      return nullptr;
    }
    return &ledger[static_cast<size_t>(i)];
  };
  const bench::HistoryRecord* baseline = resolve(from, "from");
  const bench::HistoryRecord* current = resolve(to, "to");
  if (baseline == nullptr || current == nullptr) return 2;

  if (bench::CompatKey(*baseline) != bench::CompatKey(*current)) {
    std::cerr << "warning: records are not compatible (fingerprint/blob/"
                 "options/duration/selection differ) — quality bytes are not"
                 " expected to match:\n  baseline: "
              << bench::CompatKey(*baseline)
              << "\n  current:  " << bench::CompatKey(*current) << '\n';
  }
  return bench::CompareRecords(*baseline, *current, wall_band, std::cout) ? 1
                                                                          : 0;
}
