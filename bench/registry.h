// Entry points of every figure/table harness, callable in-process.
//
// Each bench's `main` body lives in `rave::bench::<Name>Main`; when built
// standalone the binary wraps it in a real `main`, and when built into the
// suite library (RAVE_SUITE_BUILD) only the named entry point exists, so
// `run_suite` can invoke all of them from one process against one shared
// result cache. tab4_microbench (the google-benchmark harness) is not part
// of the suite — it measures simulator throughput, not paper outputs.
#pragma once

#include <vector>

namespace rave::bench {

int Fig1TimelineMain(int argc, char** argv);
int Fig2LatencyCdfMain(int argc, char** argv);
int Fig3BitrateTrackingMain(int argc, char** argv);
int Fig4RttSensitivityMain(int argc, char** argv);
int Fig5QueueDepthMain(int argc, char** argv);
int Fig6RecoveryMain(int argc, char** argv);
int Fig7LossResilienceMain(int argc, char** argv);
int Fig8CrossTrafficMain(int argc, char** argv);
int Fig9RenderLatencyMain(int argc, char** argv);
int Fig10OutageRecoveryMain(int argc, char** argv);
int Tab1LatencyReductionMain(int argc, char** argv);
int Tab2QualityMain(int argc, char** argv);
int Tab3AblationMain(int argc, char** argv);
int Fig11TraceTimelineMain(int argc, char** argv);
int Fig12HandoverRecoveryMain(int argc, char** argv);
int Tab5SchemesMain(int argc, char** argv);
int Tab6FecMain(int argc, char** argv);

struct BenchEntry {
  const char* name;  ///< binary name, e.g. "fig1_timeline"
  int (*entry)(int argc, char** argv);
  const char* description;  ///< one line for `run_suite --list`
  const char* outputs;      ///< files written besides stdout ("-" if none)
};

/// Every suite bench, in canonical (fig1..fig11, tab1..tab6) order.
const std::vector<BenchEntry>& AllBenches();

}  // namespace rave::bench
