// Table 4: controller overhead microbenchmarks (google-benchmark). The
// paper's premise is that per-frame adaptation is cheap enough to run in the
// encode path; these benchmarks measure the per-frame decision cost of each
// rate control, the R-D model, and the estimator's per-feedback cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "cc/gcc.h"
#include "codec/abr_rate_control.h"
#include "codec/cbr_rate_control.h"
#include "codec/encoder.h"
#include "core/adaptive_rate_control.h"
#include "video/video_source.h"

namespace rave {
namespace {

video::RawFrame MakeFrame() {
  video::RawFrame f;
  f.spatial_complexity = 1.0;
  f.temporal_complexity = 0.5;
  return f;
}

void BM_RdModelActualBits(benchmark::State& state) {
  codec::RdModel model({}, Rng(1));
  const video::RawFrame frame = MakeFrame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ActualBits(codec::FrameType::kDelta, frame, 5.0));
  }
}
BENCHMARK(BM_RdModelActualBits);

template <typename Rc>
std::unique_ptr<codec::RateControl> MakeRc();

template <>
std::unique_ptr<codec::RateControl> MakeRc<codec::AbrRateControl>() {
  return std::make_unique<codec::AbrRateControl>(codec::AbrConfig{});
}
template <>
std::unique_ptr<codec::RateControl> MakeRc<codec::CbrRateControl>() {
  return std::make_unique<codec::CbrRateControl>(codec::CbrConfig{});
}
template <>
std::unique_ptr<codec::RateControl> MakeRc<core::AdaptiveRateControl>() {
  return std::make_unique<core::AdaptiveRateControl>(core::AdaptiveConfig{});
}

template <typename Rc>
void BM_PerFrameDecision(benchmark::State& state) {
  auto rc = MakeRc<Rc>();
  const video::RawFrame frame = MakeFrame();
  Timestamp now = Timestamp::Zero();
  codec::FrameOutcome outcome;
  outcome.type = codec::FrameType::kDelta;
  outcome.qp = 28.0;
  outcome.qscale = codec::QpToQscale(28.0);
  outcome.size = DataSize::Bits(50'000);
  outcome.complexity_term = 1280.0 * 720.0 * 0.5;
  for (auto _ : state) {
    now += TimeDelta::Millis(33);
    const codec::FrameGuidance g =
        rc->PlanFrame(frame, codec::FrameType::kDelta, now);
    benchmark::DoNotOptimize(g);
    rc->OnFrameEncoded(outcome, now);
  }
}
BENCHMARK(BM_PerFrameDecision<codec::AbrRateControl>)
    ->Name("BM_PerFrameDecision/x264-abr");
BENCHMARK(BM_PerFrameDecision<codec::CbrRateControl>)
    ->Name("BM_PerFrameDecision/x264-cbr");
BENCHMARK(BM_PerFrameDecision<core::AdaptiveRateControl>)
    ->Name("BM_PerFrameDecision/rave-adaptive");

void BM_AdaptiveNetworkUpdate(benchmark::State& state) {
  core::AdaptiveRateControl rc(core::AdaptiveConfig{});
  core::NetworkObservation obs;
  obs.target = DataRate::KilobitsPerSec(1200);
  obs.acked_rate = DataRate::KilobitsPerSec(1100);
  obs.rtt = TimeDelta::Millis(50);
  obs.pacer_queue = DataSize::Bits(40'000);
  obs.in_flight = DataSize::Bits(80'000);
  for (auto _ : state) {
    obs.at += TimeDelta::Millis(50);
    rc.OnNetworkUpdate(obs);
    benchmark::DoNotOptimize(rc.network_state());
  }
}
BENCHMARK(BM_AdaptiveNetworkUpdate);

void BM_GccPerFeedback(benchmark::State& state) {
  cc::GccEstimator gcc;
  int64_t seq = 0;
  Timestamp now = Timestamp::Zero();
  for (auto _ : state) {
    std::vector<transport::PacketResult> results;
    results.reserve(8);
    for (int i = 0; i < 8; ++i) {
      transport::PacketResult r;
      r.seq = seq++;
      r.size = DataSize::Bits(9'600);
      r.send_time = now + TimeDelta::Millis(6 * i);
      r.arrival = r.send_time + TimeDelta::Millis(30);
      results.push_back(r);
    }
    now += TimeDelta::Millis(50);
    gcc.OnPacketResults(results, now);
    benchmark::DoNotOptimize(gcc.target());
  }
}
BENCHMARK(BM_GccPerFeedback);

void BM_FullEncodeLoop(benchmark::State& state) {
  codec::EncoderConfig config;
  codec::Encoder encoder(
      config, std::make_unique<core::AdaptiveRateControl>(
                  core::AdaptiveConfig{}));
  video::VideoSource source({});
  Timestamp now = Timestamp::Zero();
  for (auto _ : state) {
    now += TimeDelta::Millis(33);
    benchmark::DoNotOptimize(
        encoder.EncodeFrame(source.CaptureFrame(now), now));
  }
}
BENCHMARK(BM_FullEncodeLoop);

}  // namespace
}  // namespace rave

BENCHMARK_MAIN();
