// Table 4: controller overhead microbenchmarks (google-benchmark) plus
// simulator throughput. The paper's premise is that per-frame adaptation is
// cheap enough to run in the encode path; these benchmarks measure the
// per-frame decision cost of each rate control, the R-D model, the
// estimator's per-feedback cost, and the event-loop schedule/cancel path.
//
// After the microbenchmarks a throughput section measures end-to-end
// simulation speed — wall clock, sessions/sec and events/sec, serial vs
// parallel (`--jobs`) — cross-checks that the parallel results are
// bit-identical to the serial ones, and records the numbers in
// BENCH_runner.json so future PRs have a perf trajectory to compare
// against.
//
// A hot-path section then measures the event loop's schedule/cancel/fire
// throughput with manual timing and — when the build carries the
// RAVE_ALLOC_PROBE option — the steady-state allocation counts per
// event-loop cycle and per encoded frame, recorded in BENCH_hotpath.json.
//
// A lockstep batch sweep follows: the same session matrix and the distilled
// per-frame control loop (runner/control_loop.h) each run at batch=1 vs
// batch=B on one core, equality-checked, reporting sim-seconds simulated
// per wall-second — the number the SoA/simd batching is meant to move.
//
// Flags: --jobs=N (parallel worker count, default hardware concurrency),
//        --runner-sessions=N (matrix size, default 64),
//        --runner-duration=S (simulated seconds per session, default 30),
//        --batch=B (lockstep batch size for the sweep, default 16),
//        --simd=scalar|avx2|auto (force the kernel dispatch level),
//        --json=PATH (default BENCH_runner.json; "-" disables),
//        --hotpath-json=PATH (default BENCH_hotpath.json; "-" disables),
//        --smoke (skip the google-benchmark loop, shrink the matrix),
//        plus any --benchmark_* flag google-benchmark accepts.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "cc/gcc.h"
#include "codec/abr_rate_control.h"
#include "codec/cbr_rate_control.h"
#include "codec/encoder.h"
#include "common.h"
#include "core/adaptive_rate_control.h"
#include "obs/metrics_registry.h"
#include "obs/sketch.h"
#include "obs/stage_timer.h"
#include "rtc/session.h"
#include "runner/control_loop.h"
#include "runner/parallel_runner.h"
#include "sim/event_loop.h"
#include "simd/dispatch.h"
#include "util/alloc_probe.h"
#include "util/byteio.h"
#include "util/flags.h"
#include "util/table.h"
#include "video/video_source.h"

namespace rave {
namespace {

video::RawFrame MakeFrame() {
  video::RawFrame f;
  f.spatial_complexity = 1.0;
  f.temporal_complexity = 0.5;
  return f;
}

void BM_RdModelActualBits(benchmark::State& state) {
  codec::RdModel model({}, Rng(1));
  const video::RawFrame frame = MakeFrame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ActualBits(codec::FrameType::kDelta, frame, 5.0));
  }
}
BENCHMARK(BM_RdModelActualBits);

template <typename Rc>
std::unique_ptr<codec::RateControl> MakeRc();

template <>
std::unique_ptr<codec::RateControl> MakeRc<codec::AbrRateControl>() {
  return std::make_unique<codec::AbrRateControl>(codec::AbrConfig{});
}
template <>
std::unique_ptr<codec::RateControl> MakeRc<codec::CbrRateControl>() {
  return std::make_unique<codec::CbrRateControl>(codec::CbrConfig{});
}
template <>
std::unique_ptr<codec::RateControl> MakeRc<core::AdaptiveRateControl>() {
  return std::make_unique<core::AdaptiveRateControl>(core::AdaptiveConfig{});
}

template <typename Rc>
void BM_PerFrameDecision(benchmark::State& state) {
  auto rc = MakeRc<Rc>();
  const video::RawFrame frame = MakeFrame();
  Timestamp now = Timestamp::Zero();
  codec::FrameOutcome outcome;
  outcome.type = codec::FrameType::kDelta;
  outcome.qp = 28.0;
  outcome.qscale = codec::QpToQscale(28.0);
  outcome.size = DataSize::Bits(50'000);
  outcome.complexity_term = 1280.0 * 720.0 * 0.5;
  for (auto _ : state) {
    now += TimeDelta::Millis(33);
    const codec::FrameGuidance g =
        rc->PlanFrame(frame, codec::FrameType::kDelta, now);
    benchmark::DoNotOptimize(g);
    rc->OnFrameEncoded(outcome, now);
  }
}
BENCHMARK(BM_PerFrameDecision<codec::AbrRateControl>)
    ->Name("BM_PerFrameDecision/x264-abr");
BENCHMARK(BM_PerFrameDecision<codec::CbrRateControl>)
    ->Name("BM_PerFrameDecision/x264-cbr");
BENCHMARK(BM_PerFrameDecision<core::AdaptiveRateControl>)
    ->Name("BM_PerFrameDecision/rave-adaptive");

void BM_AdaptiveNetworkUpdate(benchmark::State& state) {
  core::AdaptiveRateControl rc(core::AdaptiveConfig{});
  core::NetworkObservation obs;
  obs.target = DataRate::KilobitsPerSec(1200);
  obs.acked_rate = DataRate::KilobitsPerSec(1100);
  obs.rtt = TimeDelta::Millis(50);
  obs.pacer_queue = DataSize::Bits(40'000);
  obs.in_flight = DataSize::Bits(80'000);
  for (auto _ : state) {
    obs.at += TimeDelta::Millis(50);
    rc.OnNetworkUpdate(obs);
    benchmark::DoNotOptimize(rc.network_state());
  }
}
BENCHMARK(BM_AdaptiveNetworkUpdate);

void BM_GccPerFeedback(benchmark::State& state) {
  cc::GccEstimator gcc;
  int64_t seq = 0;
  Timestamp now = Timestamp::Zero();
  for (auto _ : state) {
    std::vector<transport::PacketResult> results;
    results.reserve(8);
    for (int i = 0; i < 8; ++i) {
      transport::PacketResult r;
      r.seq = seq++;
      r.size = DataSize::Bits(9'600);
      r.send_time = now + TimeDelta::Millis(6 * i);
      r.arrival = r.send_time + TimeDelta::Millis(30);
      results.push_back(r);
    }
    now += TimeDelta::Millis(50);
    gcc.OnPacketResults(results, now);
    benchmark::DoNotOptimize(gcc.target());
  }
}
BENCHMARK(BM_GccPerFeedback);

void BM_FullEncodeLoop(benchmark::State& state) {
  codec::EncoderConfig config;
  codec::Encoder encoder(
      config, std::make_unique<core::AdaptiveRateControl>(
                  core::AdaptiveConfig{}));
  video::VideoSource source({});
  Timestamp now = Timestamp::Zero();
  for (auto _ : state) {
    now += TimeDelta::Millis(33);
    benchmark::DoNotOptimize(
        encoder.EncodeFrame(source.CaptureFrame(now), now));
  }
}
BENCHMARK(BM_FullEncodeLoop);

// Event-loop hot paths: schedule/run churn (the per-packet pattern) and the
// cancel-heavy pattern (retransmission timers armed and disarmed without
// ever firing). Before the O(1) tombstone lookup the second benchmark was
// quadratic in the pending-event count.
void BM_EventLoopScheduleRun(benchmark::State& state) {
  const int64_t batch = state.range(0);
  EventLoop loop;
  loop.Reserve(static_cast<size_t>(batch));
  int64_t sink = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < batch; ++i) {
      loop.Schedule(TimeDelta::Micros(i % 97), [&sink] { ++sink; });
    }
    loop.RunAll();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(256)->Arg(4096);

void BM_EventLoopScheduleCancel(benchmark::State& state) {
  const int64_t batch = state.range(0);
  EventLoop loop;
  loop.Reserve(static_cast<size_t>(batch));
  std::vector<EventHandle> handles;
  handles.reserve(static_cast<size_t>(batch));
  int64_t sink = 0;
  for (auto _ : state) {
    handles.clear();
    for (int64_t i = 0; i < batch; ++i) {
      handles.push_back(
          loop.Schedule(TimeDelta::Micros(100 + i % 97), [&sink] { ++sink; }));
    }
    // Cancel every other event, then drain: half run, half are tombstones
    // the pop path must skip.
    for (size_t i = 0; i < handles.size(); i += 2) loop.Cancel(handles[i]);
    loop.RunAll();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventLoopScheduleCancel)->Arg(256)->Arg(4096);

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- hot-path section -------------------------------------------------

struct HotpathStats {
  double schedule_run_events_per_s = 0;
  double schedule_cancel_events_per_s = 0;
  double allocs_per_event = 0;
  double allocs_per_frame = 0;
  bool alloc_probe = false;
};

/// Manual (non-google-benchmark) timing of the event-loop hot paths plus the
/// steady-state allocation rates the zero-allocation design promises. The
/// allocation figures use a long-minus-short delta so construction and
/// warm-up costs cancel; they read 0 when the build lacks RAVE_ALLOC_PROBE.
HotpathStats MeasureHotpath(bool smoke) {
  HotpathStats stats;
  stats.alloc_probe = AllocProbeEnabled();
  const int64_t batch = 4096;
  const int rounds = smoke ? 50 : 500;

  {
    EventLoop loop;
    loop.Reserve(static_cast<size_t>(batch));
    int64_t sink = 0;
    auto cycle = [&] {
      for (int64_t i = 0; i < batch; ++i) {
        loop.Schedule(TimeDelta::Micros(i % 97), [&sink] { ++sink; });
      }
      loop.RunAll();
    };
    cycle();  // warm-up
    const auto start = std::chrono::steady_clock::now();
    AllocScope scope;
    for (int r = 0; r < rounds; ++r) cycle();
    const double events = static_cast<double>(rounds) * batch;
    stats.schedule_run_events_per_s = events / WallSeconds(start);
    stats.allocs_per_event = static_cast<double>(scope.allocs()) / events;
  }
  {
    EventLoop loop;
    loop.Reserve(static_cast<size_t>(batch));
    std::vector<EventHandle> handles;
    handles.reserve(static_cast<size_t>(batch));
    int64_t sink = 0;
    auto cycle = [&] {
      handles.clear();
      for (int64_t i = 0; i < batch; ++i) {
        handles.push_back(loop.Schedule(TimeDelta::Micros(100 + i % 97),
                                        [&sink] { ++sink; }));
      }
      for (size_t i = 0; i < handles.size(); i += 2) loop.Cancel(handles[i]);
      loop.RunAll();
    };
    cycle();  // warm-up
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) cycle();
    stats.schedule_cancel_events_per_s =
        static_cast<double>(rounds) * batch / WallSeconds(start);
  }
  if (stats.alloc_probe) {
    auto session_allocs = [](double seconds) {
      rtc::SessionConfig config;
      config.duration = TimeDelta::SecondsF(seconds);
      AllocScope scope;
      const rtc::SessionResult result = rtc::RunSession(config);
      return std::pair<uint64_t, size_t>(scope.allocs(), result.frames.size());
    };
    const auto [short_allocs, short_frames] =
        session_allocs(smoke ? 3.0 : 5.0);
    const auto [long_allocs, long_frames] = session_allocs(smoke ? 6.0 : 10.0);
    if (long_allocs > short_allocs && long_frames > short_frames) {
      stats.allocs_per_frame = static_cast<double>(long_allocs - short_allocs) /
                               static_cast<double>(long_frames - short_frames);
    }
  }
  return stats;
}

// --- sketch-vs-vector aggregation -------------------------------------

struct AggregationStats {
  /// Sessions folded into the cross-session aggregate per second.
  double sketch_sessions_per_s = 0;
  double vector_sessions_per_s = 0;
  /// Bytes each path retains per session to answer percentile queries.
  double sketch_bytes_per_session = 0;
  double vector_bytes_per_session = 0;
  double samples_per_session = 0;
};

/// Cross-session latency aggregation, both candidate paths: merging the
/// per-session quantile sketches (what the suite does now — O(sketch)
/// memory) vs retaining every per-frame latency vector and selecting exact
/// order statistics (the old path — O(total frames) memory). Each round
/// aggregates the same simulated sessions and answers the p50/p95/p99
/// ladder, so the throughput numbers compare like for like.
AggregationStats MeasureAggregation(bool smoke) {
  AggregationStats stats;
  const int sessions = 8;
  const double severities[] = {0.3, 0.5, 0.7};
  std::vector<rtc::SessionResult> results;
  results.reserve(static_cast<size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    results.push_back(rtc::RunSession(bench::DefaultConfig(
        rtc::Scheme::kAdaptive,
        bench::DropTrace(severities[static_cast<size_t>(i) % 3]),
        video::ContentClass::kTalkingHead,
        TimeDelta::SecondsF(smoke ? 6.0 : 15.0),
        static_cast<uint64_t>(i) + 1)));
  }

  std::vector<const obs::QuantileSketch*> sketches;
  std::vector<std::vector<double>> vectors;
  uint64_t total_samples = 0;
  uint64_t sketch_bytes = 0;
  for (const rtc::SessionResult& r : results) {
    const obs::QuantileSketch* s = bench::LatencySketch(r);
    if (s == nullptr) continue;
    sketches.push_back(s);
    vectors.push_back(bench::FrameLatenciesMs(r));
    total_samples += vectors.back().size();
    ByteWriter w;
    s->Encode(w);
    sketch_bytes += w.bytes().size();
  }
  if (sketches.empty()) return stats;
  stats.samples_per_session =
      static_cast<double>(total_samples) / static_cast<double>(sketches.size());
  stats.sketch_bytes_per_session =
      static_cast<double>(sketch_bytes) / static_cast<double>(sketches.size());
  stats.vector_bytes_per_session =
      stats.samples_per_session * static_cast<double>(sizeof(double));

  const int rounds = smoke ? 200 : 2000;
  const double quantiles[] = {0.50, 0.95, 0.99};
  double sink = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
      obs::QuantileSketch merged;
      for (const obs::QuantileSketch* s : sketches) merged.Merge(*s);
      for (double q : quantiles) sink += merged.Quantile(q);
    }
    stats.sketch_sessions_per_s = static_cast<double>(rounds) *
                                  static_cast<double>(sketches.size()) /
                                  WallSeconds(start);
  }
  {
    std::vector<double> all;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
      all.clear();
      all.reserve(static_cast<size_t>(total_samples));
      for (const std::vector<double>& v : vectors) {
        all.insert(all.end(), v.begin(), v.end());
      }
      for (double q : quantiles) {
        const size_t k = std::min(
            all.size() - 1,
            static_cast<size_t>(q * static_cast<double>(all.size() - 1)));
        std::nth_element(all.begin(),
                         all.begin() + static_cast<std::ptrdiff_t>(k),
                         all.end());
        sink += all[k];
      }
    }
    stats.vector_sessions_per_s = static_cast<double>(rounds) *
                                  static_cast<double>(vectors.size()) /
                                  WallSeconds(start);
  }
  benchmark::DoNotOptimize(sink);
  return stats;
}

void RunHotpathSection(bool smoke, const std::string& json_path) {
  const HotpathStats stats = MeasureHotpath(smoke);
  const AggregationStats agg = MeasureAggregation(smoke);

  std::cout << "\nEvent-loop hot path (manual timing, batch=4096"
            << (stats.alloc_probe ? ", alloc probe on" : ", alloc probe OFF")
            << ")\n\n";
  Table table({"metric", "value"});
  table.AddRow()
      .Cell("schedule+fire (M events/s)")
      .Cell(stats.schedule_run_events_per_s / 1e6, 2);
  table.AddRow()
      .Cell("schedule+cancel+fire (M events/s)")
      .Cell(stats.schedule_cancel_events_per_s / 1e6, 2);
  table.AddRow()
      .Cell("allocations/event, steady state")
      .Cell(stats.allocs_per_event, 4);
  table.AddRow()
      .Cell("allocations/frame, steady state")
      .Cell(stats.allocs_per_frame, 2);
  table.Print(std::cout);

  std::cout << "\nCross-session latency aggregation ("
            << agg.samples_per_session << " samples/session): sketch merge "
               "vs exact vectors\n\n";
  Table agg_table({"path", "sessions/s", "bytes/session"});
  agg_table.AddRow()
      .Cell("sketch merge + quantile ladder")
      .Cell(agg.sketch_sessions_per_s, 0)
      .Cell(agg.sketch_bytes_per_session, 0);
  agg_table.AddRow()
      .Cell("vector concat + nth_element")
      .Cell(agg.vector_sessions_per_s, 0)
      .Cell(agg.vector_bytes_per_session, 0);
  agg_table.Print(std::cout);

  if (json_path != "-") {
    std::ofstream json(json_path);
    json << "{\n"
         << "  \"alloc_probe\": " << (stats.alloc_probe ? "true" : "false")
         << ",\n"
         << "  \"schedule_run_events_per_s\": "
         << stats.schedule_run_events_per_s << ",\n"
         << "  \"schedule_cancel_events_per_s\": "
         << stats.schedule_cancel_events_per_s << ",\n"
         << "  \"allocs_per_event\": " << stats.allocs_per_event << ",\n"
         << "  \"allocs_per_frame\": " << stats.allocs_per_frame << ",\n"
         << "  \"sketch_agg_sessions_per_s\": " << agg.sketch_sessions_per_s
         << ",\n"
         << "  \"vector_agg_sessions_per_s\": " << agg.vector_sessions_per_s
         << ",\n"
         << "  \"sketch_bytes_per_session\": " << agg.sketch_bytes_per_session
         << ",\n"
         << "  \"vector_bytes_per_session\": " << agg.vector_bytes_per_session
         << ",\n"
         << "  \"agg_samples_per_session\": " << agg.samples_per_session
         << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
}

// --- throughput section -----------------------------------------------

/// Deterministic session matrix for the throughput measurement: cycles
/// schemes x severities x seeds so the mix resembles a real sweep.
std::vector<rtc::SessionConfig> ThroughputMatrix(int sessions,
                                                 TimeDelta duration) {
  const rtc::Scheme schemes[] = {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive,
                                 rtc::Scheme::kSalsify};
  const double severities[] = {0.3, 0.5, 0.7};
  std::vector<rtc::SessionConfig> configs;
  configs.reserve(static_cast<size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    configs.push_back(bench::DefaultConfig(
        schemes[static_cast<size_t>(i) % std::size(schemes)],
        bench::DropTrace(severities[static_cast<size_t>(i) % std::size(severities)]),
        video::ContentClass::kTalkingHead, duration,
        /*seed=*/static_cast<uint64_t>(i) + 1));
  }
  return configs;
}

bool SameResults(const std::vector<rtc::SessionResult>& a,
                 const std::vector<rtc::SessionResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].scheme_name != b[i].scheme_name ||
        a[i].frames.size() != b[i].frames.size() ||
        a[i].events_executed != b[i].events_executed ||
        a[i].summary.latency_mean_ms != b[i].summary.latency_mean_ms ||
        a[i].summary.encoded_ssim_mean != b[i].summary.encoded_ssim_mean ||
        a[i].link_stats.packets_delivered != b[i].link_stats.packets_delivered) {
      return false;
    }
  }
  return true;
}

// --- lockstep batch sweep ---------------------------------------------

/// The per-frame control-loop hot path (see runner/control_loop.h) over the
/// fig2-style matrix: the drop-trace suite x every content class. This is
/// the distilled math the SoA/simd batching targets — rate control, R-D
/// model, trendline — without the event-loop/transport machinery around it.
runner::ControlLoopConfig ControlSweepConfig(TimeDelta duration) {
  runner::ControlLoopConfig config;
  config.duration = duration;
  uint64_t seed = 0;
  for (const auto& [name, trace] : bench::TraceSuite(duration)) {
    for (video::ContentClass content : video::kAllContentClasses) {
      config.lanes.push_back({content, ++seed, trace});
    }
  }
  return config;
}

struct ControlSweep {
  size_t lanes = 0;
  double sim_seconds = 0;
  double scalar_wall_s = 0;
  double batched_wall_s = 0;
  bool identical = false;
};

ControlSweep MeasureControlSweep(TimeDelta duration, int batch) {
  ControlSweep sweep;
  const runner::ControlLoopConfig config = ControlSweepConfig(duration);
  sweep.lanes = config.lanes.size();
  sweep.sim_seconds = static_cast<double>(sweep.lanes) * duration.seconds();

  auto scalar_start = std::chrono::steady_clock::now();
  const auto scalar = runner::RunControlLoop(config, /*batch=*/1);
  sweep.scalar_wall_s = WallSeconds(scalar_start);

  auto batched_start = std::chrono::steady_clock::now();
  const auto batched = runner::RunControlLoop(config, batch);
  sweep.batched_wall_s = WallSeconds(batched_start);

  sweep.identical = scalar == batched;
  return sweep;
}

// --- per-stage breakdown ----------------------------------------------

/// Wall-clock attribution of a jobs=1 run of `configs` to the hot-path
/// stages (obs/stage_timer.h): rate control, R-D math, trendline estimator,
/// and the transport split per hop (pacer, link, feedback+NACK, assembler);
/// the remainder is event-loop machinery and everything else. Runs as a
/// dedicated instrumented pass so the Scope overhead never pollutes the
/// speedup numbers.
struct StageBreakdown {
  double wall_s = 0;
  double control_s = 0;
  double rd_s = 0;
  double trendline_s = 0;
  double pacer_s = 0;
  double link_s = 0;
  double feedback_nack_s = 0;
  double assembler_s = 0;
  /// The former monolithic transport bucket, kept for trajectory continuity.
  double transport_s() const {
    return pacer_s + link_s + feedback_nack_s + assembler_s;
  }
  double other_s() const {
    return std::max(0.0,
                    wall_s - control_s - rd_s - trendline_s - transport_s());
  }
};

StageBreakdown MeasureStageBreakdown(
    const std::vector<rtc::SessionConfig>& configs, int batch) {
  obs::StageTimer::Enable(true);
  obs::StageTimer::Reset();
  const auto start = std::chrono::steady_clock::now();
  runner::RunSessions(configs, /*jobs=*/1, /*cache=*/nullptr, batch);
  StageBreakdown b;
  b.wall_s = WallSeconds(start);
  b.control_s = obs::StageTimer::Seconds(obs::StageTimer::kControl);
  b.rd_s = obs::StageTimer::Seconds(obs::StageTimer::kRd);
  b.trendline_s = obs::StageTimer::Seconds(obs::StageTimer::kTrendline);
  b.pacer_s = obs::StageTimer::Seconds(obs::StageTimer::kPacer);
  b.link_s = obs::StageTimer::Seconds(obs::StageTimer::kLink);
  b.feedback_nack_s = obs::StageTimer::Seconds(obs::StageTimer::kFeedbackNack);
  b.assembler_s = obs::StageTimer::Seconds(obs::StageTimer::kAssembler);
  obs::StageTimer::Enable(false);
  return b;
}

void PrintBreakdownRow(Table& table, const char* stage, double serial_s,
                       double serial_wall, double batched_s,
                       double batched_wall) {
  table.AddRow()
      .Cell(stage)
      .Cell(serial_s, 3)
      .Cell(100.0 * serial_s / serial_wall, 1)
      .Cell(batched_s, 3)
      .Cell(100.0 * batched_s / batched_wall, 1);
}

int RunThroughputSection(int sessions, TimeDelta duration, int jobs,
                         int batch, const std::string& json_path) {
  const auto configs = ThroughputMatrix(sessions, duration);

  // Reset the process-wide runtime roll-up so the dispatched-event count
  // (and the train-amortization factor derived from it) covers exactly the
  // serial pass.
  obs::RuntimeStats::Instance().Reset();
  const auto serial_start = std::chrono::steady_clock::now();
  const auto serial = runner::RunSessions(configs, /*jobs=*/1);
  const double serial_s = WallSeconds(serial_start);
  const uint64_t dispatched =
      obs::RuntimeStats::Instance().total_events_dispatched();

  const int parallel_jobs = jobs > 0 ? jobs : runner::DefaultJobs();
  const auto parallel_start = std::chrono::steady_clock::now();
  const auto parallel = runner::RunSessions(configs, parallel_jobs);
  const double parallel_s = WallSeconds(parallel_start);

  // Lockstep batched full sessions on one core, against the serial run.
  const auto batched_start = std::chrono::steady_clock::now();
  const auto batched =
      runner::RunSessions(configs, /*jobs=*/1, /*cache=*/nullptr, batch);
  const double batched_s = WallSeconds(batched_start);
  const bool batch_identical = SameResults(serial, batched);

  const ControlSweep control = MeasureControlSweep(duration, batch);

  // Instrumented passes (separate from the timed runs above): where does a
  // serial session's wall time go, and how does the batched path shift it?
  const StageBreakdown stage_serial = MeasureStageBreakdown(configs, 1);
  const StageBreakdown stage_batched = MeasureStageBreakdown(configs, batch);

  const uint64_t events = std::accumulate(
      serial.begin(), serial.end(), uint64_t{0},
      [](uint64_t sum, const rtc::SessionResult& r) {
        return sum + r.events_executed;
      });

  const bool identical = SameResults(serial, parallel);
  const double serial_sps = sessions / serial_s;
  const double parallel_sps = sessions / parallel_s;

  std::cout << "\nSimulator throughput (" << sessions << " sessions x "
            << duration.seconds() << " s simulated, jobs=" << parallel_jobs
            << ")\n\n";
  Table table({"mode", "wall(s)", "sessions/s", "events/s", "speedup"});
  table.AddRow()
      .Cell("serial")
      .Cell(serial_s, 3)
      .Cell(serial_sps, 1)
      .Cell(static_cast<double>(events) / serial_s, 0)
      .Cell(1.0, 2);
  table.AddRow()
      .Cell("parallel")
      .Cell(parallel_s, 3)
      .Cell(parallel_sps, 1)
      .Cell(static_cast<double>(events) / parallel_s, 0)
      .Cell(serial_s / parallel_s, 2);
  table.Print(std::cout);
  std::cout << "parallel results bit-identical to serial: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";
  if (dispatched > 0) {
    std::cout << "event coalescing: " << events << " logical events in "
              << dispatched << " dispatches ("
              << static_cast<double>(events) / static_cast<double>(dispatched)
              << "x train amortization)\n";
  }

  // Batch sweep: sim-seconds simulated per wall-second on ONE core, the
  // number the SoA/simd batching moves. Full sessions batch the whole
  // event-driven pipeline; the control-loop rows isolate the per-frame math
  // the kernels vectorize.
  const double session_sim_s = static_cast<double>(sessions) * duration.seconds();
  std::cout << "\nLockstep batch sweep (batch=" << batch << ", jobs=1, simd="
            << simd::ToString(simd::ActiveLevel()) << ")\n\n";
  Table sweep_table({"workload", "wall(s)", "sim-s/s per core", "speedup"});
  sweep_table.AddRow()
      .Cell("sessions batch=1")
      .Cell(serial_s, 3)
      .Cell(session_sim_s / serial_s, 0)
      .Cell(1.0, 2);
  sweep_table.AddRow()
      .Cell("sessions batch=" + std::to_string(batch))
      .Cell(batched_s, 3)
      .Cell(session_sim_s / batched_s, 0)
      .Cell(serial_s / batched_s, 2);
  sweep_table.AddRow()
      .Cell("control-loop batch=1")
      .Cell(control.scalar_wall_s, 3)
      .Cell(control.sim_seconds / control.scalar_wall_s, 0)
      .Cell(1.0, 2);
  sweep_table.AddRow()
      .Cell("control-loop batch=" + std::to_string(batch))
      .Cell(control.batched_wall_s, 3)
      .Cell(control.sim_seconds / control.batched_wall_s, 0)
      .Cell(control.scalar_wall_s / control.batched_wall_s, 2);
  sweep_table.Print(std::cout);
  std::cout << "batched session results bit-identical to serial: "
            << (batch_identical ? "yes" : "NO — DETERMINISM VIOLATION")
            << "\n"
            << "batched control-loop trajectories bit-identical to scalar: "
            << (control.identical ? "yes" : "NO — DETERMINISM VIOLATION")
            << "\n";

  // Per-stage attribution (instrumented pass; walls here include the Scope
  // overhead and are not comparable to the speedup rows above).
  std::cout << "\nPer-stage wall attribution (jobs=1, instrumented pass)\n\n";
  Table stage_table({"stage", "batch=1 (s)", "%",
                     "batch=" + std::to_string(batch) + " (s)", "%"});
  PrintBreakdownRow(stage_table, "rate control", stage_serial.control_s,
                    stage_serial.wall_s, stage_batched.control_s,
                    stage_batched.wall_s);
  PrintBreakdownRow(stage_table, "R-D math", stage_serial.rd_s,
                    stage_serial.wall_s, stage_batched.rd_s,
                    stage_batched.wall_s);
  PrintBreakdownRow(stage_table, "trendline/GCC", stage_serial.trendline_s,
                    stage_serial.wall_s, stage_batched.trendline_s,
                    stage_batched.wall_s);
  PrintBreakdownRow(stage_table, "pacer+send", stage_serial.pacer_s,
                    stage_serial.wall_s, stage_batched.pacer_s,
                    stage_batched.wall_s);
  PrintBreakdownRow(stage_table, "link", stage_serial.link_s,
                    stage_serial.wall_s, stage_batched.link_s,
                    stage_batched.wall_s);
  PrintBreakdownRow(stage_table, "feedback+nack", stage_serial.feedback_nack_s,
                    stage_serial.wall_s, stage_batched.feedback_nack_s,
                    stage_batched.wall_s);
  PrintBreakdownRow(stage_table, "assembler", stage_serial.assembler_s,
                    stage_serial.wall_s, stage_batched.assembler_s,
                    stage_batched.wall_s);
  PrintBreakdownRow(stage_table, "event loop + other", stage_serial.other_s(),
                    stage_serial.wall_s, stage_batched.other_s(),
                    stage_batched.wall_s);
  stage_table.Print(std::cout);

  if (json_path != "-") {
    std::ofstream json(json_path);
    json << "{\n"
         << "  \"sessions\": " << sessions << ",\n"
         << "  \"session_duration_s\": " << duration.seconds() << ",\n"
         << "  \"jobs\": " << parallel_jobs << ",\n"
         << "  \"serial_wall_s\": " << serial_s << ",\n"
         << "  \"parallel_wall_s\": " << parallel_s << ",\n"
         << "  \"serial_sessions_per_s\": " << serial_sps << ",\n"
         << "  \"parallel_sessions_per_s\": " << parallel_sps << ",\n"
         << "  \"speedup\": " << serial_s / parallel_s << ",\n"
         << "  \"events_executed\": " << events << ",\n"
         << "  \"events_dispatched\": " << dispatched << ",\n"
         << "  \"train_amortization\": "
         << (dispatched > 0
                 ? static_cast<double>(events) / static_cast<double>(dispatched)
                 : 1.0)
         << ",\n"
         << "  \"serial_events_per_s\": "
         << static_cast<double>(events) / serial_s << ",\n"
         << "  \"parallel_identical\": " << (identical ? "true" : "false")
         << ",\n"
         << "  \"batch\": " << batch << ",\n"
         << "  \"simd\": \"" << simd::ToString(simd::ActiveLevel()) << "\",\n"
         << "  \"session_batched_wall_s\": " << batched_s << ",\n"
         << "  \"session_sim_s_per_s_batch1\": " << session_sim_s / serial_s
         << ",\n"
         << "  \"session_sim_s_per_s_batched\": " << session_sim_s / batched_s
         << ",\n"
         << "  \"session_batch_speedup\": " << serial_s / batched_s << ",\n"
         << "  \"session_batch_identical\": "
         << (batch_identical ? "true" : "false") << ",\n"
         << "  \"control_lanes\": " << control.lanes << ",\n"
         << "  \"control_sim_s_per_s_batch1\": "
         << control.sim_seconds / control.scalar_wall_s << ",\n"
         << "  \"control_sim_s_per_s_batched\": "
         << control.sim_seconds / control.batched_wall_s << ",\n"
         << "  \"control_batch_speedup\": "
         << control.scalar_wall_s / control.batched_wall_s << ",\n"
         << "  \"control_batch_identical\": "
         << (control.identical ? "true" : "false") << ",\n"
         << "  \"stage_serial_wall_s\": " << stage_serial.wall_s << ",\n"
         << "  \"stage_serial_control_s\": " << stage_serial.control_s << ",\n"
         << "  \"stage_serial_rd_s\": " << stage_serial.rd_s << ",\n"
         << "  \"stage_serial_trendline_s\": " << stage_serial.trendline_s
         << ",\n"
         << "  \"stage_serial_pacer_s\": " << stage_serial.pacer_s << ",\n"
         << "  \"stage_serial_link_s\": " << stage_serial.link_s << ",\n"
         << "  \"stage_serial_feedback_nack_s\": "
         << stage_serial.feedback_nack_s << ",\n"
         << "  \"stage_serial_assembler_s\": " << stage_serial.assembler_s
         << ",\n"
         << "  \"stage_serial_transport_s\": " << stage_serial.transport_s()
         << ",\n"
         << "  \"stage_serial_other_s\": " << stage_serial.other_s() << ",\n"
         << "  \"stage_batched_wall_s\": " << stage_batched.wall_s << ",\n"
         << "  \"stage_batched_control_s\": " << stage_batched.control_s
         << ",\n"
         << "  \"stage_batched_rd_s\": " << stage_batched.rd_s << ",\n"
         << "  \"stage_batched_trendline_s\": " << stage_batched.trendline_s
         << ",\n"
         << "  \"stage_batched_pacer_s\": " << stage_batched.pacer_s << ",\n"
         << "  \"stage_batched_link_s\": " << stage_batched.link_s << ",\n"
         << "  \"stage_batched_feedback_nack_s\": "
         << stage_batched.feedback_nack_s << ",\n"
         << "  \"stage_batched_assembler_s\": " << stage_batched.assembler_s
         << ",\n"
         << "  \"stage_batched_transport_s\": " << stage_batched.transport_s()
         << ",\n"
         << "  \"stage_batched_other_s\": " << stage_batched.other_s()
         << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return identical && batch_identical && control.identical ? 0 : 1;
}

}  // namespace
}  // namespace rave

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  try {
    const rave::Flags flags(argc - 1, argv + 1);
    for (const std::string& key :
         flags.UnknownKeys({"jobs", "runner-sessions", "runner-duration",
                            "json", "hotpath-json", "smoke", "batch",
                            "simd"})) {
      std::cerr << "error: unknown flag --" << key
                << "\nsee the header of bench/tab4_microbench.cpp\n";
      return 2;
    }
    const bool smoke = flags.GetBool("smoke", false);
    const int jobs = static_cast<int>(flags.GetInt("jobs", 0));
    const int sessions =
        static_cast<int>(flags.GetInt("runner-sessions", smoke ? 8 : 64));
    const rave::TimeDelta duration = rave::TimeDelta::SecondsF(
        flags.GetDouble("runner-duration", smoke ? 12.0 : 30.0));
    const int batch = static_cast<int>(flags.GetInt("batch", 16));
    const std::string simd_level = flags.GetString("simd", "");
    if (!simd_level.empty()) {
      rave::simd::Level level;
      if (!rave::simd::ParseLevel(simd_level.c_str(), &level)) {
        std::cerr << "error: bad --simd '" << simd_level
                  << "' (want scalar|avx2|auto|off)\n";
        return 2;
      }
      rave::simd::SetLevel(level);
    }
    const std::string json_path =
        flags.GetString("json", "BENCH_runner.json");
    const std::string hotpath_json_path =
        flags.GetString("hotpath-json", "BENCH_hotpath.json");

    if (!smoke) benchmark::RunSpecifiedBenchmarks();
    rave::RunHotpathSection(smoke, hotpath_json_path);
    return rave::RunThroughputSection(sessions, duration, jobs, batch,
                                      json_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
