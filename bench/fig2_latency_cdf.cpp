// Figure 2: CDF of per-frame end-to-end latency over the drop-trace suite
// (single drops, drop+recover, staircase, LTE-like random walks) x all
// content classes, for the baseline and the adaptive encoder.
//
// Prints the latency at fixed CDF percentiles for each scheme — the series a
// CDF plot would be drawn from — plus per-trace means.
#include <iostream>
#include <map>

#include "common.h"
#include "obs/sketch.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Fig2LatencyCdfMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const auto suite = bench::TraceSuite(duration);
  const auto wireless = bench::WirelessSuite(duration, options.wireless);

  std::vector<rtc::SessionConfig> configs;
  configs.reserve((suite.size() * std::size(video::kAllContentClasses) +
                   wireless.size()) *
                  2);
  for (const auto& [name, trace] : suite) {
    for (video::ContentClass content : video::kAllContentClasses) {
      for (rtc::Scheme scheme :
           {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
        configs.push_back(
            bench::DefaultConfig(scheme, trace, content, duration, 7));
      }
    }
  }
  // Wireless tier: every profile rides the same matrix (talking-head
  // content keeps the added cell count proportionate).
  for (const fault::WirelessProfile& profile : wireless) {
    for (rtc::Scheme scheme :
         {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
      rtc::SessionConfig config = bench::DefaultConfig(
          scheme, net::CapacityTrace::Constant(
                      DataRate::KilobitsPerSec(bench::kBaseRateKbps)),
          video::ContentClass::kTalkingHead, duration, 7);
      bench::ApplyWirelessProfile(config, profile);
      configs.push_back(std::move(config));
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  // Per-scheme aggregation is a sketch merge: O(sketch) memory however many
  // sessions/frames the sweep covers, and the same percentiles (within the
  // sketch's documented 2.2% relative error) as the old exact vectors.
  std::map<rtc::Scheme, obs::QuantileSketch> latencies;
  Table per_trace({"trace", "content", "abr-mean(ms)", "adaptive-mean(ms)",
                   "reduction(%)"});

  size_t next = 0;
  for (const auto& [name, trace] : suite) {
    for (video::ContentClass content : video::kAllContentClasses) {
      double mean[2] = {0, 0};
      int i = 0;
      for (rtc::Scheme scheme :
           {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
        const rtc::SessionResult& result = results[next++];
        if (const obs::QuantileSketch* s = bench::LatencySketch(result)) {
          latencies[scheme].Merge(*s);
        }
        mean[i++] = result.summary.latency_mean_ms;
      }
      per_trace.AddRow()
          .Cell(name)
          .Cell(ToString(content))
          .Cell(mean[0], 1)
          .Cell(mean[1], 1)
          .Cell(bench::ReductionPercent(mean[0], mean[1]), 1);
    }
  }
  for (const fault::WirelessProfile& profile : wireless) {
    double mean[2] = {0, 0};
    int i = 0;
    for (rtc::Scheme scheme :
         {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
      const rtc::SessionResult& result = results[next++];
      if (const obs::QuantileSketch* s = bench::LatencySketch(result)) {
        latencies[scheme].Merge(*s);
      }
      mean[i++] = result.summary.latency_mean_ms;
    }
    per_trace.AddRow()
        .Cell("wl:" + profile.name)
        .Cell(ToString(video::ContentClass::kTalkingHead))
        .Cell(mean[0], 1)
        .Cell(mean[1], 1)
        .Cell(bench::ReductionPercent(mean[0], mean[1]), 1);
  }

  std::cout << "Fig 2: per-frame latency CDF over the drop-trace suite"
               " + wireless tier\n\n";
  Table cdf({"percentile", "x264-abr(ms)", "rave-adaptive(ms)"});
  for (double q : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    cdf.AddRow()
        .Cell(q, 3)
        .Cell(latencies[rtc::Scheme::kX264Abr].Quantile(q), 1)
        .Cell(latencies[rtc::Scheme::kAdaptive].Quantile(q), 1);
  }
  cdf.Print(std::cout);

  std::cout << "\nPer-trace means:\n";
  per_trace.Print(std::cout);
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Fig2LatencyCdfMain(argc, argv);
}
#endif
