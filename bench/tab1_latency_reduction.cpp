// Table 1 (headline): capture-to-display latency of the baseline vs the
// adaptive encoder across drop severities and content classes, averaged over
// seeds. The paper's abstract reports latency reductions of 28.66%-78.87%;
// this harness regenerates the corresponding sweep.
#include <iostream>

#include "common.h"
#include "registry.h"
#include "util/table.h"

using namespace rave;

int bench::Tab1LatencyReductionMain(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  const TimeDelta duration = options.DurationOr(TimeDelta::Seconds(40));
  const uint64_t seeds[] = {1, 2, 3};

  std::vector<rtc::SessionConfig> configs;
  configs.reserve(4 * std::size(video::kAllContentClasses) * 3 * 2);
  for (double severity : {0.2, 0.3, 0.5, 0.7}) {
    const Interned<net::CapacityTrace> drop_trace = bench::DropTrace(severity);
    for (video::ContentClass content : video::kAllContentClasses) {
      for (uint64_t seed : seeds) {
        for (rtc::Scheme scheme :
             {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive}) {
          configs.push_back(bench::DefaultConfig(scheme, drop_trace, content,
                                                 duration, seed));
        }
      }
    }
  }
  const auto results = bench::RunMatrix(configs, options.jobs);

  Table table({"severity", "content", "abr-mean(ms)", "adp-mean(ms)",
               "mean-red(%)", "abr-p95(ms)", "adp-p95(ms)", "p95-red(%)"});

  size_t next = 0;
  double min_red = 1e9;
  double max_red = -1e9;
  for (double severity : {0.2, 0.3, 0.5, 0.7}) {
    double sev_mean_red = 0.0;
    int cells = 0;
    for (video::ContentClass content : video::kAllContentClasses) {
      double mean[2] = {0, 0};
      double p95[2] = {0, 0};
      for ([[maybe_unused]] uint64_t seed : seeds) {
        for (int i = 0; i < 2; ++i) {
          const rtc::SessionResult& result = results[next++];
          mean[i] += result.summary.latency_mean_ms / std::size(seeds);
          p95[i] += result.summary.latency_p95_ms / std::size(seeds);
        }
      }
      const double red = bench::ReductionPercent(mean[0], mean[1]);
      min_red = std::min(min_red, red);
      max_red = std::max(max_red, red);
      sev_mean_red += red;
      ++cells;
      table.AddRow()
          .Cell(severity, 2)
          .Cell(ToString(content))
          .Cell(mean[0], 1)
          .Cell(mean[1], 1)
          .Cell(red, 1)
          .Cell(p95[0], 1)
          .Cell(p95[1], 1)
          .Cell(bench::ReductionPercent(p95[0], p95[1]), 1);
    }
    std::cout << "severity " << severity << ": mean reduction across content "
              << sev_mean_red / cells << "%\n";
  }

  std::cout << "\nTab 1: latency, x264-abr baseline vs rave-adaptive "
               "(2.5 Mbps link, drop at t=10s, 40 s sessions, 3 seeds)\n\n";
  table.Print(std::cout);
  std::cout << "\nmeasured mean-latency reduction band: [" << min_red << "%, "
            << max_red << "%]  (paper: 28.66% to 78.87%)\n";
  return 0;
}

#ifndef RAVE_SUITE_BUILD
int main(int argc, char** argv) {
  return rave::bench::Tab1LatencyReductionMain(argc, argv);
}
#endif
