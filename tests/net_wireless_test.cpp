// Wireless-tier generators (net/wireless.h) and the named profile registry
// (fault/wireless_profiles.h): deterministic traces, coalesced steps,
// ladder quantization, and validated construction.
#include "net/wireless.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "fault/wireless_profiles.h"

namespace rave::net {
namespace {

TEST(GilbertFadingTraceTest, DeterministicAndCoalesced) {
  GilbertFadingConfig config;
  const CapacityTrace a = GilbertFadingTrace(config, TimeDelta::Seconds(60));
  const CapacityTrace b = GilbertFadingTrace(config, TimeDelta::Seconds(60));
  ASSERT_EQ(a.steps().size(), b.steps().size());
  for (size_t i = 0; i < a.steps().size(); ++i) {
    EXPECT_EQ(a.steps()[i].start, b.steps()[i].start);
    EXPECT_EQ(a.steps()[i].rate, b.steps()[i].rate);
  }

  // Every step is one of the two channel states, the trace starts at t=0,
  // and consecutive same-rate steps are coalesced.
  ASSERT_FALSE(a.steps().empty());
  EXPECT_EQ(a.steps().front().start, Timestamp::Zero());
  for (size_t i = 0; i < a.steps().size(); ++i) {
    const DataRate rate = a.steps()[i].rate;
    EXPECT_TRUE(rate == config.good_rate || rate == config.bad_rate);
    if (i > 0) {
      EXPECT_NE(rate, a.steps()[i - 1].rate) << "uncoalesced step";
    }
  }

  // The chain actually fades: both states appear over a minute.
  const bool any_bad = std::any_of(
      a.steps().begin(), a.steps().end(),
      [&](const CapacityTrace::Step& s) { return s.rate == config.bad_rate; });
  EXPECT_TRUE(any_bad);

  GilbertFadingConfig reseeded = config;
  reseeded.seed ^= 0xDEAD;
  const CapacityTrace c = GilbertFadingTrace(reseeded, TimeDelta::Seconds(60));
  bool differs = a.steps().size() != c.steps().size();
  for (size_t i = 0; !differs && i < a.steps().size(); ++i) {
    differs = a.steps()[i].start != c.steps()[i].start ||
              a.steps()[i].rate != c.steps()[i].rate;
  }
  EXPECT_TRUE(differs) << "reseeding produced an identical fading schedule";
}

TEST(GilbertFadingTraceTest, RejectsNonPositiveStep) {
  GilbertFadingConfig config;
  config.step = TimeDelta::Zero();
  EXPECT_THROW(GilbertFadingTrace(config, TimeDelta::Seconds(10)),
               std::invalid_argument);
}

TEST(DutyCycleTraceTest, DegradedWindowLeadsEveryPeriod) {
  const DataRate nominal = DataRate::KilobitsPerSec(2500);
  const DataRate degraded = DataRate::KilobitsPerSec(700);
  const CapacityTrace trace = DutyCycleTrace(
      nominal, degraded, TimeDelta::Seconds(2), 0.25, TimeDelta::Seconds(10));
  // First duty * period of each period is degraded, the rest nominal.
  EXPECT_EQ(trace.RateAt(Timestamp::Millis(100)), degraded);
  EXPECT_EQ(trace.RateAt(Timestamp::Millis(499)), degraded);
  EXPECT_EQ(trace.RateAt(Timestamp::Millis(500)), nominal);
  EXPECT_EQ(trace.RateAt(Timestamp::Millis(1999)), nominal);
  EXPECT_EQ(trace.RateAt(Timestamp::Millis(2100)), degraded);
  EXPECT_EQ(trace.RateAt(Timestamp::Millis(2500)), nominal);
  EXPECT_EQ(trace.RateAt(Timestamp::Seconds(9)), nominal);
}

TEST(DutyCycleTraceTest, RejectsBadPeriodsAndDuty) {
  const DataRate r = DataRate::KilobitsPerSec(1000);
  EXPECT_THROW(
      DutyCycleTrace(r, r, TimeDelta::Zero(), 0.5, TimeDelta::Seconds(10)),
      std::invalid_argument);
  EXPECT_THROW(
      DutyCycleTrace(r, r, TimeDelta::Seconds(2), -0.1, TimeDelta::Seconds(10)),
      std::invalid_argument);
  EXPECT_THROW(
      DutyCycleTrace(r, r, TimeDelta::Seconds(2), 1.1, TimeDelta::Seconds(10)),
      std::invalid_argument);
}

TEST(FpvRadioTest, ScheduleStaysOnLadderAndIsDeterministic) {
  FpvRadioConfig config;
  const auto schedule = FpvModulationSchedule(config, TimeDelta::Seconds(120));
  ASSERT_FALSE(schedule.empty());
  EXPECT_EQ(schedule.front().start, Timestamp::Zero());
  for (size_t i = 0; i < schedule.size(); ++i) {
    const DataRate rate = schedule[i].rate;
    EXPECT_NE(std::find(config.ladder.begin(), config.ladder.end(), rate),
              config.ladder.end())
        << "rate " << rate.kbps() << " kbps is not a ladder rung";
    if (i > 0) {
      EXPECT_NE(rate, schedule[i - 1].rate) << "duplicate rung at entry " << i;
      EXPECT_GT(schedule[i].start, schedule[i - 1].start);
      // Decisions fall on the decision cadence.
      EXPECT_EQ(schedule[i].start.us() % config.decision_interval.us(), 0);
    }
  }
  // Over two minutes the radio must actually renegotiate.
  EXPECT_GT(schedule.size(), 1u);

  const auto again = FpvModulationSchedule(config, TimeDelta::Seconds(120));
  ASSERT_EQ(schedule.size(), again.size());
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].rate, again[i].rate);
  }

  // The trace view carries the same schedule.
  const CapacityTrace trace = FpvRadioTrace(config, TimeDelta::Seconds(120));
  ASSERT_EQ(trace.steps().size(), schedule.size());
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(trace.steps()[i].start, schedule[i].start);
    EXPECT_EQ(trace.steps()[i].rate, schedule[i].rate);
  }
}

TEST(WirelessProfilesTest, RegistryBuildsEveryProfileDeterministically) {
  const auto& names = fault::WirelessProfileNames();
  ASSERT_GE(names.size(), 4u) << "fig12 needs at least four named profiles";
  for (const std::string& name : names) {
    const fault::WirelessProfile a =
        fault::MakeWirelessProfile(name, TimeDelta::Seconds(40));
    const fault::WirelessProfile b =
        fault::MakeWirelessProfile(name, TimeDelta::Seconds(40));
    EXPECT_EQ(a.name, name);
    ASSERT_EQ(a.trace.steps().size(), b.trace.steps().size()) << name;
    for (size_t i = 0; i < a.trace.steps().size(); ++i) {
      EXPECT_EQ(a.trace.steps()[i].start, b.trace.steps()[i].start);
      EXPECT_EQ(a.trace.steps()[i].rate, b.trace.steps()[i].rate);
    }
    EXPECT_EQ(a.faults.ToString(), b.faults.ToString()) << name;
  }
}

TEST(WirelessProfilesTest, HandoverProfilesCarryAtomicCellMoves) {
  const auto profile =
      fault::MakeWirelessProfile("lte-handover", TimeDelta::Seconds(40));
  int handovers = 0;
  for (const fault::FaultEvent& e : profile.faults.events()) {
    if (e.kind == fault::FaultKind::kHandover) {
      ++handovers;
      EXPECT_GT(e.rate, DataRate::Zero());
      EXPECT_GT(e.propagation, TimeDelta::Zero());
      EXPECT_TRUE(e.loss.has_value());
      // Gaps stay below the circuit-breaker starvation threshold (400 ms):
      // a clean handover must not trip the breaker.
      EXPECT_LT(e.duration, TimeDelta::Millis(400));
    }
  }
  EXPECT_EQ(handovers, 2);

  const auto fpv =
      fault::MakeWirelessProfile("fpv-radio", TimeDelta::Seconds(40));
  int renegs = 0;
  for (const fault::FaultEvent& e : fpv.faults.events()) {
    if (e.kind == fault::FaultKind::kRenegotiate) ++renegs;
  }
  EXPECT_GT(renegs, 0);
}

TEST(WirelessProfilesTest, UnknownNameThrowsListingRegistry) {
  try {
    fault::MakeWirelessProfile("marsnet", TimeDelta::Seconds(10));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("marsnet"), std::string::npos) << what;
    for (const std::string& name : fault::WirelessProfileNames()) {
      EXPECT_NE(what.find(name), std::string::npos)
          << "registry listing is missing '" << name << "': " << what;
    }
  }
}

}  // namespace
}  // namespace rave::net
