#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rave {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleVarianceZero) {
  RunningStats s;
  s.Add(3.14);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
  EXPECT_DOUBLE_EQ(s.min(), 3.14);
  EXPECT_DOUBLE_EQ(s.max(), 3.14);
}

TEST(RunningStatsTest, Reset) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_TRUE(s.empty());
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSetTest, UnsortedInput) {
  SampleSet s;
  for (double x : {5.0, 1.0, 4.0, 2.0, 3.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  const auto sorted = s.Sorted();
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1], sorted[i]);
  }
}

TEST(SampleSetTest, EmptyReturnsZero) {
  SampleSet s;
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSetTest, AddAfterQuantileInvalidatesCache) {
  SampleSet s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Median(), 2.0);
  s.Add(100.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bin 0
  h.Add(9.99);  // bin 9
  h.Add(-5.0);  // clamped to bin 0
  h.Add(50.0);  // clamped to bin 9
  h.Add(5.0);   // bin 5
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(9), 2);
  EXPECT_EQ(h.bin_count(5), 1);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.GetOr(42.0), 42.0);
  e.Add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.Add(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
  EXPECT_NEAR(e.variance(), 0.0, 1e-9);
}

TEST(EwmaTest, StepResponse) {
  Ewma e(0.5);
  e.Add(0.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(EwmaTest, Reset) {
  Ewma e(0.5);
  e.Add(3.0);
  e.Reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.GetOr(-1.0), -1.0);
}

}  // namespace
}  // namespace rave
