#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rave {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.Uniform(-3.5, 2.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 2.25);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo |= (x == 3);
    saw_hi |= (x == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 100'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanAndPositivity) {
  Rng rng(13);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(0.5);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent1(23);
  Rng parent2(23);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  // Same parent state -> same child stream.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.Next(), child2.Next());
  // Child and parent streams diverge.
  Rng parent3(23);
  Rng child3 = parent3.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent3.Next() == child3.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace rave
