#include "cc/trendline.h"

#include <gtest/gtest.h>

namespace rave::cc {
namespace {

// Feeds deltas with a constant per-group one-way-delay slope (ms per group).
BandwidthUsage FeedSlope(TrendlineEstimator& est, double slope_ms,
                         int groups, Timestamp start = Timestamp::Zero()) {
  BandwidthUsage usage = BandwidthUsage::kNormal;
  for (int i = 0; i < groups; ++i) {
    InterArrivalDelta delta;
    delta.send_delta = TimeDelta::Millis(10);
    delta.arrival_delta =
        TimeDelta::Millis(10) + TimeDelta::SecondsF(slope_ms / 1e3);
    delta.arrival = start + TimeDelta::Millis(10 * (i + 1)) +
                    TimeDelta::SecondsF(slope_ms * i / 1e3);
    usage = est.OnDelta(delta);
  }
  return usage;
}

TEST(TrendlineTest, FlatDelayIsNormal) {
  TrendlineEstimator est;
  EXPECT_EQ(FeedSlope(est, 0.0, 100), BandwidthUsage::kNormal);
}

TEST(TrendlineTest, GrowingQueueDetectsOveruse) {
  TrendlineEstimator est;
  // Sustained +4 ms delay growth per 10 ms group = strong over-use.
  EXPECT_EQ(FeedSlope(est, 4.0, 100), BandwidthUsage::kOverusing);
}

TEST(TrendlineTest, DrainingQueueDetectsUnderuse) {
  TrendlineEstimator est;
  FeedSlope(est, 4.0, 60);
  EXPECT_EQ(FeedSlope(est, -4.0, 60,
                      Timestamp::Seconds(10)),
            BandwidthUsage::kUnderusing);
}

TEST(TrendlineTest, ReturnsToNormalAfterFlattening) {
  TrendlineEstimator est;
  FeedSlope(est, 4.0, 60);
  const BandwidthUsage usage =
      FeedSlope(est, 0.0, 100, Timestamp::Seconds(20));
  EXPECT_EQ(usage, BandwidthUsage::kNormal);
}

TEST(TrendlineTest, SmallJitterDoesNotTrigger) {
  TrendlineEstimator est;
  // Alternating +-1 ms jitter has no trend.
  BandwidthUsage usage = BandwidthUsage::kNormal;
  for (int i = 0; i < 200; ++i) {
    InterArrivalDelta delta;
    delta.send_delta = TimeDelta::Millis(10);
    delta.arrival_delta =
        TimeDelta::Millis(10) + TimeDelta::Millis(i % 2 == 0 ? 1 : -1);
    delta.arrival = Timestamp::Millis(10 * (i + 1));
    usage = est.OnDelta(delta);
  }
  EXPECT_EQ(usage, BandwidthUsage::kNormal);
}

TEST(TrendlineTest, OveruseNeedsPersistence) {
  TrendlineEstimator est;
  // A couple of growing groups are not enough (overuse_time_threshold).
  FeedSlope(est, 0.0, 30);
  InterArrivalDelta delta;
  delta.send_delta = TimeDelta::Millis(10);
  delta.arrival_delta = TimeDelta::Millis(14);
  delta.arrival = Timestamp::Seconds(1);
  EXPECT_NE(est.OnDelta(delta), BandwidthUsage::kOverusing);
}

TEST(TrendlineTest, ThresholdAdaptsWithinBounds) {
  TrendlineEstimator est;
  FeedSlope(est, 2.0, 500);
  EXPECT_GE(est.threshold(), 6.0);
  EXPECT_LE(est.threshold(), 600.0);
}

TEST(TrendlineTest, ModifiedTrendSignMatchesSlope) {
  TrendlineEstimator up;
  FeedSlope(up, 3.0, 60);
  EXPECT_GT(up.modified_trend(), 0.0);
  TrendlineEstimator down;
  FeedSlope(down, 3.0, 40);
  FeedSlope(down, -3.0, 40, Timestamp::Seconds(5));
  EXPECT_LT(down.modified_trend(), 0.0);
}

}  // namespace
}  // namespace rave::cc
