#include "codec/encoder.h"

#include <gtest/gtest.h>

#include <memory>

#include "video/video_source.h"

namespace rave::codec {
namespace {

// Scripted rate control so encoder behaviour can be tested in isolation.
class ScriptedRateControl : public RateControl {
 public:
  FrameGuidance next;
  std::vector<FrameOutcome> outcomes;
  DataRate target = DataRate::KilobitsPerSec(1000);

  void SetTargetRate(DataRate t) override { target = t; }
  FrameGuidance PlanFrame(const video::RawFrame&, FrameType,
                          Timestamp) override {
    return next;
  }
  void OnFrameEncoded(const FrameOutcome& outcome, Timestamp) override {
    outcomes.push_back(outcome);
  }
  std::string name() const override { return "scripted"; }
  DataRate current_target() const override { return target; }
};

video::RawFrame MakeFrame(int64_t id, bool scene_change = false) {
  video::RawFrame f;
  f.frame_id = id;
  f.capture_time = Timestamp::Millis(id * 33);
  f.spatial_complexity = 1.0;
  f.temporal_complexity = 0.5;
  f.scene_change = scene_change;
  return f;
}

struct EncoderFixture {
  EncoderFixture() {
    auto owned = std::make_unique<ScriptedRateControl>();
    rc = owned.get();
    rc->next.qp = 28.0;
    EncoderConfig config;
    config.fps = 30.0;
    config.seed = 3;
    encoder = std::make_unique<Encoder>(config, std::move(owned));
  }
  ScriptedRateControl* rc = nullptr;
  std::unique_ptr<Encoder> encoder;
};

TEST(EncoderTest, FirstFrameIsKeyframe) {
  EncoderFixture fx;
  const EncodedFrame f =
      fx.encoder->EncodeFrame(MakeFrame(0), Timestamp::Zero());
  EXPECT_EQ(f.type, FrameType::kKey);
  const EncodedFrame g =
      fx.encoder->EncodeFrame(MakeFrame(1), Timestamp::Millis(33));
  EXPECT_EQ(g.type, FrameType::kDelta);
}

TEST(EncoderTest, SceneChangeForcesKeyframe) {
  EncoderFixture fx;
  fx.encoder->EncodeFrame(MakeFrame(0), Timestamp::Zero());
  const EncodedFrame f = fx.encoder->EncodeFrame(
      MakeFrame(1, /*scene_change=*/true), Timestamp::Millis(33));
  EXPECT_EQ(f.type, FrameType::kKey);
}

TEST(EncoderTest, KeyframeRequestHonoredAfterMinInterval) {
  EncoderFixture fx;
  fx.encoder->EncodeFrame(MakeFrame(0), Timestamp::Zero());
  // Request right after the first keyframe: throttled (min interval 300ms).
  fx.encoder->RequestKeyFrame();
  const EncodedFrame f =
      fx.encoder->EncodeFrame(MakeFrame(1), Timestamp::Millis(33));
  EXPECT_EQ(f.type, FrameType::kDelta);
  // After the interval elapses the pending request fires.
  const EncodedFrame g =
      fx.encoder->EncodeFrame(MakeFrame(2), Timestamp::Millis(400));
  EXPECT_EQ(g.type, FrameType::kKey);
}

TEST(EncoderTest, PeriodicKeyframeInterval) {
  auto owned = std::make_unique<ScriptedRateControl>();
  owned->next.qp = 28.0;
  EncoderConfig config;
  config.fps = 30.0;
  config.keyframe_interval_frames = 10;
  Encoder encoder(config, std::move(owned));
  int keys = 0;
  for (int i = 0; i < 50; ++i) {
    const EncodedFrame f =
        encoder.EncodeFrame(MakeFrame(i), Timestamp::Millis(i * 33));
    if (f.type == FrameType::kKey) ++keys;
  }
  EXPECT_EQ(keys, 5);
}

TEST(EncoderTest, SkipProducesEmptyFrameAndInformsRateControl) {
  EncoderFixture fx;
  fx.encoder->EncodeFrame(MakeFrame(0), Timestamp::Zero());
  fx.rc->next.skip = true;
  const EncodedFrame f =
      fx.encoder->EncodeFrame(MakeFrame(1), Timestamp::Millis(33));
  EXPECT_TRUE(f.skipped);
  EXPECT_TRUE(f.size.IsZero());
  ASSERT_EQ(fx.rc->outcomes.size(), 2u);
  EXPECT_TRUE(fx.rc->outcomes[1].skipped);
}

TEST(EncoderTest, HardCapTriggersReencodes) {
  EncoderFixture fx;
  fx.encoder->EncodeFrame(MakeFrame(0), Timestamp::Zero());
  // Uncapped delta frame at QP 28 is ~35-45 kb; cap it to 15 kb.
  fx.rc->next.qp = 28.0;
  fx.rc->next.max_size = DataSize::Bits(15'000);
  const EncodedFrame f =
      fx.encoder->EncodeFrame(MakeFrame(1), Timestamp::Millis(33));
  EXPECT_GT(f.reencodes, 0);
  EXPECT_LE(f.size.bits(), static_cast<int64_t>(15'000 * 1.06));
  EXPECT_GT(f.qp, 28.0);  // had to quantize harder
}

TEST(EncoderTest, CapAlreadySatisfiedMeansNoReencode) {
  EncoderFixture fx;
  fx.encoder->EncodeFrame(MakeFrame(0), Timestamp::Zero());
  fx.rc->next.max_size = DataSize::Bits(10'000'000);
  const EncodedFrame f =
      fx.encoder->EncodeFrame(MakeFrame(1), Timestamp::Millis(33));
  EXPECT_EQ(f.reencodes, 0);
  EXPECT_DOUBLE_EQ(f.qp, 28.0);
}

TEST(EncoderTest, ReencodeCountBounded) {
  EncoderFixture fx;
  fx.encoder->EncodeFrame(MakeFrame(0), Timestamp::Zero());
  // Impossible cap: even max QP cannot reach it; encoder must give up after
  // max_reencodes attempts.
  fx.rc->next.max_size = DataSize::Bits(1);
  const EncodedFrame f =
      fx.encoder->EncodeFrame(MakeFrame(1), Timestamp::Millis(33));
  EXPECT_LE(f.reencodes, 3);
  EXPECT_NEAR(f.qp, kMaxQp, 0.5);
}

TEST(EncoderTest, QualityReflectsFinalQp) {
  EncoderFixture fx;
  fx.encoder->EncodeFrame(MakeFrame(0), Timestamp::Zero());
  fx.rc->next.qp = 20.0;
  const double ssim_lo_qp =
      fx.encoder->EncodeFrame(MakeFrame(1), Timestamp::Millis(33)).ssim;
  fx.rc->next.qp = 45.0;
  const double ssim_hi_qp =
      fx.encoder->EncodeFrame(MakeFrame(2), Timestamp::Millis(66)).ssim;
  EXPECT_GT(ssim_lo_qp, ssim_hi_qp);
}

TEST(EncoderTest, OutcomeCarriesComplexityTerm) {
  EncoderFixture fx;
  const video::RawFrame frame = MakeFrame(0);
  fx.encoder->EncodeFrame(frame, Timestamp::Zero());
  ASSERT_EQ(fx.rc->outcomes.size(), 1u);
  // First frame is a keyframe: complexity term uses spatial complexity.
  EXPECT_DOUBLE_EQ(fx.rc->outcomes[0].complexity_term,
                   1280.0 * 720.0 * frame.spatial_complexity);
}

TEST(EncoderTest, QpClampedToValidRange) {
  EncoderFixture fx;
  fx.rc->next.qp = 200.0;
  const EncodedFrame f =
      fx.encoder->EncodeFrame(MakeFrame(0), Timestamp::Zero());
  EXPECT_LE(f.qp, kMaxQp);
  fx.rc->next.qp = -10.0;
  const EncodedFrame g =
      fx.encoder->EncodeFrame(MakeFrame(1), Timestamp::Millis(33));
  EXPECT_GE(g.qp, kMinQp);
}

TEST(EncoderTest, DeterministicAcrossInstances) {
  auto run = [] {
    auto owned = std::make_unique<ScriptedRateControl>();
    owned->next.qp = 30.0;
    EncoderConfig config;
    config.seed = 17;
    Encoder encoder(config, std::move(owned));
    int64_t total = 0;
    for (int i = 0; i < 100; ++i) {
      total += encoder
                   .EncodeFrame(MakeFrame(i), Timestamp::Millis(i * 33))
                   .size.bits();
    }
    return total;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rave::codec
