#include "util/inline_function.h"

#include <gtest/gtest.h>

#include <memory>
#include <type_traits>
#include <utility>

#include "util/ring_deque.h"

namespace rave {
namespace {

using Fn = InlineFunction<void(), 64>;

TEST(InlineFunctionTest, DefaultConstructedIsEmpty) {
  Fn f;
  EXPECT_FALSE(f);
  Fn g(nullptr);
  EXPECT_FALSE(g);
}

TEST(InlineFunctionTest, CallsCapturedLambda) {
  int calls = 0;
  Fn f = [&calls] { ++calls; };
  ASSERT_TRUE(f);
  f();
  f();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunctionTest, ForwardsArgumentsAndReturnValue) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

// Functors sized exactly at / just over the capacity probe the compile-time
// boundary. The oversized overload is deleted, so is_constructible_v is the
// observable contract.
struct ExactlyCapacity {
  unsigned char pad[64];
  void operator()() const {}
};
struct OneWordOver {
  unsigned char pad[72];
  void operator()() const {}
};
static_assert(std::is_constructible_v<Fn, ExactlyCapacity>,
              "a capture of exactly Capacity bytes must fit");
static_assert(!std::is_constructible_v<Fn, OneWordOver>,
              "a capture over Capacity bytes must be rejected");
static_assert(std::is_constructible_v<InlineFunction<void(), 72>, OneWordOver>,
              "widening Capacity admits the same capture");
static_assert(!std::is_copy_constructible_v<Fn> && !std::is_copy_assignable_v<Fn>,
              "InlineFunction is move-only");

TEST(InlineFunctionTest, CaptureAtCapacityBoundaryWorks) {
  ExactlyCapacity functor{};
  Fn f = functor;
  ASSERT_TRUE(f);
  f();
}

TEST(InlineFunctionTest, MoveTransfersCallableAndEmptiesSource) {
  auto owned = std::make_unique<int>(41);
  InlineFunction<int()> f = [p = std::move(owned)] { return *p + 1; };
  InlineFunction<int()> g = std::move(f);
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move): post-move state is API
  ASSERT_TRUE(g);
  EXPECT_EQ(g(), 42);
}

TEST(InlineFunctionTest, MoveAssignmentDestroysPreviousCapture) {
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> watch = tracked;
  Fn f = [keep = std::move(tracked)] {};
  ASSERT_FALSE(watch.expired());
  f = Fn([] {});
  EXPECT_TRUE(watch.expired());
  f();
}

TEST(InlineFunctionTest, DestructorDestroysCapture) {
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> watch = tracked;
  {
    Fn f = [keep = std::move(tracked)] {};
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, SelfMoveAssignmentIsNoop) {
  int calls = 0;
  Fn f = [&calls] { ++calls; };
  Fn& alias = f;
  f = std::move(alias);
  ASSERT_TRUE(f);
  f();
  EXPECT_EQ(calls, 1);
}

TEST(InlineFunctionTest, TriviallyCopyableCaptureSurvivesMoveChain) {
  int target = 0;
  InlineFunction<void(int)> f = [&target](int v) { target = v; };
  InlineFunction<void(int)> g = std::move(f);
  InlineFunction<void(int)> h;
  h = std::move(g);
  h(13);
  EXPECT_EQ(target, 13);
}

using InlineFunctionDeathTest = ::testing::Test;

TEST(InlineFunctionDeathTest, EmptyInvocationAborts) {
  Fn empty;
  EXPECT_DEATH(empty(), "");
  Fn moved_from = [] {};
  Fn sink = std::move(moved_from);
  EXPECT_DEATH(moved_from(), "");  // NOLINT(bugprone-use-after-move)
}

TEST(RingDequeTest, FifoOrderAndIndexing) {
  RingDeque<int> dq;
  for (int i = 0; i < 5; ++i) dq.push_back(i);
  ASSERT_EQ(dq.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dq[static_cast<size_t>(i)], i);
  EXPECT_EQ(dq.front(), 0);
  EXPECT_EQ(dq.back(), 4);
  dq.pop_front();
  EXPECT_EQ(dq.front(), 1);
  dq.pop_back();
  EXPECT_EQ(dq.back(), 3);
  EXPECT_EQ(dq.size(), 3u);
}

TEST(RingDequeTest, PushFrontWrapsAround) {
  RingDeque<int> dq;
  dq.push_back(2);
  dq.push_front(1);
  dq.push_front(0);
  ASSERT_EQ(dq.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(dq[static_cast<size_t>(i)], i);
}

TEST(RingDequeTest, GrowthPreservesLogicalOrder) {
  RingDeque<int> dq;
  // Force a wrapped layout, then grow through it.
  for (int i = 0; i < 12; ++i) dq.push_back(i);
  for (int i = 0; i < 8; ++i) dq.pop_front();
  for (int i = 12; i < 40; ++i) dq.push_back(i);  // grows past 16 and 32
  ASSERT_EQ(dq.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(dq[static_cast<size_t>(i)], 8 + i);
}

TEST(RingDequeTest, ReserveRoundsUpToPowerOfTwoAndNeverShrinks) {
  RingDeque<int> dq;
  dq.reserve(20);
  EXPECT_EQ(dq.capacity(), 32u);
  dq.reserve(5);
  EXPECT_EQ(dq.capacity(), 32u);
}

TEST(RingDequeTest, ReservedPushesDoNotGrow) {
  RingDeque<int> dq;
  dq.reserve(64);
  const size_t cap = dq.capacity();
  for (int i = 0; i < 64; ++i) dq.push_back(i);
  EXPECT_EQ(dq.capacity(), cap);
}

TEST(RingDequeTest, PopReleasesOwnedResources) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  RingDeque<std::shared_ptr<int>> dq;
  dq.push_back(std::move(tracked));
  dq.pop_front();
  EXPECT_TRUE(dq.empty());
  EXPECT_TRUE(watch.expired());
}

TEST(RingDequeTest, ClearEmptiesAndReleases) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  RingDeque<std::shared_ptr<int>> dq;
  dq.push_back(std::move(tracked));
  dq.push_back(nullptr);
  dq.clear();
  EXPECT_TRUE(dq.empty());
  EXPECT_TRUE(watch.expired());
  dq.push_back(std::make_shared<int>(2));
  EXPECT_EQ(dq.size(), 1u);
}

}  // namespace
}  // namespace rave
