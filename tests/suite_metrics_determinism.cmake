# Suite-metrics determinism gate: runs run_suite twice against one cache
# directory (cold pass simulates and stores, warm pass serves from disk)
# and fails unless the BENCH_suite.json "metrics" section — the merged
# per-session metric registries — is identical between the passes. Cached
# sessions carry the exact snapshot their original simulation produced, so
# any divergence means nondeterministic values leaked into the registries.
#
# Host-side lines (wall clock, cache statistics, the whole "runtime"
# section) legitimately differ run-to-run and are filtered out before the
# comparison.
#
#   cmake -DBINARY=<run_suite> -DOUT=<scratch-dir> [-DEXTRA_ARGS=...]
#         -P suite_metrics_determinism.cmake
if(NOT DEFINED BINARY OR NOT DEFINED OUT)
  message(FATAL_ERROR "suite_metrics_determinism.cmake needs -DBINARY/-DOUT")
endif()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT}/cache ${OUT}/cold ${OUT}/warm)

foreach(pass cold warm)
  execute_process(
    COMMAND ${BINARY} --cache-dir=${OUT}/cache --out-dir=${OUT}/${pass}
            ${EXTRA_ARGS}
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BINARY} (${pass} pass) failed (rc=${rc})")
  endif()
endforeach()

# Strip the lines that may legitimately differ: per-bench/total wall-clock
# and cache-statistics lines, plus everything from "runtime": onward.
foreach(pass cold warm)
  file(READ ${OUT}/${pass}/BENCH_suite.json json)
  string(REGEX REPLACE "\"runtime\": .*" "" json "${json}")
  set(filtered "")
  string(REPLACE "\n" ";" lines "${json}")
  foreach(line IN LISTS lines)
    if(line MATCHES "wall_ms|saved_ms|speedup|hits|computed|stores|corrupt|evictions|cache_dir")
      continue()
    endif()
    string(APPEND filtered "${line}\n")
  endforeach()
  file(WRITE ${OUT}/${pass}/metrics_filtered.txt "${filtered}")
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${OUT}/cold/metrics_filtered.txt ${OUT}/warm/metrics_filtered.txt
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "BENCH_suite.json metrics differ between cold and warm cache "
          "passes (${OUT}/cold/metrics_filtered.txt vs "
          "${OUT}/warm/metrics_filtered.txt)")
endif()

# Sanity: the filtered report must still contain the metrics section, or
# the comparison proves nothing.
file(READ ${OUT}/cold/metrics_filtered.txt cold_filtered)
if(NOT cold_filtered MATCHES "\"metrics\": \\[")
  message(FATAL_ERROR "filtered report lost the metrics section")
endif()
if(NOT cold_filtered MATCHES "\"kind\": ")
  message(FATAL_ERROR "metrics section is empty — no session metrics merged")
endif()
