// ParallelRunner correctness: results must be bit-identical to serial
// execution at any job count and must come back in submission order, even
// when there are more workers than jobs.
#include "runner/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common.h"
#include "fault/fault_plan.h"
#include "runner/result_cache.h"
#include "simd/dispatch.h"

namespace rave {
namespace {

void ExpectSameSummary(const metrics::SessionSummary& a,
                       const metrics::SessionSummary& b) {
  EXPECT_EQ(a.frames_captured, b.frames_captured);
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.frames_skipped, b.frames_skipped);
  EXPECT_EQ(a.frames_dropped_sender, b.frames_dropped_sender);
  EXPECT_EQ(a.frames_lost_network, b.frames_lost_network);
  // Bit-identical, not approximately equal: each session's event loop and
  // RNGs are self-contained, so thread scheduling must not leak into the
  // arithmetic at all.
  EXPECT_EQ(a.latency_mean_ms, b.latency_mean_ms);
  EXPECT_EQ(a.latency_p50_ms, b.latency_p50_ms);
  EXPECT_EQ(a.latency_p95_ms, b.latency_p95_ms);
  EXPECT_EQ(a.latency_p99_ms, b.latency_p99_ms);
  EXPECT_EQ(a.latency_max_ms, b.latency_max_ms);
  EXPECT_EQ(a.render_latency_mean_ms, b.render_latency_mean_ms);
  EXPECT_EQ(a.ssim_mean, b.ssim_mean);
  EXPECT_EQ(a.psnr_mean_db, b.psnr_mean_db);
  EXPECT_EQ(a.encoded_ssim_mean, b.encoded_ssim_mean);
  EXPECT_EQ(a.displayed_ssim_mean, b.displayed_ssim_mean);
  EXPECT_EQ(a.encoded_bitrate_kbps, b.encoded_bitrate_kbps);
  EXPECT_EQ(a.total_reencodes, b.total_reencodes);
}

void ExpectSameFrames(const std::vector<metrics::FrameRecord>& a,
                      const std::vector<metrics::FrameRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].frame_id, b[i].frame_id);
    EXPECT_EQ(a[i].capture_time, b[i].capture_time);
    EXPECT_EQ(a[i].fate, b[i].fate);
    EXPECT_EQ(a[i].qp, b[i].qp);
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].ssim, b[i].ssim);
    EXPECT_EQ(a[i].complete_time.has_value(), b[i].complete_time.has_value());
    if (a[i].complete_time && b[i].complete_time) {
      EXPECT_EQ(*a[i].complete_time, *b[i].complete_time);
    }
  }
}

void ExpectSameLinkStats(const net::LinkStats& a, const net::LinkStats& b) {
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_lost_random, b.packets_lost_random);
  EXPECT_EQ(a.bytes_delivered, b.bytes_delivered);
  EXPECT_EQ(a.bytes_dropped, b.bytes_dropped);
}

// The drop-trace suite x both headline schemes: jobs=8 must reproduce
// jobs=1 exactly (summaries, frame records, link stats, event counts).
TEST(ParallelRunnerTest, ParallelMatchesSerialOverDropSuite) {
  const TimeDelta duration = TimeDelta::Seconds(15);
  std::vector<rtc::SessionConfig> configs;
  for (const auto& [name, trace] : bench::TraceSuite(duration)) {
    for (rtc::Scheme scheme : rtc::kHeadlineSchemes) {
      configs.push_back(bench::DefaultConfig(
          scheme, trace, video::ContentClass::kTalkingHead, duration, 7));
    }
  }

  const auto serial = runner::RunSessions(configs, /*jobs=*/1);
  const auto parallel = runner::RunSessions(configs, /*jobs=*/8);

  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    EXPECT_EQ(serial[i].scheme_name, parallel[i].scheme_name);
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed);
    ExpectSameSummary(serial[i].summary, parallel[i].summary);
    ExpectSameFrames(serial[i].frames, parallel[i].frames);
    ExpectSameLinkStats(serial[i].link_stats, parallel[i].link_stats);
    ASSERT_EQ(serial[i].timeseries.size(), parallel[i].timeseries.size());
  }
}

// More workers than jobs: results still land at the submission index.
TEST(ParallelRunnerTest, OrderingWhenJobsExceedSessions) {
  const TimeDelta duration = TimeDelta::Seconds(5);
  std::vector<rtc::SessionConfig> configs;
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    configs.push_back(bench::DefaultConfig(
        scheme, bench::DropTrace(0.5), video::ContentClass::kTalkingHead,
        duration, 1));
  }
  ASSERT_LT(configs.size(), 16u);

  const auto results = runner::RunSessions(configs, /*jobs=*/16);
  ASSERT_EQ(results.size(), configs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].scheme_name, rtc::ToString(configs[i].scheme));
  }
}

TEST(ParallelRunnerTest, EmptyMatrixReturnsEmpty) {
  EXPECT_TRUE(runner::RunSessions({}, 4).empty());
  EXPECT_TRUE(runner::RunSessions({}, 1).empty());
}

TEST(ParallelRunnerTest, PostAndWaitIdleRunEveryJob) {
  runner::ParallelRunner runner(4);
  EXPECT_EQ(runner.jobs(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    runner.Post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  runner.WaitIdle();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after WaitIdle.
  runner.Post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  runner.WaitIdle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ParallelRunnerTest, SingleJobRunsInline) {
  runner::ParallelRunner runner(1);
  EXPECT_EQ(runner.jobs(), 1);
  int count = 0;  // no atomics needed: inline mode runs on this thread
  runner.Post([&count] { ++count; });
  EXPECT_EQ(count, 1);
  runner.WaitIdle();
}

TEST(ParallelRunnerTest, DefaultJobsIsPositive) {
  EXPECT_GE(runner::DefaultJobs(), 1);
}

// --- longest-job-first scheduling ---

TEST(ScheduleOrderTest, LongestExpectedJobsGoFirst) {
  std::vector<rtc::SessionConfig> configs;
  for (const int seconds : {5, 40, 10, 40, 20}) {
    configs.push_back(bench::DefaultConfig(
        rtc::Scheme::kAdaptive, bench::DropTrace(0.5),
        video::ContentClass::kTalkingHead, TimeDelta::Seconds(seconds), 1));
  }
  const std::vector<size_t> order = runner::ScheduleOrder(configs);
  ASSERT_EQ(order.size(), configs.size());
  // Costs must be non-increasing along the schedule...
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(runner::EstimatedSessionCost(configs[order[i - 1]]),
              runner::EstimatedSessionCost(configs[order[i]]));
  }
  // ...equal costs keep submission order (stable sort), so the whole order
  // is deterministic: 40s (index 1), 40s (index 3), 20s, 10s, 5s.
  EXPECT_EQ(order, (std::vector<size_t>{1, 3, 4, 2, 0}));
}

TEST(ScheduleOrderTest, CostReflectsConfigWeight) {
  auto base = bench::DefaultConfig(
      rtc::Scheme::kAdaptive, bench::DropTrace(0.5),
      video::ContentClass::kTalkingHead, TimeDelta::Seconds(20), 1);
  auto heavier = base;
  heavier.enable_fec = true;
  EXPECT_GT(runner::EstimatedSessionCost(heavier),
            runner::EstimatedSessionCost(base));
  auto longer = base;
  longer.duration = TimeDelta::Seconds(40);
  EXPECT_GT(runner::EstimatedSessionCost(longer),
            runner::EstimatedSessionCost(base));
}

// Straggler case: a single long session submitted *last* after many short
// ones. LJF reorders execution, but results must still land at their
// submission index and match a serial run bit for bit.
TEST(ParallelRunnerTest, StragglerSubmittedLastStaysInSubmissionOrder) {
  std::vector<rtc::SessionConfig> configs;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    configs.push_back(bench::DefaultConfig(
        rtc::Scheme::kAdaptive, bench::DropTrace(0.5),
        video::ContentClass::kTalkingHead, TimeDelta::Seconds(4), seed));
  }
  configs.push_back(bench::DefaultConfig(
      rtc::Scheme::kX264Abr, bench::DropTrace(0.3),
      video::ContentClass::kGaming, TimeDelta::Seconds(30), 99));
  // The straggler must be scheduled first even though it was submitted last.
  EXPECT_EQ(runner::ScheduleOrder(configs).front(), configs.size() - 1);

  const auto serial = runner::RunSessions(configs, /*jobs=*/1);
  const auto parallel = runner::RunSessions(configs, /*jobs=*/8);
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    EXPECT_EQ(serial[i].scheme_name, rtc::ToString(configs[i].scheme));
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed);
    ExpectSameSummary(serial[i].summary, parallel[i].summary);
  }
}

// --- cache-backed runs ---

TEST(ParallelRunnerTest, CacheBackedRunMatchesUncached) {
  std::vector<rtc::SessionConfig> configs;
  for (rtc::Scheme scheme : rtc::kHeadlineSchemes) {
    for (uint64_t seed : {1, 2}) {
      configs.push_back(bench::DefaultConfig(
          scheme, bench::DropTrace(0.5), video::ContentClass::kTalkingHead,
          TimeDelta::Seconds(5), seed));
    }
  }

  const auto uncached = runner::RunSessions(configs, /*jobs=*/2);
  runner::ResultCache cache;
  const auto cold = runner::RunSessions(configs, /*jobs=*/2, &cache);
  EXPECT_EQ(cache.stats().computes, configs.size());
  const auto warm = runner::RunSessions(configs, /*jobs=*/2, &cache);
  EXPECT_EQ(cache.stats().computes, configs.size());  // nothing recomputed
  EXPECT_EQ(cache.stats().memory_hits, configs.size());

  ASSERT_EQ(cold.size(), configs.size());
  ASSERT_EQ(warm.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    EXPECT_EQ(uncached[i].events_executed, cold[i].events_executed);
    EXPECT_EQ(uncached[i].events_executed, warm[i].events_executed);
    ExpectSameSummary(uncached[i].summary, cold[i].summary);
    ExpectSameSummary(uncached[i].summary, warm[i].summary);
    ExpectSameFrames(uncached[i].frames, warm[i].frames);
    ExpectSameLinkStats(uncached[i].link_stats, warm[i].link_stats);
  }
}

// --- lockstep batched runs ---

// Batched lockstep execution (Session Start/AdvanceUntil/Finish over shared
// time quanta) must be invisible: any batch size, at any job count, must
// reproduce the per-session path bit for bit.
TEST(ParallelRunnerTest, BatchedMatchesPerSession) {
  const TimeDelta duration = TimeDelta::Seconds(6);
  std::vector<rtc::SessionConfig> configs;
  for (const auto& [name, trace] : bench::TraceSuite(duration)) {
    configs.push_back(bench::DefaultConfig(
        rtc::Scheme::kAdaptive, trace, video::ContentClass::kTalkingHead,
        duration, 7));
  }

  const auto serial = runner::RunSessions(configs, /*jobs=*/1);
  for (const auto [jobs, batch] : {std::pair{1, 4}, {2, 4}, {1, 16}}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs) + " batch " +
                 std::to_string(batch));
    const auto batched =
        runner::RunSessions(configs, jobs, /*cache=*/nullptr, batch);
    ASSERT_EQ(batched.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("config " + std::to_string(i));
      EXPECT_EQ(serial[i].events_executed, batched[i].events_executed);
      ExpectSameSummary(serial[i].summary, batched[i].summary);
      ExpectSameFrames(serial[i].frames, batched[i].frames);
      ExpectSameLinkStats(serial[i].link_stats, batched[i].link_stats);
      ASSERT_EQ(serial[i].timeseries.size(), batched[i].timeseries.size());
    }
  }
}

// Staged-vs-inline identity matrix for the frame-boundary rendezvous
// (codec/frame_staging.h). Batch=1 blocks (and singleton tail blocks) run
// inline with no hub; batch>=2 blocks stage every frame's control math and
// flush it through the SoA/simd lanes. Any batch size, under either simd
// backend, must reproduce the per-session path bit for bit. The matrix
// stresses the divergence fallbacks on purpose:
//  - kX264Abr lanes defer their plan/update into the batched AbrSoa;
//  - kAdaptive/kSalsify lanes plan scalar but batch the R-D math;
//  - a handover fault on ONE lane renegotiates its link mid-run, forcing
//    that lane's trajectory (and its staging cadence) to diverge from its
//    neighbours mid-batch;
//  - mixed durations retire lanes at different boundaries, shrinking the
//    staged wave while the hub keeps flushing the survivors.
TEST(ParallelRunnerTest, StagedMatchesInlineAcrossBatchAndSimdMatrix) {
  std::vector<rtc::SessionConfig> configs;
  const rtc::Scheme schemes[] = {rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive,
                                 rtc::Scheme::kSalsify};
  for (int i = 0; i < 9; ++i) {
    configs.push_back(bench::DefaultConfig(
        schemes[static_cast<size_t>(i) % std::size(schemes)],
        bench::DropTrace(0.3 + 0.2 * (static_cast<double>(i % 3))),
        video::ContentClass::kTalkingHead,
        TimeDelta::Seconds(i % 2 == 0 ? 8 : 5),
        /*seed=*/static_cast<uint64_t>(i) + 1));
  }
  // Mid-batch divergence: one lane (an ABR lane, so its staged AbrSoa state
  // rides through the event) hops to a 900 kbps / 60 ms cell at 3 s.
  configs[3].faults = fault::ParseFaultSpec("handover@3+0.2:900:60");

  const simd::Level original = simd::ActiveLevel();
  const auto serial = runner::RunSessions(configs, /*jobs=*/1);
  for (const simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
    simd::SetLevel(level);  // SetLevel clamps to what the host supports
    for (const int batch : {1, 2, 3, 8, 16, 64}) {
      SCOPED_TRACE(std::string("simd ") + simd::ToString(simd::ActiveLevel()) +
                   " batch " + std::to_string(batch));
      const auto batched =
          runner::RunSessions(configs, /*jobs=*/1, /*cache=*/nullptr, batch);
      ASSERT_EQ(batched.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        EXPECT_EQ(serial[i].events_executed, batched[i].events_executed);
        ExpectSameSummary(serial[i].summary, batched[i].summary);
        ExpectSameFrames(serial[i].frames, batched[i].frames);
        ExpectSameLinkStats(serial[i].link_stats, batched[i].link_stats);
      }
    }
  }
  simd::SetLevel(original);
}

// Batched runs share the cache with per-session runs: a batched cold pass
// fills it, and both batched and per-session warm passes serve from it.
TEST(ParallelRunnerTest, BatchedRunsShareTheCache) {
  std::vector<rtc::SessionConfig> configs;
  for (rtc::Scheme scheme : rtc::kHeadlineSchemes) {
    for (uint64_t seed : {1, 2, 3}) {
      configs.push_back(bench::DefaultConfig(
          scheme, bench::DropTrace(0.5), video::ContentClass::kTalkingHead,
          TimeDelta::Seconds(4), seed));
    }
  }

  runner::ResultCache cache;
  const auto cold =
      runner::RunSessions(configs, /*jobs=*/2, &cache, /*batch=*/4);
  EXPECT_EQ(cache.stats().computes, configs.size());
  const auto warm_batched =
      runner::RunSessions(configs, /*jobs=*/2, &cache, /*batch=*/4);
  EXPECT_EQ(cache.stats().computes, configs.size());  // nothing recomputed
  EXPECT_EQ(cache.stats().memory_hits, configs.size());
  const auto warm_serial = runner::RunSessions(configs, /*jobs=*/1, &cache);
  EXPECT_EQ(cache.stats().computes, configs.size());

  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    EXPECT_EQ(cold[i].events_executed, warm_batched[i].events_executed);
    EXPECT_EQ(cold[i].events_executed, warm_serial[i].events_executed);
    ExpectSameSummary(cold[i].summary, warm_batched[i].summary);
    ExpectSameSummary(cold[i].summary, warm_serial[i].summary);
    ExpectSameFrames(cold[i].frames, warm_batched[i].frames);
  }
}

TEST(ParallelRunnerTest, DuplicateConfigsComputeOncePerKeyWithCache) {
  const auto config = bench::DefaultConfig(
      rtc::Scheme::kAdaptive, bench::DropTrace(0.5),
      video::ContentClass::kTalkingHead, TimeDelta::Seconds(4), 7);
  const std::vector<rtc::SessionConfig> configs(6, config);

  runner::ResultCache cache;
  const auto results = runner::RunSessions(configs, /*jobs=*/4, &cache);
  ASSERT_EQ(results.size(), configs.size());
  EXPECT_EQ(cache.stats().computes, 1u);
  EXPECT_EQ(cache.stats().memory_hits, configs.size() - 1);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].events_executed, results[i].events_executed);
    ExpectSameSummary(results[0].summary, results[i].summary);
  }
}

}  // namespace
}  // namespace rave
