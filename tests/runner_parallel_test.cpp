// ParallelRunner correctness: results must be bit-identical to serial
// execution at any job count and must come back in submission order, even
// when there are more workers than jobs.
#include "runner/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common.h"

namespace rave {
namespace {

void ExpectSameSummary(const metrics::SessionSummary& a,
                       const metrics::SessionSummary& b) {
  EXPECT_EQ(a.frames_captured, b.frames_captured);
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.frames_skipped, b.frames_skipped);
  EXPECT_EQ(a.frames_dropped_sender, b.frames_dropped_sender);
  EXPECT_EQ(a.frames_lost_network, b.frames_lost_network);
  // Bit-identical, not approximately equal: each session's event loop and
  // RNGs are self-contained, so thread scheduling must not leak into the
  // arithmetic at all.
  EXPECT_EQ(a.latency_mean_ms, b.latency_mean_ms);
  EXPECT_EQ(a.latency_p50_ms, b.latency_p50_ms);
  EXPECT_EQ(a.latency_p95_ms, b.latency_p95_ms);
  EXPECT_EQ(a.latency_p99_ms, b.latency_p99_ms);
  EXPECT_EQ(a.latency_max_ms, b.latency_max_ms);
  EXPECT_EQ(a.render_latency_mean_ms, b.render_latency_mean_ms);
  EXPECT_EQ(a.ssim_mean, b.ssim_mean);
  EXPECT_EQ(a.psnr_mean_db, b.psnr_mean_db);
  EXPECT_EQ(a.encoded_ssim_mean, b.encoded_ssim_mean);
  EXPECT_EQ(a.displayed_ssim_mean, b.displayed_ssim_mean);
  EXPECT_EQ(a.encoded_bitrate_kbps, b.encoded_bitrate_kbps);
  EXPECT_EQ(a.total_reencodes, b.total_reencodes);
}

void ExpectSameFrames(const std::vector<metrics::FrameRecord>& a,
                      const std::vector<metrics::FrameRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].frame_id, b[i].frame_id);
    EXPECT_EQ(a[i].capture_time, b[i].capture_time);
    EXPECT_EQ(a[i].fate, b[i].fate);
    EXPECT_EQ(a[i].qp, b[i].qp);
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].ssim, b[i].ssim);
    EXPECT_EQ(a[i].complete_time.has_value(), b[i].complete_time.has_value());
    if (a[i].complete_time && b[i].complete_time) {
      EXPECT_EQ(*a[i].complete_time, *b[i].complete_time);
    }
  }
}

void ExpectSameLinkStats(const net::LinkStats& a, const net::LinkStats& b) {
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_lost_random, b.packets_lost_random);
  EXPECT_EQ(a.bytes_delivered, b.bytes_delivered);
  EXPECT_EQ(a.bytes_dropped, b.bytes_dropped);
}

// The drop-trace suite x both headline schemes: jobs=8 must reproduce
// jobs=1 exactly (summaries, frame records, link stats, event counts).
TEST(ParallelRunnerTest, ParallelMatchesSerialOverDropSuite) {
  const TimeDelta duration = TimeDelta::Seconds(15);
  std::vector<rtc::SessionConfig> configs;
  for (const auto& [name, trace] : bench::TraceSuite(duration)) {
    for (rtc::Scheme scheme : rtc::kHeadlineSchemes) {
      configs.push_back(bench::DefaultConfig(
          scheme, trace, video::ContentClass::kTalkingHead, duration, 7));
    }
  }

  const auto serial = runner::RunSessions(configs, /*jobs=*/1);
  const auto parallel = runner::RunSessions(configs, /*jobs=*/8);

  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    EXPECT_EQ(serial[i].scheme_name, parallel[i].scheme_name);
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed);
    ExpectSameSummary(serial[i].summary, parallel[i].summary);
    ExpectSameFrames(serial[i].frames, parallel[i].frames);
    ExpectSameLinkStats(serial[i].link_stats, parallel[i].link_stats);
    ASSERT_EQ(serial[i].timeseries.size(), parallel[i].timeseries.size());
  }
}

// More workers than jobs: results still land at the submission index.
TEST(ParallelRunnerTest, OrderingWhenJobsExceedSessions) {
  const TimeDelta duration = TimeDelta::Seconds(5);
  std::vector<rtc::SessionConfig> configs;
  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    configs.push_back(bench::DefaultConfig(
        scheme, bench::DropTrace(0.5), video::ContentClass::kTalkingHead,
        duration, 1));
  }
  ASSERT_LT(configs.size(), 16u);

  const auto results = runner::RunSessions(configs, /*jobs=*/16);
  ASSERT_EQ(results.size(), configs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].scheme_name, rtc::ToString(configs[i].scheme));
  }
}

TEST(ParallelRunnerTest, EmptyMatrixReturnsEmpty) {
  EXPECT_TRUE(runner::RunSessions({}, 4).empty());
  EXPECT_TRUE(runner::RunSessions({}, 1).empty());
}

TEST(ParallelRunnerTest, PostAndWaitIdleRunEveryJob) {
  runner::ParallelRunner runner(4);
  EXPECT_EQ(runner.jobs(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    runner.Post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  runner.WaitIdle();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after WaitIdle.
  runner.Post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  runner.WaitIdle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ParallelRunnerTest, SingleJobRunsInline) {
  runner::ParallelRunner runner(1);
  EXPECT_EQ(runner.jobs(), 1);
  int count = 0;  // no atomics needed: inline mode runs on this thread
  runner.Post([&count] { ++count; });
  EXPECT_EQ(count, 1);
  runner.WaitIdle();
}

TEST(ParallelRunnerTest, DefaultJobsIsPositive) {
  EXPECT_GE(runner::DefaultJobs(), 1);
}

}  // namespace
}  // namespace rave
