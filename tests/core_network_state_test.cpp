#include "core/network_state.h"

#include <gtest/gtest.h>

namespace rave::core {
namespace {

NetworkObservation MakeObs() {
  NetworkObservation obs;
  obs.at = Timestamp::Seconds(1);
  obs.target = DataRate::KilobitsPerSec(1000);
  obs.acked_rate = DataRate::KilobitsPerSec(900);
  obs.rtt = TimeDelta::Millis(60);
  return obs;
}

TEST(NetworkStateTrackerTest, CapacityIsTargetInNormalState) {
  NetworkStateTracker tracker;
  const NetworkState s = tracker.OnObservation(MakeObs());
  EXPECT_EQ(s.capacity.kbps(), 1000);
}

TEST(NetworkStateTrackerTest, CapacityBoundedByAckedDuringOveruse) {
  NetworkStateTracker tracker;
  NetworkObservation obs = MakeObs();
  obs.usage = cc::BandwidthUsage::kOverusing;
  obs.acked_rate = DataRate::KilobitsPerSec(600);
  const NetworkState s = tracker.OnObservation(obs);
  EXPECT_EQ(s.capacity.kbps(), 600);
}

TEST(NetworkStateTrackerTest, MinRttTracksSmallest) {
  NetworkStateTracker tracker;
  NetworkObservation obs = MakeObs();
  obs.rtt = TimeDelta::Millis(80);
  tracker.OnObservation(obs);
  obs.rtt = TimeDelta::Millis(52);
  tracker.OnObservation(obs);
  obs.rtt = TimeDelta::Millis(200);  // queueing inflates rtt; min stays
  tracker.OnObservation(obs);
  EXPECT_EQ(tracker.min_rtt(), TimeDelta::Millis(52));
}

TEST(NetworkStateTrackerTest, BacklogIsPacerPlusExcessInFlight) {
  NetworkStateTracker tracker;
  NetworkObservation obs = MakeObs();
  obs.rtt = TimeDelta::Millis(50);
  tracker.OnObservation(obs);  // establish min_rtt = 50 ms

  // BDP = 1 Mbps * 50 ms = 50'000 bits.
  obs.pacer_queue = DataSize::Bits(30'000);
  obs.in_flight = DataSize::Bits(80'000);  // 30'000 over BDP
  const NetworkState s = tracker.OnObservation(obs);
  EXPECT_EQ(s.backlog.bits(), 60'000);
  EXPECT_NEAR(s.queue_delay.ms_float(), 60.0, 1.0);
}

TEST(NetworkStateTrackerTest, InFlightWithinBdpIsNotBacklog) {
  NetworkStateTracker tracker;
  NetworkObservation obs = MakeObs();
  obs.rtt = TimeDelta::Millis(50);
  tracker.OnObservation(obs);
  obs.pacer_queue = DataSize::Zero();
  obs.in_flight = DataSize::Bits(40'000);  // below 50'000 BDP
  const NetworkState s = tracker.OnObservation(obs);
  EXPECT_TRUE(s.backlog.IsZero());
  EXPECT_EQ(s.queue_delay, TimeDelta::Zero());
}

TEST(NetworkStateTrackerTest, ZeroTargetFallsBackToFloor) {
  NetworkStateTracker tracker;
  NetworkObservation obs = MakeObs();
  obs.target = DataRate::Zero();
  const NetworkState s = tracker.OnObservation(obs);
  EXPECT_GT(s.capacity.bps(), 0);
}

TEST(NetworkStateTrackerTest, StateAccessorReturnsLatest) {
  NetworkStateTracker tracker;
  tracker.OnObservation(MakeObs());
  EXPECT_EQ(tracker.state().capacity.kbps(), 1000);
  EXPECT_EQ(tracker.state().at, Timestamp::Seconds(1));
}

}  // namespace
}  // namespace rave::core
