#include "net/capacity_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace rave::net {
namespace {

TEST(CapacityTraceTest, ConstantTrace) {
  const auto trace = CapacityTrace::Constant(DataRate::KilobitsPerSec(2500));
  EXPECT_EQ(trace.RateAt(Timestamp::Zero()).kbps(), 2500);
  EXPECT_EQ(trace.RateAt(Timestamp::Seconds(100)).kbps(), 2500);
  EXPECT_EQ(trace.NextChangeAfter(Timestamp::Zero()),
            Timestamp::PlusInfinity());
}

TEST(CapacityTraceTest, StepDropBoundaries) {
  const auto trace =
      CapacityTrace::StepDrop(DataRate::KilobitsPerSec(2000),
                              DataRate::KilobitsPerSec(800),
                              Timestamp::Seconds(10));
  EXPECT_EQ(trace.RateAt(Timestamp::Millis(9'999)).kbps(), 2000);
  EXPECT_EQ(trace.RateAt(Timestamp::Seconds(10)).kbps(), 800);
  EXPECT_EQ(trace.RateAt(Timestamp::Seconds(11)).kbps(), 800);
  EXPECT_EQ(trace.NextChangeAfter(Timestamp::Zero()), Timestamp::Seconds(10));
  EXPECT_EQ(trace.NextChangeAfter(Timestamp::Seconds(10)),
            Timestamp::PlusInfinity());
}

TEST(CapacityTraceTest, StepDropAndRecover) {
  const auto trace = CapacityTrace::StepDropAndRecover(
      DataRate::KilobitsPerSec(2000), DataRate::KilobitsPerSec(500),
      Timestamp::Seconds(10), Timestamp::Seconds(20));
  EXPECT_EQ(trace.RateAt(Timestamp::Seconds(15)).kbps(), 500);
  EXPECT_EQ(trace.RateAt(Timestamp::Seconds(25)).kbps(), 2000);
}

TEST(CapacityTraceTest, ValidationRejectsBadInput) {
  EXPECT_THROW(CapacityTrace({}), std::invalid_argument);
  // Must start at t=0.
  EXPECT_THROW(CapacityTrace({{Timestamp::Seconds(1),
                               DataRate::KilobitsPerSec(100)}}),
               std::invalid_argument);
  // Non-positive rate.
  EXPECT_THROW(CapacityTrace({{Timestamp::Zero(), DataRate::Zero()}}),
               std::invalid_argument);
  // Unsorted steps.
  EXPECT_THROW(
      CapacityTrace({{Timestamp::Zero(), DataRate::KilobitsPerSec(100)},
                     {Timestamp::Seconds(5), DataRate::KilobitsPerSec(200)},
                     {Timestamp::Seconds(5), DataRate::KilobitsPerSec(300)}}),
      std::invalid_argument);
}

TEST(CapacityTraceTest, AverageRateWeightsSegments) {
  const auto trace =
      CapacityTrace::StepDrop(DataRate::KilobitsPerSec(2000),
                              DataRate::KilobitsPerSec(1000),
                              Timestamp::Seconds(5));
  // 5s at 2000 + 5s at 1000 over 10s -> 1500.
  EXPECT_NEAR(trace.AverageRate(TimeDelta::Seconds(10)).kbps(), 1500.0, 1.0);
  // Horizon entirely before the drop.
  EXPECT_NEAR(trace.AverageRate(TimeDelta::Seconds(5)).kbps(), 2000.0, 1.0);
}

TEST(CapacityTraceTest, OscillatingAlternates) {
  const auto trace = CapacityTrace::Oscillating(
      DataRate::KilobitsPerSec(1500), DataRate::KilobitsPerSec(500),
      TimeDelta::Seconds(4), TimeDelta::Seconds(20));
  EXPECT_EQ(trace.RateAt(Timestamp::Seconds(1)).kbps(), 2000);
  EXPECT_EQ(trace.RateAt(Timestamp::Seconds(3)).kbps(), 1000);
  EXPECT_EQ(trace.RateAt(Timestamp::Seconds(5)).kbps(), 2000);
}

TEST(CapacityTraceTest, RandomWalkBoundedAndDeterministic) {
  const auto lo = DataRate::KilobitsPerSec(500);
  const auto hi = DataRate::KilobitsPerSec(3000);
  const auto a = CapacityTrace::RandomWalk(DataRate::KilobitsPerSec(1500), 0.2,
                                           TimeDelta::Millis(500),
                                           TimeDelta::Seconds(60), 42, lo, hi);
  const auto b = CapacityTrace::RandomWalk(DataRate::KilobitsPerSec(1500), 0.2,
                                           TimeDelta::Millis(500),
                                           TimeDelta::Seconds(60), 42, lo, hi);
  ASSERT_EQ(a.steps().size(), b.steps().size());
  for (size_t i = 0; i < a.steps().size(); ++i) {
    EXPECT_EQ(a.steps()[i].rate, b.steps()[i].rate);
    EXPECT_GE(a.steps()[i].rate, lo);
    EXPECT_LE(a.steps()[i].rate, hi);
  }
  EXPECT_GT(a.steps().size(), 100u);
}

TEST(CapacityTraceTest, FileRoundTrip) {
  const auto trace = CapacityTrace::MultiStep(
      {{Timestamp::Zero(), DataRate::KilobitsPerSec(2500)},
       {Timestamp::Millis(10'500), DataRate::KilobitsPerSec(1250)},
       {Timestamp::Seconds(20), DataRate::KilobitsPerSec(900)}});
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.txt";
  trace.Save(path);
  const auto loaded = CapacityTrace::FromFile(path);
  ASSERT_EQ(loaded.steps().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.steps()[i].start, trace.steps()[i].start);
    EXPECT_EQ(loaded.steps()[i].rate, trace.steps()[i].rate);
  }
  std::remove(path.c_str());
}

TEST(CapacityTraceTest, FromFileMissingThrows) {
  EXPECT_THROW(CapacityTrace::FromFile("/no/such/file.txt"),
               std::runtime_error);
}

class FromFileErrors : public ::testing::Test {
 protected:
  // Writes `content` to a temp trace file and returns its path.
  std::string Write(const std::string& content) {
    const std::string path = ::testing::TempDir() + "/bad_trace.txt";
    std::ofstream out(path);
    out << content;
    return path;
  }

  // Loads `content` and returns the error message (empty = no throw).
  std::string LoadError(const std::string& content) {
    const std::string path = Write(content);
    std::string what;
    try {
      CapacityTrace::FromFile(path);
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    std::remove(path.c_str());
    return what;
  }
};

TEST_F(FromFileErrors, MalformedLineNamesFileAndLine) {
  const std::string what = LoadError("0 2500\nnot a number\n1 2000\n");
  ASSERT_FALSE(what.empty());
  EXPECT_NE(what.find(":2:"), std::string::npos) << what;
  EXPECT_NE(what.find("bad_trace.txt"), std::string::npos) << what;
}

TEST_F(FromFileErrors, MissingRateRejected) {
  EXPECT_NE(LoadError("0 2500\n1\n"), "");
}

TEST_F(FromFileErrors, TrailingGarbageRejected) {
  // Silently ignoring a third column hides column-order mistakes.
  EXPECT_NE(LoadError("0 2500 9999\n"), "");
}

TEST_F(FromFileErrors, NonFiniteValuesRejected) {
  // `KilobitsPerSecF(NaN)` would be UB on the int64 conversion; the loader
  // must reject it before it gets there.
  EXPECT_NE(LoadError("0 nan\n"), "");
  EXPECT_NE(LoadError("0 inf\n"), "");
  EXPECT_NE(LoadError("nan 2500\n"), "");
}

TEST_F(FromFileErrors, NegativeTimeRejected) {
  EXPECT_NE(LoadError("-1 2500\n0 2000\n"), "");
}

TEST_F(FromFileErrors, NonPositiveRateRejected) {
  EXPECT_NE(LoadError("0 0\n"), "");
  EXPECT_NE(LoadError("0 -100\n"), "");
}

TEST_F(FromFileErrors, EmptyOrCommentOnlyFileRejected) {
  EXPECT_NE(LoadError(""), "");
  EXPECT_NE(LoadError("# only comments\n\n# here\n"), "");
}

TEST_F(FromFileErrors, StructuralErrorsNameTheFile) {
  // First step not at t=0: caught by the constructor, wrapped with the path.
  const std::string what = LoadError("1 2500\n2 2000\n");
  ASSERT_FALSE(what.empty());
  EXPECT_NE(what.find("bad_trace.txt"), std::string::npos) << what;
}

// --- Cursor: the stateful monotonic view must be an exact drop-in for the
// stateless queries, including when callers go backwards in time.

TEST(CapacityTraceCursorTest, MatchesStatelessOnStepBoundaries) {
  const auto trace = CapacityTrace::MultiStep(
      {{Timestamp::Zero(), DataRate::KilobitsPerSec(2500)},
       {Timestamp::Seconds(10), DataRate::KilobitsPerSec(800)},
       {Timestamp::Millis(10'001), DataRate::KilobitsPerSec(900)},
       {Timestamp::Seconds(20), DataRate::KilobitsPerSec(2500)}});
  CapacityTrace::Cursor cursor(trace);
  for (const Timestamp t :
       {Timestamp::Zero(), Timestamp::Millis(9'999), Timestamp::Seconds(10),
        Timestamp::Millis(10'000), Timestamp::Millis(10'001),
        Timestamp::Seconds(15), Timestamp::Seconds(20),
        Timestamp::Seconds(100)}) {
    EXPECT_EQ(cursor.RateAt(t), trace.RateAt(t)) << t.seconds();
    EXPECT_EQ(cursor.NextChangeAfter(t), trace.NextChangeAfter(t))
        << t.seconds();
  }
}

TEST(CapacityTraceCursorTest, RandomizedEquivalenceMonotonic) {
  const auto trace = CapacityTrace::RandomWalk(
      DataRate::KilobitsPerSec(1500), 0.2, TimeDelta::Millis(200),
      TimeDelta::Seconds(60), 7, DataRate::KilobitsPerSec(300),
      DataRate::KilobitsPerSec(4000));
  CapacityTrace::Cursor cursor(trace);
  Rng rng(123);
  Timestamp t = Timestamp::Zero();
  for (int i = 0; i < 5000; ++i) {
    t = t + TimeDelta::Micros(rng.UniformInt(0, 40'000));
    ASSERT_EQ(cursor.RateAt(t), trace.RateAt(t)) << t.us();
    ASSERT_EQ(cursor.NextChangeAfter(t), trace.NextChangeAfter(t)) << t.us();
  }
}

TEST(CapacityTraceCursorTest, RandomizedEquivalenceWithRewinds) {
  const auto trace = CapacityTrace::RandomWalk(
      DataRate::KilobitsPerSec(1500), 0.3, TimeDelta::Millis(500),
      TimeDelta::Seconds(60), 11, DataRate::KilobitsPerSec(300),
      DataRate::KilobitsPerSec(4000));
  CapacityTrace::Cursor cursor(trace);
  Rng rng(456);
  for (int i = 0; i < 5000; ++i) {
    // Arbitrary (unsorted) timestamps: the cursor must rewind correctly.
    const Timestamp t = Timestamp::Micros(rng.UniformInt(0, 70'000'000));
    ASSERT_EQ(cursor.RateAt(t), trace.RateAt(t)) << t.us();
    ASSERT_EQ(cursor.NextChangeAfter(t), trace.NextChangeAfter(t)) << t.us();
  }
}

TEST(CapacityTraceCursorTest, SingleStepTrace) {
  const auto trace = CapacityTrace::Constant(DataRate::KilobitsPerSec(2500));
  CapacityTrace::Cursor cursor(trace);
  EXPECT_EQ(cursor.RateAt(Timestamp::Zero()).kbps(), 2500);
  EXPECT_EQ(cursor.RateAt(Timestamp::Seconds(999)).kbps(), 2500);
  EXPECT_EQ(cursor.NextChangeAfter(Timestamp::Zero()),
            Timestamp::PlusInfinity());
}

TEST_F(FromFileErrors, CommentsAndBlankLinesStillFine) {
  const std::string path = Write("# header\n\n0 2500  # inline comment\n"
                                 "10.5 1250\n");
  const auto trace = CapacityTrace::FromFile(path);
  std::remove(path.c_str());
  ASSERT_EQ(trace.steps().size(), 2u);
  EXPECT_EQ(trace.steps()[0].rate.kbps(), 2500);
  EXPECT_EQ(trace.steps()[1].start, Timestamp::Millis(10'500));
}

}  // namespace
}  // namespace rave::net
