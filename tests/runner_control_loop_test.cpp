// Bit-identity of the batched control-loop stepper: the SoA path must
// reproduce the per-session scalar path's trajectories exactly, at any
// batch size and under any simd dispatch level.
#include "runner/control_loop.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/capacity_trace.h"
#include "simd/dispatch.h"

namespace rave::runner {
namespace {

/// Forces a dispatch level for one scope (restores on exit).
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) : prev_(simd::ActiveLevel()) {
    simd::SetLevel(level);
  }
  ~ScopedLevel() { simd::SetLevel(prev_); }

 private:
  simd::Level prev_;
};

ControlLoopConfig MakeConfig(size_t lanes, double seconds) {
  ControlLoopConfig config;
  config.duration = TimeDelta::SecondsF(seconds);
  const DataRate base = DataRate::KilobitsPerSec(2500);
  for (size_t i = 0; i < lanes; ++i) {
    Interned<net::CapacityTrace> trace = net::CapacityTrace::Constant(base);
    switch (i % 3) {
      case 0:
        // Severe drop: drives the lanes into VBV admission control and the
        // overflow-compensation clamps (the divergent-branch fallbacks).
        trace = net::CapacityTrace::StepDrop(
            base, DataRate::KilobitsPerSec(700), Timestamp::Seconds(2));
        break;
      case 1:
        trace = net::CapacityTrace::Constant(DataRate::KilobitsPerSec(1500));
        break;
      case 2:
        trace = net::CapacityTrace::RandomWalk(
            DataRate::KilobitsPerSec(1800), 0.18, TimeDelta::Millis(500),
            TimeDelta::SecondsF(seconds), /*seed=*/100 + i,
            DataRate::KilobitsPerSec(400), DataRate::KilobitsPerSec(4000));
        break;
    }
    config.lanes.push_back(
        {video::kAllContentClasses[i % 4], /*seed=*/i + 1, trace});
  }
  return config;
}

TEST(ControlLoop, BatchedMatchesScalar) {
  const ControlLoopConfig config = MakeConfig(/*lanes=*/16, /*seconds=*/8.0);
  const auto scalar = RunControlLoop(config, /*batch=*/1);
  const auto batched = RunControlLoop(config, /*batch=*/16);
  ASSERT_EQ(scalar.size(), batched.size());
  for (size_t l = 0; l < scalar.size(); ++l) {
    EXPECT_EQ(scalar[l], batched[l]) << "lane " << l;
  }
}

TEST(ControlLoop, BatchSizeDoesNotChangeResults) {
  // 23 lanes: exercises the AVX2 4-wide main loops plus scalar tails, and
  // partial trailing groups for every batch size.
  const ControlLoopConfig config = MakeConfig(/*lanes=*/23, /*seconds=*/4.0);
  const auto scalar = RunControlLoop(config, 1);
  for (int batch : {2, 3, 8, 16, 64}) {
    const auto batched = RunControlLoop(config, batch);
    ASSERT_EQ(scalar.size(), batched.size());
    for (size_t l = 0; l < scalar.size(); ++l) {
      EXPECT_EQ(scalar[l], batched[l]) << "batch " << batch << " lane " << l;
    }
  }
}

TEST(ControlLoop, BitIdenticalAcrossSimdLevels) {
  if (simd::DetectedLevel() != simd::Level::kAvx2) {
    GTEST_SKIP() << "AVX2 unavailable; dispatch parity covered elsewhere";
  }
  const ControlLoopConfig config = MakeConfig(/*lanes=*/13, /*seconds=*/6.0);
  std::vector<ControlLaneResult> scalar_level, avx2_level;
  {
    ScopedLevel level(simd::Level::kScalar);
    scalar_level = RunControlLoop(config, /*batch=*/16);
  }
  {
    ScopedLevel level(simd::Level::kAvx2);
    avx2_level = RunControlLoop(config, /*batch=*/16);
  }
  ASSERT_EQ(scalar_level.size(), avx2_level.size());
  for (size_t l = 0; l < scalar_level.size(); ++l) {
    EXPECT_EQ(scalar_level[l], avx2_level[l]) << "lane " << l;
  }
}

TEST(ControlLoop, TrajectoriesAreExercised) {
  const ControlLoopConfig config = MakeConfig(/*lanes=*/6, /*seconds=*/12.0);
  const auto results = RunControlLoop(config, /*batch=*/6);
  int64_t overuse = 0;
  for (const auto& r : results) {
    EXPECT_GT(r.frames, 300);
    EXPECT_GT(r.total_bits, 0);
    EXPECT_GT(r.qp_sum, 0.0);
    EXPECT_GT(r.ssim_sum, 0.0);
    overuse += r.overuse_frames;
  }
  // The step-drop lanes must drive their estimators into over-use at least
  // once — otherwise the feedback path of the loop is dead code.
  EXPECT_GT(overuse, 0);

  // The digest must be sensitive to the trajectory, not just its shape.
  ControlLoopConfig reseeded = config;
  for (auto& lane : reseeded.lanes) lane.seed += 1000;
  const auto other = RunControlLoop(reseeded, /*batch=*/6);
  for (size_t l = 0; l < results.size(); ++l) {
    EXPECT_NE(results[l].digest, other[l].digest) << "lane " << l;
  }
}

}  // namespace
}  // namespace rave::runner
