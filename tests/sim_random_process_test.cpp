#include "sim/random_process.h"

#include <gtest/gtest.h>

namespace rave {
namespace {

TEST(Ar1ProcessTest, StartsAtMean) {
  Ar1Process p({.mean = 2.0, .phi = 0.9, .sigma = 0.1}, Rng(1));
  EXPECT_DOUBLE_EQ(p.value(), 2.0);
}

TEST(Ar1ProcessTest, StaysWithinClamp) {
  Ar1Process p({.mean = 1.0, .phi = 0.5, .sigma = 5.0, .lo = 0.2, .hi = 3.0},
               Rng(2));
  for (int i = 0; i < 10'000; ++i) {
    const double x = p.Step();
    EXPECT_GE(x, 0.2);
    EXPECT_LE(x, 3.0);
  }
}

TEST(Ar1ProcessTest, LongRunMeanApproximatesMean) {
  Ar1Process p({.mean = 1.5, .phi = 0.9, .sigma = 0.05, .lo = 0.0, .hi = 10.0},
               Rng(3));
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += p.Step();
  EXPECT_NEAR(sum / n, 1.5, 0.02);
}

TEST(Ar1ProcessTest, HighPhiIsSmoother) {
  // Per-step changes should be smaller for higher persistence.
  auto roughness = [](double phi) {
    Ar1Process p({.mean = 1.0, .phi = phi, .sigma = 0.05}, Rng(4));
    double sum = 0.0;
    double prev = p.value();
    for (int i = 0; i < 10'000; ++i) {
      const double x = p.Step();
      sum += std::abs(x - prev);
      prev = x;
    }
    return sum;
  };
  EXPECT_LT(roughness(0.99) * 1.05, roughness(0.5));
}

TEST(Ar1ProcessTest, SetValueClamps) {
  Ar1Process p({.mean = 1.0, .phi = 0.9, .sigma = 0.1, .lo = 0.5, .hi = 2.0},
               Rng(5));
  p.SetValue(100.0);
  EXPECT_DOUBLE_EQ(p.value(), 2.0);
  p.SetValue(-100.0);
  EXPECT_DOUBLE_EQ(p.value(), 0.5);
}

TEST(GilbertProcessTest, StartsGood) {
  GilbertProcess p({}, Rng(6));
  EXPECT_FALSE(p.bad());
}

TEST(GilbertProcessTest, StationaryFractionMatchesTheory) {
  // Stationary P(bad) = p_gb / (p_gb + p_bg).
  GilbertProcess p({.p_good_to_bad = 0.02, .p_bad_to_good = 0.08}, Rng(7));
  int bad_steps = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    if (p.Step()) ++bad_steps;
  }
  EXPECT_NEAR(static_cast<double>(bad_steps) / n, 0.2, 0.02);
}

TEST(GilbertProcessTest, DegenerateNeverBad) {
  GilbertProcess p({.p_good_to_bad = 0.0, .p_bad_to_good = 1.0}, Rng(8));
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(p.Step());
}

TEST(PoissonArrivalsTest, GapsPositiveWithCorrectMean) {
  PoissonArrivals arrivals(TimeDelta::Millis(500), Rng(9));
  double sum_s = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const TimeDelta gap = arrivals.NextGap();
    EXPECT_GT(gap, TimeDelta::Zero());
    sum_s += gap.seconds();
  }
  EXPECT_NEAR(sum_s / n, 0.5, 0.01);
}

}  // namespace
}  // namespace rave
