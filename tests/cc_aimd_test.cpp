#include "cc/aimd.h"

#include <gtest/gtest.h>

namespace rave::cc {
namespace {

TEST(LinkCapacityEstimatorTest, NoEstimateInitially) {
  LinkCapacityEstimator est;
  EXPECT_FALSE(est.has_estimate());
  EXPECT_EQ(est.UpperBound(), DataRate::PlusInfinity());
  EXPECT_EQ(est.LowerBound(), DataRate::Zero());
}

TEST(LinkCapacityEstimatorTest, TracksOveruseSamples) {
  LinkCapacityEstimator est;
  for (int i = 0; i < 50; ++i) {
    est.OnOveruseDetected(DataRate::KilobitsPerSec(1000));
  }
  EXPECT_TRUE(est.has_estimate());
  EXPECT_NEAR(est.estimate().kbps(), 1000.0, 100.0);
  EXPECT_GT(est.UpperBound(), est.estimate());
  EXPECT_LT(est.LowerBound(), est.estimate());
}

TEST(LinkCapacityEstimatorTest, ResetClears) {
  LinkCapacityEstimator est;
  est.OnOveruseDetected(DataRate::KilobitsPerSec(500));
  est.Reset();
  EXPECT_FALSE(est.has_estimate());
}

AimdRateControl::Config DefaultConfig() {
  AimdRateControl::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(1500);
  return config;
}

TEST(AimdTest, OveruseDecreasesTowardBetaTimesAcked) {
  AimdRateControl aimd(DefaultConfig());
  const DataRate acked = DataRate::KilobitsPerSec(1000);
  const DataRate rate =
      aimd.Update(BandwidthUsage::kOverusing, acked, TimeDelta::Millis(50),
                  Timestamp::Millis(100));
  EXPECT_NEAR(rate.kbps(), 850.0, 1.0);
  EXPECT_TRUE(aimd.last_update_decreased());
}

TEST(AimdTest, RepeatedOveruseDoesNotCollapseBelowFloor) {
  // The bug class this guards against: each 50 ms feedback decreasing by
  // another factor of beta while the queue drains, collapsing the estimate.
  AimdRateControl aimd(DefaultConfig());
  const DataRate acked = DataRate::KilobitsPerSec(1000);
  DataRate rate;
  for (int i = 0; i < 40; ++i) {
    rate = aimd.Update(BandwidthUsage::kOverusing, acked,
                       TimeDelta::Millis(50), Timestamp::Millis(100 + 50 * i));
  }
  EXPECT_NEAR(rate.kbps(), 850.0, 1.0);
}

TEST(AimdTest, OveruseWithoutAckedRateLimitedBackoff) {
  AimdRateControl aimd(DefaultConfig());
  DataRate rate;
  // 10 over-use updates within 300 ms: only one decrease may apply.
  for (int i = 0; i < 10; ++i) {
    rate = aimd.Update(BandwidthUsage::kOverusing, DataRate::Zero(),
                       TimeDelta::Millis(50), Timestamp::Millis(10 * i));
  }
  EXPECT_NEAR(rate.kbps(), 1500.0 * 0.85, 1.0);
}

TEST(AimdTest, NormalAfterHoldIncreases) {
  AimdRateControl aimd(DefaultConfig());
  const DataRate acked = DataRate::KilobitsPerSec(1400);
  aimd.Update(BandwidthUsage::kOverusing, acked, TimeDelta::Millis(50),
              Timestamp::Millis(0));
  const DataRate held = aimd.target();
  DataRate rate = held;
  for (int i = 1; i <= 40; ++i) {
    rate = aimd.Update(BandwidthUsage::kNormal, acked, TimeDelta::Millis(50),
                       Timestamp::Millis(50 * i));
  }
  EXPECT_GT(rate, held);
}

TEST(AimdTest, UnderuseHoldsRate) {
  AimdRateControl aimd(DefaultConfig());
  const DataRate before = aimd.target();
  const DataRate rate = aimd.Update(BandwidthUsage::kUnderusing,
                                    DataRate::KilobitsPerSec(1200),
                                    TimeDelta::Millis(50), Timestamp::Zero());
  EXPECT_EQ(rate, before);
  EXPECT_FALSE(aimd.last_update_decreased());
}

TEST(AimdTest, IncreaseCappedByAckedCeiling) {
  AimdRateControl aimd(DefaultConfig());
  const DataRate acked = DataRate::KilobitsPerSec(400);
  DataRate rate;
  for (int i = 0; i < 100; ++i) {
    rate = aimd.Update(BandwidthUsage::kNormal, acked, TimeDelta::Millis(50),
                       Timestamp::Millis(50 * i));
  }
  // Never runs far beyond 1.5 x measured throughput.
  EXPECT_LE(rate.kbps(), 1.5 * 400.0 + 11.0);
}

TEST(AimdTest, RespectsMinAndMaxBounds) {
  AimdRateControl::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(100);
  config.min_rate = DataRate::KilobitsPerSec(80);
  config.max_rate = DataRate::KilobitsPerSec(150);
  AimdRateControl aimd(config);
  // Hammer decreases (no acked rate, spaced beyond the backoff guard).
  DataRate rate;
  for (int i = 0; i < 20; ++i) {
    rate = aimd.Update(BandwidthUsage::kOverusing, DataRate::Zero(),
                       TimeDelta::Millis(50), Timestamp::Millis(400 * i));
  }
  EXPECT_GE(rate.kbps(), 80);
  // Hammer increases.
  for (int i = 0; i < 200; ++i) {
    rate = aimd.Update(BandwidthUsage::kNormal,
                       DataRate::KilobitsPerSec(1000), TimeDelta::Millis(50),
                       Timestamp::Millis(8000 + 50 * i));
  }
  EXPECT_LE(rate.kbps(), 150);
}

TEST(AimdTest, EscapesStaleCapacityEstimateWhenAppLimited) {
  // Deadlock this guards against: a fault collapses the rate, the capacity
  // estimator remembers the fault-era throughput, and an application-limited
  // sender (acked < target, never over-using) gets pinned at the stale
  // band's upper edge forever even though the real link is far faster.
  AimdRateControl aimd(DefaultConfig());
  // Learn a low capacity during the "fault": repeated over-use at 400 kbps.
  for (int i = 0; i < 30; ++i) {
    aimd.Update(BandwidthUsage::kOverusing, DataRate::KilobitsPerSec(400),
                TimeDelta::Millis(50), Timestamp::Millis(50 * i));
  }
  const DataRate after_fault = aimd.target();
  // Fault clears. The sender ships ~85% of whatever the target is (app
  // limited), the network never over-uses again.
  DataRate rate = after_fault;
  for (int i = 0; i < 1200; ++i) {
    const DataRate acked = rate * 0.85;
    rate = aimd.Update(BandwidthUsage::kNormal, acked, TimeDelta::Millis(50),
                       Timestamp::Millis(2000 + 50 * i));
  }
  // One minute later the target must have climbed far past the fault-era
  // band instead of freezing at its upper edge.
  EXPECT_GT(rate.kbps(), 10.0 * after_fault.kbps());
}

TEST(AimdTest, ConvergesIntoCapacityBandInClosedLoop) {
  // Property-style closed loop: acked = min(target, capacity); overuse
  // whenever target exceeds capacity. The controller should settle into
  // [0.8, 1.2] x capacity.
  for (int64_t capacity_kbps : {300, 800, 2000, 5000}) {
    AimdRateControl aimd(DefaultConfig());
    const DataRate capacity = DataRate::KilobitsPerSec(capacity_kbps);
    DataRate rate = aimd.target();
    for (int i = 0; i < 2000; ++i) {
      const DataRate acked = std::min(rate, capacity);
      const BandwidthUsage usage = rate > capacity
                                       ? BandwidthUsage::kOverusing
                                       : BandwidthUsage::kNormal;
      rate = aimd.Update(usage, acked, TimeDelta::Millis(50),
                         Timestamp::Millis(50 * i));
    }
    EXPECT_GT(rate.kbps(), 0.8 * capacity_kbps) << capacity_kbps;
    EXPECT_LT(rate.kbps(), 1.2 * capacity_kbps) << capacity_kbps;
  }
}

}  // namespace
}  // namespace rave::cc
