// Property sweep over the whole system: for every (scheme, drop severity)
// combination, a set of invariants must hold — frame-fate conservation,
// bounded latency, quality within the model's range, deterministic results,
// and the headline ordering against the baseline.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "net/capacity_trace.h"
#include "rtc/session.h"

namespace rave::rtc {
namespace {

class SchemeSeverityTest
    : public ::testing::TestWithParam<std::tuple<Scheme, double>> {
 protected:
  SessionResult Run(uint64_t seed = 42) {
    const auto [scheme, severity] = GetParam();
    SessionConfig config;
    config.scheme = scheme;
    config.duration = TimeDelta::Seconds(25);
    config.seed = seed;
    config.initial_rate = DataRate::KilobitsPerSec(2100);
    config.link.trace = net::CapacityTrace::StepDrop(
        DataRate::KilobitsPerSec(2500),
        DataRate::KilobitsPerSecF(2500.0 * (1.0 - severity)),
        Timestamp::Seconds(10));
    return RunSession(config);
  }
};

TEST_P(SchemeSeverityTest, FrameFateConservation) {
  const SessionResult result = Run();
  const auto& s = result.summary;
  const int64_t accounted = s.frames_delivered + s.frames_skipped +
                            s.frames_dropped_sender + s.frames_lost_network;
  EXPECT_LE(accounted, s.frames_captured);
  // The unaccounted tail is bounded by what can still be in flight or
  // awaiting the assembler's loss timeout when the session ends (~2 s of
  // pacer valve + 0.6 s timeout at 30 fps).
  EXPECT_GE(accounted, s.frames_captured - 90);
  // No frame has contradictory state.
  for (const auto& f : result.frames) {
    if (f.fate == metrics::FrameFate::kDelivered) {
      ASSERT_TRUE(f.complete_time.has_value());
      EXPECT_GE(*f.complete_time, f.capture_time);
      ASSERT_TRUE(f.render_time.has_value());
      EXPECT_GE(*f.render_time, *f.complete_time);
    }
    if (f.fate == metrics::FrameFate::kSkippedEncoder) {
      EXPECT_TRUE(f.size.IsZero());
    }
  }
}

TEST_P(SchemeSeverityTest, LatencyBoundedBySafetyValves) {
  const SessionResult result = Run();
  // Pacer valve (2 s) + bottleneck queue (<= 0.64 s at the lowest rate
  // swept) + assembler timeout (0.6 s) bound any delivered frame's latency.
  EXPECT_LT(result.summary.latency_max_ms, 3500.0);
  EXPECT_GT(result.summary.latency_mean_ms, 25.0);  // >= propagation
}

TEST_P(SchemeSeverityTest, QualityWithinModelRange) {
  const SessionResult result = Run();
  EXPECT_GT(result.summary.encoded_ssim_mean, 0.6);
  EXPECT_LE(result.summary.encoded_ssim_mean, 1.0);
  EXPECT_GE(result.summary.displayed_ssim_mean, 0.0);
  // Displayed SSIM can sit a hair above encoded SSIM (a freeze holds the
  // last *good* frame's value while encoded averages in the bad ones), but
  // never substantially above.
  EXPECT_LE(result.summary.displayed_ssim_mean,
            result.summary.encoded_ssim_mean + 0.01);
  for (const auto& f : result.frames) {
    if (f.fate != metrics::FrameFate::kDelivered) continue;
    EXPECT_GE(f.qp, codec::kMinQp);
    EXPECT_LE(f.qp, codec::kMaxQp);
  }
}

TEST_P(SchemeSeverityTest, Deterministic) {
  const SessionResult a = Run(7);
  const SessionResult b = Run(7);
  EXPECT_EQ(a.summary.latency_mean_ms, b.summary.latency_mean_ms);
  EXPECT_EQ(a.summary.encoded_ssim_mean, b.summary.encoded_ssim_mean);
  EXPECT_EQ(a.link_stats.packets_delivered, b.link_stats.packets_delivered);
}

TEST_P(SchemeSeverityTest, PerFrameSchemesBeatAbrBaselineOnP95) {
  const auto [scheme, severity] = GetParam();
  if (scheme == Scheme::kX264Abr || scheme == Scheme::kX264Cbr) {
    GTEST_SKIP() << "baseline rows";
  }
  const SessionResult treatment = Run();
  SessionConfig baseline_config;
  baseline_config.scheme = Scheme::kX264Abr;
  baseline_config.duration = TimeDelta::Seconds(25);
  baseline_config.seed = 42;
  baseline_config.initial_rate = DataRate::KilobitsPerSec(2100);
  baseline_config.link.trace = net::CapacityTrace::StepDrop(
      DataRate::KilobitsPerSec(2500),
      DataRate::KilobitsPerSecF(2500.0 * (1.0 - severity)),
      Timestamp::Seconds(10));
  const SessionResult baseline = RunSession(baseline_config);
  EXPECT_LT(treatment.summary.latency_p95_ms,
            baseline.summary.latency_p95_ms);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndSeverities, SchemeSeverityTest,
    ::testing::Combine(::testing::ValuesIn(kAllSchemes),
                       ::testing::Values(0.2, 0.5, 0.8)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, double>>& info) {
      // NOTE: no structured bindings here — the comma inside `[a, b]` would
      // be split by the INSTANTIATE_TEST_SUITE_P macro.
      std::string name =
          ToString(std::get<0>(info.param)) + "_sev" +
          std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rave::rtc
