#include "fault/fault_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "net/link.h"
#include "sim/event_loop.h"

namespace rave::fault {
namespace {

net::Packet MakePacket(int64_t media_seq) {
  net::Packet p;
  p.media_seq = media_seq;
  p.size = DataSize::Bytes(1200);
  return p;
}

// 10 Mbps link, 10 ms propagation: a 1200-byte packet serializes in ~1 ms.
struct LinkFixture {
  LinkFixture() {
    net::Link::Config config;
    config.trace =
        net::CapacityTrace::Constant(DataRate::KilobitsPerSec(10'000));
    config.propagation = TimeDelta::Millis(10);
    link = std::make_unique<net::Link>(
        loop, config, [this](const net::Packet& p, Timestamp at) {
          arrivals.emplace_back(p.media_seq, at);
        });
  }

  void SendAt(Timestamp at, int64_t media_seq) {
    loop.ScheduleAt(at, [this, media_seq] { link->Send(MakePacket(media_seq)); });
  }

  EventLoop loop;
  std::vector<std::pair<int64_t, Timestamp>> arrivals;
  std::unique_ptr<net::Link> link;
};

TEST(FaultSchedulerTest, OutageBlocksDeliveryUntilRevert) {
  LinkFixture fx;
  FaultPlan plan;
  plan.Outage(Timestamp::Millis(100), TimeDelta::Millis(200));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.SendAt(Timestamp::Millis(50), 0);   // before the outage
  fx.SendAt(Timestamp::Millis(150), 1);  // mid-outage: parked in the queue
  fx.loop.RunFor(TimeDelta::Millis(500));

  ASSERT_EQ(fx.arrivals.size(), 2u);
  EXPECT_LT(fx.arrivals[0].second, Timestamp::Millis(100));
  // Packet 1 cannot start serializing before the outage clears at t=300.
  EXPECT_GE(fx.arrivals[1].second, Timestamp::Millis(300));
  EXPECT_EQ(fx.link->stats().outages, 1);
  EXPECT_EQ(scheduler.stats().faults_applied, 1);
  EXPECT_EQ(scheduler.stats().faults_reverted, 1);
  EXPECT_FALSE(scheduler.any_active());
}

TEST(FaultSchedulerTest, OutageFreezesInFlightPacketMidSerialization) {
  LinkFixture fx;
  // 100 kbps: a 1200-byte packet takes 96 ms to serialize.
  net::Link::Config config;
  config.trace = net::CapacityTrace::Constant(DataRate::KilobitsPerSec(100));
  config.propagation = TimeDelta::Millis(10);
  std::vector<Timestamp> arrivals;
  net::Link slow(fx.loop, config,
                 [&](const net::Packet&, Timestamp at) { arrivals.push_back(at); });

  FaultPlan plan;
  plan.Outage(Timestamp::Millis(50), TimeDelta::Millis(100));
  FaultScheduler scheduler(fx.loop, plan, &slow, nullptr);

  fx.loop.ScheduleAt(Timestamp::Zero(), [&] { slow.Send(MakePacket(0)); });
  fx.loop.RunFor(TimeDelta::Millis(400));

  // 50 ms served before the outage + 46 ms after it clears at t=150, plus
  // 10 ms propagation: arrival at ~206 ms (blackout added exactly 100 ms).
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_GE(arrivals[0], Timestamp::Micros(205'990));
  EXPECT_LE(arrivals[0], Timestamp::Micros(206'010));
}

TEST(FaultSchedulerTest, DelaySpikeAddsDelayAndPreservesOrder) {
  LinkFixture fx;
  FaultPlan plan;
  plan.DelaySpike(Timestamp::Millis(100), TimeDelta::Millis(100),
                  TimeDelta::Millis(80));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.SendAt(Timestamp::Millis(50), 0);   // normal: ~10 ms propagation
  fx.SendAt(Timestamp::Millis(150), 1);  // spiked: ~90 ms propagation
  fx.SendAt(Timestamp::Millis(230), 2);  // after revert: would overtake
  fx.loop.RunFor(TimeDelta::Millis(500));

  ASSERT_EQ(fx.arrivals.size(), 3u);
  EXPECT_EQ(fx.arrivals[0].first, 0);
  EXPECT_GE(fx.arrivals[1].second, Timestamp::Millis(240));
  // The in-order clamp: packet 2 (sent after the spike cleared) must not
  // arrive before packet 1, which is still in flight with the extra delay.
  EXPECT_EQ(fx.arrivals[1].first, 1);
  EXPECT_EQ(fx.arrivals[2].first, 2);
  EXPECT_GT(fx.arrivals[2].second, fx.arrivals[1].second);
}

TEST(FaultSchedulerTest, DuplicationDeliversCopies) {
  LinkFixture fx;
  FaultPlan plan;
  plan.DuplicationBurst(Timestamp::Millis(100), TimeDelta::Millis(200), 1.0);
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.SendAt(Timestamp::Millis(50), 0);   // outside the window: no copy
  fx.SendAt(Timestamp::Millis(150), 1);  // inside: duplicated
  fx.loop.RunFor(TimeDelta::Millis(500));

  ASSERT_EQ(fx.arrivals.size(), 3u);
  EXPECT_EQ(fx.arrivals[0].first, 0);
  EXPECT_EQ(fx.arrivals[1].first, 1);
  EXPECT_EQ(fx.arrivals[2].first, 1);
  EXPECT_GT(fx.arrivals[2].second, fx.arrivals[1].second);
  EXPECT_EQ(fx.link->stats().packets_duplicated, 1);
  // The link-level delivery counter counts unique packets.
  EXPECT_EQ(fx.link->stats().packets_delivered, 2);
}

TEST(FaultSchedulerTest, ReorderBurstHoldsPacketsBackWithoutLoss) {
  LinkFixture fx;
  FaultPlan plan;
  // Every packet in the window is held back up to 50 ms.
  plan.ReorderBurst(Timestamp::Millis(100), TimeDelta::Millis(50), 1.0,
                    TimeDelta::Millis(50));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.SendAt(Timestamp::Millis(120), 0);  // held back
  fx.SendAt(Timestamp::Millis(160), 1);  // after the window: normal
  fx.loop.RunFor(TimeDelta::Millis(500));

  ASSERT_EQ(fx.arrivals.size(), 2u);
  EXPECT_EQ(fx.link->stats().packets_reordered, 1);
}

TEST(FaultSchedulerTest, FeedbackBlackholeDiscardsReverseTraffic) {
  LinkFixture fx;
  net::DelayPipe pipe(fx.loop, TimeDelta::Millis(25));
  FaultPlan plan;
  plan.FeedbackBlackhole(Timestamp::Millis(100), TimeDelta::Millis(200));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), &pipe);

  int delivered = 0;
  for (int64_t ms : {50, 150, 250, 350}) {
    fx.loop.ScheduleAt(Timestamp::Millis(ms),
                       [&] { pipe.Send([&] { ++delivered; }); });
  }
  fx.loop.RunFor(TimeDelta::Millis(500));

  // The t=150 and t=250 sends fall into the blackhole window.
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(pipe.blackholed(), 2);
}

TEST(FaultSchedulerTest, NullPipeIgnoresFeedbackFaults) {
  LinkFixture fx;
  FaultPlan plan;
  plan.FeedbackBlackhole(Timestamp::Millis(100), TimeDelta::Millis(100));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);
  fx.SendAt(Timestamp::Millis(150), 0);
  fx.loop.RunFor(TimeDelta::Millis(400));
  // Forward traffic unaffected; apply/revert still accounted.
  EXPECT_EQ(fx.arrivals.size(), 1u);
  EXPECT_EQ(scheduler.stats().faults_applied, 1);
  EXPECT_EQ(scheduler.stats().faults_reverted, 1);
}

TEST(FaultSchedulerTest, AnyActiveTracksOpenWindows) {
  LinkFixture fx;
  FaultPlan plan;
  plan.Outage(Timestamp::Millis(100), TimeDelta::Millis(100));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.loop.RunFor(TimeDelta::Millis(50));
  EXPECT_FALSE(scheduler.any_active());
  fx.loop.RunFor(TimeDelta::Millis(100));  // now at t=150, mid-window
  EXPECT_TRUE(scheduler.any_active());
  EXPECT_TRUE(fx.link->outage());
  fx.loop.RunFor(TimeDelta::Millis(100));  // t=250, cleared
  EXPECT_FALSE(scheduler.any_active());
  EXPECT_FALSE(fx.link->outage());
}

TEST(FaultSchedulerTest, HandoverSwapsRateRttAndLossAtomically) {
  // The acceptance test for the wireless tier: sample the link on BOTH
  // sides of the handover instant and observe capacity, propagation, and
  // the loss model change together, in one event-loop action.
  LinkFixture fx;
  net::DelayPipe pipe(fx.loop, TimeDelta::Millis(25));

  net::LossModel new_loss;
  new_loss.random_loss = 1.0;  // exact: every post-handover packet dies
  new_loss.seed = 99;
  FaultPlan plan;
  plan.Handover(Timestamp::Millis(100), TimeDelta::Millis(50),
                DataRate::KilobitsPerSec(1'000), TimeDelta::Millis(40),
                new_loss);
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), &pipe);

  // Probes 1 ms either side of the event.
  struct Sample {
    DataRate rate = DataRate::Zero();
    bool outage = false;
    bool blackhole = false;
    int64_t handovers = 0;
    TimeDelta pipe_delay = TimeDelta::Zero();
  };
  Sample before, during, after;
  auto probe = [&](Sample& s) {
    s.rate = fx.link->current_rate();
    s.outage = fx.link->outage();
    s.blackhole = pipe.blackhole();
    s.handovers = fx.link->stats().handovers;
    s.pipe_delay = pipe.base_delay();
  };
  fx.loop.ScheduleAt(Timestamp::Millis(99), [&] { probe(before); });
  fx.loop.ScheduleAt(Timestamp::Millis(101), [&] { probe(during); });
  fx.loop.ScheduleAt(Timestamp::Millis(200), [&] { probe(after); });

  fx.SendAt(Timestamp::Millis(50), 0);   // old cell: delivered normally
  fx.SendAt(Timestamp::Millis(200), 1);  // new cell: certain loss
  fx.loop.RunFor(TimeDelta::Millis(500));

  // Old cell on the left side of the event.
  EXPECT_EQ(before.rate, DataRate::KilobitsPerSec(10'000));
  EXPECT_FALSE(before.outage);
  EXPECT_FALSE(before.blackhole);
  EXPECT_EQ(before.handovers, 0);
  EXPECT_EQ(before.pipe_delay, TimeDelta::Millis(25));

  // One event-loop action later every parameter has moved: capacity,
  // reverse-path delay, loss model, and the radio-silence gap are all on.
  EXPECT_EQ(during.rate, DataRate::KilobitsPerSec(1'000));
  EXPECT_TRUE(during.outage);
  EXPECT_TRUE(during.blackhole);
  EXPECT_EQ(during.handovers, 1);
  EXPECT_EQ(during.pipe_delay, TimeDelta::Millis(40));

  // The revert only ends the silence; the new cell persists.
  EXPECT_FALSE(after.outage);
  EXPECT_FALSE(after.blackhole);
  EXPECT_EQ(after.rate, DataRate::KilobitsPerSec(1'000));
  EXPECT_EQ(after.pipe_delay, TimeDelta::Millis(40));

  // Packet 0 rode the old cell (10 ms propagation); packet 1 hit the new
  // cell's certain loss without ever arriving.
  ASSERT_EQ(fx.arrivals.size(), 1u);
  EXPECT_EQ(fx.arrivals[0].first, 0);
  EXPECT_LT(fx.arrivals[0].second, Timestamp::Millis(100));
  EXPECT_EQ(fx.link->stats().packets_lost_random, 1);
  EXPECT_EQ(scheduler.stats().faults_applied, 1);
  EXPECT_EQ(scheduler.stats().faults_reverted, 1);
}

TEST(FaultSchedulerTest, HandoverPropagationGovernsArrivalTiming) {
  LinkFixture fx;
  FaultPlan plan;
  plan.Handover(Timestamp::Millis(100), TimeDelta::Millis(50),
                DataRate::KilobitsPerSec(1'000), TimeDelta::Millis(40));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.SendAt(Timestamp::Millis(200), 0);
  fx.loop.RunFor(TimeDelta::Millis(500));

  // New cell: 1200 bytes at 1 Mbps = 9.6 ms serialization + 40 ms OWD.
  ASSERT_EQ(fx.arrivals.size(), 1u);
  EXPECT_GE(fx.arrivals[0].second, Timestamp::Micros(249'590));
  EXPECT_LE(fx.arrivals[0].second, Timestamp::Micros(249'610));
}

TEST(FaultSchedulerTest, RenegotiationIsWindowedNotPersistent) {
  LinkFixture fx;
  FaultPlan plan;
  plan.Renegotiate(Timestamp::Millis(100), TimeDelta::Millis(100),
                   DataRate::KilobitsPerSec(1'000));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  DataRate rate_inside = DataRate::Zero();
  DataRate rate_after = DataRate::Zero();
  fx.loop.ScheduleAt(Timestamp::Millis(150),
                     [&] { rate_inside = fx.link->current_rate(); });
  fx.loop.ScheduleAt(Timestamp::Millis(250),
                     [&] { rate_after = fx.link->current_rate(); });

  fx.SendAt(Timestamp::Millis(120), 0);  // inside: 9.6 ms serialization
  fx.SendAt(Timestamp::Millis(250), 1);  // after revert: ~1 ms again
  fx.loop.RunFor(TimeDelta::Millis(500));

  EXPECT_EQ(rate_inside, DataRate::KilobitsPerSec(1'000));
  EXPECT_EQ(rate_after, DataRate::KilobitsPerSec(10'000));
  EXPECT_EQ(fx.link->stats().renegotiations, 1);

  ASSERT_EQ(fx.arrivals.size(), 2u);
  // 120 ms + 9.6 ms + 10 ms propagation.
  EXPECT_GE(fx.arrivals[0].second, Timestamp::Micros(139'590));
  EXPECT_LE(fx.arrivals[0].second, Timestamp::Micros(139'610));
  // 250 ms + 0.96 ms + 10 ms.
  EXPECT_LE(fx.arrivals[1].second, Timestamp::Millis(262));
}

TEST(FaultSchedulerTest, RenegotiationOverridesHandoverRateWhileActive) {
  // A renegotiation window spanning a handover serializes at the
  // renegotiated rate, then falls back to the NEW cell's rate on revert.
  LinkFixture fx;
  FaultPlan plan;
  plan.Renegotiate(Timestamp::Millis(50), TimeDelta::Millis(200),
                   DataRate::KilobitsPerSec(500));
  plan.Handover(Timestamp::Millis(100), TimeDelta::Millis(20),
                DataRate::KilobitsPerSec(2'000), TimeDelta::Millis(10));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  DataRate rate_overlap = DataRate::Zero();
  DataRate rate_after = DataRate::Zero();
  fx.loop.ScheduleAt(Timestamp::Millis(150),
                     [&] { rate_overlap = fx.link->current_rate(); });
  fx.loop.ScheduleAt(Timestamp::Millis(300),
                     [&] { rate_after = fx.link->current_rate(); });
  fx.loop.RunFor(TimeDelta::Millis(400));

  EXPECT_EQ(rate_overlap, DataRate::KilobitsPerSec(500));
  EXPECT_EQ(rate_after, DataRate::KilobitsPerSec(2'000));
}

TEST(FaultSchedulerTest, FaultFreeLinkIsByteIdenticalWithHooksPresent) {
  // The fault RNG must not be consumed when no dup/reorder window is active:
  // a link with an (inactive) scheduler attached behaves identically to one
  // without.
  auto run = [](bool attach_scheduler) {
    LinkFixture fx;
    FaultPlan plan;
    plan.Outage(Timestamp::Seconds(100), TimeDelta::Seconds(1));  // never hit
    std::unique_ptr<FaultScheduler> scheduler;
    if (attach_scheduler) {
      scheduler = std::make_unique<FaultScheduler>(fx.loop, plan,
                                                   fx.link.get(), nullptr);
    }
    for (int i = 0; i < 50; ++i) {
      fx.SendAt(Timestamp::Millis(10 * i), i);
    }
    fx.loop.RunFor(TimeDelta::Seconds(2));
    return fx.arrivals;
  };
  const auto without = run(false);
  const auto with = run(true);
  ASSERT_EQ(without.size(), with.size());
  for (size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i].first, with[i].first);
    EXPECT_EQ(without[i].second, with[i].second);
  }
}

}  // namespace
}  // namespace rave::fault
