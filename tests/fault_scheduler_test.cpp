#include "fault/fault_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "net/link.h"
#include "sim/event_loop.h"

namespace rave::fault {
namespace {

net::Packet MakePacket(int64_t media_seq) {
  net::Packet p;
  p.media_seq = media_seq;
  p.size = DataSize::Bytes(1200);
  return p;
}

// 10 Mbps link, 10 ms propagation: a 1200-byte packet serializes in ~1 ms.
struct LinkFixture {
  LinkFixture() {
    net::Link::Config config;
    config.trace =
        net::CapacityTrace::Constant(DataRate::KilobitsPerSec(10'000));
    config.propagation = TimeDelta::Millis(10);
    link = std::make_unique<net::Link>(
        loop, config, [this](const net::Packet& p, Timestamp at) {
          arrivals.emplace_back(p.media_seq, at);
        });
  }

  void SendAt(Timestamp at, int64_t media_seq) {
    loop.ScheduleAt(at, [this, media_seq] { link->Send(MakePacket(media_seq)); });
  }

  EventLoop loop;
  std::vector<std::pair<int64_t, Timestamp>> arrivals;
  std::unique_ptr<net::Link> link;
};

TEST(FaultSchedulerTest, OutageBlocksDeliveryUntilRevert) {
  LinkFixture fx;
  FaultPlan plan;
  plan.Outage(Timestamp::Millis(100), TimeDelta::Millis(200));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.SendAt(Timestamp::Millis(50), 0);   // before the outage
  fx.SendAt(Timestamp::Millis(150), 1);  // mid-outage: parked in the queue
  fx.loop.RunFor(TimeDelta::Millis(500));

  ASSERT_EQ(fx.arrivals.size(), 2u);
  EXPECT_LT(fx.arrivals[0].second, Timestamp::Millis(100));
  // Packet 1 cannot start serializing before the outage clears at t=300.
  EXPECT_GE(fx.arrivals[1].second, Timestamp::Millis(300));
  EXPECT_EQ(fx.link->stats().outages, 1);
  EXPECT_EQ(scheduler.stats().faults_applied, 1);
  EXPECT_EQ(scheduler.stats().faults_reverted, 1);
  EXPECT_FALSE(scheduler.any_active());
}

TEST(FaultSchedulerTest, OutageFreezesInFlightPacketMidSerialization) {
  LinkFixture fx;
  // 100 kbps: a 1200-byte packet takes 96 ms to serialize.
  net::Link::Config config;
  config.trace = net::CapacityTrace::Constant(DataRate::KilobitsPerSec(100));
  config.propagation = TimeDelta::Millis(10);
  std::vector<Timestamp> arrivals;
  net::Link slow(fx.loop, config,
                 [&](const net::Packet&, Timestamp at) { arrivals.push_back(at); });

  FaultPlan plan;
  plan.Outage(Timestamp::Millis(50), TimeDelta::Millis(100));
  FaultScheduler scheduler(fx.loop, plan, &slow, nullptr);

  fx.loop.ScheduleAt(Timestamp::Zero(), [&] { slow.Send(MakePacket(0)); });
  fx.loop.RunFor(TimeDelta::Millis(400));

  // 50 ms served before the outage + 46 ms after it clears at t=150, plus
  // 10 ms propagation: arrival at ~206 ms (blackout added exactly 100 ms).
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_GE(arrivals[0], Timestamp::Micros(205'990));
  EXPECT_LE(arrivals[0], Timestamp::Micros(206'010));
}

TEST(FaultSchedulerTest, DelaySpikeAddsDelayAndPreservesOrder) {
  LinkFixture fx;
  FaultPlan plan;
  plan.DelaySpike(Timestamp::Millis(100), TimeDelta::Millis(100),
                  TimeDelta::Millis(80));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.SendAt(Timestamp::Millis(50), 0);   // normal: ~10 ms propagation
  fx.SendAt(Timestamp::Millis(150), 1);  // spiked: ~90 ms propagation
  fx.SendAt(Timestamp::Millis(230), 2);  // after revert: would overtake
  fx.loop.RunFor(TimeDelta::Millis(500));

  ASSERT_EQ(fx.arrivals.size(), 3u);
  EXPECT_EQ(fx.arrivals[0].first, 0);
  EXPECT_GE(fx.arrivals[1].second, Timestamp::Millis(240));
  // The in-order clamp: packet 2 (sent after the spike cleared) must not
  // arrive before packet 1, which is still in flight with the extra delay.
  EXPECT_EQ(fx.arrivals[1].first, 1);
  EXPECT_EQ(fx.arrivals[2].first, 2);
  EXPECT_GT(fx.arrivals[2].second, fx.arrivals[1].second);
}

TEST(FaultSchedulerTest, DuplicationDeliversCopies) {
  LinkFixture fx;
  FaultPlan plan;
  plan.DuplicationBurst(Timestamp::Millis(100), TimeDelta::Millis(200), 1.0);
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.SendAt(Timestamp::Millis(50), 0);   // outside the window: no copy
  fx.SendAt(Timestamp::Millis(150), 1);  // inside: duplicated
  fx.loop.RunFor(TimeDelta::Millis(500));

  ASSERT_EQ(fx.arrivals.size(), 3u);
  EXPECT_EQ(fx.arrivals[0].first, 0);
  EXPECT_EQ(fx.arrivals[1].first, 1);
  EXPECT_EQ(fx.arrivals[2].first, 1);
  EXPECT_GT(fx.arrivals[2].second, fx.arrivals[1].second);
  EXPECT_EQ(fx.link->stats().packets_duplicated, 1);
  // The link-level delivery counter counts unique packets.
  EXPECT_EQ(fx.link->stats().packets_delivered, 2);
}

TEST(FaultSchedulerTest, ReorderBurstHoldsPacketsBackWithoutLoss) {
  LinkFixture fx;
  FaultPlan plan;
  // Every packet in the window is held back up to 50 ms.
  plan.ReorderBurst(Timestamp::Millis(100), TimeDelta::Millis(50), 1.0,
                    TimeDelta::Millis(50));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.SendAt(Timestamp::Millis(120), 0);  // held back
  fx.SendAt(Timestamp::Millis(160), 1);  // after the window: normal
  fx.loop.RunFor(TimeDelta::Millis(500));

  ASSERT_EQ(fx.arrivals.size(), 2u);
  EXPECT_EQ(fx.link->stats().packets_reordered, 1);
}

TEST(FaultSchedulerTest, FeedbackBlackholeDiscardsReverseTraffic) {
  LinkFixture fx;
  net::DelayPipe pipe(fx.loop, TimeDelta::Millis(25));
  FaultPlan plan;
  plan.FeedbackBlackhole(Timestamp::Millis(100), TimeDelta::Millis(200));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), &pipe);

  int delivered = 0;
  for (int64_t ms : {50, 150, 250, 350}) {
    fx.loop.ScheduleAt(Timestamp::Millis(ms),
                       [&] { pipe.Send([&] { ++delivered; }); });
  }
  fx.loop.RunFor(TimeDelta::Millis(500));

  // The t=150 and t=250 sends fall into the blackhole window.
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(pipe.blackholed(), 2);
}

TEST(FaultSchedulerTest, NullPipeIgnoresFeedbackFaults) {
  LinkFixture fx;
  FaultPlan plan;
  plan.FeedbackBlackhole(Timestamp::Millis(100), TimeDelta::Millis(100));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);
  fx.SendAt(Timestamp::Millis(150), 0);
  fx.loop.RunFor(TimeDelta::Millis(400));
  // Forward traffic unaffected; apply/revert still accounted.
  EXPECT_EQ(fx.arrivals.size(), 1u);
  EXPECT_EQ(scheduler.stats().faults_applied, 1);
  EXPECT_EQ(scheduler.stats().faults_reverted, 1);
}

TEST(FaultSchedulerTest, AnyActiveTracksOpenWindows) {
  LinkFixture fx;
  FaultPlan plan;
  plan.Outage(Timestamp::Millis(100), TimeDelta::Millis(100));
  FaultScheduler scheduler(fx.loop, plan, fx.link.get(), nullptr);

  fx.loop.RunFor(TimeDelta::Millis(50));
  EXPECT_FALSE(scheduler.any_active());
  fx.loop.RunFor(TimeDelta::Millis(100));  // now at t=150, mid-window
  EXPECT_TRUE(scheduler.any_active());
  EXPECT_TRUE(fx.link->outage());
  fx.loop.RunFor(TimeDelta::Millis(100));  // t=250, cleared
  EXPECT_FALSE(scheduler.any_active());
  EXPECT_FALSE(fx.link->outage());
}

TEST(FaultSchedulerTest, FaultFreeLinkIsByteIdenticalWithHooksPresent) {
  // The fault RNG must not be consumed when no dup/reorder window is active:
  // a link with an (inactive) scheduler attached behaves identically to one
  // without.
  auto run = [](bool attach_scheduler) {
    LinkFixture fx;
    FaultPlan plan;
    plan.Outage(Timestamp::Seconds(100), TimeDelta::Seconds(1));  // never hit
    std::unique_ptr<FaultScheduler> scheduler;
    if (attach_scheduler) {
      scheduler = std::make_unique<FaultScheduler>(fx.loop, plan,
                                                   fx.link.get(), nullptr);
    }
    for (int i = 0; i < 50; ++i) {
      fx.SendAt(Timestamp::Millis(10 * i), i);
    }
    fx.loop.RunFor(TimeDelta::Seconds(2));
    return fx.arrivals;
  };
  const auto without = run(false);
  const auto with = run(true);
  ASSERT_EQ(without.size(), with.size());
  for (size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i].first, with[i].first);
    EXPECT_EQ(without[i].second, with[i].second);
  }
}

}  // namespace
}  // namespace rave::fault
