// QuantileSketch: accuracy against exact order statistics, merge
// determinism (bit-identity under any shard order or grouping), edge
// cases, codec round trips, and fail-closed decoding of corrupt bytes —
// including through the result-cache blob codec.
#include "obs/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "obs/metrics_registry.h"
#include "rtc/session.h"
#include "runner/result_cache.h"
#include "util/byteio.h"

namespace rave::obs {
namespace {

std::vector<uint8_t> EncodeBytes(const QuantileSketch& s) {
  ByteWriter w;
  s.Encode(w);
  return w.bytes();
}

QuantileSketch DecodeBytes(const std::vector<uint8_t>& bytes, bool* ok) {
  ByteReader r(bytes);
  QuantileSketch s = QuantileSketch::Decode(r);
  *ok = r.ok() && r.AtEnd();
  return s;
}

/// Exact quantile with the sketch's rank semantics: q=0 -> first sample,
/// q=1 -> last, linear interpolation between adjacent order statistics.
double ExactQuantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

TEST(QuantileSketchTest, EmptySketch) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  EXPECT_EQ(s, QuantileSketch{});
}

TEST(QuantileSketchTest, SingleSample) {
  QuantileSketch s;
  s.Record(123.456);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 123.456);
  EXPECT_EQ(s.max(), 123.456);
  EXPECT_NEAR(s.sum(), 123.456, 1e-5);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(s.Quantile(q), 123.456) << "q=" << q;
  }
}

TEST(QuantileSketchTest, NonFiniteSamplesIgnored) {
  QuantileSketch s;
  s.Record(std::nan(""));
  s.Record(std::numeric_limits<double>::infinity());
  s.Record(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.count(), 0u);
  s.Record(10.0);
  s.Record(std::nan(""));
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.Quantile(0.5), 10.0);
}

TEST(QuantileSketchTest, ExtremeValuesLandInOverflowBucketsWithExactMinMax) {
  QuantileSketch s;
  s.Record(0.0);
  s.Record(-5.5);       // negative: underflow bucket, exact min
  s.Record(1e-30);      // below kMinValue: underflow bucket
  s.Record(1e300);      // above kMaxValue: overflow bucket, exact max
  s.Record(50.0);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_EQ(s.min(), -5.5);
  EXPECT_EQ(s.max(), 1e300);
  EXPECT_EQ(s.Quantile(0.0), -5.5);
  EXPECT_EQ(s.Quantile(1.0), 1e300);
  // Every quantile stays inside [min, max].
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, s.min()) << "q=" << q;
    EXPECT_LE(v, s.max()) << "q=" << q;
  }
}

TEST(QuantileSketchTest, RankErrorWithinDocumentedBound) {
  std::mt19937_64 rng(42);
  // Latency-shaped data: lognormal body plus a uniform heavy tail.
  std::lognormal_distribution<double> body(3.5, 0.8);
  std::uniform_real_distribution<double> tail(200.0, 2000.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<double> samples;
  QuantileSketch s;
  for (int i = 0; i < 50'000; ++i) {
    const double v = coin(rng) < 0.02 ? tail(rng) : body(rng);
    samples.push_back(v);
    s.Record(v);
  }
  EXPECT_EQ(s.count(), samples.size());
  for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99,
                   0.999}) {
    const double exact = ExactQuantile(samples, q);
    const double approx = s.Quantile(q);
    // The sketch answers from the log bucket holding the target rank; the
    // exact interpolated value can sit in an adjacent bucket, so allow two
    // bucket widths of relative error.
    const double bound = 2.0 * QuantileSketch::kRelativeError * exact;
    EXPECT_NEAR(approx, exact, bound) << "q=" << q;
  }
}

TEST(QuantileSketchTest, MergeBitIdenticalUnderAnyShardOrderAndGrouping) {
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(3.0, 1.2);
  constexpr int kShards = 8;
  std::vector<QuantileSketch> shards(kShards);
  for (int i = 0; i < kShards; ++i) {
    // Uneven shard sizes, including an empty shard.
    const int n = i == 3 ? 0 : 100 * (i + 1);
    for (int k = 0; k < n; ++k) shards[static_cast<size_t>(i)].Record(dist(rng));
  }

  // Reference: left fold in natural order.
  QuantileSketch reference;
  for (const QuantileSketch& s : shards) reference.Merge(s);
  const std::vector<uint8_t> reference_bytes = EncodeBytes(reference);

  // Every permutation order (sampled), right fold, and a pairwise tree must
  // produce the same bits.
  std::vector<size_t> order(kShards);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int perm = 0; perm < 20; ++perm) {
    std::shuffle(order.begin(), order.end(), rng);
    QuantileSketch merged;
    for (size_t i : order) merged.Merge(shards[i]);
    EXPECT_EQ(merged, reference) << "permutation " << perm;
    EXPECT_EQ(EncodeBytes(merged), reference_bytes) << "permutation " << perm;
  }
  {
    QuantileSketch merged;
    for (int i = kShards - 1; i >= 0; --i) {
      merged.Merge(shards[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(EncodeBytes(merged), reference_bytes) << "right fold";
  }
  {
    // Pairwise tree: ((0+1)+(2+3)) + ((4+5)+(6+7)).
    std::vector<QuantileSketch> level = shards;
    while (level.size() > 1) {
      std::vector<QuantileSketch> next;
      for (size_t i = 0; i + 1 < level.size(); i += 2) {
        QuantileSketch pair = level[i];
        pair.Merge(level[i + 1]);
        next.push_back(pair);
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = std::move(next);
    }
    EXPECT_EQ(EncodeBytes(level[0]), reference_bytes) << "pairwise tree";
  }

  // And the merged shards match recording every sample into one sketch.
  EXPECT_EQ(reference.count(), 100u * (1 + 2 + 3 + 5 + 6 + 7 + 8));
}

TEST(QuantileSketchTest, MergeIntoEmptyAndFromEmpty) {
  QuantileSketch a;
  a.Record(5.0);
  a.Record(7.0);
  QuantileSketch empty;
  QuantileSketch b = a;
  b.Merge(empty);  // no-op
  EXPECT_EQ(b, a);
  QuantileSketch c;
  c.Merge(a);  // copy
  EXPECT_EQ(c, a);
  EXPECT_EQ(EncodeBytes(c), EncodeBytes(a));
}

TEST(QuantileSketchTest, EncodeDecodeRoundTrip) {
  std::mt19937_64 rng(99);
  std::lognormal_distribution<double> dist(2.0, 1.5);
  QuantileSketch s;
  for (int i = 0; i < 5000; ++i) s.Record(dist(rng));
  s.Record(-3.0);
  s.Record(1e200);

  bool ok = false;
  const std::vector<uint8_t> bytes = EncodeBytes(s);
  const QuantileSketch back = DecodeBytes(bytes, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(back, s);
  EXPECT_EQ(EncodeBytes(back), bytes);

  // Empty sketch round trip.
  const std::vector<uint8_t> empty_bytes = EncodeBytes(QuantileSketch{});
  const QuantileSketch empty_back = DecodeBytes(empty_bytes, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(empty_back, QuantileSketch{});
}

TEST(QuantileSketchTest, TruncatedBytesFailClosed) {
  QuantileSketch s;
  for (int i = 1; i <= 100; ++i) s.Record(static_cast<double>(i));
  const std::vector<uint8_t> bytes = EncodeBytes(s);
  for (size_t cut : {size_t{0}, size_t{7}, size_t{20}, bytes.size() - 1}) {
    bool ok = true;
    (void)DecodeBytes(std::vector<uint8_t>(bytes.begin(),
                                           bytes.begin() +
                                               static_cast<std::ptrdiff_t>(cut)),
                      &ok);
    EXPECT_FALSE(ok) << "cut at " << cut;
  }
}

TEST(QuantileSketchTest, StructurallyInvalidBytesFailClosed) {
  QuantileSketch s;
  for (int i = 1; i <= 100; ++i) s.Record(static_cast<double>(i));
  const std::vector<uint8_t> bytes = EncodeBytes(s);

  // Bucket counts no longer sum to the total.
  std::vector<uint8_t> bad_count = bytes;
  bad_count[0] ^= 0x01;  // count_ low byte
  bool ok = true;
  (void)DecodeBytes(bad_count, &ok);
  EXPECT_FALSE(ok) << "count mismatch must invalidate the reader";

  // Out-of-range bucket index (the first pair's U32 index sits right after
  // count/sum/min/max/nonzero = 8+8+8+8+8+4 bytes).
  std::vector<uint8_t> bad_index = bytes;
  bad_index[44 + 3] = 0xff;
  ok = true;
  (void)DecodeBytes(bad_index, &ok);
  EXPECT_FALSE(ok) << "out-of-range bucket index must invalidate the reader";

  // Unordered min/max.
  std::vector<uint8_t> bad_minmax = bytes;
  std::swap_ranges(bad_minmax.begin() + 24, bad_minmax.begin() + 32,
                   bad_minmax.begin() + 32);  // swap min and max
  ok = true;
  (void)DecodeBytes(bad_minmax, &ok);
  EXPECT_FALSE(ok) << "min > max must invalidate the reader";
}

TEST(QuantileSketchTest, RegistrySketchMergesAndSurvivesSnapshotCodec) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetSketch("frame.latency_ms")->Record(10.0);
  a.GetSketch("frame.latency_ms")->Record(30.0);
  b.GetSketch("frame.latency_ms")->Record(20.0);

  RegistrySnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const MetricSnapshot* m = merged.Find("frame.latency_ms");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kSketch);
  EXPECT_EQ(m->sketch.count(), 3u);
  EXPECT_EQ(m->sketch.min(), 10.0);
  EXPECT_EQ(m->sketch.max(), 30.0);
  EXPECT_EQ(m->Percentile(0.0), 10.0);

  ByteWriter w;
  merged.Encode(w);
  ByteReader r(w.bytes());
  const RegistrySnapshot back = RegistrySnapshot::Decode(r);
  ASSERT_TRUE(r.ok() && r.AtEnd());
  const MetricSnapshot* back_m = back.Find("frame.latency_ms");
  ASSERT_NE(back_m, nullptr);
  EXPECT_EQ(back_m->sketch, m->sketch);
}

TEST(QuantileSketchTest, CorruptCacheBlobFailsDecodeInsteadOfCrashing) {
  rtc::SessionConfig config;
  config.duration = TimeDelta::Seconds(3);
  const rtc::SessionResult result = rtc::RunSession(config);
  ASSERT_NE(result.metrics.Find("frame.latency_ms"), nullptr);

  const std::vector<uint8_t> payload = runner::ResultCache::EncodeResult(result);
  rtc::SessionResult decoded;
  ASSERT_TRUE(runner::ResultCache::DecodeResult(payload, &decoded));
  const MetricSnapshot* m = decoded.metrics.Find("frame.latency_ms");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kSketch);
  EXPECT_GT(m->sketch.count(), 0u);

  // The registry snapshot (sketches included) sits at the payload tail.
  // Flipping bytes there must never crash, and structural damage must be
  // rejected so the cache recomputes. Some flips only perturb float values
  // and still decode; require that a healthy majority fail closed.
  const size_t tail_start = payload.size() - payload.size() / 8;
  int rejected = 0;
  int attempts = 0;
  for (size_t pos = tail_start; pos < payload.size(); pos += 13) {
    std::vector<uint8_t> corrupt = payload;
    corrupt[pos] ^= 0xa5;
    rtc::SessionResult out;
    if (!runner::ResultCache::DecodeResult(corrupt, &out)) ++rejected;
    ++attempts;
  }
  EXPECT_GT(attempts, 10);
  EXPECT_GT(rejected, 0) << "no tail corruption was ever detected";

  // Truncation anywhere in the sketch region always fails.
  std::vector<uint8_t> truncated(payload.begin(),
                                 payload.end() - 5);
  rtc::SessionResult out;
  EXPECT_FALSE(runner::ResultCache::DecodeResult(truncated, &out));
}

}  // namespace
}  // namespace rave::obs
