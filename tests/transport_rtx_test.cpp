#include "transport/rtx.h"

#include <gtest/gtest.h>

#include <vector>

namespace rave::transport {
namespace {

net::Packet MakePacket(int64_t media_seq, int64_t frame_id = 0) {
  net::Packet p;
  p.media_seq = media_seq;
  p.frame_id = frame_id;
  p.size = DataSize::Bits(9'600);
  return p;
}

TEST(RtxCacheTest, LookupReturnsRetransmissionCopy) {
  RtxCache cache;
  net::Packet p = MakePacket(5);
  p.seq = 100;
  p.send_time = Timestamp::Millis(10);
  cache.Insert(p, Timestamp::Millis(10));
  const auto rtx = cache.Lookup(5, Timestamp::Millis(50));
  ASSERT_TRUE(rtx.has_value());
  EXPECT_TRUE(rtx->is_retransmission);
  EXPECT_EQ(rtx->media_seq, 5);
  EXPECT_EQ(rtx->seq, -1);  // fresh transport seq to be assigned
  EXPECT_EQ(rtx->size, p.size);
}

TEST(RtxCacheTest, MissReturnsNullopt) {
  RtxCache cache;
  EXPECT_FALSE(cache.Lookup(42, Timestamp::Zero()).has_value());
}

TEST(RtxCacheTest, PrunesByAge) {
  RtxCache cache(TimeDelta::Seconds(1));
  cache.Insert(MakePacket(1), Timestamp::Zero());
  cache.Insert(MakePacket(2), Timestamp::Millis(900));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(1, Timestamp::Millis(1500)).has_value());
  EXPECT_TRUE(cache.Lookup(2, Timestamp::Millis(1500)).has_value());
}

TEST(RtxCacheTest, LookupAfterPruneStillServesFreshEntries) {
  // A NACK burst arriving after the prune horizon moved must still be able
  // to fetch every entry that survived, repeatedly (lookups don't consume).
  RtxCache cache(TimeDelta::Seconds(1));
  for (int64_t seq = 0; seq < 10; ++seq) {
    cache.Insert(MakePacket(seq), Timestamp::Millis(100 * seq));
  }
  // At t=1500 entries inserted before t=500 (seqs 0..4) have aged out.
  const Timestamp now = Timestamp::Millis(1500);
  for (int64_t seq = 0; seq < 5; ++seq) {
    EXPECT_FALSE(cache.Lookup(seq, now).has_value()) << "seq " << seq;
  }
  for (int64_t seq = 5; seq < 10; ++seq) {
    ASSERT_TRUE(cache.Lookup(seq, now).has_value()) << "seq " << seq;
    // Retried NACK for the same seq: the entry must still be there.
    ASSERT_TRUE(cache.Lookup(seq, now).has_value()) << "seq " << seq;
  }
  EXPECT_EQ(cache.size(), 5u);
}

TEST(RtxCacheTest, ReinsertAfterFullPruneWorks) {
  RtxCache cache(TimeDelta::Seconds(1));
  cache.Insert(MakePacket(1), Timestamp::Zero());
  EXPECT_FALSE(cache.Lookup(1, Timestamp::Seconds(5)).has_value());
  EXPECT_EQ(cache.size(), 0u);
  cache.Insert(MakePacket(1), Timestamp::Seconds(5));
  EXPECT_TRUE(cache.Lookup(1, Timestamp::Seconds(5)).has_value());
}

TEST(RtxCacheTest, DuplicateInsertRefreshesEntry) {
  // The same media seq sent again (e.g. an RTX of an RTX) refreshes the
  // entry's age instead of creating a second one.
  RtxCache cache(TimeDelta::Seconds(1));
  cache.Insert(MakePacket(1), Timestamp::Zero());
  cache.Insert(MakePacket(1), Timestamp::Millis(900));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup(1, Timestamp::Millis(1500)).has_value());
}

struct NackFixture {
  explicit NackFixture(NackGenerator::Config config = {}) {
    gen = std::make_unique<NackGenerator>(
        loop, config, [this](const NackBatch& b) { batches.push_back(b); },
        [this](int64_t seq) { given_up.push_back(seq); });
  }
  EventLoop loop;
  std::vector<NackBatch> batches;
  std::vector<int64_t> given_up;
  std::unique_ptr<NackGenerator> gen;
};

TEST(NackGeneratorTest, DetectsGapAndNacks) {
  NackFixture fx;
  fx.gen->OnPacketReceived(MakePacket(0));
  fx.gen->OnPacketReceived(MakePacket(3));  // 1, 2 missing
  EXPECT_EQ(fx.gen->missing(), 2u);
  fx.loop.RunFor(TimeDelta::Millis(40));
  ASSERT_FALSE(fx.batches.empty());
  EXPECT_EQ(fx.batches[0].media_seqs, (std::vector<int64_t>{1, 2}));
}

TEST(NackGeneratorTest, ArrivalClearsMissing) {
  NackFixture fx;
  fx.gen->OnPacketReceived(MakePacket(0));
  fx.gen->OnPacketReceived(MakePacket(2));
  fx.gen->OnPacketReceived(MakePacket(1));  // RTX or late arrival
  EXPECT_EQ(fx.gen->missing(), 0u);
  fx.loop.RunFor(TimeDelta::Millis(100));
  EXPECT_TRUE(fx.batches.empty());
}

TEST(NackGeneratorTest, RetriesWithBackoffThenGivesUp) {
  NackGenerator::Config config;
  config.initial_delay = TimeDelta::Millis(5);
  config.retry_interval = TimeDelta::Millis(100);
  config.max_retries = 3;
  config.process_interval = TimeDelta::Millis(20);
  NackFixture fx(config);
  fx.gen->OnPacketReceived(MakePacket(0));
  fx.gen->OnPacketReceived(MakePacket(2));
  fx.loop.RunFor(TimeDelta::Seconds(1));
  // 3 NACKs, then abandoned.
  EXPECT_EQ(fx.gen->nacks_sent(), 3);
  ASSERT_EQ(fx.given_up.size(), 1u);
  EXPECT_EQ(fx.given_up[0], 1);
  EXPECT_EQ(fx.gen->missing(), 0u);
}

TEST(NackGeneratorTest, RetrySpacingRespected) {
  NackGenerator::Config config;
  config.initial_delay = TimeDelta::Millis(5);
  config.retry_interval = TimeDelta::Millis(100);
  config.max_retries = 10;
  config.process_interval = TimeDelta::Millis(10);
  NackFixture fx(config);
  fx.gen->OnPacketReceived(MakePacket(0));
  fx.gen->OnPacketReceived(MakePacket(2));
  fx.loop.RunFor(TimeDelta::Millis(250));
  // First NACK at ~10 ms, retries at ~110 and ~210 ms -> 3 so far.
  EXPECT_EQ(fx.gen->nacks_sent(), 3);
}

TEST(NackGeneratorTest, NoNackBeforeInitialDelay) {
  NackGenerator::Config config;
  config.initial_delay = TimeDelta::Millis(50);
  config.process_interval = TimeDelta::Millis(10);
  NackFixture fx(config);
  fx.gen->OnPacketReceived(MakePacket(0));
  fx.gen->OnPacketReceived(MakePacket(2));
  fx.loop.RunFor(TimeDelta::Millis(40));
  EXPECT_TRUE(fx.batches.empty());
  fx.loop.RunFor(TimeDelta::Millis(30));
  EXPECT_FALSE(fx.batches.empty());
}

TEST(NackGeneratorTest, GiveUpFiresOncePerSeqAndDoesNotResurrect) {
  NackGenerator::Config config;
  config.initial_delay = TimeDelta::Millis(5);
  config.retry_interval = TimeDelta::Millis(50);
  config.max_retries = 2;
  config.process_interval = TimeDelta::Millis(10);
  NackFixture fx(config);
  fx.gen->OnPacketReceived(MakePacket(0));
  fx.gen->OnPacketReceived(MakePacket(4));  // 1, 2, 3 missing
  fx.loop.RunFor(TimeDelta::Seconds(1));

  // Every abandoned seq surfaces exactly once.
  EXPECT_EQ(fx.given_up, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(fx.gen->missing(), 0u);

  // A duplicate/late copy of an abandoned seq must not resurrect it.
  fx.gen->OnPacketReceived(MakePacket(2));
  fx.loop.RunFor(TimeDelta::Seconds(1));
  EXPECT_EQ(fx.given_up.size(), 3u);
  EXPECT_EQ(fx.gen->missing(), 0u);
}

TEST(NackGeneratorTest, DuplicateArrivalsDoNotCreateGaps) {
  NackFixture fx;
  fx.gen->OnPacketReceived(MakePacket(0));
  fx.gen->OnPacketReceived(MakePacket(1));
  fx.gen->OnPacketReceived(MakePacket(1));  // duplicated in the network
  fx.gen->OnPacketReceived(MakePacket(0));  // late duplicate
  fx.gen->OnPacketReceived(MakePacket(2));
  EXPECT_EQ(fx.gen->missing(), 0u);
  fx.loop.RunFor(TimeDelta::Millis(100));
  EXPECT_TRUE(fx.batches.empty());
}

TEST(NackGeneratorTest, IgnoresPacketsWithoutMediaSeq) {
  NackFixture fx;
  net::Packet p;
  p.media_seq = -1;
  fx.gen->OnPacketReceived(p);
  EXPECT_EQ(fx.gen->missing(), 0u);
}

}  // namespace
}  // namespace rave::transport
