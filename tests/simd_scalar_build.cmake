# Scalar-only build gate: configures a nested Release build with the AVX2
# backend compiled out entirely (-DRAVE_SIMD=OFF), builds the kernel and
# control-loop bit-identity tests there and runs them — proving the
# scalar-only configuration compiles, dispatches to the reference backend,
# and still reproduces the batched trajectories exactly. Invoked by ctest
# (see tests/CMakeLists.txt):
#
#   cmake -DSRC=<source-dir> -DOUT=<scratch-build-dir>
#         -P simd_scalar_build.cmake
if(NOT DEFINED SRC OR NOT DEFINED OUT)
  message(FATAL_ERROR "simd_scalar_build.cmake needs -DSRC and -DOUT")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -B ${OUT} -S ${SRC}
          -DCMAKE_BUILD_TYPE=Release
          -DRAVE_SIMD=OFF
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "nested RAVE_SIMD=OFF configure failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${OUT}
          --target simd_vmath_test runner_control_loop_test
          --parallel
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "nested RAVE_SIMD=OFF build failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_CTEST_COMMAND} --test-dir ${OUT}
          -R "^(simd_vmath_test|runner_control_loop_test)$"
          --output-on-failure
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "bit-identity tests failed in the RAVE_SIMD=OFF build (rc=${rc})")
endif()
