# Tracing-off allocation gate: configures a nested Release build with the
# trace macros compiled out (RAVE_TRACING=OFF) and the allocation probe
# forced on, builds hotpath_alloc_test there and runs it — proving the
# tracing-disabled configuration compiles and keeps the zero-allocs-per-
# event-loop-cycle and per-sim-second budgets. Invoked by ctest
# (see tests/CMakeLists.txt):
#
#   cmake -DSRC=<source-dir> -DOUT=<scratch-build-dir>
#         -P tracing_disabled_alloc.cmake
if(NOT DEFINED SRC OR NOT DEFINED OUT)
  message(FATAL_ERROR "tracing_disabled_alloc.cmake needs -DSRC and -DOUT")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -B ${OUT} -S ${SRC}
          -DCMAKE_BUILD_TYPE=Release
          -DRAVE_TRACING=OFF
          -DRAVE_ALLOC_PROBE=ON
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "nested RAVE_TRACING=OFF configure failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${OUT} --target hotpath_alloc_test
          --parallel
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "nested RAVE_TRACING=OFF build failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_CTEST_COMMAND} --test-dir ${OUT}
          -R "^hotpath_alloc_test$" --output-on-failure
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "hotpath_alloc_test failed in the RAVE_TRACING=OFF build (rc=${rc})")
endif()
