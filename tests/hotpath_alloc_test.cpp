// Allocation-regression gate for the zero-allocation hot path.
//
// Two properties are enforced (when the RAVE_ALLOC_PROBE build option is on;
// the tests skip otherwise):
//   1. The event loop's schedule/cancel/fire cycle performs ZERO allocations
//      in steady state (after Reserve / first-use warm-up).
//   2. A full default session stays under a hard allocations-per-simulated-
//      second budget, measured as the delta between a long and a short run
//      (construction and warm-up costs cancel out).
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <vector>

#include "obs/trace.h"
#include "rtc/session.h"
#include "runner/parallel_runner.h"
#include "sim/event_loop.h"
#include "util/alloc_probe.h"
#include "util/time.h"

namespace rave {
namespace {

TEST(HotpathAllocTest, EventLoopCycleIsAllocationFreeInSteadyState) {
  if (!AllocProbeEnabled()) {
    GTEST_SKIP() << "built without RAVE_ALLOC_PROBE";
  }
  EventLoop loop;
  loop.Reserve(512);
  int fired = 0;
  // Warm-up: exercise the same mix (schedule at mixed delays, cancel half,
  // fire the rest) once so every lazily-grown structure reaches steady state.
  auto cycle = [&loop, &fired] {
    for (int i = 0; i < 400; ++i) {
      EventHandle h = loop.Schedule(TimeDelta::Micros(100 + 17 * (i % 13)),
                                    [&fired] { ++fired; });
      if (i % 2 == 0) loop.Cancel(h);
    }
    loop.RunFor(TimeDelta::Millis(1));
  };
  cycle();

  AllocScope scope;
  cycle();
  EXPECT_EQ(scope.allocs(), 0u)
      << "event-loop schedule/cancel/fire made heap allocations in steady "
         "state";
  EXPECT_EQ(scope.frees(), 0u);
  EXPECT_GT(fired, 0);
}

TEST(HotpathAllocTest, RepeatingTaskIsAllocationFreeInSteadyState) {
  if (!AllocProbeEnabled()) {
    GTEST_SKIP() << "built without RAVE_ALLOC_PROBE";
  }
  EventLoop loop;
  loop.Reserve(64);
  int ticks = 0;
  RepeatingTask task(loop, TimeDelta::Millis(10), [&ticks] { ++ticks; });
  task.Start();
  loop.RunFor(TimeDelta::Millis(100));  // warm-up
  AllocScope scope;
  loop.RunFor(TimeDelta::Seconds(1));
  EXPECT_EQ(scope.allocs(), 0u);
  EXPECT_GE(ticks, 100);
}

// Hard per-simulated-second allocation budget for a default adaptive session
// (steady state, measured long-minus-short so setup costs cancel). The
// steady-state cost is dominated by the periodic feedback path (one report
// vector per 50 ms interval plus the estimator's per-report scratch); the
// per-event and per-packet paths contribute zero. Measured ~220/s on the
// reference build (the test prints the current value); the bound leaves ~2x
// headroom for library variance while still catching any per-packet or
// per-event regression (which would show up as thousands per second).
constexpr uint64_t kMaxAllocsPerSimSecond = 300;

uint64_t SessionAllocs(TimeDelta duration) {
  rtc::SessionConfig config;
  config.duration = duration;
  AllocScope scope;
  rtc::RunSession(config);
  return scope.allocs();
}

TEST(HotpathAllocTest, SessionSteadyStateStaysUnderAllocBudget) {
  if (!AllocProbeEnabled()) {
    GTEST_SKIP() << "built without RAVE_ALLOC_PROBE";
  }
  // The budget must hold with tracing idle: macros compiled in (unless this
  // is a RAVE_TRACING=OFF build) but no recorder installed — the production
  // configuration of every bench and test. Sessions install their metrics
  // registry themselves; its per-frame lookups are part of the budget.
  ASSERT_EQ(obs::CurrentTrace(), nullptr);
  const uint64_t short_run = SessionAllocs(TimeDelta::Seconds(5));
  const uint64_t long_run = SessionAllocs(TimeDelta::Seconds(10));
  ASSERT_GE(long_run, short_run);
  const uint64_t steady_per_second = (long_run - short_run) / 5;
  std::cout << "steady-state session allocations: " << steady_per_second
            << "/sim-second (budget " << kMaxAllocsPerSimSecond << ")\n";
  EXPECT_LE(steady_per_second, kMaxAllocsPerSimSecond)
      << "steady-state session allocations regressed: " << steady_per_second
      << "/sim-second (short run " << short_run << ", long run " << long_run
      << ")";
}

// The batched lockstep path must hold the same steady-state budget: the
// frame-boundary rendezvous stages every frame through the hub, whose lane
// scratch (and the sessions' staged steps) is Reserve()d at construction —
// flushing a wave through the SoA kernels must not allocate per frame.
// Measured long-minus-short over the whole block so hub/session setup
// cancels; the budget is per session-sim-second, same bound as inline.
TEST(HotpathAllocTest, BatchedSessionsStayUnderAllocBudget) {
  if (!AllocProbeEnabled()) {
    GTEST_SKIP() << "built without RAVE_ALLOC_PROBE";
  }
  ASSERT_EQ(obs::CurrentTrace(), nullptr);
  auto batch_allocs = [](TimeDelta duration) {
    // Four sessions in one lockstep block: two ABR lanes (batched plan and
    // update through AbrSoa) and two adaptive lanes (scalar plan, batched
    // R-D math).
    std::vector<rtc::SessionConfig> configs(4);
    configs[0].scheme = rtc::Scheme::kX264Abr;
    configs[1].scheme = rtc::Scheme::kAdaptive;
    configs[2].scheme = rtc::Scheme::kX264Abr;
    configs[3].scheme = rtc::Scheme::kAdaptive;
    for (auto& config : configs) config.duration = duration;
    AllocScope scope;
    runner::RunSessions(configs, /*jobs=*/1, /*cache=*/nullptr, /*batch=*/4);
    return scope.allocs();
  };
  const uint64_t short_run = batch_allocs(TimeDelta::Seconds(5));
  const uint64_t long_run = batch_allocs(TimeDelta::Seconds(10));
  ASSERT_GE(long_run, short_run);
  // 4 sessions x 5 extra simulated seconds.
  const uint64_t steady_per_second = (long_run - short_run) / 20;
  std::cout << "steady-state batched allocations: " << steady_per_second
            << "/session-sim-second (budget " << kMaxAllocsPerSimSecond
            << ")\n";
  EXPECT_LE(steady_per_second, kMaxAllocsPerSimSecond)
      << "steady-state batched-session allocations regressed: "
      << steady_per_second << "/session-sim-second (short run " << short_run
      << ", long run " << long_run << ")";
}

}  // namespace
}  // namespace rave
