// Trace-recorder tests: spec parsing, sampling, JSON well-formedness (the
// emitted file must parse back with every event and subsystem track
// intact), and schedule-independence — a traced session must produce
// byte-identical JSON whether its worker pool has 1 thread or 8.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "runner/parallel_runner.h"
#include "rtc/session.h"

namespace rave::obs {
namespace {

TEST(ParseTraceSpecTest, PlainPathAndSampledPath) {
  std::string path;
  TraceRecorder::Options options;
  ASSERT_TRUE(ParseTraceSpec("out.json", &path, &options));
  EXPECT_EQ(path, "out.json");
  EXPECT_DOUBLE_EQ(options.sample_hz, 0.0);

  ASSERT_TRUE(ParseTraceSpec("out.json:250", &path, &options));
  EXPECT_EQ(path, "out.json");
  EXPECT_DOUBLE_EQ(options.sample_hz, 250.0);

  // Non-numeric suffix after ':' is part of the path, not a rate.
  ASSERT_TRUE(ParseTraceSpec("odd:name.json", &path, &options));
  EXPECT_EQ(path, "odd:name.json");
  EXPECT_DOUBLE_EQ(options.sample_hz, 0.0);
}

TEST(ParseTraceSpecTest, RejectsBadSpecs) {
  std::string path;
  TraceRecorder::Options options;
  EXPECT_FALSE(ParseTraceSpec("", &path, &options));
  EXPECT_FALSE(ParseTraceSpec("out.json:0", &path, &options));
  EXPECT_FALSE(ParseTraceSpec("out.json:-5", &path, &options));
  EXPECT_FALSE(ParseTraceSpec(":100", &path, &options));
}

TEST(TraceRecorderTest, SamplingThrottlesCountersPerTrack) {
  TraceRecorder::Options options;
  options.sample_hz = 10.0;  // at most one sample per 100 ms per track
  TraceRecorder recorder(options);
  for (int ms = 0; ms < 1000; ms += 10) {
    recorder.Counter(Track::kEncoderQp, Timestamp::Millis(ms), 25.0);
    recorder.Counter(Track::kBweTargetKbps, Timestamp::Millis(ms), 2000.0);
    // Instants are never sampled away.
    recorder.Instant(Track::kFaultInjection, Timestamp::Millis(ms), "f");
  }
  size_t qp = 0, bwe = 0, inst = 0;
  for (const TraceEvent& e : recorder.events()) {
    if (e.track == Track::kEncoderQp) ++qp;
    if (e.track == Track::kBweTargetKbps) ++bwe;
    if (e.track == Track::kFaultInjection) ++inst;
  }
  EXPECT_EQ(qp, 10u);
  EXPECT_EQ(bwe, 10u);
  EXPECT_EQ(inst, 100u);
}

TEST(TraceRecorderTest, JsonRoundTripsEveryEvent) {
  TraceRecorder recorder;
  recorder.Counter(Track::kEncoderQp, Timestamp::Millis(33), 27.5);
  recorder.Counter(Track::kBweTargetKbps, Timestamp::Millis(50), 2100.0);
  recorder.Instant(Track::kEncoderKeyframe, Timestamp::Millis(66), "keyframe");
  recorder.Instant(Track::kFaultInjection, Timestamp::Seconds(10),
                   "apply:link_outage");

  std::ostringstream os;
  recorder.WriteJson(os);
  std::istringstream is(os.str());
  std::vector<ParsedTraceEvent> parsed;
  ASSERT_TRUE(ReadTraceJson(is, &parsed));

  std::vector<const ParsedTraceEvent*> counters, instants;
  for (const ParsedTraceEvent& e : parsed) {
    if (e.phase == "C") counters.push_back(&e);
    if (e.phase == "i") instants.push_back(&e);
  }
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0]->name, "encoder/qp");
  EXPECT_EQ(counters[0]->ts_us, 33'000);
  EXPECT_DOUBLE_EQ(counters[0]->value, 27.5);
  EXPECT_EQ(counters[1]->name, "cc/bwe_kbps");
  ASSERT_EQ(instants.size(), 2u);
  EXPECT_EQ(instants[0]->name, "encoder/keyframe");
  EXPECT_EQ(instants[0]->arg, "keyframe");
  EXPECT_EQ(instants[1]->arg, "apply:link_outage");
}

TEST(TraceScopeTest, InstallsAndRestores) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  TraceRecorder recorder;
  {
    TraceScope scope(&recorder);
    EXPECT_EQ(CurrentTrace(), &recorder);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
}

#ifndef RAVE_TRACING_DISABLED

/// Runs the canonical drop scenario with a recorder installed and returns
/// the serialized trace.
std::string TraceSession(rtc::Scheme scheme) {
  const rtc::SessionConfig config = bench::DefaultConfig(
      scheme, bench::DropTrace(0.6), video::ContentClass::kTalkingHead,
      TimeDelta::Seconds(14), /*seed=*/42);
  TraceRecorder recorder;
  std::ostringstream os;
  {
    TraceScope scope(&recorder);
    rtc::RunSession(config);
  }
  recorder.WriteJson(os);
  return os.str();
}

std::set<std::string> Subsystems(const std::string& json) {
  std::istringstream is(json);
  std::vector<ParsedTraceEvent> parsed;
  EXPECT_TRUE(ReadTraceJson(is, &parsed));
  std::set<std::string> subsystems;
  for (const ParsedTraceEvent& e : parsed) {
    if (e.phase != "C" && e.phase != "i") continue;
    subsystems.insert(e.name.substr(0, e.name.find('/')));
  }
  return subsystems;
}

TEST(TraceSessionTest, SessionTraceCoversSixSubsystems) {
  // The acceptance bar: at least six distinct subsystem tracks per session.
  // The adaptive scheme's codec path has no VBV; its sixth subsystem is the
  // core controller's frame-budget track instead.
  const std::set<std::string> adaptive =
      Subsystems(TraceSession(rtc::Scheme::kAdaptive));
  EXPECT_GE(adaptive.size(), 6u);
  for (const char* want :
       {"encoder", "cc", "transport", "net", "core", "session"}) {
    EXPECT_TRUE(adaptive.count(want)) << "adaptive trace missing " << want;
  }

  const std::set<std::string> abr =
      Subsystems(TraceSession(rtc::Scheme::kX264Abr));
  EXPECT_GE(abr.size(), 6u);
  for (const char* want :
       {"encoder", "codec", "cc", "transport", "net", "session"}) {
    EXPECT_TRUE(abr.count(want)) << "abr trace missing " << want;
  }
}

TEST(TraceSessionTest, TracesAreByteIdenticalAcrossJobCounts) {
  // Same sessions, worker pools of 1 and 8: the recorder rides the worker
  // thread via the thread-local scope, so each session's trace must not
  // depend on scheduling at all.
  const std::vector<rtc::Scheme> schemes = {
      rtc::Scheme::kX264Abr, rtc::Scheme::kAdaptive, rtc::Scheme::kX264Abr,
      rtc::Scheme::kAdaptive};
  auto run_with_jobs = [&](int jobs) {
    std::vector<std::string> traces(schemes.size());
    runner::ParallelRunner pool(jobs);
    for (size_t i = 0; i < schemes.size(); ++i) {
      pool.Post([&traces, &schemes, i] {
        traces[i] = TraceSession(schemes[i]);
      });
    }
    pool.WaitIdle();
    return traces;
  };
  const std::vector<std::string> serial = run_with_jobs(1);
  const std::vector<std::string> parallel = run_with_jobs(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "trace " << i << " diverged";
    EXPECT_GT(serial[i].size(), 1000u);
  }
}

#endif  // RAVE_TRACING_DISABLED

}  // namespace
}  // namespace rave::obs
