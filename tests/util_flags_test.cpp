#include "util/flags.h"

#include <gtest/gtest.h>

namespace rave {
namespace {

Flags Parse(std::vector<const char*> argv) {
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  const Flags flags = Parse({"--scheme=rave-adaptive", "--severity=0.5"});
  EXPECT_EQ(flags.GetString("scheme", ""), "rave-adaptive");
  EXPECT_DOUBLE_EQ(flags.GetDouble("severity", 0.0), 0.5);
}

TEST(FlagsTest, SpaceForm) {
  const Flags flags = Parse({"--seconds", "40", "--scheme", "x264-abr"});
  EXPECT_EQ(flags.GetInt("seconds", 0), 40);
  EXPECT_EQ(flags.GetString("scheme", ""), "x264-abr");
}

TEST(FlagsTest, BooleanForms) {
  const Flags flags =
      Parse({"--fec", "--rtx=false", "--degradation=yes", "--csv"});
  EXPECT_TRUE(flags.GetBool("fec", false));
  EXPECT_FALSE(flags.GetBool("rtx", true));
  EXPECT_TRUE(flags.GetBool("degradation", false));
  EXPECT_TRUE(flags.GetBool("csv", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(FlagsTest, Positional) {
  const Flags flags = Parse({"run", "--seed=3", "traces/x.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "traces/x.txt");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags flags = Parse({});
  EXPECT_EQ(flags.GetString("x", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("x", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 1.5), 1.5);
  EXPECT_FALSE(flags.Has("x"));
}

TEST(FlagsTest, TypeErrorsThrow) {
  const Flags flags = Parse({"--n=abc", "--f=1.2.3", "--b=maybe"});
  EXPECT_THROW(flags.GetInt("n", 0), std::invalid_argument);
  EXPECT_THROW(flags.GetDouble("f", 0.0), std::invalid_argument);
  EXPECT_THROW(flags.GetBool("b", false), std::invalid_argument);
}

TEST(FlagsTest, BareDashDashThrows) {
  EXPECT_THROW(Parse({"--"}), std::invalid_argument);
}

TEST(FlagsTest, UnknownKeysDetectsTypos) {
  const Flags flags = Parse({"--scheme=x", "--sevrity=0.5"});
  const auto unknown = flags.UnknownKeys({"scheme", "severity"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "sevrity");
}

TEST(FlagsTest, LastValueWins) {
  const Flags flags = Parse({"--seed=1", "--seed=2"});
  EXPECT_EQ(flags.GetInt("seed", 0), 2);
}

TEST(FlagsTest, NonFiniteDoublesRejected) {
  // std::stod happily parses "nan"/"inf"; no flag in this codebase means
  // either, so they must fail loudly instead of poisoning downstream math.
  const Flags flags = Parse({"--a=nan", "--b=inf", "--c=-inf", "--d=NAN"});
  EXPECT_THROW(flags.GetDouble("a", 0.0), std::invalid_argument);
  EXPECT_THROW(flags.GetDouble("b", 0.0), std::invalid_argument);
  EXPECT_THROW(flags.GetDouble("c", 0.0), std::invalid_argument);
  EXPECT_THROW(flags.GetDouble("d", 0.0), std::invalid_argument);
}

TEST(FlagsTest, IntegerTrailingGarbageRejected) {
  // std::stoll would happily stop at the first non-digit; "--jobs=5x" must
  // not silently run with 5 jobs.
  const Flags flags = Parse({"--jobs=5x", "--batch=1 ", "--n=0x10"});
  EXPECT_THROW(flags.GetInt("jobs", 0), std::invalid_argument);
  EXPECT_THROW(flags.GetInt("batch", 1), std::invalid_argument);
  EXPECT_THROW(flags.GetInt("n", 0), std::invalid_argument);
  try {
    flags.GetInt("jobs", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos)
        << e.what();
  }
}

TEST(FlagsTest, IntegerOverflowRejected) {
  const Flags flags =
      Parse({"--jobs=99999999999999999999", "--n=-99999999999999999999"});
  EXPECT_THROW(flags.GetInt("n", 0), std::invalid_argument);
  try {
    flags.GetInt("jobs", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--jobs"), std::string::npos) << what;
    EXPECT_NE(what.find("overflow"), std::string::npos) << what;
  }
}

TEST(FlagsTest, RangedGetIntEnforcesBounds) {
  const Flags flags = Parse({"--jobs=-1", "--batch=0", "--ok=8"});
  // --jobs can't be negative, --batch can't be zero; the error names the
  // flag and the accepted range.
  EXPECT_THROW(flags.GetInt("jobs", 0, 0, 1 << 16), std::invalid_argument);
  EXPECT_THROW(flags.GetInt("batch", 1, 1, 1 << 16), std::invalid_argument);
  EXPECT_EQ(flags.GetInt("ok", 0, 0, 1 << 16), 8);
  EXPECT_EQ(flags.GetInt("absent", 3, 0, 1 << 16), 3);
  try {
    flags.GetInt("batch", 1, 1, 1 << 16);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--batch"), std::string::npos) << what;
    EXPECT_NE(what.find("range"), std::string::npos) << what;
  }
}

TEST(FlagsTest, OrdinaryDoublesStillParse) {
  const Flags flags = Parse({"--x=-2.5", "--y=1e3"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 0.0), -2.5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("y", 0.0), 1000.0);
}

}  // namespace
}  // namespace rave
